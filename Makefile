# nlidb — build and verification entry points. Pure Go, no external deps.

GO ?= go

.PHONY: build test short race vet staticcheck chaos proc-chaos fuzz check metrics-smoke cache-smoke plan-smoke overload-smoke trace-smoke session-smoke bench-cache bench-plan bench-columnar bench-overload bench-shard bench-obs bench-session bench-remote-shard

build:
	$(GO) build ./...

# Default verification: vet, the full test suite, and a -race pass over
# every package. The race pass runs -short: the handful of slow replay
# tests (experiments, mlsql training) gate on testing.Short() and would
# take >10 minutes under the race detector; everything concurrency-bearing
# — the gateway, cache, batch pool, chaos suite, executors — runs in full.
test: vet staticcheck
	$(GO) test ./...
	$(GO) test -race -short ./...

# Reduced suite: the chaos tests shrink to 30 queries per domain and the
# slowest experiment-replay tests are skipped.
short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# staticcheck when the toolchain has it; a no-op (with a note) otherwise,
# so `make test` works on bare containers without network access.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

# The seeded chaos suites under the race detector: engine-level fault
# injection (panics, errors, slowness at every pipeline site), the
# serving-layer surge/drain tests, the shard-kill/restore harness, and
# the concurrent-conversation suites (session store churn, shared
# dialogue managers).
chaos:
	$(GO) test -race -run 'Chaos|Surge|Drain|Hedge|Flight|Concurrent|Session' ./internal/resilient/ ./internal/server/ ./internal/shard/ ./internal/qcache/ ./internal/session/ ./internal/dialogue/ -count=1

# Real-process chaos: a coordinator with -remote-shards spawn:2 forks
# four actual cmd/nlidb children, the smoke SIGKILLs one replica of every
# shard under load, and asserts zero wrong answers, bounded supervisor
# recovery, and that no child outlives the coordinator. Deliberately a
# shell smoke, not a `go test`: it must exercise real fork/exec, real
# signals, and real sockets.
proc-chaos: build
	./scripts/proc_chaos_smoke.sh

# Short coverage-guided fuzz sessions over the SQL parser, the NL
# tokenizer, and the cache-key normalizer (seed corpora always run as
# part of plain `make test`).
FUZZTIME ?= 15s
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/sqlparse
	$(GO) test -run='^$$' -fuzz=FuzzTokenize -fuzztime=$(FUZZTIME) ./internal/nlp
	$(GO) test -run='^$$' -fuzz=FuzzCacheKey -fuzztime=$(FUZZTIME) ./internal/qcache
	$(GO) test -run='^$$' -fuzz=FuzzPlanExec -fuzztime=$(FUZZTIME) ./internal/plan
	$(GO) test -run='^$$' -fuzz=FuzzFollowUp -fuzztime=$(FUZZTIME) ./internal/dialogue

# End-to-end scrape check: start cmd/nlidb with -metrics-addr, serve one
# question, and assert /metrics exposes every required family.
metrics-smoke: build
	./scripts/metrics_smoke.sh

# End-to-end cache check: serve the same question twice through cmd/nlidb
# and assert the repeat is a cache hit served without an execute span.
cache-smoke: build
	./scripts/cache_smoke.sh

# End-to-end planner check: serve a two-table equi-join question through
# cmd/nlidb and assert the -explain trace shows a HashJoin plan node and
# a plan-cache hit on the repeat.
plan-smoke: build
	./scripts/plan_smoke.sh

# End-to-end overload check: start cmd/nlidb -serve with a tiny admission
# ceiling, fire a curl surge, and assert requests were shed with 503 +
# Retry-After, the shed counter moved on /metrics, and a drain finishes.
overload-smoke: build
	./scripts/overload_smoke.sh

# End-to-end fleet-observability check: start cmd/nlidb -serve sharded,
# serve one scatter question, and assert its retained trace crosses the
# coordinator/replica boundary and /fleet, /slo, and /metrics agree.
trace-smoke: build
	./scripts/trace_smoke.sh

# End-to-end conversational-serving check: open a session over HTTP, ask
# a question plus a context-resolving follow-up, assert the session
# metric families are scraped, and walk the 404/410 protocol (end,
# expiry, unknown ID).
session-smoke: build
	./scripts/session_smoke.sh

# Answer-cache benchmark: cold/warm latency percentiles and serial-vs-
# parallel throughput, written to BENCH_cache.json.
bench-cache: build
	$(GO) run ./cmd/nlidb-bench -cache BENCH_cache.json

# Planner benchmark: nested-loop vs hash-join latency per query class on
# a 10k-row star schema, written to BENCH_plan.json. The nested-loop
# baseline sweeps 100M candidate pairs per class — expect a few minutes.
bench-plan: build
	$(GO) run ./cmd/nlidb-bench -plan BENCH_plan.json

# Columnar-execution benchmark: the row-at-a-time executor vs the
# vectorized columnar executor per query class on a 200k-row metrics
# table, results cross-checked row-for-row, written to
# BENCH_columnar.json.
bench-columnar: build
	$(GO) run ./cmd/nlidb-bench -columnar BENCH_columnar.json

# Overload benchmark: goodput and admitted-latency percentiles at 1×–10×
# offered load, with and without admission control, written to
# BENCH_overload.json. Expect a few minutes (3 reps per cell).
bench-overload: build
	$(GO) run ./cmd/nlidb-bench -overload BENCH_overload.json

# Sharding benchmark: N-shard scaling curve plus kill/restore goodput
# timelines on a 3×2 cluster, written to BENCH_shard.json.
bench-shard: build
	$(GO) run ./cmd/nlidb-bench -shard BENCH_shard.json

# Observability benchmark: per-engine latency percentiles plus the
# baseline-vs-instrumented overhead comparison, for the single gateway and
# for a 4-shard cluster with the full fleet stack on, written to
# BENCH_obs.json.
bench-obs: build
	$(GO) run ./cmd/nlidb-bench -obs BENCH_obs.json -shards 4

# Remote-shard benchmark: the closed-loop workload served by in-process
# clusters vs supervisor-launched fleets of real cmd/nlidb processes
# (the socket+wire tax per cluster width), plus SIGKILL/restore goodput
# timelines against real children, written to BENCH_remote_shard.json.
bench-remote-shard: build
	$(GO) run ./cmd/nlidb-bench -remote-shard BENCH_remote_shard.json

# Conversational-serving benchmark, run under the race detector on
# purpose: thousands of interleaved three-turn conversations served
# through the session store vs the stateless replay baseline, with
# warm-vs-cold follow-up percentiles and a zero-context-bleed assertion,
# written to BENCH_session.json.
bench-session: build
	$(GO) run -race ./cmd/nlidb-bench -session BENCH_session.json

check: build vet test race proc-chaos
