# nlidb — build and verification entry points. Pure Go, no external deps.

GO ?= go

.PHONY: build test short race vet fuzz check metrics-smoke

build:
	$(GO) build ./...

# Default verification: vet, the full test suite, and a -race pass over
# the concurrency-bearing observability and serving packages.
test: vet
	$(GO) test ./...
	$(GO) test -race ./internal/obs ./internal/resilient

# Reduced suite: the chaos tests shrink to 30 queries per domain and the
# slowest experiment-replay tests are skipped.
short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Short coverage-guided fuzz sessions over the SQL parser and the NL
# tokenizer (seed corpora always run as part of plain `make test`).
FUZZTIME ?= 15s
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/sqlparse
	$(GO) test -run='^$$' -fuzz=FuzzTokenize -fuzztime=$(FUZZTIME) ./internal/nlp

# End-to-end scrape check: start cmd/nlidb with -metrics-addr, serve one
# question, and assert /metrics exposes every required family.
metrics-smoke: build
	./scripts/metrics_smoke.sh

check: build vet test race
