// Package repro holds the top-level benchmark harness: one testing.B
// benchmark per experiment table (T1…T10, A1, A2 — run with
// `go test -bench=.`), plus micro-benchmarks for the hot paths
// (interpretation latency per family, SQL execution, index lookup).
// Experiment benchmarks report their headline numbers as custom metrics
// so `go test -bench` output doubles as a results record.
package repro

import (
	"strconv"
	"strings"
	"testing"

	"nlidb/internal/athena"
	"nlidb/internal/benchdata"
	"nlidb/internal/experiments"
	"nlidb/internal/invindex"
	"nlidb/internal/keywordnl"
	"nlidb/internal/lexicon"
	"nlidb/internal/nlq"
	"nlidb/internal/parsenl"
	"nlidb/internal/patternnl"
	"nlidb/internal/sqlexec"
	"nlidb/internal/sqlparse"
)

// benchExperiment runs one experiment per iteration and reports the first
// percentage cell of every row as a metric, so the claim's shape is
// visible straight from the bench output.
func benchExperiment(b *testing.B, id string) {
	var run func(int64) (*experiments.Table, error)
	for _, e := range experiments.All() {
		if e.ID == id {
			run = e.Run
		}
	}
	if run == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := run(1)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	for _, row := range last.Rows {
		for _, cell := range row[1:] {
			v := strings.TrimSuffix(strings.TrimSpace(cell), "%")
			if f, err := strconv.ParseFloat(v, 64); err == nil {
				name := strings.ReplaceAll(strings.Fields(row[0])[0], "/", "-")
				b.ReportMetric(f, name+"_pct")
				break
			}
		}
	}
}

func BenchmarkT1ComplexityCeiling(b *testing.B) { benchExperiment(b, "T1") }
func BenchmarkT2Paraphrase(b *testing.B)        { benchExperiment(b, "T2") }
func BenchmarkT3PrecisionRecall(b *testing.B)   { benchExperiment(b, "T3") }
func BenchmarkT4TrainingCurve(b *testing.B)     { benchExperiment(b, "T4") }
func BenchmarkT5DomainAdaptation(b *testing.B)  { benchExperiment(b, "T5") }
func BenchmarkT6Dialogue(b *testing.B)          { benchExperiment(b, "T6") }
func BenchmarkT7Feedback(b *testing.B)          { benchExperiment(b, "T7") }
func BenchmarkT8Datasets(b *testing.B)          { benchExperiment(b, "T8") }
func BenchmarkT9Relaxation(b *testing.B)        { benchExperiment(b, "T9") }
func BenchmarkT10QueryLog(b *testing.B)         { benchExperiment(b, "T10") }
func BenchmarkT11Decomposition(b *testing.B)    { benchExperiment(b, "T11") }
func BenchmarkA1SketchVsSeq(b *testing.B)       { benchExperiment(b, "A1") }
func BenchmarkA2TypeFeatures(b *testing.B)      { benchExperiment(b, "A2") }

// --- micro-benchmarks --------------------------------------------------------

// benchInterpret measures one family's end-to-end interpretation latency
// over a fixed question mix.
func benchInterpret(b *testing.B, mk func(d *benchdata.Domain, lex *lexicon.Lexicon) nlq.Interpreter) {
	d := benchdata.Sales(1)
	lex := lexicon.New()
	in := mk(d, lex)
	questions := []string{
		"customers with city Berlin",
		"how many products are there",
		"average credit of customers by segment",
		"products of the category toys",
		"customers with credit greater than the average credit",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = in.Interpret(questions[i%len(questions)])
	}
}

func BenchmarkInterpretKeyword(b *testing.B) {
	benchInterpret(b, func(d *benchdata.Domain, lex *lexicon.Lexicon) nlq.Interpreter {
		return keywordnl.New(d.DB, lex)
	})
}

func BenchmarkInterpretPattern(b *testing.B) {
	benchInterpret(b, func(d *benchdata.Domain, lex *lexicon.Lexicon) nlq.Interpreter {
		return patternnl.New(d.DB, lex)
	})
}

func BenchmarkInterpretParse(b *testing.B) {
	benchInterpret(b, func(d *benchdata.Domain, lex *lexicon.Lexicon) nlq.Interpreter {
		return parsenl.New(d.DB, lex)
	})
}

func BenchmarkInterpretAthena(b *testing.B) {
	benchInterpret(b, func(d *benchdata.Domain, lex *lexicon.Lexicon) nlq.Interpreter {
		return athena.New(d.DB, lex)
	})
}

// BenchmarkSQLParse measures the SQL front end.
func BenchmarkSQLParse(b *testing.B) {
	sql := "SELECT customer.name, AVG(orders.total) FROM customer JOIN orders ON customer.id = orders.customer_id WHERE customer.city = 'Berlin' GROUP BY customer.name HAVING COUNT(orders.id) > 2 ORDER BY AVG(orders.total) DESC LIMIT 5"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sqlparse.Parse(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSQLExec measures the executor on a join + aggregate.
func BenchmarkSQLExec(b *testing.B) {
	d := benchdata.Sales(1)
	eng := sqlexec.New(d.DB)
	stmt := sqlparse.MustParse("SELECT customer.name, SUM(orders.total) FROM customer JOIN orders ON customer.id = orders.customer_id GROUP BY customer.name")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(stmt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSQLExecNested measures correlated sub-query execution.
func BenchmarkSQLExecNested(b *testing.B) {
	d := benchdata.Sales(1)
	eng := sqlexec.New(d.DB)
	stmt := sqlparse.MustParse("SELECT name FROM customer WHERE NOT (EXISTS (SELECT id FROM orders WHERE orders.customer_id = customer.id))")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(stmt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexLookup measures the inverted-index lookup path (with the
// fuzzy tier, the interpreters' hot spot).
func BenchmarkIndexLookup(b *testing.B) {
	d := benchdata.Sales(1)
	ix := invindex.Build(d.DB, lexicon.New())
	words := []string{"customers", "Berlin", "credit", "widget", "segmnt"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Lookup(words[i%len(words)], invindex.DefaultOptions())
	}
}

// BenchmarkIndexBuild measures index construction for a whole domain.
func BenchmarkIndexBuild(b *testing.B) {
	d := benchdata.Sales(1)
	lex := lexicon.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		invindex.Build(d.DB, lex)
	}
}

// BenchmarkDomainGeneration measures seeded corpus generation.
func BenchmarkDomainGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := benchdata.Sales(int64(i))
		_ = d.GeneratePairs(20, int64(i))
	}
}

// sanity check: the harness must know every experiment id exactly once.
func TestBenchHarnessCoversAllExperiments(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range experiments.All() {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
	}
	for _, id := range []string{"T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9", "T10", "T11", "A1", "A2"} {
		if !seen[id] {
			t.Fatalf("experiment %s missing from All()", id)
		}
	}
}
