package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"nlidb/internal/benchdata"
	"nlidb/internal/lexicon"
	"nlidb/internal/qcache"
	"nlidb/internal/resilient"
)

// cacheReport is the BENCH_cache.json schema: cold-vs-warm latency
// percentiles on one cached gateway, and serving throughput across four
// configurations. The headline comparison — ParallelCachedQPS vs
// SerialUncachedQPS — is after-vs-before for this change (a serial,
// uncached gateway was the status quo); SerialCachedQPS and
// ParallelUncachedQPS isolate how much of the win is the cache vs the
// worker pool (on a single-core host, nearly all of it is the cache).
type cacheReport struct {
	Seed      int64 `json:"seed"`
	Distinct  int   `json:"distinct_questions"`
	Repeats   int   `json:"repeats_per_question"`
	TotalAsks int   `json:"total_asks"`
	Workers   int   `json:"workers"`
	Reps      int   `json:"reps"`

	ColdP50ms float64 `json:"cold_p50_ms"`
	ColdP95ms float64 `json:"cold_p95_ms"`
	ColdP99ms float64 `json:"cold_p99_ms"`
	WarmP50ms float64 `json:"warm_p50_ms"`
	WarmP95ms float64 `json:"warm_p95_ms"`
	WarmP99ms float64 `json:"warm_p99_ms"`
	// WarmSpeedupP50 = cold p50 / warm p50 (acceptance: ≥ 5).
	WarmSpeedupP50 float64 `json:"warm_speedup_p50"`

	SerialUncachedQPS   float64 `json:"serial_uncached_qps"`
	SerialCachedQPS     float64 `json:"serial_cached_qps"`
	ParallelUncachedQPS float64 `json:"parallel_uncached_qps"`
	ParallelCachedQPS   float64 `json:"parallel_cached_qps"`
	// ParallelSpeedup = parallel cached / serial uncached (acceptance: ≥ 3).
	ParallelSpeedup float64 `json:"parallel_speedup"`

	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	CacheEvictions int64 `json:"cache_evictions"`
}

const (
	cacheBenchWorkers = 8
	cacheBenchRepeats = 8
	cacheBenchReps    = 3
)

// runCacheBench measures the answer cache and the ServeBatch worker pool
// on a WikiSQL-style Sales workload with realistic question repetition
// (every distinct question asked cacheBenchRepeats times, shuffled), and
// writes the JSON report to path.
func runCacheBench(path string, seed int64) error {
	d := benchdata.Sales(seed)
	set := benchdata.WikiSQLStyle(d, 80, seed+5)

	// Keep only questions the default chain answers: failed asks are not
	// cached, so unanswerable questions would measure chain exhaustion,
	// not cache behavior.
	probe := resilient.New(d.DB, resilient.DefaultChain(d.DB, lexicon.New()), resilient.Config{NoTrace: true})
	ctx := context.Background()
	var questions []string
	for _, p := range set.Pairs {
		if _, err := probe.Ask(ctx, p.Question); err == nil {
			questions = append(questions, p.Question)
		}
	}
	if len(questions) < 10 {
		return fmt.Errorf("cache bench: only %d answerable questions", len(questions))
	}

	// The serving trace: every question repeated, order shuffled with a
	// seeded source so runs are reproducible.
	rng := rand.New(rand.NewSource(seed * 7919))
	trace := make([]string, 0, len(questions)*cacheBenchRepeats)
	for i := 0; i < cacheBenchRepeats; i++ {
		trace = append(trace, questions...)
	}
	rng.Shuffle(len(trace), func(i, j int) { trace[i], trace[j] = trace[j], trace[i] })

	newGW := func(cache *qcache.Cache, workers int) *resilient.Gateway {
		return resilient.New(d.DB, resilient.DefaultChain(d.DB, lexicon.New()),
			resilient.Config{NoTrace: true, Cache: cache, Workers: workers})
	}

	// Cold-vs-warm latency: one cached gateway, each question asked cold
	// (fill) then warm (hit), latencies measured per Ask.
	latGW := newGW(qcache.New(qcache.Config{}), 0)
	var cold, warm []float64
	for _, q := range questions {
		t0 := time.Now()
		latGW.Ask(ctx, q)
		cold = append(cold, float64(time.Since(t0))/float64(time.Millisecond))
	}
	for rep := 0; rep < cacheBenchRepeats-1; rep++ {
		for _, q := range questions {
			t0 := time.Now()
			latGW.Ask(ctx, q)
			warm = append(warm, float64(time.Since(t0))/float64(time.Millisecond))
		}
	}

	// Throughput: best-of-reps per configuration, fresh gateway (and fresh
	// cache) per run so no state leaks between configurations.
	serve := func(cached bool, workers int) float64 {
		var best time.Duration
		for rep := 0; rep < cacheBenchReps; rep++ {
			var cache *qcache.Cache
			if cached {
				cache = qcache.New(qcache.Config{})
			}
			gw := newGW(cache, workers)
			t0 := time.Now()
			if workers > 0 {
				gw.ServeBatch(ctx, trace)
			} else {
				for _, q := range trace {
					gw.Ask(ctx, q)
				}
			}
			if el := time.Since(t0); rep == 0 || el < best {
				best = el
			}
		}
		return float64(len(trace)) / best.Seconds()
	}
	serialUncached := serve(false, 0)
	serialCached := serve(true, 0)
	parallelUncached := serve(false, cacheBenchWorkers)
	parallelCached := serve(true, cacheBenchWorkers)

	// One instrumented pass for the cache counters in the report.
	stats := func() qcache.Stats {
		c := qcache.New(qcache.Config{})
		newGW(c, cacheBenchWorkers).ServeBatch(ctx, trace)
		return c.Stats()
	}()

	rep := cacheReport{
		Seed: seed, Distinct: len(questions), Repeats: cacheBenchRepeats,
		TotalAsks: len(trace), Workers: cacheBenchWorkers, Reps: cacheBenchReps,
		ColdP50ms: percentile(cold, 0.50), ColdP95ms: percentile(cold, 0.95), ColdP99ms: percentile(cold, 0.99),
		WarmP50ms: percentile(warm, 0.50), WarmP95ms: percentile(warm, 0.95), WarmP99ms: percentile(warm, 0.99),
		SerialUncachedQPS:   serialUncached,
		SerialCachedQPS:     serialCached,
		ParallelUncachedQPS: parallelUncached,
		ParallelCachedQPS:   parallelCached,
		CacheHits:           stats.Hits,
		CacheMisses:         stats.Misses,
		CacheEvictions:      stats.Evictions,
	}
	if rep.WarmP50ms > 0 {
		rep.WarmSpeedupP50 = rep.ColdP50ms / rep.WarmP50ms
	}
	if serialUncached > 0 {
		rep.ParallelSpeedup = parallelCached / serialUncached
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("cache bench: %d distinct × %d asks: warm p50 %.3fms vs cold %.3fms (%.1fx), parallel %.0f qps vs serial %.0f qps (%.1fx) → %s\n",
		rep.Distinct, rep.TotalAsks, rep.WarmP50ms, rep.ColdP50ms, rep.WarmSpeedupP50,
		parallelCached, serialUncached, rep.ParallelSpeedup, path)
	return nil
}

// percentile returns the q-quantile of xs by nearest-rank on a sorted
// copy (xs is not modified).
func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(q * float64(len(s)-1))
	return s[i]
}
