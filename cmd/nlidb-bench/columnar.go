package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"nlidb/internal/plan"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlparse"
)

// columnarReport is the BENCH_columnar.json schema: per query class, the
// row-at-a-time executor (Options{NoVector: true}) against the
// vectorized columnar executor on the same 200k-row metrics table, with
// both results cross-checked row-for-row so the speedup is attributable
// to the execution model and not to a semantic shortcut.
type columnarReport struct {
	Seed     int64 `json:"seed"`
	FactRows int   `json:"fact_rows"`
	DimRows  int   `json:"dim_rows"`
	Reps     int   `json:"reps"`

	Classes []columnarClass `json:"classes"`
	// MinCoreSpeedup is the smallest speedup across the scan, filter,
	// and aggregate classes (acceptance: ≥ 5). Join classes are
	// reported but not part of the floor.
	MinCoreSpeedup float64 `json:"min_core_speedup"`
}

// columnarClass is one benchmarked query class.
type columnarClass struct {
	Name string `json:"name"`
	SQL  string `json:"sql"`
	// RowMs / VecMs are best-of-reps execution latencies.
	RowMs   float64 `json:"row_ms"`
	VecMs   float64 `json:"vec_ms"`
	Speedup float64 `json:"speedup"`
	Rows    int     `json:"rows"`
	// Core marks the class as part of the acceptance floor.
	Core bool `json:"core"`
}

const (
	columnarBenchFactRows = 200_000
	columnarBenchDimRows  = 1_000
	columnarBenchReps     = 5
)

// columnarBenchDB builds the metrics schema the columnar benchmark scans:
// metric(id, host_id, ts, cpu, rss, status) at 200k rows plus a small
// host(id, name, zone) dimension, mirroring the wide-fact/narrow-dim
// shape the vectorized engine is built for.
func columnarBenchDB(seed int64) (*sqldata.Database, error) {
	rng := rand.New(rand.NewSource(seed))
	db := sqldata.NewDatabase("columnarbench")
	host, err := db.CreateTable(&sqldata.Schema{
		Name: "host",
		Columns: []sqldata.Column{
			{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
			{Name: "name", Type: sqldata.TypeText},
			{Name: "zone", Type: sqldata.TypeInt},
		},
	})
	if err != nil {
		return nil, err
	}
	metric, err := db.CreateTable(&sqldata.Schema{
		Name: "metric",
		Columns: []sqldata.Column{
			{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
			{Name: "host_id", Type: sqldata.TypeInt},
			{Name: "ts", Type: sqldata.TypeInt},
			{Name: "cpu", Type: sqldata.TypeFloat},
			{Name: "rss", Type: sqldata.TypeInt},
			{Name: "status", Type: sqldata.TypeText},
		},
	})
	if err != nil {
		return nil, err
	}
	statuses := []string{"ok", "ok", "ok", "warn", "crit"}
	for i := 0; i < columnarBenchDimRows; i++ {
		host.MustInsert(sqldata.NewInt(int64(i)),
			sqldata.NewText(fmt.Sprintf("host-%04d", i)),
			sqldata.NewInt(int64(i%17)))
	}
	for i := 0; i < columnarBenchFactRows; i++ {
		metric.MustInsert(sqldata.NewInt(int64(i)),
			sqldata.NewInt(int64(rng.Intn(columnarBenchDimRows))),
			sqldata.NewInt(int64(i)),
			sqldata.NewFloat(rng.Float64()*100),
			sqldata.NewInt(int64(rng.Intn(1<<30))),
			sqldata.NewText(statuses[rng.Intn(len(statuses))]))
	}
	return db, nil
}

// columnarBenchBudget lifts the row meters: both executors materialize
// the same rows, and the point here is throughput, not admission.
func columnarBenchBudget() plan.Budget {
	b := plan.DefaultBudget()
	b.MaxRows = -1
	b.MaxJoinRows = -1
	return b
}

// runColumnarBench measures the row executor against the vectorized
// executor per query class and writes the JSON report to path.
func runColumnarBench(path string, seed int64) error {
	db, err := columnarBenchDB(seed)
	if err != nil {
		return err
	}
	classes := []struct {
		name, sql string
		core      bool
	}{
		{"filter_scan",
			"SELECT id, cpu FROM metric WHERE cpu > 95", true},
		{"filter_conj",
			"SELECT id FROM metric WHERE cpu BETWEEN 40 AND 60 AND status != 'ok' AND rss > 500000000", true},
		{"agg_global",
			"SELECT COUNT(*), AVG(cpu), MIN(rss), MAX(rss), SUM(rss) FROM metric", true},
		{"agg_filtered",
			"SELECT COUNT(*), AVG(cpu) FROM metric WHERE status = 'crit'", true},
		{"agg_group",
			"SELECT status, COUNT(*), AVG(cpu) FROM metric GROUP BY status ORDER BY status", true},
		{"agg_group_int",
			"SELECT host_id, MAX(cpu) FROM metric GROUP BY host_id", true},
		{"join_agg",
			"SELECT host.zone, COUNT(*), AVG(metric.cpu) FROM metric JOIN host ON metric.host_id = host.id GROUP BY host.zone", false},
	}

	ctx := context.Background()
	budget := columnarBenchBudget()
	rep := columnarReport{Seed: seed, FactRows: columnarBenchFactRows,
		DimRows: columnarBenchDimRows, Reps: columnarBenchReps}
	for _, c := range classes {
		stmt, err := sqlparse.Parse(c.sql)
		if err != nil {
			return fmt.Errorf("columnar bench %s: %w", c.name, err)
		}
		rowPlan, err := plan.PrepareOpts(db, stmt, plan.Options{NoVector: true})
		if err != nil {
			return fmt.Errorf("columnar bench %s (row): %w", c.name, err)
		}
		vecPlan, err := plan.Prepare(db, stmt)
		if err != nil {
			return fmt.Errorf("columnar bench %s (vec): %w", c.name, err)
		}
		if !vecPlan.Vectorized() {
			return fmt.Errorf("columnar bench %s: plan did not vectorize", c.name)
		}

		time1 := func(p *plan.Plan) (time.Duration, *sqldata.Result, error) {
			var best time.Duration
			var res *sqldata.Result
			for i := 0; i < columnarBenchReps; i++ {
				t0 := time.Now()
				r, _, err := p.Run(ctx, budget)
				el := time.Since(t0)
				if err != nil {
					return 0, nil, err
				}
				res = r
				if i == 0 || el < best {
					best = el
				}
			}
			return best, res, nil
		}
		rDur, rRes, err := time1(rowPlan)
		if err != nil {
			return fmt.Errorf("columnar bench %s (row): %w", c.name, err)
		}
		vDur, vRes, err := time1(vecPlan)
		if err != nil {
			return fmt.Errorf("columnar bench %s (vec): %w", c.name, err)
		}
		if len(rRes.Rows) != len(vRes.Rows) {
			return fmt.Errorf("columnar bench %s: row executor returned %d rows, vectorized %d",
				c.name, len(rRes.Rows), len(vRes.Rows))
		}
		for i := range rRes.Rows {
			if rRes.Rows[i].Key() != vRes.Rows[i].Key() {
				return fmt.Errorf("columnar bench %s: result mismatch at row %d", c.name, i)
			}
		}

		cl := columnarClass{
			Name: c.name, SQL: c.sql, Core: c.core,
			RowMs: float64(rDur) / float64(time.Millisecond),
			VecMs: float64(vDur) / float64(time.Millisecond),
			Rows:  len(vRes.Rows),
		}
		if cl.VecMs > 0 {
			cl.Speedup = cl.RowMs / cl.VecMs
		}
		rep.Classes = append(rep.Classes, cl)
		if c.core && (rep.MinCoreSpeedup == 0 || cl.Speedup < rep.MinCoreSpeedup) {
			rep.MinCoreSpeedup = cl.Speedup
		}
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	for _, c := range rep.Classes {
		fmt.Printf("columnar bench: %-13s %8.2fms (row) vs %7.2fms (vectorized) = %6.1fx\n",
			c.Name, c.RowMs, c.VecMs, c.Speedup)
	}
	fmt.Printf("columnar bench: min core speedup %.1fx over %d classes\n",
		rep.MinCoreSpeedup, len(rep.Classes))
	return nil
}
