// Command nlidb-bench runs the reproduction study: every experiment table
// derived from the survey's claims (see DESIGN.md for the mapping and
// EXPERIMENTS.md for recorded outcomes).
//
// Usage:
//
//	nlidb-bench [-seed N] [-only T1,T5,A1] [-obs BENCH_obs.json]
//	            [-cache BENCH_cache.json] [-plan BENCH_plan.json]
//	            [-overload BENCH_overload.json] [-shard BENCH_shard.json]
//
// With -obs the experiment tables are skipped; instead the observability
// benchmark replays a WikiSQL-style workload through each engine twice
// (baseline vs instrumented) and writes per-engine latency percentiles
// plus the measured instrumentation overhead to the given JSON file. It
// then repeats the comparison on a sharded cluster (-shards wide, 2
// replicas): untraced serving versus the full fleet-observability stack —
// coordinator tracing, per-shard rollups, SLO accounting, tail-sampled
// trace retention — reported as shard_overhead.
//
// With -cache the answer-cache benchmark runs instead: a repetition-heavy
// WikiSQL-style workload is served serially and through the 8-worker
// pool, cached and uncached, and cold-vs-warm latency percentiles plus
// the four throughput figures are written to the given JSON file.
//
// With -plan the planner benchmark runs instead: join-heavy query classes
// over a 10k×10k star schema are executed with the seed strategy
// (nested-loop join, no predicate pushdown) and with the physical planner
// (hash join + pushdown), and the per-class latencies, speedups, and plan
// shapes are written to the given JSON file.
//
// With -overload the serving-layer benchmark runs instead: the HTTP
// server is driven open-loop at 1×, 2×, 5×, and 10× its measured
// capacity, behind the admission controller and with admission disabled,
// and per-run goodput, shed counts, and admitted-latency percentiles are
// written to the given JSON file. The acceptance claim: goodput and
// admitted p99 stay flat (within 2×) across the sweep with admission,
// and collapse without it.
//
// With -shard the fault-tolerance benchmark runs instead: one workload is
// served by clusters of 1–8 shards for the scaling curve, then a 3-shard
// 2-replica cluster runs a seeded kill/restore schedule (one replica,
// then a whole shard) while goodput is bucketed over time — complete,
// partial, and failed answers per 100ms — and the recovery point after
// restore is recorded.
//
// With -remote-shard the out-of-process variant runs instead: the same
// closed-loop workload is served by in-process clusters and by
// supervisor-launched fleets of real cmd/nlidb child processes speaking
// the HTTP shard protocol, pricing the socket+wire hop per cluster
// width; then a 2×2 fleet of real processes runs SIGKILL/restore
// timelines (one replica, then a whole shard) with goodput bucketed
// over time. Requires the go toolchain (the child binary is built on
// the fly) or a prebuilt binary via NLIDB_BIN.
//
// With -session the conversational-serving benchmark runs instead:
// thousands of three-turn conversations (query → refine → aggregate) are
// interleaved turn-by-turn across a worker pool, served through the
// session store and — as the baseline — statelessly, where every turn
// replays its whole history through a fresh dialogue context. Goodput and
// per-turn latency percentiles for both modes, warm-vs-cold follow-up
// p50, and the cross-session context-bleed count (must be zero) are
// written to the given JSON file. Run it under the race detector
// (`make bench-session`) — the interleaving doubles as a race harness.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"nlidb/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed for data generation and training")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	obsPath := flag.String("obs", "", "write the observability benchmark (per-engine latency percentiles, overhead) to this JSON file and exit")
	obsShards := flag.Int("shards", 4, "cluster width for the -obs sharded-overhead section")
	cachePath := flag.String("cache", "", "write the answer-cache benchmark (cold/warm percentiles, serial-vs-parallel throughput) to this JSON file and exit")
	planPath := flag.String("plan", "", "write the planner benchmark (nested-loop vs hash-join latency per query class) to this JSON file and exit")
	columnarPath := flag.String("columnar", "", "write the columnar benchmark (row vs vectorized executor latency per query class) to this JSON file and exit")
	overloadPath := flag.String("overload", "", "write the overload benchmark (goodput and admitted p99 at 1×–10× offered load, with and without admission control) to this JSON file and exit")
	shardPath := flag.String("shard", "", "write the sharding benchmark (N-shard scaling curve, kill/restore goodput timelines) to this JSON file and exit")
	remoteShardPath := flag.String("remote-shard", "", "write the remote-shard benchmark (in-process vs out-of-process scaling, real-process SIGKILL timelines) to this JSON file and exit")
	sessionPath := flag.String("session", "", "write the conversational-serving benchmark (interleaved sessions vs stateless replay, warm vs cold follow-ups) to this JSON file and exit")
	flag.Parse()

	if *obsPath != "" {
		if err := runObsBench(*obsPath, *seed, *obsShards); err != nil {
			fmt.Fprintf(os.Stderr, "nlidb-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *cachePath != "" {
		if err := runCacheBench(*cachePath, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "nlidb-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *planPath != "" {
		if err := runPlanBench(*planPath, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "nlidb-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *columnarPath != "" {
		if err := runColumnarBench(*columnarPath, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "nlidb-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *overloadPath != "" {
		if err := runOverloadBench(*overloadPath, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "nlidb-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *shardPath != "" {
		if err := runShardBench(*shardPath, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "nlidb-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *remoteShardPath != "" {
		if err := runRemoteShardBench(*remoteShardPath, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "nlidb-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *sessionPath != "" {
		if err := runSessionBench(*sessionPath, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "nlidb-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	start := time.Now()
	ran := 0
	for _, e := range experiments.All() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		t0 := time.Now()
		tbl, err := e.Run(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nlidb-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(tbl)
		fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(t0).Seconds())
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "nlidb-bench: no experiments matched -only")
		os.Exit(1)
	}
	fmt.Printf("ran %d experiment(s) in %.1fs (seed %d)\n", ran, time.Since(start).Seconds(), *seed)
}
