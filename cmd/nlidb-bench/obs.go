package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"nlidb/internal/benchdata"
	"nlidb/internal/lexicon"
	"nlidb/internal/obs"
	"nlidb/internal/resilient"
	"nlidb/internal/shard"
)

// obsReport is the BENCH_obs.json schema: per-engine latency percentiles
// from the instrumented run, a baseline-vs-instrumented overhead
// comparison demonstrating the tracing/metrics tax, and the same
// comparison for sharded serving with the full fleet-observability stack
// (coordinator tracing, per-shard rollups, SLO tracking, tail-sampled
// trace retention) switched on.
type obsReport struct {
	Seed          int64             `json:"seed"`
	Questions     int               `json:"questions_per_engine"`
	Reps          int               `json:"reps"`
	Engines       []obsEngineReport `json:"engines"`
	Overhead      obsOverhead       `json:"overhead"`
	ShardOverhead obsShardOverhead  `json:"shard_overhead"`
}

type obsEngineReport struct {
	Engine  string  `json:"engine"`
	OK      int64   `json:"ok"`
	Errored int64   `json:"errored"`
	P50ms   float64 `json:"p50_ms"`
	P95ms   float64 `json:"p95_ms"`
	P99ms   float64 `json:"p99_ms"`
}

type obsOverhead struct {
	BaselineMS     float64 `json:"baseline_total_ms"`
	InstrumentedMS float64 `json:"instrumented_total_ms"`
	Pct            float64 `json:"overhead_pct"`
}

// obsShardOverhead is the fleet-observability tax: the same closed-loop
// sharded workload served untraced and then with everything on.
type obsShardOverhead struct {
	Shards         int     `json:"shards"`
	Replicas       int     `json:"replicas"`
	Requests       int     `json:"requests"`
	Reps           int     `json:"reps"`
	UntracedMS     float64 `json:"untraced_total_ms"`
	InstrumentedMS float64 `json:"instrumented_total_ms"`
	Pct            float64 `json:"overhead_pct"`
}

// obsEngines is the fallback-chain order; each runs alone (no fallback)
// so its percentiles are not polluted by another engine's retries.
var obsEngines = []string{"athena", "parse", "pattern", "keyword"}

// runObsBench replays the same question workload through four
// single-engine gateways twice — once with tracing+metrics off (baseline)
// and once fully instrumented — measures the sharded-serving equivalent
// on a shards-wide cluster, then writes the JSON report to path.
func runObsBench(path string, seed int64, shards int) error {
	d := benchdata.Sales(seed)
	set := benchdata.WikiSQLStyle(d, 80, seed+5)
	questions := make([]string, 0, len(set.Pairs))
	for _, p := range set.Pairs {
		questions = append(questions, p.Question)
	}
	if len(questions) == 0 {
		return fmt.Errorf("obs bench: empty workload")
	}

	// Warm-up pass so neither timed run pays one-time costs (lexicon
	// priming, allocator growth).
	runObsWorkload(d, questions, resilient.Config{NoTrace: true})

	// Best-of-N per mode, alternating modes so slow drift (thermal,
	// scheduler) hits both equally: the minimum is the least-perturbed
	// run, which is what the overhead comparison needs.
	const reps = 5
	var baseline, instrumented time.Duration
	reg := obs.NewRegistry()
	slow := obs.NewSlowLog(time.Second, 64)
	for i := 0; i < reps; i++ {
		b := runObsWorkload(d, questions, resilient.Config{NoTrace: true})
		if i == 0 || b < baseline {
			baseline = b
		}
		ins := runObsWorkload(d, questions, resilient.Config{Metrics: reg, SlowLog: slow})
		if i == 0 || ins < instrumented {
			instrumented = ins
		}
	}

	rep := obsReport{Seed: seed, Questions: len(questions), Reps: reps}
	for _, name := range obsEngines {
		h := reg.Histogram(resilient.MetricQuerySeconds, "engine", name)
		er := obsEngineReport{
			Engine: name,
			P50ms:  h.Quantile(0.50) * 1000,
			P95ms:  h.Quantile(0.95) * 1000,
			P99ms:  h.Quantile(0.99) * 1000,
		}
		for _, outcome := range []string{"ok", "error", "exhausted", "timeout", "budget"} {
			n := reg.Counter(resilient.MetricQueries, "engine", name, "outcome", outcome).Value()
			if outcome == "ok" {
				er.OK = n
			} else {
				er.Errored += n
			}
		}
		rep.Engines = append(rep.Engines, er)
	}
	rep.Overhead = obsOverhead{
		BaselineMS:     float64(baseline) / float64(time.Millisecond),
		InstrumentedMS: float64(instrumented) / float64(time.Millisecond),
		Pct:            100 * (float64(instrumented) - float64(baseline)) / float64(baseline),
	}

	so, err := runObsShardOverhead(d, seed, shards)
	if err != nil {
		return err
	}
	rep.ShardOverhead = so

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("obs bench: %d questions × %d engines, overhead %.2f%% (sharded %.2f%%) → %s\n",
		len(questions), len(obsEngines), rep.Overhead.Pct, rep.ShardOverhead.Pct, path)
	return nil
}

// obsShardRequests is the closed-loop request count per sharded run.
const obsShardRequests = 400

// runObsShardOverhead serves one workload on a shards×2 cluster twice:
// untraced (coordinator and gateway tracing off, no metrics, no rollup
// consumers) versus the full serving stack — coordinator trace spanning
// classify/route/attempt/merge, nested replica-gateway traces, registry
// metrics, tail-sampled TraceStore retention, slow-log attribution, and
// per-request SLO accounting. Best-of-reps per mode, modes alternated.
func runObsShardOverhead(d *benchdata.Domain, seed int64, shards int) (obsShardOverhead, error) {
	mk := func(instrumented bool) (*shard.Cluster, *obs.SLO, error) {
		cfg := shard.Config{
			Replicas:     2,
			Chain:        resilient.DefaultChain(d.DB, lexicon.New()),
			Gateway:      resilient.Config{NoTrace: true, NoRetry: true},
			CacheSize:    -1, // every ask pays routing, so the tax is visible
			RetryBackoff: time.Millisecond,
			Seed:         seed,
			NoTrace:      true,
		}
		var slo *obs.SLO
		if instrumented {
			cfg.NoTrace = false
			cfg.Gateway.NoTrace = false
			cfg.Metrics = obs.NewRegistry()
			cfg.SlowLog = obs.NewSlowLog(time.Second, 64)
			cfg.Traces = obs.NewTraceStore(obs.TraceStoreConfig{})
			slo = obs.NewSLO(obs.SLOConfig{})
		}
		cl, err := shard.New(d.DB, shards, cfg)
		return cl, slo, err
	}

	// Keep only questions the sharded pipeline serves end to end.
	probe, _, err := mk(false)
	if err != nil {
		return obsShardOverhead{}, err
	}
	set := benchdata.WikiSQLStyle(d, 60, seed+5)
	var questions []string
	for _, p := range set.Pairs {
		if _, err := probe.Ask(context.Background(), p.Question); err == nil {
			questions = append(questions, p.Question)
		}
		if len(questions) == 8 {
			break
		}
	}
	if len(questions) < 2 {
		return obsShardOverhead{}, fmt.Errorf("obs bench: only %d shardable questions", len(questions))
	}

	untracedCl, _, err := mk(false)
	if err != nil {
		return obsShardOverhead{}, err
	}
	tracedCl, slo, err := mk(true)
	if err != nil {
		return obsShardOverhead{}, err
	}

	// Warm-up, then best-of-N with modes alternated (same rationale as the
	// gateway overhead run above).
	runObsShardWorkload(untracedCl, questions, nil)
	runObsShardWorkload(tracedCl, questions, slo)
	const reps = 5
	var untraced, instrumented time.Duration
	for i := 0; i < reps; i++ {
		u := runObsShardWorkload(untracedCl, questions, nil)
		if i == 0 || u < untraced {
			untraced = u
		}
		ins := runObsShardWorkload(tracedCl, questions, slo)
		if i == 0 || ins < instrumented {
			instrumented = ins
		}
	}
	return obsShardOverhead{
		Shards:         shards,
		Replicas:       2,
		Requests:       obsShardRequests,
		Reps:           reps,
		UntracedMS:     float64(untraced) / float64(time.Millisecond),
		InstrumentedMS: float64(instrumented) / float64(time.Millisecond),
		Pct:            100 * (float64(instrumented) - float64(untraced)) / float64(untraced),
	}, nil
}

// runObsShardWorkload drives the sharded workload serially and returns
// its wall time. Serial on purpose: the overhead comparison needs the
// per-request instrumentation tax, and a multi-worker closed loop on a
// small machine measures scheduler contention instead (the scatter path
// already fans out one goroutine per shard internally, so the traced
// concurrent machinery is still fully exercised). A non-nil slo gets one
// Observe per request, mirroring what the HTTP serving layer does per
// answer.
func runObsShardWorkload(cl *shard.Cluster, questions []string, slo *obs.SLO) time.Duration {
	start := time.Now()
	for i := 0; i < obsShardRequests; i++ {
		t0 := time.Now()
		ans, err := cl.Ask(context.Background(), questions[i%len(questions)])
		slo.Observe(time.Since(t0), err == nil && (ans == nil || !ans.Partial))
	}
	return time.Since(start)
}

// runObsWorkload asks every question on a fresh single-engine gateway per
// engine and returns total wall time across all engines. Per-query errors
// are expected (not every engine answers every question) and are counted
// by the gateway's own metrics when enabled.
func runObsWorkload(d *benchdata.Domain, questions []string, cfg resilient.Config) time.Duration {
	ctx := context.Background()
	var total time.Duration
	for _, name := range obsEngines {
		chain, err := resilient.ChainByNames(d.DB, lexicon.New(), []string{name})
		if err != nil {
			panic(err) // engine names are a package-level constant list
		}
		gw := resilient.New(d.DB, chain, cfg)
		t0 := time.Now()
		for _, q := range questions {
			gw.Ask(ctx, q)
		}
		total += time.Since(t0)
	}
	return total
}
