package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"nlidb/internal/benchdata"
	"nlidb/internal/lexicon"
	"nlidb/internal/obs"
	"nlidb/internal/resilient"
)

// obsReport is the BENCH_obs.json schema: per-engine latency percentiles
// from the instrumented run, plus a baseline-vs-instrumented overhead
// comparison demonstrating the tracing/metrics tax.
type obsReport struct {
	Seed      int64             `json:"seed"`
	Questions int               `json:"questions_per_engine"`
	Reps      int               `json:"reps"`
	Engines   []obsEngineReport `json:"engines"`
	Overhead  obsOverhead       `json:"overhead"`
}

type obsEngineReport struct {
	Engine  string  `json:"engine"`
	OK      int64   `json:"ok"`
	Errored int64   `json:"errored"`
	P50ms   float64 `json:"p50_ms"`
	P95ms   float64 `json:"p95_ms"`
	P99ms   float64 `json:"p99_ms"`
}

type obsOverhead struct {
	BaselineMS     float64 `json:"baseline_total_ms"`
	InstrumentedMS float64 `json:"instrumented_total_ms"`
	Pct            float64 `json:"overhead_pct"`
}

// obsEngines is the fallback-chain order; each runs alone (no fallback)
// so its percentiles are not polluted by another engine's retries.
var obsEngines = []string{"athena", "parse", "pattern", "keyword"}

// runObsBench replays the same question workload through four
// single-engine gateways twice — once with tracing+metrics off (baseline)
// and once fully instrumented — then writes the JSON report to path.
func runObsBench(path string, seed int64) error {
	d := benchdata.Sales(seed)
	set := benchdata.WikiSQLStyle(d, 80, seed+5)
	questions := make([]string, 0, len(set.Pairs))
	for _, p := range set.Pairs {
		questions = append(questions, p.Question)
	}
	if len(questions) == 0 {
		return fmt.Errorf("obs bench: empty workload")
	}

	// Warm-up pass so neither timed run pays one-time costs (lexicon
	// priming, allocator growth).
	runObsWorkload(d, questions, resilient.Config{NoTrace: true})

	// Best-of-N per mode, alternating modes so slow drift (thermal,
	// scheduler) hits both equally: the minimum is the least-perturbed
	// run, which is what the overhead comparison needs.
	const reps = 5
	var baseline, instrumented time.Duration
	reg := obs.NewRegistry()
	slow := obs.NewSlowLog(time.Second, 64)
	for i := 0; i < reps; i++ {
		b := runObsWorkload(d, questions, resilient.Config{NoTrace: true})
		if i == 0 || b < baseline {
			baseline = b
		}
		ins := runObsWorkload(d, questions, resilient.Config{Metrics: reg, SlowLog: slow})
		if i == 0 || ins < instrumented {
			instrumented = ins
		}
	}

	rep := obsReport{Seed: seed, Questions: len(questions), Reps: reps}
	for _, name := range obsEngines {
		h := reg.Histogram(resilient.MetricQuerySeconds, "engine", name)
		er := obsEngineReport{
			Engine: name,
			P50ms:  h.Quantile(0.50) * 1000,
			P95ms:  h.Quantile(0.95) * 1000,
			P99ms:  h.Quantile(0.99) * 1000,
		}
		for _, outcome := range []string{"ok", "error", "exhausted", "timeout", "budget"} {
			n := reg.Counter(resilient.MetricQueries, "engine", name, "outcome", outcome).Value()
			if outcome == "ok" {
				er.OK = n
			} else {
				er.Errored += n
			}
		}
		rep.Engines = append(rep.Engines, er)
	}
	rep.Overhead = obsOverhead{
		BaselineMS:     float64(baseline) / float64(time.Millisecond),
		InstrumentedMS: float64(instrumented) / float64(time.Millisecond),
		Pct:            100 * (float64(instrumented) - float64(baseline)) / float64(baseline),
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("obs bench: %d questions × %d engines, overhead %.2f%% → %s\n",
		len(questions), len(obsEngines), rep.Overhead.Pct, path)
	return nil
}

// runObsWorkload asks every question on a fresh single-engine gateway per
// engine and returns total wall time across all engines. Per-query errors
// are expected (not every engine answers every question) and are counted
// by the gateway's own metrics when enabled.
func runObsWorkload(d *benchdata.Domain, questions []string, cfg resilient.Config) time.Duration {
	ctx := context.Background()
	var total time.Duration
	for _, name := range obsEngines {
		chain, err := resilient.ChainByNames(d.DB, lexicon.New(), []string{name})
		if err != nil {
			panic(err) // engine names are a package-level constant list
		}
		gw := resilient.New(d.DB, chain, cfg)
		t0 := time.Now()
		for _, q := range questions {
			gw.Ask(ctx, q)
		}
		total += time.Since(t0)
	}
	return total
}
