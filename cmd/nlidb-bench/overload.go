package main

// The overload benchmark is the tentpole's acceptance experiment: drive
// the HTTP serving layer with an open-loop arrival process at 1×, 2×, 5×,
// and 10× its measured capacity, once behind the admission controller and
// once with admission effectively disabled (a limiter too large to ever
// bind), and record goodput and admitted-request latency. The claim under
// test: with admission control, goodput and admitted p99 stay flat (within
// 2×) from 1× to 10× offered load, while the unprotected server collapses
// — every request is accepted, all of them share one core, and none
// finishes inside its deadline.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"nlidb/internal/admission"
	"nlidb/internal/benchdata"
	"nlidb/internal/lexicon"
	"nlidb/internal/resilient"
	"nlidb/internal/server"
)

const (
	// overloadDeadlineMs is each request's client budget; a 250ms answer is
	// the survey's interactive bar, and overload shows up as missing it.
	overloadDeadlineMs = 250
	// overloadRunSeconds is the nominal duration of each load run.
	overloadRunSeconds = 2.0
	// overloadMaxRequests caps any single run (10× on a fast box would
	// otherwise spawn unbounded goroutines).
	overloadMaxRequests = 4000
	// overloadCapacityProbes sizes the serial capacity measurement.
	overloadCapacityProbes = 200
	// overloadReps: each (mode, multiplier) cell runs this many times on a
	// fresh server and reports the rep with the median admitted p99 — tail
	// percentiles on a small shared box are noisy, single runs doubly so.
	overloadReps = 3
)

// OverloadRun is one (mode, multiplier) cell of the experiment.
type OverloadRun struct {
	Mode       string  `json:"mode"` // "admission" or "baseline"
	Multiplier float64 `json:"multiplier"`
	OfferedQPS float64 `json:"offered_qps"`
	Requests   int     `json:"requests"`

	OK       int `json:"ok"`        // 200s inside the client deadline, measured from scheduled arrival
	LateOK   int `json:"late_ok"`   // 200s that arrived after the client would have given up
	Shed     int `json:"shed"`      // 503s — rejected up front
	Timeout  int `json:"timeout"`   // 504s — admitted but missed the deadline
	OtherErr int `json:"other_err"` // anything else

	GoodputQPS float64 `json:"goodput_qps"`
	// AdmittedP50ms/AdmittedP99ms are service-time percentiles over the
	// 200s: ServeHTTP entry to response, the span admission control
	// governs. E2EP99ms is the same tail measured from each request's
	// scheduled arrival; on this in-process single-box harness it also
	// includes the load generator's own scheduling backlog, which is why
	// the flatness claim is stated over service time while e2e is
	// reported alongside (it carries the baseline's collapse signal).
	AdmittedP50ms float64 `json:"admitted_p50_ms"`
	AdmittedP99ms float64 `json:"admitted_p99_ms"`
	E2EP99ms      float64 `json:"e2e_p99_ms"`
}

// OverloadReport is BENCH_overload.json.
type OverloadReport struct {
	GeneratedBy string  `json:"generated_by"`
	Seed        int64   `json:"seed"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	CapacityQPS float64 `json:"capacity_qps"`
	DeadlineMs  int     `json:"deadline_ms"`

	Runs []OverloadRun `json:"runs"`

	// AdmissionGoodputRatio / AdmissionP99Ratio: worst/best across the
	// admission runs in the overload range (multiplier ≥ 2; the 1× run is
	// the healthy reference). Acceptance: ≤ 2 — "flat within 2×".
	AdmissionGoodputRatio float64 `json:"admission_goodput_ratio"`
	AdmissionP99Ratio     float64 `json:"admission_p99_ratio"`
	// BaselineGoodputCollapse: baseline 1× goodput over baseline 10×
	// goodput (the bigger, the harder the unprotected server fell).
	BaselineGoodputCollapse float64 `json:"baseline_goodput_collapse"`
}

// overloadServer builds the system under test: the default chain over the
// Sales domain, no answer cache (every request pays the pipeline), and
// the given admission controller.
func overloadServer(d *benchdata.Domain, ctrl *admission.Controller) *server.Server {
	gw := resilient.New(d.DB, resilient.DefaultChain(d.DB, lexicon.New()),
		resilient.Config{NoTrace: true, NoRetry: true})
	return server.New(server.Config{Gateway: gw, Admission: ctrl})
}

// runOverloadBench measures the overload behavior and writes the JSON
// report to path.
func runOverloadBench(path string, seed int64) error {
	d := benchdata.Sales(seed)

	// Pick a handful of answerable questions; unanswerable ones would
	// measure chain exhaustion, not serving capacity.
	probe := resilient.New(d.DB, resilient.DefaultChain(d.DB, lexicon.New()),
		resilient.Config{NoTrace: true, NoRetry: true})
	set := benchdata.WikiSQLStyle(d, 40, seed+5)
	var questions []string
	for _, p := range set.Pairs {
		if _, err := probe.Ask(context.Background(), p.Question); err == nil {
			questions = append(questions, p.Question)
		}
		if len(questions) == 8 {
			break
		}
	}
	if len(questions) < 2 {
		return fmt.Errorf("overload bench: only %d answerable questions", len(questions))
	}

	// Capacity: serial round-robin service through a generously admitted
	// server — the 1-slot-per-core ceiling the load multipliers scale from.
	warm := overloadServer(d, admission.New(admission.Config{NoAdapt: true, MaxInFlight: 4}))
	start := time.Now()
	for i := 0; i < overloadCapacityProbes; i++ {
		rec := overloadRequest(warm, questions[i%len(questions)])
		if i == 0 && rec.Code != http.StatusOK {
			return fmt.Errorf("overload bench: warmup request failed: %d %s", rec.Code, rec.Body)
		}
	}
	capacity := float64(overloadCapacityProbes) / time.Since(start).Seconds()

	report := OverloadReport{
		GeneratedBy: "nlidb-bench -overload",
		Seed:        seed,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		CapacityQPS: capacity,
		DeadlineMs:  overloadDeadlineMs,
	}

	multipliers := []float64{1, 2, 5, 10}
	for _, mode := range []string{"admission", "baseline"} {
		for _, m := range multipliers {
			newCtrl := func() *admission.Controller {
				if mode == "admission" {
					return admission.New(admission.Config{})
				}
				// "No admission": a limiter that can never bind — every
				// request is admitted immediately and they all fight for
				// the same cores.
				return admission.New(admission.Config{
					NoAdapt: true, MaxInFlight: 1 << 20, MaxQueue: 1 << 20, BatchQueue: 1 << 20,
				})
			}
			reps := make([]OverloadRun, 0, overloadReps)
			for r := 0; r < overloadReps; r++ {
				reps = append(reps, overloadRun(overloadServer(d, newCtrl()), questions, mode, m, capacity))
			}
			sort.Slice(reps, func(i, j int) bool { return reps[i].AdmittedP99ms < reps[j].AdmittedP99ms })
			run := reps[len(reps)/2]
			report.Runs = append(report.Runs, run)
			fmt.Printf("  %-9s %4.0f×: offered %7.1f q/s  ok %4d  late %4d  shed %4d  timeout %4d  goodput %7.1f q/s  p99 %8.2fms  e2e-p99 %8.2fms\n",
				mode, m, run.OfferedQPS, run.OK, run.LateOK, run.Shed, run.Timeout, run.GoodputQPS, run.AdmittedP99ms, run.E2EP99ms)
		}
	}

	// Flatness and collapse ratios.
	var admGood, admP99, baseGood []float64
	for _, r := range report.Runs {
		if r.Mode == "admission" && r.Multiplier >= 2 {
			admGood = append(admGood, r.GoodputQPS)
			admP99 = append(admP99, r.AdmittedP99ms)
		}
		if r.Mode == "baseline" {
			baseGood = append(baseGood, r.GoodputQPS)
		}
	}
	report.AdmissionGoodputRatio = worstBest(admGood)
	report.AdmissionP99Ratio = worstBest(admP99)
	if last := baseGood[len(baseGood)-1]; last > 0 {
		report.BaselineGoodputCollapse = baseGood[0] / last
	} else {
		report.BaselineGoodputCollapse = float64(overloadMaxRequests) // total collapse: zero goodput at 10×
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("overload bench: capacity %.1f q/s, admission goodput ratio %.2f, p99 ratio %.2f, baseline collapse %.1f× → %s\n",
		capacity, report.AdmissionGoodputRatio, report.AdmissionP99Ratio, report.BaselineGoodputCollapse, path)
	return nil
}

// overloadRequest posts one question with the standard client budget.
func overloadRequest(s *server.Server, q string) *httptest.ResponseRecorder {
	body := fmt.Sprintf(`{"question": %q}`, q)
	req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(body))
	req.RemoteAddr = "192.0.2.1:4242"
	req.Header.Set("X-Deadline-Ms", fmt.Sprint(overloadDeadlineMs))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// overloadRun fires an open-loop arrival process at multiplier×capacity
// for overloadRunSeconds (bounded by overloadMaxRequests) and tallies the
// outcome. Open loop is the point: real clients do not slow down because
// the server is struggling, so neither does the generator — and latency
// is measured from each request's *scheduled* arrival, not from whenever
// the starved dispatcher actually got to spawn it, so queueing anywhere
// (the Go scheduler included) counts against the server, never hides
// behind it (the coordinated-omission correction).
func overloadRun(s *server.Server, questions []string, mode string, multiplier, capacity float64) OverloadRun {
	rate := multiplier * capacity
	n := int(rate * overloadRunSeconds)
	if n > overloadMaxRequests {
		n = overloadMaxRequests
	}
	if n < 1 {
		n = 1
	}

	type outcome struct {
		code    int
		latency time.Duration // from scheduled arrival (e2e, CO-corrected)
		service time.Duration // from ServeHTTP entry (what admission governs)
	}
	outcomes := make([]outcome, n)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		at := time.Duration(float64(i) / rate * float64(time.Second))
		if d := at - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int, scheduled time.Time) {
			defer wg.Done()
			t0 := time.Now()
			rec := overloadRequest(s, questions[i%len(questions)])
			service := time.Since(t0)
			outcomes[i] = outcome{code: rec.Code, latency: time.Since(scheduled), service: service}
		}(i, start.Add(at))
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	run := OverloadRun{Mode: mode, Multiplier: multiplier, OfferedQPS: rate, Requests: n}
	var okService, okE2E []float64
	deadline := overloadDeadlineMs * time.Millisecond
	for _, o := range outcomes {
		switch o.code {
		case http.StatusOK:
			okService = append(okService, float64(o.service)/float64(time.Millisecond))
			okE2E = append(okE2E, float64(o.latency)/float64(time.Millisecond))
			if o.latency <= deadline {
				run.OK++
			} else {
				// The server said 200, but past the client's budget: by the
				// time the answer existed, nobody was listening. Not goodput.
				run.LateOK++
			}
		case http.StatusServiceUnavailable, http.StatusTooManyRequests:
			run.Shed++
		case http.StatusGatewayTimeout:
			run.Timeout++
		default:
			run.OtherErr++
		}
	}
	run.GoodputQPS = float64(run.OK) / elapsed
	run.AdmittedP50ms = percentile(okService, 0.50)
	run.AdmittedP99ms = percentile(okService, 0.99)
	run.E2EP99ms = percentile(okE2E, 0.99)
	return run
}

// worstBest returns max/min of xs (0 when degenerate) — the "flat within
// k×" acceptance ratio.
func worstBest(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	min, max := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	if min <= 0 {
		return 0
	}
	return max / min
}
