package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"nlidb/internal/plan"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlparse"
)

// planReport is the BENCH_plan.json schema: per query class, the latency
// of the seed evaluation strategy (nested-loop join, no predicate
// pushdown) against the planned pipeline (hash join + pushdown) on the
// same 10k-row star schema, with the physical plan shapes for both so the
// speedup is attributable to the plan change and not to noise.
type planReport struct {
	Seed     int64 `json:"seed"`
	DimRows  int   `json:"dim_rows"`
	FactRows int   `json:"fact_rows"`
	Reps     int   `json:"reps"`

	Classes []planClass `json:"classes"`
	// MinJoinSpeedup is the smallest speedup across the join classes
	// (acceptance: ≥ 5).
	MinJoinSpeedup float64 `json:"min_join_speedup"`
}

// planClass is one benchmarked query class.
type planClass struct {
	Name string `json:"name"`
	SQL  string `json:"sql"`
	// BaselineMs / PlannedMs are best-of-reps execution latencies.
	BaselineMs float64 `json:"baseline_ms"`
	PlannedMs  float64 `json:"planned_ms"`
	Speedup    float64 `json:"speedup"`
	// BaselineShape / PlannedShape are the compact plan shapes, proving
	// the baseline really ran a nested-loop join and the planned run a
	// hash join.
	BaselineShape string `json:"baseline_shape"`
	PlannedShape  string `json:"planned_shape"`
	Rows          int    `json:"rows"`
}

const (
	planBenchDimRows  = 10_000
	planBenchFactRows = 10_000
	planBenchReps     = 5
)

// planBenchDB builds the star schema the plan benchmark joins over:
// dim(id, name, grp) and fact(id, dim_id, val), both at 10k rows, with
// fact.dim_id referencing dim.id so the equi-join is selective but
// non-trivial.
func planBenchDB(seed int64) (*sqldata.Database, error) {
	rng := rand.New(rand.NewSource(seed))
	db := sqldata.NewDatabase("planbench")
	dim, err := db.CreateTable(&sqldata.Schema{
		Name: "dim",
		Columns: []sqldata.Column{
			{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
			{Name: "name", Type: sqldata.TypeText},
			{Name: "grp", Type: sqldata.TypeInt},
		},
	})
	if err != nil {
		return nil, err
	}
	fact, err := db.CreateTable(&sqldata.Schema{
		Name: "fact",
		Columns: []sqldata.Column{
			{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
			{Name: "dim_id", Type: sqldata.TypeInt},
			{Name: "val", Type: sqldata.TypeFloat},
		},
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < planBenchDimRows; i++ {
		dim.MustInsert(sqldata.NewInt(int64(i)),
			sqldata.NewText(fmt.Sprintf("dim-%05d", i)),
			sqldata.NewInt(int64(i%97)))
	}
	for i := 0; i < planBenchFactRows; i++ {
		fact.MustInsert(sqldata.NewInt(int64(i)),
			sqldata.NewInt(int64(rng.Intn(planBenchDimRows))),
			sqldata.NewFloat(rng.Float64()*1000))
	}
	return db, nil
}

// planBenchBudget is DefaultBudget with the join-row meter lifted: the
// seed nested-loop strategy *scans* 100M candidate pairs at 10k×10k, but
// both strategies *emit* the same joined rows, so the default meters stay
// fair everywhere except JoinRows on low-selectivity classes.
func planBenchBudget() plan.Budget {
	b := plan.DefaultBudget()
	b.MaxJoinRows = -1
	b.MaxRows = -1
	return b
}

// runPlanBench measures the seed evaluation strategy against the planned
// pipeline per query class and writes the JSON report to path.
func runPlanBench(path string, seed int64) error {
	db, err := planBenchDB(seed)
	if err != nil {
		return err
	}
	classes := []struct{ name, sql string }{
		{"equi_join",
			"SELECT dim.name, fact.val FROM fact JOIN dim ON fact.dim_id = dim.id"},
		{"join_filter",
			"SELECT dim.name, fact.val FROM fact JOIN dim ON fact.dim_id = dim.id WHERE dim.grp = 7 AND fact.val > 500"},
		{"join_aggregate",
			"SELECT dim.grp, COUNT(*), AVG(fact.val) FROM fact JOIN dim ON fact.dim_id = dim.id GROUP BY dim.grp"},
	}

	ctx := context.Background()
	budget := planBenchBudget()
	rep := planReport{Seed: seed, DimRows: planBenchDimRows, FactRows: planBenchFactRows, Reps: planBenchReps}
	for _, c := range classes {
		stmt, err := sqlparse.Parse(c.sql)
		if err != nil {
			return fmt.Errorf("plan bench %s: %w", c.name, err)
		}
		baseline, err := plan.PrepareOpts(db, stmt, plan.Options{NoHashJoin: true, NoPushdown: true})
		if err != nil {
			return fmt.Errorf("plan bench %s (baseline): %w", c.name, err)
		}
		planned, err := plan.Prepare(db, stmt)
		if err != nil {
			return fmt.Errorf("plan bench %s (planned): %w", c.name, err)
		}

		time1 := func(p *plan.Plan, reps int) (time.Duration, int, error) {
			var best time.Duration
			var rows int
			for i := 0; i < reps; i++ {
				t0 := time.Now()
				res, _, err := p.Run(ctx, budget)
				el := time.Since(t0)
				if err != nil {
					return 0, 0, err
				}
				rows = len(res.Rows)
				if i == 0 || el < best {
					best = el
				}
			}
			return best, rows, nil
		}
		// The baseline nested loop touches 100M candidate pairs per run —
		// tens of seconds — so it runs once; rep noise is negligible at
		// that scale. The fast planned side keeps best-of-reps.
		bDur, bRows, err := time1(baseline, 1)
		if err != nil {
			return fmt.Errorf("plan bench %s (baseline): %w", c.name, err)
		}
		pDur, pRows, err := time1(planned, planBenchReps)
		if err != nil {
			return fmt.Errorf("plan bench %s (planned): %w", c.name, err)
		}
		if bRows != pRows {
			return fmt.Errorf("plan bench %s: baseline returned %d rows, planned %d", c.name, bRows, pRows)
		}

		cl := planClass{
			Name: c.name, SQL: c.sql,
			BaselineMs:    float64(bDur) / float64(time.Millisecond),
			PlannedMs:     float64(pDur) / float64(time.Millisecond),
			BaselineShape: baseline.Shape(),
			PlannedShape:  planned.Shape(),
			Rows:          pRows,
		}
		if cl.PlannedMs > 0 {
			cl.Speedup = cl.BaselineMs / cl.PlannedMs
		}
		rep.Classes = append(rep.Classes, cl)
		if rep.MinJoinSpeedup == 0 || cl.Speedup < rep.MinJoinSpeedup {
			rep.MinJoinSpeedup = cl.Speedup
		}
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	for _, c := range rep.Classes {
		fmt.Printf("plan bench: %-14s %8.1fms (nested-loop) vs %7.2fms (planned) = %6.1fx  [%s]\n",
			c.Name, c.BaselineMs, c.PlannedMs, c.Speedup, c.PlannedShape)
	}
	fmt.Printf("plan bench: min join speedup %.1fx at %d×%d rows → %s\n",
		rep.MinJoinSpeedup, planBenchDimRows, planBenchFactRows, path)
	return nil
}
