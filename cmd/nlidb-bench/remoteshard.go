package main

// The remote-shard benchmark prices the move from in-process shard nodes
// to real child processes speaking the HTTP protocol. The scaling sweep
// runs one closed-loop workload twice per cluster width — against the
// in-process cluster and against a supervisor-launched fleet of real
// cmd/nlidb children — so the socket+wire tax is measured, not guessed.
// The chaos timelines then SIGKILL actual processes (one replica, then a
// whole shard) under load and bucket goodput over time: answers must
// stay correct-or-honest through the kill window, and completeness must
// return after the supervisor restores the children.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"nlidb/internal/benchdata"
	"nlidb/internal/procnode"
	"nlidb/internal/resilient"
	"nlidb/internal/shard"
)

const (
	// remoteShardRequests per (mode, cluster width) scaling cell.
	remoteShardRequests = 200
	remoteShardWorkers  = 8
	// Each chaos timeline runs 5s: SIGKILL at 1.5s, restore at 2.5s —
	// the restore window is wide because the child must re-import its
	// CSV partition and pass /healthz before it takes traffic again.
	remoteChaosRunMs     = 5000
	remoteChaosKillMs    = 1500
	remoteChaosRestoreMs = 2500
	remoteChaosBucketMs  = 100
)

// RemoteScalingRun is one (mode, width) cell of the scaling comparison.
type RemoteScalingRun struct {
	Mode      string  `json:"mode"` // "in_process" or "out_of_process"
	Shards    int     `json:"shards"`
	Replicas  int     `json:"replicas"`
	Requests  int     `json:"requests"`
	Questions int     `json:"questions"`
	QPS       float64 `json:"qps"`
	P50ms     float64 `json:"p50_ms"`
	P99ms     float64 `json:"p99_ms"`
}

// RemoteChaosRun is one real-process kill/restore timeline.
type RemoteChaosRun struct {
	Scenario  string `json:"scenario"` // "replica_sigkill" or "shard_sigkill"
	Shards    int    `json:"shards"`
	Replicas  int    `json:"replicas"`
	KillMs    int    `json:"kill_ms"`
	RestoreMs int    `json:"restore_ms"`

	Timeline []ShardBucket `json:"timeline"`

	TotalOK      int `json:"total_ok"`
	TotalPartial int `json:"total_partial"`
	TotalFailed  int `json:"total_failed"`
	// RecoveredMs is the start of the first post-restore bucket with only
	// complete answers (-1 if completeness never returned).
	RecoveredMs int `json:"recovered_ms"`
	// SupervisorEvents counts the supervisor's lifecycle log lines
	// (launches, exits, restarts) — nonzero restarts prove the kills
	// were real processes dying, not flags flipping.
	SupervisorEvents int `json:"supervisor_events"`
}

// RemoteShardReport is BENCH_remote_shard.json.
type RemoteShardReport struct {
	GeneratedBy string `json:"generated_by"`
	Seed        int64  `json:"seed"`
	GOMAXPROCS  int    `json:"gomaxprocs"`

	Scaling []RemoteScalingRun `json:"scaling"`
	Chaos   []RemoteChaosRun   `json:"chaos"`
}

// buildNlidbBinary produces the child binary the supervisor forks.
// NLIDB_BIN overrides (for prebuilt setups); otherwise `go build` from
// the module root, which is where `make bench-remote-shard` runs.
func buildNlidbBinary(dir string) (string, error) {
	if env := os.Getenv("NLIDB_BIN"); env != "" {
		return env, nil
	}
	bin := filepath.Join(dir, "nlidb")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/nlidb")
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("remote-shard bench: building cmd/nlidb (run from the module root, or set NLIDB_BIN): %w", err)
	}
	return bin, nil
}

// benchRemoteFleet wires a coordinator Cluster over a supervisor's
// children with the same knobs as the in-process bench cluster, so the
// two scaling modes differ only in the hop.
func benchRemoteFleet(d *benchdata.Domain, sup *procnode.Supervisor, seed int64) (*shard.Cluster, error) {
	return shard.NewRemote(d.DB, shard.Config{
		Gateway:          resilient.Config{NoTrace: true, NoRetry: true},
		CacheSize:        -1,
		ReplicaThreshold: 3,
		ReplicaCooldown:  200 * time.Millisecond,
		RetryBackoff:     time.Millisecond,
		Seed:             seed,
	}, shard.RemoteFleet{Epoch: sup.Map().Epoch, Addrs: sup.AddrFuncs()})
}

// startBenchFleet forks shards×replicas real children serving their CSV
// partitions and waits for every /healthz.
func startBenchFleet(d *benchdata.Domain, bin string, shards, replicas int, seed int64, onEvent func(string)) (*procnode.Supervisor, error) {
	return procnode.Start(d.DB, procnode.Config{
		Binary:   bin,
		Shards:   shards,
		Replicas: replicas,
		Seed:     seed,
		OnEvent:  onEvent,
	})
}

// filterRemoteQuestions keeps the questions this specific fleet can
// serve end to end. Interpretation runs on a child over its own
// partition's vocabulary, so a question answerable by the in-process
// probe can still miss a value literal that hashed to another shard —
// each fleet earns its own workload.
func filterRemoteQuestions(cl *shard.Cluster, candidates []string) []string {
	var qs []string
	for _, q := range candidates {
		if _, err := cl.Ask(context.Background(), q); err == nil {
			qs = append(qs, q)
		}
	}
	return qs
}

// closedLoop drives the workload through ask with the bench worker pool
// and returns latency percentiles and throughput.
func closedLoop(ask func(context.Context, string) (*resilient.Answer, error), questions []string) (qps, p50, p99 float64, err error) {
	latencies := make([]float64, remoteShardRequests)
	var next atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < remoteShardWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= remoteShardRequests {
					return
				}
				t0 := time.Now()
				if _, aerr := ask(context.Background(), questions[i%len(questions)]); aerr != nil {
					firstErr.CompareAndSwap(nil, aerr)
					return
				}
				latencies[i] = float64(time.Since(t0)) / float64(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if e, ok := firstErr.Load().(error); ok {
		return 0, 0, 0, e
	}
	elapsed := time.Since(start).Seconds()
	return float64(remoteShardRequests) / elapsed, percentile(latencies, 0.50), percentile(latencies, 0.99), nil
}

// runRemoteShardBench measures the in-process vs out-of-process scaling
// comparison and the real-process chaos timelines, writing path.
func runRemoteShardBench(path string, seed int64) error {
	d := benchdata.Sales(seed)
	tmp, err := os.MkdirTemp("", "nlidb-remote-bench-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	bin, err := buildNlidbBinary(tmp)
	if err != nil {
		return err
	}

	// Candidate questions from an in-process probe; each fleet filters
	// them again against its own partition vocabularies.
	probe, err := shardCluster(d, 2, 1, seed, nil)
	if err != nil {
		return err
	}
	set := benchdata.WikiSQLStyle(d, 60, seed+5)
	var candidates []string
	for _, p := range set.Pairs {
		if _, err := probe.Ask(context.Background(), p.Question); err == nil {
			candidates = append(candidates, p.Question)
		}
		if len(candidates) == 8 {
			break
		}
	}
	if len(candidates) < 2 {
		return fmt.Errorf("remote-shard bench: only %d shardable questions", len(candidates))
	}

	report := RemoteShardReport{
		GeneratedBy: "nlidb-bench -remote-shard",
		Seed:        seed,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}

	for _, n := range []int{1, 2, 4} {
		sup, err := startBenchFleet(d, bin, n, 1, seed, nil)
		if err != nil {
			return fmt.Errorf("remote-shard bench: fleet n=%d: %w", n, err)
		}
		rcl, err := benchRemoteFleet(d, sup, seed)
		if err != nil {
			sup.Close()
			return err
		}
		qs := filterRemoteQuestions(rcl, candidates)
		if len(qs) < 2 {
			sup.Close()
			return fmt.Errorf("remote-shard bench: fleet n=%d serves only %d of %d candidate questions", n, len(qs), len(candidates))
		}
		// Same question set through both modes, so the cells compare.
		icl, err := shardCluster(d, n, 1, seed, nil)
		if err != nil {
			sup.Close()
			return err
		}
		for _, mode := range []struct {
			name string
			ask  func(context.Context, string) (*resilient.Answer, error)
		}{{"in_process", icl.Ask}, {"out_of_process", rcl.Ask}} {
			qps, p50, p99, err := closedLoop(mode.ask, qs)
			if err != nil {
				sup.Close()
				return fmt.Errorf("remote-shard bench: scaling n=%d %s: %w", n, mode.name, err)
			}
			report.Scaling = append(report.Scaling, RemoteScalingRun{
				Mode: mode.name, Shards: n, Replicas: 1,
				Requests: remoteShardRequests, Questions: len(qs),
				QPS: qps, P50ms: p50, P99ms: p99,
			})
			fmt.Printf("  scaling %d shard(s) %-14s: %7.1f q/s  p50 %6.2fms  p99 %6.2fms  (%d questions)\n",
				n, mode.name, qps, p50, p99, len(qs))
		}
		sup.Close()
	}

	for _, scenario := range []string{"replica_sigkill", "shard_sigkill"} {
		run, err := remoteChaosTimeline(d, bin, seed, candidates, scenario)
		if err != nil {
			return err
		}
		report.Chaos = append(report.Chaos, run)
		fmt.Printf("  chaos %-15s: ok %5d  partial %4d  failed %4d  recovered at t=%dms (restore at %dms)\n",
			scenario, run.TotalOK, run.TotalPartial, run.TotalFailed, run.RecoveredMs, run.RestoreMs)
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("remote-shard bench: %d scaling cells, %d chaos timelines → %s\n",
		len(report.Scaling), len(report.Chaos), path)
	return nil
}

// remoteChaosTimeline drives a 2×2 fleet of real processes through one
// SIGKILL/restore schedule and buckets the answers over time.
func remoteChaosTimeline(d *benchdata.Domain, bin string, seed int64, candidates []string, scenario string) (RemoteChaosRun, error) {
	var events atomic.Int64
	sup, err := startBenchFleet(d, bin, 2, 2, seed, func(string) { events.Add(1) })
	if err != nil {
		return RemoteChaosRun{}, fmt.Errorf("remote-shard bench: chaos fleet: %w", err)
	}
	defer sup.Close()
	cl, err := benchRemoteFleet(d, sup, seed)
	if err != nil {
		return RemoteChaosRun{}, err
	}
	qs := filterRemoteQuestions(cl, candidates)
	if len(qs) < 2 {
		return RemoteChaosRun{}, fmt.Errorf("remote-shard bench: chaos fleet serves only %d questions", len(qs))
	}

	kill := func() {
		sup.Proc(0, 0).Kill()
		if scenario == "shard_sigkill" {
			sup.Proc(0, 1).Kill()
		}
	}
	restore := func() {
		// Restore blocks until the child re-imports its partition and
		// passes /healthz; run both in parallel off the timer goroutine.
		var wg sync.WaitGroup
		for r := 0; r < 2; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				_ = sup.Proc(0, r).Restore()
			}(r)
		}
		wg.Wait()
	}

	nBuckets := remoteChaosRunMs / remoteChaosBucketMs
	buckets := make([]ShardBucket, nBuckets)
	for i := range buckets {
		buckets[i].TMs = i * remoteChaosBucketMs
	}
	var mu sync.Mutex
	var next atomic.Int64
	start := time.Now()
	time.AfterFunc(remoteChaosKillMs*time.Millisecond, kill)
	time.AfterFunc(remoteChaosRestoreMs*time.Millisecond, restore)

	var wg sync.WaitGroup
	for w := 0; w < remoteShardWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				elapsed := time.Since(start)
				if elapsed >= remoteChaosRunMs*time.Millisecond {
					return
				}
				i := int(next.Add(1)) - 1
				ans, err := cl.Ask(context.Background(), qs[i%len(qs)])
				b := int(time.Since(start) / (remoteChaosBucketMs * time.Millisecond))
				if b >= nBuckets {
					return
				}
				mu.Lock()
				switch {
				case err != nil:
					buckets[b].Failed++
				case ans.Partial:
					buckets[b].Partial++
				default:
					buckets[b].OK++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	run := RemoteChaosRun{
		Scenario:    scenario,
		Shards:      2,
		Replicas:    2,
		KillMs:      remoteChaosKillMs,
		RestoreMs:   remoteChaosRestoreMs,
		Timeline:    buckets,
		RecoveredMs: -1,
	}
	for _, b := range buckets {
		run.TotalOK += b.OK
		run.TotalPartial += b.Partial
		run.TotalFailed += b.Failed
	}
	for _, b := range buckets {
		if b.TMs >= remoteChaosRestoreMs && b.OK > 0 && b.Partial == 0 && b.Failed == 0 {
			run.RecoveredMs = b.TMs
			break
		}
	}
	run.SupervisorEvents = int(events.Load())
	return run, nil
}
