package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"nlidb/internal/athena"
	"nlidb/internal/benchdata"
	"nlidb/internal/dialogue"
	"nlidb/internal/lexicon"
	"nlidb/internal/resilient"
	"nlidb/internal/session"
)

// sessionReport is the BENCH_session.json schema. The workload is
// thousands of three-turn conversations (query → refine → aggregate)
// interleaved turn-by-turn across a worker pool, served two ways:
//
//   - session mode: each conversation holds a session in the store, so a
//     follow-up sends only the short utterance and resolves against
//     tracked context (hitting the context-keyed turn cache on repeats);
//   - stateless mode: the status quo without sessions — to answer turn k
//     the client must replay the whole history (turns 1..k) through a
//     fresh dialogue context, every time.
//
// Headline numbers: SessionGoodputQPS vs StatelessGoodputQPS and the two
// p99s (acceptance: sessions no worse, and warm follow-up p50 below cold
// — the turn cache pays for itself), with ContextBleeds == 0 pinning that
// no conversation ever observed another's context.
type sessionReport struct {
	Seed          int64 `json:"seed"`
	Conversations int   `json:"conversations"`
	TurnsPerConv  int   `json:"turns_per_conversation"`
	TotalTurns    int   `json:"total_turns"`
	Workers       int   `json:"workers"`
	Shapes        int   `json:"distinct_conversation_shapes"`

	SessionGoodputQPS float64 `json:"session_goodput_qps"`
	SessionP50ms      float64 `json:"session_p50_ms"`
	SessionP95ms      float64 `json:"session_p95_ms"`
	SessionP99ms      float64 `json:"session_p99_ms"`

	StatelessGoodputQPS float64 `json:"stateless_goodput_qps"`
	StatelessP50ms      float64 `json:"stateless_p50_ms"`
	StatelessP95ms      float64 `json:"stateless_p95_ms"`
	StatelessP99ms      float64 `json:"stateless_p99_ms"`
	// SessionSpeedup = session goodput / stateless goodput.
	SessionSpeedup float64 `json:"session_speedup"`

	// Cold vs warm follow-up resolution inside session mode: cold turns
	// ran resolve+execute, warm ones were served from the context-keyed
	// turn cache.
	ColdFollowUpP50ms float64 `json:"cold_followup_p50_ms"`
	WarmFollowUpP50ms float64 `json:"warm_followup_p50_ms"`
	WarmSpeedupP50    float64 `json:"warm_followup_speedup_p50"`

	// ContextBleeds counts conversations whose aggregate answer did not
	// match their own refined row set (acceptance: 0).
	ContextBleeds int64 `json:"context_bleeds"`

	SessionsCreated int64 `json:"sessions_created"`
	ContextHits     int64 `json:"context_cache_hits"`
	PeakLive        int   `json:"peak_live_sessions"`
}

const (
	sessionBenchConvs   = 2000
	sessionBenchWorkers = 16
)

// sessionConv is one scripted conversation: the short follow-up turns the
// session client sends, and the city/threshold shape behind them.
type sessionConv struct {
	turns [3]string
	id    string // session ID (session mode)
	rows  int64  // rows after the refine turn
	count int64  // the aggregate turn's answer
}

// runSessionBench measures conversational serving against the stateless
// replay baseline and writes the JSON report to path.
func runSessionBench(path string, seed int64) error {
	d := benchdata.Sales(seed)
	lex := lexicon.New()
	interp := athena.New(d.DB, lex)
	exec := resilient.New(d.DB, nil, resilient.Config{NoTrace: true})
	agent := dialogue.NewAgent(d.DB, interp, lex, exec)

	// 24 distinct shapes over thousands of conversations: most
	// conversations replay a shape someone already spoke, so the
	// context-keyed turn cache gets a realistic hit rate while cold
	// entries still exist to measure.
	cities := []string{"Berlin", "Munich", "Hamburg"}
	thresholds := []int{5000, 10000, 15000, 20000, 25000, 30000, 35000, 40000}
	rng := rand.New(rand.NewSource(seed * 104729))
	convs := make([]*sessionConv, sessionBenchConvs)
	for i := range convs {
		city := cities[rng.Intn(len(cities))]
		thr := thresholds[rng.Intn(len(thresholds))]
		convs[i] = &sessionConv{turns: [3]string{
			"show customers with city " + city,
			fmt.Sprintf("only those with credit over %d", thr),
			"how many are there",
		}}
	}

	st, err := session.New(session.Config{
		Responder: agent,
		DB:        d.DB,
		NoTrace:   true,
	})
	if err != nil {
		return err
	}

	// forEach fans the conversations across the worker pool in a seeded
	// shuffled order, so turns from thousands of conversations interleave.
	forEach := func(fn func(c *sessionConv)) {
		order := rng.Perm(len(convs))
		work := make(chan *sessionConv)
		var wg sync.WaitGroup
		for w := 0; w < sessionBenchWorkers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for c := range work {
					fn(c)
				}
			}()
		}
		for _, i := range order {
			work <- convs[i]
		}
		close(work)
		wg.Wait()
	}

	ctx := context.Background()
	var bleeds atomic.Int64
	var mu sync.Mutex
	var sessionLat, coldFollow, warmFollow []float64

	// --- Session mode: one session per conversation, turns interleaved
	// round by round so thousands of conversations are live at once.
	for _, c := range convs {
		c.id = st.Create()
	}
	peakLive := st.Len()
	t0 := time.Now()
	for turn := 0; turn < 3; turn++ {
		turn := turn
		forEach(func(c *sessionConv) {
			start := time.Now()
			res, err := st.Ask(ctx, c.id, c.turns[turn])
			el := float64(time.Since(start)) / float64(time.Millisecond)
			if err != nil {
				bleeds.Add(1) // a failed turn counts against correctness
				return
			}
			mu.Lock()
			sessionLat = append(sessionLat, el)
			if res.ContextFP != 0 {
				if res.Cached {
					warmFollow = append(warmFollow, el)
				} else {
					coldFollow = append(coldFollow, el)
				}
			}
			mu.Unlock()
			switch turn {
			case 1:
				c.rows = int64(len(res.Resp.Result.Rows))
			case 2:
				c.count = res.Resp.Result.Rows[0][0].Int()
			}
		})
	}
	sessionElapsed := time.Since(t0)
	for _, c := range convs {
		// The bleed check: each conversation's count must equal its own
		// refined row set, regardless of what the other 1999 asked.
		if c.count != c.rows {
			bleeds.Add(1)
		}
		st.End(c.id)
	}
	stats := st.Stats()

	// --- Stateless mode: no session state anywhere, so turn k replays the
	// whole history through a fresh context. That replay IS the cost of
	// the turn: it is what a stateless server must execute to answer it.
	var statelessLat []float64
	t0 = time.Now()
	for turn := 0; turn < 3; turn++ {
		turn := turn
		forEach(func(c *sessionConv) {
			start := time.Now()
			conv := &dialogue.Context{}
			var res *dialogue.Response
			var err error
			for k := 0; k <= turn; k++ {
				if res, err = agent.RespondWith(ctx, conv, c.turns[k]); err != nil {
					return
				}
			}
			el := float64(time.Since(start)) / float64(time.Millisecond)
			mu.Lock()
			statelessLat = append(statelessLat, el)
			mu.Unlock()
			if turn == 2 && res.Result.Rows[0][0].Int() != c.count {
				bleeds.Add(1)
			}
		})
	}
	statelessElapsed := time.Since(t0)

	rep := sessionReport{
		Seed: seed, Conversations: len(convs), TurnsPerConv: 3,
		TotalTurns: len(convs) * 3, Workers: sessionBenchWorkers,
		Shapes:            len(cities) * len(thresholds),
		SessionGoodputQPS: float64(len(sessionLat)) / sessionElapsed.Seconds(),
		SessionP50ms:      percentile(sessionLat, 0.50),
		SessionP95ms:      percentile(sessionLat, 0.95),
		SessionP99ms:      percentile(sessionLat, 0.99),

		StatelessGoodputQPS: float64(len(statelessLat)) / statelessElapsed.Seconds(),
		StatelessP50ms:      percentile(statelessLat, 0.50),
		StatelessP95ms:      percentile(statelessLat, 0.95),
		StatelessP99ms:      percentile(statelessLat, 0.99),

		ColdFollowUpP50ms: percentile(coldFollow, 0.50),
		WarmFollowUpP50ms: percentile(warmFollow, 0.50),

		ContextBleeds:   bleeds.Load(),
		SessionsCreated: stats.Created,
		ContextHits:     stats.ContextHits,
		PeakLive:        peakLive,
	}
	if rep.StatelessGoodputQPS > 0 {
		rep.SessionSpeedup = rep.SessionGoodputQPS / rep.StatelessGoodputQPS
	}
	if rep.WarmFollowUpP50ms > 0 {
		rep.WarmSpeedupP50 = rep.ColdFollowUpP50ms / rep.WarmFollowUpP50ms
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("session bench: %d conversations × 3 turns, %d workers: session %.0f qps p99 %.3fms vs stateless %.0f qps p99 %.3fms (%.1fx); warm follow-up p50 %.3fms vs cold %.3fms (%.1fx); bleeds %d → %s\n",
		rep.Conversations, rep.Workers,
		rep.SessionGoodputQPS, rep.SessionP99ms,
		rep.StatelessGoodputQPS, rep.StatelessP99ms, rep.SessionSpeedup,
		rep.WarmFollowUpP50ms, rep.ColdFollowUpP50ms, rep.WarmSpeedupP50,
		rep.ContextBleeds, path)
	if rep.ContextBleeds > 0 {
		return fmt.Errorf("session bench: %d context bleeds", rep.ContextBleeds)
	}
	return nil
}
