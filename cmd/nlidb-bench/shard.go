package main

// The shard benchmark records the fault-tolerant serving story in two
// acts. The scaling curve runs one closed-loop workload against clusters
// of 1, 2, 4, and 8 shards and reports throughput and latency
// percentiles — the honest in-process numbers, where sharding buys
// smaller per-shard scans rather than more machines. The chaos timelines
// then drive a 3×2 cluster through a seeded kill/restore schedule and
// bucket goodput over time: killing one replica must not dent answers at
// all, killing a whole shard degrades scatter answers to partial (and
// that shard's own questions to honest failures), and completeness must
// return within the breaker probe window after restore.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"nlidb/internal/benchdata"
	"nlidb/internal/lexicon"
	"nlidb/internal/resilient"
	"nlidb/internal/shard"
)

const (
	// shardScalingRequests per cluster size in the scaling sweep.
	shardScalingRequests = 400
	// shardWorkers is the closed-loop concurrency for every run.
	shardWorkers = 8
	// shardChaosRunMs / shardKillMs / shardRestoreMs: each chaos timeline
	// runs 3s, with the fault injected at 1s and healed at 2s.
	shardChaosRunMs    = 3000
	shardKillMs        = 1000
	shardRestoreMs     = 2000
	shardChaosBucketMs = 100
)

// ShardScalingRun is one point on the scaling curve.
type ShardScalingRun struct {
	Shards       int     `json:"shards"`
	Replicas     int     `json:"replicas"`
	Requests     int     `json:"requests"`
	QPS          float64 `json:"qps"`
	P50ms        float64 `json:"p50_ms"`
	P99ms        float64 `json:"p99_ms"`
	RowsPerShard []int   `json:"rows_per_shard"`
}

// ShardBucket is one interval of a chaos timeline. OK counts complete
// answers, Partial answers missing a shard, Failed errors.
type ShardBucket struct {
	TMs     int `json:"t_ms"`
	OK      int `json:"ok"`
	Partial int `json:"partial"`
	Failed  int `json:"failed"`
}

// ShardChaosRun is one kill/restore scenario's timeline.
type ShardChaosRun struct {
	Scenario  string `json:"scenario"` // "replica_kill" or "shard_kill"
	Shards    int    `json:"shards"`
	Replicas  int    `json:"replicas"`
	KillMs    int    `json:"kill_ms"`
	RestoreMs int    `json:"restore_ms"`

	Timeline []ShardBucket `json:"timeline"`

	TotalOK      int `json:"total_ok"`
	TotalPartial int `json:"total_partial"`
	TotalFailed  int `json:"total_failed"`
	// RecoveredMs is the start of the first post-restore bucket with only
	// complete answers (-1 if completeness never returned).
	RecoveredMs int `json:"recovered_ms"`
}

// ShardReport is BENCH_shard.json.
type ShardReport struct {
	GeneratedBy string `json:"generated_by"`
	Seed        int64  `json:"seed"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	Questions   int    `json:"questions"`

	Scaling []ShardScalingRun `json:"scaling"`
	Chaos   []ShardChaosRun   `json:"chaos"`
}

// shardCluster builds a bench cluster: default chain over the domain,
// fleet cache off so every ask pays routing and execution.
func shardCluster(d *benchdata.Domain, n, replicas int, seed int64, wrap func(s, r int, nd shard.Node) shard.Node) (*shard.Cluster, error) {
	return shard.New(d.DB, n, shard.Config{
		Replicas:         replicas,
		Chain:            resilient.DefaultChain(d.DB, lexicon.New()),
		Gateway:          resilient.Config{NoTrace: true, NoRetry: true},
		CacheSize:        -1,
		ReplicaThreshold: 3,
		ReplicaCooldown:  200 * time.Millisecond,
		RetryBackoff:     time.Millisecond,
		Seed:             seed,
		WrapNode:         wrap,
	})
}

// runShardBench measures the scaling curve and the chaos timelines and
// writes the JSON report to path.
func runShardBench(path string, seed int64) error {
	d := benchdata.Sales(seed)

	// Keep questions the sharded pipeline can actually serve: answerable
	// by the chain and distributable by the coordinator.
	probe, err := shardCluster(d, 2, 1, seed, nil)
	if err != nil {
		return err
	}
	set := benchdata.WikiSQLStyle(d, 60, seed+5)
	var questions []string
	for _, p := range set.Pairs {
		if _, err := probe.Ask(context.Background(), p.Question); err == nil {
			questions = append(questions, p.Question)
		}
		if len(questions) == 8 {
			break
		}
	}
	if len(questions) < 2 {
		return fmt.Errorf("shard bench: only %d shardable questions", len(questions))
	}

	report := ShardReport{
		GeneratedBy: "nlidb-bench -shard",
		Seed:        seed,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Questions:   len(questions),
	}

	for _, n := range []int{1, 2, 4, 8} {
		cl, err := shardCluster(d, n, 1, seed, nil)
		if err != nil {
			return err
		}
		run, err := shardScalingRun(cl, questions, n)
		if err != nil {
			return err
		}
		report.Scaling = append(report.Scaling, run)
		fmt.Printf("  scaling %d shard(s): %7.1f q/s  p50 %6.2fms  p99 %6.2fms  rows/shard %v\n",
			n, run.QPS, run.P50ms, run.P99ms, run.RowsPerShard)
	}

	for _, scenario := range []string{"replica_kill", "shard_kill"} {
		run, err := shardChaosRun(d, seed, questions, scenario)
		if err != nil {
			return err
		}
		report.Chaos = append(report.Chaos, run)
		fmt.Printf("  chaos %-12s: ok %5d  partial %4d  failed %4d  recovered at t=%dms (restore at %dms)\n",
			scenario, run.TotalOK, run.TotalPartial, run.TotalFailed, run.RecoveredMs, run.RestoreMs)
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("shard bench: %d questions, %d scaling points, %d chaos timelines → %s\n",
		len(questions), len(report.Scaling), len(report.Chaos), path)
	return nil
}

// shardScalingRun drives the closed-loop workload through one cluster.
func shardScalingRun(cl *shard.Cluster, questions []string, n int) (ShardScalingRun, error) {
	latencies := make([]float64, shardScalingRequests)
	var next atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < shardWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= shardScalingRequests {
					return
				}
				t0 := time.Now()
				if _, err := cl.Ask(context.Background(), questions[i%len(questions)]); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				latencies[i] = float64(time.Since(t0)) / float64(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok {
		return ShardScalingRun{}, fmt.Errorf("shard bench: scaling n=%d: %w", n, err)
	}
	elapsed := time.Since(start).Seconds()
	return ShardScalingRun{
		Shards:       n,
		Replicas:     1,
		Requests:     shardScalingRequests,
		QPS:          float64(shardScalingRequests) / elapsed,
		P50ms:        percentile(latencies, 0.50),
		P99ms:        percentile(latencies, 0.99),
		RowsPerShard: cl.Partitioning().RowsPerShard,
	}, nil
}

// shardChaosRun drives a 3×2 cluster through one kill/restore schedule
// and buckets the answers over time.
func shardChaosRun(d *benchdata.Domain, seed int64, questions []string, scenario string) (ShardChaosRun, error) {
	nodes := make([][]*shard.ChaosNode, 3)
	cl, err := shardCluster(d, 3, 2, seed, func(s, r int, nd shard.Node) shard.Node {
		cn := &shard.ChaosNode{Inner: nd}
		nodes[s] = append(nodes[s], cn)
		return cn
	})
	if err != nil {
		return ShardChaosRun{}, err
	}

	kill := func() {
		nodes[0][0].Kill()
		if scenario == "shard_kill" {
			nodes[0][1].Kill()
		}
	}
	restore := func() {
		nodes[0][0].Restore()
		nodes[0][1].Restore()
	}

	nBuckets := shardChaosRunMs / shardChaosBucketMs
	buckets := make([]ShardBucket, nBuckets)
	for i := range buckets {
		buckets[i].TMs = i * shardChaosBucketMs
	}
	var mu sync.Mutex
	var next atomic.Int64
	start := time.Now()
	time.AfterFunc(shardKillMs*time.Millisecond, kill)
	time.AfterFunc(shardRestoreMs*time.Millisecond, restore)

	var wg sync.WaitGroup
	for w := 0; w < shardWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				elapsed := time.Since(start)
				if elapsed >= shardChaosRunMs*time.Millisecond {
					return
				}
				i := int(next.Add(1)) - 1
				ans, err := cl.Ask(context.Background(), questions[i%len(questions)])
				b := int(time.Since(start) / (shardChaosBucketMs * time.Millisecond))
				if b >= nBuckets {
					return
				}
				mu.Lock()
				switch {
				case err != nil:
					buckets[b].Failed++
				case ans.Partial:
					buckets[b].Partial++
				default:
					buckets[b].OK++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	run := ShardChaosRun{
		Scenario:    scenario,
		Shards:      3,
		Replicas:    2,
		KillMs:      shardKillMs,
		RestoreMs:   shardRestoreMs,
		Timeline:    buckets,
		RecoveredMs: -1,
	}
	for _, b := range buckets {
		run.TotalOK += b.OK
		run.TotalPartial += b.Partial
		run.TotalFailed += b.Failed
	}
	for _, b := range buckets {
		if b.TMs >= shardRestoreMs && b.OK > 0 && b.Partial == 0 && b.Failed == 0 {
			run.RecoveredMs = b.TMs
			break
		}
	}
	return run, nil
}
