// Command nlidb-train trains the learned sketch parser (package mlsql) on
// DBPal-style synthetic data for one or more demo domains, reports
// held-out accuracy, and optionally saves the weights as JSON.
//
// Usage:
//
//	nlidb-train [-domains sales,movies] [-n 400] [-augment 1]
//	            [-ordered] [-no-typed] [-out model.json] [-seed N]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"nlidb/internal/benchdata"
	"nlidb/internal/dataset"
	"nlidb/internal/eval"
	"nlidb/internal/lexicon"
	"nlidb/internal/mlsql"
	"nlidb/internal/synth"
)

func main() {
	domainsFlag := flag.String("domains", "sales", "comma-separated training domains")
	n := flag.Int("n", 400, "synthetic pairs per domain")
	augment := flag.Int("augment", 1, "paraphrased variants per pair")
	ordered := flag.Bool("ordered", false, "use the Seq2SQL-style ordered decoder")
	noTyped := flag.Bool("no-typed", false, "disable the TypeSQL-style typed channel")
	out := flag.String("out", "", "write model weights to this JSON file")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	lex := lexicon.New()
	var trainSets []*dataset.Set
	var testDomain *benchdata.Domain
	for i, name := range strings.Split(*domainsFlag, ",") {
		d := benchdata.DomainByName(strings.TrimSpace(name), *seed)
		if d == nil {
			fmt.Fprintf(os.Stderr, "nlidb-train: unknown domain %q\n", name)
			os.Exit(1)
		}
		trainSets = append(trainSets, synth.TrainingSet(d, *n, *augment, lex, *seed+int64(i)*7))
		if testDomain == nil {
			testDomain = d
		}
	}

	cfg := mlsql.DefaultConfig()
	cfg.Ordered = *ordered
	cfg.TypeFeatures = !*noTyped
	cfg.Seed = *seed

	total := 0
	for _, s := range trainSets {
		total += len(s.Pairs)
	}
	fmt.Printf("training on %d synthetic pairs (%d set(s)); typed=%v ordered=%v\n",
		total, len(trainSets), cfg.TypeFeatures, cfg.Ordered)

	model, skipped, err := mlsql.Train(trainSets, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nlidb-train: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("trained (skipped %d out-of-sketch pairs)\n", skipped)

	test := benchdata.WikiSQLStyle(testDomain, 100, *seed+999)
	in := mlsql.NewInterpreter(testDomain.DB, model)
	in.FixedTable = testDomain.Main
	rep, err := eval.Evaluate(in, test)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nlidb-train: eval: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("held-out execution accuracy on %s: %.1f%% (n=%d)\n",
		testDomain.Name, 100*rep.Overall.Accuracy(), rep.Overall.Total)

	if *out != "" {
		data, err := json.MarshalIndent(model, "", " ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "nlidb-train: marshal: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "nlidb-train: write: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("weights written to %s (%d bytes)\n", *out, len(data))
	}
}
