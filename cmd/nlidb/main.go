// Command nlidb is an interactive natural-language interface to the demo
// databases: type English, see the generated SQL and its result.
//
// Usage:
//
//	nlidb [-domain sales] [-engine athena] [-chat] [-seed N]
//
// Engines: keyword, pattern, parse, athena (default). With -chat the
// session runs through the agent-based dialogue manager, so follow-ups
// like "only those with credit over 20000" and "how many are there" work.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"nlidb/internal/athena"
	"nlidb/internal/autocomplete"
	"nlidb/internal/benchdata"
	"nlidb/internal/dialogue"
	"nlidb/internal/keywordnl"
	"nlidb/internal/lexicon"
	"nlidb/internal/nlq"
	"nlidb/internal/ontology"
	"nlidb/internal/parsenl"
	"nlidb/internal/patternnl"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlexec"
)

func main() {
	domain := flag.String("domain", "sales", "demo domain: sales, movies, hospital, flights, university, medical")
	engine := flag.String("engine", "athena", "interpreter: keyword, pattern, parse, athena")
	chat := flag.Bool("chat", false, "conversational mode (agent-based dialogue manager)")
	seed := flag.Int64("seed", 1, "data generation seed")
	csvFiles := flag.String("csv", "", "comma-separated CSV files to query instead of a demo domain (table name = file name)")
	flag.Parse()

	var d *benchdata.Domain
	switch {
	case *csvFiles != "":
		db := sqldata.NewDatabase("csv")
		for _, path := range strings.Split(*csvFiles, ",") {
			path = strings.TrimSpace(path)
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "nlidb: %v\n", err)
				os.Exit(1)
			}
			name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
			tbl, err := sqldata.LoadCSV(name, f)
			f.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "nlidb: %v\n", err)
				os.Exit(1)
			}
			if err := db.AddTable(tbl); err != nil {
				fmt.Fprintf(os.Stderr, "nlidb: %v\n", err)
				os.Exit(1)
			}
		}
		d = &benchdata.Domain{Name: "csv", DB: db}
	case strings.EqualFold(*domain, "medical"):
		d = benchdata.Medical(*seed)
	default:
		d = benchdata.DomainByName(*domain, *seed)
	}
	if d == nil {
		fmt.Fprintf(os.Stderr, "nlidb: unknown domain %q\n", *domain)
		os.Exit(1)
	}

	lex := lexicon.New()
	var interp nlq.Interpreter
	switch strings.ToLower(*engine) {
	case "keyword":
		interp = keywordnl.New(d.DB, lex)
	case "pattern":
		interp = patternnl.New(d.DB, lex)
	case "parse":
		interp = parsenl.New(d.DB, lex)
	case "athena":
		interp = athena.New(d.DB, lex)
	default:
		fmt.Fprintf(os.Stderr, "nlidb: unknown engine %q\n", *engine)
		os.Exit(1)
	}

	fmt.Printf("nlidb — domain %q, engine %q%s\n", d.Name, interp.Name(),
		map[bool]string{true: ", conversational", false: ""}[*chat])
	fmt.Println("tables:")
	for _, t := range d.DB.Tables() {
		fmt.Printf("  %s\n", t.Schema.DDL())
	}
	fmt.Println(`type a question ("exit" to quit; "? <prefix>" for completions):`)

	completer := autocomplete.New(d.DB, ontology.FromDatabase(d.DB), lex)
	eng := sqlexec.New(d.DB)
	var agent *dialogue.Agent
	if *chat {
		agent = dialogue.NewAgent(d.DB, interp, lex)
	}

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "exit" || line == "quit" {
			break
		}
		if strings.HasPrefix(line, "?") {
			// TR-Discover-style completion of the typed prefix.
			prefix := strings.TrimSpace(strings.TrimPrefix(line, "?"))
			for _, s := range completer.Suggest(prefix, 8) {
				fmt.Printf("  %-24s (%s)\n", s.Text, s.Kind)
			}
			continue
		}
		if q, ok := strings.CutPrefix(line, "explain "); ok {
			ins, err := interp.Interpret(q)
			if err != nil {
				fmt.Printf("  could not interpret: %v\n", err)
				continue
			}
			best, _ := nlq.Best(ins)
			fmt.Printf("  SQL: %s\n", best.SQL)
			plan, err := eng.Explain(best.SQL)
			if err != nil {
				fmt.Printf("  explain failed: %v\n", err)
				continue
			}
			fmt.Println(indent(plan))
			continue
		}

		if agent != nil {
			resp, err := agent.Respond(line)
			if err != nil {
				fmt.Printf("  %s (%v)\n", resp.Message, err)
				continue
			}
			if resp.SQL != nil {
				fmt.Printf("  SQL: %s\n", resp.SQL)
			}
			if resp.Result != nil {
				fmt.Println(indent(resp.Result.String()))
			} else {
				fmt.Printf("  %s\n", resp.Message)
			}
			continue
		}

		ins, err := interp.Interpret(line)
		if err != nil {
			fmt.Printf("  could not interpret: %v\n", err)
			continue
		}
		best, _ := nlq.Best(ins)
		fmt.Printf("  SQL: %s  (confidence %.2f)\n", best.SQL, best.Score)
		if best.Clarification != nil {
			fmt.Printf("  note: ambiguous — %s %v\n", best.Clarification.Question, best.Clarification.Options)
		}
		res, err := eng.Run(best.SQL)
		if err != nil {
			fmt.Printf("  execution failed: %v\n", err)
			continue
		}
		fmt.Println(indent(res.String()))
	}
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(s, "\n", "\n  ")
}
