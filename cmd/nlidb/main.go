// Command nlidb is an interactive natural-language interface to the demo
// databases: type English, see the generated SQL and its result.
//
// Usage:
//
//	nlidb [-domain sales] [-engine athena] [-chat] [-seed N]
//	      [-timeout 5s] [-fallback parse,pattern,keyword] [-csv a.csv,b.csv]
//	      [-explain] [-metrics-addr 127.0.0.1:9090] [-slowlog 250ms]
//	      ["one-shot question"]
//
// Engines: keyword, pattern, parse, athena (default). With -chat the
// session runs through the agent-based dialogue manager, so follow-ups
// like "only those with credit over 20000" and "how many are there" work.
//
// Questions are served through the resilient gateway: -timeout bounds
// each question's wall-clock time (0 disables the deadline), and
// -fallback lists the engines tried, in order, after the primary -engine
// fails (empty string disables fallback). Every stage runs under panic
// isolation and a resource budget, so a pathological question reports an
// error instead of hanging or crashing the session.
//
// Observability: -explain renders each query's span tree (stage
// durations, the engine attempt trail, rows/budget counters, and the
// evaluation plan) after the answer; -metrics-addr serves /metrics
// (Prometheus text), /debug/vars (expvar), /debug/pprof, and /slowlog;
// -slowlog sets the slow-query threshold (0 disables the log). In the
// interactive session, "slowlog" dumps the retained slow queries. A
// positional argument runs one question and exits — the EXPLAIN mode of
// the acceptance demo: nlidb -explain "customers in Berlin".
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"nlidb/internal/autocomplete"
	"nlidb/internal/benchdata"
	"nlidb/internal/dialogue"
	"nlidb/internal/lexicon"
	"nlidb/internal/nlq"
	"nlidb/internal/obs"
	"nlidb/internal/ontology"
	"nlidb/internal/resilient"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlexec"
)

func main() {
	domain := flag.String("domain", "sales", "demo domain: sales, movies, hospital, flights, university, medical")
	engine := flag.String("engine", "athena", "primary interpreter: keyword, pattern, parse, athena")
	fallback := flag.String("fallback", "parse,pattern,keyword", "comma-separated engines tried after the primary fails (empty disables)")
	timeout := flag.Duration("timeout", 5*time.Second, "per-question wall-clock deadline (0 disables)")
	chat := flag.Bool("chat", false, "conversational mode (agent-based dialogue manager)")
	seed := flag.Int64("seed", 1, "data generation seed")
	csvFiles := flag.String("csv", "", "comma-separated CSV files to query instead of a demo domain (table name = file name)")
	explain := flag.Bool("explain", false, "print each query's trace tree (stages, durations, rows/budget counters, plan)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/pprof and /slowlog on this address")
	slowlog := flag.Duration("slowlog", 250*time.Millisecond, "slow-query log threshold (0 disables the log)")
	flag.Parse()

	var d *benchdata.Domain
	switch {
	case *csvFiles != "":
		db := sqldata.NewDatabase("csv")
		for _, path := range strings.Split(*csvFiles, ",") {
			if err := loadCSVTable(db, strings.TrimSpace(path)); err != nil {
				fatalf("%v", err)
			}
		}
		d = &benchdata.Domain{Name: "csv", DB: db}
	case strings.EqualFold(*domain, "medical"):
		d = benchdata.Medical(*seed)
	default:
		d = benchdata.DomainByName(*domain, *seed)
	}
	if d == nil {
		fatalf("unknown domain %q", *domain)
	}

	lex := lexicon.New()
	names := []string{*engine}
	if *fallback != "" {
		names = append(names, strings.Split(*fallback, ",")...)
	}
	chain, err := resilient.ChainByNames(d.DB, lex, names)
	if err != nil {
		fatalf("%v", err)
	}
	primary := chain[0]

	reg := obs.Default()
	var slow *obs.SlowLog
	if *slowlog > 0 {
		slow = obs.NewSlowLog(*slowlog, 128)
	}
	gw := resilient.New(d.DB, chain, resilient.Config{
		Timeout: *timeout, Metrics: reg, SlowLog: slow,
	})
	if *metricsAddr != "" {
		_, bound, err := obs.Serve(*metricsAddr, reg, slow)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("metrics: http://%s/metrics (also /debug/vars, /debug/pprof, /slowlog)\n", bound)
	}

	// One-shot mode: answer the positional question and exit.
	if flag.NArg() > 0 {
		question := strings.Join(flag.Args(), " ")
		ans, err := gw.Ask(context.Background(), question)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nlidb: could not answer: %v\n", err)
			var ce *resilient.ChainError
			if *explain && errors.As(err, &ce) && ce.Trace != nil {
				fmt.Println(ce.Trace)
			}
			os.Exit(1)
		}
		printAnswer(ans)
		if *explain {
			fmt.Println(ans.Trace)
		}
		return
	}

	fmt.Printf("nlidb — domain %q, engine %q%s\n", d.Name, primary.Name(),
		map[bool]string{true: ", conversational", false: ""}[*chat])
	if len(chain) > 1 {
		var rest []string
		for _, e := range chain[1:] {
			rest = append(rest, e.Name())
		}
		fmt.Printf("fallback: %s (timeout %s)\n", strings.Join(rest, " → "), *timeout)
	}
	fmt.Println("tables:")
	for _, t := range d.DB.Tables() {
		fmt.Printf("  %s\n", t.Schema.DDL())
	}
	fmt.Println(`type a question ("exit" to quit; "? <prefix>" for completions; "slowlog" for slow queries):`)

	completer := autocomplete.New(d.DB, ontology.FromDatabase(d.DB), lex)
	eng := sqlexec.New(d.DB)
	var agent *dialogue.Agent
	if *chat {
		agent = dialogue.NewAgent(d.DB, primary, lex)
	}

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "exit" || line == "quit" {
			break
		}
		if line == "slowlog" {
			if slow == nil {
				fmt.Println("  slow-query log disabled (-slowlog 0)")
			} else {
				fmt.Printf("  threshold %s, %d recorded\n%s\n", slow.Threshold(), slow.Total(), indent(slow.String()))
			}
			continue
		}
		if strings.HasPrefix(line, "?") {
			// TR-Discover-style completion of the typed prefix.
			prefix := strings.TrimSpace(strings.TrimPrefix(line, "?"))
			for _, s := range completer.Suggest(prefix, 8) {
				fmt.Printf("  %-24s (%s)\n", s.Text, s.Kind)
			}
			continue
		}
		if q, ok := strings.CutPrefix(line, "explain "); ok {
			ins, err := primary.Interpret(q)
			if err != nil {
				fmt.Printf("  could not interpret: %v\n", err)
				continue
			}
			best, _ := nlq.Best(ins)
			fmt.Printf("  SQL: %s\n", best.SQL)
			plan, err := eng.Explain(best.SQL)
			if err != nil {
				fmt.Printf("  explain failed: %v\n", err)
				continue
			}
			fmt.Println(indent(plan))
			continue
		}

		if agent != nil {
			resp, err := agent.Respond(line)
			if err != nil {
				fmt.Printf("  %s (%v)\n", resp.Message, err)
				continue
			}
			if resp.SQL != nil {
				fmt.Printf("  SQL: %s\n", resp.SQL)
			}
			if resp.Result != nil {
				fmt.Println(indent(resp.Result.String()))
			} else {
				fmt.Printf("  %s\n", resp.Message)
			}
			continue
		}

		ans, err := gw.Ask(context.Background(), line)
		if err != nil {
			fmt.Printf("  could not answer: %v\n", err)
			var ce *resilient.ChainError
			if *explain && errors.As(err, &ce) && ce.Trace != nil {
				fmt.Println(indent(ce.Trace.String()))
			}
			continue
		}
		printAnswer(ans)
		if *explain {
			fmt.Println(indent(ans.Trace.String()))
		}
	}
}

// printAnswer renders one gateway answer: SQL, provenance, rows.
func printAnswer(ans *resilient.Answer) {
	fmt.Printf("  SQL: %s  (confidence %.2f, engine %s", ans.SQL, ans.Score, ans.Engine)
	if ans.Simplified {
		fmt.Print(", simplified retry")
	}
	fmt.Printf(", %s)\n", ans.Elapsed.Round(time.Microsecond))
	fmt.Println(indent(ans.Result.String()))
}

// loadCSVTable loads one CSV file into db as a table named after the file,
// closing the file on every path. LoadCSV errors already carry the row and
// column of the offending cell; this wrapper prefixes the file path.
func loadCSVTable(db *sqldata.Database, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	tbl, err := sqldata.LoadCSV(name, f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if err := db.AddTable(tbl); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "nlidb: "+format+"\n", args...)
	os.Exit(1)
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(s, "\n", "\n  ")
}
