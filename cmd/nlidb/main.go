// Command nlidb is an interactive natural-language interface to the demo
// databases: type English, see the generated SQL and its result.
//
// Usage:
//
//	nlidb [-domain sales] [-engine athena] [-chat] [-seed N]
//	      [-timeout 5s] [-fallback parse,pattern,keyword] [-csv a.csv,b.csv]
//	      [-explain] [-metrics-addr 127.0.0.1:9090] [-slowlog 250ms]
//	      [-cache 1024] [-cache-ttl 0] [-parallel 8] [-plan-cache 256]
//	      [-serve 127.0.0.1:8080] [-drain-timeout 10s] [-max-inflight N]
//	      [-rate-limit R] [-shards N] [-replicas R] [-breaker-jitter D]
//	      [-remote-shards spawn:N|endpoints] [-join S@E] [-health-sql Q]
//	      [-session-ttl D] [-session-max N] [-session-mem BYTES]
//	      [-session-cache N] [-session-rate R]
//	      [-trace-sample P] [-trace-retain N] [-slo-latency D]
//	      [-slo-latency-objective P] [-slo-availability-objective P]
//	      ["one-shot question" | "q1; q2; q3"]
//
// Engines: keyword, pattern, parse, athena (default). With -chat the
// session runs through the agent-based dialogue manager, so follow-ups
// like "only those with credit over 20000" and "how many are there" work.
//
// Questions are served through the resilient gateway: -timeout bounds
// each question's wall-clock time (0 disables the deadline), and
// -fallback lists the engines tried, in order, after the primary -engine
// fails (empty string disables fallback). Every stage runs under panic
// isolation and a resource budget, so a pathological question reports an
// error instead of hanging or crashing the session.
//
// Observability: -explain renders each query's span tree (stage
// durations, the engine attempt trail, rows/budget counters, and the
// evaluation plan) after the answer; -metrics-addr serves /metrics
// (Prometheus text), /debug/vars (expvar), /debug/pprof, and /slowlog;
// -slowlog sets the slow-query threshold (0 disables the log). In the
// interactive session, "slowlog" dumps the retained slow queries. A
// positional argument runs one question and exits — the EXPLAIN mode of
// the acceptance demo: nlidb -explain "customers in Berlin".
//
// Scaling & caching: every question is served through a sharded answer
// cache (-cache sets the capacity in entries, 0 disables; -cache-ttl
// expires entries, 0 keeps them until evicted or the data changes — the
// cache key includes a database fingerprint, so inserts invalidate
// implicitly). A one-shot argument may pack several questions separated
// by ';'; with -parallel N they are served through the gateway's worker
// pool, sharing the cache, so repeats hit. Cached answers are marked in
// the provenance line and carry cached=true in the -explain trace.
//
// Serving: -serve exposes the gateway over HTTP (POST /query, POST
// /batch, plus the /metrics debug suite on the same port) behind the
// admission controller — adaptive concurrency limiting, deadline-aware
// queueing, priority classes, and optional per-client rate limiting
// (-rate-limit, req/s). -max-inflight caps concurrent admitted requests
// (0 = 2×GOMAXPROCS). On SIGINT/SIGTERM the server drains gracefully:
// new requests get 503 + Retry-After, in-flight ones get up to
// -drain-timeout to finish, stragglers are cancelled. See the README's
// Overload protection section for the protocol.
//
// Conversational serving (serve mode): POST /session opens a dialogue
// session, POST /session/ask resolves turns — follow-ups like "only
// those with credit over 20000" and "how many are there" — against the
// session's tracked context, DELETE /session ends it. Sessions live in
// a sharded store with a sliding -session-ttl, a -session-max cap, and
// a -session-mem byte budget (least-recently-used conversations are
// evicted under pressure and answer 410 Gone afterwards); repeated
// turns are answered from a context-keyed cache (-session-cache), and
// -session-rate adds a per-session token bucket on top of the
// per-client -rate-limit. Turn execution flows through the same serving
// backend as /query, so conversations inherit its caching, tracing, and
// fault tolerance.
//
// Fleet observability (serve mode): every uncached question is traced
// end-to-end — coordinator classify/route, per-replica attempts with
// hedge/retry/breaker annotations, merge — and tail-sampled into the
// /trace exemplar store (slow, failed, and partial queries always
// retained; healthy ones at -trace-sample under the -trace-retain span
// budget). /fleet reports per-shard/per-replica health rollups, and /slo
// serves multi-window (5m/1h/6h/3d) burn rates against the -slo-latency
// and availability objectives; both also ride the /metrics scrape.
//
// Fault tolerance: -shards N partitions the data across N in-process
// engine shards (foreign-key co-located) with -replicas R gateways each,
// behind health-checked, load-aware routing with hedged requests;
// cross-shard questions run scatter-gather and degrade to explicit
// partial answers when a shard has no healthy replica (see DESIGN.md's
// failure-modes matrix). Circuit-breaker half-open probes are jittered by
// default to avoid synchronized retry storms; -breaker-jitter 0 opts out,
// a positive value overrides the auto default (cooldown/8).
//
// Out-of-process shards (serve mode): -remote-shards spawn:N forks N×R
// real child processes of this binary — each importing its CSV partition
// and serving the internal HTTP protocol — supervised with /healthz
// readiness gates and jittered-backoff restart; mutually exclusive with
// -shards. Alternatively -remote-shards takes explicit endpoints
// ("http://h1:9001,http://h2:9001;http://h3:9002" — ';' between shards,
// ',' between replicas) for externally managed processes. Children are
// started with -join shard@epoch, which fences every internal request
// against a stale shard map (typed 409 on mismatch); GET /shardmap
// serves the coordinator's current versioned map. -health-sql overrides
// the deep-probe query /healthz?deep=1 executes (default: SELECT
// COUNT(*) on the first table; "none" disables the deep probe).
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"nlidb/internal/admission"
	"nlidb/internal/autocomplete"
	"nlidb/internal/benchdata"
	"nlidb/internal/dialogue"
	"nlidb/internal/lexicon"
	"nlidb/internal/nlq"
	"nlidb/internal/obs"
	"nlidb/internal/ontology"
	"nlidb/internal/qcache"
	"nlidb/internal/resilient"
	"nlidb/internal/server"
	"nlidb/internal/session"
	"nlidb/internal/shard"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlexec"
)

// disabledIfZero maps the CLI cache-size convention (0 = off) onto the
// cluster's (negative = off, 0 = default capacity).
func disabledIfZero(n int) int {
	if n == 0 {
		return -1
	}
	return n
}

func main() {
	domain := flag.String("domain", "sales", "demo domain: sales, movies, hospital, flights, university, medical")
	engine := flag.String("engine", "athena", "primary interpreter: keyword, pattern, parse, athena")
	fallback := flag.String("fallback", "parse,pattern,keyword", "comma-separated engines tried after the primary fails (empty disables)")
	timeout := flag.Duration("timeout", 5*time.Second, "per-question wall-clock deadline (0 disables)")
	chat := flag.Bool("chat", false, "conversational mode (agent-based dialogue manager)")
	seed := flag.Int64("seed", 1, "data generation seed")
	csvFiles := flag.String("csv", "", "comma-separated CSV files to query instead of a demo domain (table name = file name)")
	explain := flag.Bool("explain", false, "print each query's trace tree (stages, durations, rows/budget counters, plan)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/pprof and /slowlog on this address")
	slowlog := flag.Duration("slowlog", 250*time.Millisecond, "slow-query log threshold (0 disables the log)")
	cacheSize := flag.Int("cache", 1024, "answer-cache capacity in entries (0 disables caching)")
	cacheTTL := flag.Duration("cache-ttl", 0, "answer-cache entry lifetime (0 = until evicted or data changes)")
	parallel := flag.Int("parallel", 0, "worker-pool size for ';'-separated one-shot questions (0 = serial)")
	planCacheSize := flag.Int("plan-cache", 256, "physical-plan cache capacity in entries (0 disables)")
	serveAddr := flag.String("serve", "", "serve POST /query and /batch over HTTP on this address (e.g. 127.0.0.1:8080) instead of the REPL")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-drain budget for in-flight requests on SIGINT/SIGTERM (serve mode)")
	maxInflight := flag.Int("max-inflight", 0, "admission concurrency ceiling in serve mode (0 = 2×GOMAXPROCS)")
	rateLimit := flag.Float64("rate-limit", 0, "per-client request rate limit in req/s in serve mode (0 disables)")
	sessionTTL := flag.Duration("session-ttl", 15*time.Minute, "idle lifetime of a conversational session in serve mode (sliding; expired sessions answer 410 Gone)")
	sessionMax := flag.Int("session-max", 65536, "maximum live conversational sessions in serve mode (least-recently-used evicted beyond)")
	sessionMem := flag.Int64("session-mem", 64<<20, "memory budget in bytes for live session state in serve mode (least-recently-used evicted over budget)")
	sessionCache := flag.Int("session-cache", 4096, "context-keyed turn cache capacity in entries (0 disables)")
	sessionRate := flag.Float64("session-rate", 0, "per-session turn rate limit in req/s in serve mode (0 disables)")
	shards := flag.Int("shards", 0, "partition the data across N replicated engine shards in serve mode (0/1 = unsharded)")
	replicas := flag.Int("replicas", 2, "replicas per shard when -shards is set")
	remoteShards := flag.String("remote-shards", "", "serve through out-of-process shard nodes: \"spawn:N\" supervises N×replicas child processes, or list endpoints \"host:p1,host:p2;host:p3,host:p4\" (';' between shards, ',' between replicas)")
	join := flag.String("join", "", "run as a shard node joined at SHARD@EPOCH (set by the supervisor; refuses requests stamped with a different shard-map epoch)")
	healthSQL := flag.String("health-sql", "", "deep /healthz probe statement in serve mode (default: SELECT COUNT(*) over the first table; \"none\" disables the deep probe)")
	breakerJitter := flag.Duration("breaker-jitter", -1, "max random delay added to circuit-breaker half-open probes (-1 = auto: cooldown/8, 0 disables)")
	traceSample := flag.Float64("trace-sample", 0.01, "probability of retaining a healthy fast query's trace as an exemplar (slow/failed/partial traces are always retained; 1 keeps everything)")
	traceRetain := flag.Int("trace-retain", 16384, "retained-trace memory budget in spans for the /trace exemplar store")
	sloLatency := flag.Duration("slo-latency", 500*time.Millisecond, "latency SLO: per-request objective served on /slo and /metrics")
	sloLatencyObjective := flag.Float64("slo-latency-objective", 0.99, "target fraction of requests within -slo-latency")
	sloAvailObjective := flag.Float64("slo-availability-objective", 0.999, "target fraction of fully-available answers (partial answers and shard-down refusals count against this)")
	flag.Parse()

	var d *benchdata.Domain
	switch {
	case *csvFiles != "":
		db := sqldata.NewDatabase("csv")
		for _, path := range strings.Split(*csvFiles, ",") {
			if err := loadCSVTable(db, strings.TrimSpace(path)); err != nil {
				fatalf("%v", err)
			}
		}
		d = &benchdata.Domain{Name: "csv", DB: db}
	case strings.EqualFold(*domain, "medical"):
		d = benchdata.Medical(*seed)
	default:
		d = benchdata.DomainByName(*domain, *seed)
	}
	if d == nil {
		fatalf("unknown domain %q", *domain)
	}

	lex := lexicon.New()
	names := []string{*engine}
	if *fallback != "" {
		names = append(names, strings.Split(*fallback, ",")...)
	}
	chain, err := resilient.ChainByNames(d.DB, lex, names)
	if err != nil {
		fatalf("%v", err)
	}
	primary := chain[0]

	reg := obs.Default()
	var slow *obs.SlowLog
	if *slowlog > 0 {
		slow = obs.NewSlowLog(*slowlog, 128)
	}
	var cache *qcache.Cache
	if *cacheSize > 0 {
		cache = qcache.New(qcache.Config{MaxEntries: *cacheSize, TTL: *cacheTTL, Metrics: reg})
	}
	var planCache *qcache.Cache
	if *planCacheSize > 0 {
		// No metrics registry: plan-cache hit rates would share metric
		// families with the answer cache and double-count.
		planCache = qcache.New(qcache.Config{MaxEntries: *planCacheSize})
	}
	// Half-open probe jitter is on by default: breakers that tripped
	// together must not all retry the recovering engine at the same
	// instant. -breaker-jitter 0 opts out; any positive value overrides.
	jitter := *breakerJitter
	if jitter < 0 {
		jitter = resilient.DefaultBreakerJitter(0)
	}
	// The exemplar trace store backs GET /trace: slow/failed/partial
	// queries are always retained, healthy fast ones tail-sampled at
	// -trace-sample, all under the -trace-retain span budget.
	traces := obs.NewTraceStore(obs.TraceStoreConfig{
		SlowThreshold: *slowlog,
		SampleRate:    *traceSample,
		MaxSpans:      *traceRetain,
	})
	gw := resilient.New(d.DB, chain, resilient.Config{
		Timeout: *timeout, Metrics: reg, SlowLog: slow, Traces: traces,
		Cache: cache, PlanCache: planCache, Workers: *parallel,
		BreakerJitter: jitter,
	})
	if *serveAddr != "" {
		slo := obs.NewSLO(obs.SLOConfig{
			Latency:               *sloLatency,
			LatencyObjective:      *sloLatencyObjective,
			AvailabilityObjective: *sloAvailObjective,
		})
		obsOpts := []obs.HandlerOption{
			obs.WithPage("/slo", slo.Handler()),
			obs.WithPage("/trace", traces.Handler()),
			obs.WithProm(slo.WriteProm),
		}
		var backend server.Backend = gw
		// The session responder executes through the same backend the
		// stateless API uses — the gateway, or the shard coordinator when
		// -shards is set — so follow-up turns share its plan cache,
		// breakers, tracing, and partial-answer semantics.
		var sessExec dialogue.Executor = gw
		if *shards > 1 {
			cl, err := shard.New(d.DB, *shards, shard.Config{
				Replicas: *replicas,
				Chain:    chain,
				Gateway:  resilient.Config{BreakerJitter: jitter},
				Timeout:  *timeout,
				// The flag convention is 0 = off; the cluster's is negative =
				// off, 0 = default capacity.
				CacheSize:     disabledIfZero(*cacheSize),
				CacheTTL:      *cacheTTL,
				PlanCacheSize: disabledIfZero(*planCacheSize),
				Metrics:       reg,
				SlowLog:       slow,
				Traces:        traces,
				Seed:          *seed,
				Workers:       *parallel,
			})
			if err != nil {
				fatalf("%v", err)
			}
			backend = cl
			sessExec = cl
			obsOpts = append(obsOpts,
				obs.WithPage("/fleet", cl.FleetHandler()),
				obs.WithProm(cl.WriteProm))
			fmt.Printf("sharded: %d shards × %d replicas, rows/shard %v\n",
				cl.ShardCount(), cl.ReplicaCount(), cl.Partitioning().RowsPerShard)
		}
		if *remoteShards != "" {
			if *shards > 1 {
				fatalf("-shards and -remote-shards are mutually exclusive")
			}
			cl, mapSrc, sup, err := remoteCluster(d.DB, *remoteShards, *replicas, remoteClusterConfig{
				engine: *engine, fallback: *fallback, timeout: *timeout,
				cacheSize: *cacheSize, cacheTTL: *cacheTTL, planCacheSize: *planCacheSize,
				jitter: jitter, seed: *seed, workers: *parallel,
				metrics: reg, slow: slow, traces: traces,
			})
			if err != nil {
				fatalf("%v", err)
			}
			if sup != nil {
				defer sup.Close()
			}
			backend = cl
			sessExec = cl
			obsOpts = append(obsOpts,
				obs.WithPage("/fleet", cl.FleetHandler()),
				obs.WithPage("/shardmap", mapSrc.Handler()),
				obs.WithProm(cl.WriteProm))
			fmt.Printf("remote shards: %d shards × %d replicas (out-of-process), rows/shard %v\n",
				cl.ShardCount(), cl.ReplicaCount(), cl.Partitioning().RowsPerShard)
		}
		var sessionRL *admission.RateLimiter
		if *sessionRate > 0 {
			sessionRL = admission.NewRateLimiter(admission.RateConfig{RPS: *sessionRate})
		}
		var onEvict func(id, reason string)
		if sessionRL != nil {
			// Evicted sessions release their rate-limiter bucket so dead
			// conversations stop occupying tracked-client slots.
			onEvict = func(id, _ string) { sessionRL.Forget(id) }
		}
		sessions, err := session.New(session.Config{
			Responder:    dialogue.NewAgent(d.DB, primary, lex, sessExec),
			DB:           d.DB,
			TTL:          *sessionTTL,
			MaxSessions:  *sessionMax,
			MemoryBudget: *sessionMem,
			CacheSize:    disabledIfZero(*sessionCache),
			CacheTTL:     *cacheTTL,
			Metrics:      reg,
			SlowLog:      slow,
			Traces:       traces,
			OnEvict:      onEvict,
		})
		if err != nil {
			fatalf("%v", err)
		}
		// Deep /healthz probes default to a COUNT over the first table: a
		// statement every partition can answer, so a wedged pipeline fails
		// the probe while the port still accepts.
		probe := *healthSQL
		switch {
		case strings.EqualFold(probe, "none"):
			probe = ""
		case probe == "":
			if ts := d.DB.Tables(); len(ts) > 0 {
				probe = "SELECT COUNT(*) FROM " + ts[0].Schema.Name
			}
		}
		shardIdx, shardEpoch, err := parseJoin(*join)
		if err != nil {
			fatalf("%v", err)
		}
		if err := serve(backend, reg, slow, slo, serveOptions{
			addr:         *serveAddr,
			drainTimeout: *drainTimeout,
			maxInflight:  *maxInflight,
			rateLimit:    *rateLimit,
			sessions:     sessions,
			sessionRL:    sessionRL,
			healthSQL:    probe,
			shardIndex:   shardIdx,
			shardEpoch:   shardEpoch,
		}, obsOpts...); err != nil {
			fatalf("%v", err)
		}
		return
	}
	if *metricsAddr != "" {
		_, bound, err := obs.Serve(*metricsAddr, reg, slow, obs.WithPage("/trace", traces.Handler()))
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("metrics: http://%s/metrics (also /debug/vars, /debug/pprof, /slowlog, /trace)\n", bound)
	}

	// One-shot mode: answer the positional question(s) and exit. Several
	// questions may be packed into one argument separated by ';'; they
	// share the gateway — and therefore the answer cache — and run through
	// the worker pool when -parallel is set.
	if flag.NArg() > 0 {
		questions := splitQuestions(strings.Join(flag.Args(), " "))
		if len(questions) == 0 {
			fatalf("empty question")
		}
		oneShot(gw, questions, *parallel, *explain)
		return
	}

	fmt.Printf("nlidb — domain %q, engine %q%s\n", d.Name, primary.Name(),
		map[bool]string{true: ", conversational", false: ""}[*chat])
	if len(chain) > 1 {
		var rest []string
		for _, e := range chain[1:] {
			rest = append(rest, e.Name())
		}
		fmt.Printf("fallback: %s (timeout %s)\n", strings.Join(rest, " → "), *timeout)
	}
	fmt.Println("tables:")
	for _, t := range d.DB.Tables() {
		fmt.Printf("  %s\n", t.Schema.DDL())
	}
	fmt.Println(`type a question ("exit" to quit; "? <prefix>" for completions; "slowlog" for slow queries; "explain [analyze] <question>" for plans):`)

	completer := autocomplete.New(d.DB, ontology.FromDatabase(d.DB), lex)
	eng := sqlexec.New(d.DB)
	var agent *dialogue.Agent
	if *chat {
		// The chat agent executes through the same gateway as one-shot and
		// serve modes: plan cache, budgets, breakers, traces.
		agent = dialogue.NewAgent(d.DB, primary, lex, gw)
	}

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "exit" || line == "quit" {
			break
		}
		if line == "slowlog" {
			if slow == nil {
				fmt.Println("  slow-query log disabled (-slowlog 0)")
			} else {
				fmt.Printf("  threshold %s, %d recorded\n%s\n", slow.Threshold(), slow.Total(), indent(slow.String()))
			}
			continue
		}
		if strings.HasPrefix(line, "?") {
			// TR-Discover-style completion of the typed prefix.
			prefix := strings.TrimSpace(strings.TrimPrefix(line, "?"))
			for _, s := range completer.Suggest(prefix, 8) {
				fmt.Printf("  %-24s (%s)\n", s.Text, s.Kind)
			}
			continue
		}
		if q, ok := strings.CutPrefix(line, "explain analyze "); ok {
			ins, err := primary.Interpret(q)
			if err != nil {
				fmt.Printf("  could not interpret: %v\n", err)
				continue
			}
			best, _ := nlq.Best(ins)
			fmt.Printf("  SQL: %s\n", best.SQL)
			tree, res, err := eng.ExplainAnalyze(context.Background(), best.SQL, sqlexec.DefaultBudget())
			if err != nil {
				fmt.Printf("  explain analyze failed: %v\n", err)
				continue
			}
			fmt.Println(indent(tree))
			fmt.Printf("  (%d rows)\n", len(res.Rows))
			continue
		}
		if q, ok := strings.CutPrefix(line, "explain "); ok {
			ins, err := primary.Interpret(q)
			if err != nil {
				fmt.Printf("  could not interpret: %v\n", err)
				continue
			}
			best, _ := nlq.Best(ins)
			fmt.Printf("  SQL: %s\n", best.SQL)
			plan, err := eng.Explain(best.SQL)
			if err != nil {
				fmt.Printf("  explain failed: %v\n", err)
				continue
			}
			fmt.Println(indent(plan))
			continue
		}

		if agent != nil {
			resp, err := agent.Respond(context.Background(), line)
			if err != nil {
				fmt.Printf("  %s (%v)\n", resp.Message, err)
				continue
			}
			if resp.SQL != nil {
				fmt.Printf("  SQL: %s\n", resp.SQL)
			}
			if resp.Result != nil {
				fmt.Println(indent(resp.Result.String()))
			} else {
				fmt.Printf("  %s\n", resp.Message)
			}
			continue
		}

		ans, err := gw.Ask(context.Background(), line)
		if err != nil {
			fmt.Printf("  could not answer: %v\n", err)
			var ce *resilient.ChainError
			if *explain && errors.As(err, &ce) && ce.Trace != nil {
				fmt.Println(indent(ce.Trace.String()))
			}
			continue
		}
		printAnswer(ans)
		if *explain {
			fmt.Println(indent(ans.Trace.String()))
		}
	}
}

// splitQuestions splits a one-shot argument on ';' into trimmed,
// non-empty questions.
func splitQuestions(s string) []string {
	var out []string
	for _, q := range strings.Split(s, ";") {
		if q = strings.TrimSpace(q); q != "" {
			out = append(out, q)
		}
	}
	return out
}

// oneShot serves the one-shot questions — through the worker pool when
// parallel > 0 and there is more than one — and exits non-zero if any
// question failed.
func oneShot(gw *resilient.Gateway, questions []string, parallel int, explain bool) {
	multi := len(questions) > 1
	var results []resilient.BatchResult
	if parallel > 0 && multi {
		results = gw.ServeBatch(context.Background(), questions)
	} else {
		for i, q := range questions {
			ans, err := gw.Ask(context.Background(), q)
			results = append(results, resilient.BatchResult{Index: i, Question: q, Answer: ans, Err: err})
		}
	}
	failed := false
	for _, r := range results {
		if multi {
			fmt.Printf("» %s\n", r.Question)
		}
		if r.Err != nil {
			failed = true
			fmt.Fprintf(os.Stderr, "nlidb: could not answer: %v\n", r.Err)
			var ce *resilient.ChainError
			if explain && errors.As(r.Err, &ce) && ce.Trace != nil {
				fmt.Println(ce.Trace)
			}
			continue
		}
		printAnswer(r.Answer)
		if explain {
			fmt.Println(r.Answer.Trace)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// printAnswer renders one gateway answer: SQL, provenance, rows.
func printAnswer(ans *resilient.Answer) {
	fmt.Printf("  SQL: %s  (confidence %.2f, engine %s", ans.SQL, ans.Score, ans.Engine)
	if ans.Simplified {
		fmt.Print(", simplified retry")
	}
	if ans.Cached {
		fmt.Print(", cached")
	}
	fmt.Printf(", %s)\n", ans.Elapsed.Round(time.Microsecond))
	fmt.Println(indent(ans.Result.String()))
}

// loadCSVTable loads one CSV file into db as a table named after the file,
// closing the file on every path. LoadCSV errors already carry the row and
// column of the offending cell; this wrapper prefixes the file path.
func loadCSVTable(db *sqldata.Database, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	tbl, err := sqldata.LoadCSV(name, f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if err := db.AddTable(tbl); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "nlidb: "+format+"\n", args...)
	os.Exit(1)
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(s, "\n", "\n  ")
}
