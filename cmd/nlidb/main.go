// Command nlidb is an interactive natural-language interface to the demo
// databases: type English, see the generated SQL and its result.
//
// Usage:
//
//	nlidb [-domain sales] [-engine athena] [-chat] [-seed N]
//	      [-timeout 5s] [-fallback parse,pattern,keyword] [-csv a.csv,b.csv]
//
// Engines: keyword, pattern, parse, athena (default). With -chat the
// session runs through the agent-based dialogue manager, so follow-ups
// like "only those with credit over 20000" and "how many are there" work.
//
// One-shot questions are served through the resilient gateway: -timeout
// bounds each question's wall-clock time (0 disables the deadline), and
// -fallback lists the engines tried, in order, after the primary -engine
// fails (empty string disables fallback). Every stage runs under panic
// isolation and a resource budget, so a pathological question reports an
// error instead of hanging or crashing the session.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"nlidb/internal/autocomplete"
	"nlidb/internal/benchdata"
	"nlidb/internal/dialogue"
	"nlidb/internal/lexicon"
	"nlidb/internal/nlq"
	"nlidb/internal/ontology"
	"nlidb/internal/resilient"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlexec"
)

func main() {
	domain := flag.String("domain", "sales", "demo domain: sales, movies, hospital, flights, university, medical")
	engine := flag.String("engine", "athena", "primary interpreter: keyword, pattern, parse, athena")
	fallback := flag.String("fallback", "parse,pattern,keyword", "comma-separated engines tried after the primary fails (empty disables)")
	timeout := flag.Duration("timeout", 5*time.Second, "per-question wall-clock deadline (0 disables)")
	chat := flag.Bool("chat", false, "conversational mode (agent-based dialogue manager)")
	seed := flag.Int64("seed", 1, "data generation seed")
	csvFiles := flag.String("csv", "", "comma-separated CSV files to query instead of a demo domain (table name = file name)")
	flag.Parse()

	var d *benchdata.Domain
	switch {
	case *csvFiles != "":
		db := sqldata.NewDatabase("csv")
		for _, path := range strings.Split(*csvFiles, ",") {
			if err := loadCSVTable(db, strings.TrimSpace(path)); err != nil {
				fatalf("%v", err)
			}
		}
		d = &benchdata.Domain{Name: "csv", DB: db}
	case strings.EqualFold(*domain, "medical"):
		d = benchdata.Medical(*seed)
	default:
		d = benchdata.DomainByName(*domain, *seed)
	}
	if d == nil {
		fatalf("unknown domain %q", *domain)
	}

	lex := lexicon.New()
	names := []string{*engine}
	if *fallback != "" {
		names = append(names, strings.Split(*fallback, ",")...)
	}
	chain, err := resilient.ChainByNames(d.DB, lex, names)
	if err != nil {
		fatalf("%v", err)
	}
	primary := chain[0]
	gw := resilient.New(d.DB, chain, resilient.Config{Timeout: *timeout})

	fmt.Printf("nlidb — domain %q, engine %q%s\n", d.Name, primary.Name(),
		map[bool]string{true: ", conversational", false: ""}[*chat])
	if len(chain) > 1 {
		var rest []string
		for _, e := range chain[1:] {
			rest = append(rest, e.Name())
		}
		fmt.Printf("fallback: %s (timeout %s)\n", strings.Join(rest, " → "), *timeout)
	}
	fmt.Println("tables:")
	for _, t := range d.DB.Tables() {
		fmt.Printf("  %s\n", t.Schema.DDL())
	}
	fmt.Println(`type a question ("exit" to quit; "? <prefix>" for completions):`)

	completer := autocomplete.New(d.DB, ontology.FromDatabase(d.DB), lex)
	eng := sqlexec.New(d.DB)
	var agent *dialogue.Agent
	if *chat {
		agent = dialogue.NewAgent(d.DB, primary, lex)
	}

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "exit" || line == "quit" {
			break
		}
		if strings.HasPrefix(line, "?") {
			// TR-Discover-style completion of the typed prefix.
			prefix := strings.TrimSpace(strings.TrimPrefix(line, "?"))
			for _, s := range completer.Suggest(prefix, 8) {
				fmt.Printf("  %-24s (%s)\n", s.Text, s.Kind)
			}
			continue
		}
		if q, ok := strings.CutPrefix(line, "explain "); ok {
			ins, err := primary.Interpret(q)
			if err != nil {
				fmt.Printf("  could not interpret: %v\n", err)
				continue
			}
			best, _ := nlq.Best(ins)
			fmt.Printf("  SQL: %s\n", best.SQL)
			plan, err := eng.Explain(best.SQL)
			if err != nil {
				fmt.Printf("  explain failed: %v\n", err)
				continue
			}
			fmt.Println(indent(plan))
			continue
		}

		if agent != nil {
			resp, err := agent.Respond(line)
			if err != nil {
				fmt.Printf("  %s (%v)\n", resp.Message, err)
				continue
			}
			if resp.SQL != nil {
				fmt.Printf("  SQL: %s\n", resp.SQL)
			}
			if resp.Result != nil {
				fmt.Println(indent(resp.Result.String()))
			} else {
				fmt.Printf("  %s\n", resp.Message)
			}
			continue
		}

		ans, err := gw.Ask(context.Background(), line)
		if err != nil {
			fmt.Printf("  could not answer: %v\n", err)
			continue
		}
		fmt.Printf("  SQL: %s  (confidence %.2f, engine %s", ans.SQL, ans.Score, ans.Engine)
		if ans.Simplified {
			fmt.Print(", simplified retry")
		}
		fmt.Println(")")
		fmt.Println(indent(ans.Result.String()))
	}
}

// loadCSVTable loads one CSV file into db as a table named after the file,
// closing the file on every path. LoadCSV errors already carry the row and
// column of the offending cell; this wrapper prefixes the file path.
func loadCSVTable(db *sqldata.Database, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	tbl, err := sqldata.LoadCSV(name, f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if err := db.AddTable(tbl); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "nlidb: "+format+"\n", args...)
	os.Exit(1)
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(s, "\n", "\n  ")
}
