package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"nlidb/internal/obs"
	"nlidb/internal/procnode"
	"nlidb/internal/resilient"
	"nlidb/internal/shard"
	"nlidb/internal/sqldata"
)

// parseJoin decodes the -join flag ("SHARD@EPOCH") a supervisor passes
// to its children. Empty means "not a shard node" (index 0, epoch 0 —
// epoch 0 disables the fencing).
func parseJoin(v string) (int, int64, error) {
	if v == "" {
		return 0, 0, nil
	}
	s, e, ok := strings.Cut(v, "@")
	if !ok {
		return 0, 0, fmt.Errorf("-join %q: want SHARD@EPOCH", v)
	}
	idx, err := strconv.Atoi(s)
	if err != nil || idx < 0 {
		return 0, 0, fmt.Errorf("-join %q: bad shard index", v)
	}
	epoch, err := strconv.ParseInt(e, 10, 64)
	if err != nil || epoch <= 0 {
		return 0, 0, fmt.Errorf("-join %q: bad epoch", v)
	}
	return idx, epoch, nil
}

// remoteClusterConfig carries the flag values the remote coordinator
// path needs from main.
type remoteClusterConfig struct {
	engine, fallback string
	timeout          time.Duration
	cacheSize        int
	cacheTTL         time.Duration
	planCacheSize    int
	jitter           time.Duration
	seed             int64
	workers          int
	metrics          *obs.Registry
	slow             *obs.SlowLog
	traces           *obs.TraceStore
}

// remoteCluster builds the out-of-process coordinator for -remote-shards:
// either self-supervising ("spawn:N" launches N×replicas children of this
// very binary, each loading its partition over the CSV path) or routing
// to an explicit endpoint list ("a,b;c,d": ';' between shards, ','
// between replicas). The returned supervisor is nil for explicit fleets.
func remoteCluster(db *sqldata.Database, spec string, replicas int, cc remoteClusterConfig) (*shard.Cluster, *shard.MapSource, *procnode.Supervisor, error) {
	var (
		fleet  shard.RemoteFleet
		mapSrc *shard.MapSource
		sup    *procnode.Supervisor
	)
	if nStr, ok := strings.CutPrefix(spec, "spawn:"); ok {
		n, err := strconv.Atoi(nStr)
		if err != nil || n < 1 {
			return nil, nil, nil, fmt.Errorf("-remote-shards %q: want spawn:N with N >= 1", spec)
		}
		bin, err := os.Executable()
		if err != nil {
			return nil, nil, nil, fmt.Errorf("-remote-shards: %w", err)
		}
		sup, err = procnode.Start(db, procnode.Config{
			Binary:   bin,
			Shards:   n,
			Replicas: replicas,
			// Children interpret over their own partitions; the engine and
			// fallback chain travel so interpretation behaves like the
			// parent's.
			ExtraArgs: []string{"-engine", cc.engine, "-fallback", cc.fallback},
			Stderr:    os.Stderr,
			Seed:      cc.seed,
			OnEvent:   func(s string) { fmt.Println("supervisor:", s) },
		})
		if err != nil {
			return nil, nil, nil, err
		}
		fleet = shard.RemoteFleet{Epoch: sup.Map().Epoch, Addrs: sup.AddrFuncs()}
		mapSrc = shard.NewMapSource(sup.Map)
	} else {
		addrs, err := parseRemoteAddrs(spec)
		if err != nil {
			return nil, nil, nil, err
		}
		fns := make([][]func() string, len(addrs))
		for s := range addrs {
			fns[s] = make([]func() string, len(addrs[s]))
			for r := range addrs[s] {
				a := addrs[s][r]
				fns[s][r] = func() string { return a }
			}
		}
		// Explicit fleets carry no epoch: nodes not started with -join
		// have no shard map version to fence against.
		fleet = shard.RemoteFleet{Addrs: fns}
		mapSrc = shard.NewMapSource(func() shard.Map { return shard.Map{Shards: addrs} })
	}
	cl, err := shard.NewRemote(db, shard.Config{
		Timeout:       cc.timeout,
		CacheSize:     disabledIfZero(cc.cacheSize),
		CacheTTL:      cc.cacheTTL,
		PlanCacheSize: disabledIfZero(cc.planCacheSize),
		Gateway:       resilient.Config{BreakerJitter: cc.jitter},
		Metrics:       cc.metrics,
		SlowLog:       cc.slow,
		Traces:        cc.traces,
		Seed:          cc.seed,
		Workers:       cc.workers,
	}, fleet)
	if err != nil {
		if sup != nil {
			sup.Close()
		}
		return nil, nil, nil, err
	}
	return cl, mapSrc, sup, nil
}

// parseRemoteAddrs decodes an explicit endpoint list: shards separated
// by ';', replicas by ','. Endpoints without a scheme get "http://".
func parseRemoteAddrs(spec string) ([][]string, error) {
	var out [][]string
	for _, shardSpec := range strings.Split(spec, ";") {
		var reps []string
		for _, a := range strings.Split(shardSpec, ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				continue
			}
			if !strings.Contains(a, "://") {
				a = "http://" + a
			}
			reps = append(reps, strings.TrimRight(a, "/"))
		}
		if len(reps) == 0 {
			return nil, fmt.Errorf("-remote-shards %q: empty shard entry", spec)
		}
		out = append(out, reps)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-remote-shards %q: no shards", spec)
	}
	return out, nil
}
