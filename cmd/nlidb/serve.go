package main

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nlidb/internal/admission"
	"nlidb/internal/obs"
	"nlidb/internal/server"
	"nlidb/internal/session"
)

// serveOptions carries the -serve flag family.
type serveOptions struct {
	addr         string
	drainTimeout time.Duration
	maxInflight  int
	rateLimit    float64
	// sessions enables the conversational /session API; sessionRL is its
	// per-session turn limiter (both may be nil).
	sessions  *session.Store
	sessionRL *admission.RateLimiter
	// healthSQL is the deep /healthz probe statement ("" = shallow only).
	healthSQL string
	// shardIndex/shardEpoch identify this process as a shard node joined
	// under a versioned shard map (-join); epoch 0 = not a shard node.
	shardIndex int
	shardEpoch int64
}

// serve runs the HTTP front end until SIGINT/SIGTERM, then drains: the
// listener stops accepting, queued admission waiters are flushed with
// 503s, in-flight requests get up to -drain-timeout to finish, and any
// stragglers are cancelled through their request contexts before exit.
func serve(backend server.Backend, reg *obs.Registry, slow *obs.SlowLog, slo *obs.SLO, opts serveOptions, obsOpts ...obs.HandlerOption) error {
	ctrl := admission.New(admission.Config{MaxInFlight: opts.maxInflight, Metrics: reg})
	var rl *admission.RateLimiter
	if opts.rateLimit > 0 {
		rl = admission.NewRateLimiter(admission.RateConfig{RPS: opts.rateLimit})
	}
	api := server.New(server.Config{
		Backend:          backend,
		Admission:        ctrl,
		RateLimit:        rl,
		Metrics:          reg,
		SLO:              slo,
		Sessions:         opts.sessions,
		SessionRateLimit: opts.sessionRL,
		HealthSQL:        opts.healthSQL,
		ShardIndex:       opts.shardIndex,
		ShardEpoch:       opts.shardEpoch,
	})

	// One mux serves the query API and the debug suite, so a single port
	// carries /query, /batch, /metrics, /slowlog, /slo, /trace (and
	// /fleet when sharded) alongside /debug/pprof.
	mux := server.Mux(api, reg, slow, obsOpts...)

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	httpSrv := &http.Server{Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	fmt.Printf("serving http://%s  (POST /query, POST /batch; metrics at /metrics)\n", ln.Addr())
	if opts.sessions != nil {
		fmt.Printf("sessions: POST /session, /session/ask; ttl %s\n", opts.sessions.TTL())
	}
	fmt.Printf("admission: max in-flight %d, rate limit %s\n",
		ctrl.Limit(), map[bool]string{true: fmt.Sprintf("%.1f req/s per client", opts.rateLimit), false: "off"}[opts.rateLimit > 0])

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return fmt.Errorf("serve: %w", err)
	case s := <-sig:
		fmt.Printf("\n%s: draining (up to %s for in-flight requests)\n", s, opts.drainTimeout)
	}

	// Drain before touching the listener: while queries finish (or are
	// shed with 503s), /metrics and the rest of the debug suite keep
	// answering, so the drain itself can be watched. Only after the drain
	// completes does the port go away.
	clean := api.Drain(opts.drainTimeout)
	st := ctrl.Stats()
	fmt.Printf("drained clean=%v admitted=%d shed=%v\n", clean, st.Admitted, st.Shed)
	ln.Close()
	httpSrv.Close()
	if !clean {
		return fmt.Errorf("serve: drain timeout exceeded; stragglers were cancelled")
	}
	return nil
}
