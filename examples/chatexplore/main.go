// Chatexplore: the Section-5 scenario — iterative data exploration
// through a two-way conversation. The same scripted exchange is replayed
// through all three dialogue-manager families to show the flexibility
// ladder: finite-state < frame-based < agent-based.
package main

import (
	"context"
	"fmt"
	"log"

	"nlidb/internal/athena"
	"nlidb/internal/benchdata"
	"nlidb/internal/dialogue"
	"nlidb/internal/lexicon"
	"nlidb/internal/ontology"
	"nlidb/internal/resilient"
)

func main() {
	d := benchdata.Hospital(11)
	lex := lexicon.New()
	interp := athena.New(d.DB, lex)

	// Bootstrap the conversation artifacts from the ontology (Quamar et
	// al.): intents, training utterances, and entity value lists — no
	// manual labelling.
	arts := dialogue.Bootstrap(d.DB, ontology.FromDatabase(d.DB), 11)
	exCount := 0
	for _, in := range arts.Intents {
		exCount += len(in.Examples)
	}
	fmt.Printf("bootstrap: %d intents, %d training utterances, %d entities generated from the ontology\n",
		len(arts.Intents), exCount, len(arts.Entities))
	cls, err := dialogue.TrainIntentClassifier(arts, 11)
	if err != nil {
		log.Fatal(err)
	}
	for _, u := range []string{"how many doctors are there", "those with salary over 100000"} {
		name, p := cls.Classify(u)
		fmt.Printf("intent(%q) = %s (%.2f)\n", u, name, p)
	}
	fmt.Println()

	script := []string{
		"hello",
		"show doctors of the department cardiology",
		"only those with salary over 100000",
		"how many are there",
		"what about their experience instead",
		"reset",
	}

	// Dialogue turns execute through the same resilient gateway as the
	// serving stack — plans, budgets, and traces included.
	exec := resilient.New(d.DB, nil, resilient.Config{NoTrace: true})
	managers := []dialogue.Manager{
		dialogue.NewFiniteState(interp, exec),
		dialogue.NewFrame(d.DB, interp, lex, exec),
		dialogue.NewAgent(d.DB, interp, lex, exec),
	}

	for _, mgr := range managers {
		fmt.Printf("=== %s manager ===\n", mgr.Name())
		mgr.Reset()
		for _, u := range script {
			resp, err := mgr.Respond(context.Background(), u)
			fmt.Printf("user  > %s\n", u)
			switch {
			case err != nil:
				fmt.Printf("system> (failed) %s\n", resp.Message)
			case resp.SQL != nil:
				fmt.Printf("system> %s  →  %s\n", resp.Message, resp.SQL)
			default:
				fmt.Printf("system> %s\n", resp.Message)
			}
		}
		fmt.Println()
	}
}
