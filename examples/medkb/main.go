// Medkb: the query-relaxation scenario of Lei et al. (2020) — a medical
// knowledge base whose users speak colloquially ("statins",
// "painkillers") while the KB stores canonical terms ("drug"). With
// relaxation off, hyponym vocabulary fails; with it on, the lexicon's
// taxonomy bridges the gap and answers expand.
package main

import (
	"fmt"

	"nlidb/internal/athena"
	"nlidb/internal/benchdata"
	"nlidb/internal/lexicon"
	"nlidb/internal/nlq"
	"nlidb/internal/sqlexec"
)

func main() {
	d := benchdata.Medical(3)
	lex := lexicon.New()
	// Domain taxonomy: what users say IS-A what the KB stores.
	lex.AddHypernym("statin", "drug")
	lex.AddHypernym("painkiller", "drug")
	lex.AddSynonyms("ailment", "condition")

	eng := sqlexec.New(d.DB)
	questions := []string{
		"list all statins",
		"show the painkillers",
		"ailments with severity over 5",
		"drugs for the condition hypertension",
	}

	for _, relax := range []bool{false, true} {
		in := athena.New(d.DB, lex)
		in.Relax = relax
		fmt.Printf("— relaxation %v —\n", relax)
		for _, q := range questions {
			ins, err := in.Interpret(q)
			if err != nil {
				fmt.Printf("Q: %-42s → no interpretation (%v)\n", q, err)
				continue
			}
			best, _ := nlq.Best(ins)
			res, err := eng.Run(best.SQL)
			if err != nil {
				fmt.Printf("Q: %-42s → %s (execution failed: %v)\n", q, best.SQL, err)
				continue
			}
			fmt.Printf("Q: %-42s → %s (%d rows)\n", q, best.SQL, len(res.Rows))
		}
		fmt.Println()
	}
}
