// Quickstart: the 40-line end-to-end path — define a schema, load rows,
// auto-generate the ontology, and ask questions in English.
package main

import (
	"fmt"
	"log"

	"nlidb/internal/athena"
	"nlidb/internal/lexicon"
	"nlidb/internal/nlq"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlexec"
)

func main() {
	// 1. Define and fill a database.
	db := sqldata.NewDatabase("quickstart")
	emp, err := db.CreateTable(&sqldata.Schema{
		Name: "employee",
		Columns: []sqldata.Column{
			{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
			{Name: "name", Type: sqldata.TypeText},
			{Name: "salary", Type: sqldata.TypeFloat, Synonyms: []string{"pay"}},
			{Name: "city", Type: sqldata.TypeText},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	emp.MustInsert(sqldata.NewInt(1), sqldata.NewText("ann"), sqldata.NewFloat(95000), sqldata.NewText("Berlin"))
	emp.MustInsert(sqldata.NewInt(2), sqldata.NewText("bob"), sqldata.NewFloat(72000), sqldata.NewText("Munich"))
	emp.MustInsert(sqldata.NewInt(3), sqldata.NewText("cyd"), sqldata.NewFloat(88000), sqldata.NewText("Berlin"))

	// 2. Build an interpreter (ontology auto-generated from the schema).
	interp := athena.New(db, lexicon.New())
	eng := sqlexec.New(db)

	// 3. Ask questions.
	for _, q := range []string{
		"employees in Berlin",
		"what is the average salary of employees",
		"employees with pay over 80000",
	} {
		ins, err := interp.Interpret(q)
		if err != nil {
			log.Fatalf("%q: %v", q, err)
		}
		best, _ := nlq.Best(ins)
		res, err := eng.Run(best.SQL)
		if err != nil {
			log.Fatalf("%q: %v", q, err)
		}
		fmt.Printf("Q: %s\nSQL: %s\n%s\n\n", q, best.SQL, res)
	}
}
