// Salesbi: the class-4 showcase — nested business-intelligence questions
// over the sales star schema, answered through the ontology-driven
// interpreter, plus the same query built directly at the intermediate-
// representation level (ATHENA's OQL analogue).
package main

import (
	"fmt"
	"log"

	"nlidb/internal/athena"
	"nlidb/internal/benchdata"
	"nlidb/internal/ir"
	"nlidb/internal/lexicon"
	"nlidb/internal/nlq"
	"nlidb/internal/ontology"
	"nlidb/internal/schemagraph"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlexec"
)

func main() {
	d := benchdata.Sales(7)
	lex := lexicon.New()
	interp := athena.New(d.DB, lex)
	eng := sqlexec.New(d.DB)

	fmt.Println("— Nested BI questions in English —")
	for _, q := range []string{
		"products with price greater than the average price", // scalar sub-query
		"customers without orders",                           // NOT EXISTS
		"customers with more than 4 orders",                  // join + GROUP BY + HAVING COUNT
		"average quantity of orders per customer",            // aggregate over join
		"top 3 products by price",                            // ordering
	} {
		ins, err := interp.Interpret(q)
		if err != nil {
			log.Fatalf("%q: %v", q, err)
		}
		best, _ := nlq.Best(ins)
		res, err := eng.Run(best.SQL)
		if err != nil {
			log.Fatalf("%q: %s: %v", q, best.SQL, err)
		}
		fmt.Printf("Q: %s\nSQL: %s  [class: %s]\nrows: %d\n\n", q, best.SQL, nlq.Classify(best.SQL), len(res.Rows))
	}

	// The same BI query built programmatically at the IR level: "names of
	// customers whose total order volume exceeds 1000, with the volume".
	fmt.Println("— The IR-level API —")
	ont := ontology.FromDatabase(d.DB)
	compiler := &ir.Compiler{Ont: ont, Graph: schemagraph.Build(d.DB)}
	thousand := sqldata.NewFloat(1000)
	q := ir.NewQuery("customer")
	q.Projections = []ir.Projection{
		{Prop: &ir.PropRef{Concept: "customer", Property: "name"}},
		{Agg: ir.AggSum, Prop: &ir.PropRef{Concept: "orders", Property: "total"}, Alias: "volume"},
	}
	q.GroupBy = []ir.PropRef{{Concept: "customer", Property: "name"}}
	q.Conditions = []ir.Condition{{
		Agg: ir.AggSum, Prop: ir.PropRef{Concept: "orders", Property: "total"},
		Op: ">", Operand: ir.Operand{Value: &thousand},
	}}
	q.OrderBy = []ir.OrderSpec{{Agg: ir.AggSum, Prop: &ir.PropRef{Concept: "orders", Property: "total"}, Desc: true}}

	stmt, err := compiler.Compile(q)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run(stmt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SQL: %s\n%s\n", stmt, res)
}
