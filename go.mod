module nlidb

go 1.24
