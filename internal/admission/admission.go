// Package admission is the serving boundary's overload defence. The
// source paper frames NLIDBs as interactive front ends to data — answers
// must arrive while the user is still engaged — and an interactive system
// under more demand than capacity has exactly two choices: shed the
// excess quickly, or let every request queue until all of them are late.
// This package implements the first choice as a Controller: a
// concurrency limiter with a bounded, deadline-aware FIFO wait queue
// (a request whose remaining deadline cannot survive the predicted queue
// delay is rejected immediately instead of queued to die), an adaptive
// admit limit driven by measured queue delay (AIMD on the limit with a
// CoDel-style target), and priority classes so interactive queries
// outlive batch traffic when the limit tightens. A separate per-client
// token-bucket RateLimiter caps any single caller's request rate before
// it ever reaches the queue.
package admission

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"sync"

	"nlidb/internal/obs"
)

// Metric family names the controller publishes when Config.Metrics is
// set. Documented in the README's Overload protection section and
// asserted by `make overload-smoke`.
const (
	// MetricInFlight gauges the number of currently admitted requests.
	MetricInFlight = "nlidb_admission_inflight"
	// MetricLimit gauges the current adaptive admit limit.
	MetricLimit = "nlidb_admission_limit"
	// MetricQueueDepth gauges queued waiters by priority class.
	MetricQueueDepth = "nlidb_admission_queue_depth"
	// MetricQueueDelay is the histogram of time spent queued before
	// admission, by priority class (immediate admits observe 0).
	MetricQueueDelay = "nlidb_admission_queue_delay_seconds"
	// MetricAdmitted counts admitted requests by priority class.
	MetricAdmitted = "nlidb_admission_admitted_total"
	// MetricShed counts rejected requests by reason: "queue_full",
	// "deadline", "draining", "canceled" (caller gave up while queued) —
	// and, incremented by the HTTP server, "rate_limit".
	MetricShed = "nlidb_admission_shed_total"
)

// Rejection reasons, also used as the shed-counter label and the
// X-Shed-Reason response header.
var (
	// ErrQueueFull rejects a request because its class's wait queue is at
	// capacity — the system is saturated and honesty beats buffering.
	ErrQueueFull = errors.New("admission: wait queue full")
	// ErrDeadline rejects a request whose remaining deadline is smaller
	// than the predicted queue delay: it would wait, time out, and waste
	// the slot it finally got. Rejecting now lets the caller retry
	// elsewhere while its budget is still alive.
	ErrDeadline = errors.New("admission: deadline cannot survive queue delay")
	// ErrDraining rejects every request once StartDrain has been called.
	ErrDraining = errors.New("admission: draining")
)

// Priority classes order who survives when the admit limit tightens.
// Interactive waiters always dequeue before batch waiters, and batch gets
// a smaller wait queue, so under sustained overload batch traffic sheds
// first — the survey's interactive-latency requirement made load-bearing.
type Priority int

const (
	// Interactive is a user waiting at a prompt; the default.
	Interactive Priority = iota
	// Batch is throughput-oriented traffic that tolerates rejection.
	Batch
	numPriorities
)

// String names the class the way metrics label it.
func (p Priority) String() string {
	switch p {
	case Interactive:
		return "interactive"
	case Batch:
		return "batch"
	default:
		return fmt.Sprintf("Priority(%d)", int(p))
	}
}

// ParsePriority maps the wire form ("", "interactive", "batch") to a
// Priority; unknown strings are an error.
func ParsePriority(s string) (Priority, error) {
	switch s {
	case "", "interactive":
		return Interactive, nil
	case "batch":
		return Batch, nil
	default:
		return Interactive, fmt.Errorf("admission: unknown priority %q", s)
	}
}

// Config tunes a Controller. The zero value is serviceable: the admit
// limit starts (and is capped) at 2×GOMAXPROCS, the interactive queue
// holds 4× the limit, batch a quarter of that, the CoDel target delay is
// 5ms over 100ms windows, and adaptation is on.
type Config struct {
	// MaxInFlight is the admit-limit ceiling and its starting value
	// (default 2×GOMAXPROCS). The adaptive limit never exceeds it.
	MaxInFlight int
	// MinInFlight is the adaptive floor (default 1).
	MinInFlight int
	// MaxQueue bounds the interactive wait queue (default 4×MaxInFlight).
	MaxQueue int
	// BatchQueue bounds the batch wait queue (default MaxQueue/4, min 1).
	BatchQueue int
	// TargetDelay is the CoDel-style queue-delay target: when the minimum
	// queue delay observed over a whole Window exceeds it, a standing
	// queue exists and the admit limit decreases multiplicatively
	// (default 5ms).
	TargetDelay time.Duration
	// Window is the adaptation interval (default 100ms).
	Window time.Duration
	// NoAdapt freezes the admit limit at MaxInFlight — the queue, the
	// deadline check, and the priorities keep working.
	NoAdapt bool
	// Now is the clock, injectable for tests (default time.Now).
	Now func() time.Time
	// Metrics, when non-nil, receives the controller's gauges, counters,
	// and queue-delay histograms. Families are pre-registered at New.
	Metrics *obs.Registry
}

// Stats is a point-in-time view of the controller, for tests and the
// drain log line.
type Stats struct {
	// Limit is the current adaptive admit limit.
	Limit int
	// InFlight is the number of currently admitted requests.
	InFlight int
	// Queued is the number of waiters per priority class.
	Queued [2]int
	// Admitted counts requests admitted since construction.
	Admitted int64
	// Shed counts rejections since construction, by reason.
	Shed map[string]int64
}

// waiter is one queued request: granted by closing ready while holding
// the controller lock (granted=true), or abandoned by its own context.
type waiter struct {
	ready    chan struct{}
	enqueued time.Time
	class    Priority
	granted  bool
	drained  bool
}

// Controller is the admission gate in front of the serving pipeline. All
// methods are safe for concurrent use.
type Controller struct {
	cfg Config

	mu       sync.Mutex
	limit    int
	inflight int
	queues   [numPriorities]*list.List
	draining bool

	// ewmaService is the smoothed per-request service time (seconds),
	// fed by releases; it prices the queue for the deadline check.
	ewmaService float64

	// CoDel window state: the minimum delay of waiters dequeued this
	// window. Immediate admits do not count — only a waiter that actually
	// stood in line proves a standing queue.
	windowStart time.Time
	sawQueue    bool
	minDelay    time.Duration

	admitted int64
	shed     map[string]int64
}

// New builds a Controller. Config zero values are filled with defaults.
func New(cfg Config) *Controller {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.MinInFlight <= 0 {
		cfg.MinInFlight = 1
	}
	if cfg.MinInFlight > cfg.MaxInFlight {
		cfg.MinInFlight = cfg.MaxInFlight
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4 * cfg.MaxInFlight
	}
	if cfg.BatchQueue <= 0 {
		cfg.BatchQueue = cfg.MaxQueue / 4
		if cfg.BatchQueue < 1 {
			cfg.BatchQueue = 1
		}
	}
	if cfg.TargetDelay <= 0 {
		cfg.TargetDelay = 5 * time.Millisecond
	}
	if cfg.Window <= 0 {
		cfg.Window = 100 * time.Millisecond
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	c := &Controller{cfg: cfg, limit: cfg.MaxInFlight, shed: map[string]int64{}}
	for i := range c.queues {
		c.queues[i] = list.New()
	}
	if m := cfg.Metrics; m != nil {
		m.Gauge(MetricInFlight).Set(0)
		m.Gauge(MetricLimit).Set(int64(c.limit))
		for p := Interactive; p < numPriorities; p++ {
			m.Gauge(MetricQueueDepth, "class", p.String()).Set(0)
			m.Histogram(MetricQueueDelay, "class", p.String())
			m.Counter(MetricAdmitted, "class", p.String())
		}
		for _, reason := range []string{"queue_full", "deadline", "draining", "canceled", "rate_limit"} {
			m.Counter(MetricShed, "reason", reason)
		}
	}
	return c
}

// Limit reports the current adaptive admit limit.
func (c *Controller) Limit() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.limit
}

// Stats snapshots the controller.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		Limit:    c.limit,
		InFlight: c.inflight,
		Admitted: c.admitted,
		Shed:     make(map[string]int64, len(c.shed)),
	}
	for i := range c.queues {
		s.Queued[i] = c.queues[i].Len()
	}
	for k, v := range c.shed {
		s.Shed[k] = v
	}
	return s
}

// RetryAfterHint is the controller's advice for a shed request's
// Retry-After: roughly the time for the current backlog to clear, never
// below one second (whole seconds are what the header can carry).
func (c *Controller) RetryAfterHint() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	d := c.backlogDelayLocked(c.queues[Interactive].Len() + c.queues[Batch].Len())
	if d < time.Second {
		return time.Second
	}
	return d.Round(time.Second)
}

// backlogDelayLocked predicts how long a waiter behind `ahead` requests
// will stand in line: ahead service times spread over limit slots. Zero
// when no service-time sample exists yet.
func (c *Controller) backlogDelayLocked(ahead int) time.Duration {
	if c.ewmaService <= 0 || c.limit <= 0 {
		return 0
	}
	perSlot := float64(ahead+1) / float64(c.limit)
	return time.Duration(perSlot * c.ewmaService * float64(time.Second))
}

// Acquire admits the request, queues it, or rejects it. On admission it
// returns a release function that MUST be called exactly once when the
// request's work is done — release frees the slot, feeds the service-time
// estimate, and hands the slot to the next queued waiter. On rejection
// the error is ErrQueueFull, ErrDeadline, ErrDraining, or the context's
// own error if the caller's deadline expired while queued.
//
// The request's class decides both its queue (interactive waiters always
// dequeue first) and its queue capacity (batch queues are smaller), so
// when the adaptive limit tightens, batch traffic sheds first.
func (c *Controller) Acquire(ctx context.Context, class Priority) (release func(), err error) {
	if class < 0 || class >= numPriorities {
		class = Interactive
	}
	c.mu.Lock()
	now := c.cfg.Now()
	c.adaptLocked(now)
	if c.draining {
		c.shedLocked("draining")
		c.mu.Unlock()
		return nil, ErrDraining
	}
	// Immediate admission: a free slot and nobody of the same or higher
	// priority already waiting (queue order is preserved).
	if c.inflight < c.limit && c.aheadOfLocked(class) == 0 {
		c.admitLocked(class, 0)
		c.mu.Unlock()
		return c.releaseFunc(now), nil
	}

	// Queue — bounded per class.
	max := c.cfg.MaxQueue
	if class == Batch {
		max = c.cfg.BatchQueue
	}
	if c.queues[class].Len() >= max {
		c.shedLocked("queue_full")
		c.mu.Unlock()
		return nil, ErrQueueFull
	}
	// Deadline-aware rejection: if the predicted queue delay (plus one
	// service time to actually run) exceeds the request's remaining
	// budget, it cannot finish — reject now, while the caller can still
	// spend the budget elsewhere.
	if dl, ok := ctx.Deadline(); ok && c.ewmaService > 0 {
		est := c.backlogDelayLocked(c.aheadOfLocked(class))
		est += time.Duration(c.ewmaService * float64(time.Second))
		if now.Add(est).After(dl) {
			c.shedLocked("deadline")
			c.mu.Unlock()
			return nil, fmt.Errorf("%w (predicted %s, remaining %s)",
				ErrDeadline, est.Round(time.Microsecond), dl.Sub(now).Round(time.Microsecond))
		}
	}
	w := &waiter{ready: make(chan struct{}), enqueued: now, class: class}
	el := c.queues[class].PushBack(w)
	c.gaugeQueuesLocked()
	c.mu.Unlock()

	select {
	case <-w.ready:
		// granted was written before ready was closed (both under the
		// lock), so this read is ordered by the channel close. A close
		// without a grant is StartDrain flushing the queue.
		if !w.granted {
			return nil, ErrDraining
		}
		return c.releaseFunc(c.cfg.Now()), nil
	case <-ctx.Done():
		c.mu.Lock()
		if w.granted {
			// The grant raced the cancellation; the slot is ours, so take
			// it — the caller's next ctx check will unwind it cleanly.
			c.mu.Unlock()
			return c.releaseFunc(c.cfg.Now()), nil
		}
		if w.drained {
			// StartDrain already flushed (and counted) this waiter.
			c.mu.Unlock()
			return nil, ErrDraining
		}
		c.queues[class].Remove(el)
		c.shedLocked("canceled")
		c.gaugeQueuesLocked()
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// aheadOfLocked counts waiters that would be served before a new arrival
// of the given class: everyone in its own queue plus, for batch, every
// queued interactive waiter.
func (c *Controller) aheadOfLocked(class Priority) int {
	n := c.queues[class].Len()
	if class == Batch {
		n += c.queues[Interactive].Len()
	}
	return n
}

// admitLocked books one admission with the given queue delay.
func (c *Controller) admitLocked(class Priority, waited time.Duration) {
	c.inflight++
	c.admitted++
	if m := c.cfg.Metrics; m != nil {
		m.Gauge(MetricInFlight).Set(int64(c.inflight))
		m.Counter(MetricAdmitted, "class", class.String()).Inc()
		m.Histogram(MetricQueueDelay, "class", class.String()).Observe(waited.Seconds())
	}
}

// releaseFunc builds the once-only release closure for a slot admitted at
// admitTime.
func (c *Controller) releaseFunc(admitTime time.Time) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			now := c.cfg.Now()
			c.inflight--
			if svc := now.Sub(admitTime).Seconds(); svc >= 0 {
				if c.ewmaService == 0 {
					c.ewmaService = svc
				} else {
					c.ewmaService = 0.8*c.ewmaService + 0.2*svc
				}
			}
			// Hand freed capacity to the line: interactive first, FIFO
			// within a class.
			for c.inflight < c.limit {
				w := c.popLocked()
				if w == nil {
					break
				}
				waited := now.Sub(w.enqueued)
				if !c.sawQueue || waited < c.minDelay {
					c.minDelay = waited
				}
				c.sawQueue = true
				w.granted = true
				c.admitLocked(w.class, waited)
				close(w.ready)
			}
			c.adaptLocked(now)
			if m := c.cfg.Metrics; m != nil {
				m.Gauge(MetricInFlight).Set(int64(c.inflight))
			}
			c.gaugeQueuesLocked()
			c.mu.Unlock()
		})
	}
}

// popLocked removes and returns the next waiter to serve (nil when both
// queues are empty).
func (c *Controller) popLocked() *waiter {
	for p := Interactive; p < numPriorities; p++ {
		if el := c.queues[p].Front(); el != nil {
			c.queues[p].Remove(el)
			return el.Value.(*waiter)
		}
	}
	return nil
}

// adaptLocked runs the AIMD window: when a whole window's minimum queue
// delay stayed above target, a standing queue exists — decrease the limit
// multiplicatively; otherwise probe upward additively toward the ceiling.
func (c *Controller) adaptLocked(now time.Time) {
	if c.cfg.NoAdapt {
		return
	}
	if c.windowStart.IsZero() {
		c.windowStart = now
		return
	}
	if now.Sub(c.windowStart) < c.cfg.Window {
		return
	}
	if c.sawQueue && c.minDelay > c.cfg.TargetDelay {
		dec := c.limit / 8
		if dec < 1 {
			dec = 1
		}
		c.limit -= dec
		if c.limit < c.cfg.MinInFlight {
			c.limit = c.cfg.MinInFlight
		}
	} else if c.limit < c.cfg.MaxInFlight {
		c.limit++
	}
	c.sawQueue = false
	c.minDelay = 0
	c.windowStart = now
	if m := c.cfg.Metrics; m != nil {
		m.Gauge(MetricLimit).Set(int64(c.limit))
	}
}

// StartDrain flips the controller into drain mode: every future Acquire
// is rejected with ErrDraining, and every currently queued waiter is
// flushed with the same rejection (queued work has not started; the point
// of draining is to finish what has). In-flight slots are untouched —
// their releases still run. Idempotent.
func (c *Controller) StartDrain() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		return
	}
	c.draining = true
	for {
		w := c.popLocked()
		if w == nil {
			break
		}
		// granted stays false: the waiter's Acquire sees ready closed
		// without a grant and must treat it as a drain rejection.
		w.drained = true
		close(w.ready)
		c.shedLocked("draining")
	}
	c.gaugeQueuesLocked()
}

// Draining reports whether StartDrain has been called.
func (c *Controller) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

func (c *Controller) shedLocked(reason string) {
	c.shed[reason]++
	if m := c.cfg.Metrics; m != nil {
		m.Counter(MetricShed, "reason", reason).Inc()
	}
}

func (c *Controller) gaugeQueuesLocked() {
	if m := c.cfg.Metrics; m != nil {
		for p := Interactive; p < numPriorities; p++ {
			m.Gauge(MetricQueueDepth, "class", p.String()).Set(int64(c.queues[p].Len()))
		}
	}
}
