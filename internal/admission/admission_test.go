package admission

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a mutex-guarded manual clock for deterministic tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(0, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestAcquireReleaseImmediate(t *testing.T) {
	c := New(Config{MaxInFlight: 2, NoAdapt: true})
	rel1, err := c.Acquire(context.Background(), Interactive)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := c.Acquire(context.Background(), Interactive)
	if err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.InFlight != 2 || s.Admitted != 2 {
		t.Fatalf("stats %+v, want 2 in flight, 2 admitted", s)
	}
	rel1()
	rel1() // release must be once-only
	rel2()
	if s := c.Stats(); s.InFlight != 0 {
		t.Fatalf("in flight %d after releases, want 0", s.InFlight)
	}
}

func TestQueueFIFOAndHandoff(t *testing.T) {
	c := New(Config{MaxInFlight: 1, MaxQueue: 8, NoAdapt: true})
	rel, err := c.Acquire(context.Background(), Interactive)
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := c.Acquire(context.Background(), Interactive)
			if err != nil {
				t.Errorf("waiter %d rejected: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			r()
		}(i)
		// Serialize enqueue order so FIFO is observable.
		waitFor(t, func() bool { return c.Stats().Queued[Interactive] == i+1 })
	}
	rel()
	wg.Wait()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("dequeue order %v, want [0 1 2]", order)
	}
}

func TestQueueFullSheds(t *testing.T) {
	c := New(Config{MaxInFlight: 1, MaxQueue: 1, NoAdapt: true})
	rel, _ := c.Acquire(context.Background(), Interactive)
	defer rel()
	queued := make(chan struct{})
	go func() {
		r, err := c.Acquire(context.Background(), Interactive)
		if err == nil {
			defer r()
		}
		close(queued)
	}()
	waitFor(t, func() bool { return c.Stats().Queued[Interactive] == 1 })
	if _, err := c.Acquire(context.Background(), Interactive); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err %v, want ErrQueueFull", err)
	}
	if got := c.Stats().Shed["queue_full"]; got != 1 {
		t.Fatalf("queue_full sheds %d, want 1", got)
	}
	rel()
	<-queued
}

// TestDeadlineDoomedRejectedImmediately is the tentpole's headline
// behaviour: a request whose remaining deadline cannot survive the
// predicted queue delay is rejected at the door, not queued to die.
func TestDeadlineDoomedRejectedImmediately(t *testing.T) {
	clock := newFakeClock()
	c := New(Config{MaxInFlight: 1, MaxQueue: 64, NoAdapt: true, Now: clock.Now})

	// Teach the controller its service time: one 100ms request.
	rel, err := c.Acquire(context.Background(), Interactive)
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(100 * time.Millisecond)
	rel()

	// Occupy the only slot and stack a queue behind it.
	relHold, err := c.Acquire(context.Background(), Interactive)
	if err != nil {
		t.Fatal(err)
	}
	defer relHold()
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if r, err := c.Acquire(context.Background(), Interactive); err == nil {
				<-done
				r()
			}
		}()
	}
	waitFor(t, func() bool { return c.Stats().Queued[Interactive] == 4 })

	// 4 waiters ahead at ~100ms each on one slot: predicted wait ≈ 500ms
	// (incl. own service). A 50ms deadline cannot survive that.
	ctx, cancel := context.WithDeadline(context.Background(), clock.Now().Add(50*time.Millisecond))
	defer cancel()
	if _, err := c.Acquire(ctx, Interactive); !errors.Is(err, ErrDeadline) {
		t.Fatalf("doomed request got %v, want ErrDeadline", err)
	}
	if got := c.Stats().Shed["deadline"]; got != 1 {
		t.Fatalf("deadline sheds %d, want 1", got)
	}
	// An ample deadline queues instead of shedding. (Real-clock timeout:
	// the context machinery fires on wall time even though the controller
	// prices the queue with the fake clock.)
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Hour)
	defer cancel2()
	accepted := make(chan error, 1)
	go func() {
		r, err := c.Acquire(ctx2, Interactive)
		if err == nil {
			r()
		}
		accepted <- err
	}()
	waitFor(t, func() bool { return c.Stats().Queued[Interactive] == 5 })
	close(done)
	relHold()
	wg.Wait()
	if err := <-accepted; err != nil {
		t.Fatalf("well-budgeted request rejected: %v", err)
	}
}

func TestCanceledWhileQueued(t *testing.T) {
	c := New(Config{MaxInFlight: 1, MaxQueue: 4, NoAdapt: true})
	rel, _ := c.Acquire(context.Background(), Interactive)
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Acquire(ctx, Interactive)
		errCh <- err
	}()
	waitFor(t, func() bool { return c.Stats().Queued[Interactive] == 1 })
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
	if s := c.Stats(); s.Queued[Interactive] != 0 || s.Shed["canceled"] != 1 {
		t.Fatalf("stats after cancel: %+v", s)
	}
}

// TestInteractiveOutlivesBatch checks both priority properties: batch has
// the smaller queue, and interactive waiters dequeue first even when the
// batch waiter arrived earlier.
func TestInteractiveOutlivesBatch(t *testing.T) {
	c := New(Config{MaxInFlight: 1, MaxQueue: 8, BatchQueue: 1, NoAdapt: true})
	rel, _ := c.Acquire(context.Background(), Interactive)

	var order []string
	var mu sync.Mutex
	var wg sync.WaitGroup
	enqueue := func(name string, p Priority) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := c.Acquire(context.Background(), p)
			if err != nil {
				t.Errorf("%s rejected: %v", name, err)
				return
			}
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			r()
		}()
	}
	enqueue("batch", Batch)
	waitFor(t, func() bool { return c.Stats().Queued[Batch] == 1 })
	enqueue("interactive", Interactive)
	waitFor(t, func() bool { return c.Stats().Queued[Interactive] == 1 })

	// Batch queue is full (cap 1): the next batch arrival sheds while
	// interactive still queues.
	if _, err := c.Acquire(context.Background(), Batch); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("second batch got %v, want ErrQueueFull", err)
	}

	rel()
	wg.Wait()
	if len(order) != 2 || order[0] != "interactive" || order[1] != "batch" {
		t.Fatalf("service order %v, want interactive before batch", order)
	}
}

// TestAIMDDecreasesUnderStandingQueueAndRecovers drives the adaptive
// limit with a fake clock: a standing queue above the target delay
// shrinks the limit multiplicatively; quiet windows grow it back.
func TestAIMDDecreasesUnderStandingQueueAndRecovers(t *testing.T) {
	clock := newFakeClock()
	c := New(Config{
		MaxInFlight: 16, MinInFlight: 1, MaxQueue: 64,
		TargetDelay: time.Millisecond, Window: 10 * time.Millisecond, Now: clock.Now,
	})
	if c.Limit() != 16 {
		t.Fatalf("initial limit %d, want 16", c.Limit())
	}

	// Fill every slot, then queue a waiter and hold it well past the
	// target delay before releasing a slot — a standing queue.
	rels := make([]func(), 0, 16)
	for i := 0; i < 16; i++ {
		r, err := c.Acquire(context.Background(), Interactive)
		if err != nil {
			t.Fatal(err)
		}
		rels = append(rels, r)
	}
	granted := make(chan struct{})
	go func() {
		r, err := c.Acquire(context.Background(), Interactive)
		if err == nil {
			r()
		}
		close(granted)
	}()
	waitFor(t, func() bool { return c.Stats().Queued[Interactive] == 1 })

	// The waiter has stood in line 20ms > target when a slot frees; the
	// same release closes the 10ms window, so the AIMD decrease fires:
	// 16 - 16/8 = 14.
	clock.Advance(20 * time.Millisecond)
	rels[0]()
	<-granted
	if got := c.Limit(); got != 14 {
		t.Fatalf("limit after standing-queue window %d, want 14", got)
	}

	// Quiet windows: additive recovery, one per window.
	clock.Advance(20 * time.Millisecond)
	rels[1]()
	clock.Advance(20 * time.Millisecond)
	rels[2]()
	if got := c.Limit(); got != 16 {
		t.Fatalf("limit after recovery windows %d, want back at 16", got)
	}
	for _, r := range rels[3:] {
		r()
	}
}

func TestStartDrainRejectsAndFlushes(t *testing.T) {
	c := New(Config{MaxInFlight: 1, MaxQueue: 4, NoAdapt: true})
	rel, _ := c.Acquire(context.Background(), Interactive)
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Acquire(context.Background(), Interactive)
		errCh <- err
	}()
	waitFor(t, func() bool { return c.Stats().Queued[Interactive] == 1 })

	c.StartDrain()
	if err := <-errCh; !errors.Is(err, ErrDraining) {
		t.Fatalf("queued waiter got %v, want ErrDraining", err)
	}
	if _, err := c.Acquire(context.Background(), Interactive); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain acquire got %v, want ErrDraining", err)
	}
	rel() // in-flight release still works after drain
	if s := c.Stats(); s.InFlight != 0 || s.Shed["draining"] != 2 {
		t.Fatalf("stats after drain: %+v", s)
	}
}

// TestAcquireConcurrentNeverExceedsLimit hammers the controller from many
// goroutines (run under -race by `make test`) and asserts the limit is a
// hard bound.
func TestAcquireConcurrentNeverExceedsLimit(t *testing.T) {
	c := New(Config{MaxInFlight: 4, MaxQueue: 256, NoAdapt: true})
	var inflight, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := c.Acquire(context.Background(), Interactive)
			if err != nil {
				t.Errorf("acquire failed: %v", err)
				return
			}
			cur := inflight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(100 * time.Microsecond)
			inflight.Add(-1)
			rel()
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > 4 {
		t.Fatalf("peak concurrency %d exceeds limit 4", p)
	}
	if s := c.Stats(); s.Admitted != 64 || s.InFlight != 0 {
		t.Fatalf("final stats %+v, want 64 admitted, 0 in flight", s)
	}
}

func TestParsePriority(t *testing.T) {
	for s, want := range map[string]Priority{"": Interactive, "interactive": Interactive, "batch": Batch} {
		got, err := ParsePriority(s)
		if err != nil || got != want {
			t.Errorf("ParsePriority(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParsePriority("bulk"); err == nil {
		t.Error("ParsePriority(bulk) should error")
	}
}

// waitFor polls cond (with a real-time cap) — used to sequence goroutines
// against controller state without sleeping fixed amounts.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(200 * time.Microsecond)
	}
}
