package admission

import (
	"sync"
	"time"
)

// RateConfig tunes a RateLimiter. The zero value of RPS disables nothing
// by itself — construct a limiter only when a positive rate is wanted.
type RateConfig struct {
	// RPS is the sustained request rate each client may hold.
	RPS float64
	// Burst is the bucket capacity — how many requests a client may fire
	// back-to-back after an idle period (default max(2×RPS, 1)).
	Burst float64
	// MaxClients bounds the tracked-client map (default 4096). When full,
	// the stalest client (longest since last request) is evicted — it has
	// a full bucket anyway, so forgetting it costs nothing.
	MaxClients int
	// Now is the clock, injectable for tests (default time.Now).
	Now func() time.Time
}

// bucket is one client's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// RateLimiter is a per-client token bucket: each client id (API key,
// remote address…) accrues RPS tokens per second up to Burst, and each
// request spends one. It exists in front of the admission queue so one
// hot client cannot monopolize the whole serving capacity that the
// Controller fairly queues. Safe for concurrent use.
type RateLimiter struct {
	cfg RateConfig

	mu      sync.Mutex
	clients map[string]*bucket
}

// NewRateLimiter builds a limiter allowing each client cfg.RPS sustained
// requests per second. Config zero values are filled with defaults.
func NewRateLimiter(cfg RateConfig) *RateLimiter {
	if cfg.Burst <= 0 {
		cfg.Burst = 2 * cfg.RPS
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
	}
	if cfg.MaxClients <= 0 {
		cfg.MaxClients = 4096
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &RateLimiter{cfg: cfg, clients: map[string]*bucket{}}
}

// Allow spends one token from client's bucket. On refusal it also
// returns how long the client should wait before the next token exists —
// the Retry-After value.
func (l *RateLimiter) Allow(client string) (ok bool, retryAfter time.Duration) {
	now := l.cfg.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.clients[client]
	if b == nil {
		l.evictLocked()
		b = &bucket{tokens: l.cfg.Burst, last: now}
		l.clients[client] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * l.cfg.RPS
		if b.tokens > l.cfg.Burst {
			b.tokens = l.cfg.Burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	if l.cfg.RPS <= 0 {
		return false, time.Second
	}
	return false, time.Duration((1 - b.tokens) / l.cfg.RPS * float64(time.Second))
}

// Forget drops a client's bucket immediately. Session-scoped limiters
// call it when a session ends or is evicted, so dead conversations stop
// occupying tracked-client slots ahead of the staleness eviction.
func (l *RateLimiter) Forget(client string) {
	l.mu.Lock()
	delete(l.clients, client)
	l.mu.Unlock()
}

// Clients reports how many clients are currently tracked.
func (l *RateLimiter) Clients() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.clients)
}

// evictLocked makes room for one more client by dropping the stalest
// tracked one once the map is full.
func (l *RateLimiter) evictLocked() {
	if len(l.clients) < l.cfg.MaxClients {
		return
	}
	var oldest string
	var oldestAt time.Time
	for id, b := range l.clients {
		if oldest == "" || b.last.Before(oldestAt) {
			oldest, oldestAt = id, b.last
		}
	}
	delete(l.clients, oldest)
}
