package admission

import (
	"testing"
	"time"
)

func TestRateLimiterBurstThenRefill(t *testing.T) {
	clock := newFakeClock()
	l := NewRateLimiter(RateConfig{RPS: 10, Burst: 3, Now: clock.Now})

	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("alice"); !ok {
			t.Fatalf("burst request %d refused", i)
		}
	}
	ok, retry := l.Allow("alice")
	if ok {
		t.Fatal("request beyond burst must be refused")
	}
	if retry <= 0 || retry > 100*time.Millisecond {
		t.Fatalf("retry-after %s, want within one token period (100ms)", retry)
	}

	// One token period later exactly one request fits again.
	clock.Advance(100 * time.Millisecond)
	if ok, _ := l.Allow("alice"); !ok {
		t.Fatal("refilled token refused")
	}
	if ok, _ := l.Allow("alice"); ok {
		t.Fatal("second request on one refilled token allowed")
	}
}

func TestRateLimiterClientsAreIndependent(t *testing.T) {
	clock := newFakeClock()
	l := NewRateLimiter(RateConfig{RPS: 1, Burst: 1, Now: clock.Now})
	if ok, _ := l.Allow("alice"); !ok {
		t.Fatal("alice's first request refused")
	}
	if ok, _ := l.Allow("alice"); ok {
		t.Fatal("alice's second request allowed")
	}
	if ok, _ := l.Allow("bob"); !ok {
		t.Fatal("bob throttled by alice's spending")
	}
}

func TestRateLimiterEvictsStalestClient(t *testing.T) {
	clock := newFakeClock()
	l := NewRateLimiter(RateConfig{RPS: 1, Burst: 1, MaxClients: 2, Now: clock.Now})
	l.Allow("old")
	clock.Advance(time.Minute)
	l.Allow("mid")
	clock.Advance(time.Minute)
	l.Allow("new") // map full: "old" (stalest) is evicted
	if n := l.Clients(); n != 2 {
		t.Fatalf("%d clients tracked, want 2", n)
	}
	// "old" is forgotten, so it starts with a fresh (full) bucket.
	if ok, _ := l.Allow("old"); !ok {
		t.Fatal("evicted client should restart with a full bucket")
	}
}

func TestRateLimiterForget(t *testing.T) {
	clock := newFakeClock()
	l := NewRateLimiter(RateConfig{RPS: 1, Burst: 1, Now: clock.Now})
	l.Allow("sess")
	if ok, _ := l.Allow("sess"); ok {
		t.Fatal("bucket should be empty")
	}
	l.Forget("sess")
	if n := l.Clients(); n != 0 {
		t.Fatalf("%d clients tracked after Forget, want 0", n)
	}
	// A forgotten session that somehow speaks again simply starts a fresh
	// bucket — Forget is reclamation, not a ban.
	if ok, _ := l.Allow("sess"); !ok {
		t.Fatal("fresh bucket refused after Forget")
	}
}
