// Package athena implements an ATHENA-style ontology-driven interpreter,
// the class-4 (nested BI) family of the tutorial's taxonomy. The question
// is annotated with evidence against a domain ontology (concepts, data
// properties, relationships), assembled into an intermediate ontology
// query (package ir), and compiled to SQL with inferred joins. It covers
// the nested patterns the tutorial highlights as the hardest:
//
//   - comparisons against aggregates ("earning more than the average
//     salary") → scalar sub-queries,
//   - exclusion ("departments without employees") → NOT EXISTS,
//   - related-entity counting ("customers with more than 3 orders") →
//     join + GROUP BY + HAVING COUNT,
//
// plus everything the lower classes do. It also implements the query
// relaxation of Lei et al. (2020): unmatched terms retry through lexicon
// synonym/hypernym expansion, at a score penalty.
package athena

import (
	"fmt"
	"sort"
	"strings"

	"nlidb/internal/invindex"
	"nlidb/internal/ir"
	"nlidb/internal/lexicon"
	"nlidb/internal/nlp"
	"nlidb/internal/nlq"
	"nlidb/internal/ontology"
	"nlidb/internal/schemagraph"
	"nlidb/internal/sqldata"
)

// Interpreter is the ontology-driven NLIDB over one database.
type Interpreter struct {
	db       *sqldata.Database
	ont      *ontology.Ontology
	ix       *invindex.Index
	lex      *lexicon.Lexicon
	compiler *ir.Compiler
	opts     invindex.LookupOptions

	// Relax enables query relaxation over the lexicon for unmatched terms.
	Relax bool
}

// New builds the interpreter with an ontology auto-generated from the
// database (the Jammi et al. tooling path).
func New(db *sqldata.Database, lex *lexicon.Lexicon) *Interpreter {
	return NewWithOntology(db, ontology.FromDatabase(db), lex)
}

// NewWithOntology uses a hand-curated ontology instead.
func NewWithOntology(db *sqldata.Database, ont *ontology.Ontology, lex *lexicon.Lexicon) *Interpreter {
	return &Interpreter{
		db:       db,
		ont:      ont,
		ix:       invindex.Build(db, lex),
		lex:      lex,
		compiler: &ir.Compiler{Ont: ont, Graph: schemagraph.Build(db)},
		opts:     invindex.DefaultOptions(),
		Relax:    true,
	}
}

// Ontology exposes the domain model (examples enrich it with synonyms).
func (at *Interpreter) Ontology() *ontology.Ontology { return at.ont }

// Graph exposes the schema graph for query-log priors.
func (at *Interpreter) Graph() *schemagraph.Graph { return at.compiler.Graph }

// Name implements nlq.Interpreter.
func (at *Interpreter) Name() string { return "athena" }

// Interpret annotates the question with ontology evidence, builds the
// intermediate query, and compiles it to SQL.
func (at *Interpreter) Interpret(question string) ([]nlq.Interpretation, error) {
	a := nlq.Analyze(question, at.ix, at.opts)
	relaxed := 0
	if at.Relax {
		relaxed = at.relax(a)
	}
	if len(a.Spans) == 0 && len(a.Comparisons) == 0 && len(a.SubCompares) == 0 {
		return nil, fmt.Errorf("%w: no ontology evidence", nlq.ErrNoInterpretation)
	}

	q, expl, err := at.buildIR(a)
	if err != nil {
		return nil, err
	}
	stmt, err := at.compiler.Compile(q)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", nlq.ErrNoInterpretation, err)
	}

	score := at.score(a)
	if relaxed > 0 {
		score *= 0.85
		expl = append(expl, fmt.Sprintf("relaxed %d term(s) via lexicon", relaxed))
	}
	return []nlq.Interpretation{{SQL: stmt, Score: score, Explanation: strings.Join(expl, "; ")}}, nil
}

// relax retries unmatched content words through lexicon expansion and
// appends any hits as extra spans; it returns how many terms it relaxed.
// This reproduces the Lei et al. medical-KB relaxation mechanism.
func (at *Interpreter) relax(a *nlq.Analysis) int {
	covered := map[int]bool{}
	for _, sp := range a.Spans {
		for i := sp.Start; i < sp.End; i++ {
			covered[i] = true
		}
	}
	relaxed := 0
	for i, t := range a.Tokens {
		if covered[i] || t.Kind != nlp.KindWord || t.IsStop() || t.POS == nlp.POSPrep ||
			t.POS == nlp.POSComparative || t.POS == nlp.POSSuperlative || t.POS == nlp.POSNeg {
			continue
		}
		for _, rel := range at.lex.Related(t.Lower) {
			if rel == nlp.Stem(t.Lower) {
				continue
			}
			ms := at.ix.Lookup(rel, invindex.LookupOptions{})
			if len(ms) == 0 {
				continue
			}
			for j := range ms {
				ms[j].Score *= 0.8
				ms[j].Via = "relaxed"
			}
			a.Spans = append(a.Spans, nlq.SpanMatch{Start: i, End: i + 1, Text: t.Text, Matches: ms})
			relaxed++
			break
		}
	}
	sort.SliceStable(a.Spans, func(x, y int) bool { return a.Spans[x].Start < a.Spans[y].Start })
	return relaxed
}

// evidence is the ontology-level reading of the spans.
type evidence struct {
	anchor    string // concept name
	anchorPos int
	props     []propHit
	values    []valueHit
	tableCons []conceptHit
}

type propHit struct {
	prop ir.PropRef
	pos  int
}

type valueHit struct {
	prop  ir.PropRef
	value string
	pos   int
}

type conceptHit struct {
	concept string
	pos     int
}

// annotate lifts index matches to ontology evidence.
func (at *Interpreter) annotate(a *nlq.Analysis) *evidence {
	ev := &evidence{anchorPos: -1}
	for _, sp := range a.Spans {
		m := sp.Best()
		c := at.ont.ConceptForTable(m.Table)
		if c == nil {
			continue
		}
		switch m.Kind {
		case invindex.KindTable:
			ev.tableCons = append(ev.tableCons, conceptHit{concept: c.Name, pos: sp.Start})
			if ev.anchor == "" {
				ev.anchor = c.Name
				ev.anchorPos = sp.Start
			}
		case invindex.KindColumn:
			if p := c.Property(m.Column); p != nil {
				ev.props = append(ev.props, propHit{prop: ir.PropRef{Concept: c.Name, Property: p.Name}, pos: sp.Start})
			}
		case invindex.KindValue:
			if p := c.Property(m.Column); p != nil {
				ev.values = append(ev.values, valueHit{prop: ir.PropRef{Concept: c.Name, Property: p.Name}, value: m.Value, pos: sp.Start})
			}
		}
	}
	if ev.anchor == "" {
		if len(ev.props) > 0 {
			ev.anchor = ev.props[0].prop.Concept
		} else if len(ev.values) > 0 {
			ev.anchor = ev.values[0].prop.Concept
		}
	}
	return ev
}

// buildIR assembles the intermediate query from the analysis.
func (at *Interpreter) buildIR(a *nlq.Analysis) (*ir.Query, []string, error) {
	ev := at.annotate(a)
	if ev.anchor == "" {
		return nil, nil, fmt.Errorf("%w: no concept identified", nlq.ErrNoInterpretation)
	}
	expl := []string{fmt.Sprintf("anchor concept %s", ev.anchor)}
	q := ir.NewQuery(ev.anchor)

	usedValuePos := map[int]bool{}
	filterProps := map[string]bool{}

	// Negation: "without C" / "with no C" → NOT EXISTS; "not in V" /
	// "except V" against a value → negated equality.
	negatedValuePos := -1
	if a.NegationPos >= 0 {
		if c := at.conceptNear(a, ev, a.NegationPos+1, 2); c != "" && !strings.EqualFold(c, ev.anchor) {
			q.Exists = append(q.Exists, ir.ExistsCond{Concept: c, Not: true})
			expl = append(expl, fmt.Sprintf("NOT EXISTS %s", c))
			// The negated concept's mention must not also join.
			for i := range ev.tableCons {
				if ev.tableCons[i].concept == c {
					ev.tableCons[i].concept = ""
				}
			}
		} else {
			for _, v := range ev.values {
				if v.pos > a.NegationPos && v.pos <= a.NegationPos+3 {
					negatedValuePos = v.pos
					break
				}
			}
		}
	}

	// Value conditions. Values of the same property linked by "or" merge
	// into one IN condition; others conjoin as equalities.
	for vi, v := range ev.values {
		if usedValuePos[v.pos] {
			continue
		}
		usedValuePos[v.pos] = true
		// Collect "or"-linked siblings on the same property.
		inVals := []sqldata.Value{sqldata.NewText(v.value)}
		for _, w := range ev.values[vi+1:] {
			if usedValuePos[w.pos] || w.prop != v.prop {
				continue
			}
			if orLinked(a.Tokens, v.pos, w.pos) {
				usedValuePos[w.pos] = true
				inVals = append(inVals, sqldata.NewText(w.value))
			}
		}
		if len(inVals) > 1 {
			q.Conditions = append(q.Conditions, ir.Condition{Prop: v.prop, Op: "in", InValues: inVals})
			expl = append(expl, fmt.Sprintf("%s IN %d values", v.prop, len(inVals)))
		} else {
			val := inVals[0]
			cond := ir.Condition{Prop: v.prop, Op: "=", Operand: ir.Operand{Value: &val}}
			if v.pos == negatedValuePos {
				cond.Op = "!="
				expl = append(expl, fmt.Sprintf("%s != %q", v.prop, v.value))
			} else {
				expl = append(expl, fmt.Sprintf("%s = %q", v.prop, v.value))
			}
			q.Conditions = append(q.Conditions, cond)
		}
		filterProps[v.prop.String()] = true
	}

	// Numeric comparisons: either plain property filters or, when the
	// comparison's object is a *concept*, a HAVING COUNT over the related
	// entity ("customers with more than 3 orders").
	subAggPos := map[int]bool{}
	for _, s := range a.SubCompares {
		subAggPos[s.AggPos] = true
	}
	for _, cmp := range a.Comparisons {
		if c := at.conceptNear(a, ev, cmp.TokenPos+1, 2); c != "" && !strings.EqualFold(c, ev.anchor) {
			// HAVING COUNT pattern over a related concept.
			cc := at.ont.Concept(c)
			pk := firstPropertyName(cc)
			n := sqldata.NewInt(int64(cmp.Value))
			q.Conditions = append(q.Conditions, ir.Condition{
				Agg: ir.AggCount, Prop: ir.PropRef{Concept: c, Property: pk},
				Op: cmp.Op, Operand: ir.Operand{Value: &n},
			})
			anchorID := at.identifying(ev.anchor)
			q.GroupBy = append(q.GroupBy, ir.PropRef{Concept: ev.anchor, Property: anchorID})
			expl = append(expl, fmt.Sprintf("HAVING COUNT(%s) %s %v grouped by %s", c, cmp.Op, cmp.Value, anchorID))
			continue
		}
		prop, ok := at.resolveProp(cmp.ColumnHint, ev)
		if !ok {
			prop, ok = at.firstNumericProp(ev.anchor)
			if !ok {
				continue
			}
		}
		val := numLiteral(cmp.Value)
		q.Conditions = append(q.Conditions, ir.Condition{Prop: prop, Op: cmp.Op, Operand: ir.Operand{Value: &val}})
		filterProps[prop.String()] = true
		expl = append(expl, fmt.Sprintf("%s %s %v", prop, cmp.Op, cmp.Value))
	}

	// Nested scalar-sub-query comparisons.
	for _, sc := range a.SubCompares {
		outer, ok := at.resolveProp(sc.ColumnHint, ev)
		if !ok {
			outer, ok = at.firstNumericProp(ev.anchor)
			if !ok {
				continue
			}
		}
		// Inner property: the column word after the aggregate cue, else
		// the same property as the outer side.
		inner := outer
		if sc.AggPos+1 < len(a.Tokens) {
			if p, ok := at.resolveProp(a.Tokens[sc.AggPos+1].Lower, ev); ok {
				inner = p
			}
		}
		sub := ir.NewQuery(inner.Concept)
		sub.Projections = []ir.Projection{{Agg: ir.Agg(sc.AggFunc), Prop: &inner}}
		q.Conditions = append(q.Conditions, ir.Condition{Prop: outer, Op: sc.Op, Operand: ir.Operand{Sub: sub}})
		filterProps[outer.String()] = true
		expl = append(expl, fmt.Sprintf("%s %s (%s %s)", outer, sc.Op, sc.AggFunc, inner))
	}

	// Superlative disambiguation (shared convention with the other
	// families): after the anchor mention → top-k; before → MAX/MIN.
	topk := a.TopK
	aggCues := a.AggCues
	if topk != nil {
		word := a.Tokens[topk.TokenPos].Lower
		explicitTop := word == "top" || word == "bottom" || word == "first" || word == "last"
		if !explicitTop && (ev.anchorPos < 0 || ev.anchorPos > topk.TokenPos) {
			f := "MAX"
			if !topk.Desc {
				f = "MIN"
			}
			aggCues = append(aggCues, nlq.AggCue{Func: f, TokenPos: topk.TokenPos})
			topk = nil
		} else if !explicitTop {
			topk.K = leadingK(a, topk.TokenPos)
		}
	}

	// Grouping.
	for _, g := range a.GroupCues {
		if topk != nil && g.TokenPos > topk.TokenPos {
			continue
		}
		if p, ok := at.groupTarget(a, ev, g.TokenPos); ok {
			q.GroupBy = append(q.GroupBy, p)
			expl = append(expl, fmt.Sprintf("group by %s", p))
		}
	}

	// Projections.
	switch {
	case len(aggCues) > 0:
		for _, g := range q.GroupBy {
			q.Projections = append(q.Projections, ir.Projection{Prop: &ir.PropRef{Concept: g.Concept, Property: g.Property}})
		}
		for _, cue := range aggCues {
			target, ok := at.aggTarget(a, ev, cue, filterProps)
			switch {
			case cue.Func == "COUNT" && !ok:
				q.Projections = append(q.Projections, ir.Projection{Agg: ir.AggCount, Star: true})
			case ok:
				q.Projections = append(q.Projections, ir.Projection{Agg: ir.Agg(cue.Func), Prop: &target})
			default:
				if p, ok2 := at.firstNumericProp(ev.anchor); ok2 {
					q.Projections = append(q.Projections, ir.Projection{Agg: ir.Agg(cue.Func), Prop: &p})
				}
			}
			expl = append(expl, fmt.Sprintf("aggregate %s", cue.Func))
		}
	default:
		seen := map[string]bool{}
		orderProp := at.orderProp(a, ev, topk)
		for _, ph := range ev.props {
			k := ph.prop.String()
			if filterProps[k] || seen[k] {
				continue
			}
			if orderProp != nil && k == orderProp.String() {
				continue
			}
			seen[k] = true
			p := ph.prop
			q.Projections = append(q.Projections, ir.Projection{Prop: &p})
		}
		if len(q.Projections) == 0 {
			// Project the anchor's identifying property.
			idp := at.identifying(ev.anchor)
			q.Projections = append(q.Projections, ir.Projection{Prop: &ir.PropRef{Concept: ev.anchor, Property: idp}})
		}
		// When a HAVING pattern grouped the query, the projection must be
		// the grouped property.
		if len(q.GroupBy) > 0 {
			q.Projections = q.Projections[:0]
			for _, g := range q.GroupBy {
				q.Projections = append(q.Projections, ir.Projection{Prop: &ir.PropRef{Concept: g.Concept, Property: g.Property}})
			}
		}
	}

	// Ordering.
	if topk != nil {
		if p := at.orderProp(a, ev, topk); p != nil {
			q.OrderBy = append(q.OrderBy, ir.OrderSpec{Prop: p, Desc: topk.Desc})
			q.Limit = topk.K
			expl = append(expl, fmt.Sprintf("order by %s desc=%v limit %d", p, topk.Desc, topk.K))
		}
	}

	return q, expl, nil
}

// conceptNear returns a concept mentioned within `window` tokens at/after
// pos (skipping stopwords), or "".
func (at *Interpreter) conceptNear(a *nlq.Analysis, ev *evidence, pos, window int) string {
	for i := pos; i < len(a.Tokens) && i <= pos+window; i++ {
		for _, tc := range ev.tableCons {
			if tc.pos == i {
				return tc.concept
			}
		}
		if sp := a.SpanAt(i); sp != nil {
			for _, m := range sp.Matches {
				if m.Kind == invindex.KindTable {
					if c := at.ont.ConceptForTable(m.Table); c != nil {
						return c.Name
					}
				}
			}
		}
	}
	return ""
}

// resolveProp maps a word to a property, preferring the anchor concept.
func (at *Interpreter) resolveProp(word string, ev *evidence) (ir.PropRef, bool) {
	if word == "" {
		return ir.PropRef{}, false
	}
	if c := at.ont.Concept(ev.anchor); c != nil {
		if p := c.Property(word); p != nil {
			return ir.PropRef{Concept: c.Name, Property: p.Name}, true
		}
	}
	for _, cc := range at.ont.Concepts() {
		if p := cc.Property(word); p != nil {
			return ir.PropRef{Concept: cc.Name, Property: p.Name}, true
		}
	}
	// Lexicon-relaxed resolution.
	if at.Relax && at.lex != nil {
		for _, rel := range at.lex.Related(word) {
			for _, cc := range at.ont.Concepts() {
				if p := cc.Property(rel); p != nil {
					return ir.PropRef{Concept: cc.Name, Property: p.Name}, true
				}
			}
		}
	}
	return ir.PropRef{}, false
}

func (at *Interpreter) firstNumericProp(concept string) (ir.PropRef, bool) {
	c := at.ont.Concept(concept)
	if c == nil {
		return ir.PropRef{}, false
	}
	for _, p := range c.Properties {
		if p.Type.Numeric() && !strings.EqualFold(p.Column, "id") {
			return ir.PropRef{Concept: c.Name, Property: p.Name}, true
		}
	}
	return ir.PropRef{}, false
}

// identifying returns the anchor concept's identifying property name.
func (at *Interpreter) identifying(concept string) string {
	c := at.ont.Concept(concept)
	if c == nil {
		return "name"
	}
	if p := c.IdentifyingProperty(); p != nil {
		return p.Name
	}
	if len(c.Properties) > 0 {
		return c.Properties[0].Name
	}
	return "name"
}

// groupTarget resolves a group cue token to a property; a concept mention
// groups by that concept's identifying property.
func (at *Interpreter) groupTarget(a *nlq.Analysis, ev *evidence, pos int) (ir.PropRef, bool) {
	if pos < 0 || pos >= len(a.Tokens) {
		return ir.PropRef{}, false
	}
	if sp := a.SpanAt(pos); sp != nil {
		for _, m := range sp.Matches {
			if m.Kind == invindex.KindColumn {
				if c := at.ont.ConceptForTable(m.Table); c != nil {
					if p := c.Property(m.Column); p != nil {
						return ir.PropRef{Concept: c.Name, Property: p.Name}, true
					}
				}
			}
		}
		for _, m := range sp.Matches {
			if m.Kind == invindex.KindTable {
				if c := at.ont.ConceptForTable(m.Table); c != nil {
					return ir.PropRef{Concept: c.Name, Property: at.identifying(c.Name)}, true
				}
			}
		}
	}
	return at.resolveProp(a.Tokens[pos].Lower, ev)
}

// aggTarget resolves the aggregate's target property near the cue.
func (at *Interpreter) aggTarget(a *nlq.Analysis, ev *evidence, cue nlq.AggCue, filters map[string]bool) (ir.PropRef, bool) {
	try := func(i int) (ir.PropRef, bool) {
		if i < 0 || i >= len(a.Tokens) {
			return ir.PropRef{}, false
		}
		if sp := a.SpanAt(i); sp != nil && sp.Best().Kind == invindex.KindTable {
			return ir.PropRef{}, false
		}
		p, ok := at.resolveProp(a.Tokens[i].Lower, ev)
		if ok && !filters[p.String()] {
			return p, true
		}
		return ir.PropRef{}, false
	}
	for i := cue.TokenPos + 1; i <= cue.TokenPos+4; i++ {
		if p, ok := try(i); ok {
			return p, true
		}
	}
	for i := cue.TokenPos - 1; i >= cue.TokenPos-3; i-- {
		if p, ok := try(i); ok {
			return p, true
		}
	}
	return ir.PropRef{}, false
}

// orderProp resolves the top-k ordering property.
func (at *Interpreter) orderProp(a *nlq.Analysis, ev *evidence, topk *nlq.TopKCue) *ir.PropRef {
	if topk == nil {
		return nil
	}
	if topk.TokenPos+1 < len(a.Tokens) {
		if p, ok := at.resolveProp(a.Tokens[topk.TokenPos+1].Lower, ev); ok {
			return &p
		}
	}
	for _, g := range a.GroupCues {
		if g.TokenPos > topk.TokenPos {
			if p, ok := at.groupTarget(a, ev, g.TokenPos); ok {
				return &p
			}
		}
	}
	if p, ok := at.resolveProp(a.Tokens[topk.TokenPos].Lower, ev); ok {
		return &p
	}
	if p, ok := at.firstNumericProp(ev.anchor); ok {
		return &p
	}
	return nil
}

// score rates evidence coverage of the question's content words.
func (at *Interpreter) score(a *nlq.Analysis) float64 {
	content, covered := 0, 0
	for _, t := range a.Tokens {
		if t.Kind == nlp.KindWord && !t.IsStop() && t.POS != nlp.POSPrep {
			content++
		}
	}
	for _, sp := range a.Spans {
		covered += sp.End - sp.Start
	}
	if content == 0 {
		return 0.7
	}
	c := float64(covered) / float64(content)
	if c > 1 {
		c = 1
	}
	return 0.5 + 0.5*c
}

func firstPropertyName(c *ontology.Concept) string {
	if c == nil {
		return "id"
	}
	if len(c.Properties) > 0 {
		return c.Properties[0].Name
	}
	return "id"
}

// orLinked reports whether an "or" token lies between two token positions.
func orLinked(toks []nlp.Token, a, b int) bool {
	if a > b {
		a, b = b, a
	}
	for i := a; i < b && i < len(toks); i++ {
		if toks[i].Lower == "or" {
			return true
		}
	}
	return false
}

func leadingK(a *nlq.Analysis, supPos int) int {
	used := map[int]bool{}
	for _, c := range a.Comparisons {
		used[c.TokenPos] = true
	}
	for i := supPos - 1; i >= 0; i-- {
		t := a.Tokens[i]
		if t.Kind == nlp.KindNumber && !used[i] {
			return int(t.Num)
		}
	}
	return 1
}

func numLiteral(v float64) sqldata.Value {
	if v == float64(int64(v)) {
		return sqldata.NewInt(int64(v))
	}
	return sqldata.NewFloat(v)
}
