package athena

import (
	"strings"
	"testing"

	"nlidb/internal/lexicon"
	"nlidb/internal/nlq"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlexec"
)

func corpDB(t testing.TB) *sqldata.Database {
	t.Helper()
	db := sqldata.NewDatabase("corp")
	mk := func(s *sqldata.Schema) *sqldata.Table {
		tbl, err := db.CreateTable(s)
		if err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	dept := mk(&sqldata.Schema{Name: "department", Columns: []sqldata.Column{
		{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
		{Name: "name", Type: sqldata.TypeText},
		{Name: "budget", Type: sqldata.TypeFloat},
	}})
	emp := mk(&sqldata.Schema{Name: "employee", Columns: []sqldata.Column{
		{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
		{Name: "name", Type: sqldata.TypeText},
		{Name: "salary", Type: sqldata.TypeFloat},
		{Name: "dept_id", Type: sqldata.TypeInt},
	}, ForeignKeys: []sqldata.ForeignKey{{Column: "dept_id", RefTable: "department", RefColumn: "id"}}})
	ord := mk(&sqldata.Schema{Name: "orders", Synonyms: []string{"order", "purchase"}, Columns: []sqldata.Column{
		{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
		{Name: "employee_id", Type: sqldata.TypeInt},
		{Name: "total", Type: sqldata.TypeFloat},
	}, ForeignKeys: []sqldata.ForeignKey{{Column: "employee_id", RefTable: "employee", RefColumn: "id"}}})

	dept.MustInsert(sqldata.NewInt(1), sqldata.NewText("engineering"), sqldata.NewFloat(900))
	dept.MustInsert(sqldata.NewInt(2), sqldata.NewText("marketing"), sqldata.NewFloat(300))
	dept.MustInsert(sqldata.NewInt(3), sqldata.NewText("lab"), sqldata.NewFloat(100))
	emp.MustInsert(sqldata.NewInt(1), sqldata.NewText("ann"), sqldata.NewFloat(120), sqldata.NewInt(1))
	emp.MustInsert(sqldata.NewInt(2), sqldata.NewText("bob"), sqldata.NewFloat(80), sqldata.NewInt(1))
	emp.MustInsert(sqldata.NewInt(3), sqldata.NewText("cyd"), sqldata.NewFloat(60), sqldata.NewInt(2))
	ord.MustInsert(sqldata.NewInt(1), sqldata.NewInt(1), sqldata.NewFloat(10))
	ord.MustInsert(sqldata.NewInt(2), sqldata.NewInt(1), sqldata.NewFloat(20))
	ord.MustInsert(sqldata.NewInt(3), sqldata.NewInt(1), sqldata.NewFloat(30))
	ord.MustInsert(sqldata.NewInt(4), sqldata.NewInt(2), sqldata.NewFloat(5))
	return db
}

func run(t *testing.T, db *sqldata.Database, q string) (*sqldata.Result, *nlq.Interpretation) {
	t.Helper()
	in := New(db, lexicon.New())
	ins, err := in.Interpret(q)
	if err != nil {
		t.Fatalf("Interpret(%q): %v", q, err)
	}
	best, _ := nlq.Best(ins)
	t.Logf("%q → %s", q, best.SQL)
	res, err := sqlexec.New(db).Run(best.SQL)
	if err != nil {
		t.Fatalf("exec %s: %v", best.SQL, err)
	}
	return res, &best
}

func TestSimpleSelection(t *testing.T) {
	db := corpDB(t)
	res, _ := run(t, db, "employees with salary over 100")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestJoinQuery(t *testing.T) {
	db := corpDB(t)
	res, in := run(t, db, "employees in the engineering department")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v (%s)", res.Rows, in.SQL)
	}
	if nlq.Classify(in.SQL) != nlq.Join {
		t.Fatalf("class = %v", nlq.Classify(in.SQL))
	}
}

func TestScalarSubqueryNested(t *testing.T) {
	db := corpDB(t)
	res, in := run(t, db, "employees earning more than the average salary")
	if nlq.Classify(in.SQL) != nlq.Nested {
		t.Fatalf("class = %v: %s", nlq.Classify(in.SQL), in.SQL)
	}
	// avg = (120+80+60)/3 = 86.7 → ann only... bob is 80 < 86.7.
	if len(res.Rows) != 1 || res.Rows[0][0].Text() != "ann" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestNotExistsNested(t *testing.T) {
	db := corpDB(t)
	res, in := run(t, db, "departments without employees")
	if nlq.Classify(in.SQL) != nlq.Nested {
		t.Fatalf("class = %v: %s", nlq.Classify(in.SQL), in.SQL)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Text() != "lab" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestHavingCountNested(t *testing.T) {
	db := corpDB(t)
	res, in := run(t, db, "employees with more than 2 orders")
	sql := in.SQL.String()
	if !strings.Contains(sql, "HAVING") || !strings.Contains(sql, "COUNT") {
		t.Fatalf("no having-count: %s", sql)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Text() != "ann" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestAggregationStillWorks(t *testing.T) {
	db := corpDB(t)
	res, _ := run(t, db, "average salary of employees per department")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestCountQuery(t *testing.T) {
	db := corpDB(t)
	res, _ := run(t, db, "how many employees are there")
	if res.Rows[0][0].Int() != 3 {
		t.Fatalf("count = %v", res.Rows)
	}
}

func TestRelaxation(t *testing.T) {
	db := corpDB(t)
	in := New(db, lexicon.New())
	// "wage" is not a column; lexicon links it to salary.
	ins, err := in.Interpret("employees with wage over 100")
	if err != nil {
		t.Fatalf("relaxation failed: %v", err)
	}
	best, _ := nlq.Best(ins)
	if !strings.Contains(strings.ToLower(best.SQL.String()), "salary") {
		t.Fatalf("wage did not relax to salary: %s", best.SQL)
	}
	res, err := sqlexec.New(db).Run(best.SQL)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("res = %v, %v", res, err)
	}
}

func TestRelaxationOffFails(t *testing.T) {
	db := corpDB(t)
	in := New(db, lexicon.New())
	in.Relax = false
	ins, err := in.Interpret("staff with wage over 100")
	if err == nil {
		best, _ := nlq.Best(ins)
		if strings.Contains(strings.ToLower(best.SQL.String()), "salary") {
			// Lexicon synonyms inside the index may still map "staff";
			// the key relaxation contrast is exercised in experiments.
			t.Skip("index synonyms resolved it without relaxation")
		}
	}
}

func TestTopKOverJoin(t *testing.T) {
	db := corpDB(t)
	res, in := run(t, db, "top 2 employees by salary")
	if in.SQL.Limit != 2 {
		t.Fatalf("limit = %d", in.SQL.Limit)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].Text() != "ann" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestMaxAggregation(t *testing.T) {
	db := corpDB(t)
	res, _ := run(t, db, "what is the highest salary")
	if len(res.Rows) != 1 || res.Rows[0][0].Float() != 120 {
		t.Fatalf("max = %v", res.Rows)
	}
}

func TestCustomOntologySynonyms(t *testing.T) {
	db := corpDB(t)
	in := New(db, lexicon.New())
	// Enrich the auto-generated ontology with a domain synonym.
	c := in.Ontology().Concept("employee")
	if c == nil {
		t.Fatal("no employee concept")
	}
	c.Synonyms = append(c.Synonyms, "headcount")
	// Rebuilding the index is not needed: concept lookup is ontology-side
	// for anchor resolution only when index finds the table. The index
	// carries schema synonyms; ontology synonyms serve IR resolution.
	if in.Ontology().Concept("headcount") == nil {
		t.Fatal("ontology synonym lookup failed")
	}
}

func TestAccessorsAndLeadingK(t *testing.T) {
	db := corpDB(t)
	in := New(db, lexicon.New())
	if in.Name() != "athena" {
		t.Errorf("name = %s", in.Name())
	}
	if in.Graph() == nil {
		t.Error("graph not exposed")
	}
	// Leading K: "2 employees with the highest salary".
	ins, err := in.Interpret("2 employees with the highest salary")
	if err != nil {
		t.Fatal(err)
	}
	best, _ := nlq.Best(ins)
	if best.SQL.Limit != 2 {
		t.Fatalf("leading K: %s", best.SQL)
	}
	res, err := sqlexec.New(db).Run(best.SQL)
	if err != nil || len(res.Rows) != 2 || res.Rows[0][0].Text() != "ann" {
		t.Fatalf("res = %v, %v", res, err)
	}
}

func TestSumAggregate(t *testing.T) {
	db := corpDB(t)
	res, _ := run(t, db, "total salary of employees")
	if len(res.Rows) != 1 || res.Rows[0][0].Float() != 260 {
		t.Fatalf("sum = %v", res.Rows)
	}
}

func TestGroupByOrderedBySuperlativePhrase(t *testing.T) {
	db := corpDB(t)
	// "top 1 departments by budget" exercises orderProp's group-cue path.
	res, in := run(t, db, "top 1 departments by budget")
	if in.SQL.Limit != 1 || len(res.Rows) != 1 || res.Rows[0][0].Text() != "engineering" {
		t.Fatalf("res = %v (%s)", res.Rows, in.SQL)
	}
}

func TestDisjunctionMergesToIN(t *testing.T) {
	db := corpDB(t)
	in := New(db, lexicon.New())
	ins, err := in.Interpret("employees in engineering or marketing")
	if err != nil {
		t.Fatal(err)
	}
	best, _ := nlq.Best(ins)
	if !strings.Contains(best.SQL.String(), "IN (") {
		t.Fatalf("disjunction not merged: %s", best.SQL)
	}
	res, err := sqlexec.New(db).Run(best.SQL)
	if err != nil || len(res.Rows) != 3 {
		t.Fatalf("rows = %v, %v", res, err)
	}
}

func TestNegatedValueFilter(t *testing.T) {
	db := corpDB(t)
	in := New(db, lexicon.New())
	ins, err := in.Interpret("employees not in engineering")
	if err != nil {
		t.Fatal(err)
	}
	best, _ := nlq.Best(ins)
	res, err := sqlexec.New(db).Run(best.SQL)
	if err != nil {
		t.Fatalf("exec %s: %v", best.SQL, err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Text() != "cyd" {
		t.Fatalf("negated filter = %v (%s)", res.Rows, best.SQL)
	}
}

func TestExplanationMentionsNesting(t *testing.T) {
	db := corpDB(t)
	in := New(db, lexicon.New())
	ins, err := in.Interpret("departments without employees")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ins[0].Explanation, "NOT EXISTS") {
		t.Errorf("explanation = %q", ins[0].Explanation)
	}
}
