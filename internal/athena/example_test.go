package athena_test

import (
	"fmt"
	"log"

	"nlidb/internal/athena"
	"nlidb/internal/lexicon"
	"nlidb/internal/nlq"
	"nlidb/internal/sqldata"
)

// ExampleInterpreter_Interpret shows the ontology-driven path: the
// ontology is generated from the schema, and a nested business question
// compiles to SQL with a scalar sub-query.
func ExampleInterpreter_Interpret() {
	db := sqldata.NewDatabase("demo")
	emp, err := db.CreateTable(&sqldata.Schema{
		Name: "employee",
		Columns: []sqldata.Column{
			{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
			{Name: "name", Type: sqldata.TypeText},
			{Name: "salary", Type: sqldata.TypeFloat},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	emp.MustInsert(sqldata.NewInt(1), sqldata.NewText("ann"), sqldata.NewFloat(120))

	in := athena.New(db, lexicon.New())
	ins, err := in.Interpret("employees earning more than the average salary")
	if err != nil {
		log.Fatal(err)
	}
	best, _ := nlq.Best(ins)
	fmt.Println(best.SQL)
	fmt.Println("class:", nlq.Classify(best.SQL))
	// Output:
	// SELECT employee.name FROM employee WHERE employee.salary > (SELECT AVG(employee.salary) FROM employee)
	// class: nested
}
