// Package autocomplete implements TR-Discover-style query auto-completion
// (§4.1 of the survey): as the user types, the system suggests the next
// lexical entries — entities, properties, relationships, comparison
// phrases, and data values — that are grammatically reachable from what
// has been typed so far, ranked by the centrality of the corresponding
// node in the ontology graph. The grammar is the same one the entity-based
// interpreters consume, so accepted completions always parse.
package autocomplete

import (
	"sort"
	"strings"

	"nlidb/internal/invindex"
	"nlidb/internal/lexicon"
	"nlidb/internal/nlp"
	"nlidb/internal/nlq"
	"nlidb/internal/ontology"
	"nlidb/internal/sqldata"
)

// Suggestion is one ranked completion.
type Suggestion struct {
	// Text is the completion to append.
	Text string
	// Kind says what the completion is: concept, property, relationship,
	// value, comparison, or aggregate.
	Kind string
	// Score ranks suggestions; higher first.
	Score float64
}

// Completer suggests next entries for one database + ontology.
type Completer struct {
	db  *sqldata.Database
	ont *ontology.Ontology
	ix  *invindex.Index
	// centrality scores each concept by its degree in the ontology graph
	// (the TR Discover ranking signal).
	centrality map[string]float64
}

// New builds a completer; the ontology may be auto-generated.
func New(db *sqldata.Database, ont *ontology.Ontology, lex *lexicon.Lexicon) *Completer {
	c := &Completer{
		db:         db,
		ont:        ont,
		ix:         invindex.Build(db, lex),
		centrality: map[string]float64{},
	}
	// Degree centrality: relationships touching the concept, plus a small
	// weight per property (richer concepts are likelier query subjects).
	maxDeg := 1.0
	for _, cc := range ont.Concepts() {
		deg := float64(len(ont.RelationshipsOf(cc.Name)))*2 + float64(len(cc.Properties))*0.25
		c.centrality[strings.ToLower(cc.Name)] = deg
		if deg > maxDeg {
			maxDeg = deg
		}
	}
	for k := range c.centrality {
		c.centrality[k] = 0.25 + 0.75*c.centrality[k]/maxDeg
	}
	return c
}

// state captures what the typed prefix already establishes.
type state struct {
	anchor      *ontology.Concept // concept the query is about
	lastConcept *ontology.Concept // most recent concept mention
	lastProp    *ontology.Property
	hasFilterOn bool // "with"/"whose" style opener seen
	hasCompare  bool // a comparative phrase seen, awaiting a number
	empty       bool
}

// analyze derives the completion state from the typed prefix.
func (c *Completer) analyze(prefix string) state {
	toks := nlp.Tag(nlp.Tokenize(prefix))
	st := state{empty: len(toks) == 0}
	spans := nlq.MatchSpans(toks, c.ix, invindex.DefaultOptions())
	for _, sp := range spans {
		m := sp.Best()
		switch m.Kind {
		case invindex.KindTable:
			if cc := c.ont.ConceptForTable(m.Table); cc != nil {
				if st.anchor == nil {
					st.anchor = cc
				}
				st.lastConcept = cc
				st.lastProp = nil
			}
		case invindex.KindColumn:
			if cc := c.ont.ConceptForTable(m.Table); cc != nil {
				if st.anchor == nil {
					st.anchor = cc
				}
				st.lastConcept = cc
				st.lastProp = cc.Property(m.Column)
			}
		}
	}
	for _, t := range toks {
		switch {
		case t.Lower == "with" || t.Lower == "whose" || t.Lower == "having":
			st.hasFilterOn = true
		case t.POS == nlp.POSComparative || compareWords[t.Lower]:
			st.hasCompare = true
		case t.Kind == nlp.KindNumber:
			st.hasCompare = false // comparison completed
		}
	}
	return st
}

// compareWords are comparison cues the POS tagger files as prepositions.
var compareWords = map[string]bool{
	"over": true, "under": true, "above": true, "below": true,
	"than": true, "between": true, "exceeding": true,
}

// Suggest returns up to limit ranked completions for the typed prefix.
func (c *Completer) Suggest(prefix string, limit int) []Suggestion {
	if limit <= 0 {
		limit = 8
	}
	st := c.analyze(prefix)
	var out []Suggestion
	add := func(text, kind string, score float64) {
		out = append(out, Suggestion{Text: text, Kind: kind, Score: score})
	}

	switch {
	case st.empty || st.anchor == nil:
		// Opening position: suggest concepts by centrality, and the
		// aggregate openers.
		for _, cc := range c.ont.Concepts() {
			add(pluralize(cc.Name), "concept", c.centrality[strings.ToLower(cc.Name)])
		}
		add("how many", "aggregate", 0.6)
		add("average", "aggregate", 0.5)
		add("total", "aggregate", 0.5)

	case st.hasCompare:
		// A comparative awaits a number or an aggregate sub-expression.
		add("<number>", "comparison", 1.0)
		if st.lastProp != nil {
			add("the average "+st.lastProp.Name, "aggregate", 0.9)
		}

	case st.hasFilterOn && st.lastProp == nil:
		// After "with": the anchor's filterable properties, best first by
		// type usefulness (text values filter, numerics compare).
		for _, p := range propertiesOf(st.lastConceptOr(st.anchor)) {
			score := 0.6
			if p.Type == sqldata.TypeText {
				score = 0.8
			}
			if p.Type.Numeric() {
				score = 0.7
			}
			add(p.Name, "property", score)
		}

	case st.lastProp != nil && st.lastProp.Type == sqldata.TypeText:
		// A text property wants a value.
		if tbl := c.db.Table(st.lastConceptOr(st.anchor).Table); tbl != nil {
			vals, err := tbl.DistinctText(st.lastProp.Column)
			if err == nil {
				for i, v := range vals {
					if i == 12 {
						break
					}
					add(v, "value", 0.9-float64(i)*0.01)
				}
			}
		}

	case st.lastProp != nil && st.lastProp.Type.Numeric():
		// A numeric property wants a comparison.
		for i, phr := range []string{"over", "under", "greater than", "less than", "between"} {
			add(phr, "comparison", 0.9-float64(i)*0.05)
		}

	default:
		// After a bare concept: filter openers, relationships to related
		// concepts (ranked by the target's centrality), and grouping.
		add("with", "keyword", 0.9)
		for _, rel := range c.ont.RelationshipsOf(st.anchor.Name) {
			other := rel.To
			if strings.EqualFold(other, st.anchor.Name) {
				other = rel.From
			}
			add("of the "+other, "relationship", 0.5+0.4*c.centrality[strings.ToLower(other)])
			add("without "+pluralize(other), "relationship", 0.3+0.3*c.centrality[strings.ToLower(other)])
		}
		add("per", "grouping", 0.45)
	}

	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Text < out[j].Text
	})
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}

func (s state) lastConceptOr(fallback *ontology.Concept) *ontology.Concept {
	if s.lastConcept != nil {
		return s.lastConcept
	}
	return fallback
}

func propertiesOf(c *ontology.Concept) []ontology.Property {
	if c == nil {
		return nil
	}
	var out []ontology.Property
	for _, p := range c.Properties {
		if strings.EqualFold(p.Column, "id") {
			continue
		}
		out = append(out, p)
	}
	return out
}

func pluralize(w string) string {
	switch {
	case strings.HasSuffix(w, "s"):
		return w
	case strings.HasSuffix(w, "y"):
		return w[:len(w)-1] + "ies"
	default:
		return w + "s"
	}
}
