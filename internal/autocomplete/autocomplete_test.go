package autocomplete

import (
	"strings"
	"testing"

	"nlidb/internal/benchdata"
	"nlidb/internal/lexicon"
	"nlidb/internal/ontology"
)

func completer(t testing.TB) *Completer {
	t.Helper()
	d := benchdata.Sales(1)
	return New(d.DB, ontology.FromDatabase(d.DB), lexicon.New())
}

func texts(ss []Suggestion) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Text
	}
	return out
}

func contains(ss []Suggestion, text string) bool {
	for _, s := range ss {
		if s.Text == text {
			return true
		}
	}
	return false
}

func TestEmptyPrefixSuggestsConcepts(t *testing.T) {
	c := completer(t)
	ss := c.Suggest("", 10)
	if len(ss) == 0 {
		t.Fatal("no suggestions")
	}
	if !contains(ss, "customers") || !contains(ss, "products") {
		t.Errorf("concepts missing: %v", texts(ss))
	}
	if !contains(ss, "how many") {
		t.Errorf("aggregate opener missing: %v", texts(ss))
	}
}

func TestCentralityRanksHubConceptsFirst(t *testing.T) {
	c := completer(t)
	ss := c.Suggest("", 20)
	// orders has two relationships (customer, product) → highest degree.
	pos := map[string]int{}
	for i, s := range ss {
		pos[s.Text] = i
	}
	if pos["orders"] > pos["categories"] {
		t.Errorf("hub concept not ranked above leaf: %v", texts(ss))
	}
}

func TestAfterConceptSuggestsFiltersAndRelationships(t *testing.T) {
	c := completer(t)
	ss := c.Suggest("customers", 10)
	if !contains(ss, "with") {
		t.Errorf("'with' missing: %v", texts(ss))
	}
	found := false
	for _, s := range ss {
		if strings.HasPrefix(s.Text, "without ") {
			found = true
		}
	}
	if !found {
		t.Errorf("relationship completions missing: %v", texts(ss))
	}
}

func TestAfterWithSuggestsProperties(t *testing.T) {
	c := completer(t)
	ss := c.Suggest("customers with", 10)
	if !contains(ss, "city") || !contains(ss, "credit") {
		t.Errorf("properties missing: %v", texts(ss))
	}
	for _, s := range ss {
		if s.Text == "id" {
			t.Error("id suggested as filter")
		}
	}
}

func TestAfterTextPropertySuggestsValues(t *testing.T) {
	c := completer(t)
	ss := c.Suggest("customers with city", 10)
	if !contains(ss, "Berlin") {
		t.Errorf("values missing: %v", texts(ss))
	}
	for _, s := range ss {
		if s.Kind != "value" {
			t.Errorf("non-value suggestion %+v", s)
		}
	}
}

func TestAfterNumericPropertySuggestsComparisons(t *testing.T) {
	c := completer(t)
	ss := c.Suggest("customers with credit", 10)
	if !contains(ss, "over") || !contains(ss, "between") {
		t.Errorf("comparisons missing: %v", texts(ss))
	}
}

func TestAfterComparativeSuggestsNumberOrAggregate(t *testing.T) {
	c := completer(t)
	ss := c.Suggest("customers with credit over", 10)
	if !contains(ss, "<number>") {
		t.Errorf("number placeholder missing: %v", texts(ss))
	}
	if !contains(ss, "the average credit") {
		t.Errorf("nested aggregate completion missing: %v", texts(ss))
	}
}

func TestCompletedComparisonMovesOn(t *testing.T) {
	c := completer(t)
	ss := c.Suggest("customers with credit over 5000", 10)
	// The comparison is complete; we should be back to clause-level
	// suggestions, not numbers.
	if contains(ss, "<number>") {
		t.Errorf("stale comparison state: %v", texts(ss))
	}
}

func TestLimitRespected(t *testing.T) {
	c := completer(t)
	if got := len(c.Suggest("", 3)); got != 3 {
		t.Errorf("limit ignored: %d", got)
	}
	if got := len(c.Suggest("", 0)); got == 0 || got > 8 {
		t.Errorf("default limit wrong: %d", got)
	}
}

func TestDeterministic(t *testing.T) {
	c := completer(t)
	a := texts(c.Suggest("customers with", 8))
	b := texts(c.Suggest("customers with", 8))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic: %v vs %v", a, b)
		}
	}
}
