package benchdata

import (
	"strings"
	"testing"

	"nlidb/internal/nlq"
	"nlidb/internal/sqlexec"
)

func TestDomainsBuild(t *testing.T) {
	ds := Domains(1)
	if len(ds) != 5 {
		t.Fatalf("domains = %d", len(ds))
	}
	names := map[string]bool{}
	for _, d := range ds {
		names[d.Name] = true
		if err := d.DB.ValidateForeignKeys(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
		if d.DB.Table(d.Main) == nil {
			t.Errorf("%s: main table %q missing", d.Name, d.Main)
		}
		for _, tbl := range d.DB.Tables() {
			if tbl.Len() == 0 {
				t.Errorf("%s.%s is empty", d.Name, tbl.Schema.Name)
			}
		}
	}
	for _, want := range []string{"sales", "movies", "hospital", "flights", "university"} {
		if !names[want] {
			t.Errorf("missing domain %s", want)
		}
	}
}

func TestDomainByName(t *testing.T) {
	if DomainByName("movies", 1) == nil {
		t.Error("movies not found")
	}
	if DomainByName("nope", 1) != nil {
		t.Error("phantom domain")
	}
}

// Every generated gold query must parse, classify as its declared class,
// and execute with a non-degenerate result.
func TestGeneratedGoldExecutes(t *testing.T) {
	for _, d := range Domains(7) {
		pairs := d.GeneratePairs(60, 99)
		if len(pairs) < 40 {
			t.Fatalf("%s: only %d pairs generated", d.Name, len(pairs))
		}
		eng := sqlexec.New(d.DB)
		nonEmpty := 0
		for _, p := range pairs {
			if got := nlq.Classify(p.SQL); got != p.Complexity {
				t.Errorf("%s: %q declared %v but classifies %v: %s", d.Name, p.Question, p.Complexity, got, p.SQL)
				continue
			}
			res, err := eng.Run(p.SQL)
			if err != nil {
				t.Errorf("%s: gold does not execute: %s: %v", d.Name, p.SQL, err)
				continue
			}
			if len(res.Rows) > 0 {
				nonEmpty++
			}
		}
		if nonEmpty < len(pairs)/2 {
			t.Errorf("%s: too many empty gold results (%d/%d non-empty)", d.Name, nonEmpty, len(pairs))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	d1 := Sales(3)
	d2 := Sales(3)
	p1 := d1.GeneratePairs(20, 5)
	p2 := d2.GeneratePairs(20, 5)
	if len(p1) != len(p2) {
		t.Fatal("nondeterministic pair count")
	}
	for i := range p1 {
		if p1[i].Question != p2[i].Question || p1[i].SQL.String() != p2[i].SQL.String() {
			t.Fatalf("nondeterministic at %d: %q vs %q", i, p1[i].Question, p2[i].Question)
		}
	}
}

func TestGeneratePairsClassFilter(t *testing.T) {
	d := Movies(2)
	pairs := d.GeneratePairs(20, 11, nlq.Nested)
	if len(pairs) == 0 {
		t.Fatal("no nested pairs")
	}
	for _, p := range pairs {
		if p.Complexity != nlq.Nested {
			t.Errorf("class leak: %v", p.Complexity)
		}
	}
}

func TestWikiSQLStyle(t *testing.T) {
	d := Sales(4)
	set := WikiSQLStyle(d, 50, 13)
	if len(set.Pairs) < 30 {
		t.Fatalf("pairs = %d", len(set.Pairs))
	}
	for _, p := range set.Pairs {
		if !strings.EqualFold(p.Table, d.Main) {
			t.Errorf("non-main table %q", p.Table)
		}
		if len(p.SQL.From.Joins) != 0 || len(p.SQL.Subqueries()) != 0 {
			t.Errorf("wikisql pair too complex: %s", p.SQL)
		}
	}
	stats := set.ComputeStats()
	if stats.Pairs != len(set.Pairs) || stats.PerClass[nlq.Simple] == 0 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestSpiderStyle(t *testing.T) {
	sets := SpiderStyle(Domains(5), 5, 21)
	if len(sets) != 5 {
		t.Fatalf("sets = %d", len(sets))
	}
	for _, s := range sets {
		st := s.ComputeStats()
		for _, class := range []nlq.Complexity{nlq.Simple, nlq.Aggregation, nlq.Join, nlq.Nested} {
			if st.PerClass[class] == 0 {
				t.Errorf("%s: class %v empty", s.Name, class)
			}
		}
	}
	pairs, owners := Merged(sets)
	if len(pairs) == 0 || len(pairs) != len(owners) {
		t.Fatal("Merged broken")
	}
}

func TestConversations(t *testing.T) {
	for _, d := range Domains(6) {
		cs := Conversations(d, 10, 31)
		if len(cs.Conversations) < 5 {
			t.Fatalf("%s: conversations = %d", d.Name, len(cs.Conversations))
		}
		eng := sqlexec.New(d.DB)
		for _, conv := range cs.Conversations {
			if len(conv.Turns) < 3 {
				t.Fatalf("%s: short conversation %d turns", d.Name, len(conv.Turns))
			}
			if conv.Turns[0].Kind != 0 {
				t.Errorf("first turn kind = %v", conv.Turns[0].Kind)
			}
			for ti, turn := range conv.Turns {
				if _, err := eng.Run(turn.SQL); err != nil {
					t.Errorf("%s %s turn %d gold fails: %s: %v", d.Name, conv.ID, ti, turn.SQL, err)
				}
			}
			// Refinement must be a strict subset of the opening result.
			r0, err0 := eng.Run(conv.Turns[0].SQL)
			r1, err1 := eng.Run(conv.Turns[1].SQL)
			if err0 == nil && err1 == nil && len(r1.Rows) > len(r0.Rows) {
				t.Errorf("%s: refinement grew the result (%d → %d)", conv.ID, len(r0.Rows), len(r1.Rows))
			}
		}
		if cs.TotalTurns() < 15 {
			t.Errorf("%s: total turns = %d", d.Name, cs.TotalTurns())
		}
	}
}
