package benchdata

import (
	"fmt"
	"math/rand"
	"strings"

	"nlidb/internal/dataset"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlparse"
)

// Conversations generates a SParC/CoSQL-style multi-turn corpus: each
// conversation opens with a self-contained question and continues with
// context-dependent follow-ups (refinement, aggregation, projection
// shift) whose gold SQL is the fully resolved query.
func Conversations(d *Domain, n int, seed int64) *dataset.ConvSet {
	r := rand.New(rand.NewSource(seed))
	set := &dataset.ConvSet{Name: "sparc-" + d.Name, DB: d.DB}
	attempts := 0
	for len(set.Conversations) < n && attempts < n*40 {
		attempts++
		conv := d.makeConversation(r, fmt.Sprintf("c-%s-%d", d.Name, len(set.Conversations)))
		if conv == nil {
			continue
		}
		set.Conversations = append(set.Conversations, *conv)
	}
	return set
}

// makeConversation builds one 3-4 turn conversation, or nil when the
// rolled ingredients don't support it.
func (d *Domain) makeConversation(r *rand.Rand, id string) *dataset.Conversation {
	// The anchor table needs an identifying column, a categorical filter
	// or a join parent, and at least two numeric columns (refine + shift).
	var anchorTbl *sqldata.Table
	var opening, openingSQL string
	if r.Intn(2) == 0 {
		// Single-table opening (S2-style).
		for _, t := range d.tablesWithText() {
			if len(filterTextCols(t.Schema)) > 0 && len(numericCols(t.Schema)) >= 2 {
				anchorTbl = t
				break
			}
		}
		if anchorTbl == nil {
			return nil
		}
		name := strings.ToLower(anchorTbl.Schema.Name)
		idc := identifyingCol(anchorTbl.Schema)
		fcols := filterTextCols(anchorTbl.Schema)
		col := fcols[r.Intn(len(fcols))]
		v := randomValue(anchorTbl, col, r)
		if v == "" {
			return nil
		}
		opening = fmt.Sprintf("list %s with %s %s", plural(name), colPhrase(col), v)
		openingSQL = fmt.Sprintf("SELECT %s FROM %s WHERE %s = '%s'", idc, name, col, escape(v))
	} else {
		// Join opening (J1-style).
		for _, e := range edges(d.DB) {
			child := d.DB.Table(e.child)
			parent := d.DB.Table(e.parent)
			if identifyingCol(child.Schema) == "" || identifyingCol(parent.Schema) == "" {
				continue
			}
			if len(numericCols(child.Schema)) < 2 {
				continue
			}
			v := randomValue(parent, identifyingCol(parent.Schema), r)
			if v == "" {
				continue
			}
			anchorTbl = child
			opening = fmt.Sprintf("show %s of the %s %s", plural(e.child), e.parent, v)
			openingSQL = fmt.Sprintf("SELECT %s.%s FROM %s JOIN %s ON %s.%s = %s.%s WHERE %s.%s = '%s'",
				e.child, identifyingCol(child.Schema), e.child, e.parent,
				e.child, e.childCol, e.parent, e.parentCol,
				e.parent, identifyingCol(parent.Schema), escape(v))
			break
		}
		if anchorTbl == nil {
			return nil
		}
	}

	base, err := sqlparse.Parse(openingSQL)
	if err != nil {
		panic(fmt.Sprintf("benchdata: bad conversation gold %q: %v", openingSQL, err))
	}
	conv := &dataset.Conversation{ID: id}
	conv.Turns = append(conv.Turns, dataset.Turn{Utterance: opening, SQL: base, Kind: dataset.TurnFull})

	anchor := strings.ToLower(anchorTbl.Schema.Name)
	ncols := numericCols(anchorTbl.Schema)
	qualify := len(base.From.Joins) > 0

	colref := func(c string) string {
		if qualify {
			return anchor + "." + c
		}
		return c
	}

	// Turn 2: refinement.
	rc := ncols[0]
	nval := threshold(anchorTbl, rc, r)
	op, phrase := cmpPhrase(r)
	refined := clone(base)
	cond := &sqlparse.BinaryExpr{
		Op: op,
		L:  mustCol(colref(rc)),
		R:  &sqlparse.Literal{Val: sqldata.NewInt(nval)},
	}
	if refined.Where == nil {
		refined.Where = cond
	} else {
		refined.Where = &sqlparse.BinaryExpr{Op: "AND", L: refined.Where, R: cond}
	}
	conv.Turns = append(conv.Turns, dataset.Turn{
		Utterance: fmt.Sprintf("only those with %s %s %d", colPhrase(rc), phrase, nval),
		SQL:       refined, Kind: dataset.TurnRefine,
	})

	// Turn 3: aggregate over the current result.
	agg := clone(refined)
	agg.Items = []sqlparse.SelectItem{{Expr: &sqlparse.FuncCall{Name: "COUNT", Star: true}}}
	conv.Turns = append(conv.Turns, dataset.Turn{
		Utterance: "how many are there",
		SQL:       agg, Kind: dataset.TurnAggregate,
	})

	// Turn 4 (half the conversations): projection shift back to rows.
	if r.Intn(2) == 0 && len(ncols) >= 2 {
		sc := ncols[1]
		shift := clone(refined)
		shift.Items = []sqlparse.SelectItem{{Expr: mustCol(colref(sc))}}
		conv.Turns = append(conv.Turns, dataset.Turn{
			Utterance: fmt.Sprintf("show their %s instead", colPhrase(sc)),
			SQL:       shift, Kind: dataset.TurnShift,
		})
	}
	return conv
}

// clone deep-copies a statement via print/parse.
func clone(s *sqlparse.SelectStmt) *sqlparse.SelectStmt {
	return sqlparse.MustParse(s.String())
}

// mustCol builds a (possibly qualified) column reference.
func mustCol(ref string) *sqlparse.ColumnRef {
	if i := strings.IndexByte(ref, '.'); i >= 0 {
		return &sqlparse.ColumnRef{Table: ref[:i], Column: ref[i+1:]}
	}
	return &sqlparse.ColumnRef{Column: ref}
}
