// Package benchdata generates the benchmark corpora the experiments run
// on, in the styles of the datasets the tutorial's benchmark section
// discusses: WikiSQL-style single-table corpora, Spider-style cross-domain
// multi-table corpora stratified by the four complexity classes, and
// SParC/CoSQL-style multi-turn conversations. All generation is seeded
// and deterministic.
package benchdata

import (
	"fmt"
	"math/rand"
	"strings"

	"nlidb/internal/sqldata"
)

// Domain is one self-contained database with seeded content.
type Domain struct {
	// Name labels the domain ("sales", "movies", …).
	Name string
	// DB holds the populated database.
	DB *sqldata.Database
	// Main names the WikiSQL-style main entity table.
	Main string
}

// name pools for seeded data generation.
var (
	personPool = []string{"ann", "bob", "carol", "dan", "erin", "frank", "grace",
		"heidi", "ivan", "judy", "karl", "lena", "mallory", "nick", "olga",
		"peggy", "quinn", "rita", "steve", "trudy", "ursula", "victor", "wendy"}
	cityPool      = []string{"Berlin", "Munich", "Hamburg", "Cologne", "Frankfurt", "Stuttgart"}
	segmentPool   = []string{"retail", "corporate", "wholesale", "online"}
	categoryPool  = []string{"toys", "books", "tools", "garden", "sports", "music"}
	productPool   = []string{"widget", "gadget", "sprocket", "gizmo", "doohickey", "contraption", "apparatus", "fixture"}
	countryPool   = []string{"france", "japan", "brazil", "canada", "italy", "spain"}
	titlePool     = []string{"horizon", "eclipse", "voyager", "labyrinth", "cascade", "zenith", "mirage", "odyssey", "tempest", "aurora"}
	specialtyPool = []string{"cardiology", "oncology", "neurology", "pediatrics", "radiology"}
	airlinePool   = []string{"skyways", "aerojet", "cloudline", "jetstream", "altitude"}
	deptPool      = []string{"engineering", "marketing", "finance", "research", "support"}
	coursePool    = []string{"algebra", "databases", "poetry", "genetics", "robotics", "ethics", "statistics", "painting"}
)

func pick(r *rand.Rand, pool []string) string { return pool[r.Intn(len(pool))] }

// uniqueNames returns n distinct single-token names built from a pool.
func uniqueNames(r *rand.Rand, pool []string, n int) []string {
	out := make([]string, n)
	for i := 0; i < n; i++ {
		base := pool[i%len(pool)]
		if i < len(pool) {
			out[i] = base
		} else {
			out[i] = fmt.Sprintf("%s%d", base, i/len(pool)+1)
		}
	}
	r.Shuffle(n, func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func mustTable(db *sqldata.Database, s *sqldata.Schema) *sqldata.Table {
	t, err := db.CreateTable(s)
	if err != nil {
		panic(fmt.Sprintf("benchdata: %v", err))
	}
	return t
}

// Sales builds the sales domain: category ← product, customer, orders.
func Sales(seed int64) *Domain {
	r := rand.New(rand.NewSource(seed))
	db := sqldata.NewDatabase("sales")

	cat := mustTable(db, &sqldata.Schema{Name: "category", Columns: []sqldata.Column{
		{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
		{Name: "name", Type: sqldata.TypeText},
	}})
	for i, c := range categoryPool {
		cat.MustInsert(sqldata.NewInt(int64(i+1)), sqldata.NewText(c))
	}

	prod := mustTable(db, &sqldata.Schema{Name: "product", Synonyms: []string{"item", "good"}, Columns: []sqldata.Column{
		{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
		{Name: "name", Type: sqldata.TypeText},
		{Name: "price", Type: sqldata.TypeFloat, Synonyms: []string{"cost", "expensive", "cheap"}},
		{Name: "stock", Type: sqldata.TypeInt, Synonyms: []string{"inventory"}},
		{Name: "category_id", Type: sqldata.TypeInt},
	}, ForeignKeys: []sqldata.ForeignKey{{Column: "category_id", RefTable: "category", RefColumn: "id"}}})
	prodNames := uniqueNames(r, productPool, 24)
	for i, n := range prodNames {
		prod.MustInsert(sqldata.NewInt(int64(i+1)), sqldata.NewText(n),
			sqldata.NewFloat(float64(r.Intn(9000)+100)/10.0+r.Float64()),
			sqldata.NewInt(int64(r.Intn(500))),
			sqldata.NewInt(int64(r.Intn(len(categoryPool))+1)))
	}

	cust := mustTable(db, &sqldata.Schema{Name: "customer", Synonyms: []string{"client", "buyer"}, Columns: []sqldata.Column{
		{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
		{Name: "name", Type: sqldata.TypeText},
		{Name: "city", Type: sqldata.TypeText, Synonyms: []string{"town"}},
		{Name: "segment", Type: sqldata.TypeText},
		{Name: "credit", Type: sqldata.TypeFloat, Synonyms: []string{"limit"}},
	}})
	custNames := uniqueNames(r, personPool, 30)
	for i, n := range custNames {
		cust.MustInsert(sqldata.NewInt(int64(i+1)), sqldata.NewText(n),
			sqldata.NewText(pick(r, cityPool)), sqldata.NewText(pick(r, segmentPool)),
			sqldata.NewFloat(float64(r.Intn(50000))+r.Float64()))
	}

	ord := mustTable(db, &sqldata.Schema{Name: "orders", Synonyms: []string{"order", "purchase", "sale"}, Columns: []sqldata.Column{
		{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
		{Name: "customer_id", Type: sqldata.TypeInt},
		{Name: "product_id", Type: sqldata.TypeInt},
		{Name: "quantity", Type: sqldata.TypeInt, Synonyms: []string{"amount"}},
		{Name: "total", Type: sqldata.TypeFloat, Synonyms: []string{"revenue"}},
	}, ForeignKeys: []sqldata.ForeignKey{
		{Column: "customer_id", RefTable: "customer", RefColumn: "id"},
		{Column: "product_id", RefTable: "product", RefColumn: "id"},
	}})
	// Leave a few customers order-less for the NOT EXISTS templates.
	for i := 0; i < 90; i++ {
		ord.MustInsert(sqldata.NewInt(int64(i+1)),
			sqldata.NewInt(int64(r.Intn(25)+1)),
			sqldata.NewInt(int64(r.Intn(24)+1)),
			sqldata.NewInt(int64(r.Intn(9)+1)),
			sqldata.NewFloat(float64(r.Intn(2000)+10)+r.Float64()))
	}
	return &Domain{Name: "sales", DB: db, Main: "customer"}
}

// Movies builds the movies domain: director ← movie.
func Movies(seed int64) *Domain {
	r := rand.New(rand.NewSource(seed))
	db := sqldata.NewDatabase("movies")

	dir := mustTable(db, &sqldata.Schema{Name: "director", Synonyms: []string{"filmmaker"}, Columns: []sqldata.Column{
		{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
		{Name: "name", Type: sqldata.TypeText},
		{Name: "country", Type: sqldata.TypeText, Synonyms: []string{"nation"}},
	}})
	dirNames := uniqueNames(r, personPool, 12)
	for i, n := range dirNames {
		dir.MustInsert(sqldata.NewInt(int64(i+1)), sqldata.NewText(n), sqldata.NewText(pick(r, countryPool)))
	}

	mov := mustTable(db, &sqldata.Schema{Name: "movie", Synonyms: []string{"film"}, Columns: []sqldata.Column{
		{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
		{Name: "title", Type: sqldata.TypeText},
		{Name: "year", Type: sqldata.TypeInt},
		{Name: "rating", Type: sqldata.TypeFloat, Synonyms: []string{"score"}},
		{Name: "gross", Type: sqldata.TypeFloat, Synonyms: []string{"earnings", "revenue"}},
		{Name: "director_id", Type: sqldata.TypeInt},
	}, ForeignKeys: []sqldata.ForeignKey{{Column: "director_id", RefTable: "director", RefColumn: "id"}}})
	movTitles := uniqueNames(r, titlePool, 40)
	for i, tt := range movTitles {
		mov.MustInsert(sqldata.NewInt(int64(i+1)), sqldata.NewText(tt),
			sqldata.NewInt(int64(1980+r.Intn(44))),
			sqldata.NewFloat(float64(r.Intn(90)+10)/10.0+r.Float64()/10),
			sqldata.NewFloat(float64(r.Intn(90000)+1000)+r.Float64()),
			sqldata.NewInt(int64(r.Intn(10)+1))) // directors 11-12 stay movie-less
	}
	return &Domain{Name: "movies", DB: db, Main: "movie"}
}

// Hospital builds the hospital domain: department ← doctor ← visit → patient.
func Hospital(seed int64) *Domain {
	r := rand.New(rand.NewSource(seed))
	db := sqldata.NewDatabase("hospital")

	dept := mustTable(db, &sqldata.Schema{Name: "department", Synonyms: []string{"ward", "unit"}, Columns: []sqldata.Column{
		{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
		{Name: "name", Type: sqldata.TypeText},
		{Name: "budget", Type: sqldata.TypeFloat, Synonyms: []string{"funding"}},
	}})
	for i, n := range specialtyPool {
		dept.MustInsert(sqldata.NewInt(int64(i+1)), sqldata.NewText(n), sqldata.NewFloat(float64(r.Intn(900000)+100000)))
	}
	// One department with no doctors.
	dept.MustInsert(sqldata.NewInt(int64(len(specialtyPool)+1)), sqldata.NewText("archive"), sqldata.NewFloat(50000))

	doc := mustTable(db, &sqldata.Schema{Name: "doctor", Synonyms: []string{"physician"}, Columns: []sqldata.Column{
		{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
		{Name: "name", Type: sqldata.TypeText},
		{Name: "salary", Type: sqldata.TypeFloat, Synonyms: []string{"pay", "wage"}},
		{Name: "experience", Type: sqldata.TypeInt, Synonyms: []string{"seniority", "years"}},
		{Name: "department_id", Type: sqldata.TypeInt},
	}, ForeignKeys: []sqldata.ForeignKey{{Column: "department_id", RefTable: "department", RefColumn: "id"}}})
	docNames := uniqueNames(r, personPool, 20)
	for i, n := range docNames {
		doc.MustInsert(sqldata.NewInt(int64(i+1)), sqldata.NewText(n),
			sqldata.NewFloat(float64(r.Intn(150000)+60000)+r.Float64()),
			sqldata.NewInt(int64(r.Intn(30)+1)),
			sqldata.NewInt(int64(r.Intn(len(specialtyPool))+1)))
	}

	pat := mustTable(db, &sqldata.Schema{Name: "patient", Columns: []sqldata.Column{
		{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
		{Name: "name", Type: sqldata.TypeText},
		{Name: "age", Type: sqldata.TypeInt},
	}})
	patNames := uniqueNames(r, personPool, 30)
	for i, n := range patNames {
		pat.MustInsert(sqldata.NewInt(int64(i+1)), sqldata.NewText(n), sqldata.NewInt(int64(r.Intn(80)+5)))
	}

	vis := mustTable(db, &sqldata.Schema{Name: "visit", Synonyms: []string{"appointment", "consultation"}, Columns: []sqldata.Column{
		{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
		{Name: "doctor_id", Type: sqldata.TypeInt},
		{Name: "patient_id", Type: sqldata.TypeInt},
		{Name: "cost", Type: sqldata.TypeFloat, Synonyms: []string{"charge", "fee"}},
	}, ForeignKeys: []sqldata.ForeignKey{
		{Column: "doctor_id", RefTable: "doctor", RefColumn: "id"},
		{Column: "patient_id", RefTable: "patient", RefColumn: "id"},
	}})
	for i := 0; i < 80; i++ {
		vis.MustInsert(sqldata.NewInt(int64(i+1)),
			sqldata.NewInt(int64(r.Intn(16)+1)), // doctors 17-20 stay visit-less
			sqldata.NewInt(int64(r.Intn(30)+1)),
			sqldata.NewFloat(float64(r.Intn(900)+50)+r.Float64()))
	}
	return &Domain{Name: "hospital", DB: db, Main: "doctor"}
}

// Flights builds the flights domain: airline ← flight.
func Flights(seed int64) *Domain {
	r := rand.New(rand.NewSource(seed))
	db := sqldata.NewDatabase("flights")

	air := mustTable(db, &sqldata.Schema{Name: "airline", Synonyms: []string{"carrier"}, Columns: []sqldata.Column{
		{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
		{Name: "name", Type: sqldata.TypeText},
		{Name: "country", Type: sqldata.TypeText},
		{Name: "fleet", Type: sqldata.TypeInt, Synonyms: []string{"planes", "aircraft"}},
	}})
	for i, n := range airlinePool {
		air.MustInsert(sqldata.NewInt(int64(i+1)), sqldata.NewText(n),
			sqldata.NewText(pick(r, countryPool)), sqldata.NewInt(int64(r.Intn(200)+10)))
	}
	// One airline with no flights.
	air.MustInsert(sqldata.NewInt(int64(len(airlinePool)+1)), sqldata.NewText("paperjet"),
		sqldata.NewText(pick(r, countryPool)), sqldata.NewInt(3))

	fl := mustTable(db, &sqldata.Schema{Name: "flight", Synonyms: []string{"trip", "route"}, Columns: []sqldata.Column{
		{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
		{Name: "code", Type: sqldata.TypeText},
		{Name: "origin", Type: sqldata.TypeText, Synonyms: []string{"from"}},
		{Name: "destination", Type: sqldata.TypeText, Synonyms: []string{"to"}},
		{Name: "price", Type: sqldata.TypeFloat, Synonyms: []string{"fare", "cost"}},
		{Name: "distance", Type: sqldata.TypeFloat, Synonyms: []string{"length"}},
		{Name: "airline_id", Type: sqldata.TypeInt},
	}, ForeignKeys: []sqldata.ForeignKey{{Column: "airline_id", RefTable: "airline", RefColumn: "id"}}})
	for i := 0; i < 50; i++ {
		src, dst := pick(r, cityPool), pick(r, cityPool)
		for dst == src {
			dst = pick(r, cityPool)
		}
		fl.MustInsert(sqldata.NewInt(int64(i+1)),
			sqldata.NewText(fmt.Sprintf("fl%03d", i+1)),
			sqldata.NewText(src), sqldata.NewText(dst),
			sqldata.NewFloat(float64(r.Intn(900)+50)+r.Float64()),
			sqldata.NewFloat(float64(r.Intn(2000)+100)+r.Float64()),
			sqldata.NewInt(int64(r.Intn(len(airlinePool))+1)))
	}
	return &Domain{Name: "flights", DB: db, Main: "flight"}
}

// University builds the university domain: department ← professor ← course.
func University(seed int64) *Domain {
	r := rand.New(rand.NewSource(seed))
	db := sqldata.NewDatabase("university")

	dept := mustTable(db, &sqldata.Schema{Name: "department", Synonyms: []string{"faculty", "school"}, Columns: []sqldata.Column{
		{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
		{Name: "name", Type: sqldata.TypeText},
		{Name: "budget", Type: sqldata.TypeFloat, Synonyms: []string{"funding"}},
	}})
	for i, n := range deptPool {
		dept.MustInsert(sqldata.NewInt(int64(i+1)), sqldata.NewText(n), sqldata.NewFloat(float64(r.Intn(5000000)+500000)))
	}
	dept.MustInsert(sqldata.NewInt(int64(len(deptPool)+1)), sqldata.NewText("annex"), sqldata.NewFloat(100000))

	prof := mustTable(db, &sqldata.Schema{Name: "professor", Synonyms: []string{"teacher", "instructor", "lecturer"}, Columns: []sqldata.Column{
		{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
		{Name: "name", Type: sqldata.TypeText},
		{Name: "salary", Type: sqldata.TypeFloat, Synonyms: []string{"pay", "wage"}},
		{Name: "tenure", Type: sqldata.TypeInt, Synonyms: []string{"years"}},
		{Name: "dept_id", Type: sqldata.TypeInt},
	}, ForeignKeys: []sqldata.ForeignKey{{Column: "dept_id", RefTable: "department", RefColumn: "id"}}})
	profNames := uniqueNames(r, personPool, 18)
	for i, n := range profNames {
		prof.MustInsert(sqldata.NewInt(int64(i+1)), sqldata.NewText(n),
			sqldata.NewFloat(float64(r.Intn(100000)+50000)+r.Float64()),
			sqldata.NewInt(int64(r.Intn(25))),
			sqldata.NewInt(int64(r.Intn(len(deptPool))+1)))
	}

	course := mustTable(db, &sqldata.Schema{Name: "course", Synonyms: []string{"class", "lecture"}, Columns: []sqldata.Column{
		{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
		{Name: "title", Type: sqldata.TypeText},
		{Name: "credits", Type: sqldata.TypeInt, Synonyms: []string{"units"}},
		{Name: "enrollment", Type: sqldata.TypeInt, Synonyms: []string{"students", "size"}},
		{Name: "prof_id", Type: sqldata.TypeInt},
	}, ForeignKeys: []sqldata.ForeignKey{{Column: "prof_id", RefTable: "professor", RefColumn: "id"}}})
	courseTitles := uniqueNames(r, coursePool, 36)
	for i, tt := range courseTitles {
		course.MustInsert(sqldata.NewInt(int64(i+1)), sqldata.NewText(tt),
			sqldata.NewInt(int64(r.Intn(5)+1)),
			sqldata.NewInt(int64(r.Intn(200)+5)),
			sqldata.NewInt(int64(r.Intn(15)+1))) // professors 16-18 course-less
	}
	return &Domain{Name: "university", DB: db, Main: "professor"}
}

// Medical builds the small medical knowledge base used by the query-
// relaxation experiment (T9) and the medkb example: conditions treated by
// medications, plus patients. Kept out of the standard domain set.
func Medical(seed int64) *Domain {
	r := rand.New(rand.NewSource(seed))
	db := sqldata.NewDatabase("medical")

	cond := mustTable(db, &sqldata.Schema{Name: "condition", Synonyms: []string{"disease", "illness", "disorder"}, Columns: []sqldata.Column{
		{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
		{Name: "name", Type: sqldata.TypeText},
		{Name: "severity", Type: sqldata.TypeInt},
	}})
	conditions := []string{"hypertension", "diabetes", "asthma", "migraine", "arthritis", "insomnia"}
	for i, c := range conditions {
		cond.MustInsert(sqldata.NewInt(int64(i+1)), sqldata.NewText(c), sqldata.NewInt(int64(r.Intn(9)+1)))
	}

	drug := mustTable(db, &sqldata.Schema{Name: "drug", Synonyms: []string{"medication", "medicine"}, Columns: []sqldata.Column{
		{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
		{Name: "name", Type: sqldata.TypeText},
		{Name: "price", Type: sqldata.TypeFloat, Synonyms: []string{"cost"}},
		{Name: "dosage", Type: sqldata.TypeInt},
		{Name: "condition_id", Type: sqldata.TypeInt},
	}, ForeignKeys: []sqldata.ForeignKey{{Column: "condition_id", RefTable: "condition", RefColumn: "id"}}})
	drugs := []string{"lisinopril", "metformin", "albuterol", "sumatriptan", "ibuprofen", "zolpidem", "aspirin", "atorvastatin"}
	for i, dname := range drugs {
		drug.MustInsert(sqldata.NewInt(int64(i+1)), sqldata.NewText(dname),
			sqldata.NewFloat(float64(r.Intn(190)+10)+r.Float64()),
			sqldata.NewInt(int64(r.Intn(500)+10)),
			sqldata.NewInt(int64(i%len(conditions)+1)))
	}

	pat := mustTable(db, &sqldata.Schema{Name: "patient", Columns: []sqldata.Column{
		{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
		{Name: "name", Type: sqldata.TypeText},
		{Name: "age", Type: sqldata.TypeInt},
		{Name: "condition_id", Type: sqldata.TypeInt},
	}, ForeignKeys: []sqldata.ForeignKey{{Column: "condition_id", RefTable: "condition", RefColumn: "id"}}})
	patNames := uniqueNames(r, personPool, 24)
	for i, n := range patNames {
		pat.MustInsert(sqldata.NewInt(int64(i+1)), sqldata.NewText(n),
			sqldata.NewInt(int64(r.Intn(70)+15)),
			sqldata.NewInt(int64(r.Intn(len(conditions))+1)))
	}
	return &Domain{Name: "medical", DB: db, Main: "drug"}
}

// Airports builds the ambiguous-join domain for the query-log experiment
// (T10): hop carries TWO foreign keys to airport (origin and destination),
// so "hops of the airport X" has two structurally valid join readings.
func Airports(seed int64) *Domain {
	r := rand.New(rand.NewSource(seed))
	db := sqldata.NewDatabase("airports")

	ap := mustTable(db, &sqldata.Schema{Name: "airport", Columns: []sqldata.Column{
		{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
		{Name: "name", Type: sqldata.TypeText},
		{Name: "city", Type: sqldata.TypeText},
	}})
	names := []string{"tegel", "schoenefeld", "riem", "lohausen", "fuhlsbuettel", "echterdingen"}
	for i, n := range names {
		ap.MustInsert(sqldata.NewInt(int64(i+1)), sqldata.NewText(n), sqldata.NewText(pick(r, cityPool)))
	}

	hop := mustTable(db, &sqldata.Schema{Name: "hop", Synonyms: []string{"leg", "segment"}, Columns: []sqldata.Column{
		{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
		{Name: "code", Type: sqldata.TypeText},
		{Name: "price", Type: sqldata.TypeFloat},
		{Name: "origin_id", Type: sqldata.TypeInt},
		{Name: "dest_id", Type: sqldata.TypeInt},
	}, ForeignKeys: []sqldata.ForeignKey{
		{Column: "origin_id", RefTable: "airport", RefColumn: "id"},
		{Column: "dest_id", RefTable: "airport", RefColumn: "id"},
	}})
	for i := 0; i < 40; i++ {
		o := r.Intn(len(names)) + 1
		d := r.Intn(len(names)) + 1
		for d == o {
			d = r.Intn(len(names)) + 1
		}
		hop.MustInsert(sqldata.NewInt(int64(i+1)),
			sqldata.NewText(fmt.Sprintf("h%03d", i+1)),
			sqldata.NewFloat(float64(r.Intn(400)+40)+r.Float64()),
			sqldata.NewInt(int64(o)), sqldata.NewInt(int64(d)))
	}
	return &Domain{Name: "airports", DB: db, Main: "hop"}
}

// Domains builds all five benchmark domains from one seed.
func Domains(seed int64) []*Domain {
	return []*Domain{
		Sales(seed), Movies(seed + 1), Hospital(seed + 2), Flights(seed + 3), University(seed + 4),
	}
}

// DomainByName returns the named domain from the standard set.
func DomainByName(name string, seed int64) *Domain {
	for _, d := range Domains(seed) {
		if strings.EqualFold(d.Name, name) {
			return d
		}
	}
	return nil
}
