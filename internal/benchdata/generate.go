package benchdata

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"nlidb/internal/dataset"
	"nlidb/internal/nlq"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlparse"
)

// --- schema introspection helpers -----------------------------------------

// identifyingCol returns the table's display column: the first TEXT column.
func identifyingCol(s *sqldata.Schema) string {
	for _, c := range s.Columns {
		if c.Type == sqldata.TypeText {
			return strings.ToLower(c.Name)
		}
	}
	return ""
}

// filterTextCols lists TEXT columns other than the identifying one.
func filterTextCols(s *sqldata.Schema) []string {
	idc := identifyingCol(s)
	var out []string
	for _, c := range s.Columns {
		if c.Type == sqldata.TypeText && !strings.EqualFold(c.Name, idc) {
			out = append(out, strings.ToLower(c.Name))
		}
	}
	return out
}

// numericCols lists numeric columns that are neither keys nor foreign keys.
func numericCols(s *sqldata.Schema) []string {
	fk := map[string]bool{}
	for _, f := range s.ForeignKeys {
		fk[strings.ToLower(f.Column)] = true
	}
	var out []string
	for _, c := range s.Columns {
		if c.Type.Numeric() && !c.PrimaryKey && !fk[strings.ToLower(c.Name)] {
			out = append(out, strings.ToLower(c.Name))
		}
	}
	return out
}

// fkEdge is one foreign key relationship used by templates.
type fkEdge struct {
	child, childCol, parent, parentCol string
}

func edges(db *sqldata.Database) []fkEdge {
	var out []fkEdge
	for _, t := range db.Tables() {
		for _, fk := range t.Schema.ForeignKeys {
			out = append(out, fkEdge{
				child: strings.ToLower(t.Schema.Name), childCol: strings.ToLower(fk.Column),
				parent: strings.ToLower(fk.RefTable), parentCol: strings.ToLower(fk.RefColumn),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].child+out[i].childCol < out[j].child+out[j].childCol
	})
	return out
}

// plural renders a table name as the plural noun used in questions.
func plural(table string) string {
	w := strings.ToLower(table)
	switch {
	case strings.HasSuffix(w, "s"):
		return w
	case strings.HasSuffix(w, "y"):
		return w[:len(w)-1] + "ies"
	case strings.HasSuffix(w, "x") || strings.HasSuffix(w, "ch") || strings.HasSuffix(w, "sh"):
		return w + "es"
	default:
		return w + "s"
	}
}

// threshold picks a mid-range value of a numeric column so comparisons are
// neither empty nor all-rows, rendered as an integer literal.
func threshold(t *sqldata.Table, col string, r *rand.Rand) int64 {
	vals, err := t.ColumnValues(col)
	if err != nil || len(vals) == 0 {
		return 10
	}
	var nums []float64
	for _, v := range vals {
		if !v.Null && v.T.Numeric() {
			nums = append(nums, v.Float())
		}
	}
	if len(nums) == 0 {
		return 10
	}
	sort.Float64s(nums)
	idx := len(nums)*3/10 + r.Intn(len(nums)*4/10+1)
	if idx >= len(nums) {
		idx = len(nums) - 1
	}
	return int64(nums[idx])
}

// randomValue picks a random distinct text value of a column.
func randomValue(t *sqldata.Table, col string, r *rand.Rand) string {
	vals, err := t.DistinctText(col)
	if err != nil || len(vals) == 0 {
		return ""
	}
	return vals[r.Intn(len(vals))]
}

// --- template engine -------------------------------------------------------

var aggWords = []struct {
	word, fn string
}{
	{"average", "AVG"}, {"total", "SUM"}, {"highest", "MAX"}, {"lowest", "MIN"},
}

// GeneratePairs produces n labelled pairs of the requested complexity
// classes over the domain, seeded and deterministic. Classes with no
// applicable template in the domain are skipped.
func (d *Domain) GeneratePairs(n int, seed int64, classes ...nlq.Complexity) []dataset.Pair {
	if len(classes) == 0 {
		classes = []nlq.Complexity{nlq.Simple, nlq.Aggregation, nlq.Join, nlq.Nested}
	}
	r := rand.New(rand.NewSource(seed))
	var out []dataset.Pair
	attempts := 0
	for len(out) < n && attempts < n*30 {
		attempts++
		class := classes[r.Intn(len(classes))]
		q, sql, table := d.realize(class, r)
		if q == "" {
			continue
		}
		stmt, err := sqlparse.Parse(sql)
		if err != nil {
			panic(fmt.Sprintf("benchdata: generated invalid gold SQL %q: %v", sql, err))
		}
		out = append(out, dataset.Pair{
			ID:         fmt.Sprintf("%s-%d", d.Name, len(out)),
			Question:   q,
			SQL:        stmt,
			Table:      table,
			Complexity: class,
		})
	}
	return out
}

// realize instantiates one random template of the class; it returns empty
// strings when the rolled template has no valid ingredients.
func (d *Domain) realize(class nlq.Complexity, r *rand.Rand) (q, sql, table string) {
	switch class {
	case nlq.Simple:
		return d.realizeSimple(r)
	case nlq.Aggregation:
		return d.realizeAggregation(r)
	case nlq.Join:
		return d.realizeJoin(r)
	case nlq.Nested:
		return d.realizeNested(r)
	}
	return "", "", ""
}

// tablesWithText lists tables owning an identifying text column.
func (d *Domain) tablesWithText() []*sqldata.Table {
	var out []*sqldata.Table
	for _, t := range d.DB.Tables() {
		if identifyingCol(t.Schema) != "" {
			out = append(out, t)
		}
	}
	return out
}

func (d *Domain) realizeSimple(r *rand.Rand) (string, string, string) {
	tabs := d.tablesWithText()
	if len(tabs) == 0 {
		return "", "", ""
	}
	t := tabs[r.Intn(len(tabs))]
	name := strings.ToLower(t.Schema.Name)
	idc := identifyingCol(t.Schema)
	switch r.Intn(4) {
	case 3: // S4: two conditions, order randomized in both NL and gold
		fcols := filterTextCols(t.Schema)
		ncols := numericCols(t.Schema)
		if len(fcols) == 0 || len(ncols) == 0 {
			return "", "", ""
		}
		tcol := fcols[r.Intn(len(fcols))]
		ncol := ncols[r.Intn(len(ncols))]
		v := randomValue(t, tcol, r)
		if v == "" {
			return "", "", ""
		}
		n := threshold(t, ncol, r)
		op, phrase := cmpPhrase(r)
		c1 := fmt.Sprintf("%s %s", colPhrase(tcol), v)
		c2 := fmt.Sprintf("%s %s %d", colPhrase(ncol), phrase, n)
		w1 := fmt.Sprintf("%s = '%s'", tcol, escape(v))
		w2 := fmt.Sprintf("%s %s %d", ncol, op, n)
		// Condition order in the question and in the gold SQL are drawn
		// independently, as in WikiSQL: the order of WHERE conditions
		// carries no signal. (This is what the A1 ablation leans on.)
		if r.Intn(2) == 0 {
			c1, c2 = c2, c1
		}
		if r.Intn(2) == 0 {
			w1, w2 = w2, w1
		}
		return fmt.Sprintf("list %s with %s and %s", plural(name), c1, c2),
			fmt.Sprintf("SELECT %s FROM %s WHERE %s AND %s", idc, name, w1, w2), name
	case 0: // S1: attribute of a named entity
		var others []string
		for _, c := range t.Schema.Columns {
			lc := strings.ToLower(c.Name)
			if !c.PrimaryKey && lc != idc && !isFK(t.Schema, lc) {
				others = append(others, lc)
			}
		}
		if len(others) == 0 {
			return "", "", ""
		}
		col := others[r.Intn(len(others))]
		v := randomValue(t, idc, r)
		if v == "" {
			return "", "", ""
		}
		return fmt.Sprintf("what is the %s of the %s %s", colPhrase(col), name, v),
			fmt.Sprintf("SELECT %s FROM %s WHERE %s = '%s'", col, name, idc, escape(v)), name
	case 1: // S2: categorical filter
		fcols := filterTextCols(t.Schema)
		if len(fcols) == 0 {
			return "", "", ""
		}
		col := fcols[r.Intn(len(fcols))]
		v := randomValue(t, col, r)
		if v == "" {
			return "", "", ""
		}
		return fmt.Sprintf("list %s with %s %s", plural(name), colPhrase(col), v),
			fmt.Sprintf("SELECT %s FROM %s WHERE %s = '%s'", idc, name, col, escape(v)), name
	default: // S3: numeric filter
		ncols := numericCols(t.Schema)
		if len(ncols) == 0 {
			return "", "", ""
		}
		col := ncols[r.Intn(len(ncols))]
		n := threshold(t, col, r)
		op, phrase := cmpPhrase(r)
		return fmt.Sprintf("show %s with %s %s %d", plural(name), colPhrase(col), phrase, n),
			fmt.Sprintf("SELECT %s FROM %s WHERE %s %s %d", idc, name, col, op, n), name
	}
}

func (d *Domain) realizeAggregation(r *rand.Rand) (string, string, string) {
	tabs := d.tablesWithText()
	if len(tabs) == 0 {
		return "", "", ""
	}
	t := tabs[r.Intn(len(tabs))]
	name := strings.ToLower(t.Schema.Name)
	idc := identifyingCol(t.Schema)
	ncols := numericCols(t.Schema)
	switch r.Intn(5) {
	case 0: // A1: plain count
		return fmt.Sprintf("how many %s are there", plural(name)),
			fmt.Sprintf("SELECT COUNT(*) FROM %s", name), name
	case 1: // A2: count with numeric filter
		if len(ncols) == 0 {
			return "", "", ""
		}
		col := ncols[r.Intn(len(ncols))]
		n := threshold(t, col, r)
		op, phrase := cmpPhrase(r)
		return fmt.Sprintf("how many %s have %s %s %d", plural(name), colPhrase(col), phrase, n),
			fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE %s %s %d", name, col, op, n), name
	case 2: // A3: global aggregate
		if len(ncols) == 0 {
			return "", "", ""
		}
		col := ncols[r.Intn(len(ncols))]
		a := aggWords[r.Intn(len(aggWords))]
		return fmt.Sprintf("what is the %s %s of %s", a.word, colPhrase(col), plural(name)),
			fmt.Sprintf("SELECT %s(%s) FROM %s", a.fn, col, name), name
	case 3: // A4: group by
		fcols := filterTextCols(t.Schema)
		if len(ncols) == 0 || len(fcols) == 0 {
			return "", "", ""
		}
		col := ncols[r.Intn(len(ncols))]
		g := fcols[r.Intn(len(fcols))]
		a := aggWords[r.Intn(2)] // average / total group naturally
		return fmt.Sprintf("%s %s of %s by %s", a.word, colPhrase(col), plural(name), colPhrase(g)),
			fmt.Sprintf("SELECT %s, %s(%s) FROM %s GROUP BY %s", g, a.fn, col, name, g), name
	default: // A5: top-k
		if len(ncols) == 0 {
			return "", "", ""
		}
		col := ncols[r.Intn(len(ncols))]
		k := r.Intn(4) + 2
		return fmt.Sprintf("top %d %s by %s", k, plural(name), colPhrase(col)),
			fmt.Sprintf("SELECT %s FROM %s ORDER BY %s DESC LIMIT %d", idc, name, col, k), name
	}
}

func (d *Domain) realizeJoin(r *rand.Rand) (string, string, string) {
	es := edges(d.DB)
	if len(es) == 0 {
		return "", "", ""
	}
	e := es[r.Intn(len(es))]
	child := d.DB.Table(e.child)
	parent := d.DB.Table(e.parent)
	cid := identifyingCol(child.Schema)
	pid := identifyingCol(parent.Schema)
	if pid == "" {
		return "", "", ""
	}
	switch r.Intn(3) {
	case 0: // J1: children of a named parent
		if cid == "" {
			return "", "", ""
		}
		v := randomValue(parent, pid, r)
		if v == "" {
			return "", "", ""
		}
		return fmt.Sprintf("%s of the %s %s", plural(e.child), e.parent, v),
			fmt.Sprintf("SELECT %s.%s FROM %s JOIN %s ON %s.%s = %s.%s WHERE %s.%s = '%s'",
				e.child, cid, e.child, e.parent, e.child, e.childCol, e.parent, e.parentCol,
				e.parent, pid, escape(v)), ""
	case 1: // J2: aggregate over children of a named parent
		ncols := numericCols(child.Schema)
		if len(ncols) == 0 {
			return "", "", ""
		}
		col := ncols[r.Intn(len(ncols))]
		v := randomValue(parent, pid, r)
		if v == "" {
			return "", "", ""
		}
		a := aggWords[r.Intn(len(aggWords))]
		return fmt.Sprintf("%s %s of %s of the %s %s", a.word, colPhrase(col), plural(e.child), e.parent, v),
			fmt.Sprintf("SELECT %s(%s.%s) FROM %s JOIN %s ON %s.%s = %s.%s WHERE %s.%s = '%s'",
				a.fn, e.child, col, e.child, e.parent, e.child, e.childCol, e.parent, e.parentCol,
				e.parent, pid, escape(v)), ""
	default: // J3: count of children per parent
		return fmt.Sprintf("count of %s per %s", plural(e.child), e.parent),
			fmt.Sprintf("SELECT %s.%s, COUNT(*) FROM %s JOIN %s ON %s.%s = %s.%s GROUP BY %s.%s",
				e.parent, pid, e.child, e.parent, e.child, e.childCol, e.parent, e.parentCol,
				e.parent, pid), ""
	}
}

func (d *Domain) realizeNested(r *rand.Rand) (string, string, string) {
	switch r.Intn(3) {
	case 0: // N1: above-average
		tabs := d.tablesWithText()
		var cands []*sqldata.Table
		for _, t := range tabs {
			if len(numericCols(t.Schema)) > 0 {
				cands = append(cands, t)
			}
		}
		if len(cands) == 0 {
			return "", "", ""
		}
		t := cands[r.Intn(len(cands))]
		name := strings.ToLower(t.Schema.Name)
		idc := identifyingCol(t.Schema)
		ncols := numericCols(t.Schema)
		col := ncols[r.Intn(len(ncols))]
		return fmt.Sprintf("%s with %s greater than the average %s", plural(name), colPhrase(col), colPhrase(col)),
			fmt.Sprintf("SELECT %s FROM %s WHERE %s > (SELECT AVG(%s) FROM %s)", idc, name, col, col, name), name
	case 1: // N2: parents without children
		es := edges(d.DB)
		if len(es) == 0 {
			return "", "", ""
		}
		e := es[r.Intn(len(es))]
		parent := d.DB.Table(e.parent)
		pid := identifyingCol(parent.Schema)
		if pid == "" {
			return "", "", ""
		}
		childPK := firstColumn(d.DB.Table(e.child).Schema)
		return fmt.Sprintf("%s without %s", plural(e.parent), plural(e.child)),
			fmt.Sprintf("SELECT %s FROM %s WHERE NOT (EXISTS (SELECT %s.%s FROM %s WHERE %s.%s = %s.%s))",
				pid, e.parent, e.child, childPK, e.child, e.child, e.childCol, e.parent, e.parentCol), ""
	default: // N3: parents with more than k children
		es := edges(d.DB)
		if len(es) == 0 {
			return "", "", ""
		}
		e := es[r.Intn(len(es))]
		parent := d.DB.Table(e.parent)
		pid := identifyingCol(parent.Schema)
		if pid == "" {
			return "", "", ""
		}
		k := r.Intn(3) + 1
		childPK := firstColumn(d.DB.Table(e.child).Schema)
		return fmt.Sprintf("%s with more than %d %s", plural(e.parent), k, plural(e.child)),
			fmt.Sprintf("SELECT %s.%s FROM %s JOIN %s ON %s.%s = %s.%s GROUP BY %s.%s HAVING COUNT(%s.%s) > %d",
				e.parent, pid, e.child, e.parent, e.child, e.childCol, e.parent, e.parentCol,
				e.parent, pid, e.child, childPK, k), ""
	}
}

func firstColumn(s *sqldata.Schema) string { return strings.ToLower(s.Columns[0].Name) }

func isFK(s *sqldata.Schema, col string) bool {
	for _, fk := range s.ForeignKeys {
		if strings.EqualFold(fk.Column, col) {
			return true
		}
	}
	return false
}

// colPhrase renders a column identifier as natural words.
func colPhrase(col string) string { return strings.ReplaceAll(col, "_", " ") }

func escape(s string) string { return strings.ReplaceAll(s, "'", "''") }

// cmpPhrase picks a comparison operator with a canonical NL phrasing.
func cmpPhrase(r *rand.Rand) (op, phrase string) {
	switch r.Intn(4) {
	case 0:
		return ">", "over"
	case 1:
		return ">", "greater than"
	case 2:
		return "<", "under"
	default:
		return "<", "below"
	}
}
