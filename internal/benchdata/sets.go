package benchdata

import (
	"fmt"
	"math/rand"
	"strings"

	"nlidb/internal/dataset"
	"nlidb/internal/nlq"
	"nlidb/internal/sqlparse"
)

// WikiSQLStyle generates a single-table corpus over the domain's main
// table: simple selections and single-table aggregations only, mirroring
// the complexity profile of WikiSQL.
func WikiSQLStyle(d *Domain, n int, seed int64) *dataset.Set {
	r := rand.New(rand.NewSource(seed))
	set := &dataset.Set{Name: "wikisql-" + d.Name, DB: d.DB}
	attempts := 0
	for len(set.Pairs) < n && attempts < n*40 {
		attempts++
		class := nlq.Simple
		if r.Intn(3) == 0 { // WikiSQL skews toward selection
			class = nlq.Aggregation
		}
		q, sql, table := d.realize(class, r)
		if q == "" || !strings.EqualFold(table, d.Main) {
			continue
		}
		stmt, err := sqlparse.Parse(sql)
		if err != nil {
			panic(fmt.Sprintf("benchdata: bad gold %q: %v", sql, err))
		}
		if len(stmt.GroupBy) > 0 {
			continue // WikiSQL has no GROUP BY
		}
		set.Pairs = append(set.Pairs, dataset.Pair{
			ID: fmt.Sprintf("w-%s-%d", d.Name, len(set.Pairs)), Question: q,
			SQL: stmt, Table: table, Complexity: class,
		})
	}
	return set
}

// SpiderStyle generates a cross-domain multi-table corpus stratified over
// all four complexity classes, mirroring Spider's design. One Set per
// domain is returned so evaluation can hold domains out.
func SpiderStyle(domains []*Domain, perClassPerDomain int, seed int64) []*dataset.Set {
	var sets []*dataset.Set
	for di, d := range domains {
		set := &dataset.Set{Name: "spider-" + d.Name, DB: d.DB}
		for ci, class := range []nlq.Complexity{nlq.Simple, nlq.Aggregation, nlq.Join, nlq.Nested} {
			pairs := d.GeneratePairs(perClassPerDomain, seed+int64(di*17+ci), class)
			for _, p := range pairs {
				p.ID = fmt.Sprintf("s-%s-%s-%s", d.Name, class, p.ID)
				set.Pairs = append(set.Pairs, p)
			}
		}
		sets = append(sets, set)
	}
	return sets
}

// Merged flattens several sets over distinct databases into one logical
// evaluation list (pairs keep pointers to their own set's database via the
// returned parallel slice).
func Merged(sets []*dataset.Set) ([]dataset.Pair, []*dataset.Set) {
	var pairs []dataset.Pair
	var owner []*dataset.Set
	for _, s := range sets {
		for _, p := range s.Pairs {
			pairs = append(pairs, p)
			owner = append(owner, s)
		}
	}
	return pairs, owner
}
