// Package dataset defines the shared corpus types: a Pair is one natural-
// language question with its gold SQL over a database; a Set is a named
// collection of pairs; a Conversation is an ordered multi-turn sequence in
// the SParC/CoSQL style. Benchmark generators (package benchdata) and the
// synthetic training-data generator (package synth) produce these; the
// evaluation harness (package eval) and the learned parser (package
// mlsql) consume them.
package dataset

import (
	"fmt"

	"nlidb/internal/nlq"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlparse"
)

// Pair is one labelled example.
type Pair struct {
	// ID is unique within its Set.
	ID string
	// Question is the natural-language input.
	Question string
	// SQL is the gold statement.
	SQL *sqlparse.SelectStmt
	// Table optionally names the single table the question targets
	// (WikiSQL-style corpora; empty for cross-table corpora).
	Table string
	// Complexity is the gold query's taxonomy class.
	Complexity nlq.Complexity
}

// Set is a corpus bound to one database.
type Set struct {
	// Name labels the corpus in experiment tables.
	Name string
	// DB is the database all pairs run against.
	DB *sqldata.Database
	// Pairs are the examples.
	Pairs []Pair
}

// ByComplexity buckets the pairs by gold complexity class.
func (s *Set) ByComplexity() map[nlq.Complexity][]Pair {
	out := map[nlq.Complexity][]Pair{}
	for _, p := range s.Pairs {
		out[p.Complexity] = append(out[p.Complexity], p)
	}
	return out
}

// Stats summarizes a corpus for the benchmark-landscape table.
type Stats struct {
	Pairs      int
	Tables     int
	PerClass   map[nlq.Complexity]int
	AvgPerPair float64 // average tables referenced per gold query
}

// ComputeStats derives corpus statistics.
func (s *Set) ComputeStats() Stats {
	st := Stats{Pairs: len(s.Pairs), PerClass: map[nlq.Complexity]int{}}
	if s.DB != nil {
		st.Tables = len(s.DB.Tables())
	}
	var totalTables int
	for _, p := range s.Pairs {
		st.PerClass[p.Complexity]++
		if p.SQL != nil && p.SQL.From != nil {
			totalTables += len(p.SQL.From.Tables())
		}
	}
	if len(s.Pairs) > 0 {
		st.AvgPerPair = float64(totalTables) / float64(len(s.Pairs))
	}
	return st
}

// Turn is one step of a conversation: a possibly context-dependent
// utterance whose gold SQL is the fully resolved query.
type Turn struct {
	// Utterance is what the user says at this turn.
	Utterance string
	// SQL is the gold query after resolving conversational context.
	SQL *sqlparse.SelectStmt
	// Kind labels the follow-up type for the dialogue experiments.
	Kind TurnKind
}

// TurnKind classifies a conversational turn.
type TurnKind int

const (
	// TurnFull is a self-contained question (always the first turn).
	TurnFull TurnKind = iota
	// TurnRefine adds a condition to the previous query ("only those…").
	TurnRefine
	// TurnAggregate re-asks the previous result as an aggregate
	// ("how many are there").
	TurnAggregate
	// TurnShift changes the projection, keeping conditions
	// ("show their salaries instead").
	TurnShift
)

// String names the turn kind.
func (k TurnKind) String() string {
	switch k {
	case TurnFull:
		return "full"
	case TurnRefine:
		return "refine"
	case TurnAggregate:
		return "aggregate"
	case TurnShift:
		return "shift"
	default:
		return fmt.Sprintf("TurnKind(%d)", int(k))
	}
}

// Conversation is an ordered multi-turn exchange over one database.
type Conversation struct {
	ID    string
	Turns []Turn
}

// ConvSet is a conversational corpus (SParC/CoSQL-style).
type ConvSet struct {
	Name          string
	DB            *sqldata.Database
	Conversations []Conversation
}

// TotalTurns counts all turns in the corpus.
func (c *ConvSet) TotalTurns() int {
	n := 0
	for _, conv := range c.Conversations {
		n += len(conv.Turns)
	}
	return n
}
