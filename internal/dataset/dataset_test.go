package dataset

import (
	"testing"

	"nlidb/internal/nlq"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlparse"
)

func TestByComplexityAndStats(t *testing.T) {
	db := sqldata.NewDatabase("d")
	if _, err := db.CreateTable(&sqldata.Schema{Name: "t", Columns: []sqldata.Column{{Name: "a", Type: sqldata.TypeInt}}}); err != nil {
		t.Fatal(err)
	}
	s := &Set{Name: "x", DB: db, Pairs: []Pair{
		{ID: "1", SQL: sqlparse.MustParse("SELECT a FROM t"), Complexity: nlq.Simple},
		{ID: "2", SQL: sqlparse.MustParse("SELECT COUNT(*) FROM t"), Complexity: nlq.Aggregation},
		{ID: "3", SQL: sqlparse.MustParse("SELECT a FROM t WHERE a = 1"), Complexity: nlq.Simple},
	}}
	by := s.ByComplexity()
	if len(by[nlq.Simple]) != 2 || len(by[nlq.Aggregation]) != 1 {
		t.Fatalf("ByComplexity = %v", by)
	}
	st := s.ComputeStats()
	if st.Pairs != 3 || st.Tables != 1 || st.PerClass[nlq.Simple] != 2 || st.AvgPerPair != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTurnKindString(t *testing.T) {
	want := map[TurnKind]string{TurnFull: "full", TurnRefine: "refine", TurnAggregate: "aggregate", TurnShift: "shift"}
	for k, w := range want {
		if k.String() != w {
			t.Errorf("%v.String() = %s", int(k), k.String())
		}
	}
}

func TestConvSetTotalTurns(t *testing.T) {
	cs := &ConvSet{Conversations: []Conversation{
		{ID: "a", Turns: make([]Turn, 3)},
		{ID: "b", Turns: make([]Turn, 4)},
	}}
	if cs.TotalTurns() != 7 {
		t.Fatalf("turns = %d", cs.TotalTurns())
	}
}
