package dialogue

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"nlidb/internal/neural"
	"nlidb/internal/nlp"
	"nlidb/internal/ontology"
	"nlidb/internal/sqldata"
)

// This file implements the ontology-driven conversation bootstrap of
// Quamar et al. (SIGMOD 2020), as presented in §5 of the survey: the
// domain ontology is mapped against expected workload patterns to
// generate the artifacts a conversation platform needs — intents,
// training examples for each intent, and entity value lists — "to
// minimize the required manual labor" of setting up a domain-specific
// conversational interface. A compact neural intent classifier trained on
// the generated examples demonstrates the artifacts are sufficient.

// IntentArtifact is one generated intent with its training utterances.
type IntentArtifact struct {
	// Name follows the pattern family: lookup_<concept>,
	// aggregate_<concept>, relate_<child>_<parent>, refine, count_result.
	Name string
	// Examples are generated training utterances.
	Examples []string
}

// EntityArtifact is one generated entity with its value list.
type EntityArtifact struct {
	// Name is "<concept>_<property>".
	Name string
	// Values are the distinct data values.
	Values []string
}

// Artifacts is the full bootstrap output.
type Artifacts struct {
	Intents  []IntentArtifact
	Entities []EntityArtifact
}

// Bootstrap generates conversation artifacts from a database + ontology.
// Generation is seeded and deterministic.
func Bootstrap(db *sqldata.Database, ont *ontology.Ontology, seed int64) *Artifacts {
	r := rand.New(rand.NewSource(seed))
	a := &Artifacts{}

	for _, c := range ont.Concepts() {
		cname := strings.ToLower(c.Name)
		pl := pluralizeWord(cname)
		tbl := db.Table(c.Table)

		// lookup_<concept>: selection questions.
		lookup := IntentArtifact{Name: "lookup_" + identifier(cname)}
		lookup.Examples = append(lookup.Examples,
			"show "+pl, "list all "+pl, "which "+pl+" are there")
		var textProps, numProps []ontology.Property
		for _, p := range c.Properties {
			if strings.EqualFold(p.Column, "id") {
				continue
			}
			switch {
			case p.Type == sqldata.TypeText:
				textProps = append(textProps, p)
			case p.Type.Numeric():
				numProps = append(numProps, p)
			}
		}
		for _, p := range textProps {
			if tbl == nil {
				continue
			}
			vals, err := tbl.DistinctText(p.Column)
			if err != nil || len(vals) == 0 {
				continue
			}
			v := vals[r.Intn(len(vals))]
			lookup.Examples = append(lookup.Examples,
				fmt.Sprintf("%s with %s %s", pl, p.Name, v),
				fmt.Sprintf("list %s whose %s is %s", pl, p.Name, v))
			a.Entities = append(a.Entities, EntityArtifact{
				Name:   identifier(cname) + "_" + identifier(p.Name),
				Values: vals,
			})
		}
		for _, p := range numProps {
			lookup.Examples = append(lookup.Examples,
				fmt.Sprintf("%s with %s over 100", pl, p.Name),
				fmt.Sprintf("show %s with %s under 50", pl, p.Name))
		}
		a.Intents = append(a.Intents, lookup)

		// aggregate_<concept>: counting and statistics.
		agg := IntentArtifact{Name: "aggregate_" + identifier(cname)}
		agg.Examples = append(agg.Examples,
			"how many "+pl+" are there", "count the "+pl, "number of "+pl)
		for _, p := range numProps {
			agg.Examples = append(agg.Examples,
				fmt.Sprintf("what is the average %s of %s", p.Name, pl),
				fmt.Sprintf("total %s of %s", p.Name, pl),
				fmt.Sprintf("highest %s of %s", p.Name, pl))
		}
		a.Intents = append(a.Intents, agg)
	}

	// relate_<from>_<to>: relationship traversal intents.
	for _, rel := range ont.Relationships {
		from, to := ont.Concept(rel.From), ont.Concept(rel.To)
		if from == nil || to == nil {
			continue
		}
		ri := IntentArtifact{
			Name: fmt.Sprintf("relate_%s_%s", identifier(from.Name), identifier(to.Name)),
		}
		toPl := pluralizeWord(strings.ToLower(to.Name))
		fromPl := pluralizeWord(strings.ToLower(from.Name))
		ri.Examples = append(ri.Examples,
			fmt.Sprintf("%s of the %s", fromPl, strings.ToLower(to.Name)),
			fmt.Sprintf("%s per %s", fromPl, strings.ToLower(to.Name)),
			fmt.Sprintf("%s without %s", toPl, fromPl))
		if tblTo := db.Table(to.Table); tblTo != nil {
			if idp := to.IdentifyingProperty(); idp != nil {
				if vals, err := tblTo.DistinctText(idp.Column); err == nil && len(vals) > 0 {
					v := vals[r.Intn(len(vals))]
					ri.Examples = append(ri.Examples,
						fmt.Sprintf("%s of the %s %s", fromPl, strings.ToLower(to.Name), v))
				}
			}
		}
		a.Intents = append(a.Intents, ri)
	}

	// Context intents shared across domains.
	a.Intents = append(a.Intents,
		IntentArtifact{Name: "refine", Examples: []string{
			"only those with price over 10", "just the big ones",
			"filter to the first kind", "keep the ones with value under 5",
			"restrict to those with size over 3",
		}},
		IntentArtifact{Name: "count_result", Examples: []string{
			"how many are there", "count them", "how many of those",
		}},
	)

	sort.Slice(a.Intents, func(i, j int) bool { return a.Intents[i].Name < a.Intents[j].Name })
	sort.Slice(a.Entities, func(i, j int) bool { return a.Entities[i].Name < a.Entities[j].Name })
	return a
}

func identifier(s string) string {
	return strings.ReplaceAll(strings.ToLower(strings.TrimSpace(s)), " ", "_")
}

func pluralizeWord(w string) string {
	switch {
	case strings.HasSuffix(w, "s"):
		return w
	case strings.HasSuffix(w, "y"):
		return w[:len(w)-1] + "ies"
	default:
		return w + "s"
	}
}

// IntentClassifier is a neural classifier trained on bootstrap artifacts,
// demonstrating Quamar et al.'s point that generated artifacts suffice to
// stand up intent recognition without manual labelling.
type IntentClassifier struct {
	names []string
	mlp   *neural.MLP
}

const intentFeatDim = 160

func intentFeatures(utterance string) []float64 {
	f := make([]float64, intentFeatDim)
	toks := nlp.Tokenize(utterance)
	prev := ""
	for _, t := range toks {
		if t.Kind == nlp.KindPunct {
			continue
		}
		f[hash32("u:"+t.Stem)%intentFeatDim]++
		if prev != "" {
			f[hash32("b:"+prev+"_"+t.Stem)%intentFeatDim]++
		}
		prev = t.Stem
	}
	var norm float64
	for _, v := range f {
		norm += v * v
	}
	if norm > 0 {
		inv := 1 / math.Sqrt(norm)
		for i := range f {
			f[i] *= inv
		}
	}
	return f
}

func hash32(s string) int {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return int(h & 0x7fffffff)
}

// TrainIntentClassifier fits a classifier on the generated artifacts.
func TrainIntentClassifier(a *Artifacts, seed int64) (*IntentClassifier, error) {
	if len(a.Intents) == 0 {
		return nil, fmt.Errorf("dialogue: no intents to train on")
	}
	rng := rand.New(rand.NewSource(seed))
	var xs [][]float64
	var ys []int
	names := make([]string, 0, len(a.Intents))
	for i, in := range a.Intents {
		names = append(names, in.Name)
		for _, ex := range in.Examples {
			xs = append(xs, intentFeatures(ex))
			ys = append(ys, i)
		}
	}
	mlp := neural.NewMLP(rng, intentFeatDim, 32, len(names))
	mlp.Fit(rng, xs, ys, 120, 8, 0.2, 0.9)
	return &IntentClassifier{names: names, mlp: mlp}, nil
}

// Classify returns the most likely intent name with its probability.
func (c *IntentClassifier) Classify(utterance string) (string, float64) {
	probs := c.mlp.Probs(intentFeatures(utterance))
	best, bi := -1.0, 0
	for i, p := range probs {
		if p > best {
			best, bi = p, i
		}
	}
	return c.names[bi], best
}

// Intents lists the classifier's intent names.
func (c *IntentClassifier) Intents() []string { return append([]string(nil), c.names...) }
