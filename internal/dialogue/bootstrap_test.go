package dialogue

import (
	"context"
	"strings"
	"testing"

	"nlidb/internal/athena"
	"nlidb/internal/benchdata"
	"nlidb/internal/lexicon"
	"nlidb/internal/ontology"
)

func artifacts(t testing.TB) (*Artifacts, *benchdata.Domain) {
	t.Helper()
	d := benchdata.Sales(5)
	ont := ontology.FromDatabase(d.DB)
	return Bootstrap(d.DB, ont, 5), d
}

func TestBootstrapGeneratesIntentFamilies(t *testing.T) {
	a, _ := artifacts(t)
	names := map[string]bool{}
	for _, in := range a.Intents {
		names[in.Name] = true
		if len(in.Examples) == 0 {
			t.Errorf("intent %s has no examples", in.Name)
		}
	}
	for _, want := range []string{
		"lookup_customer", "aggregate_customer",
		"lookup_product", "aggregate_orders",
		"relate_orders_customer", "relate_product_category",
		"refine", "count_result",
	} {
		if !names[want] {
			t.Errorf("intent %s missing; have %v", want, keys(names))
		}
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestBootstrapGeneratesEntities(t *testing.T) {
	a, d := artifacts(t)
	var cityEnt *EntityArtifact
	for i := range a.Entities {
		if a.Entities[i].Name == "customer_city" {
			cityEnt = &a.Entities[i]
		}
	}
	if cityEnt == nil {
		t.Fatalf("customer_city entity missing: %+v", a.Entities)
	}
	vals, err := d.DB.Table("customer").DistinctText("city")
	if err != nil || len(cityEnt.Values) != len(vals) {
		t.Errorf("entity values = %d, want %d", len(cityEnt.Values), len(vals))
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	a1, _ := artifacts(t)
	a2, _ := artifacts(t)
	if len(a1.Intents) != len(a2.Intents) {
		t.Fatal("nondeterministic intent count")
	}
	for i := range a1.Intents {
		if strings.Join(a1.Intents[i].Examples, "|") != strings.Join(a2.Intents[i].Examples, "|") {
			t.Fatalf("nondeterministic examples for %s", a1.Intents[i].Name)
		}
	}
}

func TestIntentClassifierLearnsArtifacts(t *testing.T) {
	a, _ := artifacts(t)
	c, err := TrainIntentClassifier(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Held-out phrasings per family (not verbatim training examples).
	cases := []struct {
		utterance string
		want      string // intent prefix
	}{
		{"list the customers", "lookup_customer"},
		{"how many customers are there", "aggregate_customer"},
		{"number of products", "aggregate_product"},
		{"count them", "count_result"},
		{"only those with credit over 900", "refine"},
	}
	correct := 0
	for _, cse := range cases {
		got, p := c.Classify(cse.utterance)
		if strings.HasPrefix(got, cse.want) {
			correct++
		} else {
			t.Logf("Classify(%q) = %s (%.2f), want %s*", cse.utterance, got, p, cse.want)
		}
	}
	if correct < 4 {
		t.Errorf("intent classifier too weak: %d/%d", correct, len(cases))
	}
	if len(c.Intents()) != len(a.Intents) {
		t.Error("Intents() size mismatch")
	}
}

func TestAgentWithIntentModel(t *testing.T) {
	a, d := artifacts(t)
	cls, err := TrainIntentClassifier(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	lex := lexicon.New()
	agent := NewAgent(d.DB, athena.New(d.DB, lex), lex, testExec(d))
	agent.IntentModel = cls
	if _, err := agent.Respond(context.Background(), "show customers with city Berlin"); err != nil {
		t.Fatal(err)
	}
	// A refinement phrased without any rule opener: the statistical
	// classifier must catch it.
	r, err := agent.Respond(context.Background(), "those with credit over 20000")
	if err != nil {
		t.Fatalf("statistical refine failed: %v", err)
	}
	if r.SQL == nil || !containsStr(r.SQL.String(), "credit > 20000") {
		t.Fatalf("refine not applied: %v", r.SQL)
	}
	if !containsStr(r.SQL.String(), "Berlin") {
		t.Fatalf("context lost: %v", r.SQL)
	}
}

func containsStr(s, sub string) bool { return strings.Contains(s, sub) }

func TestTrainIntentClassifierEmpty(t *testing.T) {
	if _, err := TrainIntentClassifier(&Artifacts{}, 1); err == nil {
		t.Fatal("empty artifacts accepted")
	}
}
