package dialogue

import (
	"fmt"
	"hash/fnv"
	"strings"

	"nlidb/internal/invindex"
	"nlidb/internal/lexicon"
	"nlidb/internal/nlp"
	"nlidb/internal/nlq"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlparse"
)

// Context is the persisted conversational state: the resolved query of the
// previous turn and the anchor table it ranges over.
type Context struct {
	// LastSQL is the fully resolved previous query (nil before any turn).
	LastSQL *sqlparse.SelectStmt
	// BeforeAggregate remembers the row-level query that an aggregation
	// turn summarized, so later shifts apply to rows, not the count.
	BeforeAggregate *sqlparse.SelectStmt
	// Anchor is the first FROM table of LastSQL.
	Anchor string
	// Turns counts resolved turns.
	Turns int
	// Pending holds the ranked interpretations of the last full query so
	// an agent can fall back to a lower-ranked hypothesis. Transient —
	// not part of Snapshot.
	Pending []nlq.Interpretation
}

// Fingerprint hashes the context state that determines how an utterance
// resolves: the tracked query and the pre-aggregation query. It is 0 if and
// only if the context is empty (no turn resolved yet), so an empty context
// keys a question exactly like the stateless path. Non-empty contexts force
// the low bit, so a hash that happens to land on 0 can't masquerade as
// "no context".
func (c *Context) Fingerprint() uint64 {
	if c.LastSQL == nil {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(c.LastSQL.String()))
	h.Write([]byte{0})
	if c.BeforeAggregate != nil {
		h.Write([]byte(c.BeforeAggregate.String()))
	}
	return h.Sum64() | 1
}

// Snapshot is the serializable form of a Context: SQL as text, anchors and
// transient hypotheses recomputed/dropped on restore.
type Snapshot struct {
	LastSQL         string `json:"last_sql,omitempty"`
	BeforeAggregate string `json:"before_aggregate,omitempty"`
	Turns           int    `json:"turns"`
}

// Snapshot captures the durable conversational state.
func (c *Context) Snapshot() Snapshot {
	s := Snapshot{Turns: c.Turns}
	if c.LastSQL != nil {
		s.LastSQL = c.LastSQL.String()
	}
	if c.BeforeAggregate != nil {
		s.BeforeAggregate = c.BeforeAggregate.String()
	}
	return s
}

// RestoreContext rebuilds a Context from a Snapshot, reparsing the SQL and
// recomputing the anchor table.
func RestoreContext(s Snapshot) (*Context, error) {
	c := &Context{Turns: s.Turns}
	if s.LastSQL != "" {
		stmt, err := sqlparse.Parse(s.LastSQL)
		if err != nil {
			return nil, fmt.Errorf("dialogue: restore last_sql: %w", err)
		}
		c.LastSQL = stmt
		if stmt.From != nil {
			c.Anchor = strings.ToLower(stmt.From.First.EffName())
		}
	}
	if s.BeforeAggregate != "" {
		stmt, err := sqlparse.Parse(s.BeforeAggregate)
		if err != nil {
			return nil, fmt.Errorf("dialogue: restore before_aggregate: %w", err)
		}
		c.BeforeAggregate = stmt
	}
	return c, nil
}

// Remember records a resolved query as the new context.
func (c *Context) Remember(stmt *sqlparse.SelectStmt) {
	c.LastSQL = stmt
	if stmt != nil && stmt.From != nil {
		c.Anchor = strings.ToLower(stmt.From.First.EffName())
	}
	c.Turns++
}

// Reset clears everything.
func (c *Context) Reset() { *c = Context{} }

// resolver edits the previous query per the follow-up intent — the
// EditSQL idea realized at the AST level instead of token level.
type resolver struct {
	db  *sqldata.Database
	ix  *invindex.Index
	lex *lexicon.Lexicon
}

func newResolver(db *sqldata.Database, lex *lexicon.Lexicon) *resolver {
	return &resolver{db: db, ix: invindex.Build(db, lex), lex: lex}
}

// cloneStmt deep-copies via print/parse.
func cloneStmt(s *sqlparse.SelectStmt) *sqlparse.SelectStmt {
	return sqlparse.MustParse(s.String())
}

// rowContext picks the row-level query to edit: the pre-aggregation query
// when the last turn was an aggregate.
func rowContext(ctx *Context) *sqlparse.SelectStmt {
	if ctx.BeforeAggregate != nil {
		return ctx.BeforeAggregate
	}
	return ctx.LastSQL
}

// refine adds conditions extracted from the utterance to the previous
// query.
func (r *resolver) refine(ctx *Context, utterance string) (*sqlparse.SelectStmt, error) {
	base := rowContext(ctx)
	if base == nil {
		return nil, fmt.Errorf("dialogue: no context to refine")
	}
	a := nlq.Analyze(utterance, r.ix, invindex.DefaultOptions())
	out := cloneStmt(base)
	qualify := len(out.From.Tables()) > 1

	var added []sqlparse.Expr
	for _, cmp := range a.Comparisons {
		t, c := r.resolveColumn(cmp.ColumnHint, ctx.Anchor)
		if c == "" {
			continue
		}
		col := &sqlparse.ColumnRef{Column: c}
		if qualify {
			col.Table = t
		}
		added = append(added, &sqlparse.BinaryExpr{
			Op: cmp.Op, L: col, R: &sqlparse.Literal{Val: numLiteral(cmp.Value)},
		})
	}
	for _, sp := range a.Spans {
		m := sp.Best()
		if m.Kind != invindex.KindValue {
			continue
		}
		col := &sqlparse.ColumnRef{Column: strings.ToLower(m.Column)}
		if qualify {
			col.Table = strings.ToLower(m.Table)
		}
		added = append(added, &sqlparse.BinaryExpr{
			Op: "=", L: col, R: &sqlparse.Literal{Val: sqldata.NewText(m.Value)},
		})
	}
	if len(added) == 0 {
		return nil, fmt.Errorf("dialogue: refinement %q adds no condition", utterance)
	}
	for _, cond := range added {
		if out.Where == nil {
			out.Where = cond
		} else {
			out.Where = &sqlparse.BinaryExpr{Op: "AND", L: out.Where, R: cond}
		}
	}
	return out, nil
}

// aggregate rewrites the previous query as COUNT(*), dropping ordering.
func (r *resolver) aggregate(ctx *Context) (*sqlparse.SelectStmt, error) {
	base := rowContext(ctx)
	if base == nil {
		return nil, fmt.Errorf("dialogue: no context to aggregate")
	}
	out := cloneStmt(base)
	out.Items = []sqlparse.SelectItem{{Expr: &sqlparse.FuncCall{Name: "COUNT", Star: true}}}
	out.OrderBy = nil
	out.Limit = -1
	out.Distinct = false
	return out, nil
}

// shift replaces the projection with the column named in the utterance.
func (r *resolver) shift(ctx *Context, utterance string) (*sqlparse.SelectStmt, error) {
	base := rowContext(ctx)
	if base == nil {
		return nil, fmt.Errorf("dialogue: no context to shift")
	}
	toks := nlp.Tag(nlp.Tokenize(utterance))
	var target string
	var targetTable string
	for _, t := range toks {
		if t.Kind != nlp.KindWord || t.IsStop() || t.Lower == "their" || t.Lower == "instead" {
			continue
		}
		if tt, c := r.resolveColumn(t.Lower, ctx.Anchor); c != "" {
			target, targetTable = c, tt
			break
		}
	}
	if target == "" {
		return nil, fmt.Errorf("dialogue: no column found in %q", utterance)
	}
	out := cloneStmt(base)
	col := &sqlparse.ColumnRef{Column: target}
	if len(out.From.Tables()) > 1 {
		col.Table = targetTable
	}
	out.Items = []sqlparse.SelectItem{{Expr: col}}
	return out, nil
}

// resolveColumn maps a word to a column, preferring the anchor table.
func (r *resolver) resolveColumn(word, anchor string) (string, string) {
	if word == "" {
		return "", ""
	}
	opts := invindex.DefaultOptions()
	opts.KindFilter = []invindex.Kind{invindex.KindColumn}
	ms := r.ix.Lookup(word, opts)
	for _, m := range ms {
		if strings.EqualFold(m.Table, anchor) {
			return strings.ToLower(m.Table), strings.ToLower(m.Column)
		}
	}
	if len(ms) > 0 {
		return strings.ToLower(ms[0].Table), strings.ToLower(ms[0].Column)
	}
	return "", ""
}

func numLiteral(v float64) sqldata.Value {
	if v == float64(int64(v)) {
		return sqldata.NewInt(int64(v))
	}
	return sqldata.NewFloat(v)
}
