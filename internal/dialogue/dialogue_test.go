package dialogue

import (
	"context"
	"testing"

	"nlidb/internal/athena"
	"nlidb/internal/benchdata"
	"nlidb/internal/lexicon"
	"nlidb/internal/nlq"
	"nlidb/internal/resilient"
	"nlidb/internal/sqlexec"
	"nlidb/internal/sqlparse"
)

func TestClassifyIntent(t *testing.T) {
	cases := []struct {
		u      string
		hasCtx bool
		want   Intent
	}{
		{"show customers in Berlin", false, IntentQuery},
		{"show customers in Berlin", true, IntentQuery},
		{"only those with credit over 5000", true, IntentRefine},
		{"just the corporate ones", true, IntentRefine},
		{"how many are there", true, IntentAggregate},
		{"count them", true, IntentAggregate},
		{"how many are there", false, IntentQuery},
		{"show their credit instead", true, IntentShift},
		{"hello", false, IntentGreeting},
		{"reset", true, IntentReset},
	}
	for _, c := range cases {
		if got := ClassifyIntent(c.u, c.hasCtx); got != c.want {
			t.Errorf("ClassifyIntent(%q, ctx=%v) = %v, want %v", c.u, c.hasCtx, got, c.want)
		}
	}
}

// testExec builds the serving-stack executor the managers run through in
// tests: a chain-less gateway over the domain database.
func testExec(d *benchdata.Domain) Executor {
	return resilient.New(d.DB, nil, resilient.Config{NoTrace: true})
}

func managers(t *testing.T) (*FiniteState, *Frame, *Agent, *benchdata.Domain) {
	t.Helper()
	d := benchdata.Sales(60)
	lex := lexicon.New()
	interp := athena.New(d.DB, lex)
	exec := testExec(d)
	return NewFiniteState(interp, exec), NewFrame(d.DB, interp, lex, exec), NewAgent(d.DB, interp, lex, exec), d
}

func TestFiniteStateGrammarGate(t *testing.T) {
	fsm, _, _, _ := managers(t)
	if _, err := fsm.Respond(context.Background(), "show customers with city Berlin"); err != nil {
		t.Fatalf("in-grammar command failed: %v", err)
	}
	if _, err := fsm.Respond(context.Background(), "only those with credit over 5000"); err == nil {
		t.Fatal("finite-state accepted a follow-up")
	}
}

func TestFrameHandlesRefineAndAggregate(t *testing.T) {
	_, frame, _, d := managers(t)
	r1, err := frame.Respond(context.Background(), "show customers with city Berlin")
	if err != nil {
		t.Fatal(err)
	}
	n1 := len(r1.Result.Rows)

	r2, err := frame.Respond(context.Background(), "only those with credit over 20000")
	if err != nil {
		t.Fatalf("frame refine: %v", err)
	}
	if len(r2.Result.Rows) > n1 {
		t.Fatal("refinement grew the result")
	}

	r3, err := frame.Respond(context.Background(), "how many are there")
	if err != nil {
		t.Fatalf("frame aggregate: %v", err)
	}
	if r3.Result.Rows[0][0].Int() != int64(len(r2.Result.Rows)) {
		t.Fatalf("count %v != rows %d", r3.Result.Rows[0][0], len(r2.Result.Rows))
	}
	_ = d
}

func TestFrameRejectsFreeShift(t *testing.T) {
	_, frame, _, _ := managers(t)
	if _, err := frame.Respond(context.Background(), "show customers with city Berlin"); err != nil {
		t.Fatal(err)
	}
	// Canonical pattern works…
	if _, err := frame.Respond(context.Background(), "show their credit instead"); err != nil {
		t.Fatalf("canonical shift failed: %v", err)
	}
	// …free phrasing does not.
	if _, err := frame.Respond(context.Background(), "what about their segment instead"); err == nil {
		t.Fatal("frame accepted free-form shift")
	}
}

func TestAgentFullConversation(t *testing.T) {
	_, _, agent, _ := managers(t)
	r1, err := agent.Respond(context.Background(), "show customers with city Berlin")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := agent.Respond(context.Background(), "only those with credit over 20000")
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Result.Rows) > len(r1.Result.Rows) {
		t.Fatal("refine grew result")
	}
	r3, err := agent.Respond(context.Background(), "how many are there")
	if err != nil {
		t.Fatal(err)
	}
	if r3.Result.Rows[0][0].Int() != int64(len(r2.Result.Rows)) {
		t.Fatal("aggregate inconsistent with refine")
	}
	// Shift after aggregate applies to the rows, not the count.
	r4, err := agent.Respond(context.Background(), "what about their segment instead")
	if err != nil {
		t.Fatalf("agent free shift: %v", err)
	}
	if len(r4.Result.Rows) != len(r2.Result.Rows) {
		t.Fatalf("shift rows = %d, want %d", len(r4.Result.Rows), len(r2.Result.Rows))
	}
}

func TestAgentGreetingAndReset(t *testing.T) {
	_, _, agent, _ := managers(t)
	r, err := agent.Respond(context.Background(), "hello")
	if err != nil || r.SQL != nil {
		t.Fatalf("greeting: %v %v", r, err)
	}
	if _, err := agent.Respond(context.Background(), "show customers with city Berlin"); err != nil {
		t.Fatal(err)
	}
	if _, err := agent.Respond(context.Background(), "reset"); err != nil {
		t.Fatal(err)
	}
	if _, err := agent.Respond(context.Background(), "how many are there"); err == nil {
		// After reset there is no context; "how many are there" becomes a
		// full query that may or may not parse — but must not use stale
		// context. Verify the context is actually empty.
		if agent.ctx.Turns > 1 {
			t.Fatal("reset did not clear context")
		}
	}
}

func TestUserSimValidateAndChoose(t *testing.T) {
	d := benchdata.Sales(60)
	gold := sqlparse.MustParse("SELECT name FROM customer WHERE city = 'Berlin'")
	u, err := NewUserSim(d.DB, gold)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Validate(sqlparse.MustParse("SELECT name FROM customer WHERE city = 'Berlin'")) {
		t.Fatal("gold-equivalent rejected")
	}
	if u.Validate(sqlparse.MustParse("SELECT name FROM customer WHERE city = 'Munich'")) {
		t.Fatal("wrong candidate accepted")
	}
	if u.Interactions != 2 {
		t.Fatalf("interactions = %d", u.Interactions)
	}
}

func TestAgentWithUserSimRecovers(t *testing.T) {
	d := benchdata.Sales(60)
	lex := lexicon.New()
	interp := athena.New(d.DB, lex)
	agent := NewAgent(d.DB, interp, lex, testExec(d))
	gold := sqlparse.MustParse("SELECT name FROM customer WHERE city = 'Berlin'")
	u, err := NewUserSim(d.DB, gold)
	if err != nil {
		t.Fatal(err)
	}
	agent.User = u
	r, err := agent.Respond(context.Background(), "list customers with city Berlin")
	if err != nil {
		t.Fatal(err)
	}
	goldRes, _ := sqlexec.New(d.DB).Run(gold)
	if !r.Result.EqualUnordered(goldRes) {
		t.Fatalf("agent+user missed gold: %s", r.SQL)
	}
}

func TestIntentStrings(t *testing.T) {
	want := map[Intent]string{
		IntentQuery: "query", IntentRefine: "refine", IntentAggregate: "aggregate",
		IntentShift: "shift", IntentGreeting: "greeting", IntentReset: "reset",
	}
	for i, w := range want {
		if i.String() != w {
			t.Errorf("%d.String() = %q", int(i), i.String())
		}
	}
	if Intent(99).String() != "unknown" {
		t.Error("unknown intent string")
	}
}

func TestManagerResets(t *testing.T) {
	fsm, frame, agent, _ := managers(t)
	// Resets must be callable at any time and clear state.
	fsm.Reset()
	if _, err := frame.Respond(context.Background(), "show customers with city Berlin"); err != nil {
		t.Fatal(err)
	}
	frame.Reset()
	if frame.ctx.LastSQL != nil {
		t.Error("frame reset did not clear context")
	}
	if _, err := agent.Respond(context.Background(), "show customers with city Berlin"); err != nil {
		t.Fatal(err)
	}
	agent.Reset()
	if agent.ctx.LastSQL != nil || agent.ctx.Pending != nil {
		t.Error("agent reset did not clear state")
	}
}

func TestUserSimSetGoldAndChoose(t *testing.T) {
	d := benchdata.Sales(60)
	gold1 := sqlparse.MustParse("SELECT name FROM customer WHERE city = 'Berlin'")
	u, err := NewUserSim(d.DB, gold1)
	if err != nil {
		t.Fatal(err)
	}
	candidates := []nlq.Interpretation{
		{SQL: sqlparse.MustParse("SELECT name FROM customer WHERE city = 'Munich'")},
		{SQL: sqlparse.MustParse("SELECT name FROM customer WHERE city = 'Berlin'")},
	}
	if idx := u.Choose(candidates); idx != 1 {
		t.Errorf("Choose = %d, want 1", idx)
	}
	// Repointing the gold flips the choice.
	if err := u.SetGold(sqlparse.MustParse("SELECT name FROM customer WHERE city = 'Munich'")); err != nil {
		t.Fatal(err)
	}
	if idx := u.Choose(candidates); idx != 0 {
		t.Errorf("Choose after SetGold = %d, want 0", idx)
	}
	// No candidate matches → default 0.
	none := []nlq.Interpretation{{SQL: sqlparse.MustParse("SELECT name FROM customer WHERE city = 'Hamburg'")}}
	if idx := u.Choose(none); idx != 0 {
		t.Errorf("Choose fallback = %d", idx)
	}
	if err := u.SetGold(sqlparse.MustParse("SELECT nosuch FROM customer")); err == nil {
		t.Error("SetGold accepted an invalid gold")
	}
}

func TestManagerNames(t *testing.T) {
	fsm, frame, agent, _ := managers(t)
	if fsm.Name() != "finite-state" || frame.Name() != "frame" || agent.Name() != "agent" {
		t.Error("manager names wrong")
	}
}
