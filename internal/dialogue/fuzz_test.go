package dialogue

import (
	"context"
	"testing"

	"nlidb/internal/athena"
	"nlidb/internal/benchdata"
	"nlidb/internal/lexicon"
)

// FuzzFollowUp throws arbitrary utterances at an agent that already holds
// dialogue context. The resolver paths (refine/aggregate/shift) do string
// surgery on user text against the previous SQL, which is exactly the
// kind of code fuzzing breaks; the invariants are no panic, and a
// response that names SQL also carries its result.
//
// The seed corpus doubles as the crasher regression suite: inputs that
// stress the follow-up grammar's edges (empty refinements, operators with
// no operand, unicode case folding, quotes, token-boundary abuse) stay
// checked on every ordinary `go test` run.
func FuzzFollowUp(f *testing.F) {
	for _, seed := range []string{
		"only those with credit over 20000",
		"only those",
		"only those with over",
		"only those with credit over",
		"just the corporate ones",
		"how many are there",
		"count them",
		"show their credit instead",
		"show their",
		"what about their segment instead",
		"only those with credit over 20000 and city Berlin",
		"only those with \"city\" 'Berlin'",
		"ONLY THOSE WITH CREDIT OVER 20000",
		"only those with İstanbul",
		"only  those\twith credit\nover 20000",
		"",
		" ",
		"only",
		"reset",
		"hello",
		"only those with credit over 99999999999999999999999999",
		"only those with credit over -1",
		"only those with credit over 2.5.3",
		"show their credit instead; drop table customer",
	} {
		f.Add(seed)
	}

	d := benchdata.Sales(60)
	lex := lexicon.New()
	interp := athena.New(d.DB, lex)
	agent := NewAgent(d.DB, interp, lex, testExec(d))

	f.Fuzz(func(t *testing.T, utterance string) {
		// Fresh context with one prior turn, so follow-up intents engage.
		conv := &Context{}
		if _, err := agent.RespondWith(context.Background(), conv, "show customers with city Berlin"); err != nil {
			t.Skip("context-establishing turn failed; domain unusable")
		}
		r, err := agent.RespondWith(context.Background(), conv, utterance)
		if r == nil {
			t.Fatalf("nil response for %q (err %v)", utterance, err)
		}
		if err == nil && r.SQL != nil && r.Result == nil {
			t.Fatalf("response names SQL without a result for %q", utterance)
		}
	})
}
