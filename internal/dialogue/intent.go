// Package dialogue implements the tutorial's Section 5: the extension of
// one-shot natural-language querying to a two-way conversation. It
// provides intent classification, conversational context with follow-up
// resolution (refinement, aggregation, projection shift — resolved by
// EditSQL-style editing of the previous query), three dialogue-manager
// families (finite-state, frame-based, agent-based) with the increasing
// flexibility the tutorial describes, and a simulated user that answers
// clarification and validation questions from gold queries (the DialSQL
// mechanism).
package dialogue

import (
	"strings"

	"nlidb/internal/nlp"
)

// Intent is the goal expressed by a conversational utterance.
type Intent int

const (
	// IntentQuery is a self-contained data question.
	IntentQuery Intent = iota
	// IntentRefine narrows the previous result ("only those with …").
	IntentRefine
	// IntentAggregate re-asks the previous result as an aggregate
	// ("how many are there").
	IntentAggregate
	// IntentShift changes the projection keeping conditions
	// ("show their salaries instead").
	IntentShift
	// IntentGreeting is small talk.
	IntentGreeting
	// IntentReset clears the conversational context.
	IntentReset
)

// String names the intent.
func (i Intent) String() string {
	switch i {
	case IntentQuery:
		return "query"
	case IntentRefine:
		return "refine"
	case IntentAggregate:
		return "aggregate"
	case IntentShift:
		return "shift"
	case IntentGreeting:
		return "greeting"
	case IntentReset:
		return "reset"
	default:
		return "unknown"
	}
}

// refineOpeners start refinement follow-ups.
var refineOpeners = []string{
	"only", "just", "filter", "among those", "of those", "from those",
	"keep", "restrict", "narrow",
}

// ClassifyIntent labels an utterance given whether context exists. It is
// deliberately rule-based: the experiments contrast manager families, not
// intent classifiers, so all managers share it.
func ClassifyIntent(utterance string, hasContext bool) Intent {
	u := strings.ToLower(strings.TrimSpace(utterance))
	switch {
	case u == "hi" || u == "hello" || u == "hey" || strings.HasPrefix(u, "thank"):
		return IntentGreeting
	case u == "reset" || u == "start over" || u == "new question" || u == "clear":
		return IntentReset
	}
	if !hasContext {
		return IntentQuery
	}
	for _, o := range refineOpeners {
		if strings.HasPrefix(u, o+" ") || u == o {
			return IntentRefine
		}
	}
	toks := nlp.Tag(nlp.Tokenize(u))
	// "how many are there", "count them", "how many of those".
	if len(toks) <= 6 {
		hasCount := false
		hasAnaphor := false
		for i, t := range toks {
			if t.Lower == "count" || (t.Lower == "how" && i+1 < len(toks) && toks[i+1].Lower == "many") {
				hasCount = true
			}
			switch t.Lower {
			case "there", "them", "those", "these", "that":
				hasAnaphor = true
			}
		}
		if hasCount && (hasAnaphor || len(toks) <= 3) {
			return IntentAggregate
		}
	}
	// "show their X", "what about their X", "… instead".
	for _, t := range toks {
		if t.Lower == "their" || t.Lower == "instead" {
			return IntentShift
		}
	}
	return IntentQuery
}
