package dialogue

import (
	"fmt"
	"strings"

	"nlidb/internal/lexicon"
	"nlidb/internal/nlq"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlexec"
	"nlidb/internal/sqlparse"
)

// Response is what a dialogue manager returns for one utterance.
type Response struct {
	// SQL is the resolved query (nil for greetings/errors).
	SQL *sqlparse.SelectStmt
	// Result is the executed answer (nil when SQL is nil).
	Result *sqldata.Result
	// Message is the conversational reply.
	Message string
	// Clarification, when non-nil, asks the user to choose a reading.
	Clarification *nlq.Clarification
}

// Manager is a dialogue manager bound to one database.
type Manager interface {
	// Name identifies the family in experiment tables.
	Name() string
	// Respond processes one utterance in conversation order.
	Respond(utterance string) (*Response, error)
	// Reset clears conversational state between conversations.
	Reset()
}

// --- finite-state manager ---------------------------------------------------

// FiniteState is the rule-based family: a fixed command grammar, no
// conversational context. Follow-ups fail; inputs outside the patterns are
// rejected — "restricting user input to predetermined words and phrases".
type FiniteState struct {
	interp nlq.Interpreter
	eng    *sqlexec.Engine
}

// NewFiniteState builds the manager over an interpreter.
func NewFiniteState(db *sqldata.Database, interp nlq.Interpreter) *FiniteState {
	return &FiniteState{interp: interp, eng: sqlexec.New(db)}
}

// Name implements Manager.
func (f *FiniteState) Name() string { return "finite-state" }

// Reset implements Manager (stateless).
func (f *FiniteState) Reset() {}

// commandOpeners is the rigid grammar gate.
var commandOpeners = []string{
	"show", "list", "what", "which", "how", "count", "find", "display",
	"give", "top", "total", "average", "sum", "number", "who",
}

// Respond accepts only utterances matching the command grammar and treats
// each independently.
func (f *FiniteState) Respond(utterance string) (*Response, error) {
	u := strings.ToLower(strings.TrimSpace(utterance))
	ok := false
	for _, c := range commandOpeners {
		if strings.HasPrefix(u, c+" ") || u == c {
			ok = true
			break
		}
	}
	if !ok {
		return &Response{Message: "Please phrase your request as a command, e.g. \"show …\" or \"how many …\"."},
			fmt.Errorf("dialogue: utterance outside the finite-state grammar")
	}
	ins, err := f.interp.Interpret(utterance)
	if err != nil {
		return &Response{Message: "I could not understand that command."}, err
	}
	best, _ := nlq.Best(ins)
	res, err := f.eng.Run(best.SQL)
	if err != nil {
		return &Response{Message: "That command failed to execute."}, err
	}
	return &Response{SQL: best.SQL, Result: res, Message: fmt.Sprintf("%d row(s).", len(res.Rows))}, nil
}

// --- frame-based manager ----------------------------------------------------

// Frame is the frame/slot family: it tracks context as a frame (the
// previous query) and fills slots from follow-ups, but only recognizes
// follow-ups phrased with its slot patterns (the refine openers and the
// canonical aggregate/shift forms).
type Frame struct {
	interp nlq.Interpreter
	eng    *sqlexec.Engine
	res    *resolver
	ctx    Context
}

// NewFrame builds the manager.
func NewFrame(db *sqldata.Database, interp nlq.Interpreter, lex *lexicon.Lexicon) *Frame {
	return &Frame{interp: interp, eng: sqlexec.New(db), res: newResolver(db, lex)}
}

// Name implements Manager.
func (f *Frame) Name() string { return "frame" }

// Reset implements Manager.
func (f *Frame) Reset() { f.ctx.Reset() }

// Respond fills frame slots; unrecognized follow-up phrasings are asked
// back to the user instead of being guessed.
func (f *Frame) Respond(utterance string) (*Response, error) {
	intent := ClassifyIntent(utterance, f.ctx.LastSQL != nil)
	switch intent {
	case IntentGreeting:
		return &Response{Message: "Hello! Ask me about the data."}, nil
	case IntentReset:
		f.ctx.Reset()
		return &Response{Message: "Context cleared."}, nil
	case IntentRefine:
		// The frame requires the canonical "only …" slot phrasing, which
		// ClassifyIntent guarantees; anything its resolver cannot slot is
		// re-asked.
		stmt, err := f.res.refine(&f.ctx, utterance)
		if err != nil {
			return &Response{Message: "Which attribute should I filter by?"}, err
		}
		return f.finish(stmt, false)
	case IntentAggregate:
		stmt, err := f.res.aggregate(&f.ctx)
		if err != nil {
			return &Response{Message: "There is nothing to count yet."}, err
		}
		return f.finish(stmt, true)
	case IntentShift:
		// Frame-based systems track a projection slot only for the exact
		// "show their X" pattern.
		if !strings.HasPrefix(strings.ToLower(strings.TrimSpace(utterance)), "show their ") {
			return &Response{Message: "Which attribute would you like to see?"},
				fmt.Errorf("dialogue: shift outside frame patterns")
		}
		stmt, err := f.res.shift(&f.ctx, utterance)
		if err != nil {
			return &Response{Message: "Which attribute would you like to see?"}, err
		}
		return f.finish(stmt, false)
	default:
		ins, err := f.interp.Interpret(utterance)
		if err != nil {
			return &Response{Message: "I could not understand; try naming the data you need."}, err
		}
		best, _ := nlq.Best(ins)
		return f.finish(best.SQL, false)
	}
}

func (f *Frame) finish(stmt *sqlparse.SelectStmt, wasAggregate bool) (*Response, error) {
	res, err := f.eng.Run(stmt)
	if err != nil {
		return &Response{Message: "That request failed to execute."}, err
	}
	if wasAggregate {
		f.ctx.BeforeAggregate = rowContext(&f.ctx)
	} else {
		f.ctx.BeforeAggregate = nil
	}
	f.ctx.Remember(stmt)
	return &Response{SQL: stmt, Result: res, Message: fmt.Sprintf("%d row(s).", len(res.Rows))}, nil
}

// --- agent-based manager ------------------------------------------------------

// Agent is the most flexible family: full context persistence, flexible
// follow-up phrasing, ranked-hypothesis recovery, and DialSQL-style
// validation against a user (simulated in experiments). "Agent-based
// systems are able to manage complex dialogues, where the user can
// initiate and lead the conversation."
type Agent struct {
	interp nlq.Interpreter
	eng    *sqlexec.Engine
	res    *resolver
	ctx    Context
	// User, when non-nil, answers validation questions (DialSQL).
	User *UserSim
	// IntentModel, when non-nil, augments the rule-based intent
	// classifier with the statistical one trained on ontology-generated
	// artifacts (Quamar et al.) — "agent-based methods … are typically
	// statistical models trained on corpora".
	IntentModel *IntentClassifier
	// pending holds lower-ranked hypotheses for feedback recovery.
	pending []nlq.Interpretation
}

// NewAgent builds the manager.
func NewAgent(db *sqldata.Database, interp nlq.Interpreter, lex *lexicon.Lexicon) *Agent {
	return &Agent{interp: interp, eng: sqlexec.New(db), res: newResolver(db, lex)}
}

// Name implements Manager.
func (a *Agent) Name() string { return "agent" }

// Reset implements Manager.
func (a *Agent) Reset() {
	a.ctx.Reset()
	a.pending = nil
}

// Respond resolves the utterance flexibly: follow-up intents edit the
// context query (with free phrasing); full queries go through the
// interpreter; when a simulated user is attached, candidate queries are
// validated and lower-ranked hypotheses retried (DialSQL).
func (a *Agent) Respond(utterance string) (*Response, error) {
	intent := ClassifyIntent(utterance, a.ctx.LastSQL != nil)
	// The statistical classifier can upgrade a generic "query" reading to
	// a context intent the rule patterns missed — never the reverse.
	if a.IntentModel != nil && intent == IntentQuery && a.ctx.LastSQL != nil {
		name, p := a.IntentModel.Classify(utterance)
		if p >= 0.6 {
			switch name {
			case "refine":
				intent = IntentRefine
			case "count_result":
				intent = IntentAggregate
			}
		}
	}
	switch intent {
	case IntentGreeting:
		return &Response{Message: "Hi! What would you like to explore?"}, nil
	case IntentReset:
		a.Reset()
		return &Response{Message: "Starting fresh."}, nil
	case IntentRefine:
		stmt, err := a.res.refine(&a.ctx, utterance)
		if err != nil {
			return &Response{Message: "I could not find that filter; can you name the attribute?"}, err
		}
		return a.finish(stmt, false)
	case IntentAggregate:
		stmt, err := a.res.aggregate(&a.ctx)
		if err != nil {
			return &Response{Message: "There is nothing to count yet."}, err
		}
		return a.finish(stmt, true)
	case IntentShift:
		stmt, err := a.res.shift(&a.ctx, utterance)
		if err != nil {
			return &Response{Message: "Which attribute should I show?"}, err
		}
		return a.finish(stmt, false)
	}

	ins, err := a.interp.Interpret(utterance)
	if err != nil {
		// Agent flexibility: an unparseable utterance with context is
		// retried as a refinement before giving up.
		if a.ctx.LastSQL != nil {
			if stmt, rerr := a.res.refine(&a.ctx, utterance); rerr == nil {
				return a.finish(stmt, false)
			}
		}
		return &Response{Message: "I could not map that to the data."}, err
	}

	// DialSQL-style validation loop over ranked hypotheses.
	if a.User != nil {
		for i, cand := range ins {
			if i >= 3 {
				break
			}
			if a.User.Validate(cand.SQL) {
				return a.finish(cand.SQL, false)
			}
		}
	}
	best, _ := nlq.Best(ins)
	a.pending = ins
	return a.finish(best.SQL, false)
}

func (a *Agent) finish(stmt *sqlparse.SelectStmt, wasAggregate bool) (*Response, error) {
	res, err := a.eng.Run(stmt)
	if err != nil {
		return &Response{Message: "That failed to execute."}, err
	}
	if wasAggregate {
		a.ctx.BeforeAggregate = rowContext(&a.ctx)
	} else {
		a.ctx.BeforeAggregate = nil
	}
	a.ctx.Remember(stmt)
	return &Response{SQL: stmt, Result: res, Message: fmt.Sprintf("%d row(s).", len(res.Rows))}, nil
}
