package dialogue

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"nlidb/internal/lexicon"
	"nlidb/internal/nlq"
	"nlidb/internal/resilient"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlparse"
)

// Executor runs a resolved SQL statement through the serving stack. In
// production it is a *resilient.Gateway (or the shard coordinator when the
// data is partitioned), so conversational turns get the same plan cache,
// resource budgets, deadlines, fault isolation, and trace spans as every
// stateless question — the dialogue layer owns *resolution*, never
// execution. Implementations must be safe for concurrent use.
type Executor interface {
	AskSQL(ctx context.Context, sql string) (*resilient.Answer, error)
}

// Response is what a dialogue manager returns for one utterance.
type Response struct {
	// SQL is the resolved query (nil for greetings/errors).
	SQL *sqlparse.SelectStmt
	// Result is the executed answer (nil when SQL is nil).
	Result *sqldata.Result
	// Message is the conversational reply.
	Message string
	// Clarification, when non-nil, asks the user to choose a reading.
	Clarification *nlq.Clarification
	// Answer is the serving-stack answer behind Result (nil when SQL is
	// nil): engine provenance, usage meters, and the turn's trace.
	Answer *resilient.Answer
}

// Manager is a dialogue manager bound to one database.
//
// Goroutine-safety contract: Respond serializes turns internally — the
// manager's own conversational context is mutated under a lock, so
// concurrent Respond calls interleave as whole turns, never mid-turn.
// For one conversation per caller (a session store holding many live
// conversations over one shared manager), use the ContextResponder form,
// which keeps all per-conversation state in the caller's *Context.
type Manager interface {
	// Name identifies the family in experiment tables.
	Name() string
	// Respond processes one utterance in conversation order. The context
	// cancels mid-turn work: a caller that goes away stops the underlying
	// execution instead of burning budget on an unwanted answer.
	Respond(ctx context.Context, utterance string) (*Response, error)
	// Reset clears conversational state between conversations.
	Reset()
}

// ContextResponder is the session-serving form of a dialogue manager: all
// per-conversation state lives in the caller-owned *Context, so one shared
// manager (its resolver indexes are immutable after construction) serves
// any number of live conversations concurrently, as long as each Context
// is touched by one turn at a time.
type ContextResponder interface {
	RespondWith(ctx context.Context, conv *Context, utterance string) (*Response, error)
}

// finishTurn executes a resolved statement through the serving stack and
// advances the conversational context. Shared by the frame and agent
// families (and by any future manager): the statement executes with plans,
// budgets, and traces exactly like a stateless question.
func finishTurn(ctx context.Context, exec Executor, conv *Context, stmt *sqlparse.SelectStmt, wasAggregate bool) (*Response, error) {
	ans, err := exec.AskSQL(ctx, stmt.String())
	if err != nil {
		return &Response{Message: "That request failed to execute."}, err
	}
	if wasAggregate {
		conv.BeforeAggregate = rowContext(conv)
	} else {
		conv.BeforeAggregate = nil
	}
	conv.Remember(ans.SQL)
	return &Response{
		SQL: ans.SQL, Result: ans.Result, Answer: ans,
		Message: fmt.Sprintf("%d row(s).", len(ans.Result.Rows)),
	}, nil
}

// --- finite-state manager ---------------------------------------------------

// FiniteState is the rule-based family: a fixed command grammar, no
// conversational context. Follow-ups fail; inputs outside the patterns are
// rejected — "restricting user input to predetermined words and phrases".
type FiniteState struct {
	interp nlq.Interpreter
	exec   Executor
}

// NewFiniteState builds the manager over an interpreter and an executor.
func NewFiniteState(interp nlq.Interpreter, exec Executor) *FiniteState {
	return &FiniteState{interp: interp, exec: exec}
}

// Name implements Manager.
func (f *FiniteState) Name() string { return "finite-state" }

// Reset implements Manager (stateless).
func (f *FiniteState) Reset() {}

// commandOpeners is the rigid grammar gate.
var commandOpeners = []string{
	"show", "list", "what", "which", "how", "count", "find", "display",
	"give", "top", "total", "average", "sum", "number", "who",
}

// Respond accepts only utterances matching the command grammar and treats
// each independently.
func (f *FiniteState) Respond(ctx context.Context, utterance string) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return &Response{Message: "The request was cancelled."}, err
	}
	u := strings.ToLower(strings.TrimSpace(utterance))
	ok := false
	for _, c := range commandOpeners {
		if strings.HasPrefix(u, c+" ") || u == c {
			ok = true
			break
		}
	}
	if !ok {
		return &Response{Message: "Please phrase your request as a command, e.g. \"show …\" or \"how many …\"."},
			fmt.Errorf("dialogue: utterance outside the finite-state grammar")
	}
	ins, err := f.interp.Interpret(utterance)
	if err != nil {
		return &Response{Message: "I could not understand that command."}, err
	}
	best, _ := nlq.Best(ins)
	ans, err := f.exec.AskSQL(ctx, best.SQL.String())
	if err != nil {
		return &Response{Message: "That command failed to execute."}, err
	}
	return &Response{
		SQL: ans.SQL, Result: ans.Result, Answer: ans,
		Message: fmt.Sprintf("%d row(s).", len(ans.Result.Rows)),
	}, nil
}

// --- frame-based manager ----------------------------------------------------

// Frame is the frame/slot family: it tracks context as a frame (the
// previous query) and fills slots from follow-ups, but only recognizes
// follow-ups phrased with its slot patterns (the refine openers and the
// canonical aggregate/shift forms).
type Frame struct {
	interp nlq.Interpreter
	exec   Executor
	res    *resolver

	mu  sync.Mutex
	ctx Context
}

// NewFrame builds the manager. The resolver index over db is immutable
// after construction, so one Frame may serve concurrent conversations via
// RespondWith.
func NewFrame(db *sqldata.Database, interp nlq.Interpreter, lex *lexicon.Lexicon, exec Executor) *Frame {
	return &Frame{interp: interp, exec: exec, res: newResolver(db, lex)}
}

// Name implements Manager.
func (f *Frame) Name() string { return "frame" }

// Reset implements Manager.
func (f *Frame) Reset() {
	f.mu.Lock()
	f.ctx.Reset()
	f.mu.Unlock()
}

// Respond fills frame slots against the manager's own conversation.
func (f *Frame) Respond(ctx context.Context, utterance string) (*Response, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.RespondWith(ctx, &f.ctx, utterance)
}

// RespondWith implements ContextResponder: the turn resolves and advances
// the caller-owned conversation. Unrecognized follow-up phrasings are
// asked back to the user instead of being guessed.
func (f *Frame) RespondWith(ctx context.Context, conv *Context, utterance string) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return &Response{Message: "The request was cancelled."}, err
	}
	intent := ClassifyIntent(utterance, conv.LastSQL != nil)
	switch intent {
	case IntentGreeting:
		return &Response{Message: "Hello! Ask me about the data."}, nil
	case IntentReset:
		conv.Reset()
		return &Response{Message: "Context cleared."}, nil
	case IntentRefine:
		// The frame requires the canonical "only …" slot phrasing, which
		// ClassifyIntent guarantees; anything its resolver cannot slot is
		// re-asked.
		stmt, err := f.res.refine(conv, utterance)
		if err != nil {
			return &Response{Message: "Which attribute should I filter by?"}, err
		}
		return finishTurn(ctx, f.exec, conv, stmt, false)
	case IntentAggregate:
		stmt, err := f.res.aggregate(conv)
		if err != nil {
			return &Response{Message: "There is nothing to count yet."}, err
		}
		return finishTurn(ctx, f.exec, conv, stmt, true)
	case IntentShift:
		// Frame-based systems track a projection slot only for the exact
		// "show their X" pattern.
		if !strings.HasPrefix(strings.ToLower(strings.TrimSpace(utterance)), "show their ") {
			return &Response{Message: "Which attribute would you like to see?"},
				fmt.Errorf("dialogue: shift outside frame patterns")
		}
		stmt, err := f.res.shift(conv, utterance)
		if err != nil {
			return &Response{Message: "Which attribute would you like to see?"}, err
		}
		return finishTurn(ctx, f.exec, conv, stmt, false)
	default:
		ins, err := f.interp.Interpret(utterance)
		if err != nil {
			return &Response{Message: "I could not understand; try naming the data you need."}, err
		}
		best, _ := nlq.Best(ins)
		return finishTurn(ctx, f.exec, conv, best.SQL, false)
	}
}

// --- agent-based manager ------------------------------------------------------

// Agent is the most flexible family: full context persistence, flexible
// follow-up phrasing, ranked-hypothesis recovery, and DialSQL-style
// validation against a user (simulated in experiments). "Agent-based
// systems are able to manage complex dialogues, where the user can
// initiate and lead the conversation."
type Agent struct {
	interp nlq.Interpreter
	exec   Executor
	res    *resolver
	// User, when non-nil, answers validation questions (DialSQL).
	User *UserSim
	// IntentModel, when non-nil, augments the rule-based intent
	// classifier with the statistical one trained on ontology-generated
	// artifacts (Quamar et al.) — "agent-based methods … are typically
	// statistical models trained on corpora".
	IntentModel *IntentClassifier

	mu  sync.Mutex
	ctx Context
}

// NewAgent builds the manager. The resolver index over db is immutable
// after construction, so one Agent may serve concurrent conversations via
// RespondWith.
func NewAgent(db *sqldata.Database, interp nlq.Interpreter, lex *lexicon.Lexicon, exec Executor) *Agent {
	return &Agent{interp: interp, exec: exec, res: newResolver(db, lex)}
}

// Name implements Manager.
func (a *Agent) Name() string { return "agent" }

// Reset implements Manager.
func (a *Agent) Reset() {
	a.mu.Lock()
	a.ctx.Reset()
	a.mu.Unlock()
}

// Respond resolves one turn of the manager's own conversation.
func (a *Agent) Respond(ctx context.Context, utterance string) (*Response, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.RespondWith(ctx, &a.ctx, utterance)
}

// RespondWith implements ContextResponder: the utterance resolves against
// the caller-owned conversation — follow-up intents edit the context query
// (with free phrasing); full queries go through the interpreter; when a
// simulated user is attached, candidate queries are validated and
// lower-ranked hypotheses retried (DialSQL).
func (a *Agent) RespondWith(ctx context.Context, conv *Context, utterance string) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return &Response{Message: "The request was cancelled."}, err
	}
	intent := ClassifyIntent(utterance, conv.LastSQL != nil)
	// The statistical classifier can upgrade a generic "query" reading to
	// a context intent the rule patterns missed — never the reverse.
	if a.IntentModel != nil && intent == IntentQuery && conv.LastSQL != nil {
		name, p := a.IntentModel.Classify(utterance)
		if p >= 0.6 {
			switch name {
			case "refine":
				intent = IntentRefine
			case "count_result":
				intent = IntentAggregate
			}
		}
	}
	switch intent {
	case IntentGreeting:
		return &Response{Message: "Hi! What would you like to explore?"}, nil
	case IntentReset:
		conv.Reset()
		return &Response{Message: "Starting fresh."}, nil
	case IntentRefine:
		stmt, err := a.res.refine(conv, utterance)
		if err != nil {
			return &Response{Message: "I could not find that filter; can you name the attribute?"}, err
		}
		return finishTurn(ctx, a.exec, conv, stmt, false)
	case IntentAggregate:
		stmt, err := a.res.aggregate(conv)
		if err != nil {
			return &Response{Message: "There is nothing to count yet."}, err
		}
		return finishTurn(ctx, a.exec, conv, stmt, true)
	case IntentShift:
		stmt, err := a.res.shift(conv, utterance)
		if err != nil {
			return &Response{Message: "Which attribute should I show?"}, err
		}
		return finishTurn(ctx, a.exec, conv, stmt, false)
	}

	ins, err := a.interp.Interpret(utterance)
	if err != nil {
		// Agent flexibility: an unparseable utterance with context is
		// retried as a refinement before giving up.
		if conv.LastSQL != nil {
			if stmt, rerr := a.res.refine(conv, utterance); rerr == nil {
				return finishTurn(ctx, a.exec, conv, stmt, false)
			}
		}
		return &Response{Message: "I could not map that to the data."}, err
	}

	// DialSQL-style validation loop over ranked hypotheses.
	if a.User != nil {
		for i, cand := range ins {
			if i >= 3 {
				break
			}
			if a.User.Validate(cand.SQL) {
				return finishTurn(ctx, a.exec, conv, cand.SQL, false)
			}
		}
	}
	best, _ := nlq.Best(ins)
	conv.Pending = ins
	return finishTurn(ctx, a.exec, conv, best.SQL, false)
}
