package dialogue

import (
	"context"
	"errors"
	"sync"
	"testing"

	"nlidb/internal/athena"
	"nlidb/internal/benchdata"
	"nlidb/internal/lexicon"
	"nlidb/internal/qcache"
	"nlidb/internal/resilient"
)

// selfCancelExec cancels the turn's context the moment execution starts,
// simulating a caller that goes away while the statement runs.
type selfCancelExec struct {
	cancel context.CancelFunc
}

func (e selfCancelExec) AskSQL(ctx context.Context, sql string) (*resilient.Answer, error) {
	e.cancel()
	<-ctx.Done()
	return nil, ctx.Err()
}

func TestRespondCancelledBeforeTurn(t *testing.T) {
	_, _, agent, _ := managers(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := agent.Respond(ctx, "show customers with city Berlin")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if r == nil || r.Message == "" {
		t.Fatal("cancellation must still carry a conversational message")
	}
	if agent.ctx.LastSQL != nil || agent.ctx.Turns != 0 {
		t.Fatal("cancelled turn advanced the conversation")
	}
}

// TestRespondCancelledMidTurn is the regression test for cancellation
// arriving while the resolved statement is executing: the turn must
// return the cancellation error and leave the conversational context
// exactly as it was — a half-applied turn would poison every follow-up.
func TestRespondCancelledMidTurn(t *testing.T) {
	d := benchdata.Sales(60)
	lex := lexicon.New()
	interp := athena.New(d.DB, lex)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	agent := NewAgent(d.DB, interp, lex, selfCancelExec{cancel: cancel})

	r, err := agent.Respond(ctx, "show customers with city Berlin")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if r == nil || r.SQL != nil || r.Result != nil {
		t.Fatalf("cancelled turn leaked a result: %+v", r)
	}
	if agent.ctx.LastSQL != nil || agent.ctx.Turns != 0 {
		t.Fatal("mid-turn cancellation advanced the conversation")
	}
}

// TestFollowUpHitsPlanCache pins the point of executing dialogue turns
// through the gateway instead of a private engine: a follow-up whose
// resolved SQL was planned before reuses the shared physical-plan cache,
// visible as the plan_cache=hit attribute on the turn's plan span.
func TestFollowUpHitsPlanCache(t *testing.T) {
	d := benchdata.Sales(60)
	lex := lexicon.New()
	interp := athena.New(d.DB, lex)
	gw := resilient.New(d.DB, nil, resilient.Config{
		PlanCache: qcache.New(qcache.Config{MaxEntries: 64}),
	})
	agent := NewAgent(d.DB, interp, lex, gw)

	run := func() *Response {
		t.Helper()
		conv := &Context{}
		if _, err := agent.RespondWith(context.Background(), conv, "show customers with city Berlin"); err != nil {
			t.Fatal(err)
		}
		r, err := agent.RespondWith(context.Background(), conv, "only those with credit over 20000")
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	run() // cold: plans both statements
	r := run()
	if r.Answer == nil || r.Answer.Trace == nil {
		t.Fatal("follow-up answer carries no trace")
	}
	plan := r.Answer.Trace.Find("plan")
	if plan == nil {
		t.Fatalf("no plan span in trace:\n%s", r.Answer.Trace)
	}
	if plan.Attr("plan_cache") != "hit" {
		t.Fatalf("repeated follow-up missed the plan cache:\n%s", r.Answer.Trace)
	}
}

// TestSharedManagerConcurrentConversations drives many conversations
// through one shared agent via RespondWith under the race detector: each
// conversation must resolve follow-ups against its own context only.
func TestSharedManagerConcurrentConversations(t *testing.T) {
	d := benchdata.Sales(60)
	lex := lexicon.New()
	interp := athena.New(d.DB, lex)
	agent := NewAgent(d.DB, interp, lex, testExec(d))

	cities := []string{"Berlin", "Munich", "Hamburg"}
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			city := cities[i%len(cities)]
			conv := &Context{}
			r1, err := agent.RespondWith(context.Background(), conv, "show customers with city "+city)
			if err != nil {
				t.Error(err)
				return
			}
			r2, err := agent.RespondWith(context.Background(), conv, "how many are there")
			if err != nil {
				t.Error(err)
				return
			}
			// The count must match THIS conversation's rows — a bleed from a
			// concurrent conversation over another city would break it.
			if got, want := r2.Result.Rows[0][0].Int(), int64(len(r1.Result.Rows)); got != want {
				t.Errorf("conversation %d (%s): count %d != own rows %d — context bled across conversations", i, city, got, want)
			}
		}(i)
	}
	wg.Wait()
}
