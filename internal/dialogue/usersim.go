package dialogue

import (
	"nlidb/internal/nlq"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlexec"
	"nlidb/internal/sqlparse"
)

// UserSim is a scripted user that answers clarification and validation
// questions from a gold query — the experimental stand-in for the human
// in the NaLIR/DialSQL interaction loops. Its judgment is execution-based:
// a candidate is "right" when it returns the gold result.
type UserSim struct {
	eng     *sqlexec.Engine
	gold    *sqlparse.SelectStmt
	goldRes *sqldata.Result

	// Interactions counts questions the user had to answer — the cost
	// axis of the feedback experiments.
	Interactions int
}

// NewUserSim builds a user for one question's gold query.
func NewUserSim(db *sqldata.Database, gold *sqlparse.SelectStmt) (*UserSim, error) {
	eng := sqlexec.New(db)
	res, err := eng.Run(gold)
	if err != nil {
		return nil, err
	}
	return &UserSim{eng: eng, gold: gold, goldRes: res}, nil
}

// SetGold repoints the user at a new turn's gold query.
func (u *UserSim) SetGold(gold *sqlparse.SelectStmt) error {
	res, err := u.eng.Run(gold)
	if err != nil {
		return err
	}
	u.gold = gold
	u.goldRes = res
	return nil
}

// Validate answers a DialSQL-style "is this what you meant?" question.
func (u *UserSim) Validate(candidate *sqlparse.SelectStmt) bool {
	u.Interactions++
	res, err := u.eng.Run(candidate)
	if err != nil {
		return false
	}
	if len(u.gold.OrderBy) > 0 {
		return res.EqualOrdered(u.goldRes)
	}
	return res.EqualUnordered(u.goldRes)
}

// Choose answers a NaLIR-style multiple-choice clarification by picking
// the candidate whose execution matches the gold; it returns the index of
// the chosen interpretation (default 0).
func (u *UserSim) Choose(candidates []nlq.Interpretation) int {
	u.Interactions++
	for i, c := range candidates {
		res, err := u.eng.Run(c.SQL)
		if err != nil {
			continue
		}
		match := false
		if len(u.gold.OrderBy) > 0 {
			match = res.EqualOrdered(u.goldRes)
		} else {
			match = res.EqualUnordered(u.goldRes)
		}
		if match {
			return i
		}
	}
	return 0
}
