// Package eval measures interpreter quality: execution accuracy (does the
// predicted SQL return the gold result), canonical exact-match accuracy,
// precision (correct among answered), recall (correct among all), and F1,
// with per-complexity-class breakdowns — plus turn-level accuracy for
// conversational corpora. These are the metrics the tutorial's benchmark
// discussion (WikiSQL/Spider/SParC/CoSQL) standardizes.
package eval

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"nlidb/internal/dataset"
	"nlidb/internal/dialogue"
	"nlidb/internal/nlq"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlexec"
	"nlidb/internal/sqlparse"
)

// Counts tallies outcomes for one bucket.
type Counts struct {
	Total    int
	Answered int // interpreter produced SQL
	Correct  int // execution matched gold
	Exact    int // canonical exact match
}

// Accuracy is Correct/Total (execution accuracy).
func (c Counts) Accuracy() float64 { return ratio(c.Correct, c.Total) }

// Precision is Correct/Answered.
func (c Counts) Precision() float64 { return ratio(c.Correct, c.Answered) }

// Recall equals Accuracy under the answered/correct framing.
func (c Counts) Recall() float64 { return ratio(c.Correct, c.Total) }

// F1 is the harmonic mean of precision and recall.
func (c Counts) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// ExactAccuracy is Exact/Total.
func (c Counts) ExactAccuracy() float64 { return ratio(c.Exact, c.Total) }

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func (c *Counts) add(o Counts) {
	c.Total += o.Total
	c.Answered += o.Answered
	c.Correct += o.Correct
	c.Exact += o.Exact
}

// QueryRecord is the per-query outcome row: which engine served the
// question, how long the attempt took wall-clock (interpret + execute),
// and how it was scored. Records let downstream analysis slice latency
// and accuracy together instead of seeing only aggregate counts.
type QueryRecord struct {
	ID       string
	Question string
	Class    nlq.Complexity
	Engine   string
	Wall     time.Duration
	Answered bool
	Correct  bool
	Exact    bool
}

// Report is the evaluation of one interpreter over one corpus.
type Report struct {
	Interpreter string
	Corpus      string
	Overall     Counts
	ByClass     map[nlq.Complexity]*Counts
	// Records holds one row per evaluated pair, in corpus order.
	Records []QueryRecord
}

// LatencyQuantile returns the q-th nearest-rank quantile of per-query
// wall time across all records, or 0 when the report is empty.
func (r *Report) LatencyQuantile(q float64) time.Duration {
	if len(r.Records) == 0 {
		return 0
	}
	walls := make([]time.Duration, len(r.Records))
	for i, rec := range r.Records {
		walls[i] = rec.Wall
	}
	sort.Slice(walls, func(i, j int) bool { return walls[i] < walls[j] })
	idx := int(math.Ceil(q*float64(len(walls)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(walls) {
		idx = len(walls) - 1
	}
	return walls[idx]
}

// Evaluate runs the interpreter over every pair of the set. Gold queries
// with ORDER BY compare ordered; everything else compares row multisets.
func Evaluate(interp nlq.Interpreter, set *dataset.Set) (*Report, error) {
	eng := sqlexec.New(set.DB)
	rep := &Report{
		Interpreter: interp.Name(),
		Corpus:      set.Name,
		ByClass:     map[nlq.Complexity]*Counts{},
	}
	for _, p := range set.Pairs {
		c := rep.ByClass[p.Complexity]
		if c == nil {
			c = &Counts{}
			rep.ByClass[p.Complexity] = c
		}
		c.Total++

		gold, err := eng.Run(p.SQL)
		if err != nil {
			return nil, fmt.Errorf("eval: gold %q fails: %w", p.SQL, err)
		}

		rec := QueryRecord{ID: p.ID, Question: p.Question, Class: p.Complexity, Engine: interp.Name()}
		t0 := time.Now()
		rec.Answered, rec.Correct, rec.Exact = scorePair(eng, interp, p, gold)
		rec.Wall = time.Since(t0)
		rep.Records = append(rep.Records, rec)

		if rec.Answered {
			c.Answered++
		}
		if rec.Correct {
			c.Correct++
		}
		if rec.Exact {
			c.Exact++
		}
	}
	for _, c := range rep.ByClass {
		rep.Overall.add(*c)
	}
	return rep, nil
}

// scorePair runs one interpret-and-execute attempt against its gold
// result. It is the timed region of a QueryRecord: everything the engine
// does for the question, nothing the harness does around it.
func scorePair(eng *sqlexec.Engine, interp nlq.Interpreter, p dataset.Pair, gold *sqldata.Result) (answered, correct, exact bool) {
	ins, err := interp.Interpret(p.Question)
	if err != nil {
		return false, false, false
	}
	best, err := nlq.Best(ins)
	if err != nil {
		return false, false, false
	}
	exact = sqlparse.EqualCanonical(best.SQL, p.SQL)
	pred, err := runGuarded(eng, best.SQL)
	if err != nil {
		return true, false, exact
	}
	return true, resultsMatch(pred, gold, p.SQL), exact
}

// runGuarded executes predicted SQL under a default resource budget and
// panic isolation: a pathological or malformed prediction counts as
// unanswered instead of stalling or crashing the harness. Gold queries
// stay unguarded — a broken gold query is a corpus bug and must surface.
func runGuarded(eng *sqlexec.Engine, stmt *sqlparse.SelectStmt) (res *sqldata.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("eval: predicted query panicked: %v", r)
		}
	}()
	return eng.RunContext(context.Background(), stmt, sqlexec.DefaultBudget())
}

func resultsMatch(pred, gold *sqldata.Result, goldStmt *sqlparse.SelectStmt) bool {
	if len(goldStmt.OrderBy) > 0 {
		return pred.EqualOrdered(gold)
	}
	return pred.EqualUnordered(gold)
}

// Classes returns the classes present in the report, in taxonomy order.
func (r *Report) Classes() []nlq.Complexity {
	var out []nlq.Complexity
	for c := range r.ByClass {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the report as an aligned table row set.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %-20s acc=%.3f prec=%.3f rec=%.3f f1=%.3f exact=%.3f (n=%d)",
		r.Interpreter, r.Corpus, r.Overall.Accuracy(), r.Overall.Precision(),
		r.Overall.Recall(), r.Overall.F1(), r.Overall.ExactAccuracy(), r.Overall.Total)
	for _, class := range r.Classes() {
		c := r.ByClass[class]
		fmt.Fprintf(&sb, "\n    %-12s acc=%.3f (n=%d)", class, c.Accuracy(), c.Total)
	}
	return sb.String()
}

// TurnCounts tallies conversational outcomes per turn kind.
type TurnCounts map[dataset.TurnKind]*Counts

// ConvReport is the evaluation of a dialogue manager over a conversation
// corpus.
type ConvReport struct {
	Manager string
	Corpus  string
	Overall Counts
	ByKind  TurnCounts
	// Interactions counts simulated-user questions asked, if any.
	Interactions int
}

// EvaluateConversations replays each conversation turn-by-turn through the
// manager, comparing each response's execution against the turn's gold.
// Context carries across turns within a conversation; Reset separates
// conversations.
func EvaluateConversations(mgr dialogue.Manager, cs *dataset.ConvSet) (*ConvReport, error) {
	eng := sqlexec.New(cs.DB)
	rep := &ConvReport{Manager: mgr.Name(), Corpus: cs.Name, ByKind: TurnCounts{}}
	for _, conv := range cs.Conversations {
		mgr.Reset()
		for _, turn := range conv.Turns {
			c := rep.ByKind[turn.Kind]
			if c == nil {
				c = &Counts{}
				rep.ByKind[turn.Kind] = c
			}
			c.Total++
			gold, err := eng.Run(turn.SQL)
			if err != nil {
				return nil, fmt.Errorf("eval: conversation gold fails: %w", err)
			}
			resp, err := mgr.Respond(context.Background(), turn.Utterance)
			if err != nil || resp.SQL == nil || resp.Result == nil {
				continue
			}
			c.Answered++
			if resultsMatch(resp.Result, gold, turn.SQL) {
				c.Correct++
			}
		}
	}
	for _, c := range rep.ByKind {
		rep.Overall.add(*c)
	}
	return rep, nil
}

// Kinds returns turn kinds present, in order.
func (r *ConvReport) Kinds() []dataset.TurnKind {
	var out []dataset.TurnKind
	for k := range r.ByKind {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the conversational report.
func (r *ConvReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %-16s turn-acc=%.3f (n=%d)", r.Manager, r.Corpus,
		r.Overall.Accuracy(), r.Overall.Total)
	for _, k := range r.Kinds() {
		c := r.ByKind[k]
		fmt.Fprintf(&sb, "\n    %-10s acc=%.3f (n=%d)", k, c.Accuracy(), c.Total)
	}
	return sb.String()
}
