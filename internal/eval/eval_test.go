package eval

import (
	"strings"
	"testing"

	"nlidb/internal/athena"
	"nlidb/internal/benchdata"
	"nlidb/internal/dataset"
	"nlidb/internal/dialogue"
	"nlidb/internal/keywordnl"
	"nlidb/internal/lexicon"
	"nlidb/internal/resilient"
	"nlidb/internal/nlq"
	"nlidb/internal/sqlparse"
)

// perfect answers every question with the gold SQL; broken answers none.
type perfect struct{ set *dataset.Set }

func (p *perfect) Name() string { return "perfect" }
func (p *perfect) Interpret(q string) ([]nlq.Interpretation, error) {
	for _, pair := range p.set.Pairs {
		if pair.Question == q {
			return []nlq.Interpretation{{SQL: pair.SQL, Score: 1}}, nil
		}
	}
	return nil, nlq.ErrNoInterpretation
}

type broken struct{}

func (b *broken) Name() string { return "broken" }
func (b *broken) Interpret(string) ([]nlq.Interpretation, error) {
	return nil, nlq.ErrNoInterpretation
}

// half answers everything but is right only on Simple pairs.
type half struct{ set *dataset.Set }

func (h *half) Name() string { return "half" }
func (h *half) Interpret(q string) ([]nlq.Interpretation, error) {
	for _, pair := range h.set.Pairs {
		if pair.Question == q {
			if pair.Complexity == nlq.Simple {
				return []nlq.Interpretation{{SQL: pair.SQL, Score: 1}}, nil
			}
			return []nlq.Interpretation{{SQL: sqlparse.MustParse("SELECT id FROM customer WHERE id < 0"), Score: 1}}, nil
		}
	}
	return nil, nlq.ErrNoInterpretation
}

func corpus(t *testing.T) *dataset.Set {
	t.Helper()
	d := benchdata.Sales(42)
	set := &dataset.Set{Name: "test", DB: d.DB, Pairs: d.GeneratePairs(40, 5)}
	return set
}

func TestEvaluatePerfect(t *testing.T) {
	set := corpus(t)
	rep, err := Evaluate(&perfect{set}, set)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Overall.Accuracy() != 1 || rep.Overall.Precision() != 1 || rep.Overall.F1() != 1 {
		t.Fatalf("perfect scored %+v", rep.Overall)
	}
	if rep.Overall.ExactAccuracy() != 1 {
		t.Fatalf("perfect exact = %v", rep.Overall.ExactAccuracy())
	}
}

func TestEvaluateBroken(t *testing.T) {
	set := corpus(t)
	rep, err := Evaluate(&broken{}, set)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Overall.Accuracy() != 0 || rep.Overall.Answered != 0 {
		t.Fatalf("broken scored %+v", rep.Overall)
	}
}

func TestEvaluatePrecisionVsRecall(t *testing.T) {
	set := corpus(t)
	rep, err := Evaluate(&half{set}, set)
	if err != nil {
		t.Fatal(err)
	}
	// Answers everything → precision == recall; correct only on Simple.
	if rep.Overall.Answered != rep.Overall.Total {
		t.Fatalf("half answered %d/%d", rep.Overall.Answered, rep.Overall.Total)
	}
	simple := rep.ByClass[nlq.Simple]
	if simple == nil || simple.Accuracy() != 1 {
		t.Fatalf("simple class = %+v", simple)
	}
	// The dummy query can coincide with empty-result golds, so nested
	// accuracy is low but not necessarily zero.
	if nested := rep.ByClass[nlq.Nested]; nested != nil && nested.Accuracy() >= simple.Accuracy() {
		t.Fatalf("nested (%+v) should score below simple", nested)
	}
}

func TestReportString(t *testing.T) {
	set := corpus(t)
	rep, _ := Evaluate(&perfect{set}, set)
	s := rep.String()
	if !strings.Contains(s, "acc=1.000") || !strings.Contains(s, "simple") {
		t.Errorf("report string: %s", s)
	}
	if len(rep.Classes()) == 0 {
		t.Error("no classes")
	}
}

func TestRealInterpreterOrdering(t *testing.T) {
	// Sanity: athena must beat keyword overall on a mixed corpus.
	set := corpus(t)
	lex := lexicon.New()
	kw, err := Evaluate(keywordnl.New(set.DB, lex), set)
	if err != nil {
		t.Fatal(err)
	}
	at, err := Evaluate(athena.New(set.DB, lex), set)
	if err != nil {
		t.Fatal(err)
	}
	if at.Overall.Accuracy() <= kw.Overall.Accuracy() {
		t.Errorf("athena (%.3f) did not beat keyword (%.3f)",
			at.Overall.Accuracy(), kw.Overall.Accuracy())
	}
}

func TestEvaluateConversations(t *testing.T) {
	d := benchdata.Sales(42)
	cs := benchdata.Conversations(d, 8, 3)
	lex := lexicon.New()
	interp := athena.New(d.DB, lex)

	exec := resilient.New(d.DB, nil, resilient.Config{NoTrace: true})
	agent := dialogue.NewAgent(d.DB, interp, lex, exec)
	rep, err := EvaluateConversations(agent, cs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Overall.Total != cs.TotalTurns() {
		t.Fatalf("turns = %d, want %d", rep.Overall.Total, cs.TotalTurns())
	}
	fsm := dialogue.NewFiniteState(interp, exec)
	frep, err := EvaluateConversations(fsm, cs)
	if err != nil {
		t.Fatal(err)
	}
	if frep.Overall.Accuracy() >= rep.Overall.Accuracy() {
		t.Errorf("finite-state (%.3f) not below agent (%.3f)",
			frep.Overall.Accuracy(), rep.Overall.Accuracy())
	}
	// Context-dependent turns must be where the finite-state manager dies.
	if c := frep.ByKind[dataset.TurnRefine]; c != nil && c.Correct != 0 {
		t.Errorf("finite-state answered a refine turn: %+v", c)
	}
	if !strings.Contains(rep.String(), "turn-acc") {
		t.Error("conv report string")
	}
}

// TestEvaluateRecords checks the per-query record rows: one per pair in
// corpus order, carrying the engine name, a positive wall time, and
// outcome flags consistent with the aggregate counts.
func TestEvaluateRecords(t *testing.T) {
	set := corpus(t)
	rep, err := Evaluate(&perfect{set}, set)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != len(set.Pairs) {
		t.Fatalf("records = %d, want one per pair (%d)", len(rep.Records), len(set.Pairs))
	}
	answered, correct := 0, 0
	for i, rec := range rep.Records {
		if rec.Question != set.Pairs[i].Question {
			t.Fatalf("record %d out of corpus order: %q", i, rec.Question)
		}
		if rec.Engine != "perfect" {
			t.Errorf("record %d engine = %q, want perfect", i, rec.Engine)
		}
		if rec.Wall <= 0 {
			t.Errorf("record %d wall time = %v, want > 0", i, rec.Wall)
		}
		if rec.Answered {
			answered++
		}
		if rec.Correct {
			correct++
		}
	}
	if answered != rep.Overall.Answered || correct != rep.Overall.Correct {
		t.Errorf("record flags (answered %d, correct %d) disagree with counts (%d, %d)",
			answered, correct, rep.Overall.Answered, rep.Overall.Correct)
	}
	if p50, p99 := rep.LatencyQuantile(0.50), rep.LatencyQuantile(0.99); p50 <= 0 || p99 < p50 {
		t.Errorf("latency quantiles p50=%v p99=%v should be positive and ordered", p50, p99)
	}
}

// TestEvaluateRecordsUnanswered: a broken interpreter still yields one
// record per pair, all unanswered, and a zero quantile on no records.
func TestEvaluateRecordsUnanswered(t *testing.T) {
	set := corpus(t)
	rep, err := Evaluate(&broken{}, set)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != len(set.Pairs) {
		t.Fatalf("records = %d, want %d", len(rep.Records), len(set.Pairs))
	}
	for i, rec := range rep.Records {
		if rec.Answered || rec.Correct || rec.Exact {
			t.Errorf("record %d should be fully unanswered: %+v", i, rec)
		}
	}
	empty := &Report{}
	if got := empty.LatencyQuantile(0.95); got != 0 {
		t.Errorf("empty report quantile = %v, want 0", got)
	}
}
