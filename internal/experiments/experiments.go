// Package experiments drives the reproduction study. The source paper is
// a tutorial with no numbered tables or figures; each experiment below
// turns one of its comparative claims into a measurable table (the mapping
// is recorded in DESIGN.md and the measured outcomes in EXPERIMENTS.md).
// Every experiment is seeded and deterministic; cmd/nlidb-bench prints
// them all and bench_test.go wraps each in a testing.B benchmark.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one experiment's result: a claim from the survey and the
// measured rows that test it.
type Table struct {
	// ID is the experiment identifier (T1…T10, A1, A2).
	ID string
	// Title is a short name.
	Title string
	// Claim quotes or paraphrases the survey statement under test.
	Claim string
	// Header labels the columns.
	Header []string
	// Rows hold the measurements, pre-formatted.
	Rows [][]string
	// Notes carry caveats and expected-shape commentary.
	Notes []string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	fmt.Fprintf(&sb, "Claim: %s\n", t.Claim)

	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&sb, "%-*s", widths[i], c)
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// pct formats a ratio as a fixed-width percentage.
func pct(v float64) string { return fmt.Sprintf("%5.1f%%", 100*v) }

// Experiment is a named runnable experiment.
type Experiment struct {
	ID  string
	Run func(seed int64) (*Table, error)
}

// All lists every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"T1", T1ComplexityCeiling},
		{"T2", T2Paraphrase},
		{"T3", T3PrecisionRecall},
		{"T4", T4TrainingCurve},
		{"T5", T5DomainAdaptation},
		{"T6", T6Dialogue},
		{"T7", T7Feedback},
		{"T8", T8Datasets},
		{"T9", T9Relaxation},
		{"T10", T10QueryLog},
		{"T11", T11Decomposition},
		{"A1", A1SketchVsSeq},
		{"A2", A2TypeFeatures},
	}
}

// RunAll executes every experiment with the seed.
func RunAll(seed int64) ([]*Table, error) {
	var out []*Table
	for _, e := range All() {
		t, err := e.Run(seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", e.ID, err)
		}
		out = append(out, t)
	}
	return out, nil
}
