package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// parsePct turns " 42.0%" back into 0.42.
func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(s), "%"))
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parsePct(%q): %v", s, err)
	}
	return v / 100
}

func TestTableString(t *testing.T) {
	tbl := &Table{ID: "X", Title: "t", Claim: "c",
		Header: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}, Notes: []string{"n"}}
	s := tbl.String()
	for _, frag := range []string{"== X", "Claim:", "a", "note: n"} {
		if !strings.Contains(s, frag) {
			t.Errorf("table string missing %q:\n%s", frag, s)
		}
	}
}

func TestT1ComplexityCeilingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	tbl, err := T1ComplexityCeiling(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl.String())
	get := func(interp string, col int) float64 {
		for _, row := range tbl.Rows {
			if row[0] == interp {
				return parsePct(t, row[col])
			}
		}
		t.Fatalf("row %s missing", interp)
		return 0
	}
	// Ceiling claims: keyword does nothing past simple.
	if get("keyword", 2) > 0.15 || get("keyword", 3) > 0.15 || get("keyword", 4) > 0.15 {
		t.Errorf("keyword exceeded its ceiling: %v", tbl.Rows)
	}
	// Pattern handles aggregation far better than keyword.
	if get("pattern", 2) <= get("keyword", 2) {
		t.Errorf("pattern should beat keyword on aggregation")
	}
	// Parse handles joins; pattern does not.
	if get("parse", 3) <= get("pattern", 3) {
		t.Errorf("parse should beat pattern on joins")
	}
	// Only athena is competent on nested.
	if get("athena", 4) <= get("parse", 4) {
		t.Errorf("athena should beat parse on nested")
	}
	if get("athena", 4) < 0.4 {
		t.Errorf("athena nested accuracy too low: %v", get("athena", 4))
	}
	// mlsql stays within classes 1–2: near zero on joins and nesting.
	if get("mlsql", 3) > 0.2 || get("mlsql", 4) > 0.2 {
		t.Errorf("mlsql exceeded single-table ceiling")
	}
}

func TestT2ParaphraseShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	tbl, err := T2Paraphrase(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl.String())
	drops := map[string]float64{}
	baseline := map[string]float64{}
	for _, row := range tbl.Rows {
		drops[row[0]] = parsePct(t, row[5])
		baseline[row[0]] = parsePct(t, row[1])
	}
	// ML must degrade less than every *capable* entity system (a system
	// already at its floor, like keyword, has nothing left to lose).
	for name, d := range drops {
		if name == "mlsql" || baseline[name] < 0.6 {
			continue
		}
		if drops["mlsql"] > d+0.02 {
			t.Errorf("mlsql drop (%.2f) exceeds %s drop (%.2f)", drops["mlsql"], name, d)
		}
	}
}

func TestT3PrecisionRecallShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	tbl, err := T3PrecisionRecall(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl.String())
	row := func(name string) []string {
		for _, r := range tbl.Rows {
			if r[0] == name {
				return r
			}
		}
		t.Fatalf("row %s missing", name)
		return nil
	}
	at, ml, hy := row("athena+abstain"), row("mlsql"), row("hybrid")
	if parsePct(t, at[1]) <= parsePct(t, ml[1]) {
		t.Errorf("entity precision (%s) should beat ML precision (%s)", at[1], ml[1])
	}
	if parsePct(t, ml[2]) <= parsePct(t, at[2]) {
		t.Errorf("ML recall (%s) should beat entity recall (%s)", ml[2], at[2])
	}
	if parsePct(t, hy[3]) < parsePct(t, ml[3]) || parsePct(t, hy[3]) < parsePct(t, at[3]) {
		t.Errorf("hybrid F1 (%s) should top both (%s, %s)", hy[3], at[3], ml[3])
	}
}

func TestA1SketchShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	tbl, err := A1SketchVsSeq(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl.String())
	sketch := parsePct(t, tbl.Rows[0][1])
	ordered := parsePct(t, tbl.Rows[1][1])
	if sketch < ordered+0.1 {
		t.Errorf("sketch (%.2f) should clearly beat ordered (%.2f)", sketch, ordered)
	}
}

func TestA2TypedShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	tbl, err := A2TypeFeatures(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl.String())
	on := parsePct(t, tbl.Rows[0][1])
	off := parsePct(t, tbl.Rows[1][1])
	if on+0.02 < off {
		t.Errorf("typed channel (%.2f) should not trail untyped (%.2f)", on, off)
	}
}

func TestT9RelaxationShape(t *testing.T) {
	tbl, err := T9Relaxation(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl.String())
	// The relaxed-vocabulary row must improve when relaxation turns on.
	var relaxedRow []string
	for _, row := range tbl.Rows {
		if row[0] == "relaxed" {
			relaxedRow = row
		}
	}
	if relaxedRow == nil {
		t.Fatal("relaxed row missing")
	}
	off := strings.Split(relaxedRow[1], "/")[0]
	on := strings.Split(relaxedRow[2], "/")[0]
	offN, _ := strconv.Atoi(off)
	onN, _ := strconv.Atoi(on)
	if onN <= offN {
		t.Errorf("relaxation did not help: off=%s on=%s", relaxedRow[1], relaxedRow[2])
	}
}

func TestT10QueryLogShape(t *testing.T) {
	tbl, err := T10QueryLog(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl.String())
	off := parsePct(t, tbl.Rows[0][1])
	on := parsePct(t, tbl.Rows[1][1])
	if on <= off {
		t.Errorf("query-log priors did not help: off=%.2f on=%.2f", off, on)
	}
	if on < 0.8 {
		t.Errorf("with priors accuracy should be high, got %.2f", on)
	}
}

func TestT7FeedbackShape(t *testing.T) {
	tbl, err := T7Feedback(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl.String())
	a0 := parsePct(t, tbl.Rows[0][1])
	a1 := parsePct(t, tbl.Rows[1][1])
	if a1 <= a0 {
		t.Errorf("clarification did not help: %.2f → %.2f", a0, a1)
	}
}

func TestT6DialogueShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	tbl, err := T6Dialogue(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl.String())
	overall := map[string]float64{}
	for _, row := range tbl.Rows {
		overall[row[0]] = parsePct(t, row[5])
	}
	if !(overall["agent"] > overall["frame"] && overall["frame"] > overall["finite-state"]) {
		t.Errorf("flexibility ladder violated: %v", overall)
	}
	// Finite-state must be 0 on refine turns.
	for _, row := range tbl.Rows {
		if row[0] == "finite-state" && parsePct(t, row[2]) != 0 {
			t.Errorf("finite-state answered refines: %v", row)
		}
	}
}

func TestT11DecompositionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow experiment")
	}
	tbl, err := T11Decomposition(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tbl.String())
	oneShot := parsePct(t, tbl.Rows[0][1])
	decomposed := parsePct(t, tbl.Rows[1][1])
	if oneShot > 0.2 {
		t.Errorf("one-shot nested accuracy should be near zero, got %.2f", oneShot)
	}
	if decomposed < oneShot+0.5 {
		t.Errorf("decomposition should add ≥50 points: %.2f → %.2f", oneShot, decomposed)
	}
}

func TestT8DatasetsRuns(t *testing.T) {
	tbl, err := T8Datasets(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	t.Log("\n" + tbl.String())
}
