package experiments

import (
	"math/rand"
	"testing"

	"nlidb/internal/benchdata"
	"nlidb/internal/lexicon"
	"nlidb/internal/nlq"
	"nlidb/internal/sqlexec"
	"nlidb/internal/sqlparse"
	"nlidb/internal/synth"
)

// TestAllFamiliesEmitWellFormedSQL is the cross-system safety net: every
// interpretation any entity-based family produces, on any domain, for any
// generated or paraphrased question, must (a) print to SQL that re-parses
// and (b) execute without an engine error. Wrong answers are allowed —
// malformed ones are not.
func TestAllFamiliesEmitWellFormedSQL(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	lex := lexicon.New()
	for _, d := range benchdata.Domains(3) {
		eng := sqlexec.New(d.DB)
		interps := interpreterSet(d, lex)
		pairs := d.GeneratePairs(40, 77)
		checked := 0
		for _, p := range pairs {
			for name, in := range interps {
				ins, err := in.Interpret(p.Question)
				if err != nil {
					continue // abstaining is always allowed
				}
				for _, reading := range ins {
					if reading.SQL == nil {
						t.Errorf("%s/%s: nil SQL for %q", d.Name, name, p.Question)
						continue
					}
					printed := reading.SQL.String()
					reparsed, err := sqlparse.Parse(printed)
					if err != nil {
						t.Errorf("%s/%s: unparseable SQL %q for %q: %v", d.Name, name, printed, p.Question, err)
						continue
					}
					if _, err := eng.Run(reparsed); err != nil {
						t.Errorf("%s/%s: SQL fails to execute for %q: %s: %v", d.Name, name, p.Question, printed, err)
						continue
					}
					checked++
				}
			}
		}
		if checked == 0 {
			t.Errorf("%s: no interpretations checked", d.Name)
		}
	}
}

// TestFamiliesSurviveParaphraseSweep repeats the well-formedness check
// under paraphrase: distorted questions may fail to interpret, but must
// never yield malformed SQL or a panic.
func TestFamiliesSurviveParaphraseSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	lex := lexicon.New()
	d := benchdata.Movies(9)
	eng := sqlexec.New(d.DB)
	interps := interpreterSet(d, lex)
	pairs := d.GeneratePairs(25, 13)
	r := newSeededRand(99)
	for _, p := range pairs {
		for s := 0; s <= 4; s++ {
			q := synth.Paraphrase(p.Question, s, lex, r)
			for name, in := range interps {
				ins, err := in.Interpret(q)
				if err != nil {
					continue
				}
				best, err := nlq.Best(ins)
				if err != nil {
					continue
				}
				if _, err := sqlparse.Parse(best.SQL.String()); err != nil {
					t.Errorf("%s: unparseable under paraphrase %q: %s", name, q, best.SQL)
				}
				if _, err := eng.Run(best.SQL); err != nil {
					t.Errorf("%s: execution error under paraphrase %q: %s: %v", name, q, best.SQL, err)
				}
			}
		}
	}
}

func newSeededRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
