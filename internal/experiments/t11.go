package experiments

import (
	"fmt"

	"nlidb/internal/benchdata"
	"nlidb/internal/dataset"
	"nlidb/internal/lexicon"
	"nlidb/internal/mlsql"
	"nlidb/internal/nlq"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlexec"
	"nlidb/internal/synth"
)

// T11Decomposition reproduces §5's proposal: "One possible solution to
// handling complex queries is to express them as a sequence of simpler
// questions. This is in line with machine learning-based approaches …
// while restricting their applicability to simpler individual queries."
// A learned single-table parser cannot answer a nested question one-shot,
// but a two-turn conversation — first compute the aggregate, then filter
// by the returned number — stays inside its ceiling.
func T11Decomposition(seed int64) (*Table, error) {
	lex := lexicon.New()
	d := benchdata.Sales(seed)
	eng := sqlexec.New(d.DB)

	// The complex questions: above-average filters on the main table.
	pairs := d.GeneratePairs(60, seed+3, nlq.Nested)
	var items []dataset.Pair
	for _, p := range pairs {
		if p.Table == d.Main && len(p.SQL.Subqueries()) == 1 {
			items = append(items, p)
		}
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("experiments: no decomposable nested questions generated")
	}

	train := synth.TrainingSet(d, 400, 1, lex, seed+5)
	model, _, err := mlsql.Train([]*dataset.Set{train}, cfgWithSeed(seed))
	if err != nil {
		return nil, err
	}
	tbl := d.DB.Table(d.Main)

	oneShot, decomposed := 0, 0
	for _, it := range items {
		gold, err := eng.Run(it.SQL)
		if err != nil {
			return nil, err
		}

		// One shot: ask the nested question directly.
		if stmt, err := model.Parse(it.Question, tbl); err == nil {
			if res, err := eng.Run(stmt); err == nil && res.EqualUnordered(gold) {
				oneShot++
			}
		}

		// Decomposed: the user first asks for the aggregate the nested
		// question references, then re-asks with the concrete number —
		// two simple questions the sketch parser can handle.
		sub := it.SQL.Subqueries()[0]
		subRes, err := eng.Run(sub)
		if err != nil || len(subRes.Rows) != 1 || subRes.Rows[0][0].Null {
			continue
		}
		// Turn 1 (simulated): "what is the average <col>" → the system
		// must actually get the aggregate right.
		aggQ := fmt.Sprintf("what is the average %s of %s", propOf(sub), pluralName(d.Main))
		stmt1, err := model.Parse(aggQ, tbl)
		if err != nil {
			continue
		}
		r1, err := eng.Run(stmt1)
		if err != nil || len(r1.Rows) != 1 || r1.Rows[0][0].Null ||
			!r1.Rows[0][0].Equal(coerced(subRes.Rows[0][0])) {
			continue
		}
		// Turn 2: the same filter with the concrete number.
		simpleQ := fmt.Sprintf("%s with %s over %v", pluralName(d.Main), propOf(sub), r1.Rows[0][0])
		stmt2, err := model.Parse(simpleQ, tbl)
		if err != nil {
			continue
		}
		r2, err := eng.Run(stmt2)
		if err == nil && r2.EqualUnordered(gold) {
			decomposed++
		}
	}

	t := &Table{
		ID:     "T11",
		Title:  "Nested questions one-shot vs decomposed into two simple turns (learned parser)",
		Claim:  "§5: \"One possible solution to handling complex queries is to express them as a sequence of simpler questions\", which suits ML-based translation that is restricted \"to simpler individual queries\".",
		Header: []string{"strategy", "accuracy"},
	}
	n := float64(len(items))
	t.Rows = append(t.Rows,
		[]string{"one-shot nested question", pct(float64(oneShot) / n)},
		[]string{"decomposed into 2 simple turns", pct(float64(decomposed) / n)},
	)
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d above-average questions over the %s table; the decomposition is user-driven (ask the aggregate, then filter by the returned number)", len(items), d.Main),
		"expected shape: near zero one-shot (outside the single-table sketch), high when decomposed")
	return t, nil
}

func cfgWithSeed(seed int64) mlsql.Config {
	cfg := mlsql.DefaultConfig()
	cfg.Seed = seed
	return cfg
}

// propOf extracts the aggregated column of a scalar sub-query.
func propOf(sub interface{ String() string }) string {
	// Sub-queries here have the shape SELECT AVG(col) FROM t.
	s := sub.String()
	open, end := -1, -1
	for i := 0; i < len(s); i++ {
		if s[i] == '(' {
			open = i
			break
		}
	}
	for i := open + 1; i > 0 && i < len(s); i++ {
		if s[i] == ')' {
			end = i
			break
		}
	}
	if open < 0 || end < 0 {
		return ""
	}
	return s[open+1 : end]
}

func pluralName(table string) string {
	if len(table) > 0 && table[len(table)-1] == 's' {
		return table
	}
	return table + "s"
}

// coerced widens ints so Equal compares numerically with AVG floats.
func coerced(v sqldata.Value) sqldata.Value {
	if !v.Null && v.T == sqldata.TypeInt {
		return sqldata.NewFloat(v.Float())
	}
	return v
}
