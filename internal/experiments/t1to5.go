package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"nlidb/internal/athena"
	"nlidb/internal/benchdata"
	"nlidb/internal/dataset"
	"nlidb/internal/eval"
	"nlidb/internal/hybridnl"
	"nlidb/internal/keywordnl"
	"nlidb/internal/lexicon"
	"nlidb/internal/mlsql"
	"nlidb/internal/nlq"
	"nlidb/internal/parsenl"
	"nlidb/internal/patternnl"
	"nlidb/internal/resilient"
	"nlidb/internal/synth"
)

// interpreterSet builds the entity-based family over a domain. Every
// interpreter is wrapped in resilient.Safe so a panic in one engine
// surfaces as a per-query error instead of aborting the whole experiment.
func interpreterSet(d *benchdata.Domain, lex *lexicon.Lexicon) map[string]nlq.Interpreter {
	return map[string]nlq.Interpreter{
		"keyword": resilient.Safe(keywordnl.New(d.DB, lex)),
		"pattern": resilient.Safe(patternnl.New(d.DB, lex)),
		"parse":   resilient.Safe(parsenl.New(d.DB, lex)),
		"athena":  resilient.Safe(athena.New(d.DB, lex)),
	}
}

// trainMLFor trains the sketch parser on a domain's synthetic corpus.
func trainMLFor(d *benchdata.Domain, lex *lexicon.Lexicon, seed int64, cfg mlsql.Config) (*mlsql.Model, error) {
	train := synth.TrainingSet(d, 400, 1, lex, seed)
	m, _, err := mlsql.Train([]*dataset.Set{train}, cfg)
	return m, err
}

// T1ComplexityCeiling reproduces Section 3's central claim: each
// interpreter family has a query-complexity ceiling — keyword systems stop
// at selection, pattern systems add single-table aggregation, parse-based
// systems add joins, and only ontology-driven (BI) systems reach nesting;
// learned single-table parsers sit at classes 1–2.
func T1ComplexityCeiling(seed int64) (*Table, error) {
	lex := lexicon.New()
	domains := benchdata.Domains(seed)

	order := []string{"keyword", "pattern", "mlsql", "quest", "parse", "athena"}
	classes := []nlq.Complexity{nlq.Simple, nlq.Aggregation, nlq.Join, nlq.Nested}
	agg := map[string]map[nlq.Complexity]*eval.Counts{}
	for _, name := range order {
		agg[name] = map[nlq.Complexity]*eval.Counts{}
		for _, c := range classes {
			agg[name][c] = &eval.Counts{}
		}
	}

	for di, d := range domains {
		set := &dataset.Set{Name: d.Name, DB: d.DB,
			Pairs: d.GeneratePairs(80, seed+int64(di)*31)}
		interps := interpreterSet(d, lex)

		model, err := trainMLFor(d, lex, seed+int64(di), mlsql.DefaultConfig())
		if err != nil {
			return nil, err
		}
		interps["mlsql"] = resilient.Safe(mlsql.NewInterpreter(d.DB, model))

		history := d.GeneratePairs(150, seed+int64(di)*7+1, nlq.Simple, nlq.Aggregation, nlq.Join)
		quest, err := hybridnl.NewQuest(d.DB, lex, history)
		if err != nil {
			return nil, err
		}
		interps["quest"] = resilient.Safe(quest)

		for name, in := range interps {
			rep, err := eval.Evaluate(in, set)
			if err != nil {
				return nil, err
			}
			for _, c := range classes {
				if got := rep.ByClass[c]; got != nil {
					agg[name][c].Total += got.Total
					agg[name][c].Answered += got.Answered
					agg[name][c].Correct += got.Correct
					agg[name][c].Exact += got.Exact
				}
			}
		}
	}

	t := &Table{
		ID:     "T1",
		Title:  "Execution accuracy by query-complexity class and interpreter family",
		Claim:  "§3: keyword systems \"can only handle simple filter queries\"; pattern systems add aggregation; parse+schema systems add joins; only ontology-driven BI systems generate nested queries; learned single-table parsers stop at classes 1–2.",
		Header: []string{"interpreter", "simple", "aggregation", "join", "nested"},
	}
	for _, name := range order {
		row := []string{name}
		for _, c := range classes {
			row = append(row, pct(agg[name][c].Accuracy()))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"expected shape: accuracy is roughly monotone down each column and each family collapses past its ceiling class",
		fmt.Sprintf("5 domains × 80 questions, seed %d", seed))
	return t, nil
}

// T2Paraphrase reproduces §4.1/§4.2: entity-based systems are "highly
// sensitive to variations and paraphrasing of the user query"; ML-based
// systems are "robust to NL variations".
func T2Paraphrase(seed int64) (*Table, error) {
	lex := lexicon.New()
	d := benchdata.Sales(seed)

	// Single-table corpus (the classes every family can express).
	base := benchdata.WikiSQLStyle(d, 120, seed+5)

	interps := map[string]nlq.Interpreter{
		"keyword": keywordnl.New(d.DB, lex),
		"pattern": patternnl.New(d.DB, lex),
		"athena":  athena.New(d.DB, lex),
	}
	// The learned parser trains WITH paraphrase augmentation (DBPal-style),
	// which is exactly where its robustness comes from.
	model, err := trainMLFor(d, lex, seed+9, mlsql.DefaultConfig())
	if err != nil {
		return nil, err
	}
	mlin := mlsql.NewInterpreter(d.DB, model)
	mlin.FixedTable = d.Main
	interps["mlsql"] = mlin

	strengths := []int{0, 1, 2, 3}
	t := &Table{
		ID:     "T2",
		Title:  "Execution accuracy under increasing paraphrase strength",
		Claim:  "§4.1: entity-based systems are \"highly sensitive to variations and paraphrasing\"; §4.2: ML approaches are \"robust to NL variations\".",
		Header: []string{"interpreter", "p=0", "p=1", "p=2", "p=3", "drop(0→3)"},
	}
	for _, name := range []string{"keyword", "pattern", "athena", "mlsql"} {
		in := interps[name]
		row := []string{name}
		var first, last float64
		for si, s := range strengths {
			r := rand.New(rand.NewSource(seed + int64(100*s)))
			para := &dataset.Set{Name: base.Name, DB: base.DB}
			for _, p := range base.Pairs {
				p.Question = synth.Paraphrase(p.Question, s, lex, r)
				para.Pairs = append(para.Pairs, p)
			}
			rep, err := eval.Evaluate(in, para)
			if err != nil {
				return nil, err
			}
			acc := rep.Overall.Accuracy()
			if si == 0 {
				first = acc
			}
			last = acc
			row = append(row, pct(acc))
		}
		row = append(row, pct(first-last))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"expected shape: the mlsql row has the flattest curve (smallest drop); fixed cue lists degrade under comparison-phrase swaps and reordering",
		"paraphrase operators: synonym swap, politeness prefix, fillers, typos, comparison-phrase swap, determiner drop, clause reorder")
	return t, nil
}

// abstainer wraps an interpreter with a confidence threshold: readings
// below it are withheld. Entity-based production systems behave this way
// (they reject queries they cannot map confidently), and it is what gives
// them their precision profile.
type abstainer struct {
	inner     nlq.Interpreter
	threshold float64
}

func (a *abstainer) Name() string { return a.inner.Name() + "+abstain" }

func (a *abstainer) Interpret(q string) ([]nlq.Interpretation, error) {
	ins, err := a.inner.Interpret(q)
	if err != nil {
		return nil, err
	}
	best, err := nlq.Best(ins)
	if err != nil || best.Score < a.threshold {
		return nil, nlq.ErrNoInterpretation
	}
	return ins, nil
}

// T3PrecisionRecall reproduces §6 (Hybrid Approach): "entity-based
// approaches provide better accuracy (precision) while the ML-based
// approaches offer greater flexibility (recall)"; a hybrid should take
// the best of both.
func T3PrecisionRecall(seed int64) (*Table, error) {
	lex := lexicon.New()
	d := benchdata.Sales(seed)

	// Corpus: 120 heavily varied single-table questions (strengths 0–3)
	// plus 40 lightly varied join questions — the realistic mixture where
	// neither family dominates outright.
	base := benchdata.WikiSQLStyle(d, 120, seed+13)
	r := rand.New(rand.NewSource(seed + 17))
	set := &dataset.Set{Name: "mixed-variation", DB: d.DB}
	for i, p := range base.Pairs {
		p.Question = synth.Paraphrase(p.Question, i%4, lex, r)
		set.Pairs = append(set.Pairs, p)
	}
	for i, p := range d.GeneratePairs(40, seed+23, nlq.Join) {
		p.Question = synth.Paraphrase(p.Question, i%2, lex, r)
		set.Pairs = append(set.Pairs, p)
	}

	const tau = 0.8
	at := athena.New(d.DB, lex)
	atAbstain := &abstainer{inner: at, threshold: tau}
	kwAbstain := &abstainer{inner: keywordnl.New(d.DB, lex), threshold: tau}
	model, err := trainMLFor(d, lex, seed+21, mlsql.DefaultConfig())
	if err != nil {
		return nil, err
	}
	ml := mlsql.NewInterpreter(d.DB, model) // routes tables itself
	hybrid := &hybridnl.Ensemble{Primary: at, Fallback: ml, Threshold: tau}

	interps := []nlq.Interpreter{kwAbstain, atAbstain, ml, hybrid}

	t := &Table{
		ID:     "T3",
		Title:  "Precision / recall / F1 on a heavily varied corpus (entity systems abstain below confidence 0.8)",
		Claim:  "§6: \"the entity-based approaches provide better accuracy [precision] while the machine learning-based approaches offer greater flexibility (recall)\"; hybrids should leverage the best of both.",
		Header: []string{"interpreter", "precision", "recall", "F1", "answered"},
	}
	for _, in := range interps {
		rep, err := eval.Evaluate(in, set)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			in.Name(),
			pct(rep.Overall.Precision()), pct(rep.Overall.Recall()),
			pct(rep.Overall.F1()),
			fmt.Sprintf("%d/%d", rep.Overall.Answered, rep.Overall.Total),
		})
	}
	t.Notes = append(t.Notes,
		"expected shape: the athena row leads the precision column; the mlsql row leads recall among single systems; the hybrid row has the top F1",
		"the hybrid answers with the entity reading when confident and falls back to the learned parser otherwise — the filtering strategy §4.3 describes")
	return t, nil
}

// T4TrainingCurve reproduces §4.2: ML systems "require large amounts of
// training data"; DBPal's synthetic generation with paraphrase
// augmentation substitutes for manual labelling.
func T4TrainingCurve(seed int64) (*Table, error) {
	lex := lexicon.New()
	d := benchdata.Sales(seed)
	test := benchdata.WikiSQLStyle(d, 100, seed+777)

	sizes := []int{10, 25, 50, 100, 200, 400}
	const repeats = 3 // average over training seeds to damp SGD variance
	t := &Table{
		ID:     "T4",
		Title:  "Learned-parser accuracy vs training-set size, with and without synthetic augmentation",
		Claim:  "§4.2: ML approaches \"require large amounts of training data, which makes the domain adaption challenging\"; DBPal bootstraps with synthetically generated training sets.",
		Header: []string{"train size", "accuracy", "accuracy (+2x synthetic aug)"},
	}
	for _, n := range sizes {
		row := []string{fmt.Sprintf("%d", n)}
		reps := repeats
		if n <= 50 {
			reps = 5 // small-sample training is noisier; average harder
		}
		for _, augment := range []int{0, 2} {
			var acc float64
			for rep := 0; rep < reps; rep++ {
				cfg := mlsql.DefaultConfig()
				cfg.Seed = seed + int64(n) + int64(augment) + int64(rep)*97
				train := synth.TrainingSet(d, n, augment, lex, seed+3+int64(rep))
				model, _, err := mlsql.Train([]*dataset.Set{train}, cfg)
				if err != nil {
					return nil, err
				}
				in := mlsql.NewInterpreter(d.DB, model)
				in.FixedTable = d.Main
				r, err := eval.Evaluate(in, test)
				if err != nil {
					return nil, err
				}
				acc += r.Overall.Accuracy()
			}
			row = append(row, pct(acc/float64(reps)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"expected shape: accuracy climbs with size; the augmented column dominates the plain column at small sizes")
	return t, nil
}

// domainIdioms are domain-specific phrasings real users employ; each
// domain's questions are rewritten with its own idioms. They are what
// makes domain adaptation genuinely hard: an in-domain model sees them in
// training, a zero-shot model never does.
var domainIdioms = map[string][][2]string{
	"sales": {
		{" with credit over ", " worth upwards of "},
		{" with credit under ", " worth no more than "},
		{" with city ", " based in "},
		{" with segment ", " classified as "},
	},
	"movies": {
		{" with rating over ", " rated past "},
		{" with rating under ", " rated short of "},
		{" with gross over ", " grossing past "},
		{" with year over ", " released past "},
	},
	"hospital": {
		{" with salary over ", " earning upwards of "},
		{" with salary under ", " earning at best "},
		{" with experience over ", " practicing beyond "},
		{" with age over ", " aged past "},
	},
	"flights": {
		{" with price over ", " priced past "},
		{" with price under ", " priced within "},
		{" with distance over ", " spanning past "},
		{" with origin ", " departing "},
		{" with destination ", " landing in "},
	},
	"university": {
		{" with salary over ", " paid upwards of "},
		{" with tenure over ", " tenured beyond "},
		{" with enrollment over ", " enrolling past "},
		{" with credits over ", " crediting past "},
	},
}

// applyIdioms rewrites a question with its domain's idioms.
func applyIdioms(q, domain string) string {
	padded := " " + q + " "
	for _, sub := range domainIdioms[domain] {
		padded = strings.ReplaceAll(padded, sub[0], sub[1])
	}
	return strings.TrimSpace(padded)
}

// idiomatic rewrites a whole set (every pair) with the domain's idioms.
func idiomatic(set *dataset.Set, domain string) *dataset.Set {
	out := &dataset.Set{Name: set.Name + "+idioms", DB: set.DB}
	for _, p := range set.Pairs {
		p.Question = applyIdioms(p.Question, domain)
		out.Pairs = append(out.Pairs, p)
	}
	return out
}

// T5DomainAdaptation reproduces §4.2 vs §4.1: cross-domain transfer is the
// hard case for learned parsers, while entity-based systems only need the
// new domain's metadata.
func T5DomainAdaptation(seed int64) (*Table, error) {
	lex := lexicon.New()
	domains := benchdata.Domains(seed)

	t := &Table{
		ID:     "T5",
		Title:  "Held-out-domain accuracy: zero-shot learned parser vs in-domain learned parser vs ontology-driven",
		Claim:  "§4.2: for ML approaches \"domain adaption [is] challenging\"; §4.1: entity-based systems incorporate a new domain through its ontology/metadata alone.",
		Header: []string{"held-out domain", "mlsql zero-shot", "mlsql in-domain", "athena (no training)"},
	}
	const repeats = 2 // average over training seeds
	for hi, held := range domains {
		// Every domain speaks with its own idioms; the held-out test does
		// too. Zero-shot models have only seen *other* domains' idioms.
		test := idiomatic(benchdata.WikiSQLStyle(held, 80, seed+int64(hi)*101), held.Name)

		var zeroAcc, inAcc float64
		for rep := 0; rep < repeats; rep++ {
			cfg := mlsql.DefaultConfig()
			cfg.Seed = seed + int64(hi) + int64(rep)*131

			// Zero-shot: train on the other four domains (their idioms).
			var trainSets []*dataset.Set
			for di, d := range domains {
				if di == hi {
					continue
				}
				trainSets = append(trainSets,
					idiomatic(synth.TrainingSet(d, 250, 1, lex, seed+int64(di)*11+int64(rep)), d.Name))
			}
			zero, _, err := mlsql.Train(trainSets, cfg)
			if err != nil {
				return nil, err
			}
			zin := mlsql.NewInterpreter(held.DB, zero)
			zin.FixedTable = held.Main
			zrep, err := eval.Evaluate(zin, test)
			if err != nil {
				return nil, err
			}
			zeroAcc += zrep.Overall.Accuracy()

			// In-domain: train on the held-out domain itself (same idioms).
			train := idiomatic(synth.TrainingSet(held, 400, 1, lex, seed+int64(hi)+500+int64(rep)), held.Name)
			indom, _, err := mlsql.Train([]*dataset.Set{train}, cfg)
			if err != nil {
				return nil, err
			}
			iin := mlsql.NewInterpreter(held.DB, indom)
			iin.FixedTable = held.Main
			irep, err := eval.Evaluate(iin, test)
			if err != nil {
				return nil, err
			}
			inAcc += irep.Overall.Accuracy()
		}

		arep, err := eval.Evaluate(athena.New(held.DB, lex), test)
		if err != nil {
			return nil, err
		}

		t.Rows = append(t.Rows, []string{
			held.Name,
			pct(zeroAcc / repeats),
			pct(inAcc / repeats),
			pct(arep.Overall.Accuracy()),
		})
	}
	t.Notes = append(t.Notes,
		"expected shape: zero-shot trails in-domain in every row; the athena column is uniformly high with zero training")
	return t, nil
}
