package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"nlidb/internal/athena"
	"nlidb/internal/benchdata"
	"nlidb/internal/dataset"
	"nlidb/internal/dialogue"
	"nlidb/internal/eval"
	"nlidb/internal/lexicon"
	"nlidb/internal/mlsql"
	"nlidb/internal/nlq"
	"nlidb/internal/parsenl"
	"nlidb/internal/resilient"
	"nlidb/internal/schemagraph"
	"nlidb/internal/sqlexec"
	"nlidb/internal/sqlparse"
	"nlidb/internal/synth"
)

// T6Dialogue reproduces §5: context persistence enables follow-ups, and
// the three dialogue-manager families form a flexibility ladder —
// rule-based (finite-state) < frame-based < agent-based.
func T6Dialogue(seed int64) (*Table, error) {
	lex := lexicon.New()
	t := &Table{
		ID:     "T6",
		Title:  "Turn-level accuracy by dialogue-manager family and follow-up kind",
		Claim:  "§5: finite-state managers \"restrict user input to predetermined words and phrases\"; frame-based systems allow more flexible slot filling; \"agent-based systems are able to manage complex dialogues\" and are the most flexible.",
		Header: []string{"manager", "full", "refine", "aggregate", "shift", "overall"},
	}

	kinds := []dataset.TurnKind{dataset.TurnFull, dataset.TurnRefine, dataset.TurnAggregate, dataset.TurnShift}
	sum := map[string]map[dataset.TurnKind]*eval.Counts{}
	overall := map[string]*eval.Counts{}
	order := []string{"finite-state", "frame", "agent"}
	for _, n := range order {
		sum[n] = map[dataset.TurnKind]*eval.Counts{}
		for _, k := range kinds {
			sum[n][k] = &eval.Counts{}
		}
		overall[n] = &eval.Counts{}
	}

	for di, d := range []*benchdata.Domain{benchdata.Sales(seed), benchdata.Hospital(seed + 2)} {
		cs := benchdata.Conversations(d, 15, seed+int64(di)*41)
		// Agent flexibility shows when follow-ups are phrased freely:
		// paraphrase shift turns lightly.
		r := rand.New(rand.NewSource(seed + int64(di)))
		for ci := range cs.Conversations {
			for ti := range cs.Conversations[ci].Turns {
				turn := &cs.Conversations[ci].Turns[ti]
				if turn.Kind == dataset.TurnShift && r.Intn(2) == 0 {
					turn.Utterance = strings.Replace(turn.Utterance, "show their", "what about their", 1)
				}
			}
		}
		interp := athena.New(d.DB, lex)
		exec := resilient.New(d.DB, nil, resilient.Config{NoTrace: true})
		mgrs := []dialogue.Manager{
			dialogue.NewFiniteState(interp, exec),
			dialogue.NewFrame(d.DB, interp, lex, exec),
			dialogue.NewAgent(d.DB, interp, lex, exec),
		}
		for _, m := range mgrs {
			rep, err := eval.EvaluateConversations(m, cs)
			if err != nil {
				return nil, err
			}
			for _, k := range kinds {
				if c := rep.ByKind[k]; c != nil {
					sum[m.Name()][k].Total += c.Total
					sum[m.Name()][k].Answered += c.Answered
					sum[m.Name()][k].Correct += c.Correct
				}
			}
			overall[m.Name()].Total += rep.Overall.Total
			overall[m.Name()].Correct += rep.Overall.Correct
		}
	}

	for _, n := range order {
		row := []string{n}
		for _, k := range kinds {
			row = append(row, pct(sum[n][k].Accuracy()))
		}
		row = append(row, pct(overall[n].Accuracy()))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"expected shape: each row dominates the one above; finite-state scores 0 on every context-dependent column",
		"half the shift turns are paraphrased (\"what about their …\"), which only the agent family resolves")
	return t, nil
}

// T7Feedback reproduces the NaLIR/DialSQL interaction claim: user feedback
// over ranked hypotheses repairs ambiguous interpretations.
func T7Feedback(seed int64) (*Table, error) {
	lex := lexicon.New()
	d := benchdata.Airports(seed)
	eng := sqlexec.New(d.DB)

	// Ambiguous corpus: the value names an airport; the question does not
	// say whether it is the origin or the destination. Gold: origin.
	type item struct {
		q    string
		gold *sqlparse.SelectStmt
	}
	var items []item
	names, err := d.DB.Table("airport").DistinctText("name")
	if err != nil {
		return nil, err
	}
	for _, n := range names {
		gold := sqlparse.MustParse(fmt.Sprintf(
			"SELECT hop.code FROM hop JOIN airport ON hop.origin_id = airport.id WHERE airport.name = '%s'", n))
		items = append(items, item{q: fmt.Sprintf("hops of the airport %s", n), gold: gold})
	}

	in := parsenl.New(d.DB, lex)
	evalRounds := func(rounds int) (float64, float64, error) {
		correct, asked := 0, 0
		for _, it := range items {
			goldRes, err := eng.Run(it.gold)
			if err != nil {
				return 0, 0, err
			}
			ins, err := in.Interpret(it.q)
			if err != nil || len(ins) == 0 {
				continue
			}
			pick := ins[0]
			if rounds > 0 && len(ins) > 1 {
				u, err := dialogue.NewUserSim(d.DB, it.gold)
				if err != nil {
					return 0, 0, err
				}
				idx := u.Choose(ins)
				asked += u.Interactions
				pick = ins[idx]
			}
			res, err := eng.Run(pick.SQL)
			if err != nil {
				continue
			}
			if res.EqualUnordered(goldRes) {
				correct++
			}
		}
		return float64(correct) / float64(len(items)), float64(asked) / float64(len(items)), nil
	}

	t := &Table{
		ID:     "T7",
		Title:  "Accuracy on ambiguous questions with and without a clarification round",
		Claim:  "§4.1/§4.2: NaLIR clarifies ambiguous mappings with the user; DialSQL \"leverages human intelligence to boost the performance of existing algorithms via user interaction\".",
		Header: []string{"feedback", "accuracy", "user questions per query"},
	}
	a0, q0, err := evalRounds(0)
	if err != nil {
		return nil, err
	}
	a1, q1, err := evalRounds(1)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows,
		[]string{"none (top-1)", pct(a0), fmt.Sprintf("%.2f", q0)},
		[]string{"1 clarification round", pct(a1), fmt.Sprintf("%.2f", q1)},
	)
	t.Notes = append(t.Notes,
		"the corpus is built to be structurally ambiguous: every question admits an origin- and a destination-join reading",
		"expected shape: the clarification row is strictly higher, at the cost of one user question per query")
	return t, nil
}

// T8Datasets reproduces §6's benchmark-landscape discussion by generating
// each dataset style and tabulating its profile next to the cited numbers.
func T8Datasets(seed int64) (*Table, error) {
	domains := benchdata.Domains(seed)

	wiki := benchdata.WikiSQLStyle(domains[0], 300, seed)
	wikiStats := wiki.ComputeStats()

	spiderSets := benchdata.SpiderStyle(domains, 20, seed)
	var spider dataset.Stats
	spider.PerClass = map[nlq.Complexity]int{}
	tables := 0
	var tblSum float64
	for _, s := range spiderSets {
		st := s.ComputeStats()
		spider.Pairs += st.Pairs
		tables += st.Tables
		for k, v := range st.PerClass {
			spider.PerClass[k] += v
		}
		tblSum += st.AvgPerPair * float64(st.Pairs)
	}
	spider.Tables = tables
	if spider.Pairs > 0 {
		spider.AvgPerPair = tblSum / float64(spider.Pairs)
	}

	convTurns, convs := 0, 0
	for di, d := range domains {
		cs := benchdata.Conversations(d, 12, seed+int64(di)*3)
		convs += len(cs.Conversations)
		convTurns += cs.TotalTurns()
	}

	classMix := func(st dataset.Stats) string {
		return fmt.Sprintf("S%d/A%d/J%d/N%d",
			st.PerClass[nlq.Simple], st.PerClass[nlq.Aggregation],
			st.PerClass[nlq.Join], st.PerClass[nlq.Nested])
	}

	t := &Table{
		ID:     "T8",
		Title:  "Generated benchmark profiles vs the datasets the survey cites",
		Claim:  "§6: WikiSQL (80,654 pairs, 24,241 tables, low complexity), Spider (cross-domain, joins+nesting), SParC (4k+ coherent question sequences), CoSQL (30k+ turns) define the evaluation landscape.",
		Header: []string{"corpus style", "pairs/turns", "tables", "class mix (S/A/J/N)", "avg tables per query"},
	}
	t.Rows = append(t.Rows,
		[]string{"wikisql-style", fmt.Sprintf("%d", wikiStats.Pairs), fmt.Sprintf("%d", 1),
			classMix(wikiStats), fmt.Sprintf("%.2f", wikiStats.AvgPerPair)},
		[]string{"spider-style", fmt.Sprintf("%d", spider.Pairs), fmt.Sprintf("%d", spider.Tables),
			classMix(spider), fmt.Sprintf("%.2f", spider.AvgPerPair)},
		[]string{"sparc-style", fmt.Sprintf("%d turns / %d convs", convTurns, convs), "-", "-", "-"},
	)
	t.Notes = append(t.Notes,
		"the generators reproduce each dataset's *profile* (single-table & simple vs cross-domain & stratified vs multi-turn), scaled down for a laptop",
		"cited real sizes: WikiSQL 80,654 pairs / 24,241 tables; WikiTableQuestions 22,033 questions / 2,108 tables; SParC 4,000+ sequences / 200 DBs; CoSQL 30k+ turns")
	return t, nil
}

// T9Relaxation reproduces Lei et al. (2020) as the survey presents it:
// query relaxation over external lexical knowledge closes the gap between
// colloquial user vocabulary and KB terms.
func T9Relaxation(seed int64) (*Table, error) {
	d := benchdata.Medical(seed)
	lex := lexicon.New()
	// Domain taxonomy: colloquial/hyponym vocabulary → KB terms.
	lex.AddHypernym("statin", "drug")
	lex.AddHypernym("painkiller", "drug")
	lex.AddHypernym("sedative", "drug")
	lex.AddSynonyms("ailment", "condition")
	lex.AddHypernym("hypertension", "condition")
	lex.AddHypernym("diabetes", "condition")

	eng := sqlexec.New(d.DB)
	type item struct {
		q, kind string
		gold    string
	}
	items := []item{
		// Exact vocabulary.
		{"drugs with price over 100", "exact", "SELECT name FROM drug WHERE price > 100"},
		{"how many patients are there", "exact", "SELECT COUNT(*) FROM patient"},
		{"conditions with severity over 5", "exact", "SELECT name FROM condition WHERE severity > 5"},
		// Synonym vocabulary (index synonym tier).
		{"medications with price over 100", "synonym", "SELECT name FROM drug WHERE price > 100"},
		{"medicines with cost under 50", "synonym", "SELECT name FROM drug WHERE price < 50"},
		{"ailments with severity over 5", "synonym", "SELECT name FROM condition WHERE severity > 5"},
		// Hyponym/colloquial vocabulary: the gapped term is the only
		// route to the table, and the relaxed answer is the expanded set
		// (Lei et al.'s "expanding query answers").
		{"list all statins", "relaxed", "SELECT name FROM drug"},
		{"show the painkillers", "relaxed", "SELECT name FROM drug"},
		{"list the sedatives", "relaxed", "SELECT name FROM drug"},
	}

	evalMode := func(relax bool, kind string) (int, int, error) {
		in := athena.New(d.DB, lex)
		in.Relax = relax
		total, correct := 0, 0
		for _, it := range items {
			if it.kind != kind {
				continue
			}
			total++
			goldRes, err := eng.RunSQL(it.gold)
			if err != nil {
				return 0, 0, err
			}
			ins, err := in.Interpret(it.q)
			if err != nil {
				continue
			}
			best, _ := nlq.Best(ins)
			res, err := eng.Run(best.SQL)
			if err != nil {
				continue
			}
			if res.EqualUnordered(goldRes) {
				correct++
			}
		}
		return correct, total, nil
	}

	t := &Table{
		ID:     "T9",
		Title:  "Medical-KB accuracy by vocabulary gap, with relaxation on and off",
		Claim:  "§4.1: Lei et al.'s relaxation \"fills the gap between the terms stored in the KBs and the colloquial and imprecise terminology used in user queries\".",
		Header: []string{"vocabulary", "relaxation off", "relaxation on"},
	}
	for _, kind := range []string{"exact", "synonym", "relaxed"} {
		row := []string{kind}
		for _, relax := range []bool{false, true} {
			c, n, err := evalMode(relax, kind)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%d/%d", c, n))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"expected shape: the relaxed-vocabulary row flips from ~0 to high when relaxation is enabled; exact/synonym rows are unaffected")
	return t, nil
}

// T10QueryLog reproduces TEMPLAR (§3): priors mined from a SQL query log
// repair join-path inference when the schema admits several readings.
func T10QueryLog(seed int64) (*Table, error) {
	lex := lexicon.New()
	d := benchdata.Airports(seed)
	eng := sqlexec.New(d.DB)

	names, err := d.DB.Table("airport").DistinctText("name")
	if err != nil {
		return nil, err
	}

	run := func(applyLog bool) (float64, error) {
		in := parsenl.New(d.DB, lex)
		if applyLog {
			// The workload log: users historically join through origin.
			var log []*sqlparse.SelectStmt
			for i := 0; i < 10; i++ {
				log = append(log, sqlparse.MustParse(
					"SELECT hop.code FROM hop JOIN airport ON hop.origin_id = airport.id WHERE airport.city = 'Berlin'"))
			}
			in.Graph().ApplyQueryLog(log, 0.5, 0.05)
		}
		correct := 0
		for _, n := range names {
			gold, err := eng.RunSQL(fmt.Sprintf(
				"SELECT hop.code FROM hop JOIN airport ON hop.origin_id = airport.id WHERE airport.name = '%s'", n))
			if err != nil {
				return 0, err
			}
			ins, err := in.Interpret(fmt.Sprintf("hops of the airport %s", n))
			if err != nil {
				continue
			}
			best, _ := nlq.Best(ins)
			res, err := eng.Run(best.SQL)
			if err != nil {
				continue
			}
			if res.EqualUnordered(gold) {
				correct++
			}
		}
		return float64(correct) / float64(len(names)), nil
	}

	t := &Table{
		ID:     "T10",
		Title:  "Join-path inference accuracy with and without query-log priors",
		Claim:  "§3: TEMPLAR \"leverages information from the SQL query log to improve keyword mapping and join path inference\".",
		Header: []string{"configuration", "accuracy"},
	}
	off, err := run(false)
	if err != nil {
		return nil, err
	}
	on, err := run(true)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows,
		[]string{"no priors (structural tie-break)", pct(off)},
		[]string{"query-log priors (TEMPLAR-style)", pct(on)},
	)
	t.Notes = append(t.Notes,
		"the schema has two foreign keys from hop to airport; without priors the tie-break is arbitrary and wrong for the origin-reading workload",
		fmt.Sprintf("graph: %d tables", len(schemagraph.Build(d.DB).Tables())))
	return t, nil
}

// A1SketchVsSeq is the SQLNet-vs-Seq2SQL ablation (§4.2): a set ("sketch")
// decoder for WHERE clauses beats an order-sensitive decoder when
// condition order in the training data carries no signal.
func A1SketchVsSeq(seed int64) (*Table, error) {
	lex := lexicon.New()
	d := benchdata.Sales(seed)

	// Test corpus: multi-condition questions, where condition order is the
	// thing under test.
	raw := benchdata.WikiSQLStyle(d, 400, seed+88)
	test := &dataset.Set{Name: "two-cond", DB: d.DB}
	for _, p := range raw.Pairs {
		if strings.Contains(p.SQL.String(), " AND ") {
			test.Pairs = append(test.Pairs, p)
		}
		if len(test.Pairs) == 80 {
			break
		}
	}

	const repeats = 3
	t := &Table{
		ID:     "A1",
		Title:  "Ablation: order-free sketch decoding vs Seq2SQL-style ordered decoding on multi-condition questions",
		Claim:  "§4.2: SQLNet \"fundamentally avoids the sequence-to-sequence structure when ordering does not matter in SQL query conditions\".",
		Header: []string{"decoder", "execution accuracy (2-condition questions)"},
	}
	for _, ordered := range []bool{false, true} {
		var acc float64
		for rep := 0; rep < repeats; rep++ {
			cfg := mlsql.DefaultConfig()
			cfg.Ordered = ordered
			cfg.Seed = seed + int64(rep)*53
			train := synth.TrainingSet(d, 400, 1, lex, seed+5+int64(rep))
			model, _, err := mlsql.Train([]*dataset.Set{train}, cfg)
			if err != nil {
				return nil, err
			}
			in := mlsql.NewInterpreter(d.DB, model)
			in.FixedTable = d.Main
			r, err := eval.Evaluate(in, test)
			if err != nil {
				return nil, err
			}
			acc += r.Overall.Accuracy()
		}
		name := "sketch (SQLNet-style)"
		if ordered {
			name = "ordered (Seq2SQL-style)"
		}
		t.Rows = append(t.Rows, []string{name, pct(acc / repeats)})
	}
	t.Notes = append(t.Notes,
		"two-condition training questions randomize condition order in both NL and gold, so position-specific operator decoders receive contradictory supervision",
		"expected shape: the sketch row is at or above the ordered row")
	return t, nil
}

// A2TypeFeatures is the TypeSQL ablation (§4.2): type-aware features help
// the model understand entities and numbers.
func A2TypeFeatures(seed int64) (*Table, error) {
	lex := lexicon.New()
	domains := benchdata.Domains(seed)
	held := domains[len(domains)-1] // university
	test := benchdata.WikiSQLStyle(held, 80, seed+88)

	const repeats = 3
	t := &Table{
		ID:     "A2",
		Title:  "Ablation: TypeSQL-style typed feature channel, evaluated zero-shot on a held-out domain",
		Claim:  "§4.2: TypeSQL \"utiliz[es] types extracted from either knowledge graph or table content to help [the] model better understand entities and numbers in the question\".",
		Header: []string{"features", "held-out-domain execution accuracy"},
	}
	for _, typed := range []bool{true, false} {
		var acc float64
		for rep := 0; rep < repeats; rep++ {
			cfg := mlsql.DefaultConfig()
			cfg.TypeFeatures = typed
			cfg.Seed = seed + int64(rep)*71
			var trainSets []*dataset.Set
			for _, d := range domains[:len(domains)-1] {
				trainSets = append(trainSets, synth.TrainingSet(d, 200, 1, lex, seed+5+int64(rep)))
			}
			model, _, err := mlsql.Train(trainSets, cfg)
			if err != nil {
				return nil, err
			}
			in := mlsql.NewInterpreter(held.DB, model)
			in.FixedTable = held.Main
			r, err := eval.Evaluate(in, test)
			if err != nil {
				return nil, err
			}
			acc += r.Overall.Accuracy()
		}
		name := "typed channel on"
		if !typed {
			name = "typed channel off"
		}
		t.Rows = append(t.Rows, []string{name, pct(acc / repeats)})
	}
	t.Notes = append(t.Notes,
		"the cross-domain setting is where typing pays: <col>/<val>/<num> patterns transfer across schemas while raw n-grams do not",
		"expected shape: the typed row is at or above the untyped row")
	return t, nil
}
