// Package hmm implements a discrete hidden Markov model with supervised
// maximum-likelihood training (add-one smoothed), Viterbi decoding, and
// sequence scoring. It is the statistical core of the QUEST-style hybrid
// interpreter, which tags query tokens with entity roles learned from
// previous (validated) searches.
package hmm

import (
	"fmt"
	"math"
)

// Model is a first-order HMM over discrete observations. States and
// observations are dense indices; callers keep their own vocabularies.
type Model struct {
	NStates int
	NObs    int
	// logInit[s], logTrans[s][s'], logEmit[s][o] are log-probabilities.
	logInit  []float64
	logTrans [][]float64
	logEmit  [][]float64
}

// Train fits the model by smoothed frequency counting over labelled
// sequences: states[i][t] is the state of observation obs[i][t].
func Train(nStates, nObs int, obs [][]int, states [][]int) (*Model, error) {
	if len(obs) != len(states) {
		return nil, fmt.Errorf("hmm: %d observation sequences vs %d state sequences", len(obs), len(states))
	}
	if nStates <= 0 || nObs <= 0 {
		return nil, fmt.Errorf("hmm: invalid sizes %d states %d observations", nStates, nObs)
	}
	initC := make([]float64, nStates)
	transC := make([][]float64, nStates)
	emitC := make([][]float64, nStates)
	for s := 0; s < nStates; s++ {
		transC[s] = make([]float64, nStates)
		emitC[s] = make([]float64, nObs)
	}
	for i := range obs {
		if len(obs[i]) != len(states[i]) {
			return nil, fmt.Errorf("hmm: sequence %d length mismatch", i)
		}
		for t, o := range obs[i] {
			s := states[i][t]
			if s < 0 || s >= nStates || o < 0 || o >= nObs {
				return nil, fmt.Errorf("hmm: sequence %d position %d out of range (state %d, obs %d)", i, t, s, o)
			}
			emitC[s][o]++
			if t == 0 {
				initC[s]++
			} else {
				transC[states[i][t-1]][s]++
			}
		}
	}

	m := &Model{NStates: nStates, NObs: nObs}
	m.logInit = normalizeLog(initC)
	m.logTrans = make([][]float64, nStates)
	m.logEmit = make([][]float64, nStates)
	for s := 0; s < nStates; s++ {
		m.logTrans[s] = normalizeLog(transC[s])
		m.logEmit[s] = normalizeLog(emitC[s])
	}
	return m, nil
}

// normalizeLog converts counts to add-one-smoothed log-probabilities.
func normalizeLog(counts []float64) []float64 {
	total := 0.0
	for _, c := range counts {
		total += c + 1
	}
	out := make([]float64, len(counts))
	for i, c := range counts {
		out[i] = math.Log((c + 1) / total)
	}
	return out
}

// Viterbi returns the most probable state sequence for the observations
// and its log-probability.
func (m *Model) Viterbi(obs []int) ([]int, float64, error) {
	n := len(obs)
	if n == 0 {
		return nil, 0, nil
	}
	for _, o := range obs {
		if o < 0 || o >= m.NObs {
			return nil, 0, fmt.Errorf("hmm: observation %d out of range", o)
		}
	}
	v := make([][]float64, n)
	bp := make([][]int, n)
	for t := range v {
		v[t] = make([]float64, m.NStates)
		bp[t] = make([]int, m.NStates)
	}
	for s := 0; s < m.NStates; s++ {
		v[0][s] = m.logInit[s] + m.logEmit[s][obs[0]]
	}
	for t := 1; t < n; t++ {
		for s := 0; s < m.NStates; s++ {
			best, bi := math.Inf(-1), 0
			for p := 0; p < m.NStates; p++ {
				c := v[t-1][p] + m.logTrans[p][s]
				if c > best {
					best, bi = c, p
				}
			}
			v[t][s] = best + m.logEmit[s][obs[t]]
			bp[t][s] = bi
		}
	}
	best, bi := math.Inf(-1), 0
	for s := 0; s < m.NStates; s++ {
		if v[n-1][s] > best {
			best, bi = v[n-1][s], s
		}
	}
	path := make([]int, n)
	path[n-1] = bi
	for t := n - 1; t > 0; t-- {
		path[t-1] = bp[t][path[t]]
	}
	return path, best, nil
}

// LogProb scores a given state/observation sequence.
func (m *Model) LogProb(obs, states []int) (float64, error) {
	if len(obs) != len(states) {
		return 0, fmt.Errorf("hmm: length mismatch")
	}
	if len(obs) == 0 {
		return 0, nil
	}
	lp := m.logInit[states[0]] + m.logEmit[states[0]][obs[0]]
	for t := 1; t < len(obs); t++ {
		lp += m.logTrans[states[t-1]][states[t]] + m.logEmit[states[t]][obs[t]]
	}
	return lp, nil
}
