package hmm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// A toy weather model: states {rain, sun}, observations {umbrella, none}.
func toyModel(t *testing.T) *Model {
	t.Helper()
	// Hand-built training data with strong correlations.
	var obs, states [][]int
	for i := 0; i < 50; i++ {
		obs = append(obs, []int{0, 0, 1, 1})       // umbrella umbrella none none
		states = append(states, []int{0, 0, 1, 1}) // rain rain sun sun
	}
	m, err := Train(2, 2, obs, states)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestViterbiRecoversPattern(t *testing.T) {
	m := toyModel(t)
	path, lp, err := m.Viterbi([]int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 1, 1}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if lp >= 0 {
		t.Errorf("log prob = %v", lp)
	}
}

func TestViterbiEmpty(t *testing.T) {
	m := toyModel(t)
	path, _, err := m.Viterbi(nil)
	if err != nil || path != nil {
		t.Errorf("empty viterbi = %v, %v", path, err)
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(2, 2, [][]int{{0}}, [][]int{{0, 1}}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Train(2, 2, [][]int{{5}}, [][]int{{0}}); err == nil {
		t.Error("out-of-range observation accepted")
	}
	if _, err := Train(0, 2, nil, nil); err == nil {
		t.Error("zero states accepted")
	}
}

func TestViterbiValidation(t *testing.T) {
	m := toyModel(t)
	if _, _, err := m.Viterbi([]int{9}); err == nil {
		t.Error("out-of-range observation accepted")
	}
}

// Property: the Viterbi path is at least as probable as any sampled path.
func TestPropertyViterbiOptimal(t *testing.T) {
	m := toyModel(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		obs := make([]int, n)
		for i := range obs {
			obs[i] = r.Intn(2)
		}
		path, best, err := m.Viterbi(obs)
		if err != nil {
			return false
		}
		vp, err := m.LogProb(obs, path)
		if err != nil || math.Abs(vp-best) > 1e-9 {
			return false
		}
		for trial := 0; trial < 20; trial++ {
			rnd := make([]int, n)
			for i := range rnd {
				rnd[i] = r.Intn(2)
			}
			lp, err := m.LogProb(obs, rnd)
			if err != nil {
				return false
			}
			if lp > best+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSmoothingHandlesUnseen(t *testing.T) {
	// Training never shows observation 1 in state 0; smoothed decode must
	// still work without -Inf explosions.
	m, err := Train(2, 2, [][]int{{0, 0}}, [][]int{{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, lp, err := m.Viterbi([]int{1, 1}); err != nil || lp == 0 {
		t.Errorf("unseen decode: lp=%v err=%v", lp, err)
	}
}
