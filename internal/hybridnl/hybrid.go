// Package hybridnl implements the tutorial's hybrid family, which
// combines entity-based and learning-based understanding in a multi-step
// strategy. Two hybrids are provided:
//
//   - Quest: a QUEST-style interpreter — an HMM, trained on previous
//     (validated) searches, tags query tokens with entity roles; heuristic
//     rules then validate relationships against the schema graph and
//     assemble SQL. Classes 1–3.
//   - Ensemble: a filtering hybrid — a high-precision entity-based
//     primary answers when confident, otherwise a learning-based fallback
//     takes over, trading precision for recall exactly as Section 6 of
//     the tutorial frames the open problem.
package hybridnl

import (
	"fmt"
	"sort"
	"strings"

	"nlidb/internal/dataset"
	"nlidb/internal/hmm"
	"nlidb/internal/invindex"
	"nlidb/internal/lexicon"
	"nlidb/internal/nlp"
	"nlidb/internal/nlq"
	"nlidb/internal/schemagraph"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlparse"
)

// Token roles (HMM states).
const (
	roleO = iota
	roleTable
	roleColumn
	roleValue
	roleNum
	numRoles
)

// Observation signatures.
const (
	obsStop = iota
	obsNumber
	obsTableOnly
	obsColumnOnly
	obsValueOnly
	obsTableColumn
	obsColumnValue
	obsTableValue
	obsAll
	obsUnknownWord
	obsComparative
	obsPrep
	numObs
)

// Quest is the HMM+rules hybrid interpreter.
type Quest struct {
	db    *sqldata.Database
	ix    *invindex.Index
	graph *schemagraph.Graph
	model *hmm.Model
	opts  invindex.LookupOptions
}

// NewQuest trains the role HMM on a corpus of previous searches (pairs
// whose gold SQL supplies the token labels) and returns the interpreter.
func NewQuest(db *sqldata.Database, lex *lexicon.Lexicon, history []dataset.Pair) (*Quest, error) {
	q := &Quest{
		db:    db,
		ix:    invindex.Build(db, lex),
		graph: schemagraph.Build(db),
		opts:  invindex.DefaultOptions(),
	}
	var obs, states [][]int
	for _, p := range history {
		o, s := q.labelPair(p)
		if len(o) > 0 {
			obs = append(obs, o)
			states = append(states, s)
		}
	}
	if len(obs) == 0 {
		return nil, fmt.Errorf("hybridnl: no usable training history")
	}
	m, err := hmm.Train(numRoles, numObs, obs, states)
	if err != nil {
		return nil, err
	}
	q.model = m
	return q, nil
}

// signature maps a token to its observation id via index lookups.
func (q *Quest) signature(t nlp.Token) int {
	switch {
	case t.Kind == nlp.KindNumber:
		return obsNumber
	case t.IsStop():
		return obsStop
	case t.POS == nlp.POSComparative || t.POS == nlp.POSSuperlative:
		return obsComparative
	case t.POS == nlp.POSPrep:
		return obsPrep
	}
	var hasT, hasC, hasV bool
	for _, m := range q.ix.Lookup(t.Lower, q.opts) {
		switch m.Kind {
		case invindex.KindTable:
			hasT = true
		case invindex.KindColumn:
			hasC = true
		case invindex.KindValue:
			hasV = true
		}
	}
	switch {
	case hasT && hasC && hasV:
		return obsAll
	case hasT && hasC:
		return obsTableColumn
	case hasC && hasV:
		return obsColumnValue
	case hasT && hasV:
		return obsTableValue
	case hasT:
		return obsTableOnly
	case hasC:
		return obsColumnOnly
	case hasV:
		return obsValueOnly
	default:
		return obsUnknownWord
	}
}

// labelPair aligns a question with its gold SQL to produce a supervised
// role sequence (the QUEST "validated previous search").
func (q *Quest) labelPair(p dataset.Pair) (obs, states []int) {
	if p.SQL == nil || p.SQL.From == nil {
		return nil, nil
	}
	tables := map[string]bool{}
	for _, tr := range p.SQL.From.Tables() {
		tables[nlp.Stem(strings.ToLower(tr.Name))] = true
	}
	columns := map[string]bool{}
	values := map[string]bool{}
	p.SQL.WalkExprs(func(e sqlparse.Expr) {
		switch x := e.(type) {
		case *sqlparse.ColumnRef:
			for _, w := range strings.Fields(nlp.NormalizeIdent(x.Column)) {
				columns[nlp.Stem(w)] = true
			}
		case *sqlparse.Literal:
			if !x.Val.Null && x.Val.T == sqldata.TypeText {
				for _, w := range strings.Fields(strings.ToLower(x.Val.Text())) {
					values[nlp.Stem(w)] = true
				}
			}
		}
	})

	toks := nlp.Tag(nlp.Tokenize(p.Question))
	for _, t := range toks {
		if t.Kind == nlp.KindPunct {
			continue
		}
		obs = append(obs, q.signature(t))
		switch {
		case t.Kind == nlp.KindNumber:
			states = append(states, roleNum)
		case values[t.Stem]:
			states = append(states, roleValue)
		case columns[t.Stem]:
			states = append(states, roleColumn)
		case tables[t.Stem]:
			states = append(states, roleTable)
		default:
			states = append(states, roleO)
		}
	}
	return obs, states
}

// Name implements nlq.Interpreter.
func (q *Quest) Name() string { return "quest" }

// Interpret tags roles with the HMM, filters index matches by role, and
// assembles SQL with schema-graph-validated relationships.
func (q *Quest) Interpret(question string) ([]nlq.Interpretation, error) {
	a := nlq.Analyze(question, q.ix, q.opts)
	toks := a.Tokens

	var seqToks []nlp.Token
	var obs []int
	for _, t := range toks {
		if t.Kind == nlp.KindPunct {
			continue
		}
		seqToks = append(seqToks, t)
		obs = append(obs, q.signature(t))
	}
	if len(obs) == 0 {
		return nil, fmt.Errorf("%w: empty question", nlq.ErrNoInterpretation)
	}
	path, lp, err := q.model.Viterbi(obs)
	if err != nil {
		return nil, err
	}
	roleAt := map[int]int{} // token position → role
	for i, t := range seqToks {
		roleAt[t.Pos] = path[i]
	}

	// Role-filtered evidence.
	required := map[string]bool{}
	anchor := ""
	var where []sqlparse.Expr
	var projCols [][2]string
	filters := map[string]bool{}

	pickKind := func(sp nlq.SpanMatch, kind invindex.Kind) *invindex.Match {
		for i := range sp.Matches {
			if sp.Matches[i].Kind == kind {
				return &sp.Matches[i]
			}
		}
		return nil
	}

	for _, sp := range a.Spans {
		role := roleAt[sp.Start]
		switch role {
		case roleTable:
			if m := pickKind(sp, invindex.KindTable); m != nil {
				lt := strings.ToLower(m.Table)
				required[lt] = true
				if anchor == "" {
					anchor = lt
				}
				continue
			}
		case roleColumn:
			if m := pickKind(sp, invindex.KindColumn); m != nil {
				lt, lc := strings.ToLower(m.Table), strings.ToLower(m.Column)
				projCols = append(projCols, [2]string{lt, lc})
				required[lt] = true
				continue
			}
		case roleValue:
			if m := pickKind(sp, invindex.KindValue); m != nil {
				lt, lc := strings.ToLower(m.Table), strings.ToLower(m.Column)
				required[lt] = true
				filters[lt+"."+lc] = true
				where = append(where, &sqlparse.BinaryExpr{
					Op: "=",
					L:  &sqlparse.ColumnRef{Table: lt, Column: lc},
					R:  &sqlparse.Literal{Val: sqldata.NewText(m.Value)},
				})
				continue
			}
		}
		// Fallback: trust the span's own best reading.
		m := sp.Best()
		lt := strings.ToLower(m.Table)
		switch m.Kind {
		case invindex.KindTable:
			required[lt] = true
			if anchor == "" {
				anchor = lt
			}
		case invindex.KindColumn:
			projCols = append(projCols, [2]string{lt, strings.ToLower(m.Column)})
			required[lt] = true
		case invindex.KindValue:
			lc := strings.ToLower(m.Column)
			required[lt] = true
			filters[lt+"."+lc] = true
			where = append(where, &sqlparse.BinaryExpr{
				Op: "=",
				L:  &sqlparse.ColumnRef{Table: lt, Column: lc},
				R:  &sqlparse.Literal{Val: sqldata.NewText(m.Value)},
			})
		}
	}

	if anchor == "" {
		for t := range required {
			if anchor == "" || t < anchor {
				anchor = t
			}
		}
	}
	if anchor == "" {
		return nil, fmt.Errorf("%w: no entities identified", nlq.ErrNoInterpretation)
	}

	// Numeric comparisons via shared rules.
	for _, cmp := range a.Comparisons {
		lt, lc := q.resolveColumn(cmp.ColumnHint, anchor, required)
		if lc == "" {
			lt, lc = anchor, firstNumericColumn(q.db.Table(anchor).Schema)
		}
		if lc == "" {
			continue
		}
		required[lt] = true
		filters[lt+"."+lc] = true
		where = append(where, &sqlparse.BinaryExpr{
			Op: cmp.Op,
			L:  &sqlparse.ColumnRef{Table: lt, Column: lc},
			R:  &sqlparse.Literal{Val: numLiteral(cmp.Value)},
		})
	}

	// Relationship validation: every required table must connect to the
	// anchor through foreign keys — the QUEST heuristic-rule step.
	tables := make([]string, 0, len(required))
	for t := range required {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	from, err := q.graph.BuildFrom(tables)
	if err != nil {
		return nil, fmt.Errorf("%w: relationship validation failed: %v", nlq.ErrNoInterpretation, err)
	}

	stmt := sqlparse.NewSelect()
	stmt.From = from
	stmt.Where = conjoin(where)
	qualify := len(from.Tables()) > 1

	mkCol := func(t, c string) *sqlparse.ColumnRef {
		if qualify {
			return &sqlparse.ColumnRef{Table: t, Column: c}
		}
		return &sqlparse.ColumnRef{Column: c}
	}

	// Aggregation via shared rule cues.
	if len(a.AggCues) > 0 {
		var groupCols [][2]string
		for _, g := range a.GroupCues {
			if t, c := q.columnForToken(a, g.TokenPos, anchor, required); c != "" {
				groupCols = append(groupCols, [2]string{t, c})
			}
		}
		for _, gc := range groupCols {
			stmt.Items = append(stmt.Items, sqlparse.SelectItem{Expr: mkCol(gc[0], gc[1])})
			stmt.GroupBy = append(stmt.GroupBy, mkCol(gc[0], gc[1]))
		}
		for _, cue := range a.AggCues {
			var target [2]string
			for i := cue.TokenPos + 1; i < len(toks) && i <= cue.TokenPos+4; i++ {
				if roleAt[i] == roleColumn {
					if t, c := q.columnForToken(a, i, anchor, required); c != "" {
						target = [2]string{t, c}
						break
					}
				}
			}
			var e sqlparse.Expr
			if target[1] == "" {
				if cue.Func != "COUNT" {
					if c := firstNumericColumn(q.db.Table(anchor).Schema); c != "" {
						target = [2]string{anchor, c}
					}
				}
			}
			if target[1] == "" {
				e = &sqlparse.FuncCall{Name: "COUNT", Star: true}
			} else {
				e = &sqlparse.FuncCall{Name: cue.Func, Args: []sqlparse.Expr{mkCol(target[0], target[1])}}
			}
			stmt.Items = append(stmt.Items, sqlparse.SelectItem{Expr: e})
		}
	} else {
		seen := map[string]bool{}
		for _, pc := range projCols {
			k := pc[0] + "." + pc[1]
			if filters[k] || seen[k] {
				continue
			}
			seen[k] = true
			stmt.Items = append(stmt.Items, sqlparse.SelectItem{Expr: mkCol(pc[0], pc[1])})
		}
		if len(stmt.Items) == 0 {
			if c := firstTextColumn(q.db.Table(anchor).Schema); c != "" {
				stmt.Items = []sqlparse.SelectItem{{Expr: mkCol(anchor, c)}}
			} else {
				stmt.Items = []sqlparse.SelectItem{{Star: true}}
			}
		}
	}

	// Top-k via shared cue.
	if a.TopK != nil {
		word := toks[a.TopK.TokenPos].Lower
		if word == "top" || word == "bottom" || word == "first" || word == "last" {
			// The ordering key follows a later "by" phrase ("top 3
			// products by price") or directly follows the cue.
			var ot, oc string
			for _, g := range a.GroupCues {
				if g.TokenPos > a.TopK.TokenPos {
					if t, c := q.columnForToken(a, g.TokenPos, anchor, required); c != "" {
						ot, oc = t, c
						break
					}
				}
			}
			if oc == "" {
				if t, c := q.columnForToken(a, a.TopK.TokenPos+1, anchor, required); c != "" {
					ot, oc = t, c
				}
			}
			if oc != "" {
				stmt.OrderBy = []sqlparse.OrderItem{{Expr: mkCol(ot, oc), Desc: a.TopK.Desc}}
				stmt.Limit = a.TopK.K
			}
		}
	}

	// Confidence: normalized HMM path probability blended with coverage.
	conf := 0.5 + 0.5/(1.0+(-lp)/float64(len(obs)*4))
	return []nlq.Interpretation{{
		SQL:         stmt,
		Score:       conf,
		Explanation: fmt.Sprintf("HMM role tagging (logP=%.1f) + relationship rules over %v", lp, tables),
	}}, nil
}

func (q *Quest) resolveColumn(word, anchor string, required map[string]bool) (string, string) {
	if word == "" {
		return "", ""
	}
	opts := q.opts
	opts.KindFilter = []invindex.Kind{invindex.KindColumn}
	ms := q.ix.Lookup(word, opts)
	for _, m := range ms {
		if strings.EqualFold(m.Table, anchor) {
			return strings.ToLower(m.Table), strings.ToLower(m.Column)
		}
	}
	for _, m := range ms {
		if required[strings.ToLower(m.Table)] {
			return strings.ToLower(m.Table), strings.ToLower(m.Column)
		}
	}
	if len(ms) > 0 {
		return strings.ToLower(ms[0].Table), strings.ToLower(ms[0].Column)
	}
	return "", ""
}

func (q *Quest) columnForToken(a *nlq.Analysis, pos int, anchor string, required map[string]bool) (string, string) {
	if pos < 0 || pos >= len(a.Tokens) {
		return "", ""
	}
	if sp := a.SpanAt(pos); sp != nil {
		for _, m := range sp.Matches {
			if m.Kind == invindex.KindColumn {
				return strings.ToLower(m.Table), strings.ToLower(m.Column)
			}
		}
		for _, m := range sp.Matches {
			if m.Kind == invindex.KindTable {
				if c := firstTextColumn(q.db.Table(m.Table).Schema); c != "" {
					return strings.ToLower(m.Table), c
				}
			}
		}
	}
	return q.resolveColumn(a.Tokens[pos].Lower, anchor, required)
}

// Ensemble is the filtering hybrid: the entity-based primary answers when
// confident; otherwise the learning-based fallback does.
type Ensemble struct {
	Primary   nlq.Interpreter
	Fallback  nlq.Interpreter
	Threshold float64
}

// Name implements nlq.Interpreter.
func (e *Ensemble) Name() string { return "hybrid" }

// Interpret delegates by confidence.
func (e *Ensemble) Interpret(question string) ([]nlq.Interpretation, error) {
	prim, perr := e.Primary.Interpret(question)
	if perr == nil {
		if best, err := nlq.Best(prim); err == nil && best.Score >= e.Threshold {
			return prim, nil
		}
	}
	fall, ferr := e.Fallback.Interpret(question)
	if ferr == nil {
		// Keep the primary's readings behind the fallback's.
		return append(fall, prim...), nil
	}
	if perr == nil && len(prim) > 0 {
		return prim, nil
	}
	return nil, fmt.Errorf("%w: both hybrid stages failed (%v; %v)", nlq.ErrNoInterpretation, perr, ferr)
}

func firstTextColumn(s *sqldata.Schema) string {
	for _, c := range s.Columns {
		if c.Type == sqldata.TypeText {
			return strings.ToLower(c.Name)
		}
	}
	return ""
}

func firstNumericColumn(s *sqldata.Schema) string {
	for _, c := range s.Columns {
		if c.Type.Numeric() && !c.PrimaryKey {
			return strings.ToLower(c.Name)
		}
	}
	return ""
}

func numLiteral(v float64) sqldata.Value {
	if v == float64(int64(v)) {
		return sqldata.NewInt(int64(v))
	}
	return sqldata.NewFloat(v)
}

func conjoin(exprs []sqlparse.Expr) sqlparse.Expr {
	var out sqlparse.Expr
	for _, e := range exprs {
		if out == nil {
			out = e
		} else {
			out = &sqlparse.BinaryExpr{Op: "AND", L: out, R: e}
		}
	}
	return out
}
