package hybridnl

import (
	"errors"
	"testing"

	"nlidb/internal/athena"
	"nlidb/internal/benchdata"
	"nlidb/internal/lexicon"
	"nlidb/internal/nlq"
	"nlidb/internal/sqlexec"
	"nlidb/internal/sqlparse"
)

func questOverSales(t *testing.T) (*Quest, *benchdata.Domain) {
	t.Helper()
	d := benchdata.Sales(50)
	history := d.GeneratePairs(120, 7, nlq.Simple, nlq.Aggregation, nlq.Join)
	q, err := NewQuest(d.DB, lexicon.New(), history)
	if err != nil {
		t.Fatal(err)
	}
	return q, d
}

func TestQuestSimpleSelection(t *testing.T) {
	q, d := questOverSales(t)
	ins, err := q.Interpret("list customers with city Berlin")
	if err != nil {
		t.Fatal(err)
	}
	best, _ := nlq.Best(ins)
	res, err := sqlexec.New(d.DB).Run(best.SQL)
	if err != nil {
		t.Fatalf("exec %s: %v", best.SQL, err)
	}
	gold, _ := sqlexec.New(d.DB).RunSQL("SELECT name FROM customer WHERE city = 'Berlin'")
	if !res.EqualUnordered(gold) {
		t.Fatalf("result mismatch: %s", best.SQL)
	}
}

func TestQuestAggregation(t *testing.T) {
	q, d := questOverSales(t)
	ins, err := q.Interpret("how many products are there")
	if err != nil {
		t.Fatal(err)
	}
	best, _ := nlq.Best(ins)
	res, err := sqlexec.New(d.DB).Run(best.SQL)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("count: %v %v", res, err)
	}
	if res.Rows[0][0].Int() != int64(d.DB.Table("product").Len()) {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
}

func TestQuestJoin(t *testing.T) {
	q, d := questOverSales(t)
	ins, err := q.Interpret("products of the category toys")
	if err != nil {
		t.Fatal(err)
	}
	best, _ := nlq.Best(ins)
	if len(best.SQL.From.Joins) == 0 {
		t.Fatalf("no join: %s", best.SQL)
	}
	if _, err := sqlexec.New(d.DB).Run(best.SQL); err != nil {
		t.Fatalf("exec: %v", err)
	}
}

func TestQuestNoNesting(t *testing.T) {
	q, _ := questOverSales(t)
	ins, err := q.Interpret("products with price greater than the average price")
	if err != nil {
		return
	}
	for _, in := range ins {
		if len(in.SQL.Subqueries()) != 0 {
			t.Fatalf("quest nested: %s", in.SQL)
		}
	}
}

func TestQuestComparisonsAndTopK(t *testing.T) {
	q, d := questOverSales(t)
	if q.Name() != "quest" {
		t.Errorf("name = %s", q.Name())
	}
	ins, err := q.Interpret("customers with credit over 20000")
	if err != nil {
		t.Fatal(err)
	}
	best, _ := nlq.Best(ins)
	res, err := sqlexec.New(d.DB).Run(best.SQL)
	if err != nil {
		t.Fatalf("exec %s: %v", best.SQL, err)
	}
	gold, _ := sqlexec.New(d.DB).RunSQL("SELECT name FROM customer WHERE credit > 20000")
	if !res.EqualUnordered(gold) {
		t.Errorf("comparison mismatch: %s", best.SQL)
	}

	ins, err = q.Interpret("top 3 products by price")
	if err != nil {
		t.Fatal(err)
	}
	best, _ = nlq.Best(ins)
	if best.SQL.Limit != 3 || len(best.SQL.OrderBy) != 1 {
		t.Errorf("topk = %s", best.SQL)
	}
	if _, err := sqlexec.New(d.DB).Run(best.SQL); err != nil {
		t.Errorf("topk exec: %v", err)
	}
}

func TestQuestGroupBy(t *testing.T) {
	q, d := questOverSales(t)
	ins, err := q.Interpret("average credit of customers by segment")
	if err != nil {
		t.Fatal(err)
	}
	best, _ := nlq.Best(ins)
	res, err := sqlexec.New(d.DB).Run(best.SQL)
	if err != nil {
		t.Fatalf("exec %s: %v", best.SQL, err)
	}
	if len(best.SQL.GroupBy) != 1 || len(res.Rows) < 2 {
		t.Errorf("group by: %s → %d rows", best.SQL, len(res.Rows))
	}
}

func TestQuestRejectsUnrelatable(t *testing.T) {
	q, _ := questOverSales(t)
	_, err := q.Interpret("zzz qqq xxx")
	if !errors.Is(err, nlq.ErrNoInterpretation) {
		t.Fatalf("err = %v", err)
	}
}

func TestQuestTrainingRequired(t *testing.T) {
	d := benchdata.Sales(50)
	if _, err := NewQuest(d.DB, lexicon.New(), nil); err == nil {
		t.Fatal("empty history accepted")
	}
}

// stub interpreter for ensemble tests.
type stub struct {
	name string
	ins  []nlq.Interpretation
	err  error
}

func (s *stub) Name() string { return s.name }
func (s *stub) Interpret(string) ([]nlq.Interpretation, error) {
	return s.ins, s.err
}

func TestEnsembleUsesPrimaryWhenConfident(t *testing.T) {
	p := &stub{name: "p", ins: []nlq.Interpretation{{Score: 0.9, SQL: sqlparse.MustParse("SELECT a FROM t")}}}
	f := &stub{name: "f", ins: []nlq.Interpretation{{Score: 0.7, SQL: sqlparse.MustParse("SELECT b FROM t")}}}
	e := &Ensemble{Primary: p, Fallback: f, Threshold: 0.8}
	ins, err := e.Interpret("q")
	if err != nil || ins[0].SQL.String() != "SELECT a FROM t" {
		t.Fatalf("ensemble = %v, %v", ins, err)
	}
}

func TestEnsembleFallsBack(t *testing.T) {
	p := &stub{name: "p", ins: []nlq.Interpretation{{Score: 0.3, SQL: sqlparse.MustParse("SELECT a FROM t")}}}
	f := &stub{name: "f", ins: []nlq.Interpretation{{Score: 0.7, SQL: sqlparse.MustParse("SELECT b FROM t")}}}
	e := &Ensemble{Primary: p, Fallback: f, Threshold: 0.8}
	ins, err := e.Interpret("q")
	if err != nil || ins[0].SQL.String() != "SELECT b FROM t" {
		t.Fatalf("ensemble = %v, %v", ins, err)
	}
	// Primary readings stay available behind the fallback's.
	if len(ins) != 2 {
		t.Fatalf("merged readings = %d", len(ins))
	}
}

func TestEnsembleBothFail(t *testing.T) {
	p := &stub{name: "p", err: nlq.ErrNoInterpretation}
	f := &stub{name: "f", err: nlq.ErrNoInterpretation}
	e := &Ensemble{Primary: p, Fallback: f, Threshold: 0.5}
	if _, err := e.Interpret("q"); !errors.Is(err, nlq.ErrNoInterpretation) {
		t.Fatalf("err = %v", err)
	}
}

func TestEnsembleWithRealInterpreters(t *testing.T) {
	d := benchdata.Sales(50)
	primary := athena.New(d.DB, lexicon.New())
	fallback := athena.New(d.DB, lexicon.New()) // stands in for a trained model
	e := &Ensemble{Primary: primary, Fallback: fallback, Threshold: 0.95}
	ins, err := e.Interpret("customers with credit over 10000")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sqlexec.New(d.DB).Run(ins[0].SQL); err != nil {
		t.Fatalf("exec: %v", err)
	}
	if e.Name() != "hybrid" {
		t.Errorf("name = %s", e.Name())
	}
}
