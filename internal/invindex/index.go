// Package invindex builds an inverted index over a database's metadata
// (table and column names, with declared synonyms) and its data content
// (distinct text values). Keyword-driven interpreters in the style of
// SODA, QUICK, and BELA resolve natural-language tokens to schema elements
// and literals through this index, with exact, stem, synonym, and fuzzy
// lookup tiers.
package invindex

import (
	"sort"
	"strings"

	"nlidb/internal/lexicon"
	"nlidb/internal/nlp"
	"nlidb/internal/sqldata"
)

// Kind says what an index entry points at.
type Kind int

const (
	// KindTable is a table name entry.
	KindTable Kind = iota
	// KindColumn is a column name entry.
	KindColumn
	// KindValue is a data value entry (a distinct TEXT cell).
	KindValue
)

func (k Kind) String() string {
	switch k {
	case KindTable:
		return "table"
	case KindColumn:
		return "column"
	default:
		return "value"
	}
}

// Entry is one indexed object.
type Entry struct {
	Kind   Kind
	Table  string
	Column string // set for KindColumn and KindValue
	Value  string // set for KindValue: the original cell text
}

// key returns a deduplication identity for the entry.
func (e Entry) key() string {
	return e.Kind.String() + "\x00" + e.Table + "\x00" + e.Column + "\x00" + e.Value
}

// Match is a scored lookup hit.
type Match struct {
	Entry
	// Score in (0,1]; 1 is an exact match.
	Score float64
	// Via names the tier that produced the hit: exact, synonym, or fuzzy.
	Via string
}

// Index is an immutable inverted index; build once per database.
type Index struct {
	exact map[string][]Entry
	keys  []string // sorted normalized keys, for the fuzzy tier
	lex   *lexicon.Lexicon
}

// normPhrase stems each word of a phrase and joins with single spaces.
func normPhrase(s string) string {
	fields := strings.Fields(strings.ToLower(s))
	for i, f := range fields {
		fields[i] = nlp.Stem(f)
	}
	return strings.Join(fields, " ")
}

// Build indexes every table name, column name, declared synonym, and
// distinct text value of db. lex may be nil to disable the synonym tier.
func Build(db *sqldata.Database, lex *lexicon.Lexicon) *Index {
	ix := &Index{exact: make(map[string][]Entry), lex: lex}
	add := func(key string, e Entry) {
		k := normPhrase(key)
		if k == "" {
			return
		}
		for _, ex := range ix.exact[k] {
			if ex.key() == e.key() {
				return
			}
		}
		ix.exact[k] = append(ix.exact[k], e)
	}

	for _, t := range db.Tables() {
		s := t.Schema
		te := Entry{Kind: KindTable, Table: s.Name}
		add(nlp.NormalizeIdent(s.Name), te)
		for _, syn := range s.Synonyms {
			add(syn, te)
		}
		for _, c := range s.Columns {
			ce := Entry{Kind: KindColumn, Table: s.Name, Column: c.Name}
			add(nlp.NormalizeIdent(c.Name), ce)
			for _, syn := range c.Synonyms {
				add(syn, ce)
			}
			if c.Type == sqldata.TypeText {
				vals, err := t.DistinctText(c.Name)
				if err != nil {
					continue
				}
				for _, v := range vals {
					add(v, Entry{Kind: KindValue, Table: s.Name, Column: c.Name, Value: v})
				}
			}
		}
	}

	ix.keys = make([]string, 0, len(ix.exact))
	for k := range ix.exact {
		ix.keys = append(ix.keys, k)
	}
	sort.Strings(ix.keys)
	return ix
}

// LookupOptions tunes a lookup.
type LookupOptions struct {
	// FuzzyThreshold is the minimum string similarity for the fuzzy tier;
	// 0 disables fuzzy matching.
	FuzzyThreshold float64
	// NoSynonyms disables the synonym tier.
	NoSynonyms bool
	// KindFilter, when non-nil, keeps only entries of the listed kinds.
	KindFilter []Kind
}

// DefaultOptions enables synonyms and a 0.78 fuzzy threshold.
func DefaultOptions() LookupOptions { return LookupOptions{FuzzyThreshold: 0.78} }

// Lookup resolves a word or phrase to scored entries, best first.
// Tiers: exact/stem match (1.0), synonym match (0.9), fuzzy match
// (threshold–1.0, scaled by 0.85). Ties break deterministically by kind
// (table < column < value) then name.
func (ix *Index) Lookup(phrase string, opts LookupOptions) []Match {
	best := map[string]Match{}
	record := func(e Entry, score float64, via string) {
		if !kindAllowed(e.Kind, opts.KindFilter) {
			return
		}
		k := e.key()
		if m, ok := best[k]; !ok || score > m.Score {
			best[k] = Match{Entry: e, Score: score, Via: via}
		}
	}

	key := normPhrase(phrase)
	if key == "" {
		return nil
	}

	for _, e := range ix.exact[key] {
		record(e, 1.0, "exact")
	}

	if !opts.NoSynonyms && ix.lex != nil && !strings.Contains(key, " ") {
		for _, syn := range ix.lex.Synonyms(key) {
			if syn == key {
				continue
			}
			for _, e := range ix.exact[syn] {
				record(e, 0.9, "synonym")
			}
		}
	}

	if opts.FuzzyThreshold > 0 {
		for _, k := range ix.keys {
			if k == key {
				continue
			}
			var sim float64
			if strings.Contains(key, " ") || strings.Contains(k, " ") {
				// Trigram Jaccard penalizes uncovered words, so "in new
				// york" does not swallow the key "customer" and a lone
				// "york" does not match "new york".
				sim = nlp.TrigramJaccard(key, k)
			} else {
				sim = nlp.Similarity(key, k)
			}
			if sim >= opts.FuzzyThreshold {
				for _, e := range ix.exact[k] {
					record(e, 0.85*sim, "fuzzy")
				}
			}
		}
	}

	out := make([]Match, 0, len(best))
	for _, m := range best {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].key() < out[j].key()
	})
	return out
}

func kindAllowed(k Kind, filter []Kind) bool {
	if len(filter) == 0 {
		return true
	}
	for _, f := range filter {
		if f == k {
			return true
		}
	}
	return false
}

// Size returns the number of distinct normalized keys (for dataset stats).
func (ix *Index) Size() int { return len(ix.keys) }
