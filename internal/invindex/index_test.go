package invindex

import (
	"testing"

	"nlidb/internal/lexicon"
	"nlidb/internal/sqldata"
)

func demoDB(t testing.TB) *sqldata.Database {
	t.Helper()
	db := sqldata.NewDatabase("shop")
	cust, err := db.CreateTable(&sqldata.Schema{
		Name:     "customer",
		Synonyms: []string{"client"},
		Columns: []sqldata.Column{
			{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
			{Name: "name", Type: sqldata.TypeText},
			{Name: "city", Type: sqldata.TypeText},
			{Name: "annual_income", Type: sqldata.TypeFloat, Synonyms: []string{"salary", "earnings"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cust.MustInsert(sqldata.NewInt(1), sqldata.NewText("Alice Smith"), sqldata.NewText("Berlin"), sqldata.NewFloat(70000))
	cust.MustInsert(sqldata.NewInt(2), sqldata.NewText("Bob Jones"), sqldata.NewText("Munich"), sqldata.NewFloat(55000))
	cust.MustInsert(sqldata.NewInt(3), sqldata.NewText("Carol King"), sqldata.NewText("Berlin"), sqldata.NewFloat(91000))
	return db
}

func TestExactTableLookup(t *testing.T) {
	ix := Build(demoDB(t), lexicon.New())
	ms := ix.Lookup("customers", DefaultOptions()) // plural stems to customer
	if len(ms) == 0 || ms[0].Kind != KindTable || ms[0].Table != "customer" {
		t.Fatalf("Lookup(customers) = %+v", ms)
	}
	if ms[0].Score != 1.0 || ms[0].Via != "exact" {
		t.Errorf("stem match should score 1.0: %+v", ms[0])
	}
}

func TestColumnSynonymFromSchema(t *testing.T) {
	ix := Build(demoDB(t), lexicon.New())
	ms := ix.Lookup("salary", DefaultOptions())
	foundCol := false
	for _, m := range ms {
		if m.Kind == KindColumn && m.Column == "annual_income" {
			foundCol = true
		}
	}
	if !foundCol {
		t.Errorf("schema synonym salary→annual_income missing: %+v", ms)
	}
}

func TestLexiconSynonymTier(t *testing.T) {
	ix := Build(demoDB(t), lexicon.New())
	// "wage" is a lexicon synonym of "salary", which is a schema synonym
	// of annual_income.
	ms := ix.Lookup("wage", DefaultOptions())
	found := false
	for _, m := range ms {
		if m.Kind == KindColumn && m.Column == "annual_income" && m.Via == "synonym" {
			found = true
			if m.Score != 0.9 {
				t.Errorf("synonym score = %v", m.Score)
			}
		}
	}
	if !found {
		t.Errorf("lexicon synonym tier missed: %+v", ms)
	}
	// Table synonym via lexicon: "client" declared on schema, "buyer" via lexicon.
	ms = ix.Lookup("buyers", DefaultOptions())
	found = false
	for _, m := range ms {
		if m.Kind == KindTable && m.Table == "customer" {
			found = true
		}
	}
	if !found {
		t.Errorf("buyer→customer missed: %+v", ms)
	}
}

func TestValueLookup(t *testing.T) {
	ix := Build(demoDB(t), lexicon.New())
	ms := ix.Lookup("Berlin", DefaultOptions())
	if len(ms) == 0 || ms[0].Kind != KindValue || ms[0].Value != "Berlin" || ms[0].Column != "city" {
		t.Fatalf("Lookup(Berlin) = %+v", ms)
	}
	ms = ix.Lookup("alice smith", DefaultOptions())
	if len(ms) == 0 || ms[0].Value != "Alice Smith" {
		t.Fatalf("multi-word value lookup = %+v", ms)
	}
}

func TestFuzzyLookup(t *testing.T) {
	ix := Build(demoDB(t), lexicon.New())
	ms := ix.Lookup("Berln", DefaultOptions()) // typo
	found := false
	for _, m := range ms {
		if m.Kind == KindValue && m.Value == "Berlin" && m.Via == "fuzzy" {
			found = true
			if m.Score >= 1.0 || m.Score < 0.5 {
				t.Errorf("fuzzy score = %v", m.Score)
			}
		}
	}
	if !found {
		t.Errorf("fuzzy tier missed typo: %+v", ms)
	}
	// Fuzzy disabled.
	ms = ix.Lookup("Berln", LookupOptions{})
	for _, m := range ms {
		if m.Via == "fuzzy" {
			t.Errorf("fuzzy hit with fuzzy disabled: %+v", m)
		}
	}
}

func TestKindFilter(t *testing.T) {
	ix := Build(demoDB(t), lexicon.New())
	opts := DefaultOptions()
	opts.KindFilter = []Kind{KindColumn}
	for _, m := range ix.Lookup("city", opts) {
		if m.Kind != KindColumn {
			t.Errorf("filter leaked %v", m.Kind)
		}
	}
}

func TestNoMatch(t *testing.T) {
	ix := Build(demoDB(t), lexicon.New())
	if ms := ix.Lookup("zzzqqqxxx", DefaultOptions()); len(ms) != 0 {
		t.Errorf("garbage matched: %+v", ms)
	}
	if ms := ix.Lookup("", DefaultOptions()); ms != nil {
		t.Errorf("empty phrase matched: %+v", ms)
	}
}

func TestDeterministicOrder(t *testing.T) {
	ix := Build(demoDB(t), lexicon.New())
	a := ix.Lookup("name", DefaultOptions())
	b := ix.Lookup("name", DefaultOptions())
	if len(a) != len(b) {
		t.Fatal("nondeterministic result count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic order at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSizeAndDedup(t *testing.T) {
	db := demoDB(t)
	ix := Build(db, nil)
	if ix.Size() == 0 {
		t.Fatal("empty index")
	}
	// Berlin appears twice in data but must index once.
	ms := ix.Lookup("berlin", LookupOptions{})
	count := 0
	for _, m := range ms {
		if m.Kind == KindValue && m.Value == "Berlin" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("Berlin indexed %d times", count)
	}
}
