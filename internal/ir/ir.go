// Package ir defines the ontology-level intermediate query representation
// used by the entity-based interpreters, and compiles it to executable SQL.
// It plays the role of ATHENA's Ontology Query Language: interpreters emit
// IR in terms of concepts and properties; the compiler resolves concepts to
// tables, infers join paths through the schema graph, and emits a SELECT
// statement — including GROUP BY/HAVING, ORDER BY/LIMIT, scalar and IN
// sub-queries, and (NOT) EXISTS nesting for the BI query class.
package ir

import (
	"fmt"
	"sort"
	"strings"

	"nlidb/internal/ontology"
	"nlidb/internal/schemagraph"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlparse"
)

// Agg enumerates aggregate functions; AggNone means a plain property.
type Agg string

const (
	AggNone  Agg = ""
	AggCount Agg = "COUNT"
	AggSum   Agg = "SUM"
	AggAvg   Agg = "AVG"
	AggMin   Agg = "MIN"
	AggMax   Agg = "MAX"
)

// PropRef names a concept's property.
type PropRef struct {
	Concept  string
	Property string
}

func (p PropRef) String() string { return p.Concept + "." + p.Property }

// Projection is one output column: an aggregate, a property, or COUNT(*)
// over the anchor concept (Star).
type Projection struct {
	Agg      Agg
	Prop     *PropRef
	Star     bool // COUNT(*) when Agg == AggCount
	Distinct bool
	Alias    string
}

// Operand is a comparison right-hand side: a literal, a property, or a
// nested scalar sub-query.
type Operand struct {
	Value *sqldata.Value
	Prop  *PropRef
	Sub   *Query
}

// Condition is one predicate. When Agg is set the condition constrains
// the aggregated group (compiles into HAVING); otherwise it is a row
// filter (WHERE).
type Condition struct {
	Agg  Agg
	Prop PropRef
	// Op is one of = != < <= > >= like between in.
	Op string
	// Not negates the predicate (NOT IN, NOT LIKE, NOT BETWEEN).
	Not     bool
	Operand Operand
	// Hi is the upper bound for between.
	Hi *Operand
	// InValues holds the literal list for Op == "in" without a sub-query.
	InValues []sqldata.Value
}

// ExistsCond asserts (non-)existence of related instances of a concept,
// optionally filtered; it compiles to a correlated (NOT) EXISTS sub-query.
type ExistsCond struct {
	Concept    string
	Not        bool
	Conditions []Condition
}

// OrderSpec is one ORDER BY key at the IR level.
type OrderSpec struct {
	Agg  Agg
	Prop *PropRef
	Star bool // order by COUNT(*)
	Desc bool
}

// Query is the full intermediate representation.
type Query struct {
	// Anchor is the primary concept the question is about; it decides the
	// FROM anchor when projections alone don't pin the tables.
	Anchor      string
	Projections []Projection
	Conditions  []Condition
	Exists      []ExistsCond
	GroupBy     []PropRef
	OrderBy     []OrderSpec
	Limit       int // negative: none
	Distinct    bool
}

// NewQuery returns an IR query with no limit.
func NewQuery(anchor string) *Query { return &Query{Anchor: anchor, Limit: -1} }

// Compiler compiles IR to SQL for one ontology + schema graph pair.
type Compiler struct {
	Ont   *ontology.Ontology
	Graph *schemagraph.Graph
}

// Compile lowers the IR query to a SELECT statement.
func (c *Compiler) Compile(q *Query) (*sqlparse.SelectStmt, error) {
	if len(q.Projections) == 0 {
		return nil, fmt.Errorf("ir: query has no projections")
	}

	tables, err := c.collectTables(q)
	if err != nil {
		return nil, err
	}
	from, err := c.Graph.BuildFrom(tables)
	if err != nil {
		return nil, err
	}

	stmt := sqlparse.NewSelect()
	stmt.From = from
	stmt.Distinct = q.Distinct
	stmt.Limit = q.Limit

	anchorTable, err := c.table(q.Anchor)
	if err != nil && q.Anchor != "" {
		return nil, err
	}

	for _, p := range q.Projections {
		item, err := c.projection(p, anchorTable)
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
	}

	var where, having []sqlparse.Expr
	for _, cond := range q.Conditions {
		expr, isHaving, err := c.condition(cond)
		if err != nil {
			return nil, err
		}
		if isHaving {
			having = append(having, expr)
		} else {
			where = append(where, expr)
		}
	}
	for _, ex := range q.Exists {
		expr, err := c.exists(ex, tables)
		if err != nil {
			return nil, err
		}
		where = append(where, expr)
	}
	stmt.Where = conjoin(where)
	stmt.Having = conjoin(having)

	for _, g := range q.GroupBy {
		col, err := c.colRef(g)
		if err != nil {
			return nil, err
		}
		stmt.GroupBy = append(stmt.GroupBy, col)
	}

	for _, o := range q.OrderBy {
		e, err := c.orderExpr(o, anchorTable)
		if err != nil {
			return nil, err
		}
		stmt.OrderBy = append(stmt.OrderBy, sqlparse.OrderItem{Expr: e, Desc: o.Desc})
	}

	// Aggregate projections alongside plain ones require grouping by the
	// plain ones; infer it if the interpreter didn't say so explicitly.
	if len(stmt.GroupBy) == 0 && stmt.HasAggregate() {
		for _, p := range q.Projections {
			if p.Agg == AggNone && p.Prop != nil {
				col, err := c.colRef(*p.Prop)
				if err != nil {
					return nil, err
				}
				stmt.GroupBy = append(stmt.GroupBy, col)
			}
		}
	}
	return stmt, nil
}

// collectTables gathers every table the query touches at the outer level.
func (c *Compiler) collectTables(q *Query) ([]string, error) {
	set := map[string]bool{}
	addConcept := func(name string) error {
		if name == "" {
			return nil
		}
		t, err := c.table(name)
		if err != nil {
			return err
		}
		set[t] = true
		return nil
	}
	if err := addConcept(q.Anchor); err != nil {
		return nil, err
	}
	for _, p := range q.Projections {
		if p.Prop != nil {
			if err := addConcept(p.Prop.Concept); err != nil {
				return nil, err
			}
		}
	}
	for _, cond := range q.Conditions {
		if err := addConcept(cond.Prop.Concept); err != nil {
			return nil, err
		}
		if cond.Operand.Prop != nil {
			if err := addConcept(cond.Operand.Prop.Concept); err != nil {
				return nil, err
			}
		}
	}
	for _, g := range q.GroupBy {
		if err := addConcept(g.Concept); err != nil {
			return nil, err
		}
	}
	for _, o := range q.OrderBy {
		if o.Prop != nil {
			if err := addConcept(o.Prop.Concept); err != nil {
				return nil, err
			}
		}
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	if len(out) == 0 {
		return nil, fmt.Errorf("ir: query touches no concepts")
	}
	return out, nil
}

// table resolves a concept name to its table.
func (c *Compiler) table(concept string) (string, error) {
	cc := c.Ont.Concept(concept)
	if cc == nil {
		return "", fmt.Errorf("ir: unknown concept %q", concept)
	}
	return strings.ToLower(cc.Table), nil
}

// colRef resolves concept.property to a qualified column reference.
func (c *Compiler) colRef(p PropRef) (*sqlparse.ColumnRef, error) {
	cc := c.Ont.Concept(p.Concept)
	if cc == nil {
		return nil, fmt.Errorf("ir: unknown concept %q", p.Concept)
	}
	pp := cc.Property(p.Property)
	if pp == nil {
		return nil, fmt.Errorf("ir: concept %q has no property %q", p.Concept, p.Property)
	}
	return &sqlparse.ColumnRef{Table: strings.ToLower(cc.Table), Column: strings.ToLower(pp.Column)}, nil
}

func (c *Compiler) projection(p Projection, anchorTable string) (sqlparse.SelectItem, error) {
	if p.Star {
		if p.Agg == AggCount {
			return sqlparse.SelectItem{Expr: &sqlparse.FuncCall{Name: "COUNT", Star: true}, Alias: p.Alias}, nil
		}
		if p.Agg == AggNone {
			if anchorTable == "" {
				return sqlparse.SelectItem{Star: true}, nil
			}
			return sqlparse.SelectItem{Star: true, StarTable: anchorTable}, nil
		}
		return sqlparse.SelectItem{}, fmt.Errorf("ir: %s(*) is not valid", p.Agg)
	}
	if p.Prop == nil {
		return sqlparse.SelectItem{}, fmt.Errorf("ir: projection with neither star nor property")
	}
	col, err := c.colRef(*p.Prop)
	if err != nil {
		return sqlparse.SelectItem{}, err
	}
	if p.Agg == AggNone {
		return sqlparse.SelectItem{Expr: col, Alias: p.Alias}, nil
	}
	return sqlparse.SelectItem{
		Expr:  &sqlparse.FuncCall{Name: string(p.Agg), Distinct: p.Distinct, Args: []sqlparse.Expr{col}},
		Alias: p.Alias,
	}, nil
}

// condition lowers one predicate; the bool result marks HAVING conditions.
func (c *Compiler) condition(cond Condition) (sqlparse.Expr, bool, error) {
	col, err := c.colRef(cond.Prop)
	if err != nil {
		return nil, false, err
	}
	var lhs sqlparse.Expr = col
	isHaving := cond.Agg != AggNone
	if isHaving {
		lhs = &sqlparse.FuncCall{Name: string(cond.Agg), Args: []sqlparse.Expr{col}}
	}

	rhs, err := c.operand(cond.Operand)
	if err != nil && cond.Op != "in" {
		return nil, false, err
	}

	switch cond.Op {
	case "=", "!=", "<", "<=", ">", ">=":
		e := sqlparse.Expr(&sqlparse.BinaryExpr{Op: cond.Op, L: lhs, R: rhs})
		if cond.Not {
			e = &sqlparse.UnaryExpr{Op: "NOT", X: e}
		}
		return e, isHaving, nil
	case "like":
		lit, ok := rhs.(*sqlparse.Literal)
		if !ok || lit.Val.T != sqldata.TypeText {
			return nil, false, fmt.Errorf("ir: like needs a text operand")
		}
		return &sqlparse.LikeExpr{X: lhs, Pattern: lit.Val.Text(), Not: cond.Not}, isHaving, nil
	case "between":
		if cond.Hi == nil {
			return nil, false, fmt.Errorf("ir: between needs an upper bound")
		}
		hi, err := c.operand(*cond.Hi)
		if err != nil {
			return nil, false, err
		}
		return &sqlparse.BetweenExpr{X: lhs, Lo: rhs, Hi: hi, Not: cond.Not}, isHaving, nil
	case "in":
		in := &sqlparse.InExpr{X: lhs, Not: cond.Not}
		if cond.Operand.Sub != nil {
			sub, err := c.Compile(cond.Operand.Sub)
			if err != nil {
				return nil, false, err
			}
			in.Sub = sub
			return in, isHaving, nil
		}
		if len(cond.InValues) == 0 {
			return nil, false, fmt.Errorf("ir: in needs values or a sub-query")
		}
		for _, v := range cond.InValues {
			in.List = append(in.List, &sqlparse.Literal{Val: v})
		}
		return in, isHaving, nil
	default:
		return nil, false, fmt.Errorf("ir: unknown operator %q", cond.Op)
	}
}

func (c *Compiler) operand(o Operand) (sqlparse.Expr, error) {
	switch {
	case o.Value != nil:
		return &sqlparse.Literal{Val: *o.Value}, nil
	case o.Prop != nil:
		return c.colRef(*o.Prop)
	case o.Sub != nil:
		sub, err := c.Compile(o.Sub)
		if err != nil {
			return nil, err
		}
		return &sqlparse.SubqueryExpr{Sub: sub}, nil
	default:
		return nil, fmt.Errorf("ir: empty operand")
	}
}

func (c *Compiler) orderExpr(o OrderSpec, anchorTable string) (sqlparse.Expr, error) {
	if o.Star {
		return &sqlparse.FuncCall{Name: "COUNT", Star: true}, nil
	}
	if o.Prop == nil {
		return nil, fmt.Errorf("ir: order spec with neither star nor property")
	}
	col, err := c.colRef(*o.Prop)
	if err != nil {
		return nil, err
	}
	if o.Agg == AggNone {
		return col, nil
	}
	return &sqlparse.FuncCall{Name: string(o.Agg), Args: []sqlparse.Expr{col}}, nil
}

// exists lowers an existence condition to a correlated (NOT) EXISTS
// sub-query, correlating through the first join edge between the inner
// concept's table and any outer table.
func (c *Compiler) exists(ex ExistsCond, outerTables []string) (sqlparse.Expr, error) {
	innerTable, err := c.table(ex.Concept)
	if err != nil {
		return nil, err
	}
	// Find the shortest path from the inner table to an outer table.
	var path []schemagraph.Edge
	for _, ot := range outerTables {
		p, err := c.Graph.Path(innerTable, ot)
		if err != nil {
			continue
		}
		if path == nil || len(p) < len(path) {
			path = p
		}
		if len(p) == 1 {
			break
		}
	}
	if path == nil {
		return nil, fmt.Errorf("ir: no relationship between %q and the outer query", ex.Concept)
	}

	sub := sqlparse.NewSelect()
	// Project the inner table's first column; EXISTS ignores the value.
	cc := c.Ont.Concept(ex.Concept)
	firstCol := "id"
	if cc != nil && len(cc.Properties) > 0 {
		firstCol = cc.Properties[0].Column
	}
	sub.Items = []sqlparse.SelectItem{{Expr: &sqlparse.ColumnRef{Table: innerTable, Column: strings.ToLower(firstCol)}}}

	// Inner FROM covers all path tables except the outer anchor (the last
	// hop's far end); the final edge becomes the correlation predicate.
	last := path[len(path)-1]
	innerTables := []string{innerTable}
	for _, e := range path[:len(path)-1] {
		innerTables = append(innerTables, e.To)
	}
	from, err := c.Graph.BuildFrom(innerTables)
	if err != nil {
		return nil, err
	}
	sub.From = from

	var conds []sqlparse.Expr
	conds = append(conds, &sqlparse.BinaryExpr{
		Op: "=",
		L:  &sqlparse.ColumnRef{Table: last.From, Column: last.FromCol},
		R:  &sqlparse.ColumnRef{Table: last.To, Column: last.ToCol},
	})
	for _, cond := range ex.Conditions {
		e, isHaving, err := c.condition(cond)
		if err != nil {
			return nil, err
		}
		if isHaving {
			return nil, fmt.Errorf("ir: aggregate condition inside EXISTS is not supported")
		}
		conds = append(conds, e)
	}
	sub.Where = conjoin(conds)
	return &sqlparse.ExistsExpr{Not: ex.Not, Sub: sub}, nil
}

// conjoin folds expressions into a left-deep AND chain (nil for none).
func conjoin(exprs []sqlparse.Expr) sqlparse.Expr {
	var out sqlparse.Expr
	for _, e := range exprs {
		if out == nil {
			out = e
		} else {
			out = &sqlparse.BinaryExpr{Op: "AND", L: out, R: e}
		}
	}
	return out
}
