package ir

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"nlidb/internal/ontology"
	"nlidb/internal/schemagraph"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlexec"
	"nlidb/internal/sqlparse"
)

// fixture builds db + auto-ontology + graph + compiler.
func fixture(t testing.TB) (*sqldata.Database, *Compiler) {
	t.Helper()
	db := sqldata.NewDatabase("shop")
	mk := func(s *sqldata.Schema) *sqldata.Table {
		tbl, err := db.CreateTable(s)
		if err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	dept := mk(&sqldata.Schema{Name: "department", Columns: []sqldata.Column{
		{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
		{Name: "name", Type: sqldata.TypeText},
		{Name: "budget", Type: sqldata.TypeFloat},
	}})
	emp := mk(&sqldata.Schema{Name: "employee", Columns: []sqldata.Column{
		{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
		{Name: "name", Type: sqldata.TypeText},
		{Name: "salary", Type: sqldata.TypeFloat},
		{Name: "dept_id", Type: sqldata.TypeInt},
	}, ForeignKeys: []sqldata.ForeignKey{{Column: "dept_id", RefTable: "department", RefColumn: "id"}}})

	dept.MustInsert(sqldata.NewInt(1), sqldata.NewText("eng"), sqldata.NewFloat(900))
	dept.MustInsert(sqldata.NewInt(2), sqldata.NewText("sales"), sqldata.NewFloat(400))
	dept.MustInsert(sqldata.NewInt(3), sqldata.NewText("empty"), sqldata.NewFloat(100))
	emp.MustInsert(sqldata.NewInt(1), sqldata.NewText("ann"), sqldata.NewFloat(120), sqldata.NewInt(1))
	emp.MustInsert(sqldata.NewInt(2), sqldata.NewText("bob"), sqldata.NewFloat(80), sqldata.NewInt(1))
	emp.MustInsert(sqldata.NewInt(3), sqldata.NewText("cyd"), sqldata.NewFloat(60), sqldata.NewInt(2))

	ont := ontology.FromDatabase(db)
	g := schemagraph.Build(db)
	return db, &Compiler{Ont: ont, Graph: g}
}

func compileRun(t *testing.T, db *sqldata.Database, c *Compiler, q *Query) *sqldata.Result {
	t.Helper()
	stmt, err := c.Compile(q)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	// Generated SQL must re-parse (well-formedness invariant).
	if _, err := sqlparse.Parse(stmt.String()); err != nil {
		t.Fatalf("generated SQL unparseable: %s: %v", stmt, err)
	}
	res, err := sqlexec.New(db).Run(stmt)
	if err != nil {
		t.Fatalf("execute %s: %v", stmt, err)
	}
	return res
}

func TestSimpleSelection(t *testing.T) {
	db, c := fixture(t)
	q := NewQuery("employee")
	q.Projections = []Projection{{Prop: &PropRef{"employee", "name"}}}
	v := sqldata.NewFloat(100)
	q.Conditions = []Condition{{Prop: PropRef{"employee", "salary"}, Op: ">", Operand: Operand{Value: &v}}}
	res := compileRun(t, db, c, q)
	if len(res.Rows) != 1 || res.Rows[0][0].Text() != "ann" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestAggregationGroupHaving(t *testing.T) {
	db, c := fixture(t)
	q := NewQuery("employee")
	q.Projections = []Projection{
		{Prop: &PropRef{"department", "name"}},
		{Agg: AggAvg, Prop: &PropRef{"employee", "salary"}, Alias: "avg_sal"},
	}
	q.GroupBy = []PropRef{{"department", "name"}}
	one := sqldata.NewInt(1)
	q.Conditions = []Condition{{Agg: AggCount, Prop: PropRef{"employee", "id"}, Op: ">", Operand: Operand{Value: &one}}}
	q.OrderBy = []OrderSpec{{Agg: AggAvg, Prop: &PropRef{"employee", "salary"}, Desc: true}}
	res := compileRun(t, db, c, q)
	if len(res.Rows) != 1 || res.Rows[0][0].Text() != "eng" || res.Rows[0][1].Float() != 100 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestJoinInference(t *testing.T) {
	db, c := fixture(t)
	q := NewQuery("employee")
	q.Projections = []Projection{{Prop: &PropRef{"employee", "name"}}}
	eng := sqldata.NewText("eng")
	q.Conditions = []Condition{{Prop: PropRef{"department", "name"}, Op: "=", Operand: Operand{Value: &eng}}}
	stmt, err := c.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stmt.String(), "JOIN") {
		t.Fatalf("join not inferred: %s", stmt)
	}
	res := compileRun(t, db, c, q)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestCountStarAndLimit(t *testing.T) {
	db, c := fixture(t)
	q := NewQuery("employee")
	q.Projections = []Projection{{Agg: AggCount, Star: true}}
	res := compileRun(t, db, c, q)
	if res.Rows[0][0].Int() != 3 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}

	q2 := NewQuery("employee")
	q2.Projections = []Projection{{Prop: &PropRef{"employee", "name"}}}
	q2.OrderBy = []OrderSpec{{Prop: &PropRef{"employee", "salary"}, Desc: true}}
	q2.Limit = 1
	res = compileRun(t, db, c, q2)
	if len(res.Rows) != 1 || res.Rows[0][0].Text() != "ann" {
		t.Fatalf("top-1 = %v", res.Rows)
	}
}

func TestScalarSubquery(t *testing.T) {
	db, c := fixture(t)
	// employees with salary > avg(salary)
	sub := NewQuery("employee")
	sub.Projections = []Projection{{Agg: AggAvg, Prop: &PropRef{"employee", "salary"}}}
	q := NewQuery("employee")
	q.Projections = []Projection{{Prop: &PropRef{"employee", "name"}}}
	q.Conditions = []Condition{{Prop: PropRef{"employee", "salary"}, Op: ">", Operand: Operand{Sub: sub}}}
	res := compileRun(t, db, c, q)
	if len(res.Rows) != 1 || res.Rows[0][0].Text() != "ann" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestInSubquery(t *testing.T) {
	db, c := fixture(t)
	// departments whose id is in (dept_id of employees with salary > 100)
	// modelled at concept level via property reference.
	sub := NewQuery("employee")
	sub.Projections = []Projection{{Prop: &PropRef{"employee", "id"}}}
	hundred := sqldata.NewFloat(100)
	sub.Conditions = []Condition{{Prop: PropRef{"employee", "salary"}, Op: ">", Operand: Operand{Value: &hundred}}}
	q := NewQuery("employee")
	q.Projections = []Projection{{Prop: &PropRef{"employee", "name"}}}
	q.Conditions = []Condition{{Prop: PropRef{"employee", "id"}, Op: "in", Operand: Operand{Sub: sub}}}
	res := compileRun(t, db, c, q)
	if len(res.Rows) != 1 || res.Rows[0][0].Text() != "ann" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestInValues(t *testing.T) {
	db, c := fixture(t)
	q := NewQuery("employee")
	q.Projections = []Projection{{Prop: &PropRef{"employee", "name"}}}
	q.Conditions = []Condition{{
		Prop: PropRef{"employee", "name"}, Op: "in",
		InValues: []sqldata.Value{sqldata.NewText("ann"), sqldata.NewText("cyd")},
	}}
	res := compileRun(t, db, c, q)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestExistsNested(t *testing.T) {
	db, c := fixture(t)
	// departments without employees → NOT EXISTS
	q := NewQuery("department")
	q.Projections = []Projection{{Prop: &PropRef{"department", "name"}}}
	q.Exists = []ExistsCond{{Concept: "employee", Not: true}}
	res := compileRun(t, db, c, q)
	if len(res.Rows) != 1 || res.Rows[0][0].Text() != "empty" {
		t.Fatalf("rows = %v", res.Rows)
	}
	// departments WITH at least one employee earning > 100
	hundred := sqldata.NewFloat(100)
	q2 := NewQuery("department")
	q2.Projections = []Projection{{Prop: &PropRef{"department", "name"}}}
	q2.Exists = []ExistsCond{{
		Concept: "employee",
		Conditions: []Condition{
			{Prop: PropRef{"employee", "salary"}, Op: ">", Operand: Operand{Value: &hundred}},
		},
	}}
	res = compileRun(t, db, c, q2)
	if len(res.Rows) != 1 || res.Rows[0][0].Text() != "eng" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestBetweenAndLike(t *testing.T) {
	db, c := fixture(t)
	lo, hi := sqldata.NewFloat(70), sqldata.NewFloat(130)
	q := NewQuery("employee")
	q.Projections = []Projection{{Prop: &PropRef{"employee", "name"}}}
	q.Conditions = []Condition{{Prop: PropRef{"employee", "salary"}, Op: "between", Operand: Operand{Value: &lo}, Hi: &Operand{Value: &hi}}}
	res := compileRun(t, db, c, q)
	if len(res.Rows) != 2 {
		t.Fatalf("between rows = %v", res.Rows)
	}
	pat := sqldata.NewText("a%")
	q2 := NewQuery("employee")
	q2.Projections = []Projection{{Prop: &PropRef{"employee", "name"}}}
	q2.Conditions = []Condition{{Prop: PropRef{"employee", "name"}, Op: "like", Operand: Operand{Value: &pat}}}
	res = compileRun(t, db, c, q2)
	if len(res.Rows) != 1 {
		t.Fatalf("like rows = %v", res.Rows)
	}
}

func TestImplicitGroupBy(t *testing.T) {
	db, c := fixture(t)
	// Plain property + aggregate without explicit GROUP BY → inferred.
	q := NewQuery("employee")
	q.Projections = []Projection{
		{Prop: &PropRef{"department", "name"}},
		{Agg: AggCount, Prop: &PropRef{"employee", "id"}},
	}
	stmt, err := c.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.GroupBy) != 1 {
		t.Fatalf("implicit group by missing: %s", stmt)
	}
	res := compileRun(t, db, c, q)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

// Property: randomly assembled well-typed IR queries always compile to
// SQL that re-parses and executes.
func TestPropertyCompiledSQLWellFormed(t *testing.T) {
	db, c := fixture(t)
	eng := sqlexec.New(db)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := NewQuery("employee")
		props := []PropRef{
			{"employee", "name"}, {"employee", "salary"},
			{"department", "name"}, {"department", "budget"},
		}
		numeric := []PropRef{{"employee", "salary"}, {"department", "budget"}}

		// Projection: property, aggregate, or COUNT(*).
		switch r.Intn(3) {
		case 0:
			p := props[r.Intn(len(props))]
			q.Projections = []Projection{{Prop: &p}}
		case 1:
			p := numeric[r.Intn(len(numeric))]
			aggs := []Agg{AggSum, AggAvg, AggMin, AggMax}
			q.Projections = []Projection{{Agg: aggs[r.Intn(len(aggs))], Prop: &p}}
		default:
			q.Projections = []Projection{{Agg: AggCount, Star: true}}
		}

		// 0-2 conditions.
		for i := 0; i < r.Intn(3); i++ {
			p := numeric[r.Intn(len(numeric))]
			ops := []string{"=", ">", "<", ">=", "<="}
			v := sqldata.NewFloat(float64(r.Intn(1000)))
			q.Conditions = append(q.Conditions, Condition{
				Prop: p, Op: ops[r.Intn(len(ops))], Operand: Operand{Value: &v},
			})
		}
		// Optional nested scalar condition.
		if r.Intn(3) == 0 {
			p := numeric[r.Intn(len(numeric))]
			sub := NewQuery(p.Concept)
			sub.Projections = []Projection{{Agg: AggAvg, Prop: &p}}
			q.Conditions = append(q.Conditions, Condition{
				Prop: p, Op: ">", Operand: Operand{Sub: sub},
			})
		}
		// Optional order/limit when the projection is plain.
		if q.Projections[0].Agg == AggNone && r.Intn(2) == 0 {
			p := numeric[r.Intn(len(numeric))]
			q.OrderBy = []OrderSpec{{Prop: &p, Desc: r.Intn(2) == 0}}
			q.Limit = r.Intn(5) + 1
		}

		stmt, err := c.Compile(q)
		if err != nil {
			t.Logf("seed %d: compile: %v", seed, err)
			return false
		}
		if _, err := sqlparse.Parse(stmt.String()); err != nil {
			t.Logf("seed %d: reparse: %s: %v", seed, stmt, err)
			return false
		}
		if _, err := eng.Run(stmt); err != nil {
			t.Logf("seed %d: execute: %s: %v", seed, stmt, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCompileErrors(t *testing.T) {
	_, c := fixture(t)
	if _, err := c.Compile(NewQuery("employee")); err == nil {
		t.Error("no projections accepted")
	}
	q := NewQuery("ghost")
	q.Projections = []Projection{{Prop: &PropRef{"ghost", "x"}}}
	if _, err := c.Compile(q); err == nil {
		t.Error("unknown concept accepted")
	}
	q2 := NewQuery("employee")
	q2.Projections = []Projection{{Prop: &PropRef{"employee", "ghostprop"}}}
	if _, err := c.Compile(q2); err == nil {
		t.Error("unknown property accepted")
	}
	q3 := NewQuery("employee")
	q3.Projections = []Projection{{Prop: &PropRef{"employee", "name"}}}
	q3.Conditions = []Condition{{Prop: PropRef{"employee", "salary"}, Op: "???", Operand: Operand{}}}
	if _, err := c.Compile(q3); err == nil {
		t.Error("bad operator accepted")
	}
}
