// Package keywordnl implements a SODA/QUICK-style keyword interpreter:
// each query token is looked up in an inverted index over metadata and
// data, matches are aggregated into per-table interpretations, and the
// best-scoring single-table selection query wins. Faithful to the early
// systems the tutorial surveys, it deliberately understands *only*
// selection — no aggregation, grouping, ordering, joins, or nesting —
// which is exactly the class-1 ceiling the taxonomy assigns it.
package keywordnl

import (
	"fmt"
	"sort"
	"strings"

	"nlidb/internal/invindex"
	"nlidb/internal/lexicon"
	"nlidb/internal/nlp"
	"nlidb/internal/nlq"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlparse"
)

// Interpreter is a keyword-lookup NLIDB over one database.
type Interpreter struct {
	db   *sqldata.Database
	ix   *invindex.Index
	opts invindex.LookupOptions
}

// New builds the interpreter, indexing db's metadata and content. lex may
// be nil to disable the synonym tier.
func New(db *sqldata.Database, lex *lexicon.Lexicon) *Interpreter {
	return &Interpreter{db: db, ix: invindex.Build(db, lex), opts: invindex.DefaultOptions()}
}

// Name implements nlq.Interpreter.
func (k *Interpreter) Name() string { return "keyword" }

// orBetween reports whether an "or" token lies strictly between two token
// positions — the Précis-style disjunction cue.
func orBetween(toks []nlp.Token, a, b int) bool {
	if a > b {
		a, b = b, a
	}
	for i := a; i < b && i < len(toks); i++ {
		if toks[i].Lower == "or" {
			return true
		}
	}
	return false
}

// Interpret maps the question's keywords onto one table and its values.
func (k *Interpreter) Interpret(question string) ([]nlq.Interpretation, error) {
	toks := nlp.Tag(nlp.Tokenize(question))
	spans := nlq.MatchSpans(toks, k.ix, k.opts)
	if len(spans) == 0 {
		return nil, fmt.Errorf("%w: no keyword matched the data or metadata", nlq.ErrNoInterpretation)
	}

	// Score each candidate anchor table by the evidence pointing at it.
	type evidence struct {
		tableScore  float64
		columns     []invindex.Match
		values      []valueHit
		totalScore  float64
		matchedLen  int
		explanation []string
	}
	byTable := map[string]*evidence{}
	get := func(table string) *evidence {
		lt := strings.ToLower(table)
		if byTable[lt] == nil {
			byTable[lt] = &evidence{}
		}
		return byTable[lt]
	}

	for _, sp := range spans {
		m := sp.Best()
		ev := get(m.Table)
		ev.totalScore += m.Score
		ev.matchedLen += sp.End - sp.Start
		switch m.Kind {
		case invindex.KindTable:
			if m.Score > ev.tableScore {
				ev.tableScore = m.Score
			}
			ev.explanation = append(ev.explanation, fmt.Sprintf("%q → table %s (%.2f)", sp.Text, m.Table, m.Score))
		case invindex.KindColumn:
			ev.columns = append(ev.columns, m)
			ev.explanation = append(ev.explanation, fmt.Sprintf("%q → column %s.%s (%.2f)", sp.Text, m.Table, m.Column, m.Score))
		case invindex.KindValue:
			ev.values = append(ev.values, valueHit{m: m, pos: sp.Start})
			ev.explanation = append(ev.explanation, fmt.Sprintf("%q → value %s.%s=%q (%.2f)", sp.Text, m.Table, m.Column, m.Value, m.Score))
		}
	}

	// Rank anchors: total evidence score, table-name evidence as tiebreak.
	type cand struct {
		table string
		ev    *evidence
	}
	cands := make([]cand, 0, len(byTable))
	for t, ev := range byTable {
		cands = append(cands, cand{t, ev})
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.ev.totalScore != b.ev.totalScore {
			return a.ev.totalScore > b.ev.totalScore
		}
		if a.ev.tableScore != b.ev.tableScore {
			return a.ev.tableScore > b.ev.tableScore
		}
		return a.table < b.table
	})

	contentWords := 0
	for _, t := range toks {
		if t.Kind == nlp.KindWord && !t.IsStop() {
			contentWords++
		}
	}

	var out []nlq.Interpretation
	for i, c := range cands {
		if i >= 3 { // keep the top readings only
			break
		}
		stmt := k.buildSelect(c.table, c.ev.columns, c.ev.values, toks)
		if stmt == nil {
			continue
		}
		coverage := 1.0
		if contentWords > 0 {
			coverage = float64(c.ev.matchedLen) / float64(contentWords)
			if coverage > 1 {
				coverage = 1
			}
		}
		n := float64(len(c.ev.columns) + len(c.ev.values))
		avg := c.ev.totalScore / (n + boolTo1(c.ev.tableScore > 0))
		out = append(out, nlq.Interpretation{
			SQL:         stmt,
			Score:       0.5*avg + 0.5*coverage,
			Explanation: strings.Join(c.ev.explanation, "; "),
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: keyword evidence did not form a query", nlq.ErrNoInterpretation)
	}
	return out, nil
}

func boolTo1(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// valueHit is a value match with its token position, so disjunction cues
// between values can be detected.
type valueHit struct {
	m   invindex.Match
	pos int
}

// buildSelect assembles the single-table selection query: matched columns
// become the projection (or the identifying column when none), value
// matches become filters. Values of the same column linked by "or" merge
// into an IN list (Précis-style DNF); distinct columns conjoin. Evidence
// from other tables is discarded — the defining limitation of the keyword
// family.
func (k *Interpreter) buildSelect(table string, cols []invindex.Match, vals []valueHit, toks []nlp.Token) *sqlparse.SelectStmt {
	tbl := k.db.Table(table)
	if tbl == nil {
		return nil
	}
	stmt := sqlparse.NewSelect()
	stmt.From = &sqlparse.FromClause{First: sqlparse.TableRef{Name: strings.ToLower(table)}}

	filterCols := map[string]bool{}
	// Group value filters per column, preserving first-seen order.
	type group struct {
		col    string
		values []string
		pos    []int
	}
	var groups []*group
	byCol := map[string]*group{}
	seenVal := map[string]bool{}
	for _, v := range vals {
		if !strings.EqualFold(v.m.Table, table) {
			continue
		}
		lc := strings.ToLower(v.m.Column)
		key := lc + "=" + v.m.Value
		if seenVal[key] {
			continue
		}
		seenVal[key] = true
		filterCols[lc] = true
		g := byCol[lc]
		if g == nil {
			g = &group{col: lc}
			byCol[lc] = g
			groups = append(groups, g)
		}
		g.values = append(g.values, v.m.Value)
		g.pos = append(g.pos, v.pos)
	}

	var where sqlparse.Expr
	conjoin := func(e sqlparse.Expr) {
		if where == nil {
			where = e
		} else {
			where = &sqlparse.BinaryExpr{Op: "AND", L: where, R: e}
		}
	}
	for _, g := range groups {
		colRef := &sqlparse.ColumnRef{Column: g.col}
		switch {
		case len(g.values) == 1:
			conjoin(&sqlparse.BinaryExpr{Op: "=", L: colRef,
				R: &sqlparse.Literal{Val: sqldata.NewText(g.values[0])}})
		case orBetween(toks, g.pos[0], g.pos[len(g.pos)-1]):
			in := &sqlparse.InExpr{X: colRef}
			for _, v := range g.values {
				in.List = append(in.List, &sqlparse.Literal{Val: sqldata.NewText(v)})
			}
			conjoin(in)
		default:
			// Several values of one column without "or" conjoin, which is
			// unsatisfiable but faithful to naive keyword conjunction.
			for _, v := range g.values {
				conjoin(&sqlparse.BinaryExpr{Op: "=", L: colRef,
					R: &sqlparse.Literal{Val: sqldata.NewText(v)}})
			}
		}
	}
	stmt.Where = where

	seenCol := map[string]bool{}
	for _, c := range cols {
		if !strings.EqualFold(c.Table, table) {
			continue
		}
		lc := strings.ToLower(c.Column)
		if filterCols[lc] || seenCol[lc] {
			continue // a column used as a filter is not also projected
		}
		seenCol[lc] = true
		stmt.Items = append(stmt.Items, sqlparse.SelectItem{Expr: &sqlparse.ColumnRef{Column: lc}})
	}
	if len(stmt.Items) == 0 {
		// Default projection: the identifying text column (how NLIDB
		// systems display entities), falling back to *.
		if c := firstTextColumn(tbl.Schema); c != "" {
			stmt.Items = []sqlparse.SelectItem{{Expr: &sqlparse.ColumnRef{Column: c}}}
		} else {
			stmt.Items = []sqlparse.SelectItem{{Star: true}}
		}
	}
	return stmt
}

func firstTextColumn(s *sqldata.Schema) string {
	for _, c := range s.Columns {
		if c.Type == sqldata.TypeText {
			return strings.ToLower(c.Name)
		}
	}
	return ""
}
