package keywordnl

import (
	"errors"
	"strings"
	"testing"

	"nlidb/internal/lexicon"
	"nlidb/internal/nlq"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlexec"
)

func shopDB(t testing.TB) *sqldata.Database {
	t.Helper()
	db := sqldata.NewDatabase("shop")
	c, err := db.CreateTable(&sqldata.Schema{
		Name:     "customer",
		Synonyms: []string{"client"},
		Columns: []sqldata.Column{
			{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
			{Name: "name", Type: sqldata.TypeText},
			{Name: "city", Type: sqldata.TypeText},
			{Name: "segment", Type: sqldata.TypeText},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.MustInsert(sqldata.NewInt(1), sqldata.NewText("Alice"), sqldata.NewText("Berlin"), sqldata.NewText("retail"))
	c.MustInsert(sqldata.NewInt(2), sqldata.NewText("Bob"), sqldata.NewText("Munich"), sqldata.NewText("corporate"))
	c.MustInsert(sqldata.NewInt(3), sqldata.NewText("Carol"), sqldata.NewText("Berlin"), sqldata.NewText("corporate"))

	p, err := db.CreateTable(&sqldata.Schema{
		Name: "product",
		Columns: []sqldata.Column{
			{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
			{Name: "name", Type: sqldata.TypeText},
			{Name: "price", Type: sqldata.TypeFloat},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.MustInsert(sqldata.NewInt(1), sqldata.NewText("Widget"), sqldata.NewFloat(10))
	return db
}

func TestSimpleValueFilter(t *testing.T) {
	db := shopDB(t)
	k := New(db, lexicon.New())
	ins, err := k.Interpret("customers in Berlin")
	if err != nil {
		t.Fatal(err)
	}
	best, _ := nlq.Best(ins)
	res, err := sqlexec.New(db).Run(best.SQL)
	if err != nil {
		t.Fatalf("exec %s: %v", best.SQL, err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d for %s", len(res.Rows), best.SQL)
	}
}

func TestColumnProjection(t *testing.T) {
	db := shopDB(t)
	k := New(db, lexicon.New())
	ins, err := k.Interpret("city of customer Alice")
	if err != nil {
		t.Fatal(err)
	}
	best, _ := nlq.Best(ins)
	sql := best.SQL.String()
	if !strings.Contains(sql, "city") || !strings.Contains(strings.ToLower(sql), "alice") {
		t.Fatalf("sql = %s", sql)
	}
	res, err := sqlexec.New(db).Run(best.SQL)
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].Text() != "Berlin" {
		t.Fatalf("res = %v, %v", res, err)
	}
}

func TestSynonymTableLookup(t *testing.T) {
	db := shopDB(t)
	k := New(db, lexicon.New())
	ins, err := k.Interpret("list the clients from Munich")
	if err != nil {
		t.Fatal(err)
	}
	best, _ := nlq.Best(ins)
	if best.SQL.From.First.Name != "customer" {
		t.Fatalf("anchor = %s", best.SQL.From.First.Name)
	}
}

func TestKeywordIgnoresAggregation(t *testing.T) {
	// The defining limitation: "how many customers in Berlin" still
	// produces a plain selection, not COUNT.
	db := shopDB(t)
	k := New(db, lexicon.New())
	ins, err := k.Interpret("how many customers in Berlin")
	if err != nil {
		t.Fatal(err)
	}
	best, _ := nlq.Best(ins)
	if best.SQL.HasAggregate() {
		t.Fatalf("keyword system aggregated: %s", best.SQL)
	}
	if nlq.Classify(best.SQL) != nlq.Simple {
		t.Fatalf("class = %v", nlq.Classify(best.SQL))
	}
}

func TestKeywordSingleTableOnly(t *testing.T) {
	db := shopDB(t)
	k := New(db, lexicon.New())
	ins, err := k.Interpret("customers who bought the product Widget")
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range ins {
		if len(in.SQL.From.Joins) != 0 {
			t.Fatalf("keyword system joined: %s", in.SQL)
		}
	}
}

func TestNoInterpretation(t *testing.T) {
	db := shopDB(t)
	k := New(db, lexicon.New())
	_, err := k.Interpret("quantum flux capacitors")
	if !errors.Is(err, nlq.ErrNoInterpretation) {
		t.Fatalf("err = %v", err)
	}
}

func TestMultipleCandidates(t *testing.T) {
	db := shopDB(t)
	k := New(db, lexicon.New())
	// "name" exists on both tables → both anchors are plausible.
	ins, err := k.Interpret("name of products and customers")
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) < 2 {
		t.Fatalf("want multiple candidates, got %d", len(ins))
	}
	// Ranked: scores non-increasing is not required (Best handles it),
	// but all must execute.
	for _, in := range ins {
		if _, err := sqlexec.New(db).Run(in.SQL); err != nil {
			t.Errorf("candidate does not execute: %s: %v", in.SQL, err)
		}
	}
}

func TestDisjunctionMergesToIN(t *testing.T) {
	db := shopDB(t)
	k := New(db, lexicon.New())
	ins, err := k.Interpret("customers in Berlin or Munich")
	if err != nil {
		t.Fatal(err)
	}
	best, _ := nlq.Best(ins)
	sql := best.SQL.String()
	if !strings.Contains(sql, "IN (") {
		t.Fatalf("disjunction not merged: %s", sql)
	}
	res, err := sqlexec.New(db).Run(best.SQL)
	if err != nil || len(res.Rows) != 3 {
		t.Fatalf("rows = %v, %v (%s)", res, err, sql)
	}
}

func TestConjunctionWithoutOrStaysAND(t *testing.T) {
	db := shopDB(t)
	k := New(db, lexicon.New())
	// Same column, no "or": naive keyword conjunction (unsatisfiable).
	ins, err := k.Interpret("customers Berlin Munich")
	if err != nil {
		t.Fatal(err)
	}
	best, _ := nlq.Best(ins)
	if strings.Contains(best.SQL.String(), "IN (") {
		t.Fatalf("AND reading lost: %s", best.SQL)
	}
	res, err := sqlexec.New(db).Run(best.SQL)
	if err != nil || len(res.Rows) != 0 {
		t.Fatalf("conjunction over one column should be empty: %v", res)
	}
}

func TestDeterminism(t *testing.T) {
	db := shopDB(t)
	k := New(db, lexicon.New())
	a, err := k.Interpret("corporate customers in Berlin")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := k.Interpret("corporate customers in Berlin")
	if len(a) != len(b) || a[0].SQL.String() != b[0].SQL.String() {
		t.Fatal("nondeterministic interpretation")
	}
	// Two value filters conjoin.
	if !strings.Contains(a[0].SQL.String(), "AND") {
		t.Fatalf("expected two filters: %s", a[0].SQL)
	}
}
