// Package lexicon provides a WordNet-lite lexical knowledge base: synonym
// sets, hypernym/hyponym links, and a Wu–Palmer-flavoured word similarity.
// It substitutes for WordNet in the NaLIR-style similarity function and
// supplies the domain-synonym and relaxation machinery that ATHENA-style
// ontology-driven interpretation and the medical-KB query-relaxation work
// (Lei et al. 2020) rely on.
package lexicon

import (
	"sort"
	"strings"

	"nlidb/internal/nlp"
)

// Lexicon is a mutable lexical KB. The zero value is not usable; call New.
type Lexicon struct {
	// synset maps a normalized word to its synonym-set id.
	synset map[string]int
	// sets holds the members of each synonym set.
	sets [][]string
	// hyper maps a word to its hypernyms ("ancestor" terms).
	hyper map[string][]string
	// hypo is the inverse of hyper.
	hypo map[string][]string
}

// New returns a lexicon preloaded with general business-query vocabulary
// (the kind of domain-independent synonymy every surveyed system ships).
func New() *Lexicon {
	l := Empty()
	for _, group := range builtinSynonyms {
		l.AddSynonyms(group...)
	}
	for w, h := range builtinHypernyms {
		l.AddHypernym(w, h)
	}
	return l
}

// Empty returns a lexicon with no entries (useful for tests and for fully
// domain-specific vocabularies).
func Empty() *Lexicon {
	return &Lexicon{
		synset: make(map[string]int),
		hyper:  make(map[string][]string),
		hypo:   make(map[string][]string),
	}
}

func norm(w string) string { return nlp.Stem(strings.ToLower(strings.TrimSpace(w))) }

// AddSynonyms declares all given words mutually synonymous, merging any
// synonym sets they already belong to.
func (l *Lexicon) AddSynonyms(words ...string) {
	if len(words) == 0 {
		return
	}
	target := -1
	for _, w := range words {
		if id, ok := l.synset[norm(w)]; ok {
			target = id
			break
		}
	}
	if target < 0 {
		target = len(l.sets)
		l.sets = append(l.sets, nil)
	}
	for _, w := range words {
		n := norm(w)
		if id, ok := l.synset[n]; ok && id != target {
			// Merge set id into target.
			for _, m := range l.sets[id] {
				l.synset[m] = target
				l.sets[target] = append(l.sets[target], m)
			}
			l.sets[id] = nil
			continue
		}
		if _, ok := l.synset[n]; !ok {
			l.synset[n] = target
			l.sets[target] = append(l.sets[target], n)
		}
	}
}

// AddHypernym declares hypernym as a broader term for word
// ("hypertension" IS-A "disease").
func (l *Lexicon) AddHypernym(word, hypernym string) {
	w, h := norm(word), norm(hypernym)
	l.hyper[w] = appendUnique(l.hyper[w], h)
	l.hypo[h] = appendUnique(l.hypo[h], w)
}

func appendUnique(s []string, v string) []string {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// Synonyms returns the normalized synonym set of w, always including
// norm(w) itself, sorted.
func (l *Lexicon) Synonyms(w string) []string {
	n := norm(w)
	out := []string{n}
	if id, ok := l.synset[n]; ok {
		for _, m := range l.sets[id] {
			if m != n {
				out = append(out, m)
			}
		}
	}
	sort.Strings(out)
	return out
}

// IsSynonym reports whether a and b share a synonym set (or stem-match).
func (l *Lexicon) IsSynonym(a, b string) bool {
	na, nb := norm(a), norm(b)
	if na == nb {
		return true
	}
	ia, oka := l.synset[na]
	ib, okb := l.synset[nb]
	return oka && okb && ia == ib
}

// Hypernyms returns the declared broader terms of w (normalized).
func (l *Lexicon) Hypernyms(w string) []string { return l.hyper[norm(w)] }

// Hyponyms returns the declared narrower terms of w (normalized).
func (l *Lexicon) Hyponyms(w string) []string { return l.hypo[norm(w)] }

// Related returns synonyms plus one-hop hypernyms and hyponyms — the
// expansion set used by query relaxation.
func (l *Lexicon) Related(w string) []string {
	seen := map[string]bool{}
	var out []string
	add := func(x string) {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	for _, s := range l.Synonyms(w) {
		add(s)
	}
	for _, h := range l.Hypernyms(w) {
		add(h)
	}
	for _, h := range l.Hyponyms(w) {
		add(h)
	}
	sort.Strings(out)
	return out
}

// Similarity returns a [0,1] lexical similarity: 1 for synonyms/equal
// stems, 0.8 for direct hypernym/hyponym pairs, 0.6 for synset siblings
// through a shared hypernym, otherwise the string similarity of the stems
// (Wu–Palmer in spirit, with the taxonomy depth capped at one hop).
func (l *Lexicon) Similarity(a, b string) float64 {
	na, nb := norm(a), norm(b)
	if l.IsSynonym(na, nb) {
		return 1
	}
	if contains(l.hyper[na], nb) || contains(l.hyper[nb], na) {
		return 0.8
	}
	for _, ha := range l.hyper[na] {
		if contains(l.hyper[nb], ha) {
			return 0.6
		}
	}
	return nlp.Similarity(na, nb)
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// builtinSynonyms is the domain-independent business vocabulary.
var builtinSynonyms = [][]string{
	{"salary", "pay", "wage", "earnings", "income", "compensation"},
	{"employee", "worker", "staff", "personnel"},
	{"customer", "client", "buyer", "shopper"},
	{"company", "firm", "business", "corporation"},
	{"department", "division", "unit"},
	{"price", "cost", "rate"},
	{"revenue", "sales", "turnover"},
	{"profit", "margin", "gain"},
	{"product", "item", "good", "merchandise"},
	{"quantity", "amount", "count", "number"},
	{"city", "town"},
	{"country", "nation"},
	{"date", "day", "time"},
	{"year", "annual"},
	{"big", "large", "huge"},
	{"small", "little", "tiny"},
	{"cheap", "inexpensive", "affordable"},
	{"expensive", "costly", "pricey"},
	{"movie", "film"},
	{"doctor", "physician"},
	{"drug", "medication", "medicine"},
	{"disease", "illness", "condition", "disorder"},
	{"manager", "supervisor", "boss"},
	{"budget", "funding", "allocation"},
	{"teacher", "instructor", "professor"},
	{"student", "pupil"},
	{"order", "purchase"},
	{"flight", "trip"},
	{"plane", "aircraft", "airplane"},
	{"hospital", "clinic"},
}

// builtinHypernyms adds a thin taxonomy layer used by relaxation tests.
var builtinHypernyms = map[string]string{
	"manager":  "employee",
	"engineer": "employee",
	"nurse":    "employee",
	"aspirin":  "drug",
	"car":      "vehicle",
	"truck":    "vehicle",
	"sedan":    "car",
}
