package lexicon

import (
	"testing"
	"testing/quick"
)

func TestSynonymsBuiltin(t *testing.T) {
	l := New()
	if !l.IsSynonym("salary", "pay") {
		t.Error("salary/pay not synonyms")
	}
	if !l.IsSynonym("earnings", "wage") {
		t.Error("earnings/wage not synonyms (transitivity through set)")
	}
	if l.IsSynonym("salary", "customer") {
		t.Error("salary/customer wrongly synonyms")
	}
	// Plural and case handled by normalization.
	if !l.IsSynonym("Salaries", "PAY") {
		t.Error("normalization failed")
	}
}

func TestSynonymsIncludeSelf(t *testing.T) {
	l := New()
	syns := l.Synonyms("unknownword")
	if len(syns) != 1 || syns[0] != "unknownword" {
		t.Errorf("Synonyms(unknown) = %v", syns)
	}
	syns = l.Synonyms("client")
	found := false
	for _, s := range syns {
		if s == "customer" {
			found = true
		}
	}
	if !found {
		t.Errorf("customer not in Synonyms(client): %v", syns)
	}
}

func TestAddSynonymsMergesSets(t *testing.T) {
	l := Empty()
	l.AddSynonyms("a", "b")
	l.AddSynonyms("c", "d")
	l.AddSynonyms("b", "c") // merges both sets
	if !l.IsSynonym("a", "d") {
		t.Error("merge failed: a/d")
	}
}

func TestHypernyms(t *testing.T) {
	l := New()
	hs := l.Hypernyms("manager")
	if len(hs) != 1 || hs[0] != "employee" {
		t.Errorf("Hypernyms(manager) = %v", hs)
	}
	hypo := l.Hyponyms("employee")
	if len(hypo) < 2 {
		t.Errorf("Hyponyms(employee) = %v", hypo)
	}
}

func TestRelated(t *testing.T) {
	l := New()
	rel := l.Related("manager")
	want := map[string]bool{"manager": false, "employee": false, "boss": false}
	for _, r := range rel {
		if _, ok := want[r]; ok {
			want[r] = true
		}
	}
	for w, seen := range want {
		if !seen {
			t.Errorf("Related(manager) missing %q: %v", w, rel)
		}
	}
}

func TestSimilarityTiers(t *testing.T) {
	l := New()
	if s := l.Similarity("salary", "wage"); s != 1 {
		t.Errorf("synonym similarity = %v", s)
	}
	if s := l.Similarity("manager", "employee"); s != 0.8 {
		t.Errorf("hypernym similarity = %v", s)
	}
	if s := l.Similarity("manager", "engineer"); s != 0.6 {
		t.Errorf("sibling similarity = %v", s)
	}
	if s := l.Similarity("salary", "salaries"); s != 1 {
		t.Errorf("stem match = %v", s)
	}
	if s := l.Similarity("budget", "flavor"); s >= 0.6 {
		t.Errorf("unrelated = %v", s)
	}
}

// Property: IsSynonym is symmetric and reflexive; Similarity is symmetric.
func TestPropertySymmetry(t *testing.T) {
	l := New()
	vocab := []string{"salary", "pay", "manager", "employee", "car", "truck", "random", "wage", "client"}
	f := func(ai, bi uint8) bool {
		a := vocab[int(ai)%len(vocab)]
		b := vocab[int(bi)%len(vocab)]
		if l.IsSynonym(a, b) != l.IsSynonym(b, a) {
			return false
		}
		if !l.IsSynonym(a, a) {
			return false
		}
		return l.Similarity(a, b) == l.Similarity(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
