// Package mlsql implements a learned, SQLNet-style sketch semantic parser
// for single-table questions: separate neural classifiers fill the slots
// of a SQL sketch (aggregate, select column, condition count, condition
// columns, operators, ordering), with deterministic pointer-style value
// extraction. Schema-agnostic (question, column) interaction features give
// the cross-domain transfer that SQLNet/TypeSQL exhibit; a TypeSQL-style
// typed-feature channel and a Seq2SQL-style order-sensitive condition
// decoder are available as ablation switches. Its ceiling is single-table
// queries — exactly the class the tutorial assigns the ML family.
package mlsql

import (
	"hash/fnv"
	"math"
	"strings"

	"nlidb/internal/nlp"
	"nlidb/internal/sqldata"
)

// Feature dimensions. Question features are hashed n-grams plus a typed
// channel (zeroed when TypeFeatures is off, keeping dimensions stable).
const (
	qDim  = 192
	tDim  = 48
	QFDim = qDim + tDim + 4 // + global counters
	CFDim = 15
)

func hashTo(s string, dim int) int {
	h := fnv.New32a()
	h.Write([]byte(s))
	return int(h.Sum32()) % dim
}

// tableVocab caches per-table lookup structures for feature extraction.
type tableVocab struct {
	schema *sqldata.Schema
	// colWords maps each column to its stemmed name+synonym words.
	colWords map[string]map[string]bool
	// values maps stemmed data-value tokens to the columns containing them.
	values map[string]map[string]bool
	// distinct holds each text column's distinct values.
	distinct map[string][]string
}

func newTableVocab(t *sqldata.Table) *tableVocab {
	v := &tableVocab{
		schema:   t.Schema,
		colWords: map[string]map[string]bool{},
		values:   map[string]map[string]bool{},
		distinct: map[string][]string{},
	}
	for _, c := range t.Schema.Columns {
		words := map[string]bool{}
		for _, w := range strings.Fields(nlp.NormalizeIdent(c.Name)) {
			words[nlp.Stem(w)] = true
		}
		for _, syn := range c.Synonyms {
			for _, w := range strings.Fields(strings.ToLower(syn)) {
				words[nlp.Stem(w)] = true
			}
		}
		v.colWords[strings.ToLower(c.Name)] = words
		if c.Type == sqldata.TypeText {
			vals, err := t.DistinctText(c.Name)
			if err == nil {
				v.distinct[strings.ToLower(c.Name)] = vals
				for _, val := range vals {
					for _, w := range strings.Fields(strings.ToLower(val)) {
						st := nlp.Stem(w)
						if v.values[st] == nil {
							v.values[st] = map[string]bool{}
						}
						v.values[st][strings.ToLower(c.Name)] = true
					}
				}
			}
		}
	}
	return v
}

// questionFeatures builds the question-level feature vector: hashed stem
// uni/bigrams, an optional typed channel (tokens normalized to <col>,
// <val>, <num> markers — the TypeSQL idea), and global counters.
func questionFeatures(toks []nlp.Token, voc *tableVocab, typed bool) []float64 {
	f := make([]float64, QFDim)
	var prev string
	for _, t := range toks {
		if t.Kind == nlp.KindPunct {
			continue
		}
		f[hashTo("u:"+t.Stem, qDim)]++
		if prev != "" {
			f[hashTo("b:"+prev+"_"+t.Stem, qDim)]++
		}
		prev = t.Stem
	}
	if typed {
		var tprev string
		for _, t := range toks {
			if t.Kind == nlp.KindPunct {
				continue
			}
			tt := typedToken(t, voc)
			f[qDim+hashTo("tu:"+tt, tDim)]++
			if tprev != "" {
				f[qDim+hashTo("tb:"+tprev+"_"+tt, tDim)]++
			}
			tprev = tt
		}
	}
	// Global counters: numbers, quoted, value hits, length bucket.
	nums, quoted, vals := 0, 0, 0
	for _, t := range toks {
		switch {
		case t.Kind == nlp.KindNumber:
			nums++
		case t.Kind == nlp.KindQuoted:
			quoted++
		}
		if voc != nil && voc.values[t.Stem] != nil {
			vals++
		}
	}
	base := qDim + tDim
	f[base] = float64(nums)
	f[base+1] = float64(quoted)
	f[base+2] = float64(vals)
	f[base+3] = float64(len(toks)) / 10.0
	l2normalize(f)
	return f
}

// typedToken maps a token to its TypeSQL-style type marker.
func typedToken(t nlp.Token, voc *tableVocab) string {
	if t.Kind == nlp.KindNumber {
		return "<num>"
	}
	if voc != nil {
		if voc.values[t.Stem] != nil {
			return "<val>"
		}
		for _, words := range voc.colWords {
			if words[t.Stem] {
				return "<col>"
			}
		}
	}
	return t.Stem
}

// columnFeatures builds the (question, column) interaction vector — the
// schema-agnostic channel that lets the model transfer across domains.
func columnFeatures(toks []nlp.Token, voc *tableVocab, col sqldata.Column) []float64 {
	f := make([]float64, CFDim)
	lc := strings.ToLower(col.Name)
	words := voc.colWords[lc]

	matched := 0
	firstPos := -1
	maxSim := 0.0
	for _, t := range toks {
		if t.Kind == nlp.KindPunct || t.IsStop() {
			continue
		}
		if words[t.Stem] {
			matched++
			if firstPos < 0 {
				firstPos = t.Pos
			}
		}
		for w := range words {
			if s := nlp.Similarity(t.Stem, w); s > maxSim {
				maxSim = s
			}
		}
	}
	if len(words) > 0 {
		f[0] = float64(matched) / float64(len(words)) // coverage of col words
	}
	if matched > 0 {
		f[1] = 1
	}
	f[2] = maxSim
	if firstPos >= 0 && len(toks) > 0 {
		f[3] = float64(firstPos) / float64(len(toks))
	}
	// Type one-hots.
	switch col.Type {
	case sqldata.TypeInt:
		f[4] = 1
	case sqldata.TypeFloat:
		f[5] = 1
	case sqldata.TypeText:
		f[6] = 1
	case sqldata.TypeBool:
		f[7] = 1
	case sqldata.TypeDate:
		f[8] = 1
	}
	// A data value of this column appears in the question.
	for _, t := range toks {
		if cols := voc.values[t.Stem]; cols != nil && cols[lc] {
			f[9] = 1
			break
		}
	}
	// A number appears and this column is numeric.
	for _, t := range toks {
		if t.Kind == nlp.KindNumber && col.Type.Numeric() {
			f[10] = 1
			break
		}
	}
	// A comparative phrase appears near the column mention.
	if firstPos >= 0 {
		for _, t := range toks {
			if t.POS == nlp.POSComparative && abs(t.Pos-firstPos) <= 3 {
				f[11] = 1
				break
			}
		}
	}
	// Primary key flag (rarely selected or filtered in NL).
	if col.PrimaryKey {
		f[12] = 1
	}
	// Column mentioned before any number token (select-ish position).
	if firstPos >= 0 {
		f[13] = 1
		for _, t := range toks {
			if t.Kind == nlp.KindNumber && t.Pos < firstPos {
				f[13] = 0
				break
			}
		}
	}
	f[14] = 1 // bias
	return f
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func l2normalize(f []float64) {
	var s float64
	for _, v := range f {
		s += v * v
	}
	if s == 0 {
		return
	}
	inv := 1 / math.Sqrt(s)
	for i := range f {
		f[i] *= inv
	}
}

func concat(a, b []float64) []float64 {
	out := make([]float64, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return out
}
