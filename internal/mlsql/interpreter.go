package mlsql

import (
	"fmt"
	"strings"

	"nlidb/internal/nlp"
	"nlidb/internal/nlq"
	"nlidb/internal/sqldata"
)

// Interpreter adapts a trained Model to the common nlq.Interpreter
// interface over one database. For multi-table databases it routes the
// question to the best-overlapping table — but always emits a
// single-table query, the ML family's ceiling.
type Interpreter struct {
	db    *sqldata.Database
	model *Model
	// FixedTable, when set, pins all questions to one table
	// (WikiSQL-style evaluation).
	FixedTable string
}

// NewInterpreter wraps a trained model for a database.
func NewInterpreter(db *sqldata.Database, model *Model) *Interpreter {
	return &Interpreter{db: db, model: model}
}

// Name implements nlq.Interpreter.
func (i *Interpreter) Name() string {
	if i.model.Cfg.Ordered {
		return "mlsql-ordered"
	}
	return "mlsql"
}

// Interpret routes the question to a table and fills the sketch.
func (i *Interpreter) Interpret(question string) ([]nlq.Interpretation, error) {
	tbl := i.pickTable(question)
	if tbl == nil {
		return nil, fmt.Errorf("%w: no table matches the question", nlq.ErrNoInterpretation)
	}
	stmt, conf, err := i.model.ParseScored(question, tbl)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", nlq.ErrNoInterpretation, err)
	}
	return []nlq.Interpretation{{
		SQL:         stmt,
		Score:       conf,
		Explanation: fmt.Sprintf("sketch decoding over table %s (confidence %.2f)", tbl.Schema.Name, conf),
	}}, nil
}

// pickTable scores tables by stemmed-token overlap with the table name,
// column names, synonyms, and data values.
func (i *Interpreter) pickTable(question string) *sqldata.Table {
	if i.FixedTable != "" {
		return i.db.Table(i.FixedTable)
	}
	toks := nlp.Tokenize(question)
	qstems := map[string]bool{}
	for _, t := range toks {
		if t.Kind == nlp.KindWord && !t.IsStop() {
			qstems[t.Stem] = true
		}
	}
	var best *sqldata.Table
	bestScore := 0
	for _, t := range i.db.Tables() {
		voc := newTableVocab(t)
		score := 0
		for _, w := range strings.Fields(nlp.NormalizeIdent(t.Schema.Name)) {
			if qstems[nlp.Stem(w)] {
				score += 3 // table-name mention dominates
			}
		}
		for _, syn := range t.Schema.Synonyms {
			if qstems[nlp.Stem(strings.ToLower(syn))] {
				score += 3
			}
		}
		for _, words := range voc.colWords {
			for w := range words {
				if qstems[w] {
					score++
				}
			}
		}
		for st := range voc.values {
			if qstems[st] {
				score += 2
			}
		}
		if score > bestScore {
			best, bestScore = t, score
		}
	}
	return best
}
