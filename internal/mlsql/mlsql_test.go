package mlsql

import (
	"encoding/json"
	"testing"

	"nlidb/internal/benchdata"
	"nlidb/internal/dataset"
	"nlidb/internal/lexicon"
	"nlidb/internal/nlp"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlexec"
	"nlidb/internal/sqlparse"
	"nlidb/internal/synth"
)

func TestExtractSlots(t *testing.T) {
	cases := []struct {
		sql    string
		agg    int
		sel    string
		nConds int
		order  int
	}{
		{"SELECT name FROM customer WHERE city = 'Berlin'", 0, "name", 1, 0},
		{"SELECT COUNT(*) FROM customer", aggIndex("COUNT"), "", 0, 0},
		{"SELECT AVG(credit) FROM customer WHERE segment = 'retail'", aggIndex("AVG"), "credit", 1, 0},
		{"SELECT name FROM customer WHERE credit > 100 AND city = 'Berlin'", 0, "name", 2, 0},
		{"SELECT name FROM customer ORDER BY credit DESC LIMIT 3", 0, "name", 0, 1},
	}
	for _, c := range cases {
		sl, err := extractSlots(sqlparse.MustParse(c.sql))
		if err != nil {
			t.Fatalf("extractSlots(%q): %v", c.sql, err)
		}
		if sl.agg != c.agg || sl.selCol != c.sel || len(sl.conds) != c.nConds || sl.order != c.order {
			t.Errorf("%q → %+v", c.sql, sl)
		}
	}
}

func TestExtractSlotsRejectsBeyondSketch(t *testing.T) {
	bad := []string{
		"SELECT a.name FROM a JOIN b ON a.id = b.aid",
		"SELECT name FROM t WHERE x > (SELECT AVG(x) FROM t)",
		"SELECT city, COUNT(*) FROM t GROUP BY city",
		"SELECT name FROM t WHERE a = 1 OR b = 2",
		"SELECT name, city FROM t",
		"SELECT name FROM t WHERE a = 1 AND b = 2 AND c = 3",
	}
	for _, sql := range bad {
		if _, err := extractSlots(sqlparse.MustParse(sql)); err == nil {
			t.Errorf("%q accepted by sketch", sql)
		}
	}
}

func TestSlotsRoundTrip(t *testing.T) {
	sql := "SELECT AVG(credit) FROM customer WHERE city = 'Berlin' AND credit > 100"
	sl, err := extractSlots(sqlparse.MustParse(sql))
	if err != nil {
		t.Fatal(err)
	}
	out := sl.toSQL("customer")
	if !sqlparse.EqualCanonical(out, sqlparse.MustParse(sql)) {
		t.Errorf("round trip: %s vs %s", out, sql)
	}
}

// trainModel trains a small model on the sales domain for tests.
func trainModel(t testing.TB, cfg Config) (*Model, *benchdata.Domain) {
	t.Helper()
	d := benchdata.Sales(100)
	train := synth.TrainingSet(d, 400, 0, lexicon.New(), 200)
	m, skipped, err := Train([]*dataset.Set{train}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if skipped > len(train.Pairs)/2 {
		t.Fatalf("too many skipped: %d/%d", skipped, len(train.Pairs))
	}
	return m, d
}

func TestTrainAndParseAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	cfg := DefaultConfig()
	cfg.Epochs = 25
	m, d := trainModel(t, cfg)

	// Evaluate on a held-out slice of the same distribution.
	test := benchdata.WikiSQLStyle(d, 80, 999)
	tbl := d.DB.Table(d.Main)
	eng := sqlexec.New(d.DB)
	correct := 0
	for _, p := range test.Pairs {
		stmt, err := m.Parse(p.Question, tbl)
		if err != nil {
			continue
		}
		pred, err := eng.Run(stmt)
		if err != nil {
			continue
		}
		gold, err := eng.Run(p.SQL)
		if err != nil {
			t.Fatalf("gold fails: %v", err)
		}
		if pred.EqualUnordered(gold) {
			correct++
		}
	}
	acc := float64(correct) / float64(len(test.Pairs))
	t.Logf("in-domain execution accuracy = %.2f (%d/%d)", acc, correct, len(test.Pairs))
	if acc < 0.5 {
		t.Errorf("model failed to learn: accuracy %.2f", acc)
	}
}

func TestValueExtraction(t *testing.T) {
	d := benchdata.Sales(100)
	tbl := d.DB.Table("customer")
	voc := newTableVocab(tbl)
	toks := tagged("customers in Berlin with credit over 5000")
	col := *tbl.Schema.Column("city")
	v, ok := extractValue(toks, voc, col, 0, map[int]bool{}, map[string]bool{})
	if !ok || v.Text() != "Berlin" {
		t.Fatalf("city value = %v %v", v, ok)
	}
	ncol := *tbl.Schema.Column("credit")
	nv, ok := extractValue(toks, voc, ncol, 1, map[int]bool{}, map[string]bool{})
	if !ok || nv.Float() != 5000 {
		t.Fatalf("credit value = %v %v", nv, ok)
	}
}

func TestLimitNumberNotConsumedAsValue(t *testing.T) {
	d := benchdata.Sales(100)
	tbl := d.DB.Table("customer")
	voc := newTableVocab(tbl)
	toks := tagged("top 3 customers by credit")
	ncol := *tbl.Schema.Column("credit")
	if _, ok := extractValue(toks, voc, ncol, 1, map[int]bool{}, map[string]bool{}); ok {
		t.Fatal("limit number consumed as condition value")
	}
	if extractLimit(toks) != 3 {
		t.Fatal("limit not extracted")
	}
}

func TestInterpreterSingleTableCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	cfg := DefaultConfig()
	cfg.Epochs = 10
	m, d := trainModel(t, cfg)
	in := NewInterpreter(d.DB, m)
	ins, err := in.Interpret("customers of the category toys") // needs a join
	if err != nil {
		return // refusing is fine
	}
	for _, i := range ins {
		if len(i.SQL.From.Joins) != 0 || len(i.SQL.Subqueries()) != 0 {
			t.Fatalf("ML family exceeded single-table ceiling: %s", i.SQL)
		}
	}
}

func TestInterpreterRoutesTables(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	cfg := DefaultConfig()
	cfg.Epochs = 10
	m, d := trainModel(t, cfg)
	in := NewInterpreter(d.DB, m)
	ins, err := in.Interpret("products with price over 100")
	if err != nil {
		t.Fatal(err)
	}
	if ins[0].SQL.From.First.Name != "product" {
		t.Fatalf("routed to %s", ins[0].SQL.From.First.Name)
	}
	if in.Name() != "mlsql" {
		t.Errorf("name = %s", in.Name())
	}
}

func TestModelSerialization(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	cfg := DefaultConfig()
	cfg.Epochs = 5
	m, d := trainModel(t, cfg)
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var m2 Model
	if err := json.Unmarshal(data, &m2); err != nil {
		t.Fatal(err)
	}
	tbl := d.DB.Table(d.Main)
	q := "customers with credit over 1000"
	s1, err1 := m.Parse(q, tbl)
	s2, err2 := m2.Parse(q, tbl)
	if err1 != nil || err2 != nil || s1.String() != s2.String() {
		t.Fatalf("serialization changed behaviour: %v %v %v %v", s1, err1, s2, err2)
	}
}

func TestTrainErrorsOnEmpty(t *testing.T) {
	_, _, err := Train([]*dataset.Set{{Name: "empty", DB: sqldata.NewDatabase("x")}}, DefaultConfig())
	if err == nil {
		t.Fatal("empty training accepted")
	}
}

func TestOrderedVsSketchBothTrain(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	for _, ordered := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.Ordered = ordered
		cfg.Epochs = 8
		m, d := trainModel(t, cfg)
		tbl := d.DB.Table(d.Main)
		if _, err := m.Parse("customers with credit over 1000", tbl); err != nil {
			t.Fatalf("ordered=%v parse: %v", ordered, err)
		}
		_ = d
	}
}

func tagged(q string) []nlp.Token { return nlp.Tag(nlp.Tokenize(q)) }
