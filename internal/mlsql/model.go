package mlsql

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"nlidb/internal/dataset"
	"nlidb/internal/neural"
	"nlidb/internal/nlp"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlparse"
)

// Config tunes training and the ablation switches.
type Config struct {
	// TypeFeatures enables the TypeSQL-style typed channel (ablation A2).
	TypeFeatures bool
	// Ordered switches from the SQLNet-style set decoder to a
	// Seq2SQL-style position-sensitive condition decoder (ablation A1).
	Ordered bool
	// Hidden is the hidden layer width.
	Hidden int
	// Epochs, LR, Momentum drive SGD.
	Epochs   int
	LR       float64
	Momentum float64
	// Seed fixes initialization and shuffling.
	Seed int64
}

// DefaultConfig returns the settings the experiments use.
func DefaultConfig() Config {
	return Config{TypeFeatures: true, Hidden: 24, Epochs: 40, LR: 0.15, Momentum: 0.9, Seed: 1}
}

// Model is the trained sketch parser.
type Model struct {
	Cfg Config

	Agg      *neural.MLP // question → aggregate class
	CondN    *neural.MLP // question → number of conditions
	SelCol   *neural.MLP // (question, column) → selected?
	WhereCol *neural.MLP // (question, column) → in WHERE? (sketch decoder)
	// WhereSlot are the position-specific condition-column decoders
	// (Ordered mode): the Seq2SQL-style sequential decoder conditions on
	// the output position rather than the column identity.
	WhereSlot [maxConds]*neural.MLP
	// OpSlot are the position-specific operator decoders (Ordered mode).
	OpSlot   [maxConds]*neural.MLP
	OpCls    *neural.MLP // (question, column) → operator (sketch mode)
	Order    *neural.MLP // question → none/desc/asc
	OrderCol *neural.MLP // (question, column) → order key?
}

// Train fits the sketch parser on labelled sets. Pairs whose gold query
// does not fit the single-table sketch are skipped (and counted in the
// returned skip count) — the ML family cannot even express them.
func Train(sets []*dataset.Set, cfg Config) (*Model, int, error) {
	if cfg.Hidden <= 0 {
		cfg = DefaultConfig()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{
		Cfg:      cfg,
		Agg:      neural.NewMLP(rng, QFDim, cfg.Hidden, len(aggClasses)),
		CondN:    neural.NewMLP(rng, QFDim, cfg.Hidden, maxConds+1),
		SelCol:   neural.NewMLP(rng, CFDim, cfg.Hidden, 2),
		WhereCol: neural.NewMLP(rng, CFDim, cfg.Hidden, 2),
		OpCls:    neural.NewMLP(rng, QFDim+CFDim, cfg.Hidden, len(opClasses)),
		Order:    neural.NewMLP(rng, QFDim, cfg.Hidden, len(orderClasses)),
		OrderCol: neural.NewMLP(rng, CFDim, cfg.Hidden, 2),
	}
	for i := range m.WhereSlot {
		m.WhereSlot[i] = neural.NewMLP(rng, CFDim, cfg.Hidden, 2)
		m.OpSlot[i] = neural.NewMLP(rng, QFDim, cfg.Hidden, len(opClasses))
	}

	type ex struct {
		x []float64
		y int
	}
	var aggX, cntX, selX, whereX, opX, ordX, ocolX []ex
	slotX := make([][]ex, maxConds)
	opSlotX := make([][]ex, maxConds)

	skipped := 0
	for _, set := range sets {
		vocabs := map[string]*tableVocab{}
		for _, p := range set.Pairs {
			tbl := set.DB.Table(p.Table)
			if tbl == nil && p.SQL != nil && p.SQL.From != nil {
				tbl = set.DB.Table(p.SQL.From.First.Name)
			}
			if tbl == nil {
				skipped++
				continue
			}
			sl, err := extractSlots(p.SQL)
			if err != nil {
				skipped++
				continue
			}
			key := strings.ToLower(tbl.Schema.Name)
			voc := vocabs[key]
			if voc == nil {
				voc = newTableVocab(tbl)
				vocabs[key] = voc
			}
			toks := nlp.Tag(nlp.Tokenize(p.Question))
			qf := questionFeatures(toks, voc, cfg.TypeFeatures)

			aggX = append(aggX, ex{qf, sl.agg})
			cntX = append(cntX, ex{qf, len(sl.conds)})
			ordX = append(ordX, ex{qf, sl.order})

			condCols := map[string]int{} // col → slot position
			for i, c := range sl.conds {
				condCols[c.col] = i
			}
			for _, col := range tbl.Schema.Columns {
				lc := strings.ToLower(col.Name)
				cf := columnFeatures(toks, voc, col)
				selLabel := 0
				if !sl.aggStar && lc == sl.selCol {
					selLabel = 1
				}
				selX = append(selX, ex{cf, selLabel})
				wLabel := 0
				if _, ok := condCols[lc]; ok {
					wLabel = 1
				}
				whereX = append(whereX, ex{cf, wLabel})
				for slot := 0; slot < maxConds && slot < len(sl.conds); slot++ {
					lbl := 0
					if sl.conds[slot].col == lc {
						lbl = 1
					}
					slotX[slot] = append(slotX[slot], ex{cf, lbl})
				}
				if sl.order > 0 {
					oLabel := 0
					if lc == sl.orderBy {
						oLabel = 1
					}
					ocolX = append(ocolX, ex{cf, oLabel})
				}
			}
			for ci, c := range sl.conds {
				cf := columnFeatures(toks, voc, *tbl.Schema.Column(c.col))
				opX = append(opX, ex{concat(qf, cf), c.op})
				if ci < maxConds {
					opSlotX[ci] = append(opSlotX[ci], ex{qf, c.op})
				}
			}
		}
	}
	if len(aggX) == 0 {
		return nil, skipped, fmt.Errorf("mlsql: no trainable examples")
	}

	fit := func(mlp *neural.MLP, data []ex) {
		if len(data) == 0 {
			return
		}
		xs := make([][]float64, len(data))
		ys := make([]int, len(data))
		for i, e := range data {
			xs[i], ys[i] = e.x, e.y
		}
		mlp.Fit(rng, xs, ys, cfg.Epochs, 16, cfg.LR, cfg.Momentum)
	}
	fit(m.Agg, aggX)
	fit(m.CondN, cntX)
	fit(m.SelCol, selX)
	if cfg.Ordered {
		for i := range m.WhereSlot {
			fit(m.WhereSlot[i], slotX[i])
			fit(m.OpSlot[i], opSlotX[i])
		}
	} else {
		fit(m.WhereCol, whereX)
		fit(m.OpCls, opX)
	}
	fit(m.Order, ordX)
	fit(m.OrderCol, ocolX)
	return m, skipped, nil
}

// Parse translates a question against one table into SQL.
func (m *Model) Parse(question string, tbl *sqldata.Table) (*sqlparse.SelectStmt, error) {
	stmt, _, err := m.ParseScored(question, tbl)
	return stmt, err
}

// ParseScored additionally returns the decoder's confidence: the
// geometric mean of the probabilities of every slot decision taken.
func (m *Model) ParseScored(question string, tbl *sqldata.Table) (*sqlparse.SelectStmt, float64, error) {
	voc := newTableVocab(tbl)
	toks := nlp.Tag(nlp.Tokenize(question))
	qf := questionFeatures(toks, voc, m.Cfg.TypeFeatures)

	var probProduct float64 = 1
	nProbs := 0
	note := func(p float64) {
		if p < 1e-6 {
			p = 1e-6
		}
		probProduct *= p
		nProbs++
	}

	sl := &slots{limit: -1}
	aggProbs := m.Agg.Probs(qf)
	sl.agg = argmax(aggProbs)
	note(aggProbs[sl.agg])

	// Score columns for the SELECT slot.
	type scored struct {
		col   sqldata.Column
		cf    []float64
		score float64
	}
	cols := make([]scored, 0, len(tbl.Schema.Columns))
	for _, c := range tbl.Schema.Columns {
		cf := columnFeatures(toks, voc, c)
		cols = append(cols, scored{col: c, cf: cf, score: m.SelCol.Probs(cf)[1]})
	}
	best := -1
	for i := range cols {
		if best < 0 || cols[i].score > cols[best].score {
			best = i
		}
	}
	if best < 0 {
		return nil, 0, fmt.Errorf("mlsql: table has no columns")
	}
	if sl.agg == aggIndex("COUNT") && cols[best].score < 0.5 {
		sl.aggStar = true
	} else {
		sl.selCol = strings.ToLower(cols[best].col.Name)
		note(cols[best].score)
	}

	// Condition count and columns.
	cntProbs := m.CondN.Probs(qf)
	n := argmax(cntProbs)
	note(cntProbs[n])
	if n > maxConds {
		n = maxConds
	}
	var condCols []scored
	if m.Cfg.Ordered {
		for slot := 0; slot < n; slot++ {
			bi, bs := -1, -1.0
			for i := range cols {
				s := m.WhereSlot[slot].Probs(cols[i].cf)[1]
				dup := false
				for _, cc := range condCols {
					if cc.col.Name == cols[i].col.Name {
						dup = true
					}
				}
				if !dup && s > bs {
					bi, bs = i, s
				}
			}
			if bi >= 0 {
				condCols = append(condCols, cols[bi])
			}
		}
	} else {
		ranked := append([]scored(nil), cols...)
		sort.SliceStable(ranked, func(i, j int) bool {
			wi := m.WhereCol.Probs(ranked[i].cf)[1]
			wj := m.WhereCol.Probs(ranked[j].cf)[1]
			return wi > wj
		})
		for i := 0; i < n && i < len(ranked); i++ {
			condCols = append(condCols, ranked[i])
		}
	}

	// Operators and values per condition. The sketch decoder ties the
	// operator to the column; the ordered decoder ties it to the slot
	// position, which is exactly what breaks when condition order in the
	// training data carries no signal.
	usedNums := map[int]bool{}
	usedVals := map[string]bool{}
	for slot, cc := range condCols {
		var op int
		if m.Cfg.Ordered && slot < maxConds {
			ops := m.OpSlot[slot].Probs(qf)
			op = argmax(ops)
			note(ops[op])
		} else {
			ops := m.OpCls.Probs(concat(qf, cc.cf))
			op = argmax(ops)
			note(ops[op])
		}
		note(m.whereProb(cc.cf, slot))
		val, ok := extractValue(toks, voc, cc.col, op, usedNums, usedVals)
		if !ok {
			continue
		}
		sl.conds = append(sl.conds, condSlot{col: strings.ToLower(cc.col.Name), op: op, val: val})
	}

	// Ordering.
	ordProbs := m.Order.Probs(qf)
	sl.order = argmax(ordProbs)
	note(ordProbs[sl.order])
	if sl.order > 0 {
		bi, bs := -1, -1.0
		for i := range cols {
			s := m.OrderCol.Probs(cols[i].cf)[1]
			if s > bs {
				bi, bs = i, s
			}
		}
		if bi >= 0 {
			sl.orderBy = strings.ToLower(cols[bi].col.Name)
			sl.limit = extractLimit(toks)
		} else {
			sl.order = 0
		}
	}

	conf := 1.0
	if nProbs > 0 {
		conf = math.Pow(probProduct, 1/float64(nProbs))
	}
	return sl.toSQL(tbl.Schema.Name), conf, nil
}

// whereProb scores a column's membership in WHERE for the active decoder.
func (m *Model) whereProb(cf []float64, slot int) float64 {
	if m.Cfg.Ordered && slot < maxConds {
		return m.WhereSlot[slot].Probs(cf)[1]
	}
	return m.WhereCol.Probs(cf)[1]
}

func argmax(ps []float64) int {
	best, bi := -1.0, 0
	for i, p := range ps {
		if p > best {
			best, bi = p, i
		}
	}
	return bi
}

// extractValue points into the question for the condition value:
// numeric columns consume number tokens left to right; text columns match
// the column's distinct data values against the question.
func extractValue(toks []nlp.Token, voc *tableVocab, col sqldata.Column, op int, usedNums map[int]bool, usedVals map[string]bool) (sqldata.Value, bool) {
	if col.Type.Numeric() {
		for _, t := range toks {
			if t.Kind == nlp.KindNumber && !usedNums[t.Pos] && !isLimitNumber(toks, t.Pos) {
				usedNums[t.Pos] = true
				if col.Type == sqldata.TypeInt && t.Num == float64(int64(t.Num)) {
					return sqldata.NewInt(int64(t.Num)), true
				}
				return sqldata.NewFloat(t.Num), true
			}
		}
		return sqldata.Value{}, false
	}
	if col.Type == sqldata.TypeText {
		lc := strings.ToLower(col.Name)
		// Longest distinct value whose stemmed words all appear in order.
		qwords := map[string]bool{}
		for _, t := range toks {
			qwords[t.Stem] = true
			if t.Kind == nlp.KindQuoted {
				for _, w := range strings.Fields(strings.ToLower(t.Text)) {
					qwords[nlp.Stem(w)] = true
				}
			}
		}
		bestVal, bestLen := "", 0
		for _, v := range voc.distinct[lc] {
			if usedVals[lc+"="+v] {
				continue
			}
			words := strings.Fields(strings.ToLower(v))
			all := true
			for _, w := range words {
				if !qwords[nlp.Stem(w)] {
					all = false
					break
				}
			}
			if all && len(words) > bestLen {
				bestVal, bestLen = v, len(words)
			}
		}
		if bestVal != "" {
			usedVals[lc+"="+bestVal] = true
			return sqldata.NewText(bestVal), true
		}
	}
	return sqldata.Value{}, false
}

// isLimitNumber reports whether the number token at pos belongs to a
// "top N" phrase rather than a condition.
func isLimitNumber(toks []nlp.Token, pos int) bool {
	if pos > 0 {
		switch toks[pos-1].Lower {
		case "top", "first", "bottom", "last":
			return true
		}
	}
	return false
}

// extractLimit finds the K of a top-k phrase, defaulting to 1.
func extractLimit(toks []nlp.Token) int {
	for i, t := range toks {
		if t.Kind == nlp.KindNumber && isLimitNumber(toks, i) {
			return int(t.Num)
		}
	}
	return 1
}

// MarshalJSON serializes the whole model (weights + config).
func (m *Model) MarshalJSON() ([]byte, error) {
	type alias Model
	return json.Marshal((*alias)(m))
}

// UnmarshalJSON restores a serialized model.
func (m *Model) UnmarshalJSON(data []byte) error {
	type alias Model
	return json.Unmarshal(data, (*alias)(m))
}
