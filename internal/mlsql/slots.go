package mlsql

import (
	"fmt"
	"strings"

	"nlidb/internal/sqldata"
	"nlidb/internal/sqlparse"
)

// aggClass indexes the aggregate slot classes.
var aggClasses = []string{"", "COUNT", "SUM", "AVG", "MIN", "MAX"}

func aggIndex(name string) int {
	for i, a := range aggClasses {
		if a == name {
			return i
		}
	}
	return 0
}

// opClasses indexes the condition-operator slot.
var opClasses = []string{"=", ">", "<"}

func opIndex(op string) int {
	for i, o := range opClasses {
		if o == op {
			return i
		}
	}
	return 0
}

// orderClasses indexes the ordering slot: none, descending, ascending.
var orderClasses = []string{"", "DESC", "ASC"}

// maxConds is the sketch's condition capacity (WikiSQL-style questions
// rarely exceed two).
const maxConds = 2

// slots is the sketch decomposition of a gold single-table query.
type slots struct {
	agg     int // index into aggClasses
	aggStar bool
	selCol  string // lower-case column; empty for COUNT(*)
	conds   []condSlot
	order   int    // index into orderClasses
	orderBy string // column when order != 0
	limit   int    // -1 none
}

type condSlot struct {
	col string
	op  int // index into opClasses
	val sqldata.Value
}

// extractSlots decomposes a gold statement into sketch slots. It fails for
// queries outside the sketch (joins, sub-queries, GROUP BY, multiple
// projections) — exactly the ML family's ceiling.
func extractSlots(stmt *sqlparse.SelectStmt) (*slots, error) {
	if stmt.From == nil || len(stmt.From.Joins) > 0 {
		return nil, fmt.Errorf("mlsql: sketch covers single tables only")
	}
	if len(stmt.Subqueries()) > 0 || len(stmt.GroupBy) > 0 || stmt.Having != nil {
		return nil, fmt.Errorf("mlsql: sketch covers flat queries only")
	}
	if len(stmt.Items) != 1 {
		return nil, fmt.Errorf("mlsql: sketch covers one projection, got %d", len(stmt.Items))
	}

	s := &slots{limit: stmt.Limit}

	switch e := stmt.Items[0].Expr.(type) {
	case *sqlparse.ColumnRef:
		s.selCol = strings.ToLower(e.Column)
	case *sqlparse.FuncCall:
		if !e.IsAggregate() {
			return nil, fmt.Errorf("mlsql: non-aggregate function %s", e.Name)
		}
		s.agg = aggIndex(e.Name)
		if e.Star {
			s.aggStar = true
		} else if col, ok := e.Args[0].(*sqlparse.ColumnRef); ok {
			s.selCol = strings.ToLower(col.Column)
		} else {
			return nil, fmt.Errorf("mlsql: aggregate over non-column")
		}
	default:
		if stmt.Items[0].Star {
			return nil, fmt.Errorf("mlsql: star projection outside sketch")
		}
		return nil, fmt.Errorf("mlsql: unsupported projection %T", e)
	}

	if stmt.Where != nil {
		conds, err := flattenConds(stmt.Where)
		if err != nil {
			return nil, err
		}
		if len(conds) > maxConds {
			return nil, fmt.Errorf("mlsql: %d conditions exceed sketch capacity", len(conds))
		}
		s.conds = conds
	}

	if len(stmt.OrderBy) > 0 {
		if len(stmt.OrderBy) > 1 {
			return nil, fmt.Errorf("mlsql: sketch covers one order key")
		}
		col, ok := stmt.OrderBy[0].Expr.(*sqlparse.ColumnRef)
		if !ok {
			return nil, fmt.Errorf("mlsql: order by non-column")
		}
		s.orderBy = strings.ToLower(col.Column)
		if stmt.OrderBy[0].Desc {
			s.order = 1
		} else {
			s.order = 2
		}
	}
	return s, nil
}

// flattenConds decomposes an AND-chain of col-op-literal comparisons.
func flattenConds(e sqlparse.Expr) ([]condSlot, error) {
	if b, ok := e.(*sqlparse.BinaryExpr); ok && b.Op == "AND" {
		l, err := flattenConds(b.L)
		if err != nil {
			return nil, err
		}
		r, err := flattenConds(b.R)
		if err != nil {
			return nil, err
		}
		return append(l, r...), nil
	}
	b, ok := e.(*sqlparse.BinaryExpr)
	if !ok {
		return nil, fmt.Errorf("mlsql: condition %T outside sketch", e)
	}
	col, ok := b.L.(*sqlparse.ColumnRef)
	if !ok {
		return nil, fmt.Errorf("mlsql: condition lhs %T outside sketch", b.L)
	}
	lit, ok := b.R.(*sqlparse.Literal)
	if !ok {
		return nil, fmt.Errorf("mlsql: condition rhs %T outside sketch", b.R)
	}
	op := b.Op
	switch op {
	case ">=":
		op = ">"
	case "<=":
		op = "<"
	}
	if op != "=" && op != ">" && op != "<" {
		return nil, fmt.Errorf("mlsql: operator %q outside sketch", b.Op)
	}
	return []condSlot{{col: strings.ToLower(col.Column), op: opIndex(op), val: lit.Val}}, nil
}

// toSQL re-assembles a sketch into a statement over the given table.
func (s *slots) toSQL(table string) *sqlparse.SelectStmt {
	stmt := sqlparse.NewSelect()
	stmt.From = &sqlparse.FromClause{First: sqlparse.TableRef{Name: strings.ToLower(table)}}
	var proj sqlparse.Expr
	switch {
	case s.agg > 0 && s.aggStar:
		proj = &sqlparse.FuncCall{Name: aggClasses[s.agg], Star: true}
	case s.agg > 0:
		proj = &sqlparse.FuncCall{Name: aggClasses[s.agg], Args: []sqlparse.Expr{&sqlparse.ColumnRef{Column: s.selCol}}}
	default:
		proj = &sqlparse.ColumnRef{Column: s.selCol}
	}
	stmt.Items = []sqlparse.SelectItem{{Expr: proj}}

	var where sqlparse.Expr
	for _, c := range s.conds {
		cond := &sqlparse.BinaryExpr{
			Op: opClasses[c.op],
			L:  &sqlparse.ColumnRef{Column: c.col},
			R:  &sqlparse.Literal{Val: c.val},
		}
		if where == nil {
			where = cond
		} else {
			where = &sqlparse.BinaryExpr{Op: "AND", L: where, R: cond}
		}
	}
	stmt.Where = where

	if s.order > 0 && s.orderBy != "" {
		stmt.OrderBy = []sqlparse.OrderItem{{Expr: &sqlparse.ColumnRef{Column: s.orderBy}, Desc: s.order == 1}}
		stmt.Limit = s.limit
	}
	return stmt
}
