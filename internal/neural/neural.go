// Package neural is a small, dependency-free neural-network library: dense
// layers with ReLU activations, softmax cross-entropy loss, and minibatch
// SGD with momentum. It is the training substrate for the learned semantic
// parser in package mlsql, standing in for the deep-learning frameworks
// the surveyed ML-based NLIDB systems use (the survey's claims under test
// concern training-data dependence and robustness, which a compact MLP
// reproduces at laptop scale).
package neural

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
)

// leak is the negative-side slope of the leaky rectifier. A plain ReLU
// (slope 0) lets whole hidden layers die under momentum SGD — the network
// then predicts class priors forever; the leak keeps gradients flowing.
const leak = 0.05

// Layer is one dense layer: out = act(W·in + b).
type Layer struct {
	In, Out int
	// W is row-major Out×In.
	W []float64
	B []float64
	// ReLU applies the (leaky) rectifier; the last layer of a classifier
	// leaves it false (logits).
	ReLU bool

	// Momentum buffers (not serialized).
	vw, vb []float64
}

// MLP is a feed-forward classifier.
type MLP struct {
	Layers []*Layer
}

// NewMLP builds an MLP with the given layer sizes (e.g. 256, 32, 6 is a
// 256-input, one-hidden-layer, 6-class model) using He initialization
// from the provided RNG (pass a fixed seed for reproducibility).
func NewMLP(rng *rand.Rand, sizes ...int) *MLP {
	if len(sizes) < 2 {
		panic("neural: NewMLP needs at least input and output sizes")
	}
	m := &MLP{}
	for i := 0; i+1 < len(sizes); i++ {
		in, out := sizes[i], sizes[i+1]
		l := &Layer{
			In: in, Out: out,
			W:    make([]float64, in*out),
			B:    make([]float64, out),
			ReLU: i+2 < len(sizes),
			vw:   make([]float64, in*out),
			vb:   make([]float64, out),
		}
		scale := math.Sqrt(2.0 / float64(in))
		for j := range l.W {
			l.W[j] = rng.NormFloat64() * scale
		}
		m.Layers = append(m.Layers, l)
	}
	return m
}

// Forward computes the network output (logits) for one input.
func (m *MLP) Forward(x []float64) []float64 {
	h := x
	for _, l := range m.Layers {
		h = l.forward(h)
	}
	return h
}

func (l *Layer) forward(x []float64) []float64 {
	if len(x) != l.In {
		panic(fmt.Sprintf("neural: layer expects %d inputs, got %d", l.In, len(x)))
	}
	out := make([]float64, l.Out)
	for o := 0; o < l.Out; o++ {
		s := l.B[o]
		row := l.W[o*l.In : (o+1)*l.In]
		for i, xi := range x {
			s += row[i] * xi
		}
		if l.ReLU && s < 0 {
			s *= leak
		}
		out[o] = s
	}
	return out
}

// Softmax converts logits to probabilities (numerically stable).
func Softmax(logits []float64) []float64 {
	maxv := math.Inf(-1)
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	out := make([]float64, len(logits))
	var sum float64
	for i, v := range logits {
		e := math.Exp(v - maxv)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// Predict returns the argmax class for x.
func (m *MLP) Predict(x []float64) int {
	logits := m.Forward(x)
	best, bi := math.Inf(-1), 0
	for i, v := range logits {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// Probs returns class probabilities for x.
func (m *MLP) Probs(x []float64) []float64 { return Softmax(m.Forward(x)) }

// TrainBatch runs one SGD-with-momentum step on a minibatch and returns
// the mean cross-entropy loss. ys are class indices.
func (m *MLP) TrainBatch(xs [][]float64, ys []int, lr, momentum float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if len(xs) != len(ys) {
		panic("neural: TrainBatch length mismatch")
	}
	// Accumulated gradients.
	gw := make([][]float64, len(m.Layers))
	gb := make([][]float64, len(m.Layers))
	for li, l := range m.Layers {
		gw[li] = make([]float64, len(l.W))
		gb[li] = make([]float64, len(l.B))
	}

	var loss float64
	for n, x := range xs {
		// Forward pass, keeping activations.
		acts := [][]float64{x}
		h := x
		for _, l := range m.Layers {
			h = l.forward(h)
			acts = append(acts, h)
		}
		probs := Softmax(h)
		p := probs[ys[n]]
		if p < 1e-12 {
			p = 1e-12
		}
		loss += -math.Log(p)

		// Backward: dL/dlogits = probs - onehot.
		delta := make([]float64, len(probs))
		copy(delta, probs)
		delta[ys[n]] -= 1

		for li := len(m.Layers) - 1; li >= 0; li-- {
			l := m.Layers[li]
			in := acts[li]
			out := acts[li+1]
			// Leaky-ReLU derivative (applied to this layer's outputs).
			if l.ReLU {
				for o := range delta {
					if out[o] <= 0 {
						delta[o] *= leak
					}
				}
			}
			// Gradients.
			for o := 0; o < l.Out; o++ {
				d := delta[o]
				if d == 0 {
					continue
				}
				gb[li][o] += d
				row := gw[li][o*l.In : (o+1)*l.In]
				for i, xi := range in {
					row[i] += d * xi
				}
			}
			// Propagate.
			if li > 0 {
				nd := make([]float64, l.In)
				for o := 0; o < l.Out; o++ {
					d := delta[o]
					if d == 0 {
						continue
					}
					row := l.W[o*l.In : (o+1)*l.In]
					for i := range nd {
						nd[i] += d * row[i]
					}
				}
				delta = nd
			}
		}
	}

	inv := 1.0 / float64(len(xs))
	for li, l := range m.Layers {
		if l.vw == nil {
			l.vw = make([]float64, len(l.W))
			l.vb = make([]float64, len(l.B))
		}
		for i := range l.W {
			l.vw[i] = momentum*l.vw[i] - lr*gw[li][i]*inv
			l.W[i] += l.vw[i]
		}
		for i := range l.B {
			l.vb[i] = momentum*l.vb[i] - lr*gb[li][i]*inv
			l.B[i] += l.vb[i]
		}
	}
	return loss * inv
}

// Fit trains for epochs over the whole set with the given batch size,
// shuffling with rng each epoch; returns the final epoch's mean loss.
func (m *MLP) Fit(rng *rand.Rand, xs [][]float64, ys []int, epochs, batch int, lr, momentum float64) float64 {
	if batch <= 0 {
		batch = 16
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	var last float64
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var total float64
		var steps int
		for s := 0; s < len(idx); s += batch {
			e := s + batch
			if e > len(idx) {
				e = len(idx)
			}
			bx := make([][]float64, 0, e-s)
			by := make([]int, 0, e-s)
			for _, i := range idx[s:e] {
				bx = append(bx, xs[i])
				by = append(by, ys[i])
			}
			total += m.TrainBatch(bx, by, lr, momentum)
			steps++
		}
		if steps > 0 {
			last = total / float64(steps)
		}
	}
	return last
}

// Loss computes the mean cross-entropy of the model on a labelled set.
func (m *MLP) Loss(xs [][]float64, ys []int) float64 {
	var total float64
	for i, x := range xs {
		p := m.Probs(x)[ys[i]]
		if p < 1e-12 {
			p = 1e-12
		}
		total += -math.Log(p)
	}
	return total / float64(len(xs))
}

// MarshalJSON / UnmarshalJSON round-trip model weights for cmd/nlidb-train.

type layerJSON struct {
	In, Out int
	W, B    []float64
	ReLU    bool
}

// MarshalJSON serializes the model weights.
func (m *MLP) MarshalJSON() ([]byte, error) {
	ls := make([]layerJSON, len(m.Layers))
	for i, l := range m.Layers {
		ls[i] = layerJSON{In: l.In, Out: l.Out, W: l.W, B: l.B, ReLU: l.ReLU}
	}
	return json.Marshal(ls)
}

// UnmarshalJSON restores model weights.
func (m *MLP) UnmarshalJSON(data []byte) error {
	var ls []layerJSON
	if err := json.Unmarshal(data, &ls); err != nil {
		return err
	}
	m.Layers = nil
	for _, l := range ls {
		if len(l.W) != l.In*l.Out || len(l.B) != l.Out {
			return fmt.Errorf("neural: corrupt layer %dx%d", l.In, l.Out)
		}
		m.Layers = append(m.Layers, &Layer{In: l.In, Out: l.Out, W: l.W, B: l.B, ReLU: l.ReLU,
			vw: make([]float64, len(l.W)), vb: make([]float64, len(l.B))})
	}
	return nil
}
