package neural

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

func TestForwardShapes(t *testing.T) {
	m := NewMLP(rand.New(rand.NewSource(1)), 4, 8, 3)
	out := m.Forward([]float64{1, 0, -1, 0.5})
	if len(out) != 3 {
		t.Fatalf("output size = %d", len(out))
	}
	probs := m.Probs([]float64{1, 0, -1, 0.5})
	var sum float64
	for _, p := range probs {
		if p < 0 || p > 1 {
			t.Fatalf("prob out of range: %v", probs)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probs sum to %v", sum)
	}
}

func TestSoftmaxStable(t *testing.T) {
	p := Softmax([]float64{1000, 1000, 1000})
	for _, v := range p {
		if math.Abs(v-1.0/3) > 1e-9 {
			t.Fatalf("softmax overflow: %v", p)
		}
	}
}

// Numerical gradient check: analytic gradients from one TrainBatch step
// must match finite differences of the loss.
func TestGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMLP(rng, 3, 4, 2)
	x := []float64{0.5, -0.2, 0.8}
	y := 1

	// Analytic gradient via a tiny-lr step: W' = W - lr*g → g = (W-W')/lr.
	clone := func(m *MLP) *MLP {
		data, _ := json.Marshal(m)
		var c MLP
		if err := json.Unmarshal(data, &c); err != nil {
			t.Fatal(err)
		}
		return &c
	}
	m2 := clone(m)
	const lr = 1e-6
	m2.TrainBatch([][]float64{x}, []int{y}, lr, 0)

	lossAt := func(mm *MLP) float64 { return mm.Loss([][]float64{x}, []int{y}) }
	const eps = 1e-5
	checked := 0
	for li, l := range m.Layers {
		for wi := 0; wi < len(l.W); wi += 3 { // sample every third weight
			mp := clone(m)
			mp.Layers[li].W[wi] += eps
			mn := clone(m)
			mn.Layers[li].W[wi] -= eps
			numeric := (lossAt(mp) - lossAt(mn)) / (2 * eps)
			analytic := (m.Layers[li].W[wi] - m2.Layers[li].W[wi]) / lr
			if math.Abs(numeric-analytic) > 1e-3*(1+math.Abs(numeric)) {
				t.Fatalf("grad mismatch layer %d w%d: numeric %v analytic %v", li, wi, numeric, analytic)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no weights checked")
	}
}

// The model must learn XOR — a non-linearly-separable function — proving
// the hidden layer and backprop work end to end.
func TestLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := NewMLP(rng, 2, 8, 2)
	xs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	ys := []int{0, 1, 1, 0}
	m.Fit(rng, xs, ys, 2000, 4, 0.5, 0.9)
	for i, x := range xs {
		if got := m.Predict(x); got != ys[i] {
			t.Fatalf("XOR(%v) = %d, want %d", x, got, ys[i])
		}
	}
}

func TestFitReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP(rng, 5, 10, 3)
	var xs [][]float64
	var ys []int
	for i := 0; i < 90; i++ {
		c := i % 3
		x := make([]float64, 5)
		for j := range x {
			x[j] = rng.NormFloat64() * 0.1
		}
		x[c] += 1.0
		xs = append(xs, x)
		ys = append(ys, c)
	}
	before := m.Loss(xs, ys)
	m.Fit(rng, xs, ys, 50, 16, 0.1, 0.9)
	after := m.Loss(xs, ys)
	if after >= before {
		t.Fatalf("loss did not decrease: %v → %v", before, after)
	}
	correct := 0
	for i, x := range xs {
		if m.Predict(x) == ys[i] {
			correct++
		}
	}
	if correct < 80 {
		t.Fatalf("train accuracy = %d/90", correct)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := NewMLP(rng, 3, 4, 2)
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var m2 MLP
	if err := json.Unmarshal(data, &m2); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, 0.2, 0.3}
	a, b := m.Forward(x), m2.Forward(x)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("round-trip changed output: %v vs %v", a, b)
		}
	}
	if err := m2.UnmarshalJSON([]byte(`[{"In":2,"Out":2,"W":[1],"B":[0,0]}]`)); err == nil {
		t.Error("corrupt layer accepted")
	}
}

func TestDeterministicTraining(t *testing.T) {
	train := func() []float64 {
		rng := rand.New(rand.NewSource(11))
		m := NewMLP(rng, 2, 4, 2)
		xs := [][]float64{{0, 1}, {1, 0}}
		ys := []int{1, 0}
		m.Fit(rng, xs, ys, 20, 2, 0.1, 0.9)
		return m.Forward([]float64{0.5, 0.5})
	}
	a, b := train(), train()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("training is nondeterministic with fixed seed")
		}
	}
}
