package nlp

import (
	"testing"
	"unicode/utf8"
)

// FuzzTokenize asserts the tokenizer's total-function contract: any input
// — however mangled — tokenizes without panicking, every token carries a
// consistent lower/stem form, and downstream helpers (Words, Tag) accept
// the result. The seed corpus covers the question shapes the benchdata
// generators produce, plus quoting and unicode edge cases.
// Run with: go test -run=^$ -fuzz=FuzzTokenize ./internal/nlp
func FuzzTokenize(f *testing.F) {
	seeds := []string{
		// benchdata question shapes.
		"show me all customers in Berlin",
		"which products cost more than 99.5?",
		"average order total by city",
		"how many orders were placed after '2018-01-01'",
		"customers whose name is \"ann\" or 'bob'",
		"list the top 5 movies by rating",
		"patients treated by doctors with specialty cardiology",
		"flights from berlin to munich on monday",
		// edge cases.
		"", "   ", "'", "\"", "'unterminated", "it's five-o'clock",
		"３.１４ naïve café — ¿qué?", "a\x00b", "1e9 .5 5.",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		toks := Tokenize(s)
		for i, tok := range toks {
			if tok.Pos != i {
				t.Fatalf("token %d of %q has Pos %d", i, s, tok.Pos)
			}
			if tok.Kind != KindQuoted && tok.Text == "" {
				t.Fatalf("token %d of %q is empty", i, s)
			}
			if utf8.ValidString(s) && !utf8.ValidString(tok.Text) {
				t.Fatalf("token %d of valid-UTF8 %q is invalid UTF-8: %q", i, s, tok.Text)
			}
		}
		// Downstream consumers must accept any tokenization.
		Words(toks)
		Tag(toks)
	})
}
