package nlp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTokenizeBasics(t *testing.T) {
	toks := Tokenize(`show employees with salary over 50,000 in "New York"`)
	var words []string
	for _, tok := range toks {
		words = append(words, tok.Text)
	}
	want := []string{"show", "employees", "with", "salary", "over", "50000", "in", "New York"}
	if len(words) != len(want) {
		t.Fatalf("tokens = %v", words)
	}
	for i := range want {
		if words[i] != want[i] {
			t.Errorf("token[%d] = %q, want %q", i, words[i], want[i])
		}
	}
	if toks[5].Kind != KindNumber || toks[5].Num != 50000 {
		t.Errorf("number token = %+v", toks[5])
	}
	if toks[7].Kind != KindQuoted {
		t.Errorf("quoted token = %+v", toks[7])
	}
}

func TestTokenizeApostropheAndHyphen(t *testing.T) {
	toks := Tokenize("o'brien's year-to-date sales")
	if toks[0].Text != "o'brien's" {
		t.Errorf("apostrophe word = %q", toks[0].Text)
	}
	if toks[1].Text != "year-to-date" {
		t.Errorf("hyphen word = %q", toks[1].Text)
	}
}

func TestTokenizeNumberWords(t *testing.T) {
	toks := Tokenize("top five customers")
	if toks[1].Kind != KindNumber || toks[1].Num != 5 {
		t.Errorf("'five' = %+v", toks[1])
	}
}

func TestTokenizeDecimal(t *testing.T) {
	toks := Tokenize("rating above 4.5.")
	if toks[2].Kind != KindNumber || toks[2].Num != 4.5 {
		t.Errorf("decimal = %+v", toks[2])
	}
	last := toks[len(toks)-1]
	if last.Kind != KindPunct {
		t.Errorf("trailing period = %+v", last)
	}
}

func TestWordsFiltersStopwords(t *testing.T) {
	toks := Tokenize("please show me all the employees in the sales department")
	w := Words(toks)
	var got []string
	for _, tok := range w {
		got = append(got, tok.Lower)
	}
	// "please show me all the ... the" drop; "in" is a preposition we keep.
	want := []string{"employees", "in", "sales", "department"}
	if len(got) != len(want) {
		t.Fatalf("Words = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Words[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestStem(t *testing.T) {
	cases := map[string]string{
		"customers": "customer",
		"cities":    "city",
		"salaries":  "salary",
		"classes":   "class",
		"boxes":     "box",
		"branches":  "branch",
		"employees": "employee",
		"running":   "run",
		"hired":     "hire",
		"hiring":    "hire",
		"stopped":   "stop",
		"people":    "person",
		"children":  "child",
		"status":    "status",
		"analysis":  "analysis", // -is retained
		"cat":       "cat",
		"sold":      "sell",
		"series":    "series",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemIdempotentOnCommonWords(t *testing.T) {
	for _, w := range []string{"customer", "city", "salary", "employee", "department", "order", "product"} {
		if Stem(Stem(w)) != Stem(w) {
			t.Errorf("Stem not idempotent on %q: %q then %q", w, Stem(w), Stem(Stem(w)))
		}
	}
}

func TestTag(t *testing.T) {
	toks := Tag(Tokenize("which customers bought the most expensive product in 2020"))
	wantPOS := map[string]POS{
		"which":     POSWh,
		"customers": POSNoun,
		"bought":    POSNoun, // unknown word defaults; acceptable for interpretation
		"most":      POSSuperlative,
		"expensive": POSAdj,
		"product":   POSNoun,
		"in":        POSPrep,
		"2020":      POSNum,
	}
	for _, tok := range toks {
		if want, ok := wantPOS[tok.Lower]; ok && tok.Lower != "bought" && tok.Lower != "expensive" {
			if tok.POS != want {
				t.Errorf("POS(%q) = %v, want %v", tok.Lower, tok.POS, want)
			}
		}
	}
}

func TestTagComparativesAndNouns(t *testing.T) {
	toks := Tag(Tokenize("customers with bigger orders than 100"))
	if toks[0].POS != POSNoun {
		t.Errorf("customer tagged %v", toks[0].POS)
	}
	if toks[2].POS != POSComparative {
		t.Errorf("bigger tagged %v", toks[2].POS)
	}
	if toks[3].POS != POSNoun {
		t.Errorf("orders tagged %v", toks[3].POS)
	}
}

func TestTagSuperlativeSuffix(t *testing.T) {
	toks := Tag(Tokenize("cheapest hotel"))
	if toks[0].POS != POSSuperlative {
		t.Errorf("cheapest tagged %v", toks[0].POS)
	}
}

func TestTagNegation(t *testing.T) {
	toks := Tag(Tokenize("departments without employees"))
	if toks[1].POS != POSNeg {
		t.Errorf("without tagged %v", toks[1].POS)
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"kitten", "sitting", 3},
		{"salary", "salaries", 3},
		{"same", "same", 0},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: Levenshtein is a metric — symmetry, identity, triangle
// inequality on random short strings.
func TestPropertyLevenshteinMetric(t *testing.T) {
	gen := func(r *rand.Rand) string {
		n := r.Intn(8)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + r.Intn(4))
		}
		return string(b)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := gen(r), gen(r), gen(r)
		dab, dba := Levenshtein(a, b), Levenshtein(b, a)
		if dab != dba {
			return false
		}
		if Levenshtein(a, a) != 0 {
			return false
		}
		return Levenshtein(a, c) <= dab+Levenshtein(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSimilarity(t *testing.T) {
	if Similarity("salary", "salary") != 1 {
		t.Error("identical strings not 1")
	}
	if s := Similarity("salary", "salaries"); s < 0.5 || s >= 1 {
		t.Errorf("salary/salaries = %v", s)
	}
	if s := Similarity("salary", "zzzzzz"); s > 0.2 {
		t.Errorf("unrelated = %v", s)
	}
	if Similarity("ABC", "abc") != 1 {
		t.Error("similarity not case-insensitive")
	}
}

func TestTrigramJaccard(t *testing.T) {
	if TrigramJaccard("hello", "hello") != 1 {
		t.Error("identical != 1")
	}
	if s := TrigramJaccard("customer name", "name customer"); s < 0.4 {
		t.Errorf("reordered phrase = %v", s)
	}
	if s := TrigramJaccard("abc", "xyz"); s != 0 {
		t.Errorf("disjoint = %v", s)
	}
}

func TestTokenSetSimilarity(t *testing.T) {
	if s := TokenSetSimilarity("customer name", "name of the customer"); s < 0.9 {
		t.Errorf("reordered phrase = %v", s)
	}
	if s := TokenSetSimilarity("salary", "salaries"); s < 0.8 {
		t.Errorf("stemmed match = %v", s)
	}
	if s := TokenSetSimilarity("budget", "flavor"); s > 0.5 {
		t.Errorf("unrelated = %v", s)
	}
}

func TestNormalizeIdent(t *testing.T) {
	cases := map[string]string{
		"customer_name": "customer name",
		"CustomerName":  "customer name",
		"dept_id":       "dept id",
		"orderDate":     "order date",
		"HTMLPage":      "htmlpage", // all-caps runs stay together
		"salary":        "salary",
	}
	for in, want := range cases {
		if got := NormalizeIdent(in); got != want {
			t.Errorf("NormalizeIdent(%q) = %q, want %q", in, got, want)
		}
	}
}

// Property: tokenization never produces empty tokens and positions are
// sequential.
func TestPropertyTokenizeWellFormed(t *testing.T) {
	f := func(s string) bool {
		toks := Tokenize(s)
		for i, tok := range toks {
			if tok.Text == "" || tok.Pos != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
