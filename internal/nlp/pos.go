package nlp

import "strings"

// POS is a coarse part-of-speech tag. The interpreters need only the
// distinctions that drive structure detection: question words, nouns
// (entity candidates), verbs (relationship candidates), comparatives and
// superlatives (ORDER BY / filters), prepositions (join/grouping cues),
// and numbers.
type POS int

const (
	// POSUnknown is the default tag.
	POSUnknown POS = iota
	// POSNoun covers common and proper nouns.
	POSNoun
	// POSVerb covers verbs.
	POSVerb
	// POSAdj covers plain adjectives.
	POSAdj
	// POSComparative covers "more", "greater", "higher", "-er" forms.
	POSComparative
	// POSSuperlative covers "most", "highest", "-est" forms.
	POSSuperlative
	// POSPrep covers prepositions ("in", "by", "per", "with").
	POSPrep
	// POSWh covers question words ("what", "which", "how").
	POSWh
	// POSDet covers determiners.
	POSDet
	// POSConj covers conjunctions ("and", "or").
	POSConj
	// POSNum covers numerals.
	POSNum
	// POSNeg covers negation ("not", "no", "without", "except").
	POSNeg
	// POSPunct covers punctuation tokens.
	POSPunct
)

// String returns a short tag mnemonic.
func (p POS) String() string {
	switch p {
	case POSNoun:
		return "NOUN"
	case POSVerb:
		return "VERB"
	case POSAdj:
		return "ADJ"
	case POSComparative:
		return "COMP"
	case POSSuperlative:
		return "SUP"
	case POSPrep:
		return "PREP"
	case POSWh:
		return "WH"
	case POSDet:
		return "DET"
	case POSConj:
		return "CONJ"
	case POSNum:
		return "NUM"
	case POSNeg:
		return "NEG"
	case POSPunct:
		return "PUNCT"
	default:
		return "UNK"
	}
}

var posLexicon = map[string]POS{
	// Question words.
	"what": POSWh, "which": POSWh, "who": POSWh, "whom": POSWh,
	"where": POSWh, "when": POSWh, "how": POSWh, "whose": POSWh,
	// Determiners.
	"a": POSDet, "an": POSDet, "the": POSDet, "each": POSDet,
	"every": POSDet, "all": POSDet, "any": POSDet, "some": POSDet,
	// Prepositions.
	"in": POSPrep, "on": POSPrep, "at": POSPrep, "by": POSPrep,
	"per": POSPrep, "for": POSPrep, "from": POSPrep, "with": POSPrep,
	"of": POSPrep, "to": POSPrep, "over": POSPrep, "under": POSPrep,
	"between": POSPrep, "during": POSPrep, "within": POSPrep,
	"above": POSComparative, "below": POSComparative,
	// Conjunctions.
	"and": POSConj, "or": POSConj, "but": POSConj,
	// Negation.
	"not": POSNeg, "no": POSNeg, "without": POSNeg, "except": POSNeg,
	"never": POSNeg, "excluding": POSNeg,
	// Comparatives / superlatives that don't follow -er/-est.
	"more": POSComparative, "less": POSComparative, "fewer": POSComparative,
	"greater": POSComparative, "larger": POSComparative, "smaller": POSComparative,
	"higher": POSComparative, "lower": POSComparative, "older": POSComparative,
	"newer": POSComparative, "earlier": POSComparative, "later": POSComparative,
	"most": POSSuperlative, "least": POSSuperlative, "top": POSSuperlative,
	"bottom": POSSuperlative, "best": POSSuperlative, "worst": POSSuperlative,
	"maximum": POSSuperlative, "minimum": POSSuperlative,
	"highest": POSSuperlative, "lowest": POSSuperlative,
	"largest": POSSuperlative, "smallest": POSSuperlative,
	"biggest": POSSuperlative, "latest": POSSuperlative, "newest": POSSuperlative,
	"oldest": POSSuperlative, "earliest": POSSuperlative,
	// Common query verbs.
	"show": POSVerb, "list": POSVerb, "find": POSVerb, "give": POSVerb,
	"get": POSVerb, "display": POSVerb, "return": POSVerb, "count": POSVerb,
	"is": POSVerb, "are": POSVerb, "was": POSVerb, "were": POSVerb,
	"have": POSVerb, "has": POSVerb, "had": POSVerb, "earn": POSVerb,
	"work": POSVerb, "live": POSVerb, "buy": POSVerb, "sell": POSVerb,
	"belong": POSVerb, "contain": POSVerb, "include": POSVerb,
	// Aggregation cue words tag as nouns so entity matching still sees them;
	// the pattern detector handles their semantics separately.
	"total": POSNoun, "sum": POSNoun, "average": POSNoun, "mean": POSNoun,
	"number": POSNoun, "amount": POSNoun,
}

// Tag assigns POS tags in place and returns the slice for chaining.
// Strategy: punctuation and numbers by kind; then the lexicon; then
// suffix heuristics (-est superlative, -er comparative, -ly adverb→ADJ
// bucket); everything else defaults to NOUN, which is the right default
// for entity-centric query interpretation.
func Tag(toks []Token) []Token {
	for i := range toks {
		t := &toks[i]
		switch {
		case t.Kind == KindPunct:
			t.POS = POSPunct
		case t.Kind == KindNumber:
			t.POS = POSNum
		case t.Kind == KindQuoted:
			t.POS = POSNoun
		default:
			if p, ok := posLexicon[t.Lower]; ok {
				t.POS = p
				break
			}
			switch {
			case strings.HasSuffix(t.Lower, "est") && len(t.Lower) > 4:
				t.POS = POSSuperlative
			case strings.HasSuffix(t.Lower, "er") && len(t.Lower) > 4 && looksComparative(t.Lower):
				t.POS = POSComparative
			case strings.HasSuffix(t.Lower, "ing") && len(t.Lower) > 5:
				t.POS = POSVerb
			default:
				t.POS = POSNoun
			}
		}
	}
	return toks
}

// looksComparative filters -er nouns ("customer", "order", "manager",
// "supplier", "number") from genuine comparatives ("bigger", "cheaper").
var erNouns = map[string]bool{
	"customer": true, "order": true, "manager": true, "supplier": true,
	"number": true, "user": true, "player": true, "teacher": true,
	"singer": true, "worker": true, "provider": true, "partner": true,
	"member": true, "offer": true, "trigger": true, "folder": true,
	"server": true, "printer": true, "computer": true, "career": true,
	"winner": true, "owner": true, "other": true, "cover": true,
	"semester": true, "quarter": true, "september": true, "october": true,
	"november": true, "december": true, "summer": true, "winter": true,
}

func looksComparative(w string) bool { return !erNouns[w] }
