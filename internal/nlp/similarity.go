package nlp

import "strings"

// Levenshtein returns the edit distance between two strings (unit costs).
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// Similarity returns a [0,1] string similarity: 1 for equal strings,
// falling linearly with edit distance relative to the longer string.
// Comparison is case-insensitive.
func Similarity(a, b string) float64 {
	a, b = strings.ToLower(a), strings.ToLower(b)
	if a == b {
		return 1
	}
	la, lb := len([]rune(a)), len([]rune(b))
	longest := la
	if lb > longest {
		longest = lb
	}
	if longest == 0 {
		return 1
	}
	d := Levenshtein(a, b)
	return 1 - float64(d)/float64(longest)
}

// TrigramJaccard returns the Jaccard similarity of the character-trigram
// sets of two strings — robust to word reordering within short phrases.
func TrigramJaccard(a, b string) float64 {
	ta, tb := trigrams(strings.ToLower(a)), trigrams(strings.ToLower(b))
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	inter := 0
	for g := range ta {
		if tb[g] {
			inter++
		}
	}
	union := len(ta) + len(tb) - inter
	return float64(inter) / float64(union)
}

func trigrams(s string) map[string]bool {
	s = "  " + s + "  "
	rs := []rune(s)
	out := make(map[string]bool)
	for i := 0; i+3 <= len(rs); i++ {
		out[string(rs[i:i+3])] = true
	}
	return out
}

// TokenSetSimilarity compares two multi-word phrases by the best pairwise
// word similarity, averaged over the smaller phrase. It makes "customer
// name" match "name of the customer" highly.
func TokenSetSimilarity(a, b string) float64 {
	wa := strings.Fields(strings.ToLower(a))
	wb := strings.Fields(strings.ToLower(b))
	if len(wa) == 0 || len(wb) == 0 {
		if len(wa) == len(wb) {
			return 1
		}
		return 0
	}
	if len(wa) > len(wb) {
		wa, wb = wb, wa
	}
	var total float64
	for _, x := range wa {
		best := 0.0
		for _, y := range wb {
			if s := Similarity(Stem(x), Stem(y)); s > best {
				best = s
			}
		}
		total += best
	}
	return total / float64(len(wa))
}

// NormalizeIdent splits a schema identifier into natural words:
// "customer_name" and "CustomerName" both become "customer name".
func NormalizeIdent(ident string) string {
	var words []string
	var cur []rune
	flush := func() {
		if len(cur) > 0 {
			words = append(words, strings.ToLower(string(cur)))
			cur = nil
		}
	}
	for i, r := range ident {
		switch {
		case r == '_' || r == ' ' || r == '-' || r == '.':
			flush()
		case r >= 'A' && r <= 'Z' && i > 0 && len(cur) > 0 && !(cur[len(cur)-1] >= 'A' && cur[len(cur)-1] <= 'Z'):
			flush()
			cur = append(cur, r)
		default:
			cur = append(cur, r)
		}
	}
	flush()
	return strings.Join(words, " ")
}
