package nlp

import "strings"

// Stem reduces an English word to a crude stem: a compact Porter-style
// suffix stripper sufficient for matching query words against schema terms
// ("customers"→"customer", "running"→"run", "salaries"→"salari"→"salary"
// via the special-case table). It is deterministic and dictionary-free.
func Stem(w string) string {
	w = strings.ToLower(w)
	if len(w) <= 3 {
		return w
	}
	if s, ok := irregular[w]; ok {
		return s
	}

	// Plural / verbal -s endings.
	switch {
	case strings.HasSuffix(w, "sses"):
		w = w[:len(w)-2] // classes → class
	case strings.HasSuffix(w, "ies") && len(w) > 4:
		w = w[:len(w)-3] + "y" // cities → city, salaries → salary
	case strings.HasSuffix(w, "xes") || strings.HasSuffix(w, "ches") || strings.HasSuffix(w, "shes"):
		w = w[:len(w)-2] // boxes → box, branches → branch
	case strings.HasSuffix(w, "ss") || strings.HasSuffix(w, "us") || strings.HasSuffix(w, "is"):
		// class, status, analysis: keep
	case strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "es"):
		w = w[:len(w)-1] // customers → customer
	case strings.HasSuffix(w, "es") && len(w) > 4:
		w = w[:len(w)-1] // employees → employee
	}

	// -ing / -ed with restoration of a dropped 'e' for common patterns.
	switch {
	case strings.HasSuffix(w, "ing") && len(w) > 5:
		stem := w[:len(w)-3]
		if len(stem) >= 2 && stem[len(stem)-1] == stem[len(stem)-2] && !isVowel(stem[len(stem)-1]) {
			stem = stem[:len(stem)-1] // running → run
		} else if needsE(stem) {
			stem += "e" // hiring → hire
		}
		w = stem
	case strings.HasSuffix(w, "ed") && len(w) > 4:
		stem := w[:len(w)-2]
		if len(stem) >= 2 && stem[len(stem)-1] == stem[len(stem)-2] && !isVowel(stem[len(stem)-1]) {
			stem = stem[:len(stem)-1] // stopped → stop
		} else if needsE(stem) {
			stem += "e" // hired → hire
		}
		w = stem
	}
	return w
}

// needsE guesses whether a stem lost a final 'e' (consonant-vowel-consonant
// with the last consonant not w/x/y — the classic Porter 1b heuristic).
func needsE(s string) bool {
	n := len(s)
	if n < 3 {
		return false
	}
	c3, v, c1 := s[n-3], s[n-2], s[n-1]
	return !isVowel(c3) && isVowel(v) && !isVowel(c1) && c1 != 'w' && c1 != 'x' && c1 != 'y'
}

func isVowel(b byte) bool {
	switch b {
	case 'a', 'e', 'i', 'o', 'u':
		return true
	}
	return false
}

// irregular maps words whose stems the suffix rules get wrong.
var irregular = map[string]string{
	"people": "person", "children": "child", "men": "man", "women": "woman",
	"feet": "foot", "mice": "mouse", "geese": "goose", "teeth": "tooth",
	"data": "data", "media": "media", "series": "series", "species": "species",
	"criteria": "criterion", "indices": "index", "axes": "axis",
	"best": "good", "worst": "bad", "most": "most", "least": "least",
	"bought": "buy", "sold": "sell", "paid": "pay", "spent": "spend",
	"went": "go", "made": "make", "gave": "give", "took": "take",
	"this": "this", "his": "his",
}
