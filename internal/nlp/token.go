// Package nlp is the natural-language substrate: tokenizer, rule/lexicon
// part-of-speech tagger, a light stemmer, stopword handling, string
// similarity measures, and number/date recognition. It stands in for the
// Stanford-CoreNLP-class tooling the surveyed entity-based NLIDB systems
// use; the interpreters only need token types, head words, and fuzzy
// matching, which this package provides deterministically and offline.
package nlp

import (
	"strings"
	"unicode"
)

// Kind classifies a token lexically.
type Kind int

const (
	// KindWord is an alphabetic word.
	KindWord Kind = iota
	// KindNumber is a numeric literal (digits, optionally with a decimal
	// point) or a recognized number word ("five").
	KindNumber
	// KindQuoted is a single- or double-quoted phrase (quotes stripped).
	KindQuoted
	// KindPunct is punctuation.
	KindPunct
)

// Token is one unit of a natural-language query.
type Token struct {
	// Text is the surface form as typed.
	Text string
	// Lower is the lower-cased surface form.
	Lower string
	// Stem is the stemmed lower-cased form.
	Stem string
	// Kind is the lexical class.
	Kind Kind
	// POS is the part-of-speech tag, filled by Tag.
	POS POS
	// Num holds the parsed numeric value when Kind is KindNumber.
	Num float64
	// Pos is the token's index in the sentence.
	Pos int
}

// IsStop reports whether the token is a stopword (articles, auxiliaries,
// and politeness words that carry no query content).
func (t Token) IsStop() bool { return stopwords[t.Lower] }

// Tokenize splits a natural-language query into tokens, recognizing quoted
// phrases as single tokens and attaching stems and numeric values. POS tags
// are not assigned; call Tag for that.
func Tokenize(s string) []Token {
	var toks []Token
	rs := []rune(s)
	i := 0
	add := func(text string, kind Kind) {
		t := Token{Text: text, Lower: strings.ToLower(text), Kind: kind, Pos: len(toks)}
		t.Stem = Stem(t.Lower)
		if kind == KindNumber {
			t.Num = parseNumberToken(t.Lower)
		}
		toks = append(toks, t)
	}
	for i < len(rs) {
		r := rs[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '\'' || r == '"':
			quote := r
			j := i + 1
			for j < len(rs) && rs[j] != quote {
				j++
			}
			if j < len(rs) {
				add(string(rs[i+1:j]), KindQuoted)
				i = j + 1
			} else {
				// Unterminated quote (often an apostrophe): treat as part
				// of a word, e.g. "O'Brien" handled below.
				i = consumeWord(rs, i, add)
			}
		case unicode.IsDigit(r):
			j := i
			for j < len(rs) && (unicode.IsDigit(rs[j]) || rs[j] == '.' || rs[j] == ',') {
				j++
			}
			// Trim trailing punctuation that isn't part of the number.
			for j > i && (rs[j-1] == '.' || rs[j-1] == ',') {
				j--
			}
			add(strings.ReplaceAll(string(rs[i:j]), ",", ""), KindNumber)
			i = j
		case unicode.IsLetter(r):
			i = consumeWord(rs, i, add)
		default:
			add(string(r), KindPunct)
			i++
		}
	}
	// Second pass: number words ("five") become numbers.
	for i := range toks {
		if toks[i].Kind == KindWord {
			if n, ok := numberWords[toks[i].Lower]; ok {
				toks[i].Kind = KindNumber
				toks[i].Num = n
			}
		}
	}
	return toks
}

// consumeWord scans a word starting at i, allowing internal apostrophes and
// hyphens ("o'brien", "year-to-date"), calls add, and returns the new index.
func consumeWord(rs []rune, i int, add func(string, Kind)) int {
	j := i
	for j < len(rs) {
		r := rs[j]
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
			j++
			continue
		}
		// Allow ' and - only between letters.
		if (r == '\'' || r == '-') && j+1 < len(rs) && unicode.IsLetter(rs[j+1]) && j > i {
			j++
			continue
		}
		break
	}
	if j == i {
		// Not a word at all — e.g. a lone unterminated quote routed here
		// by Tokenize. Emit the rune as punctuation so the scan always
		// advances; returning i would loop forever.
		add(string(rs[i]), KindPunct)
		return i + 1
	}
	add(string(rs[i:j]), KindWord)
	return j
}

// Words returns the non-stopword, non-punctuation tokens.
func Words(toks []Token) []Token {
	var out []Token
	for _, t := range toks {
		if t.Kind == KindPunct || t.IsStop() {
			continue
		}
		out = append(out, t)
	}
	return out
}

// stopwords carry no query content. Deliberately *excludes* words the
// pattern-based interpreters rely on: "by", "per", "top", "most", "least",
// "not", "no", comparatives, and aggregate cue words.
var stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "of": true, "to": true,
	"is": true, "are": true, "was": true, "were": true, "be": true,
	"do": true, "does": true, "did": true, "me": true, "i": true,
	"please": true, "show": true, "list": true, "give": true, "get": true,
	"find": true, "tell": true, "display": true, "return": true,
	"what": true, "which": true, "who": true, "whose": true,
	"there": true, "their": true, "them": true, "they": true,
	"it": true, "its": true, "that": true, "this": true, "those": true,
	"these": true, "can": true, "could": true, "would": true, "will": true,
	"you": true, "your": true, "we": true, "our": true, "us": true,
	"have": true, "has": true, "had": true, "want": true, "like": true,
	"know": true, "see": true, "all": true, "any": true, "some": true,
	"about": true, "on": true, "at": true, "as": true, "so": true,
	"hey": true, "hi": true, "hello": true, "thanks": true, "ok": true,
}

// numberWords maps spelled-out small numbers to their values.
var numberWords = map[string]float64{
	"zero": 0, "one": 1, "two": 2, "three": 3, "four": 4, "five": 5,
	"six": 6, "seven": 7, "eight": 8, "nine": 9, "ten": 10,
	"eleven": 11, "twelve": 12, "twenty": 20, "thirty": 30, "forty": 40,
	"fifty": 50, "hundred": 100, "thousand": 1000, "million": 1000000,
}

func parseNumberToken(s string) float64 {
	if n, ok := numberWords[s]; ok {
		return n
	}
	var v float64
	var frac float64
	inFrac := false
	div := 1.0
	for _, r := range s {
		if r == '.' {
			if inFrac {
				break
			}
			inFrac = true
			continue
		}
		if r < '0' || r > '9' {
			continue
		}
		d := float64(r - '0')
		if inFrac {
			div *= 10
			frac += d / div
		} else {
			v = v*10 + d
		}
	}
	return v + frac
}
