package nlq

import (
	"testing"

	"nlidb/internal/invindex"
	"nlidb/internal/lexicon"
	"nlidb/internal/nlp"
	"nlidb/internal/sqldata"
)

func TestComplexityStrings(t *testing.T) {
	want := map[Complexity]string{Simple: "simple", Aggregation: "aggregation", Join: "join", Nested: "nested"}
	for c, w := range want {
		if c.String() != w {
			t.Errorf("%d.String() = %q", int(c), c.String())
		}
	}
	if Complexity(99).String() == "" {
		t.Error("unknown complexity should still print")
	}
}

func TestFindSubqueryComparisons(t *testing.T) {
	toks := nlp.Tag(nlp.Tokenize("employees with salary greater than the average salary"))
	scs := FindSubqueryComparisons(toks)
	if len(scs) != 1 {
		t.Fatalf("subcompares = %+v", scs)
	}
	if scs[0].Op != ">" || scs[0].AggFunc != "AVG" || scs[0].ColumnHint != "salary" {
		t.Errorf("subcompare = %+v", scs[0])
	}

	// A number right after the comparative means a plain comparison.
	toks = nlp.Tag(nlp.Tokenize("employees with salary greater than 100"))
	if scs := FindSubqueryComparisons(toks); len(scs) != 0 {
		t.Errorf("numeric comparison misread as nested: %+v", scs)
	}

	// MAX/MIN/SUM variants.
	for q, fn := range map[string]string{
		"price below the maximum price": "MAX",
		"price above the minimum price": "MIN",
		"cost over the total budget":    "SUM",
	} {
		scs := FindSubqueryComparisons(nlp.Tag(nlp.Tokenize(q)))
		if len(scs) != 1 || scs[0].AggFunc != fn {
			t.Errorf("%q → %+v, want %s", q, scs, fn)
		}
	}
}

func TestAnalyzeDropsSubAggCues(t *testing.T) {
	db := sqldata.NewDatabase("a")
	tbl, err := db.CreateTable(&sqldata.Schema{Name: "employee", Columns: []sqldata.Column{
		{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
		{Name: "name", Type: sqldata.TypeText},
		{Name: "salary", Type: sqldata.TypeFloat},
	}})
	if err != nil {
		t.Fatal(err)
	}
	tbl.MustInsert(sqldata.NewInt(1), sqldata.NewText("ann"), sqldata.NewFloat(10))
	ix := invindex.Build(db, lexicon.New())

	a := Analyze("employees with salary above the average salary", ix, invindex.DefaultOptions())
	if len(a.SubCompares) != 1 {
		t.Fatalf("subcompares = %+v", a.SubCompares)
	}
	// "average" must not remain as an outer aggregate cue.
	for _, c := range a.AggCues {
		if c.Func == "AVG" {
			t.Errorf("sub-query AVG leaked into outer cues: %+v", a.AggCues)
		}
	}
	// SpanAt must find the employee span and miss out-of-range positions.
	if sp := a.SpanAt(0); sp == nil {
		t.Error("SpanAt(0) = nil for the table mention")
	}
	if sp := a.SpanAt(999); sp != nil {
		t.Errorf("SpanAt(999) = %+v", sp)
	}
}

func TestAnalyzeTopKSuppressedInsideSubCompare(t *testing.T) {
	db := sqldata.NewDatabase("a")
	tbl, err := db.CreateTable(&sqldata.Schema{Name: "product", Columns: []sqldata.Column{
		{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
		{Name: "name", Type: sqldata.TypeText},
		{Name: "price", Type: sqldata.TypeFloat},
	}})
	if err != nil {
		t.Fatal(err)
	}
	tbl.MustInsert(sqldata.NewInt(1), sqldata.NewText("w"), sqldata.NewFloat(3))
	ix := invindex.Build(db, lexicon.New())
	a := Analyze("products with price below the maximum price", ix, invindex.DefaultOptions())
	if a.TopK != nil {
		t.Errorf("superlative inside sub-compare drove TopK: %+v", a.TopK)
	}
}

func TestPreferMentionedColumnsReordering(t *testing.T) {
	// Two columns share the value "berlin"; mentioning "origin" must pull
	// the origin reading ahead of the (alphabetically earlier) destination.
	db := sqldata.NewDatabase("fl")
	tbl, err := db.CreateTable(&sqldata.Schema{Name: "flight", Columns: []sqldata.Column{
		{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
		{Name: "origin", Type: sqldata.TypeText},
		{Name: "destination", Type: sqldata.TypeText},
	}})
	if err != nil {
		t.Fatal(err)
	}
	tbl.MustInsert(sqldata.NewInt(1), sqldata.NewText("Berlin"), sqldata.NewText("Munich"))
	tbl.MustInsert(sqldata.NewInt(2), sqldata.NewText("Munich"), sqldata.NewText("Berlin"))
	ix := invindex.Build(db, lexicon.New())

	toks := nlp.Tag(nlp.Tokenize("flights with origin Berlin"))
	spans := MatchSpans(toks, ix, invindex.DefaultOptions())
	var berlin *SpanMatch
	for i := range spans {
		if spans[i].Text == "Berlin" {
			berlin = &spans[i]
		}
	}
	if berlin == nil {
		t.Fatal("Berlin span missing")
	}
	if got := berlin.Best(); got.Column != "origin" {
		t.Errorf("mentioned column not preferred: best = %+v", got)
	}
}
