package nlq

import (
	"sort"
	"strings"

	"nlidb/internal/invindex"
	"nlidb/internal/nlp"
)

// SpanMatch binds a contiguous token span [Start, End) to index entries.
type SpanMatch struct {
	Start, End int
	// Text is the covered surface text.
	Text string
	// Matches are the scored index hits, best first.
	Matches []invindex.Match
}

// Best returns the top match of the span.
func (s SpanMatch) Best() invindex.Match { return s.Matches[0] }

// MatchSpans greedily matches the longest token spans (up to 3 tokens)
// against the inverted index, left to right, skipping stopwords and
// punctuation at span starts. Each token belongs to at most one span.
func MatchSpans(toks []nlp.Token, ix *invindex.Index, opts invindex.LookupOptions) []SpanMatch {
	var spans []SpanMatch
	i := 0
	for i < len(toks) {
		t := toks[i]
		if t.Kind == nlp.KindPunct || t.Kind == nlp.KindNumber || t.IsStop() {
			i++
			continue
		}
		matched := false
		for l := 3; l >= 1; l-- {
			if i+l > len(toks) {
				continue
			}
			ok := true
			parts := make([]string, 0, l)
			for j := i; j < i+l; j++ {
				if toks[j].Kind == nlp.KindPunct || toks[j].Kind == nlp.KindNumber {
					ok = false
					break
				}
				parts = append(parts, toks[j].Text)
			}
			if !ok {
				continue
			}
			phrase := strings.Join(parts, " ")
			// Multi-word spans must match exactly or near-exactly; single
			// words get the caller's fuzziness.
			o := opts
			if l > 1 {
				o.FuzzyThreshold = 0.9
			}
			ms := ix.Lookup(phrase, o)
			if len(ms) == 0 {
				continue
			}
			// A multi-word span only counts when it is clearly better than
			// what the first word alone would give, to avoid swallowing
			// unrelated neighbours.
			if l > 1 && ms[0].Score < 0.85 {
				continue
			}
			spans = append(spans, SpanMatch{Start: i, End: i + l, Text: phrase, Matches: ms})
			i += l
			matched = true
			break
		}
		if !matched {
			i++
		}
	}
	preferMentionedColumns(spans)
	return spans
}

// preferMentionedColumns re-ranks value matches inside each span: when a
// value string occurs in several columns ("Berlin" in both origin and
// destination), the reading whose column is itself mentioned elsewhere in
// the question wins. This is the standard disambiguation rule shared by
// the surveyed entity-based systems.
func preferMentionedColumns(spans []SpanMatch) {
	mentioned := map[string]bool{}
	for _, sp := range spans {
		if m := sp.Best(); m.Kind == invindex.KindColumn {
			mentioned[strings.ToLower(m.Table)+"."+strings.ToLower(m.Column)] = true
		}
	}
	if len(mentioned) == 0 {
		return
	}
	for i := range spans {
		ms := spans[i].Matches
		sort.SliceStable(ms, func(a, b int) bool {
			am := mentioned[strings.ToLower(ms[a].Table)+"."+strings.ToLower(ms[a].Column)] && ms[a].Kind == invindex.KindValue
			bm := mentioned[strings.ToLower(ms[b].Table)+"."+strings.ToLower(ms[b].Column)] && ms[b].Kind == invindex.KindValue
			if am != bm {
				return am
			}
			return false
		})
	}
}

// CompareOp is a comparison extracted from comparative phrasing.
type CompareOp struct {
	// Op is one of > >= < <= = !=.
	Op string
	// Value is the numeric operand.
	Value float64
	// TokenPos is the position of the number token.
	TokenPos int
	// ColumnHint is a nearby column-ish word, if any (the token right
	// before the comparative phrase, e.g. "salary" in "salary above 50").
	ColumnHint string
}

// comparativePhrases maps multi-token cue phrases to operators. Longer
// phrases are tried first.
var comparativePhrases = []struct {
	words []string
	op    string
}{
	{[]string{"greater", "than", "or", "equal", "to"}, ">="},
	{[]string{"less", "than", "or", "equal", "to"}, "<="},
	{[]string{"at", "least"}, ">="},
	{[]string{"at", "most"}, "<="},
	{[]string{"no", "more", "than"}, "<="},
	{[]string{"no", "less", "than"}, ">="},
	{[]string{"more", "than"}, ">"},
	{[]string{"greater", "than"}, ">"},
	{[]string{"larger", "than"}, ">"},
	{[]string{"bigger", "than"}, ">"},
	{[]string{"higher", "than"}, ">"},
	{[]string{"older", "than"}, ">"},
	{[]string{"less", "than"}, "<"},
	{[]string{"fewer", "than"}, "<"},
	{[]string{"smaller", "than"}, "<"},
	{[]string{"lower", "than"}, "<"},
	{[]string{"cheaper", "than"}, "<"},
	{[]string{"not", "equal", "to"}, "!="},
	{[]string{"equal", "to"}, "="},
	{[]string{"over"}, ">"},
	{[]string{"above"}, ">"},
	{[]string{"under"}, "<"},
	{[]string{"below"}, "<"},
	{[]string{"exactly"}, "="},
}

// FindComparisons extracts numeric comparison cues: a comparative phrase
// followed (within two tokens) by a number. "salary over 50000" yields
// {Op: ">", Value: 50000, ColumnHint: "salary"}.
func FindComparisons(toks []nlp.Token) []CompareOp {
	var out []CompareOp
	used := make([]bool, len(toks))
	for _, cp := range comparativePhrases {
		for i := 0; i+len(cp.words) <= len(toks); i++ {
			if used[i] {
				continue
			}
			ok := true
			for j, w := range cp.words {
				if toks[i+j].Lower != w {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			// Find the number within the next two tokens.
			numPos := -1
			for j := i + len(cp.words); j < len(toks) && j <= i+len(cp.words)+2; j++ {
				if toks[j].Kind == nlp.KindNumber {
					numPos = j
					break
				}
			}
			if numPos < 0 {
				continue
			}
			hint := ""
			for j := i - 1; j >= 0; j-- {
				if toks[j].Kind == nlp.KindWord && !toks[j].IsStop() {
					hint = toks[j].Lower
					break
				}
			}
			for j := i; j <= numPos; j++ {
				used[j] = true
			}
			out = append(out, CompareOp{Op: cp.op, Value: toks[numPos].Num, TokenPos: numPos, ColumnHint: hint})
		}
	}
	// Generic fallback: an unlisted "-er" comparative followed by "than"
	// and a number ("heavier than 20"). Direction defaults to ">" unless
	// the adjective is a known diminishing comparative.
	for i := 0; i+2 < len(toks); i++ {
		if used[i] || toks[i].POS != nlp.POSComparative || toks[i+1].Lower != "than" {
			continue
		}
		numPos := -1
		for j := i + 2; j < len(toks) && j <= i+4; j++ {
			if toks[j].Kind == nlp.KindNumber && !used[j] {
				numPos = j
				break
			}
		}
		if numPos < 0 {
			continue
		}
		op := ">"
		if diminishing[toks[i].Lower] {
			op = "<"
		}
		hint := ""
		for j := i - 1; j >= 0; j-- {
			if toks[j].Kind == nlp.KindWord && !toks[j].IsStop() {
				hint = toks[j].Lower
				break
			}
		}
		for j := i; j <= numPos; j++ {
			used[j] = true
		}
		out = append(out, CompareOp{Op: op, Value: toks[numPos].Num, TokenPos: numPos, ColumnHint: hint})
	}

	// "between X and Y" ranges.
	for i := 0; i+3 < len(toks); i++ {
		if toks[i].Lower == "between" && toks[i+1].Kind == nlp.KindNumber &&
			toks[i+2].Lower == "and" && toks[i+3].Kind == nlp.KindNumber {
			hint := ""
			for j := i - 1; j >= 0; j-- {
				if toks[j].Kind == nlp.KindWord && !toks[j].IsStop() {
					hint = toks[j].Lower
					break
				}
			}
			out = append(out, CompareOp{Op: ">=", Value: toks[i+1].Num, TokenPos: i + 1, ColumnHint: hint})
			out = append(out, CompareOp{Op: "<=", Value: toks[i+3].Num, TokenPos: i + 3, ColumnHint: hint})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TokenPos < out[j].TokenPos })
	return out
}

// diminishing lists comparatives whose direction is "less than".
var diminishing = map[string]bool{
	"lighter": true, "shorter": true, "slower": true, "cheaper": true,
	"smaller": true, "lower": true, "younger": true, "fewer": true,
	"less": true, "weaker": true, "poorer": true, "earlier": true,
}

// AggCue is an aggregation cue found in the question.
type AggCue struct {
	// Func is COUNT, SUM, AVG, MIN or MAX.
	Func string
	// TokenPos is where the cue appears.
	TokenPos int
}

// FindAggCues detects aggregate intent: "how many", "number of", "count"
// → COUNT; "total"/"sum" → SUM; "average"/"mean" → AVG; superlative words
// and "maximum"/"minimum" → MAX/MIN.
func FindAggCues(toks []nlp.Token) []AggCue {
	var out []AggCue
	for i, t := range toks {
		switch t.Lower {
		case "how":
			if i+1 < len(toks) && (toks[i+1].Lower == "many" || toks[i+1].Lower == "much") {
				out = append(out, AggCue{Func: "COUNT", TokenPos: i})
			}
		case "count":
			out = append(out, AggCue{Func: "COUNT", TokenPos: i})
		case "number":
			if i+1 < len(toks) && toks[i+1].Lower == "of" {
				out = append(out, AggCue{Func: "COUNT", TokenPos: i})
			}
		case "total", "sum", "overall":
			out = append(out, AggCue{Func: "SUM", TokenPos: i})
		case "average", "mean", "avg":
			out = append(out, AggCue{Func: "AVG", TokenPos: i})
		case "maximum", "max", "highest", "largest", "biggest", "longest", "latest", "newest", "most":
			out = append(out, AggCue{Func: "MAX", TokenPos: i})
		case "minimum", "min", "lowest", "smallest", "shortest", "cheapest", "earliest", "oldest", "least", "fewest":
			out = append(out, AggCue{Func: "MIN", TokenPos: i})
		}
	}
	return out
}

// GroupCue marks "by X" / "per X" / "for each X" grouping phrases,
// pointing at the token position of the grouping word X.
type GroupCue struct {
	// TokenPos is the position of the first token of the grouping phrase
	// target (the X in "by X").
	TokenPos int
}

// FindGroupCues detects grouping intent. The returned positions point at
// the token after the cue word ("by"/"per"/"each").
func FindGroupCues(toks []nlp.Token) []GroupCue {
	var out []GroupCue
	for i, t := range toks {
		next := i + 1
		switch t.Lower {
		case "per":
			if next < len(toks) {
				out = append(out, GroupCue{TokenPos: next})
			}
		case "each", "every":
			if next < len(toks) {
				out = append(out, GroupCue{TokenPos: next})
			}
		case "by":
			// "by X" groups unless X is a number ("by 10 percent").
			if next < len(toks) && toks[next].Kind != nlp.KindNumber {
				out = append(out, GroupCue{TokenPos: next})
			}
		}
	}
	return out
}

// TopKCue is a "top N ... by C" / superlative ordering cue.
type TopKCue struct {
	// K is the limit; 1 for bare superlatives.
	K int
	// Desc is true for "top/highest/most", false for "bottom/lowest".
	Desc bool
	// TokenPos locates the cue.
	TokenPos int
}

// FindTopK detects "top 5", "5 most expensive", "highest paid", "bottom
// three" style cues.
func FindTopK(toks []nlp.Token) *TopKCue {
	for i, t := range toks {
		switch t.Lower {
		case "top", "first":
			k := 1
			if i+1 < len(toks) && toks[i+1].Kind == nlp.KindNumber {
				k = int(toks[i+1].Num)
			}
			return &TopKCue{K: k, Desc: true, TokenPos: i}
		case "bottom", "last":
			k := 1
			if i+1 < len(toks) && toks[i+1].Kind == nlp.KindNumber {
				k = int(toks[i+1].Num)
			}
			return &TopKCue{K: k, Desc: false, TokenPos: i}
		}
	}
	// "N most/least X" and bare superlatives over an entity ("the most
	// expensive product", "the cheapest hotel").
	for i, t := range toks {
		if t.POS != nlp.POSSuperlative {
			continue
		}
		k := 1
		if i > 0 && toks[i-1].Kind == nlp.KindNumber {
			k = int(toks[i-1].Num)
		}
		desc := true
		switch t.Lower {
		case "least", "lowest", "smallest", "cheapest", "minimum", "earliest", "oldest", "worst", "fewest", "shortest":
			desc = false
		}
		return &TopKCue{K: k, Desc: desc, TokenPos: i}
	}
	return nil
}

// SubCompare is a comparison against an aggregate rather than a number:
// "salary greater than the average salary" compares a property to a
// scalar sub-query. Only interpreters with a class-4 (nested) ceiling
// consume these.
type SubCompare struct {
	// Op is the comparison operator.
	Op string
	// CmpPos is the position of the comparative phrase.
	CmpPos int
	// AggFunc is the aggregate of the sub-query (AVG, MAX, MIN, SUM).
	AggFunc string
	// AggPos is the position of the aggregate cue.
	AggPos int
	// ColumnHint is the word before the comparative (outer property).
	ColumnHint string
}

// FindSubqueryComparisons detects comparative phrases followed by an
// aggregate cue instead of a number.
func FindSubqueryComparisons(toks []nlp.Token) []SubCompare {
	var out []SubCompare
	aggWord := func(w string) string {
		switch w {
		case "average", "mean", "avg":
			return "AVG"
		case "maximum", "max", "highest", "largest", "biggest":
			return "MAX"
		case "minimum", "min", "lowest", "smallest", "cheapest":
			return "MIN"
		case "total", "sum":
			return "SUM"
		}
		return ""
	}
	for _, cp := range comparativePhrases {
		for i := 0; i+len(cp.words) <= len(toks); i++ {
			ok := true
			for j, w := range cp.words {
				if toks[i+j].Lower != w {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			// An aggregate cue within the next three tokens (allowing
			// "the"): "greater than the average ...".
			for j := i + len(cp.words); j < len(toks) && j <= i+len(cp.words)+2; j++ {
				if toks[j].Kind == nlp.KindNumber {
					break // plain numeric comparison, not nested
				}
				if f := aggWord(toks[j].Lower); f != "" {
					hint := ""
					for k := i - 1; k >= 0; k-- {
						if toks[k].Kind == nlp.KindWord && !toks[k].IsStop() {
							hint = toks[k].Lower
							break
						}
					}
					out = append(out, SubCompare{Op: cp.op, CmpPos: i, AggFunc: f, AggPos: j, ColumnHint: hint})
					break
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CmpPos < out[j].CmpPos })
	// Deduplicate overlapping phrase matches ("greater than" inside
	// "greater than or equal to") keeping the earliest-longest.
	var dedup []SubCompare
	for _, s := range out {
		if len(dedup) > 0 && dedup[len(dedup)-1].AggPos == s.AggPos {
			continue
		}
		dedup = append(dedup, s)
	}
	return dedup
}

// Analysis bundles every linguistic annotation an interpreter might use.
// The interpreter families differ in which parts they consume: keyword
// systems use only Spans; pattern systems add cues on a single table;
// parse-based systems add joins; ontology-driven systems add nesting.
type Analysis struct {
	Tokens      []nlp.Token
	Spans       []SpanMatch
	Comparisons []CompareOp
	SubCompares []SubCompare
	AggCues     []AggCue
	GroupCues   []GroupCue
	TopK        *TopKCue
	NegationPos int // -1 when absent
}

// Analyze tokenizes, tags, and runs all cue detectors over a question.
func Analyze(question string, ix *invindex.Index, opts invindex.LookupOptions) *Analysis {
	toks := nlp.Tag(nlp.Tokenize(question))
	a := &Analysis{
		Tokens:      toks,
		Spans:       MatchSpans(toks, ix, opts),
		Comparisons: FindComparisons(toks),
		SubCompares: FindSubqueryComparisons(toks),
		AggCues:     FindAggCues(toks),
		GroupCues:   FindGroupCues(toks),
		TopK:        FindTopK(toks),
		NegationPos: -1,
	}
	if pos, ok := HasNegation(toks); ok {
		a.NegationPos = pos
	}
	// Aggregate cues that belong to a nested comparison ("... than the
	// average salary") are not outer-query aggregates, and a superlative
	// inside one must not drive top-k either.
	if len(a.SubCompares) > 0 {
		subAgg := map[int]bool{}
		for _, s := range a.SubCompares {
			subAgg[s.AggPos] = true
		}
		kept := a.AggCues[:0]
		for _, c := range a.AggCues {
			if !subAgg[c.TokenPos] {
				kept = append(kept, c)
			}
		}
		a.AggCues = kept
		if a.TopK != nil && subAgg[a.TopK.TokenPos] {
			a.TopK = nil
		}
	}
	// A superlative that drives TopK must not double as a MAX/MIN cue.
	if a.TopK != nil {
		kept := a.AggCues[:0]
		for _, c := range a.AggCues {
			if c.TokenPos != a.TopK.TokenPos {
				kept = append(kept, c)
			}
		}
		a.AggCues = kept
	}
	return a
}

// SpanAt returns the span covering token position p, if any.
func (a *Analysis) SpanAt(p int) *SpanMatch {
	for i := range a.Spans {
		if p >= a.Spans[i].Start && p < a.Spans[i].End {
			return &a.Spans[i]
		}
	}
	return nil
}

// HasNegation reports whether the tokens contain an exclusion cue
// ("without", "no", "not", "except") before position limit (-1: anywhere).
func HasNegation(toks []nlp.Token) (int, bool) {
	for i, t := range toks {
		if t.POS == nlp.POSNeg {
			return i, true
		}
	}
	return -1, false
}
