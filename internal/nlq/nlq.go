// Package nlq defines the common framework every natural-language
// interpreter in this repository implements: the Interpreter interface,
// ranked Interpretations, the four-class query-complexity taxonomy from
// Section 3 of the SIGMOD 2020 tutorial, and shared linguistic annotation
// utilities (entity span matching, comparison and aggregation cue
// detection) that the individual interpreter families build on.
package nlq

import (
	"errors"
	"fmt"

	"nlidb/internal/sqlparse"
)

// Complexity is the tutorial's four-class query taxonomy (Section 3).
type Complexity int

const (
	// Simple: selection on a single table.
	Simple Complexity = iota
	// Aggregation: single table with aggregates, GROUP BY or ORDER BY.
	Aggregation
	// Join: multiple tables.
	Join
	// Nested: sub-queries (the BI class).
	Nested
)

// String names the class the way the experiment tables print it.
func (c Complexity) String() string {
	switch c {
	case Simple:
		return "simple"
	case Aggregation:
		return "aggregation"
	case Join:
		return "join"
	case Nested:
		return "nested"
	default:
		return fmt.Sprintf("Complexity(%d)", int(c))
	}
}

// Classify buckets a SQL statement into the taxonomy. Precedence:
// nesting beats joins beats aggregation beats simple, matching how the
// tutorial orders the classes by difficulty.
func Classify(stmt *sqlparse.SelectStmt) Complexity {
	if stmt == nil {
		return Simple
	}
	if len(stmt.Subqueries()) > 0 || stmt.Having != nil {
		// HAVING-count queries are the BI class even when phrased without
		// a literal sub-query (they are interchangeable with IN-subquery
		// formulations and sit beyond the join-family ceiling).
		return Nested
	}
	if stmt.From != nil && len(stmt.From.Joins) > 0 {
		return Join
	}
	if stmt.HasAggregate() || len(stmt.GroupBy) > 0 || len(stmt.OrderBy) > 0 || stmt.Limit >= 0 {
		return Aggregation
	}
	return Simple
}

// Clarification is a question the interpreter wants to ask the user, in
// the NaLIR/DialSQL style: a multiple-choice disambiguation.
type Clarification struct {
	// Question is the natural-language question shown to the user.
	Question string
	// Options are the candidate readings, best-ranked first.
	Options []string
}

// Interpretation is one candidate translation of a natural-language query.
type Interpretation struct {
	// SQL is the generated statement.
	SQL *sqlparse.SelectStmt
	// Score in (0,1]; higher is more confident.
	Score float64
	// Explanation is a human-readable trace of how the reading was built.
	Explanation string
	// Clarification, when non-nil, asks the user to confirm an ambiguous
	// choice this reading depends on.
	Clarification *Clarification
}

// ErrNoInterpretation is returned when an interpreter cannot produce any
// reading of the query. Callers use errors.Is.
var ErrNoInterpretation = errors.New("nlq: no interpretation found")

// Interpreter translates a natural-language question into ranked SQL
// candidates. Implementations are deterministic.
type Interpreter interface {
	// Name identifies the interpreter family in experiment tables.
	Name() string
	// Interpret returns candidate readings, best first, or
	// ErrNoInterpretation.
	Interpret(question string) ([]Interpretation, error)
}

// Best returns the top-ranked interpretation.
func Best(in []Interpretation) (Interpretation, error) {
	if len(in) == 0 {
		return Interpretation{}, ErrNoInterpretation
	}
	best := in[0]
	for _, i := range in[1:] {
		if i.Score > best.Score {
			best = i
		}
	}
	return best, nil
}
