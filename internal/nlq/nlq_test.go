package nlq

import (
	"errors"
	"testing"

	"nlidb/internal/invindex"
	"nlidb/internal/lexicon"
	"nlidb/internal/nlp"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlparse"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		sql  string
		want Complexity
	}{
		{"SELECT name FROM t WHERE a = 1", Simple},
		{"SELECT name FROM t", Simple},
		{"SELECT COUNT(*) FROM t", Aggregation},
		{"SELECT a, SUM(b) FROM t GROUP BY a", Aggregation},
		{"SELECT a FROM t ORDER BY a DESC LIMIT 3", Aggregation},
		{"SELECT a FROM t JOIN u ON t.id = u.tid", Join},
		{"SELECT a, COUNT(*) FROM t JOIN u ON t.id = u.tid GROUP BY a", Join},
		{"SELECT a FROM t WHERE b > (SELECT AVG(b) FROM t)", Nested},
		{"SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2", Nested},
		{"SELECT a FROM t WHERE id IN (SELECT tid FROM u)", Nested},
		{"SELECT a FROM t JOIN u ON t.id = u.tid WHERE t.b > (SELECT MAX(b) FROM t)", Nested},
	}
	for _, c := range cases {
		got := Classify(sqlparse.MustParse(c.sql))
		if got != c.want {
			t.Errorf("Classify(%q) = %v, want %v", c.sql, got, c.want)
		}
	}
	if Classify(nil) != Simple {
		t.Error("nil should classify Simple")
	}
}

func TestBest(t *testing.T) {
	if _, err := Best(nil); !errors.Is(err, ErrNoInterpretation) {
		t.Error("Best(nil) should be ErrNoInterpretation")
	}
	ins := []Interpretation{{Score: 0.4}, {Score: 0.9}, {Score: 0.5}}
	b, err := Best(ins)
	if err != nil || b.Score != 0.9 {
		t.Errorf("Best = %+v, %v", b, err)
	}
}

func annotateDB(t testing.TB) *invindex.Index {
	t.Helper()
	db := sqldata.NewDatabase("shop")
	c, err := db.CreateTable(&sqldata.Schema{
		Name: "customer",
		Columns: []sqldata.Column{
			{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
			{Name: "name", Type: sqldata.TypeText},
			{Name: "city", Type: sqldata.TypeText},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.MustInsert(sqldata.NewInt(1), sqldata.NewText("Alice Smith"), sqldata.NewText("New York"))
	c.MustInsert(sqldata.NewInt(2), sqldata.NewText("Bob"), sqldata.NewText("Berlin"))
	return invindex.Build(db, lexicon.New())
}

func TestMatchSpansLongestFirst(t *testing.T) {
	ix := annotateDB(t)
	toks := nlp.Tag(nlp.Tokenize("customers in New York"))
	spans := MatchSpans(toks, ix, invindex.DefaultOptions())
	if len(spans) != 2 {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].Best().Kind != invindex.KindTable {
		t.Errorf("first span = %+v", spans[0])
	}
	if spans[1].Text != "New York" || spans[1].Best().Value != "New York" {
		t.Errorf("multi-word value span = %+v", spans[1])
	}
}

func TestMatchSpansSkipsNumbers(t *testing.T) {
	ix := annotateDB(t)
	toks := nlp.Tag(nlp.Tokenize("customers with id over 5"))
	spans := MatchSpans(toks, ix, invindex.DefaultOptions())
	for _, s := range spans {
		if s.Text == "5" {
			t.Error("number matched as entity span")
		}
	}
}

func TestFindComparisons(t *testing.T) {
	toks := nlp.Tag(nlp.Tokenize("products with price greater than 100"))
	cs := FindComparisons(toks)
	if len(cs) != 1 || cs[0].Op != ">" || cs[0].Value != 100 || cs[0].ColumnHint != "price" {
		t.Fatalf("comparisons = %+v", cs)
	}
	toks = nlp.Tag(nlp.Tokenize("salary at least 50000 and age under 30"))
	cs = FindComparisons(toks)
	if len(cs) != 2 {
		t.Fatalf("comparisons = %+v", cs)
	}
	if cs[0].Op != ">=" || cs[0].ColumnHint != "salary" {
		t.Errorf("first = %+v", cs[0])
	}
	if cs[1].Op != "<" || cs[1].ColumnHint != "age" {
		t.Errorf("second = %+v", cs[1])
	}
}

func TestFindComparisonsGenericComparative(t *testing.T) {
	cs := FindComparisons(nlp.Tag(nlp.Tokenize("dogs heavier than 20")))
	if len(cs) != 1 || cs[0].Op != ">" || cs[0].Value != 20 || cs[0].ColumnHint != "dogs" {
		t.Fatalf("heavier than = %+v", cs)
	}
	cs = FindComparisons(nlp.Tag(nlp.Tokenize("cats lighter than 5")))
	if len(cs) != 1 || cs[0].Op != "<" || cs[0].Value != 5 {
		t.Fatalf("lighter than = %+v", cs)
	}
	// Listed phrases must not double-fire through the generic fallback.
	cs = FindComparisons(nlp.Tag(nlp.Tokenize("salary greater than 100")))
	if len(cs) != 1 {
		t.Fatalf("double-fired: %+v", cs)
	}
}

func TestFindComparisonsBetween(t *testing.T) {
	toks := nlp.Tag(nlp.Tokenize("price between 10 and 20"))
	cs := FindComparisons(toks)
	if len(cs) != 2 || cs[0].Op != ">=" || cs[0].Value != 10 || cs[1].Op != "<=" || cs[1].Value != 20 {
		t.Fatalf("between = %+v", cs)
	}
}

func TestFindComparisonsPhrasePriority(t *testing.T) {
	// "greater than or equal to" must not double-extract "greater than".
	toks := nlp.Tag(nlp.Tokenize("price greater than or equal to 10"))
	cs := FindComparisons(toks)
	if len(cs) != 1 || cs[0].Op != ">=" {
		t.Fatalf("phrase priority = %+v", cs)
	}
}

func TestFindAggCues(t *testing.T) {
	cases := []struct {
		q    string
		want string
	}{
		{"how many customers are there", "COUNT"},
		{"number of orders", "COUNT"},
		{"total revenue of sales", "SUM"},
		{"average price of products", "AVG"},
		{"maximum salary", "MAX"},
		{"cheapest product", "MIN"},
	}
	for _, c := range cases {
		cues := FindAggCues(nlp.Tag(nlp.Tokenize(c.q)))
		if len(cues) == 0 || cues[0].Func != c.want {
			t.Errorf("FindAggCues(%q) = %+v, want %s", c.q, cues, c.want)
		}
	}
	if cues := FindAggCues(nlp.Tag(nlp.Tokenize("list the customers"))); len(cues) != 0 {
		t.Errorf("spurious agg cues: %+v", cues)
	}
}

func TestFindGroupCues(t *testing.T) {
	toks := nlp.Tag(nlp.Tokenize("total sales by region"))
	gs := FindGroupCues(toks)
	if len(gs) != 1 || toks[gs[0].TokenPos].Lower != "region" {
		t.Fatalf("group cues = %+v", gs)
	}
	toks = nlp.Tag(nlp.Tokenize("average salary per department"))
	gs = FindGroupCues(toks)
	if len(gs) != 1 || toks[gs[0].TokenPos].Lower != "department" {
		t.Fatalf("per cue = %+v", gs)
	}
	toks = nlp.Tag(nlp.Tokenize("count of orders for each customer"))
	gs = FindGroupCues(toks)
	if len(gs) != 1 || toks[gs[0].TokenPos].Lower != "customer" {
		t.Fatalf("each cue = %+v", gs)
	}
}

func TestFindTopK(t *testing.T) {
	tk := FindTopK(nlp.Tag(nlp.Tokenize("top 5 products by price")))
	if tk == nil || tk.K != 5 || !tk.Desc {
		t.Fatalf("top 5 = %+v", tk)
	}
	tk = FindTopK(nlp.Tag(nlp.Tokenize("the most expensive product")))
	if tk == nil || tk.K != 1 || !tk.Desc {
		t.Fatalf("most expensive = %+v", tk)
	}
	tk = FindTopK(nlp.Tag(nlp.Tokenize("3 cheapest hotels")))
	if tk == nil || tk.K != 3 || tk.Desc {
		t.Fatalf("3 cheapest = %+v", tk)
	}
	if tk := FindTopK(nlp.Tag(nlp.Tokenize("list all products"))); tk != nil {
		t.Fatalf("spurious topk = %+v", tk)
	}
}

func TestHasNegation(t *testing.T) {
	toks := nlp.Tag(nlp.Tokenize("departments without employees"))
	if pos, ok := HasNegation(toks); !ok || toks[pos].Lower != "without" {
		t.Errorf("negation = %d %v", pos, ok)
	}
	if _, ok := HasNegation(nlp.Tag(nlp.Tokenize("departments with employees"))); ok {
		t.Error("spurious negation")
	}
}
