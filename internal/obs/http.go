package obs

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
)

// HandlerOption extends the debug mux Handler builds — extra pages (the
// fleet/SLO/trace surfaces) and extra Prometheus families on /metrics —
// without the obs package importing the layers that produce them.
type HandlerOption func(*handlerOpts)

type handlerOpts struct {
	pages map[string]http.Handler
	proms []func(io.Writer)
}

// WithPage mounts h at pattern on the debug mux (e.g. "/fleet", "/slo",
// "/trace"). Later registrations for the same pattern win.
func WithPage(pattern string, h http.Handler) HandlerOption {
	return func(o *handlerOpts) {
		if o.pages == nil {
			o.pages = map[string]http.Handler{}
		}
		o.pages[pattern] = h
	}
}

// WithProm appends extra Prometheus text-format families to every /metrics
// scrape — computed-at-scrape series (SLO burn rates, fleet rollups) that
// do not fit the registry's counter/gauge/histogram kinds.
func WithProm(write func(io.Writer)) HandlerOption {
	return func(o *handlerOpts) {
		if write != nil {
			o.proms = append(o.proms, write)
		}
	}
}

// Handler returns the debug mux for a registry: a Prometheus text dump at
// /metrics, the expvar JSON dump at /debug/vars (with the registry
// published as "nlidb"), the pprof profile suite under /debug/pprof/, and
// — when slow is non-nil — the slow-query log at /slowlog. Options mount
// further pages and /metrics families.
func Handler(reg *Registry, slow *SlowLog, opts ...HandlerOption) http.Handler {
	var o handlerOpts
	for _, opt := range opts {
		opt(&o)
	}
	reg.PublishExpvar("nlidb")
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
		for _, write := range o.proms {
			write(w)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if slow != nil {
		mux.HandleFunc("/slowlog", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintf(w, "threshold %s, %d recorded\n%s\n", slow.Threshold(), slow.Total(), slow)
		})
	}
	for pattern, h := range o.pages {
		mux.Handle(pattern, h)
	}
	return mux
}

// Serve starts the debug mux on addr in a background goroutine and
// returns the server plus the bound address (useful with ":0").
func Serve(addr string, reg *Registry, slow *SlowLog, opts ...HandlerOption) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("obs: metrics listener: %w", err)
	}
	srv := &http.Server{Handler: Handler(reg, slow, opts...)}
	go srv.Serve(ln) //nolint:errcheck // shutdown error is the caller's signal
	return srv, ln.Addr().String(), nil
}
