package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns the debug mux for a registry: a Prometheus text dump at
// /metrics, the expvar JSON dump at /debug/vars (with the registry
// published as "nlidb"), the pprof profile suite under /debug/pprof/, and
// — when slow is non-nil — the slow-query log at /slowlog.
func Handler(reg *Registry, slow *SlowLog) http.Handler {
	reg.PublishExpvar("nlidb")
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if slow != nil {
		mux.HandleFunc("/slowlog", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintf(w, "threshold %s, %d recorded\n%s\n", slow.Threshold(), slow.Total(), slow)
		})
	}
	return mux
}

// Serve starts the debug mux on addr in a background goroutine and
// returns the server plus the bound address (useful with ":0").
func Serve(addr string, reg *Registry, slow *SlowLog) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("obs: metrics listener: %w", err)
	}
	srv := &http.Server{Handler: Handler(reg, slow)}
	go srv.Serve(ln) //nolint:errcheck // shutdown error is the caller's signal
	return srv, ln.Addr().String(), nil
}
