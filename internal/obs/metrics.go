package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind distinguishes the metric families a Registry holds.
type Kind int

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is a settable instantaneous value.
	KindGauge
	// KindHistogram is a distribution with exact reservoir quantiles.
	KindHistogram
)

// String names the kind the way the Prometheus dump prints it.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "summary"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Counter is a monotonically increasing int64, safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable int64, safe for concurrent use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add shifts the value by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// defaultReservoir bounds histogram memory: quantiles are exact until a
// histogram has seen more observations than this, then degrade gracefully
// to uniform-reservoir estimates (Vitter's algorithm R).
const defaultReservoir = 2048

// Histogram tracks a distribution: count, sum, min, max, and a bounded
// uniform reservoir from which Quantile computes exact nearest-rank
// percentiles of the sample. Safe for concurrent use.
type Histogram struct {
	mu        sync.Mutex
	count     int64
	sum       float64
	min, max  float64
	reservoir []float64
	rnd       *rand.Rand
}

func newHistogram() *Histogram {
	return &Histogram{
		reservoir: make([]float64, 0, 64),
		// Seeded deterministically so replays produce identical dumps.
		rnd: rand.New(rand.NewSource(1)),
	}
}

// NewHistogram returns a free-standing histogram not attached to any
// registry, for callers that need a latency reservoir for control
// decisions (e.g. hedging delays from a rolling percentile) rather than
// for export.
func NewHistogram() *Histogram { return newHistogram() }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if len(h.reservoir) < defaultReservoir {
		h.reservoir = append(h.reservoir, v)
		return
	}
	if j := h.rnd.Int63n(h.count); j < defaultReservoir {
		h.reservoir[j] = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile returns the nearest-rank q-quantile (0 < q <= 1) of the
// reservoir sample: exact while the histogram has seen no more
// observations than the reservoir holds. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	sample := append([]float64(nil), h.reservoir...)
	h.mu.Unlock()
	if len(sample) == 0 {
		return 0
	}
	sort.Float64s(sample)
	idx := int(math.Ceil(q*float64(len(sample)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sample) {
		idx = len(sample) - 1
	}
	return sample[idx]
}

// quantiles the Prometheus summary dump reports.
var dumpQuantiles = []float64{0.5, 0.95, 0.99}

// family is one named metric with its labeled series.
type family struct {
	name   string
	kind   Kind
	mu     sync.Mutex
	series map[string]any // label string → *Counter | *Gauge | *Histogram
}

// Registry holds metric families by name. All methods are safe for
// concurrent use; Counter/Gauge/Histogram get-or-create their series, so
// call sites need no registration phase.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// labelKey serializes label pairs in sorted-key order, Prometheus style:
// `engine="athena",outcome="ok"`. Panics on an odd pair count — that is a
// programming error at the call site, not a runtime condition.
func labelKey(labels []string) string {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", labels))
	}
	n := len(labels) / 2
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return labels[2*idx[a]] < labels[2*idx[b]] })
	var sb strings.Builder
	for i, j := range idx {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", labels[2*j], labels[2*j+1])
	}
	return sb.String()
}

func (r *Registry) family(name string, kind Kind) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, kind: kind, series: map[string]any{}}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	return f
}

// Counter returns the counter for name and label pairs (k1, v1, k2, v2…),
// creating it on first use.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	f := r.family(name, KindCounter)
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[key]; ok {
		return m.(*Counter)
	}
	c := &Counter{}
	f.series[key] = c
	return c
}

// Gauge returns the gauge for name and label pairs, creating it on first
// use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	f := r.family(name, KindGauge)
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[key]; ok {
		return m.(*Gauge)
	}
	g := &Gauge{}
	f.series[key] = g
	return g
}

// Histogram returns the histogram for name and label pairs, creating it
// on first use.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	f := r.family(name, KindHistogram)
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[key]; ok {
		return m.(*Histogram)
	}
	h := newHistogram()
	f.series[key] = h
	return h
}

// sortedFamilies snapshots the family list in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedSeries snapshots one family's series in label order.
func (f *family) sortedSeries() []struct {
	key string
	m   any
} {
	f.mu.Lock()
	out := make([]struct {
		key string
		m   any
	}, 0, len(f.series))
	for k, m := range f.series {
		out = append(out, struct {
			key string
			m   any
		}{k, m})
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// WritePrometheus dumps every metric in the Prometheus text exposition
// format (histograms as summaries with exact reservoir quantiles).
func (r *Registry) WritePrometheus(w io.Writer) {
	withLabels := func(name, key, extra string) string {
		all := key
		if extra != "" {
			if all != "" {
				all += ","
			}
			all += extra
		}
		if all == "" {
			return name
		}
		return name + "{" + all + "}"
	}
	for _, f := range r.sortedFamilies() {
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.sortedSeries() {
			switch m := s.m.(type) {
			case *Counter:
				fmt.Fprintf(w, "%s %d\n", withLabels(f.name, s.key, ""), m.Value())
			case *Gauge:
				fmt.Fprintf(w, "%s %d\n", withLabels(f.name, s.key, ""), m.Value())
			case *Histogram:
				for _, q := range dumpQuantiles {
					fmt.Fprintf(w, "%s %g\n",
						withLabels(f.name, s.key, fmt.Sprintf("quantile=%q", fmt.Sprint(q))), m.Quantile(q))
				}
				fmt.Fprintf(w, "%s %g\n", withLabels(f.name+"_sum", s.key, ""), m.Sum())
				fmt.Fprintf(w, "%s %d\n", withLabels(f.name+"_count", s.key, ""), m.Count())
			}
		}
	}
}

// Snapshot returns the registry as nested plain maps — the expvar
// rendering, also handy for tests and JSON dumps.
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	for _, f := range r.sortedFamilies() {
		fam := map[string]any{}
		for _, s := range f.sortedSeries() {
			key := s.key
			if key == "" {
				key = "_"
			}
			switch m := s.m.(type) {
			case *Counter:
				fam[key] = m.Value()
			case *Gauge:
				fam[key] = m.Value()
			case *Histogram:
				fam[key] = map[string]any{
					"count": m.Count(), "sum": m.Sum(),
					"p50": m.Quantile(0.5), "p95": m.Quantile(0.95), "p99": m.Quantile(0.99),
				}
			}
		}
		out[f.name] = fam
	}
	return out
}

// publishMu guards the expvar namespace check (expvar.Publish panics on
// duplicate names).
var publishMu sync.Mutex

// PublishExpvar exposes the registry under name in the process-wide
// expvar namespace (and thus on /debug/vars). Safe to call repeatedly.
func (r *Registry) PublishExpvar(name string) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) == nil {
		expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
	}
}
