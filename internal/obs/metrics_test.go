package obs

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentUpdates hammers one counter, one gauge, and one histogram
// from many goroutines; run under -race this is the data-race proof, and
// the counter/histogram totals double as a lost-update check.
func TestConcurrentUpdates(t *testing.T) {
	reg := NewRegistry()
	const workers, perWorker = 16, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				reg.Counter("q_total", "engine", "athena").Inc()
				reg.Gauge("breaker", "engine", "athena").Set(int64(i % 3))
				reg.Histogram("latency", "engine", "athena").Observe(float64(w*perWorker + i))
			}
		}(w)
	}
	wg.Wait()

	if got := reg.Counter("q_total", "engine", "athena").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := reg.Histogram("latency", "engine", "athena").Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestReservoirExactPercentiles checks quantiles against an independently
// sorted reference while the sample fits the reservoir (exactness regime).
func TestReservoirExactPercentiles(t *testing.T) {
	h := newHistogram()
	n := defaultReservoir // fill exactly to capacity
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i + 1)
	}
	r := rand.New(rand.NewSource(7))
	r.Shuffle(n, func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	for _, v := range vals {
		h.Observe(v)
	}

	ref := append([]float64(nil), vals...)
	sort.Float64s(ref)
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 1.0} {
		idx := int(math.Ceil(q*float64(n))) - 1
		if got, want := h.Quantile(q), ref[idx]; got != want {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	if h.Min() != 1 || h.Max() != float64(n) {
		t.Errorf("min/max = %v/%v, want 1/%d", h.Min(), h.Max(), n)
	}
	if got, want := h.Mean(), float64(n+1)/2; got != want {
		t.Errorf("mean = %v, want %v", got, want)
	}
}

// TestReservoirSamplingStaysInRange overfills the reservoir and checks
// the estimate stays a plausible sample of the true distribution.
func TestReservoirSamplingStaysInRange(t *testing.T) {
	h := newHistogram()
	n := defaultReservoir * 8
	for i := 1; i <= n; i++ {
		h.Observe(float64(i))
	}
	p50 := h.Quantile(0.5)
	// A uniform sample of 2048 from 1..16384 has its median within a few
	// percent of the true median with overwhelming probability.
	if p50 < 0.4*float64(n) || p50 > 0.6*float64(n) {
		t.Errorf("sampled p50 = %v, want within 10%% of %v", p50, n/2)
	}
	if h.Count() != int64(n) {
		t.Errorf("count = %d, want %d", h.Count(), n)
	}
}

func TestPrometheusDump(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("nlidb_queries_total", "engine", "athena", "outcome", "ok").Add(3)
	reg.Gauge("nlidb_breaker_state", "engine", "parse").Set(1)
	reg.Histogram("nlidb_stage_seconds", "stage", "execute").Observe(0.25)

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE nlidb_queries_total counter",
		`nlidb_queries_total{engine="athena",outcome="ok"} 3`,
		"# TYPE nlidb_breaker_state gauge",
		`nlidb_breaker_state{engine="parse"} 1`,
		"# TYPE nlidb_stage_seconds summary",
		`nlidb_stage_seconds{stage="execute",quantile="0.5"} 0.25`,
		`nlidb_stage_seconds_count{stage="execute"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q in:\n%s", want, out)
		}
	}
}

func TestLabelKeyOrderInsensitive(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c", "a", "1", "b", "2").Inc()
	reg.Counter("c", "b", "2", "a", "1").Inc()
	if got := reg.Counter("c", "a", "1", "b", "2").Value(); got != 2 {
		t.Errorf("label order should not split series: got %d, want 2", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("registering one name as two kinds should panic")
		}
	}()
	reg := NewRegistry()
	reg.Counter("x")
	reg.Gauge("x")
}
