// Package obs is the dependency-free observability layer for the query
// path. The SIGMOD 2020 tutorial names transparency — showing the user
// *how* a question was interpreted — as a requirement production NLIDBs
// meet and benchmark systems skip; deployment surveys (Affolter et al.
// 2019; Quamar et al. 2022) make the same point for operators. This
// package serves both audiences with three cooperating pieces:
//
//   - a process-wide metrics Registry (counters, gauges, histograms with
//     exact p50/p95/p99 over a bounded reservoir) exposed through expvar
//     and a Prometheus text dump;
//   - lightweight span tracing (StartSpan / Span.Child) that the gateway
//     threads through tokenize → interpret → parse → plan → execute,
//     producing a per-query QueryTrace renderable as an EXPLAIN tree;
//   - a ring-buffer slow-query log with a configurable latency threshold.
//
// Everything is standard library only, safe for concurrent use, and
// nil-tolerant: calling Span methods on a nil *Span is a no-op, so
// instrumented call sites cost one pointer test when tracing is off.
package obs

import "sync"

// defaultRegistry is the process-wide registry most callers share; use
// NewRegistry for isolated registries in tests and benchmarks.
var (
	defaultOnce     sync.Once
	defaultRegistry *Registry
)

// Default returns the shared process-wide Registry.
func Default() *Registry {
	defaultOnce.Do(func() { defaultRegistry = NewRegistry() })
	return defaultRegistry
}
