package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// SLO tracks two service-level objectives over sliding multi-window
// horizons — the Google-SRE burn-rate shape:
//
//   - availability: the fraction of requests that produced a full, correct
//     answer. Partial scatter answers and shard-down refusals count AGAINST
//     availability (the honest-degradation stance: a degraded answer is an
//     SLO miss even though the user got something).
//   - latency: the fraction of requests answered within Config.Latency.
//
// Events land in a ring of one-minute buckets covering the slowest window
// (3 days), so recording is O(1) and lock-cheap; window sums and burn rates
// are computed on demand at scrape time. Burn rate is
// badRatio / (1 - objective): 1.0 means exactly consuming the error budget
// at the sustainable pace, 14.4 over 5m+1h is the classic page-now signal.
type SLO struct {
	cfg SLOConfig

	mu    sync.Mutex
	base  time.Time // minute-aligned epoch of bucket 0's first lap
	buckt []sloBucket
}

// sloBucket is one minute of events. lap guards against ring wrap: a bucket
// whose lap is older than the current pass holds stale data and reads as
// empty until rewritten.
type sloBucket struct {
	lap     int64
	total   int64
	unavail int64 // availability misses
	slow    int64 // latency misses
}

// sloWindows are the burn-rate windows, fast to slow. 5m/1h is the fast
// pair (page), 6h/3d the slow pair (ticket).
var sloWindows = []struct {
	Name string
	Dur  time.Duration
}{
	{"5m", 5 * time.Minute},
	{"1h", time.Hour},
	{"6h", 6 * time.Hour},
	{"3d", 72 * time.Hour},
}

// sloRingMinutes covers the slowest window exactly.
const sloRingMinutes = int(72 * time.Hour / time.Minute) // 4320

// SLOConfig sets the objectives. Zero values get serving defaults.
type SLOConfig struct {
	// Latency is the per-request latency objective (default 500ms).
	Latency time.Duration
	// LatencyObjective is the target fraction of requests within Latency
	// (default 0.99).
	LatencyObjective float64
	// AvailabilityObjective is the target fraction of fully-available
	// answers (default 0.999).
	AvailabilityObjective float64
	// Now is the clock, injectable for tests (default time.Now).
	Now func() time.Time
}

// NewSLO builds an SLO tracker; zero-value config fields get defaults.
func NewSLO(cfg SLOConfig) *SLO {
	if cfg.Latency <= 0 {
		cfg.Latency = 500 * time.Millisecond
	}
	if cfg.LatencyObjective <= 0 || cfg.LatencyObjective >= 1 {
		cfg.LatencyObjective = 0.99
	}
	if cfg.AvailabilityObjective <= 0 || cfg.AvailabilityObjective >= 1 {
		cfg.AvailabilityObjective = 0.999
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	s := &SLO{cfg: cfg, buckt: make([]sloBucket, sloRingMinutes)}
	s.base = cfg.Now().Truncate(time.Minute)
	return s
}

// Observe records one finished request: its wall time and whether it
// produced a fully-available answer (available=false for errors, timeouts,
// shard-down refusals, AND partial scatter answers). Nil-safe.
func (s *SLO) Observe(elapsed time.Duration, available bool) {
	if s == nil {
		return
	}
	now := s.cfg.Now()
	s.mu.Lock()
	b := s.bucketLocked(now)
	b.total++
	if !available {
		b.unavail++
	}
	if elapsed > s.cfg.Latency {
		b.slow++
	}
	s.mu.Unlock()
}

// bucketLocked returns the live bucket for t, resetting it if the ring has
// lapped since it was last written.
func (s *SLO) bucketLocked(t time.Time) *sloBucket {
	min := int64(t.Sub(s.base) / time.Minute)
	if min < 0 {
		min = 0
	}
	idx := int(min) % sloRingMinutes
	lap := min / int64(sloRingMinutes)
	b := &s.buckt[idx]
	if b.lap != lap {
		*b = sloBucket{lap: lap}
	}
	return b
}

// SLOWindow is one window's position against both objectives.
type SLOWindow struct {
	Window string `json:"window"`
	Total  int64  `json:"total"`
	// Availability
	Unavailable      int64   `json:"unavailable"`
	Availability     float64 `json:"availability"`
	AvailabilityBurn float64 `json:"availability_burn_rate"`
	// Latency
	Slow        int64   `json:"slow"`
	LatencyHit  float64 `json:"latency_hit_ratio"`
	LatencyBurn float64 `json:"latency_burn_rate"`
}

// SLOReport is the full scrape-time view: objectives plus every window.
type SLOReport struct {
	LatencyTargetMS       int64       `json:"latency_target_ms"`
	LatencyObjective      float64     `json:"latency_objective"`
	AvailabilityObjective float64     `json:"availability_objective"`
	Windows               []SLOWindow `json:"windows"`
	// FastBurnAlert fires when both fast windows (5m and 1h) burn the
	// availability budget at >14.4× — the classic page condition.
	FastBurnAlert bool `json:"fast_burn_alert"`
}

// Report computes the multi-window burn rates as of now.
func (s *SLO) Report() SLOReport {
	if s == nil {
		return SLOReport{}
	}
	now := s.cfg.Now()
	rep := SLOReport{
		LatencyTargetMS:       s.cfg.Latency.Milliseconds(),
		LatencyObjective:      s.cfg.LatencyObjective,
		AvailabilityObjective: s.cfg.AvailabilityObjective,
	}
	availBudget := 1 - s.cfg.AvailabilityObjective
	latBudget := 1 - s.cfg.LatencyObjective

	s.mu.Lock()
	nowMin := int64(now.Sub(s.base) / time.Minute)
	burns := map[string]float64{}
	for _, w := range sloWindows {
		minutes := int64(w.Dur / time.Minute)
		var total, unavail, slow int64
		for m := nowMin - minutes + 1; m <= nowMin; m++ {
			if m < 0 {
				continue
			}
			b := &s.buckt[int(m)%sloRingMinutes]
			if b.lap != m/int64(sloRingMinutes) {
				continue // stale (lapped) or never-written bucket
			}
			total += b.total
			unavail += b.unavail
			slow += b.slow
		}
		win := SLOWindow{Window: w.Name, Total: total, Unavailable: unavail, Slow: slow}
		if total > 0 {
			win.Availability = 1 - float64(unavail)/float64(total)
			win.LatencyHit = 1 - float64(slow)/float64(total)
			win.AvailabilityBurn = (float64(unavail) / float64(total)) / availBudget
			win.LatencyBurn = (float64(slow) / float64(total)) / latBudget
		} else {
			win.Availability, win.LatencyHit = 1, 1
		}
		burns[w.Name] = win.AvailabilityBurn
		rep.Windows = append(rep.Windows, win)
	}
	s.mu.Unlock()

	rep.FastBurnAlert = burns["5m"] > 14.4 && burns["1h"] > 14.4
	return rep
}

// Handler serves the SLO report as JSON on GET.
func (s *SLO) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.Report())
	})
}

// WriteProm appends the SLO families in Prometheus text format — wired into
// /metrics via Handler's WithProm option so burn rates ride the same scrape
// as the counters they summarize.
func (s *SLO) WriteProm(w io.Writer) {
	if s == nil {
		return
	}
	rep := s.Report()
	fmt.Fprintf(w, "# TYPE nlidb_slo_latency_target_ms gauge\nnlidb_slo_latency_target_ms %d\n", rep.LatencyTargetMS)
	fmt.Fprintf(w, "# TYPE nlidb_slo_objective gauge\n")
	fmt.Fprintf(w, "nlidb_slo_objective{sli=\"availability\"} %g\n", rep.AvailabilityObjective)
	fmt.Fprintf(w, "nlidb_slo_objective{sli=\"latency\"} %g\n", rep.LatencyObjective)
	fmt.Fprintf(w, "# TYPE nlidb_slo_window_total gauge\n# TYPE nlidb_slo_window_bad gauge\n# TYPE nlidb_slo_burn_rate gauge\n")
	for _, win := range rep.Windows {
		fmt.Fprintf(w, "nlidb_slo_window_total{window=%q} %d\n", win.Window, win.Total)
		fmt.Fprintf(w, "nlidb_slo_window_bad{sli=\"availability\",window=%q} %d\n", win.Window, win.Unavailable)
		fmt.Fprintf(w, "nlidb_slo_window_bad{sli=\"latency\",window=%q} %d\n", win.Window, win.Slow)
		fmt.Fprintf(w, "nlidb_slo_burn_rate{sli=\"availability\",window=%q} %g\n", win.Window, win.AvailabilityBurn)
		fmt.Fprintf(w, "nlidb_slo_burn_rate{sli=\"latency\",window=%q} %g\n", win.Window, win.LatencyBurn)
	}
	alert := 0
	if rep.FastBurnAlert {
		alert = 1
	}
	fmt.Fprintf(w, "# TYPE nlidb_slo_fast_burn_alert gauge\nnlidb_slo_fast_burn_alert %d\n", alert)
}
