package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// sloClock is a settable fake clock for driving the minute ring.
type sloClock struct{ t time.Time }

func (c *sloClock) now() time.Time          { return c.t }
func (c *sloClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newSLOClock() *sloClock                { return &sloClock{t: time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)} }
func window(r SLOReport, name string) *SLOWindow {
	for i := range r.Windows {
		if r.Windows[i].Window == name {
			return &r.Windows[i]
		}
	}
	return nil
}

func TestSLOBurnMath(t *testing.T) {
	clk := newSLOClock()
	s := NewSLO(SLOConfig{
		Latency:               100 * time.Millisecond,
		LatencyObjective:      0.9,  // budget 0.1
		AvailabilityObjective: 0.99, // budget 0.01
		Now:                   clk.now,
	})
	// 100 events: 2 unavailable, 10 slow.
	for i := 0; i < 100; i++ {
		elapsed := 10 * time.Millisecond
		if i < 10 {
			elapsed = 200 * time.Millisecond
		}
		s.Observe(elapsed, i >= 2)
	}
	rep := s.Report()
	w := window(rep, "5m")
	if w == nil {
		t.Fatal("no 5m window in report")
	}
	if w.Total != 100 || w.Unavailable != 2 || w.Slow != 10 {
		t.Fatalf("5m window = total %d unavail %d slow %d, want 100/2/10", w.Total, w.Unavailable, w.Slow)
	}
	if got, want := w.Availability, 0.98; got != want {
		t.Fatalf("availability = %g, want %g", got, want)
	}
	// burn = badRatio / budget: 0.02/0.01 = 2 for availability, 0.1/0.1 = 1
	// for latency (exactly consuming the budget).
	if got := w.AvailabilityBurn; got < 1.999 || got > 2.001 {
		t.Fatalf("availability burn = %g, want 2", got)
	}
	if got := w.LatencyBurn; got < 0.999 || got > 1.001 {
		t.Fatalf("latency burn = %g, want 1", got)
	}
	// All events are in the same minute, so every window sees them.
	for _, name := range []string{"1h", "6h", "3d"} {
		if w := window(rep, name); w == nil || w.Total != 100 {
			t.Fatalf("window %s total = %v, want 100", name, w)
		}
	}
	if rep.FastBurnAlert {
		t.Fatal("FastBurnAlert at 2x burn; threshold is 14.4x")
	}
}

func TestSLOFastBurnAlert(t *testing.T) {
	clk := newSLOClock()
	s := NewSLO(SLOConfig{AvailabilityObjective: 0.999, Now: clk.now})
	// 100% failure burns at 1/0.001 = 1000x in both fast windows.
	for i := 0; i < 10; i++ {
		s.Observe(time.Millisecond, false)
	}
	rep := s.Report()
	if !rep.FastBurnAlert {
		t.Fatalf("FastBurnAlert not set at total outage; 5m burn = %g", window(rep, "5m").AvailabilityBurn)
	}
	// An old incident alone must not page: move it out of the 5m window.
	clk.advance(10 * time.Minute)
	rep = s.Report()
	if rep.FastBurnAlert {
		t.Fatal("FastBurnAlert still set with the incident outside the 5m window")
	}
	if w := window(rep, "1h"); w.Total != 10 || w.Unavailable != 10 {
		t.Fatalf("1h window = %+v, want the incident still visible", w)
	}
}

func TestSLOWindowsAgeOut(t *testing.T) {
	checks := []struct {
		advance time.Duration
		gone    string // smallest window the event has left
	}{
		{6 * time.Minute, "5m"},
		{time.Hour, "1h"},
		{6 * time.Hour, "6h"},
		{72 * time.Hour, "3d"},
	}
	for _, c := range checks {
		clk := newSLOClock()
		s := NewSLO(SLOConfig{Now: clk.now})
		s.Observe(time.Millisecond, false)
		clk.advance(c.advance)
		w := window(s.Report(), c.gone)
		if w.Total != 0 {
			t.Errorf("after %v, %s window total = %d, want 0", c.advance, c.gone, w.Total)
		}
		// An empty window reads as perfectly healthy, not as burning.
		if w.Availability != 1 || w.AvailabilityBurn != 0 {
			t.Errorf("empty %s window: availability %g burn %g, want 1 and 0", c.gone, w.Availability, w.AvailabilityBurn)
		}
	}
}

// TestSLORingWrap: an event 3 days + a bit old lands on a lapped bucket
// index; the lap guard must keep it from bleeding into the new pass.
func TestSLORingWrap(t *testing.T) {
	clk := newSLOClock()
	s := NewSLO(SLOConfig{Now: clk.now})
	s.Observe(time.Millisecond, false) // lap 0, bucket 0
	clk.advance(72 * time.Hour)        // lap 1, same bucket index
	if w := window(s.Report(), "3d"); w.Total != 0 {
		t.Fatalf("lapped bucket leaked: 3d total = %d, want 0", w.Total)
	}
	s.Observe(time.Millisecond, true) // must reset the stale bucket
	w := window(s.Report(), "3d")
	if w.Total != 1 || w.Unavailable != 0 {
		t.Fatalf("post-wrap bucket = total %d unavail %d, want 1/0 (stale counts cleared)", w.Total, w.Unavailable)
	}
}

func TestSLOHandlerAndProm(t *testing.T) {
	clk := newSLOClock()
	s := NewSLO(SLOConfig{Latency: 50 * time.Millisecond, Now: clk.now})
	s.Observe(10*time.Millisecond, true)
	s.Observe(100*time.Millisecond, true) // slow but available: no burn alert

	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/slo", nil))
	body := rr.Body.String()
	for _, want := range []string{`"latency_target_ms": 50`, `"window": "5m"`, `"availability_burn_rate"`} {
		if !strings.Contains(body, want) {
			t.Errorf("/slo body missing %q:\n%s", want, body)
		}
	}

	var sb strings.Builder
	s.WriteProm(&sb)
	prom := sb.String()
	for _, want := range []string{
		"nlidb_slo_latency_target_ms 50",
		`nlidb_slo_objective{sli="availability"} 0.999`,
		`nlidb_slo_window_total{window="5m"} 2`,
		`nlidb_slo_window_bad{sli="availability",window="5m"} 0`,
		`nlidb_slo_window_bad{sli="latency",window="5m"} 1`,
		`nlidb_slo_burn_rate{sli="latency",window="5m"}`,
		"nlidb_slo_fast_burn_alert 0",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prom dump missing %q:\n%s", want, prom)
		}
	}
}

func TestSLONilSafe(t *testing.T) {
	var s *SLO
	s.Observe(time.Second, false) // must not panic
	if rep := s.Report(); len(rep.Windows) != 0 {
		t.Fatal("nil SLO report should be empty")
	}
	var sb strings.Builder
	s.WriteProm(&sb)
	if sb.Len() != 0 {
		t.Fatal("nil SLO wrote prom output")
	}
}
