package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// SlowEntry is one recorded slow query.
type SlowEntry struct {
	// Question is the natural-language input.
	Question string
	// Engine names the interpreter that served (or last failed) it.
	Engine string
	// Outcome is the query outcome label ("ok", "error", "timeout", …).
	Outcome string
	// Duration is the total wall-clock time of the request.
	Duration time.Duration
	// When is the completion time.
	When time.Time
	// Trace, when tracing was on, is the full span tree of the query.
	Trace *QueryTrace

	// TraceID links the entry to its retained full trace in a TraceStore
	// ("" when tracing was off). The /slowlog page prints it so an operator
	// can jump from a slow line to /trace?id=… without grepping.
	TraceID TraceID
	// Route is the coordinator's statement classification ("home",
	// "pruned", "scatter"; "" for unsharded serving).
	Route string
	// Shards is how many shards the query touched (0 for unsharded).
	Shards int
	// Partial marks a degraded scatter answer (some shards missing).
	Partial bool
	// Hedged counts hedge legs fired while serving the query.
	Hedged int
	// Retries counts replica attempts beyond the first, summed over shards.
	Retries int
	// DroppedSpans is the trace's DroppedTotal — spans lost to the child
	// cap, so a truncated tree is never mistaken for a complete one.
	DroppedSpans int
	// Session identifies the conversation a slow turn belonged to
	// ("" for stateless queries), so an operator can pull the whole
	// conversation's trace from one slow line.
	Session string
}

// SlowLog is a fixed-capacity ring buffer of the most recent queries
// slower than a threshold. Safe for concurrent use.
type SlowLog struct {
	mu        sync.Mutex
	threshold time.Duration
	buf       []SlowEntry
	next      int  // ring write position
	full      bool // buf has wrapped at least once
	total     int64
}

// NewSlowLog returns a log recording queries at or above threshold,
// keeping the most recent capacity entries (default 128 when <= 0).
func NewSlowLog(threshold time.Duration, capacity int) *SlowLog {
	if capacity <= 0 {
		capacity = 128
	}
	return &SlowLog{threshold: threshold, buf: make([]SlowEntry, capacity)}
}

// Threshold returns the configured latency threshold.
func (l *SlowLog) Threshold() time.Duration { return l.threshold }

// Observe records e if it is slow enough, evicting the oldest entry when
// the ring is full, and reports whether it was recorded.
func (l *SlowLog) Observe(e SlowEntry) bool {
	if l == nil || e.Duration < l.threshold {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf[l.next] = e
	l.next++
	if l.next == len(l.buf) {
		l.next = 0
		l.full = true
	}
	l.total++
	return true
}

// Total returns how many slow queries have ever been recorded (including
// entries since evicted).
func (l *SlowLog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Entries returns the retained entries, oldest first.
func (l *SlowLog) Entries() []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.full {
		return append([]SlowEntry(nil), l.buf[:l.next]...)
	}
	out := make([]SlowEntry, 0, len(l.buf))
	out = append(out, l.buf[l.next:]...)
	out = append(out, l.buf[:l.next]...)
	return out
}

// String renders the log newest-last, one line per entry.
func (l *SlowLog) String() string {
	entries := l.Entries()
	if len(entries) == 0 {
		return "(slow-query log empty)"
	}
	var sb strings.Builder
	for _, e := range entries {
		fmt.Fprintf(&sb, "%s  %-8s %-9s %-10s %q%s\n",
			e.When.Format("15:04:05.000"), e.Engine, e.Outcome, roundDur(e.Duration), e.Question, fleetSuffix(e))
	}
	return strings.TrimRight(sb.String(), "\n")
}

// fleetSuffix renders the sharded-serving fields of an entry, omitting
// whatever is zero so unsharded lines look exactly as before.
func fleetSuffix(e SlowEntry) string {
	var parts []string
	if e.Route != "" {
		parts = append(parts, "route="+e.Route)
	}
	if e.Shards > 0 {
		parts = append(parts, fmt.Sprintf("shards=%d", e.Shards))
	}
	if e.Partial {
		parts = append(parts, "partial=true")
	}
	if e.Hedged > 0 {
		parts = append(parts, fmt.Sprintf("hedged=%d", e.Hedged))
	}
	if e.Retries > 0 {
		parts = append(parts, fmt.Sprintf("retries=%d", e.Retries))
	}
	if e.DroppedSpans > 0 {
		parts = append(parts, fmt.Sprintf("dropped_spans=%d", e.DroppedSpans))
	}
	if e.Session != "" {
		parts = append(parts, "session="+e.Session)
	}
	if e.TraceID != "" {
		parts = append(parts, "trace="+string(e.TraceID))
	}
	if len(parts) == 0 {
		return ""
	}
	return " [" + strings.Join(parts, " ") + "]"
}
