package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSlowLogThreshold(t *testing.T) {
	l := NewSlowLog(100*time.Millisecond, 4)
	if l.Observe(SlowEntry{Question: "fast", Duration: 99 * time.Millisecond}) {
		t.Error("sub-threshold query must not be recorded")
	}
	if !l.Observe(SlowEntry{Question: "slow", Duration: 100 * time.Millisecond}) {
		t.Error("at-threshold query must be recorded")
	}
	if got := l.Total(); got != 1 {
		t.Errorf("total = %d, want 1", got)
	}
}

// TestSlowLogEvictionOrder overfills the ring and checks that Entries
// returns exactly the newest entries, oldest first.
func TestSlowLogEvictionOrder(t *testing.T) {
	l := NewSlowLog(0, 3)
	for i := 1; i <= 5; i++ {
		l.Observe(SlowEntry{Question: fmt.Sprintf("q%d", i), Duration: time.Duration(i)})
	}
	got := l.Entries()
	if len(got) != 3 {
		t.Fatalf("entries = %d, want 3", len(got))
	}
	for i, want := range []string{"q3", "q4", "q5"} {
		if got[i].Question != want {
			t.Errorf("entry %d = %q, want %q (oldest-first order)", i, got[i].Question, want)
		}
	}
	if l.Total() != 5 {
		t.Errorf("total = %d, want 5 (evictions still counted)", l.Total())
	}
}

func TestSlowLogPartialFill(t *testing.T) {
	l := NewSlowLog(0, 8)
	l.Observe(SlowEntry{Question: "a"})
	l.Observe(SlowEntry{Question: "b"})
	got := l.Entries()
	if len(got) != 2 || got[0].Question != "a" || got[1].Question != "b" {
		t.Errorf("partial ring entries = %v, want [a b]", got)
	}
}

func TestSlowLogConcurrent(t *testing.T) {
	l := NewSlowLog(0, 16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Observe(SlowEntry{Question: "q", Duration: time.Duration(i)})
				l.Entries()
			}
		}()
	}
	wg.Wait()
	if got := l.Total(); got != 1600 {
		t.Errorf("total = %d, want 1600", got)
	}
}

func TestNilSlowLogSafe(t *testing.T) {
	var l *SlowLog
	if l.Observe(SlowEntry{Duration: time.Hour}) {
		t.Error("nil slow log must drop entries")
	}
	if l.Total() != 0 || l.Entries() != nil {
		t.Error("nil slow log accessors should return zero values")
	}
}
