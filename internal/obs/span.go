package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// maxSpanChildren bounds one span's child list so a pathological query (a
// correlated sub-query fanning out thousands of scans, say) cannot turn
// its trace into a memory leak. Further children are counted, not kept.
const maxSpanChildren = 128

// spanKey carries the current span through a context.
type spanKey struct{}

// Span is one timed stage of a query. Spans form a tree (the QueryTrace);
// each carries ordered attributes (strings) and counters (int64s). All
// methods are safe on a nil receiver — they no-op — so instrumented call
// sites stay branch-free when tracing is disabled.
type Span struct {
	// Name labels the stage ("interpret", "scan customer", …).
	Name string

	id       uint64 // process-unique, for cross-node parent references
	mu       sync.Mutex
	start    time.Time
	dur      time.Duration
	ended    bool
	attrs    []Attr
	counts   []Count
	children []*Span
	dropped  int // children beyond maxSpanChildren
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key, Value string
}

// Count is one named counter on a span.
type Count struct {
	Key string
	N   int64
}

func newSpan(name string) *Span {
	return &Span{Name: name, id: nextSpanID(), start: time.Now()}
}

// SpanID is the span's process-unique identifier, hex-encoded. Together
// with the trace ID it forms the serializable TraceContext a coordinator
// hands to a remote node ("" on nil).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return fmt.Sprintf("%08x", s.id)
}

// StartSpan begins a span named name as a child of the span in ctx (or as
// a root when ctx carries none — an orphan span, still usable on its own)
// and returns a derived context carrying the new span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	sp := newSpan(name)
	if parent := FromContext(ctx); parent != nil {
		parent.attach(sp)
	}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// FromContext returns the current span in ctx, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// Child starts and attaches a child span without touching any context.
// Nil-safe: a nil receiver returns nil (which itself absorbs all calls).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(name)
	s.attach(c)
	return c
}

func (s *Span) attach(c *Span) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.children) >= maxSpanChildren {
		s.dropped++
		return
	}
	s.children = append(s.children, c)
}

// End freezes the span's duration. Idempotent; later Ends are ignored.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		s.dur = time.Since(s.start)
		s.ended = true
	}
}

// Ended reports whether End has been called.
func (s *Span) Ended() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ended
}

// Duration is the frozen duration of an ended span, or the running
// duration so far of a live one (0 on nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// SetAttr sets one annotation, replacing an existing value for the key.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// Attr returns the value for key ("" when absent).
func (s *Span) Attr(key string) string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Add accumulates n onto the named counter.
func (s *Span) Add(key string, n int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.counts {
		if s.counts[i].Key == key {
			s.counts[i].N += n
			return
		}
	}
	s.counts = append(s.counts, Count{Key: key, N: n})
}

// Count returns the named counter's value (0 when absent).
func (s *Span) Count(key string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.counts {
		if c.Key == key {
			return c.N
		}
	}
	return 0
}

// Children snapshots the child list.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Dropped reports how many children were discarded past the cap.
func (s *Span) Dropped() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// QueryTrace is the full observability record of one query: a span tree
// rooted at the whole request, rendered by String as the EXPLAIN tree the
// CLI shows after an answer.
type QueryTrace struct {
	// Question is the natural-language input as asked.
	Question string
	// Root spans the whole request; stage spans hang below it.
	Root *Span
	// ID identifies the trace fleet-wide. Child traces started under a
	// coordinator's context (in-process or via a propagated TraceContext)
	// share the coordinator's ID, so one distributed request is one ID.
	ID TraceID
}

// NewQueryTrace starts a trace for question, returning a context that
// carries its root span so StartSpan/FromContext attach below it.
//
// Trace identity propagates across serving tiers: if ctx already carries a
// trace ID (the in-process fast path — a replica gateway running under a
// shard coordinator) the new trace adopts it and its root attaches as a
// child of the coordinator's current span, forming one tree. If ctx
// carries a remote TraceContext (deserialized from a transport header via
// WithRemoteContext) the ID is adopted and the root records its remote
// parent span, ready to be re-grafted coordinator-side from the exported
// span tree. Otherwise a fresh ID is generated.
func NewQueryTrace(ctx context.Context, question string) (context.Context, *QueryTrace) {
	id := ContextTraceID(ctx)
	var remoteParent string
	if id == "" {
		if tc, ok := RemoteContext(ctx); ok {
			id = tc.TraceID
			remoteParent = tc.SpanID
		}
	}
	local := FromContext(ctx) != nil
	ctx, root := StartSpan(ctx, "query")
	if id == "" {
		id = NewTraceID()
	} else if remoteParent != "" && !local {
		root.SetAttr("remote_parent", remoteParent)
	}
	ctx = context.WithValue(ctx, traceIDKey{}, id)
	return ctx, &QueryTrace{Question: question, Root: root, ID: id}
}

// DroppedTotal sums Span.Dropped over the whole tree: how many spans this
// trace silently lost to the per-span child cap. Renderers and the slow
// log surface it so a truncated tree is never mistaken for a complete one.
func (t *QueryTrace) DroppedTotal() int {
	if t == nil {
		return 0
	}
	var walk func(s *Span) int
	walk = func(s *Span) int {
		n := s.Dropped()
		for _, c := range s.Children() {
			n += walk(c)
		}
		return n
	}
	return walk(t.Root)
}

// roundDur trims a duration for display: sub-millisecond spans print in
// microseconds, everything else with three significant decimals.
func roundDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return d.Round(time.Microsecond).String()
	case d < time.Second:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Millisecond).String()
	}
}

// String renders the trace as a tree with per-span durations, counters,
// and attributes. Multi-line attribute values (the query plan) indent as
// a block under their span.
func (t *QueryTrace) String() string {
	if t == nil || t.Root == nil {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %q %s%s\n", t.Root.Name, t.Question, roundDur(t.Root.Duration()), spanSuffix(t.Root))
	renderAttrBlocks(&sb, t.Root, "")
	children := t.Root.Children()
	for i, c := range children {
		renderSpan(&sb, c, "", i == len(children)-1 && t.Root.Dropped() == 0)
	}
	if n := t.Root.Dropped(); n > 0 {
		fmt.Fprintf(&sb, "└─ … %d more span(s) dropped\n", n)
	}
	return strings.TrimRight(sb.String(), "\n")
}

func renderSpan(sb *strings.Builder, s *Span, prefix string, last bool) {
	branch, childPrefix := "├─ ", prefix+"│  "
	if last {
		branch, childPrefix = "└─ ", prefix+"   "
	}
	fmt.Fprintf(sb, "%s%s%s %s%s", prefix, branch, s.Name, roundDur(s.Duration()), spanSuffix(s))
	if !s.Ended() {
		sb.WriteString(" (unfinished)")
	}
	sb.WriteByte('\n')
	renderAttrBlocks(sb, s, childPrefix)
	children := s.Children()
	for i, c := range children {
		renderSpan(sb, c, childPrefix, i == len(children)-1 && s.Dropped() == 0)
	}
	if n := s.Dropped(); n > 0 {
		fmt.Fprintf(sb, "%s└─ … %d more span(s) dropped\n", childPrefix, n)
	}
}

// spanSuffix renders a span's counters and single-line attrs inline:
// " [rows=120 engine=athena]".
func spanSuffix(s *Span) string {
	s.mu.Lock()
	counts := append([]Count(nil), s.counts...)
	attrs := append([]Attr(nil), s.attrs...)
	s.mu.Unlock()
	var parts []string
	for _, c := range counts {
		parts = append(parts, fmt.Sprintf("%s=%d", c.Key, c.N))
	}
	for _, a := range attrs {
		if !strings.Contains(a.Value, "\n") {
			parts = append(parts, fmt.Sprintf("%s=%s", a.Key, a.Value))
		}
	}
	if len(parts) == 0 {
		return ""
	}
	return " [" + strings.Join(parts, " ") + "]"
}

// renderAttrBlocks prints multi-line attribute values as indented blocks.
func renderAttrBlocks(sb *strings.Builder, s *Span, prefix string) {
	s.mu.Lock()
	attrs := append([]Attr(nil), s.attrs...)
	s.mu.Unlock()
	sort.SliceStable(attrs, func(i, j int) bool { return attrs[i].Key < attrs[j].Key })
	for _, a := range attrs {
		if !strings.Contains(a.Value, "\n") {
			continue
		}
		for _, line := range strings.Split(a.Value, "\n") {
			fmt.Fprintf(sb, "%s     %s\n", prefix, line)
		}
	}
}

// Find returns the first span named name in depth-first order, or nil —
// a test and tooling convenience.
func (t *QueryTrace) Find(name string) *Span {
	if t == nil {
		return nil
	}
	var walk func(s *Span) *Span
	walk = func(s *Span) *Span {
		if s == nil {
			return nil
		}
		if s.Name == name {
			return s
		}
		for _, c := range s.Children() {
			if got := walk(c); got != nil {
				return got
			}
		}
		return nil
	}
	return walk(t.Root)
}
