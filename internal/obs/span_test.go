package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	ctx, trace := NewQueryTrace(context.Background(), "how many customers")
	tok := trace.Root.Child("tokenize")
	tok.End()
	ctx2, interp := StartSpan(ctx, "interpret")
	_, exec := StartSpan(ctx2, "execute")
	exec.Add("rows_scanned", 120)
	exec.Add("rows_scanned", 30)
	exec.SetAttr("engine", "athena")
	exec.End()
	interp.End()
	trace.Root.End()

	if got := FromContext(ctx2); got != interp {
		t.Errorf("FromContext = %v, want the interpret span", got)
	}
	kids := trace.Root.Children()
	if len(kids) != 2 || kids[0] != tok || kids[1] != interp {
		t.Fatalf("root children = %v, want [tokenize interpret]", kids)
	}
	if k := interp.Children(); len(k) != 1 || k[0] != exec {
		t.Fatalf("interpret children = %v, want [execute]", k)
	}
	if got := exec.Count("rows_scanned"); got != 150 {
		t.Errorf("counter accumulation = %d, want 150", got)
	}
	if got := exec.Attr("engine"); got != "athena" {
		t.Errorf("attr = %q, want athena", got)
	}

	out := trace.String()
	for _, want := range []string{`query "how many customers"`, "├─", "└─", "interpret", "execute", "rows_scanned=150", "engine=athena"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

// TestOrphanSpan starts a span with no trace in the context: it must work
// standalone (its own root) without touching anything else.
func TestOrphanSpan(t *testing.T) {
	ctx, orphan := StartSpan(context.Background(), "lonely")
	if orphan == nil {
		t.Fatal("orphan span should still be created")
	}
	if got := FromContext(ctx); got != orphan {
		t.Errorf("orphan should be current in its context")
	}
	orphan.Add("n", 1)
	orphan.End()
	if !orphan.Ended() || orphan.Count("n") != 1 {
		t.Errorf("orphan span should be fully functional")
	}
}

// TestNilSpanSafe exercises every method on a nil *Span — the disabled-
// tracing fast path used throughout sqlexec and the gateway.
func TestNilSpanSafe(t *testing.T) {
	var s *Span
	if c := s.Child("x"); c != nil {
		t.Errorf("nil.Child = %v, want nil", c)
	}
	s.End()
	s.Add("k", 1)
	s.SetAttr("k", "v")
	if s.Count("k") != 0 || s.Attr("k") != "" || s.Duration() != 0 || s.Ended() || s.Children() != nil || s.Dropped() != 0 {
		t.Error("nil span accessors should all return zero values")
	}
}

func TestUnfinishedSpanRenders(t *testing.T) {
	_, trace := NewQueryTrace(context.Background(), "q")
	trace.Root.Child("never-ended")
	trace.Root.End()
	if out := trace.String(); !strings.Contains(out, "(unfinished)") {
		t.Errorf("render should flag unfinished spans:\n%s", out)
	}
}

func TestSpanChildCap(t *testing.T) {
	_, trace := NewQueryTrace(context.Background(), "q")
	for i := 0; i < maxSpanChildren+25; i++ {
		trace.Root.Child("scan").End()
	}
	trace.Root.End()
	if got := len(trace.Root.Children()); got != maxSpanChildren {
		t.Errorf("children = %d, want cap %d", got, maxSpanChildren)
	}
	if got := trace.Root.Dropped(); got != 25 {
		t.Errorf("dropped = %d, want 25", got)
	}
	if out := trace.String(); !strings.Contains(out, "25 more span(s) dropped") {
		t.Errorf("render should report dropped spans:\n%s", out)
	}
}

func TestMultilineAttrRendersAsBlock(t *testing.T) {
	_, trace := NewQueryTrace(context.Background(), "q")
	plan := trace.Root.Child("plan")
	plan.SetAttr("plan", "Project [count(*)]\n  Scan customer (40 rows)")
	plan.End()
	trace.Root.End()
	out := trace.String()
	if !strings.Contains(out, "Project [count(*)]") || !strings.Contains(out, "Scan customer (40 rows)") {
		t.Errorf("multi-line attr should render as block:\n%s", out)
	}
	if strings.Contains(out, "plan=Project") {
		t.Errorf("multi-line attr must not render inline:\n%s", out)
	}
}

func TestFindAndDuration(t *testing.T) {
	_, trace := NewQueryTrace(context.Background(), "q")
	c := trace.Root.Child("deep")
	time.Sleep(time.Millisecond)
	c.End()
	trace.Root.End()
	if trace.Find("deep") != c {
		t.Error("Find should locate nested spans")
	}
	if trace.Find("missing") != nil {
		t.Error("Find of an absent name should be nil")
	}
	if c.Duration() <= 0 {
		t.Error("ended span should have positive duration")
	}
	if d1, d2 := c.Duration(), c.Duration(); d1 != d2 {
		t.Error("ended span duration must be frozen")
	}
}
