package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"time"
)

// TraceID identifies one distributed request across every node that works
// on it. IDs are 16 hex characters: an 8-hex process prefix (random at
// startup, so concurrent processes in a fleet do not collide) plus an
// 8-hex per-process counter.
type TraceID string

var (
	// tracePrefix is drawn once per process; Go 1.20+ seeds the global
	// source randomly, so two fleet processes get distinct prefixes.
	tracePrefix = uint32(rand.Int63())
	traceSeq    atomic.Uint32
	spanSeq     atomic.Uint64
)

// NewTraceID returns a fresh fleet-unique trace ID.
func NewTraceID() TraceID {
	return TraceID(fmt.Sprintf("%08x%08x", tracePrefix, traceSeq.Add(1)))
}

// nextSpanID hands out process-unique span IDs.
func nextSpanID() uint64 { return spanSeq.Add(1) }

// traceIDKey carries the current trace's ID through a context, alongside
// (but independent of) the current span.
type traceIDKey struct{}

// remoteCtxKey carries a deserialized TraceContext from a transport edge
// to the next NewQueryTrace.
type remoteCtxKey struct{}

// ContextTraceID returns the trace ID in ctx, or "" when ctx carries none.
func ContextTraceID(ctx context.Context) TraceID {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(traceIDKey{}).(TraceID)
	return id
}

// TraceContext is the serializable trace coordinate a coordinator sends
// with a cross-node request: which distributed trace the work belongs to
// and which span is its parent. Its wire form (String/ParseTraceContext,
// or plain JSON) is transport-agnostic — an HTTP header, a field in a
// framed RPC, an environment variable for a child process.
type TraceContext struct {
	// TraceID names the distributed trace.
	TraceID TraceID `json:"trace_id"`
	// SpanID names the parent span on the sending node.
	SpanID string `json:"span_id"`
}

// String serializes the context as "traceID-spanID", the header form.
func (tc TraceContext) String() string {
	return string(tc.TraceID) + "-" + tc.SpanID
}

// ParseTraceContext parses the String form. Errors on malformed input so
// a transport edge can reject a corrupt header instead of mislinking.
func ParseTraceContext(s string) (TraceContext, error) {
	i := strings.LastIndexByte(s, '-')
	if i <= 0 || i == len(s)-1 {
		return TraceContext{}, fmt.Errorf("obs: malformed trace context %q", s)
	}
	return TraceContext{TraceID: TraceID(s[:i]), SpanID: s[i+1:]}, nil
}

// CurrentTraceContext extracts the sendable trace coordinate from ctx:
// the trace ID plus the current span's ID. ok is false when ctx carries
// no trace (nothing to propagate).
func CurrentTraceContext(ctx context.Context) (TraceContext, bool) {
	id := ContextTraceID(ctx)
	if id == "" {
		return TraceContext{}, false
	}
	return TraceContext{TraceID: id, SpanID: FromContext(ctx).SpanID()}, true
}

// WithRemoteContext returns a ctx carrying tc as the remote parent for the
// next NewQueryTrace — the receiving side of a transport edge. It does NOT
// set a local parent span: the remote tree stays detached until the
// coordinator grafts the exported spans back under the parent span.
func WithRemoteContext(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, remoteCtxKey{}, tc)
}

// RemoteContext returns the remote TraceContext installed by
// WithRemoteContext, if any.
func RemoteContext(ctx context.Context) (TraceContext, bool) {
	if ctx == nil {
		return TraceContext{}, false
	}
	tc, ok := ctx.Value(remoteCtxKey{}).(TraceContext)
	return tc, ok
}

// SpanData is the wire form of a span subtree: everything a coordinator
// needs to re-graft a remote node's work into the distributed trace.
// Durations travel as nanoseconds; wall-clock start times do not travel
// (clocks across nodes are not comparable; tree position carries order).
type SpanData struct {
	Name     string      `json:"name"`
	SpanID   string      `json:"span_id,omitempty"`
	DurNS    int64       `json:"dur_ns"`
	Ended    bool        `json:"ended"`
	Attrs    []Attr      `json:"attrs,omitempty"`
	Counts   []Count     `json:"counts,omitempty"`
	Children []*SpanData `json:"children,omitempty"`
	Dropped  int         `json:"dropped,omitempty"`
}

// Export snapshots the span subtree as transportable SpanData (nil on a
// nil span). Live (un-ended) spans export their running duration.
func (s *Span) Export() *SpanData {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	d := &SpanData{
		Name:    s.Name,
		SpanID:  fmt.Sprintf("%08x", s.id),
		Ended:   s.ended,
		Attrs:   append([]Attr(nil), s.attrs...),
		Counts:  append([]Count(nil), s.counts...),
		Dropped: s.dropped,
	}
	if s.ended {
		d.DurNS = int64(s.dur)
	} else {
		d.DurNS = int64(time.Since(s.start))
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		d.Children = append(d.Children, c.Export())
	}
	return d
}

// MarshalTrace serializes a whole trace (ID + span tree) to JSON for the
// wire. The inverse is UnmarshalTrace.
func MarshalTrace(t *QueryTrace) ([]byte, error) {
	if t == nil {
		return nil, fmt.Errorf("obs: nil trace")
	}
	return json.Marshal(struct {
		ID       TraceID   `json:"trace_id"`
		Question string    `json:"question"`
		Root     *SpanData `json:"root"`
	}{t.ID, t.Question, t.Root.Export()})
}

// UnmarshalTrace rebuilds a trace from MarshalTrace output. The rebuilt
// spans are frozen (ended with their exported durations) and ready to be
// grafted under a coordinator span with Span.Graft.
func UnmarshalTrace(data []byte) (*QueryTrace, error) {
	var w struct {
		ID       TraceID   `json:"trace_id"`
		Question string    `json:"question"`
		Root     *SpanData `json:"root"`
	}
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("obs: unmarshal trace: %w", err)
	}
	return &QueryTrace{ID: w.ID, Question: w.Question, Root: w.Root.Rebuild()}, nil
}

// Rebuild turns exported SpanData back into a frozen *Span tree (nil on
// nil). Rebuilt spans keep their originating node's span IDs, so a
// remote_parent attribute on a nested trace still resolves.
func (d *SpanData) Rebuild() *Span {
	if d == nil {
		return nil
	}
	s := &Span{
		Name:    d.Name,
		dur:     time.Duration(d.DurNS),
		ended:   d.Ended,
		attrs:   append([]Attr(nil), d.Attrs...),
		counts:  append([]Count(nil), d.Counts...),
		dropped: d.Dropped,
	}
	if !d.Ended {
		// A live remote span cannot keep running here; anchor its start so
		// Duration() reports roughly the exported running duration while the
		// unfinished marker stays visible to renderers.
		s.start = time.Now().Add(-time.Duration(d.DurNS))
	}
	if _, err := fmt.Sscanf(d.SpanID, "%x", &s.id); err != nil {
		s.id = nextSpanID()
	}
	for _, c := range d.Children {
		s.children = append(s.children, c.Rebuild())
	}
	return s
}

// Graft attaches a rebuilt remote subtree as a child of s — the
// coordinator-side completion of a transport round trip. Nil-safe on both
// ends; subject to the same child cap as locally started spans.
func (s *Span) Graft(child *Span) {
	if s == nil || child == nil {
		return
	}
	s.attach(child)
}
