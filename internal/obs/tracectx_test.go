package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestNewTraceIDShape(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if a == b {
		t.Fatal("consecutive trace IDs collide")
	}
	for _, id := range []TraceID{a, b} {
		if len(id) != 16 {
			t.Fatalf("trace ID %q: len %d, want 16 hex chars", id, len(id))
		}
		for _, c := range id {
			if !strings.ContainsRune("0123456789abcdef", c) {
				t.Fatalf("trace ID %q contains non-hex %q", id, c)
			}
		}
	}
	if a[:8] != b[:8] {
		t.Fatalf("same-process IDs %q/%q differ in the process prefix", a, b)
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: "00c0ffee00000001", SpanID: "0000002a"}
	got, err := ParseTraceContext(tc.String())
	if err != nil {
		t.Fatal(err)
	}
	if got != tc {
		t.Fatalf("round trip = %+v, want %+v", got, tc)
	}
	for _, bad := range []string{"", "noseparator", "-leading", "trailing-"} {
		if _, err := ParseTraceContext(bad); err == nil {
			t.Errorf("ParseTraceContext(%q) accepted malformed input", bad)
		}
	}
}

func TestCurrentTraceContext(t *testing.T) {
	if _, ok := CurrentTraceContext(context.Background()); ok {
		t.Fatal("bare context claimed a trace")
	}
	ctx, tr := NewQueryTrace(context.Background(), "q")
	ctx, sp := StartSpan(ctx, "route")
	tc, ok := CurrentTraceContext(ctx)
	if !ok {
		t.Fatal("traced context reported no trace")
	}
	if tc.TraceID != tr.ID || tc.SpanID != sp.SpanID() {
		t.Fatalf("context = %+v, want trace %s span %s", tc, tr.ID, sp.SpanID())
	}
}

// TestTraceIDAdoption covers the three NewQueryTrace identity paths: fresh,
// in-process child (shard coordinator → replica gateway), and remote via a
// propagated TraceContext.
func TestTraceIDAdoption(t *testing.T) {
	// Fresh: no context, new ID, no remote parent.
	_, root := NewQueryTrace(context.Background(), "root")
	if root.ID == "" || root.Root.Attr("remote_parent") != "" {
		t.Fatalf("fresh trace: ID=%q remote_parent=%q", root.ID, root.Root.Attr("remote_parent"))
	}

	// In-process child: a gateway trace started under a coordinator span
	// adopts the ID and attaches as a child span — one tree, one ID.
	ctx, coord := NewQueryTrace(context.Background(), "coordinator")
	ctx, attempt := StartSpan(ctx, "attempt")
	_, child := NewQueryTrace(ctx, "replica")
	if child.ID != coord.ID {
		t.Fatalf("in-process child ID %s != coordinator %s", child.ID, coord.ID)
	}
	kids := attempt.Children()
	if len(kids) != 1 || kids[0] != child.Root {
		t.Fatal("child trace root not attached under the coordinator's attempt span")
	}
	if child.Root.Attr("remote_parent") != "" {
		t.Fatal("in-process child marked remote")
	}

	// Remote: a deserialized TraceContext adopts the ID and records the
	// remote parent span; the tree stays detached until grafted.
	tc := TraceContext{TraceID: coord.ID, SpanID: attempt.SpanID()}
	rctx := WithRemoteContext(context.Background(), tc)
	_, remote := NewQueryTrace(rctx, "remote")
	if remote.ID != coord.ID {
		t.Fatalf("remote trace ID %s != propagated %s", remote.ID, coord.ID)
	}
	if got := remote.Root.Attr("remote_parent"); got != attempt.SpanID() {
		t.Fatalf("remote_parent = %q, want %q", got, attempt.SpanID())
	}
}

// TestMarshalTraceRoundTrip drives the full transport cycle a real network
// boundary would: remote side builds and serializes its trace; coordinator
// deserializes and grafts it under the span that issued the call.
func TestMarshalTraceRoundTrip(t *testing.T) {
	// Coordinator side: trace + the span that "sends" the request.
	ctx, coord := NewQueryTrace(context.Background(), "count customers")
	ctx, attempt := StartSpan(ctx, "attempt")
	tc, ok := CurrentTraceContext(ctx)
	if !ok || tc.SpanID != attempt.SpanID() {
		t.Fatalf("trace context = %+v ok=%v, want the attempt span", tc, ok)
	}

	// Remote side: rebuild the context from the wire form, do traced work.
	parsed, err := ParseTraceContext(tc.String())
	if err != nil {
		t.Fatal(err)
	}
	rctx, remote := NewQueryTrace(WithRemoteContext(context.Background(), parsed), "count customers")
	_, exec := StartSpan(rctx, "execute")
	exec.SetAttr("table", "customers")
	exec.Add("rows", 40)
	exec.End()
	remote.Root.End()

	wire, err := MarshalTrace(remote)
	if err != nil {
		t.Fatal(err)
	}

	// Back on the coordinator: rebuild and graft.
	back, err := UnmarshalTrace(wire)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != coord.ID || back.Question != "count customers" {
		t.Fatalf("rebuilt trace = ID %s question %q", back.ID, back.Question)
	}
	if got := back.Root.Attr("remote_parent"); got != attempt.SpanID() {
		t.Fatalf("rebuilt remote_parent = %q, want %q", got, attempt.SpanID())
	}
	re := back.Find("execute")
	if re == nil {
		t.Fatal("rebuilt tree lost the execute span")
	}
	if re.Attr("table") != "customers" || re.Count("rows") != 40 {
		t.Fatalf("rebuilt span lost data: table=%q rows=%d", re.Attr("table"), re.Count("rows"))
	}
	if re.SpanID() != exec.SpanID() {
		t.Fatalf("rebuilt span ID %s != original %s (remote references would break)", re.SpanID(), exec.SpanID())
	}
	if re.Duration() != exec.Duration() {
		t.Fatalf("rebuilt duration %v != original %v", re.Duration(), exec.Duration())
	}
	attempt.Graft(back.Root)
	attempt.End()
	coord.Root.End()

	// The coordinator's rendered tree now shows the remote work inline.
	rendered := coord.String()
	for _, want := range []string{"attempt", "remote_parent=", "execute", "rows=40"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("grafted render missing %q:\n%s", want, rendered)
		}
	}
	if got := coord.Find("execute"); got == nil {
		t.Fatal("grafted execute span not reachable from the coordinator root")
	}
}

// TestExportLiveSpan: a still-running span exports its running duration and
// rebuilds as visibly unfinished.
func TestExportLiveSpan(t *testing.T) {
	_, tr := NewQueryTrace(context.Background(), "q")
	time.Sleep(2 * time.Millisecond) // give the live root measurable age
	d := tr.Root.Export()
	if d.Ended || d.DurNS <= 0 {
		t.Fatalf("live export = ended %v dur %d", d.Ended, d.DurNS)
	}
	s := d.Rebuild()
	if s.Ended() {
		t.Fatal("rebuilt live span claims to be ended")
	}
	if s.Duration() < time.Duration(d.DurNS) {
		t.Fatalf("rebuilt duration %v went backwards from export %v", s.Duration(), time.Duration(d.DurNS))
	}
}

// TestExportPreservesDropped: the child-cap drop count survives the wire.
func TestExportPreservesDropped(t *testing.T) {
	_, tr := NewQueryTrace(context.Background(), "q")
	for i := 0; i < maxSpanChildren+5; i++ {
		tr.Root.Child("scan").End()
	}
	tr.Root.End()
	wire, err := MarshalTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalTrace(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.DroppedTotal(); got != 5 {
		t.Fatalf("rebuilt DroppedTotal = %d, want 5", got)
	}
	if !strings.Contains(back.String(), "5 more span(s) dropped") {
		t.Fatalf("rebuilt render hides the dropped spans:\n%s", back.String())
	}
}

func TestGraftNilSafe(t *testing.T) {
	var s *Span
	s.Graft(newSpan("x")) // must not panic
	root := newSpan("root")
	root.Graft(nil)
	if len(root.Children()) != 0 {
		t.Fatal("nil graft attached something")
	}
}
