package obs

import (
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// TraceStore retains full query traces for after-the-fact inspection — the
// exemplar side of the observability story. Retention is tail-sampled:
// traces that explain an incident (slow, failed, or partial answers) are
// always kept; healthy fast traces are kept with a small probability so
// the store also holds a baseline to compare against. Memory is bounded by
// a span budget, with baseline samples evicted before incident traces.
// Safe for concurrent use.
type TraceStore struct {
	cfg TraceStoreConfig

	mu       sync.Mutex
	rnd      *rand.Rand
	byID     map[TraceID]*StoredTrace
	order    []TraceID // insertion order, oldest first
	spans    int       // retained span count (the memory-budget proxy)
	offered  int64
	retained int64
	evicted  int64
}

// TraceStoreConfig tunes a TraceStore. The zero value is serviceable:
// keep traces at or over 250ms, sample 1% of the rest, budget 16384
// retained spans.
type TraceStoreConfig struct {
	// SlowThreshold marks a trace always-retained by latency (default
	// 250ms; negative disables the slow rule).
	SlowThreshold time.Duration
	// SampleRate is the retention probability for healthy fast traces
	// (default 0.01; 0 uses the default, negative disables sampling so only
	// incident traces are kept, 1 keeps everything).
	SampleRate float64
	// MaxSpans is the retained-span budget across all stored traces — the
	// memory bound (default 16384). A single trace larger than the whole
	// budget is refused.
	MaxSpans int
	// Seed makes the sampling decisions replayable (default 1).
	Seed int64
	// Now is the clock, injectable for tests (default time.Now).
	Now func() time.Time
}

// StoredTrace is one retained trace plus the outcome facts that made the
// retention decision.
type StoredTrace struct {
	// Trace is the full span tree.
	Trace *QueryTrace
	// Outcome is the query outcome label ("ok", "error", "timeout", …).
	Outcome string
	// Elapsed is the query's total wall time.
	Elapsed time.Duration
	// Partial marks a degraded scatter-gather answer.
	Partial bool
	// Reason says why the trace was kept: "slow", "failed", "partial", or
	// "sampled".
	Reason string
	// Spans is the trace's span count (what it costs against the budget).
	Spans int
	// When is the retention time.
	When time.Time
}

// NewTraceStore builds a store; zero-value config fields get defaults.
func NewTraceStore(cfg TraceStoreConfig) *TraceStore {
	if cfg.SlowThreshold == 0 {
		cfg.SlowThreshold = 250 * time.Millisecond
	}
	if cfg.SampleRate == 0 {
		cfg.SampleRate = 0.01
	}
	if cfg.MaxSpans <= 0 {
		cfg.MaxSpans = 16384
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &TraceStore{
		cfg:  cfg,
		rnd:  rand.New(rand.NewSource(cfg.Seed)),
		byID: map[TraceID]*StoredTrace{},
	}
}

// spanCount sizes a trace against the budget.
func spanCount(s *Span) int {
	if s == nil {
		return 0
	}
	n := 1
	for _, c := range s.Children() {
		n += spanCount(c)
	}
	return n
}

// Offer submits a finished trace for retention and reports whether it was
// kept. outcome is the query's outcome label; failed means any outcome
// other than "ok". Nil-safe: a nil store (tracing without retention)
// drops everything.
func (ts *TraceStore) Offer(t *QueryTrace, outcome string, elapsed time.Duration, partial bool) bool {
	if ts == nil || t == nil || t.Root == nil {
		return false
	}
	reason := ""
	switch {
	case outcome != "ok":
		reason = "failed"
	case partial:
		reason = "partial"
	case ts.cfg.SlowThreshold >= 0 && elapsed >= ts.cfg.SlowThreshold:
		reason = "slow"
	}
	n := spanCount(t.Root)

	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.offered++
	if reason == "" {
		if ts.cfg.SampleRate <= 0 || ts.rnd.Float64() >= ts.cfg.SampleRate {
			return false
		}
		reason = "sampled"
	}
	if n > ts.cfg.MaxSpans {
		return false // one pathological trace must not evict everything else
	}
	// Make room: baseline samples go first (oldest first), then the oldest
	// incident traces — recency wins within a class, incidents win across.
	for ts.spans+n > ts.cfg.MaxSpans {
		if !ts.evictLocked(reason == "sampled") {
			return false
		}
	}
	st := &StoredTrace{
		Trace: t, Outcome: outcome, Elapsed: elapsed, Partial: partial,
		Reason: reason, Spans: n, When: ts.cfg.Now(),
	}
	if old, ok := ts.byID[t.ID]; ok {
		// Same ID offered twice (clock replay in tests): replace in place.
		ts.spans -= old.Spans
		ts.byID[t.ID] = st
		ts.spans += n
		return true
	}
	ts.byID[t.ID] = st
	ts.order = append(ts.order, t.ID)
	ts.spans += n
	ts.retained++
	return true
}

// evictLocked removes one trace: the oldest "sampled" entry when any
// exists, else — unless the incoming trace is itself only a sample —
// the oldest entry outright. Reports whether anything was evicted.
func (ts *TraceStore) evictLocked(incomingSampled bool) bool {
	idx := -1
	for i, id := range ts.order {
		if ts.byID[id].Reason == "sampled" {
			idx = i
			break
		}
	}
	if idx == -1 {
		if incomingSampled || len(ts.order) == 0 {
			return false // a baseline sample never evicts an incident trace
		}
		idx = 0
	}
	id := ts.order[idx]
	ts.spans -= ts.byID[id].Spans
	delete(ts.byID, id)
	ts.order = append(ts.order[:idx], ts.order[idx+1:]...)
	ts.evicted++
	return true
}

// Get returns the retained trace for id.
func (ts *TraceStore) Get(id TraceID) (*StoredTrace, bool) {
	if ts == nil {
		return nil, false
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	st, ok := ts.byID[id]
	return st, ok
}

// List snapshots the retained traces, newest first.
func (ts *TraceStore) List() []*StoredTrace {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	out := make([]*StoredTrace, 0, len(ts.order))
	for i := len(ts.order) - 1; i >= 0; i-- {
		out = append(out, ts.byID[ts.order[i]])
	}
	ts.mu.Unlock()
	return out
}

// TraceStoreStats is the store's bookkeeping snapshot.
type TraceStoreStats struct {
	Retained    int   `json:"retained"`
	Spans       int   `json:"spans"`
	SpanBudget  int   `json:"span_budget"`
	Offered     int64 `json:"offered"`
	EverKept    int64 `json:"ever_kept"`
	EverEvicted int64 `json:"ever_evicted"`
}

// Stats reports retention counters and the budget position.
func (ts *TraceStore) Stats() TraceStoreStats {
	if ts == nil {
		return TraceStoreStats{}
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return TraceStoreStats{
		Retained: len(ts.order), Spans: ts.spans, SpanBudget: ts.cfg.MaxSpans,
		Offered: ts.offered, EverKept: ts.retained, EverEvicted: ts.evicted,
	}
}

// Handler serves the exemplar lookup: GET /trace?id=<traceID> renders the
// retained trace as the same tree -explain prints; GET /trace lists the
// retained IDs with their retention reason, newest first.
func (ts *TraceStore) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		id := TraceID(r.URL.Query().Get("id"))
		if id == "" {
			st := ts.Stats()
			fmt.Fprintf(w, "%d trace(s) retained (%d/%d spans; %d offered, %d kept, %d evicted)\n",
				st.Retained, st.Spans, st.SpanBudget, st.Offered, st.EverKept, st.EverEvicted)
			for _, t := range ts.List() {
				fmt.Fprintf(w, "%s  %-8s %-9s %-10s spans=%-4d %q\n",
					t.Trace.ID, t.Reason, t.Outcome, roundDur(t.Elapsed), t.Spans, t.Trace.Question)
			}
			return
		}
		st, ok := ts.Get(id)
		if !ok {
			http.Error(w, fmt.Sprintf("trace %s not retained (sampled out or evicted)", id), http.StatusNotFound)
			return
		}
		fmt.Fprintf(w, "trace %s  reason=%s outcome=%s elapsed=%s partial=%v\n",
			st.Trace.ID, st.Reason, st.Outcome, roundDur(st.Elapsed), st.Partial)
		if n := st.Trace.DroppedTotal(); n > 0 {
			fmt.Fprintf(w, "WARNING: %d span(s) dropped past the per-span child cap; the tree below is incomplete\n", n)
		}
		fmt.Fprintln(w, st.Trace.String())
	})
}
