package obs

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// storeTrace builds an ended trace with extra child spans (total spans =
// extra + 1 for the root).
func storeTrace(question string, extra int) *QueryTrace {
	_, tr := NewQueryTrace(context.Background(), question)
	for i := 0; i < extra; i++ {
		tr.Root.Child("stage").End()
	}
	tr.Root.End()
	return tr
}

func TestTraceStoreRetentionReasons(t *testing.T) {
	ts := NewTraceStore(TraceStoreConfig{SlowThreshold: 100 * time.Millisecond, SampleRate: -1})
	cases := []struct {
		outcome string
		elapsed time.Duration
		partial bool
		kept    bool
		reason  string
	}{
		{"error", time.Millisecond, false, true, "failed"},
		{"ok", time.Millisecond, true, true, "partial"},
		{"ok", 150 * time.Millisecond, false, true, "slow"},
		{"ok", time.Millisecond, false, false, ""}, // healthy+fast, sampling off
	}
	for _, c := range cases {
		tr := storeTrace("q", 2)
		if got := ts.Offer(tr, c.outcome, c.elapsed, c.partial); got != c.kept {
			t.Fatalf("Offer(outcome=%s elapsed=%v partial=%v) kept=%v, want %v", c.outcome, c.elapsed, c.partial, got, c.kept)
		}
		if !c.kept {
			continue
		}
		st, ok := ts.Get(tr.ID)
		if !ok || st.Reason != c.reason {
			t.Fatalf("retained reason = %v (found %v), want %s", st, ok, c.reason)
		}
		if st.Spans != 3 {
			t.Fatalf("stored span count = %d, want 3", st.Spans)
		}
	}
}

func TestTraceStoreSampling(t *testing.T) {
	// SampleRate 1 keeps every healthy trace as a baseline sample.
	all := NewTraceStore(TraceStoreConfig{SampleRate: 1})
	tr := storeTrace("q", 0)
	if !all.Offer(tr, "ok", time.Millisecond, false) {
		t.Fatal("SampleRate 1 dropped a healthy trace")
	}
	if st, _ := all.Get(tr.ID); st.Reason != "sampled" {
		t.Fatalf("reason = %s, want sampled", st.Reason)
	}

	// The default 1% rate with a fixed seed is deterministic: two stores
	// with the same seed make identical decisions.
	a := NewTraceStore(TraceStoreConfig{Seed: 7})
	b := NewTraceStore(TraceStoreConfig{Seed: 7})
	var mismatch bool
	for i := 0; i < 500; i++ {
		ka := a.Offer(storeTrace("q", 0), "ok", time.Millisecond, false)
		kb := b.Offer(storeTrace("q", 0), "ok", time.Millisecond, false)
		if ka != kb {
			mismatch = true
		}
	}
	if mismatch {
		t.Fatal("same-seed stores made different sampling decisions")
	}
	if a.Stats().EverKept == 0 {
		t.Fatal("500 offers at 1% kept nothing; sampler looks broken")
	}
	if a.Stats().EverKept > 100 {
		t.Fatalf("500 offers at 1%% kept %d; sampler ignores the rate", a.Stats().EverKept)
	}
}

func TestTraceStoreEvictionOrder(t *testing.T) {
	// Budget of 6 spans; every trace costs 2 (root + 1 child).
	ts := NewTraceStore(TraceStoreConfig{MaxSpans: 6, SampleRate: 1, SlowThreshold: -1})
	sample1 := storeTrace("s1", 1)
	sample2 := storeTrace("s2", 1)
	incident := storeTrace("i1", 1)
	for _, tr := range []*QueryTrace{sample1, sample2} {
		if !ts.Offer(tr, "ok", time.Millisecond, false) {
			t.Fatal("setup offer dropped")
		}
	}
	if !ts.Offer(incident, "error", time.Millisecond, false) {
		t.Fatal("incident offer dropped")
	}
	// Store is full (3 traces x 2 spans). A new incident must evict the
	// OLDEST SAMPLE, not the retained incident or the newer sample... and
	// actually the oldest sample specifically.
	incident2 := storeTrace("i2", 1)
	if !ts.Offer(incident2, "error", time.Millisecond, true) {
		t.Fatal("second incident refused despite evictable samples")
	}
	if _, ok := ts.Get(sample1.ID); ok {
		t.Fatal("oldest sample survived eviction")
	}
	for _, tr := range []*QueryTrace{sample2, incident, incident2} {
		if _, ok := ts.Get(tr.ID); !ok {
			t.Fatalf("trace %s missing after eviction; wrong victim chosen", tr.ID)
		}
	}

	// Fill the store with incidents only; a new baseline sample must be
	// refused rather than evict incident evidence.
	incident3 := storeTrace("i3", 1)
	if !ts.Offer(incident3, "timeout", time.Millisecond, false) {
		t.Fatal("third incident refused")
	}
	// Now: sample2, incident, incident2 were retained; incident3 evicted
	// sample2 (the only remaining sample). Store = 3 incidents.
	if _, ok := ts.Get(sample2.ID); ok {
		t.Fatal("sample2 should have been evicted for incident3")
	}
	lateSample := storeTrace("s3", 1)
	if ts.Offer(lateSample, "ok", time.Millisecond, false) {
		t.Fatal("a baseline sample evicted an incident trace")
	}
	st := ts.Stats()
	if st.Retained != 3 || st.Spans != 6 {
		t.Fatalf("stats = %+v, want 3 traces / 6 spans", st)
	}
}

func TestTraceStoreOversizedRefused(t *testing.T) {
	ts := NewTraceStore(TraceStoreConfig{MaxSpans: 4, SampleRate: 1})
	small := storeTrace("small", 1)
	if !ts.Offer(small, "error", time.Millisecond, false) {
		t.Fatal("small trace refused")
	}
	big := storeTrace("big", 10) // 11 spans > whole budget
	if ts.Offer(big, "error", time.Millisecond, false) {
		t.Fatal("oversized trace accepted")
	}
	if _, ok := ts.Get(small.ID); !ok {
		t.Fatal("oversized offer evicted the retained trace before being refused")
	}
}

func TestTraceStoreHandler(t *testing.T) {
	ts := NewTraceStore(TraceStoreConfig{SampleRate: -1})
	tr := storeTrace("how many customers", 1)
	ts.Offer(tr, "error", 42*time.Millisecond, false)

	get := func(target string) *httptest.ResponseRecorder {
		rr := httptest.NewRecorder()
		ts.Handler().ServeHTTP(rr, httptest.NewRequest("GET", target, nil))
		return rr
	}
	list := get("/trace")
	if !strings.Contains(list.Body.String(), string(tr.ID)) || !strings.Contains(list.Body.String(), "failed") {
		t.Fatalf("trace list missing entry:\n%s", list.Body.String())
	}
	one := get("/trace?id=" + string(tr.ID))
	body := one.Body.String()
	for _, want := range []string{"reason=failed", `query "how many customers"`, "stage"} {
		if !strings.Contains(body, want) {
			t.Errorf("trace render missing %q:\n%s", want, body)
		}
	}
	if miss := get("/trace?id=ffffffff00000000"); miss.Code != 404 {
		t.Fatalf("unknown trace id returned %d, want 404", miss.Code)
	}
}

func TestTraceStoreNilSafe(t *testing.T) {
	var ts *TraceStore
	if ts.Offer(storeTrace("q", 0), "error", time.Second, false) {
		t.Fatal("nil store kept a trace")
	}
	if _, ok := ts.Get("x"); ok {
		t.Fatal("nil store found a trace")
	}
	if ts.List() != nil || ts.Stats() != (TraceStoreStats{}) {
		t.Fatal("nil store not empty")
	}
}
