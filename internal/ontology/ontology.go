// Package ontology models a domain ontology over a relational database:
// concepts (entity types), data properties (attributes), and relationships
// (object properties), each carrying natural-language synonyms. It
// reproduces the ATHENA design point — an ontology as the abstraction
// between natural language and the physical schema — including automatic
// ontology generation from database metadata (Jammi et al. 2018) and
// manual enrichment with domain vocabulary.
package ontology

import (
	"fmt"
	"sort"
	"strings"

	"nlidb/internal/nlp"
	"nlidb/internal/sqldata"
)

// Property is a data property of a concept, mapped to a table column.
type Property struct {
	// Name is the ontology-level property name ("annual income").
	Name string
	// Column is the mapped physical column.
	Column string
	// Type is the column's data type.
	Type sqldata.Type
	// Synonyms are extra NL aliases.
	Synonyms []string
	// Identifying marks the property used to refer to instances by name
	// (e.g. customer.name); superlative and lookup questions use it.
	Identifying bool
}

// Concept is an entity type, mapped to a table.
type Concept struct {
	// Name is the ontology-level concept name ("customer").
	Name string
	// Table is the mapped physical table.
	Table string
	// Parent optionally names a super-concept (inheritance).
	Parent string
	// Synonyms are extra NL aliases.
	Synonyms []string
	// Properties in declaration order.
	Properties []Property
}

// Property returns the named property, matching the ontology name, the
// column name, or a synonym (case-insensitive, stemmed); nil if absent.
func (c *Concept) Property(name string) *Property {
	n := nlp.Stem(strings.ToLower(name))
	for i := range c.Properties {
		p := &c.Properties[i]
		if nlp.Stem(strings.ToLower(p.Name)) == n || nlp.Stem(strings.ToLower(p.Column)) == n {
			return p
		}
		for _, s := range p.Synonyms {
			if nlp.Stem(strings.ToLower(s)) == n {
				return p
			}
		}
	}
	return nil
}

// IdentifyingProperty returns the property marked Identifying, or the
// first TEXT property, or nil.
func (c *Concept) IdentifyingProperty() *Property {
	for i := range c.Properties {
		if c.Properties[i].Identifying {
			return &c.Properties[i]
		}
	}
	for i := range c.Properties {
		if c.Properties[i].Type == sqldata.TypeText {
			return &c.Properties[i]
		}
	}
	return nil
}

// Relationship is an object property between two concepts, realized by a
// foreign key.
type Relationship struct {
	// Name is a verb-ish label ("placed", "works in").
	Name string
	// From and To are concept names; the FK lives on From's table.
	From, To string
	// FromColumn and ToColumn are the joined columns.
	FromColumn, ToColumn string
	// Synonyms are extra NL aliases for the relationship verb.
	Synonyms []string
}

// Ontology is the full domain model.
type Ontology struct {
	// Name labels the domain.
	Name          string
	concepts      map[string]*Concept
	order         []string
	Relationships []Relationship
}

// New returns an empty ontology.
func New(name string) *Ontology {
	return &Ontology{Name: name, concepts: make(map[string]*Concept)}
}

// AddConcept registers a concept; the name must be unique.
func (o *Ontology) AddConcept(c *Concept) error {
	key := strings.ToLower(c.Name)
	if _, dup := o.concepts[key]; dup {
		return fmt.Errorf("ontology: duplicate concept %q", c.Name)
	}
	o.concepts[key] = c
	o.order = append(o.order, key)
	return nil
}

// Concept returns the named concept (by name or synonym, stem-insensitive),
// or nil.
func (o *Ontology) Concept(name string) *Concept {
	if c, ok := o.concepts[strings.ToLower(name)]; ok {
		return c
	}
	n := nlp.Stem(strings.ToLower(name))
	for _, key := range o.order {
		c := o.concepts[key]
		if nlp.Stem(key) == n {
			return c
		}
		for _, s := range c.Synonyms {
			if nlp.Stem(strings.ToLower(s)) == n {
				return c
			}
		}
	}
	return nil
}

// ConceptForTable returns the concept mapped to the given table, or nil.
func (o *Ontology) ConceptForTable(table string) *Concept {
	lt := strings.ToLower(table)
	for _, key := range o.order {
		if strings.ToLower(o.concepts[key].Table) == lt {
			return o.concepts[key]
		}
	}
	return nil
}

// Concepts lists concepts in registration order.
func (o *Ontology) Concepts() []*Concept {
	out := make([]*Concept, 0, len(o.order))
	for _, k := range o.order {
		out = append(out, o.concepts[k])
	}
	return out
}

// Ancestors returns the inheritance chain of a concept, nearest first.
func (o *Ontology) Ancestors(name string) []*Concept {
	var out []*Concept
	seen := map[string]bool{strings.ToLower(name): true}
	c := o.Concept(name)
	for c != nil && c.Parent != "" {
		p := strings.ToLower(c.Parent)
		if seen[p] {
			break // defensive: cycles in hand-built ontologies
		}
		seen[p] = true
		c = o.Concept(c.Parent)
		if c != nil {
			out = append(out, c)
		}
	}
	return out
}

// RelationshipsOf returns relationships touching the concept, sorted.
func (o *Ontology) RelationshipsOf(name string) []Relationship {
	n := strings.ToLower(name)
	var out []Relationship
	for _, r := range o.Relationships {
		if strings.ToLower(r.From) == n || strings.ToLower(r.To) == n {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Validate checks referential integrity of parents and relationships.
func (o *Ontology) Validate() error {
	for _, c := range o.Concepts() {
		if c.Parent != "" && o.Concept(c.Parent) == nil {
			return fmt.Errorf("ontology: concept %q has unknown parent %q", c.Name, c.Parent)
		}
		if c.Table == "" {
			return fmt.Errorf("ontology: concept %q has no table mapping", c.Name)
		}
	}
	for _, r := range o.Relationships {
		if o.Concept(r.From) == nil || o.Concept(r.To) == nil {
			return fmt.Errorf("ontology: relationship %q links unknown concepts %q→%q", r.Name, r.From, r.To)
		}
	}
	return nil
}

// FromDatabase auto-generates an ontology from database metadata: one
// concept per table (named by the normalized table name), one data
// property per non-foreign-key column, and one relationship per foreign
// key. Declared schema synonyms carry over. This reproduces the automatic
// ontology-generation tooling of the ATHENA line of work.
func FromDatabase(db *sqldata.Database) *Ontology {
	o := New(db.Name)
	fkCols := map[string]map[string]bool{}
	for _, t := range db.Tables() {
		m := map[string]bool{}
		for _, fk := range t.Schema.ForeignKeys {
			m[strings.ToLower(fk.Column)] = true
		}
		fkCols[strings.ToLower(t.Schema.Name)] = m
	}
	for _, t := range db.Tables() {
		s := t.Schema
		c := &Concept{
			Name:     nlp.NormalizeIdent(s.Name),
			Table:    s.Name,
			Synonyms: append([]string(nil), s.Synonyms...),
		}
		for _, col := range s.Columns {
			if fkCols[strings.ToLower(s.Name)][strings.ToLower(col.Name)] {
				continue // foreign keys become relationships, not properties
			}
			p := Property{
				Name:     nlp.NormalizeIdent(col.Name),
				Column:   col.Name,
				Type:     col.Type,
				Synonyms: append([]string(nil), col.Synonyms...),
			}
			if strings.EqualFold(col.Name, "name") || strings.EqualFold(col.Name, "title") {
				p.Identifying = true
			}
			c.Properties = append(c.Properties, p)
		}
		// The auto-generated ontology keeps primary keys as properties so
		// COUNT and lookups by id still work.
		if err := o.AddConcept(c); err != nil {
			continue // duplicate normalized names: keep first
		}
	}
	for _, t := range db.Tables() {
		s := t.Schema
		from := o.ConceptForTable(s.Name)
		if from == nil {
			continue
		}
		for _, fk := range s.ForeignKeys {
			to := o.ConceptForTable(fk.RefTable)
			if to == nil {
				continue
			}
			o.Relationships = append(o.Relationships, Relationship{
				Name:       "has " + to.Name,
				From:       from.Name,
				To:         to.Name,
				FromColumn: fk.Column,
				ToColumn:   fk.RefColumn,
			})
		}
	}
	return o
}
