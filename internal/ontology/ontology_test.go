package ontology

import (
	"testing"

	"nlidb/internal/sqldata"
)

func shopDB(t testing.TB) *sqldata.Database {
	t.Helper()
	db := sqldata.NewDatabase("shop")
	if _, err := db.CreateTable(&sqldata.Schema{
		Name: "customer",
		Columns: []sqldata.Column{
			{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
			{Name: "name", Type: sqldata.TypeText},
			{Name: "annual_income", Type: sqldata.TypeFloat, Synonyms: []string{"salary"}},
		},
		Synonyms: []string{"client"},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable(&sqldata.Schema{
		Name: "orders",
		Columns: []sqldata.Column{
			{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
			{Name: "customer_id", Type: sqldata.TypeInt},
			{Name: "total", Type: sqldata.TypeFloat},
		},
		ForeignKeys: []sqldata.ForeignKey{{Column: "customer_id", RefTable: "customer", RefColumn: "id"}},
	}); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestFromDatabase(t *testing.T) {
	o := FromDatabase(shopDB(t))
	if err := o.Validate(); err != nil {
		t.Fatalf("auto ontology invalid: %v", err)
	}
	c := o.Concept("customer")
	if c == nil {
		t.Fatal("customer concept missing")
	}
	if c.Property("annual income") == nil {
		t.Error("normalized property name missing")
	}
	if c.Property("salary") == nil {
		t.Error("column synonym not carried over")
	}
	// FK column must not be a property of orders.
	oc := o.Concept("orders")
	if oc == nil {
		t.Fatal("orders concept missing")
	}
	if oc.Property("customer_id") != nil {
		t.Error("FK column leaked into properties")
	}
	// One relationship from the FK.
	rels := o.RelationshipsOf("customer")
	if len(rels) != 1 || rels[0].From != "orders" {
		t.Errorf("relationships = %+v", rels)
	}
}

func TestConceptLookupBySynonymAndStem(t *testing.T) {
	o := FromDatabase(shopDB(t))
	if o.Concept("clients") == nil {
		t.Error("synonym+stem lookup failed")
	}
	if o.Concept("customers") == nil {
		t.Error("stem lookup failed")
	}
	if o.Concept("nonexistent") != nil {
		t.Error("phantom concept")
	}
}

func TestIdentifyingProperty(t *testing.T) {
	o := FromDatabase(shopDB(t))
	p := o.Concept("customer").IdentifyingProperty()
	if p == nil || p.Column != "name" {
		t.Errorf("identifying = %+v", p)
	}
	// orders has no TEXT column and no Identifying flag → nil.
	if got := o.Concept("orders").IdentifyingProperty(); got != nil {
		t.Errorf("orders identifying = %+v", got)
	}
}

func TestAncestorsAndValidate(t *testing.T) {
	o := New("test")
	if err := o.AddConcept(&Concept{Name: "person", Table: "person"}); err != nil {
		t.Fatal(err)
	}
	if err := o.AddConcept(&Concept{Name: "employee", Table: "employee", Parent: "person"}); err != nil {
		t.Fatal(err)
	}
	if err := o.AddConcept(&Concept{Name: "manager", Table: "manager", Parent: "employee"}); err != nil {
		t.Fatal(err)
	}
	anc := o.Ancestors("manager")
	if len(anc) != 2 || anc[0].Name != "employee" || anc[1].Name != "person" {
		t.Errorf("ancestors = %+v", anc)
	}
	if err := o.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if err := o.AddConcept(&Concept{Name: "orphan", Table: "t", Parent: "ghost"}); err != nil {
		t.Fatal(err)
	}
	if err := o.Validate(); err == nil {
		t.Error("unknown parent accepted")
	}
}

func TestAncestorCycleGuard(t *testing.T) {
	o := New("cyc")
	_ = o.AddConcept(&Concept{Name: "a", Table: "a", Parent: "b"})
	_ = o.AddConcept(&Concept{Name: "b", Table: "b", Parent: "a"})
	anc := o.Ancestors("a") // must terminate
	if len(anc) > 2 {
		t.Errorf("cycle not guarded: %d ancestors", len(anc))
	}
}

func TestDuplicateConcept(t *testing.T) {
	o := New("d")
	if err := o.AddConcept(&Concept{Name: "x", Table: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := o.AddConcept(&Concept{Name: "X", Table: "y"}); err == nil {
		t.Error("duplicate concept accepted")
	}
}
