// Package parsenl implements a NaLIR-style interpreter: a linguistic
// analysis of the question (token types, cue phrases, entity spans) is
// mapped onto the schema, join paths between the mapped tables are
// inferred through the schema graph, and ambiguous mappings surface as
// user clarifications. Its ceiling is the tutorial's class 3: joins and
// aggregation, but no nested sub-queries.
package parsenl

import (
	"fmt"
	"sort"
	"strings"

	"nlidb/internal/invindex"
	"nlidb/internal/lexicon"
	"nlidb/internal/nlp"
	"nlidb/internal/nlq"
	"nlidb/internal/schemagraph"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlparse"
)

// Interpreter is a parse-tree-plus-schema-graph NLIDB over one database.
type Interpreter struct {
	db    *sqldata.Database
	ix    *invindex.Index
	graph *schemagraph.Graph
	opts  invindex.LookupOptions
}

// New builds the interpreter.
func New(db *sqldata.Database, lex *lexicon.Lexicon) *Interpreter {
	return &Interpreter{
		db:    db,
		ix:    invindex.Build(db, lex),
		graph: schemagraph.Build(db),
		opts:  invindex.DefaultOptions(),
	}
}

// Graph exposes the schema graph so callers can install query-log priors
// (TEMPLAR-style) before interpreting.
func (p *Interpreter) Graph() *schemagraph.Graph { return p.graph }

// Name implements nlq.Interpreter.
func (p *Interpreter) Name() string { return "parse" }

// binding is one resolved reading of the question's mappings.
type binding struct {
	values  []invindex.Match // value filters
	expl    []string
	penalty float64
}

// Interpret maps the question onto tables, infers joins, and emits ranked
// candidates; ambiguous value mappings yield alternative readings with a
// clarification question.
func (p *Interpreter) Interpret(question string) ([]nlq.Interpretation, error) {
	a := nlq.Analyze(question, p.ix, p.opts)
	if len(a.Spans) == 0 && len(a.Comparisons) == 0 {
		return nil, fmt.Errorf("%w: nothing in the question maps to the schema", nlq.ErrNoInterpretation)
	}

	anchor, anchorPos := p.pickAnchor(a)
	if anchor == "" {
		return nil, fmt.Errorf("%w: no focus table", nlq.ErrNoInterpretation)
	}

	bindings := p.enumerateBindings(a)
	var out []nlq.Interpretation
	for bi, b := range bindings {
		if bi >= 3 {
			break
		}
		in, err := p.build(a, anchor, anchorPos, b)
		if err != nil {
			continue
		}
		in.Score -= b.penalty
		if in.Score < 0.05 {
			in.Score = 0.05
		}
		if len(bindings) > 1 {
			in.Clarification = clarify(bindings)
		}
		// Structurally ambiguous joins (parallel foreign keys) expand into
		// alternative readings with a clarification of their own.
		out = append(out, p.expandJoinAlternatives(*in)...)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: no mapping produced an executable query", nlq.ErrNoInterpretation)
	}
	return out, nil
}

// expandJoinAlternatives duplicates an interpretation once per alternative
// parallel foreign-key edge of its first ambiguous join (e.g. a fact table
// referencing the same dimension through origin and destination columns).
func (p *Interpreter) expandJoinAlternatives(in nlq.Interpretation) []nlq.Interpretation {
	out := []nlq.Interpretation{in}
	if in.SQL == nil || in.SQL.From == nil {
		return out
	}
	for ji, j := range in.SQL.From.Joins {
		be, ok := j.On.(*sqlparse.BinaryExpr)
		if !ok || be.Op != "=" {
			continue
		}
		l, lok := be.L.(*sqlparse.ColumnRef)
		r, rok := be.R.(*sqlparse.ColumnRef)
		if !lok || !rok {
			continue
		}
		alts := p.graph.ParallelEdges(l.Table, r.Table)
		if len(alts) <= 1 {
			continue
		}
		var options []string
		options = append(options, be.String())
		for _, e := range alts {
			if strings.EqualFold(e.FromCol, l.Column) && strings.EqualFold(e.ToCol, r.Column) {
				continue
			}
			clone := sqlparse.MustParse(in.SQL.String())
			clone.From.Joins[ji].On = &sqlparse.BinaryExpr{
				Op: "=",
				L:  &sqlparse.ColumnRef{Table: e.From, Column: e.FromCol},
				R:  &sqlparse.ColumnRef{Table: e.To, Column: e.ToCol},
			}
			options = append(options, clone.From.Joins[ji].On.String())
			out = append(out, nlq.Interpretation{
				SQL:         clone,
				Score:       in.Score * 0.95,
				Explanation: in.Explanation + "; alternative join " + e.String(),
			})
			if len(out) >= 3 {
				break
			}
		}
		if len(out) > 1 {
			c := &nlq.Clarification{Question: "Which relationship did you mean?", Options: options}
			for i := range out {
				out[i].Clarification = c
			}
		}
		break
	}
	return out
}

// clarify renders the NaLIR-style multiple-choice question over the
// candidate value bindings.
func clarify(bindings []binding) *nlq.Clarification {
	c := &nlq.Clarification{Question: "Which reading did you mean?"}
	for i, b := range bindings {
		if i >= 3 {
			break
		}
		var parts []string
		for _, v := range b.values {
			parts = append(parts, fmt.Sprintf("%q as %s.%s", v.Value, v.Table, v.Column))
		}
		c.Options = append(c.Options, strings.Join(parts, ", "))
	}
	return c
}

// enumerateBindings expands ambiguous value matches into alternative
// bindings, best combination first.
func (p *Interpreter) enumerateBindings(a *nlq.Analysis) []binding {
	base := binding{}
	alts := []binding{base}
	for _, sp := range a.Spans {
		if sp.Best().Kind != invindex.KindValue {
			continue
		}
		// Candidate value readings of this span, close in score.
		var cands []invindex.Match
		for _, m := range sp.Matches {
			if m.Kind == invindex.KindValue && m.Score >= sp.Best().Score*0.92 {
				cands = append(cands, m)
			}
			if len(cands) == 3 {
				break
			}
		}
		var next []binding
		for _, b := range alts {
			for ci, c := range cands {
				nb := binding{
					values:  append(append([]invindex.Match(nil), b.values...), c),
					penalty: b.penalty + float64(ci)*0.1,
				}
				nb.expl = append(append([]string(nil), b.expl...),
					fmt.Sprintf("%q → %s.%s (%.2f)", sp.Text, c.Table, c.Column, c.Score))
				next = append(next, nb)
				if len(next) >= 6 {
					break
				}
			}
			if len(next) >= 6 {
				break
			}
		}
		if len(next) > 0 {
			alts = next
		}
	}
	sort.SliceStable(alts, func(i, j int) bool { return alts[i].penalty < alts[j].penalty })
	return alts
}

// pickAnchor chooses the focus table: the first table-kind span, else the
// table of the first column match, else of the first value match.
func (p *Interpreter) pickAnchor(a *nlq.Analysis) (string, int) {
	for _, sp := range a.Spans {
		if sp.Best().Kind == invindex.KindTable {
			return strings.ToLower(sp.Best().Table), sp.Start
		}
	}
	for _, sp := range a.Spans {
		if sp.Best().Kind == invindex.KindColumn {
			return strings.ToLower(sp.Best().Table), -1
		}
	}
	for _, sp := range a.Spans {
		return strings.ToLower(sp.Best().Table), -1
	}
	return "", -1
}

// build assembles one interpretation from a binding.
func (p *Interpreter) build(a *nlq.Analysis, anchor string, anchorPos int, b binding) (*nlq.Interpretation, error) {
	required := map[string]bool{anchor: true}
	expl := append([]string{fmt.Sprintf("focus %s", anchor)}, b.expl...)

	// Column matches anywhere in the schema.
	var projCols []colRef
	filterCols := map[string]bool{}

	var where []sqlparse.Expr
	for _, v := range b.values {
		required[strings.ToLower(v.Table)] = true
		filterCols[strings.ToLower(v.Table)+"."+strings.ToLower(v.Column)] = true
		where = append(where, &sqlparse.BinaryExpr{
			Op: "=",
			L:  &sqlparse.ColumnRef{Table: strings.ToLower(v.Table), Column: strings.ToLower(v.Column)},
			R:  &sqlparse.Literal{Val: sqldata.NewText(v.Value)},
		})
	}

	for _, cmp := range a.Comparisons {
		t, c := p.resolveColumnAnyTable(cmp.ColumnHint, anchor, required)
		if c == "" {
			t, c = anchor, firstNumericColumn(p.db.Table(anchor).Schema)
		}
		if c == "" {
			continue
		}
		required[t] = true
		filterCols[t+"."+c] = true
		where = append(where, &sqlparse.BinaryExpr{
			Op: cmp.Op,
			L:  &sqlparse.ColumnRef{Table: t, Column: c},
			R:  &sqlparse.Literal{Val: numLiteral(cmp.Value)},
		})
		expl = append(expl, fmt.Sprintf("comparison %s.%s %s %v", t, c, cmp.Op, cmp.Value))
	}

	for _, sp := range a.Spans {
		m := sp.Best()
		if m.Kind == invindex.KindColumn {
			lt, lc := strings.ToLower(m.Table), strings.ToLower(m.Column)
			if !filterCols[lt+"."+lc] {
				projCols = append(projCols, colRef{lt, lc})
				required[lt] = true
			}
		}
	}

	// Superlative disambiguation, as in the pattern family.
	topk := a.TopK
	aggCues := a.AggCues
	if topk != nil {
		word := a.Tokens[topk.TokenPos].Lower
		explicitTop := word == "top" || word == "bottom" || word == "first" || word == "last"
		if !explicitTop && (anchorPos < 0 || anchorPos > topk.TokenPos) {
			f := "MAX"
			if !topk.Desc {
				f = "MIN"
			}
			aggCues = append(aggCues, nlq.AggCue{Func: f, TokenPos: topk.TokenPos})
			topk = nil
		} else if !explicitTop {
			topk.K = leadingK(a, topk.TokenPos)
		}
	}

	// Grouping (may group by a column on a joined table).
	var groupCols []colRef
	for _, g := range a.GroupCues {
		if topk != nil && g.TokenPos > topk.TokenPos {
			continue
		}
		if t, c := p.columnAtTokenAnyTable(a, g.TokenPos, anchor, required); c != "" {
			groupCols = append(groupCols, colRef{t, c})
			required[t] = true
		}
	}

	// Ordering column.
	var orderRef *colRef
	if topk != nil {
		if t, c := p.columnAtTokenAnyTable(a, topk.TokenPos+1, anchor, required); c != "" {
			orderRef = &colRef{t, c}
		} else {
			for _, g := range a.GroupCues {
				if g.TokenPos > topk.TokenPos {
					if t, c := p.columnAtTokenAnyTable(a, g.TokenPos, anchor, required); c != "" {
						orderRef = &colRef{t, c}
						break
					}
				}
			}
		}
		if orderRef == nil {
			if t, c := p.resolveColumnAnyTable(a.Tokens[topk.TokenPos].Lower, anchor, required); c != "" {
				orderRef = &colRef{t, c}
			}
		}
		if orderRef == nil {
			if c := firstNumericColumn(p.db.Table(anchor).Schema); c != "" {
				orderRef = &colRef{anchor, c}
			}
		}
		if orderRef != nil {
			required[orderRef.table] = true
		}
	}

	// FROM with inferred joins.
	tables := make([]string, 0, len(required))
	for t := range required {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	from, err := p.graph.BuildFrom(tables)
	if err != nil {
		return nil, err
	}

	stmt := sqlparse.NewSelect()
	stmt.From = from
	stmt.Where = conjoin(where)

	qualify := len(from.Tables()) > 1

	mkCol := func(r colRef) *sqlparse.ColumnRef {
		if qualify {
			return &sqlparse.ColumnRef{Table: r.table, Column: r.column}
		}
		return &sqlparse.ColumnRef{Column: r.column}
	}

	switch {
	case len(aggCues) > 0:
		for _, gc := range groupCols {
			stmt.Items = append(stmt.Items, sqlparse.SelectItem{Expr: mkCol(gc)})
			stmt.GroupBy = append(stmt.GroupBy, mkCol(gc))
		}
		for _, cue := range aggCues {
			target := p.aggTargetAnyTable(a, cue, anchor, required, filterCols)
			var e sqlparse.Expr
			if cue.Func == "COUNT" && target == nil {
				e = &sqlparse.FuncCall{Name: "COUNT", Star: true}
			} else {
				if target == nil {
					if c := firstNumericColumn(p.db.Table(anchor).Schema); c != "" {
						target = &colRef{anchor, c}
					}
				}
				if target == nil {
					continue
				}
				e = &sqlparse.FuncCall{Name: cue.Func, Args: []sqlparse.Expr{mkCol(*target)}}
			}
			stmt.Items = append(stmt.Items, sqlparse.SelectItem{Expr: e})
			expl = append(expl, fmt.Sprintf("aggregate %s", cue.Func))
		}
	default:
		seen := map[string]bool{}
		for _, c := range projCols {
			if orderRef != nil && c == *orderRef {
				continue
			}
			k := c.table + "." + c.column
			if seen[k] {
				continue
			}
			seen[k] = true
			stmt.Items = append(stmt.Items, sqlparse.SelectItem{Expr: mkCol(c)})
		}
		if len(stmt.Items) == 0 {
			if c := firstTextColumn(p.db.Table(anchor).Schema); c != "" {
				stmt.Items = []sqlparse.SelectItem{{Expr: mkCol(colRef{anchor, c})}}
			} else if qualify {
				stmt.Items = []sqlparse.SelectItem{{Star: true, StarTable: anchor}}
			} else {
				stmt.Items = []sqlparse.SelectItem{{Star: true}}
			}
		}
	}

	if topk != nil && orderRef != nil {
		stmt.OrderBy = append(stmt.OrderBy, sqlparse.OrderItem{Expr: mkCol(*orderRef), Desc: topk.Desc})
		stmt.Limit = topk.K
	}

	if len(stmt.Items) == 0 {
		return nil, fmt.Errorf("no projection")
	}

	// Score: coverage of content words by used evidence.
	content, covered := 0, 0
	for _, t := range a.Tokens {
		if t.Kind == nlp.KindWord && !t.IsStop() {
			content++
		}
	}
	for _, sp := range a.Spans {
		covered += sp.End - sp.Start
	}
	score := 0.6
	if content > 0 {
		c := float64(covered) / float64(content)
		if c > 1 {
			c = 1
		}
		score = 0.4 + 0.6*c
	}
	return &nlq.Interpretation{SQL: stmt, Score: score, Explanation: strings.Join(expl, "; ")}, nil
}

// resolveColumnAnyTable resolves a word to a column, preferring the anchor
// table, then already-required tables, then any table.
func (p *Interpreter) resolveColumnAnyTable(word, anchor string, required map[string]bool) (string, string) {
	if word == "" {
		return "", ""
	}
	opts := p.opts
	opts.KindFilter = []invindex.Kind{invindex.KindColumn}
	ms := p.ix.Lookup(word, opts)
	if len(ms) == 0 {
		return "", ""
	}
	for _, m := range ms {
		if strings.EqualFold(m.Table, anchor) {
			return strings.ToLower(m.Table), strings.ToLower(m.Column)
		}
	}
	for _, m := range ms {
		if required[strings.ToLower(m.Table)] {
			return strings.ToLower(m.Table), strings.ToLower(m.Column)
		}
	}
	m := ms[0]
	return strings.ToLower(m.Table), strings.ToLower(m.Column)
}

// columnAtTokenAnyTable resolves the token at pos to a column.
func (p *Interpreter) columnAtTokenAnyTable(a *nlq.Analysis, pos int, anchor string, required map[string]bool) (string, string) {
	if pos < 0 || pos >= len(a.Tokens) {
		return "", ""
	}
	if sp := a.SpanAt(pos); sp != nil {
		for _, m := range sp.Matches {
			if m.Kind == invindex.KindColumn {
				return strings.ToLower(m.Table), strings.ToLower(m.Column)
			}
		}
		// A table mention in a group phrase ("per department") groups by
		// that table's identifying text column.
		for _, m := range sp.Matches {
			if m.Kind == invindex.KindTable {
				if c := firstTextColumn(p.db.Table(m.Table).Schema); c != "" {
					return strings.ToLower(m.Table), c
				}
			}
		}
	}
	return p.resolveColumnAnyTable(a.Tokens[pos].Lower, anchor, required)
}

// colRef is a fully qualified column reference.
type colRef struct{ table, column string }

// aggTargetAnyTable finds the aggregate's target column near the cue.
func (p *Interpreter) aggTargetAnyTable(a *nlq.Analysis, cue nlq.AggCue, anchor string, required map[string]bool, filters map[string]bool) *colRef {
	try := func(pos int) *colRef {
		t, c := p.columnAtTokenAnyTable(a, pos, anchor, required)
		if c != "" && !filters[t+"."+c] {
			return &colRef{t, c}
		}
		return nil
	}
	for i := cue.TokenPos + 1; i < len(a.Tokens) && i <= cue.TokenPos+4; i++ {
		if sp := a.SpanAt(i); sp != nil && sp.Best().Kind == invindex.KindTable {
			continue // "number of employees": the table is COUNT(*), not a column
		}
		if r := try(i); r != nil {
			return r
		}
	}
	for i := cue.TokenPos - 1; i >= 0 && i >= cue.TokenPos-3; i-- {
		if r := try(i); r != nil {
			return r
		}
	}
	return nil
}

func leadingK(a *nlq.Analysis, supPos int) int {
	used := map[int]bool{}
	for _, c := range a.Comparisons {
		used[c.TokenPos] = true
	}
	for i := supPos - 1; i >= 0; i-- {
		t := a.Tokens[i]
		if t.Kind == nlp.KindNumber && !used[i] {
			return int(t.Num)
		}
	}
	return 1
}

func firstNumericColumn(s *sqldata.Schema) string {
	for _, c := range s.Columns {
		if c.Type.Numeric() && !c.PrimaryKey {
			return strings.ToLower(c.Name)
		}
	}
	return ""
}

func firstTextColumn(s *sqldata.Schema) string {
	for _, c := range s.Columns {
		if c.Type == sqldata.TypeText {
			return strings.ToLower(c.Name)
		}
	}
	return ""
}

func numLiteral(v float64) sqldata.Value {
	if v == float64(int64(v)) {
		return sqldata.NewInt(int64(v))
	}
	return sqldata.NewFloat(v)
}

func conjoin(exprs []sqlparse.Expr) sqlparse.Expr {
	var out sqlparse.Expr
	for _, e := range exprs {
		if out == nil {
			out = e
		} else {
			out = &sqlparse.BinaryExpr{Op: "AND", L: out, R: e}
		}
	}
	return out
}
