package parsenl

import (
	"strings"
	"testing"

	"nlidb/internal/lexicon"
	"nlidb/internal/nlq"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlexec"
)

// corpDB: department ← employee, plus project ← assignment → employee.
func corpDB(t testing.TB) *sqldata.Database {
	t.Helper()
	db := sqldata.NewDatabase("corp")
	mk := func(s *sqldata.Schema) *sqldata.Table {
		tbl, err := db.CreateTable(s)
		if err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	dept := mk(&sqldata.Schema{Name: "department", Synonyms: []string{"dept"}, Columns: []sqldata.Column{
		{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
		{Name: "name", Type: sqldata.TypeText},
		{Name: "budget", Type: sqldata.TypeFloat},
	}})
	emp := mk(&sqldata.Schema{Name: "employee", Columns: []sqldata.Column{
		{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
		{Name: "name", Type: sqldata.TypeText},
		{Name: "salary", Type: sqldata.TypeFloat},
		{Name: "dept_id", Type: sqldata.TypeInt},
	}, ForeignKeys: []sqldata.ForeignKey{{Column: "dept_id", RefTable: "department", RefColumn: "id"}}})
	proj := mk(&sqldata.Schema{Name: "project", Columns: []sqldata.Column{
		{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
		{Name: "title", Type: sqldata.TypeText},
	}})
	asg := mk(&sqldata.Schema{Name: "assignment", Columns: []sqldata.Column{
		{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
		{Name: "employee_id", Type: sqldata.TypeInt},
		{Name: "project_id", Type: sqldata.TypeInt},
		{Name: "hours", Type: sqldata.TypeInt},
	}, ForeignKeys: []sqldata.ForeignKey{
		{Column: "employee_id", RefTable: "employee", RefColumn: "id"},
		{Column: "project_id", RefTable: "project", RefColumn: "id"},
	}})

	dept.MustInsert(sqldata.NewInt(1), sqldata.NewText("engineering"), sqldata.NewFloat(900))
	dept.MustInsert(sqldata.NewInt(2), sqldata.NewText("marketing"), sqldata.NewFloat(300))
	emp.MustInsert(sqldata.NewInt(1), sqldata.NewText("ann"), sqldata.NewFloat(120), sqldata.NewInt(1))
	emp.MustInsert(sqldata.NewInt(2), sqldata.NewText("bob"), sqldata.NewFloat(80), sqldata.NewInt(1))
	emp.MustInsert(sqldata.NewInt(3), sqldata.NewText("cyd"), sqldata.NewFloat(60), sqldata.NewInt(2))
	proj.MustInsert(sqldata.NewInt(1), sqldata.NewText("apollo"))
	proj.MustInsert(sqldata.NewInt(2), sqldata.NewText("zephyr"))
	asg.MustInsert(sqldata.NewInt(1), sqldata.NewInt(1), sqldata.NewInt(1), sqldata.NewInt(30))
	asg.MustInsert(sqldata.NewInt(2), sqldata.NewInt(2), sqldata.NewInt(1), sqldata.NewInt(20))
	asg.MustInsert(sqldata.NewInt(3), sqldata.NewInt(3), sqldata.NewInt(2), sqldata.NewInt(10))
	return db
}

func run(t *testing.T, db *sqldata.Database, q string) *sqldata.Result {
	t.Helper()
	in := New(db, lexicon.New())
	ins, err := in.Interpret(q)
	if err != nil {
		t.Fatalf("Interpret(%q): %v", q, err)
	}
	best, _ := nlq.Best(ins)
	t.Logf("%q → %s", q, best.SQL)
	res, err := sqlexec.New(db).Run(best.SQL)
	if err != nil {
		t.Fatalf("exec %s: %v", best.SQL, err)
	}
	return res
}

func TestJoinThroughValueFilter(t *testing.T) {
	db := corpDB(t)
	res := run(t, db, "employees in the engineering department")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestJoinGeneratesJoinSQL(t *testing.T) {
	db := corpDB(t)
	in := New(db, lexicon.New())
	ins, err := in.Interpret("employees in the engineering department")
	if err != nil {
		t.Fatal(err)
	}
	best, _ := nlq.Best(ins)
	if len(best.SQL.From.Joins) == 0 {
		t.Fatalf("no join inferred: %s", best.SQL)
	}
	if nlq.Classify(best.SQL) != nlq.Join {
		t.Fatalf("class = %v", nlq.Classify(best.SQL))
	}
}

func TestTwoHopJoin(t *testing.T) {
	db := corpDB(t)
	// employee—assignment—project path.
	res := run(t, db, "employees on the project apollo")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestAggregationOverJoin(t *testing.T) {
	db := corpDB(t)
	res := run(t, db, "average salary of employees in the engineering department")
	if len(res.Rows) != 1 || res.Rows[0][0].Float() != 100 {
		t.Fatalf("avg = %v", res.Rows)
	}
}

func TestGroupByJoinedTable(t *testing.T) {
	db := corpDB(t)
	res := run(t, db, "count of employees per department")
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %v", res.Rows)
	}
}

func TestSingleTableStillWorks(t *testing.T) {
	db := corpDB(t)
	res := run(t, db, "employees with salary over 100")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestNoNesting(t *testing.T) {
	db := corpDB(t)
	in := New(db, lexicon.New())
	// A question that truly needs nesting; parse family must not nest.
	ins, err := in.Interpret("employees with salary above the average salary")
	if err != nil {
		return // refusing is acceptable for the class-3 family
	}
	for _, i := range ins {
		if len(i.SQL.Subqueries()) != 0 {
			t.Fatalf("parse family nested: %s", i.SQL)
		}
	}
}

func TestClarificationOnAmbiguity(t *testing.T) {
	db := corpDB(t)
	// Add an ambiguous value: a project titled "ann" (same as employee name).
	db.Table("project").MustInsert(sqldata.NewInt(3), sqldata.NewText("ann"))
	in := New(db, lexicon.New())
	ins, err := in.Interpret("show ann")
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) < 2 {
		t.Fatalf("ambiguity not surfaced: %d readings", len(ins))
	}
	if ins[0].Clarification == nil || len(ins[0].Clarification.Options) < 2 {
		t.Fatalf("no clarification: %+v", ins[0])
	}
}

func TestQueryLogPriors(t *testing.T) {
	db := corpDB(t)
	in := New(db, lexicon.New())
	if in.Graph() == nil {
		t.Fatal("graph not exposed")
	}
	// Priors must not break interpretation.
	in.Graph().ApplyQueryLog(nil, 0.5, 0.1)
	if _, err := in.Interpret("employees in the engineering department"); err != nil {
		t.Fatal(err)
	}
}

func TestTopKOverJoin(t *testing.T) {
	db := corpDB(t)
	in := New(db, lexicon.New())
	ins, err := in.Interpret("top 2 employees by salary")
	if err != nil {
		t.Fatal(err)
	}
	best, _ := nlq.Best(ins)
	if best.SQL.Limit != 2 || len(best.SQL.OrderBy) != 1 {
		t.Fatalf("topk = %s", best.SQL)
	}
	res, err := sqlexec.New(db).Run(best.SQL)
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("res = %v, %v", res, err)
	}
}

func TestJoinAlternativesExpand(t *testing.T) {
	// Parallel FKs (hop → airport twice) must yield alternative readings
	// with a relationship clarification.
	db := sqldata.NewDatabase("air")
	mk := func(s *sqldata.Schema) *sqldata.Table {
		tbl, err := db.CreateTable(s)
		if err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	ap := mk(&sqldata.Schema{Name: "airport", Columns: []sqldata.Column{
		{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
		{Name: "name", Type: sqldata.TypeText},
	}})
	hop := mk(&sqldata.Schema{Name: "hop", Columns: []sqldata.Column{
		{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
		{Name: "code", Type: sqldata.TypeText},
		{Name: "origin_id", Type: sqldata.TypeInt},
		{Name: "dest_id", Type: sqldata.TypeInt},
	}, ForeignKeys: []sqldata.ForeignKey{
		{Column: "origin_id", RefTable: "airport", RefColumn: "id"},
		{Column: "dest_id", RefTable: "airport", RefColumn: "id"},
	}})
	ap.MustInsert(sqldata.NewInt(1), sqldata.NewText("tegel"))
	ap.MustInsert(sqldata.NewInt(2), sqldata.NewText("riem"))
	hop.MustInsert(sqldata.NewInt(1), sqldata.NewText("h1"), sqldata.NewInt(1), sqldata.NewInt(2))

	in := New(db, lexicon.New())
	if in.Name() != "parse" {
		t.Errorf("name = %s", in.Name())
	}
	ins, err := in.Interpret("hops of the airport tegel")
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) < 2 {
		t.Fatalf("parallel-FK ambiguity not expanded: %d readings", len(ins))
	}
	if ins[0].Clarification == nil || len(ins[0].Clarification.Options) < 2 {
		t.Fatalf("relationship clarification missing: %+v", ins[0])
	}
	// The two readings must use different join columns.
	a, b := ins[0].SQL.String(), ins[1].SQL.String()
	if a == b {
		t.Fatalf("alternative readings identical: %s", a)
	}
	for _, i := range ins[:2] {
		if _, err := sqlexec.New(db).Run(i.SQL); err != nil {
			t.Errorf("reading fails to execute: %s: %v", i.SQL, err)
		}
	}
}

func TestLeadingKExtraction(t *testing.T) {
	db := corpDB(t)
	in := New(db, lexicon.New())
	ins, err := in.Interpret("3 employees with the highest salary")
	if err != nil {
		t.Fatal(err)
	}
	best, _ := nlq.Best(ins)
	if best.SQL.Limit != 3 {
		t.Fatalf("leading K not extracted: %s", best.SQL)
	}
}

func TestExplanations(t *testing.T) {
	db := corpDB(t)
	in := New(db, lexicon.New())
	ins, err := in.Interpret("employees in the engineering department")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ins[0].Explanation, "focus") {
		t.Errorf("explanation = %q", ins[0].Explanation)
	}
}
