// Package patternnl implements a SQAK-style pattern-based interpreter:
// keyword lookup plus fixed natural-language patterns for aggregation
// ("total", "average", "how many"), grouping ("by X", "per X"), ordering
// ("top N", superlatives), and numeric comparisons ("over 50"). It stays
// on a single table — the class-2 ceiling the tutorial assigns to
// pattern-based systems: aggregation queries, but no joins or nesting.
package patternnl

import (
	"fmt"
	"sort"
	"strings"

	"nlidb/internal/invindex"
	"nlidb/internal/lexicon"
	"nlidb/internal/nlp"
	"nlidb/internal/nlq"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlparse"
)

// Interpreter is a pattern-based NLIDB over one database.
type Interpreter struct {
	db   *sqldata.Database
	ix   *invindex.Index
	opts invindex.LookupOptions
}

// New builds the interpreter.
func New(db *sqldata.Database, lex *lexicon.Lexicon) *Interpreter {
	return &Interpreter{db: db, ix: invindex.Build(db, lex), opts: invindex.DefaultOptions()}
}

// Name implements nlq.Interpreter.
func (p *Interpreter) Name() string { return "pattern" }

// Interpret builds a single-table query with aggregation patterns.
func (p *Interpreter) Interpret(question string) ([]nlq.Interpretation, error) {
	a := nlq.Analyze(question, p.ix, p.opts)
	if len(a.Spans) == 0 && len(a.Comparisons) == 0 {
		return nil, fmt.Errorf("%w: no pattern or keyword evidence", nlq.ErrNoInterpretation)
	}

	anchor, anchorPos, score := p.pickAnchor(a)
	if anchor == "" {
		return nil, fmt.Errorf("%w: could not determine the target table", nlq.ErrNoInterpretation)
	}
	tbl := p.db.Table(anchor)
	schema := tbl.Schema

	stmt := sqlparse.NewSelect()
	stmt.From = &sqlparse.FromClause{First: sqlparse.TableRef{Name: strings.ToLower(anchor)}}

	var expl []string
	expl = append(expl, fmt.Sprintf("anchor table %s", anchor))

	// WHERE: value equality filters on the anchor + numeric comparisons.
	var where []sqlparse.Expr
	filterCols := map[string]bool{}
	for _, sp := range a.Spans {
		m := sp.Best()
		if m.Kind == invindex.KindValue && strings.EqualFold(m.Table, anchor) {
			filterCols[strings.ToLower(m.Column)] = true
			where = append(where, &sqlparse.BinaryExpr{
				Op: "=",
				L:  &sqlparse.ColumnRef{Column: strings.ToLower(m.Column)},
				R:  &sqlparse.Literal{Val: sqldata.NewText(m.Value)},
			})
			expl = append(expl, fmt.Sprintf("filter %s = %q", m.Column, m.Value))
		}
	}
	for _, cmp := range a.Comparisons {
		col := resolveColumn(schema, cmp.ColumnHint, p.ix, anchor)
		if col == "" {
			col = firstNumericColumn(schema)
		}
		if col == "" {
			continue
		}
		filterCols[col] = true
		where = append(where, &sqlparse.BinaryExpr{
			Op: cmp.Op,
			L:  &sqlparse.ColumnRef{Column: col},
			R:  &sqlparse.Literal{Val: numLiteral(cmp.Value)},
		})
		expl = append(expl, fmt.Sprintf("comparison %s %s %v", col, cmp.Op, cmp.Value))
	}
	stmt.Where = conjoin(where)

	// Superlative disambiguation: a superlative *after* the anchor mention
	// reads as top-k ordering; before it (or with no anchor mention), as a
	// MAX/MIN aggregate. "top N" is always ordering.
	topk := a.TopK
	aggCues := a.AggCues
	if topk != nil {
		word := a.Tokens[topk.TokenPos].Lower
		isExplicitTop := word == "top" || word == "bottom" || word == "first" || word == "last"
		if !isExplicitTop && (anchorPos < 0 || anchorPos > topk.TokenPos) {
			f := "MAX"
			if !topk.Desc {
				f = "MIN"
			}
			aggCues = append(aggCues, nlq.AggCue{Func: f, TokenPos: topk.TokenPos})
			topk = nil
		} else if !isExplicitTop {
			// K may be a leading count: "5 employees with the highest pay".
			topk.K = leadingK(a, topk.TokenPos)
		}
	}

	// GROUP BY targets.
	var groupCols []string
	for _, g := range a.GroupCues {
		if topk != nil && g.TokenPos > topk.TokenPos {
			continue // "top 5 products by price": by-phrase orders, not groups
		}
		if col := p.columnAtToken(a, g.TokenPos, anchor); col != "" {
			groupCols = append(groupCols, col)
			expl = append(expl, fmt.Sprintf("group by %s", col))
		}
	}
	groupCols = dedupe(groupCols)

	// Resolve the top-k ordering column first so the plain projection can
	// exclude it ("employee with the lowest salary" should project the
	// employee row, not the salary alone).
	orderCol := ""
	if topk != nil {
		orderCol = p.columnAtToken(a, topk.TokenPos+1, anchor)
		if orderCol == "" {
			for _, g := range a.GroupCues {
				if g.TokenPos > topk.TokenPos {
					if c := p.columnAtToken(a, g.TokenPos, anchor); c != "" {
						orderCol = c
						break
					}
				}
			}
		}
		if orderCol == "" {
			orderCol = resolveColumn(schema, a.Tokens[topk.TokenPos].Lower, p.ix, anchor)
		}
		if orderCol == "" {
			orderCol = firstNumericColumn(schema)
		}
	}

	// Projections.
	switch {
	case len(aggCues) > 0:
		for _, gc := range groupCols {
			stmt.Items = append(stmt.Items, sqlparse.SelectItem{Expr: &sqlparse.ColumnRef{Column: gc}})
			stmt.GroupBy = append(stmt.GroupBy, &sqlparse.ColumnRef{Column: gc})
		}
		for _, cue := range aggCues {
			target := p.aggTarget(a, cue, anchor, filterCols)
			var e sqlparse.Expr
			if cue.Func == "COUNT" && target == "" {
				e = &sqlparse.FuncCall{Name: "COUNT", Star: true}
			} else {
				if target == "" {
					target = firstNumericColumn(schema)
				}
				if target == "" {
					continue
				}
				e = &sqlparse.FuncCall{Name: cue.Func, Args: []sqlparse.Expr{&sqlparse.ColumnRef{Column: target}}}
			}
			stmt.Items = append(stmt.Items, sqlparse.SelectItem{Expr: e})
			expl = append(expl, fmt.Sprintf("aggregate %s(%s)", cue.Func, target))
		}
	default:
		// Plain selection: project matched non-filter columns (excluding
		// the top-k ordering column), else *.
		cols := p.projectionColumns(a, anchor, filterCols)
		for _, c := range cols {
			if c == orderCol {
				continue
			}
			stmt.Items = append(stmt.Items, sqlparse.SelectItem{Expr: &sqlparse.ColumnRef{Column: c}})
		}
		if len(stmt.Items) == 0 {
			if c := firstTextColumn(schema); c != "" {
				stmt.Items = []sqlparse.SelectItem{{Expr: &sqlparse.ColumnRef{Column: c}}}
			} else {
				stmt.Items = []sqlparse.SelectItem{{Star: true}}
			}
		}
	}

	// ORDER BY / LIMIT from top-k.
	if topk != nil && orderCol != "" {
		stmt.OrderBy = append(stmt.OrderBy, sqlparse.OrderItem{Expr: &sqlparse.ColumnRef{Column: orderCol}, Desc: topk.Desc})
		stmt.Limit = topk.K
		expl = append(expl, fmt.Sprintf("order by %s desc=%v limit %d", orderCol, topk.Desc, topk.K))
	}

	if len(stmt.Items) == 0 {
		return nil, fmt.Errorf("%w: patterns produced no projection", nlq.ErrNoInterpretation)
	}
	return []nlq.Interpretation{{SQL: stmt, Score: score, Explanation: strings.Join(expl, "; ")}}, nil
}

// pickAnchor selects the single table the query is about and the token
// position of its mention (-1 if the table is implied by columns/values).
func (p *Interpreter) pickAnchor(a *nlq.Analysis) (string, int, float64) {
	scores := map[string]float64{}
	mention := map[string]int{}
	for _, sp := range a.Spans {
		m := sp.Best()
		scores[strings.ToLower(m.Table)] += m.Score
		if m.Kind == invindex.KindTable {
			scores[strings.ToLower(m.Table)] += 0.5
			if _, ok := mention[strings.ToLower(m.Table)]; !ok {
				mention[strings.ToLower(m.Table)] = sp.Start
			}
		}
	}
	best, bestScore := "", 0.0
	keys := make([]string, 0, len(scores))
	for t := range scores {
		keys = append(keys, t)
	}
	sort.Strings(keys)
	for _, t := range keys {
		if scores[t] > bestScore {
			best, bestScore = t, scores[t]
		}
	}
	pos := -1
	if mp, ok := mention[best]; ok {
		pos = mp
	}
	norm := bestScore
	if norm > 1 {
		norm = 1
	}
	return best, pos, norm
}

// columnAtToken resolves the token at position pos (and pos+1 for
// two-word columns) to a column of the anchor table.
func (p *Interpreter) columnAtToken(a *nlq.Analysis, pos int, anchor string) string {
	if pos < 0 || pos >= len(a.Tokens) {
		return ""
	}
	if sp := a.SpanAt(pos); sp != nil {
		for _, m := range sp.Matches {
			if m.Kind == invindex.KindColumn && strings.EqualFold(m.Table, anchor) {
				return strings.ToLower(m.Column)
			}
		}
	}
	tbl := p.db.Table(anchor)
	if tbl == nil {
		return ""
	}
	return resolveColumn(tbl.Schema, a.Tokens[pos].Lower, p.ix, anchor)
}

// aggTarget finds the column an aggregate applies to: the nearest column
// match after the cue, else before it.
func (p *Interpreter) aggTarget(a *nlq.Analysis, cue nlq.AggCue, anchor string, filters map[string]bool) string {
	pick := func(from, to int) string {
		for i := from; i >= 0 && i < len(a.Tokens) && i != to; i += sign(to - from) {
			if c := p.columnAtToken(a, i, anchor); c != "" && !filters[c] {
				return c
			}
		}
		return ""
	}
	if c := pick(cue.TokenPos+1, cue.TokenPos+5); c != "" {
		return c
	}
	return pick(cue.TokenPos-1, cue.TokenPos-4)
}

func sign(x int) int {
	if x < 0 {
		return -1
	}
	return 1
}

// projectionColumns picks matched anchor columns not used as filters.
func (p *Interpreter) projectionColumns(a *nlq.Analysis, anchor string, filters map[string]bool) []string {
	var out []string
	seen := map[string]bool{}
	for _, sp := range a.Spans {
		m := sp.Best()
		if m.Kind == invindex.KindColumn && strings.EqualFold(m.Table, anchor) {
			lc := strings.ToLower(m.Column)
			if !filters[lc] && !seen[lc] {
				seen[lc] = true
				out = append(out, lc)
			}
		}
	}
	return out
}

// leadingK finds a bare count before the superlative ("5 cheapest ...").
func leadingK(a *nlq.Analysis, supPos int) int {
	used := map[int]bool{}
	for _, c := range a.Comparisons {
		used[c.TokenPos] = true
	}
	for i := supPos - 1; i >= 0; i-- {
		t := a.Tokens[i]
		if t.Kind == nlp.KindNumber && !used[i] {
			return int(t.Num)
		}
	}
	return 1
}

// resolveColumn fuzzy-matches a word to a column of the schema, using
// name, synonyms, and stems.
func resolveColumn(s *sqldata.Schema, word string, ix *invindex.Index, table string) string {
	if word == "" {
		return ""
	}
	opts := invindex.DefaultOptions()
	opts.KindFilter = []invindex.Kind{invindex.KindColumn}
	for _, m := range ix.Lookup(word, opts) {
		if strings.EqualFold(m.Table, table) {
			return strings.ToLower(m.Column)
		}
	}
	return ""
}

func firstTextColumn(s *sqldata.Schema) string {
	for _, c := range s.Columns {
		if c.Type == sqldata.TypeText {
			return strings.ToLower(c.Name)
		}
	}
	return ""
}

func firstNumericColumn(s *sqldata.Schema) string {
	for _, c := range s.Columns {
		if c.Type.Numeric() && !c.PrimaryKey {
			return strings.ToLower(c.Name)
		}
	}
	return ""
}

func numLiteral(v float64) sqldata.Value {
	if v == float64(int64(v)) {
		return sqldata.NewInt(int64(v))
	}
	return sqldata.NewFloat(v)
}

func conjoin(exprs []sqlparse.Expr) sqlparse.Expr {
	var out sqlparse.Expr
	for _, e := range exprs {
		if out == nil {
			out = e
		} else {
			out = &sqlparse.BinaryExpr{Op: "AND", L: out, R: e}
		}
	}
	return out
}

func dedupe(s []string) []string {
	seen := map[string]bool{}
	out := s[:0]
	for _, x := range s {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
