package patternnl

import (
	"strings"
	"testing"

	"nlidb/internal/lexicon"
	"nlidb/internal/nlq"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlexec"
)

func hrDB(t testing.TB) *sqldata.Database {
	t.Helper()
	db := sqldata.NewDatabase("hr")
	e, err := db.CreateTable(&sqldata.Schema{
		Name: "employee",
		Columns: []sqldata.Column{
			{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
			{Name: "name", Type: sqldata.TypeText},
			{Name: "salary", Type: sqldata.TypeFloat, Synonyms: []string{"pay"}},
			{Name: "dept", Type: sqldata.TypeText, Synonyms: []string{"department"}},
			{Name: "age", Type: sqldata.TypeInt},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := []struct {
		id   int64
		name string
		sal  float64
		dept string
		age  int64
	}{
		{1, "ann", 120, "eng", 34},
		{2, "bob", 80, "eng", 28},
		{3, "cyd", 60, "sales", 45},
		{4, "dee", 90, "sales", 31},
		{5, "eli", 70, "hr", 52},
	}
	for _, r := range rows {
		e.MustInsert(sqldata.NewInt(r.id), sqldata.NewText(r.name), sqldata.NewFloat(r.sal), sqldata.NewText(r.dept), sqldata.NewInt(r.age))
	}
	return db
}

func interpret(t *testing.T, db *sqldata.Database, q string) *sqldata.Result {
	t.Helper()
	in := New(db, lexicon.New())
	ins, err := in.Interpret(q)
	if err != nil {
		t.Fatalf("Interpret(%q): %v", q, err)
	}
	best, _ := nlq.Best(ins)
	t.Logf("%q → %s", q, best.SQL)
	res, err := sqlexec.New(db).Run(best.SQL)
	if err != nil {
		t.Fatalf("exec %s: %v", best.SQL, err)
	}
	return res
}

func TestCountPattern(t *testing.T) {
	db := hrDB(t)
	res := interpret(t, db, "how many employees are there")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 5 {
		t.Fatalf("count = %v", res.Rows)
	}
}

func TestAvgPattern(t *testing.T) {
	db := hrDB(t)
	res := interpret(t, db, "what is the average salary of employees")
	if len(res.Rows) != 1 || res.Rows[0][0].Float() != 84 {
		t.Fatalf("avg = %v", res.Rows)
	}
}

func TestSumGroupByPattern(t *testing.T) {
	db := hrDB(t)
	res := interpret(t, db, "total salary of employees by dept")
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %v", res.Rows)
	}
	var engTotal float64
	for _, r := range res.Rows {
		if r[0].Text() == "eng" {
			engTotal = r[1].Float()
		}
	}
	if engTotal != 200 {
		t.Fatalf("eng total = %v", engTotal)
	}
}

func TestGroupBySynonym(t *testing.T) {
	db := hrDB(t)
	res := interpret(t, db, "average pay per department")
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %v", res.Rows)
	}
}

func TestMaxAggregate(t *testing.T) {
	db := hrDB(t)
	res := interpret(t, db, "what is the highest salary")
	if len(res.Rows) != 1 || res.Rows[0][0].Float() != 120 {
		t.Fatalf("max = %v", res.Rows)
	}
}

func TestTopKOrdering(t *testing.T) {
	db := hrDB(t)
	res := interpret(t, db, "top 2 employees by salary")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSuperlativeAfterEntityIsOrdering(t *testing.T) {
	db := hrDB(t)
	in := New(db, lexicon.New())
	ins, err := in.Interpret("employees with the highest salary")
	if err != nil {
		t.Fatal(err)
	}
	best, _ := nlq.Best(ins)
	if best.SQL.HasAggregate() {
		t.Fatalf("should order, not aggregate: %s", best.SQL)
	}
	if len(best.SQL.OrderBy) != 1 || !best.SQL.OrderBy[0].Desc || best.SQL.Limit != 1 {
		t.Fatalf("ordering = %s", best.SQL)
	}
}

func TestComparisonPattern(t *testing.T) {
	db := hrDB(t)
	res := interpret(t, db, "employees with salary over 85")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestComparisonWithSynonymHint(t *testing.T) {
	db := hrDB(t)
	res := interpret(t, db, "employees with pay under 75")
	if len(res.Rows) != 2 { // cyd 60, eli 70
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestBetweenPattern(t *testing.T) {
	db := hrDB(t)
	res := interpret(t, db, "employees with age between 30 and 50")
	if len(res.Rows) != 3 { // ann 34, cyd 45, dee 31
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestValueAndComparisonCombined(t *testing.T) {
	db := hrDB(t)
	res := interpret(t, db, "eng employees with salary over 100")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestCountWithFilter(t *testing.T) {
	db := hrDB(t)
	res := interpret(t, db, "how many employees in sales")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 2 {
		t.Fatalf("count = %v", res.Rows)
	}
}

func TestPatternStaysSingleTable(t *testing.T) {
	db := hrDB(t)
	in := New(db, lexicon.New())
	ins, err := in.Interpret("average salary of employees by dept")
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range ins {
		if len(i.SQL.From.Joins) != 0 {
			t.Fatalf("pattern system joined: %s", i.SQL)
		}
		if len(i.SQL.Subqueries()) != 0 {
			t.Fatalf("pattern system nested: %s", i.SQL)
		}
	}
}

func TestCheapestSuperlative(t *testing.T) {
	db := hrDB(t)
	// "lowest paid employee" — superlative before column, after nothing.
	in := New(db, lexicon.New())
	ins, err := in.Interpret("employee with the lowest salary")
	if err != nil {
		t.Fatal(err)
	}
	best, _ := nlq.Best(ins)
	res, err := sqlexec.New(db).Run(best.SQL)
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	found := false
	for _, r := range res.Rows {
		for _, v := range r {
			if !v.Null && v.T == sqldata.TypeText && v.Text() == "cyd" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("cyd not in result: %s → %v", best.SQL, res.Rows)
	}
}

func TestExplanationPresent(t *testing.T) {
	db := hrDB(t)
	in := New(db, lexicon.New())
	ins, err := in.Interpret("total salary by dept")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ins[0].Explanation, "aggregate") {
		t.Errorf("explanation = %q", ins[0].Explanation)
	}
}
