package plan

import "nlidb/internal/sqldata"

// Static expression analysis for the planner. Predicate push-down and
// hash-join key extraction reorder or skip evaluations, which is only
// sound for expressions that provably cannot raise a runtime error: the
// tree-walking semantics this pipeline replaces evaluated every conjunct
// on every row, so an optimization that skips rows must not skip errors.
// safeType proves error-freedom from the schema-declared column types
// (Table.Insert coerces every stored value to its declared type, so the
// static type is trustworthy).

// exprInfo summarizes which runtime features an expression uses.
type exprInfo struct {
	offs  []int // level-0 column offsets read
	sub   bool  // contains a sub-query
	agg   bool  // contains an aggregate
	alias bool  // reads a select-alias slot
}

func inspect(e bexpr, info *exprInfo) {
	switch t := e.(type) {
	case *bLit:
	case *bCol:
		if t.level == 0 {
			info.offs = append(info.offs, t.off)
		}
	case *bAlias:
		info.alias = true
	case *bBinary:
		inspect(t.l, info)
		inspect(t.r, info)
	case *bUnary:
		inspect(t.x, info)
	case *bFunc:
		for _, a := range t.args {
			inspect(a, info)
		}
	case *bAgg:
		info.agg = true
		if t.arg != nil {
			inspect(t.arg, info)
		}
	case *bIn:
		inspect(t.x, info)
		for _, el := range t.list {
			inspect(el, info)
		}
		if t.sub != nil {
			info.sub = true
		}
	case *bExists, *bScalarSub:
		info.sub = true
	case *bBetween:
		inspect(t.x, info)
		inspect(t.lo, info)
		inspect(t.hi, info)
	case *bLike:
		inspect(t.x, info)
	case *bIsNull:
		inspect(t.x, info)
	}
}

// sType is the static verdict on one expression: its type when statically
// known, whether it is provably the NULL literal, and whether evaluating
// it can never return an error. "known" means any non-NULL result has
// type t; runtime NULLs are always possible and are handled by the
// three-valued operators.
type sType struct {
	t     sqldata.Type
	known bool
	safe  bool
	null  bool // statically always NULL
}

func unsafe() sType { return sType{} }

// comparablePair reports whether Compare (after date coercion) can never
// fail for operands of the two verdicts: either side statically NULL, or
// both types known and identical or both numeric. TEXT/DATE pairs are
// excluded — their coercion fails on non-ISO text.
func comparablePair(l, r sType) bool {
	if l.null || r.null {
		return true
	}
	if !l.known || !r.known {
		return false
	}
	return l.t == r.t || (l.t.Numeric() && r.t.Numeric())
}

// boolish reports whether the verdict is acceptable where a BOOL operand
// is required under three-valued logic (BOOL or statically NULL).
func boolish(s sType) bool {
	return s.null || (s.known && s.t == sqldata.TypeBool)
}

// safeType computes the static verdict, mirroring the evaluator's checks
// case by case.
func safeType(e bexpr) sType {
	boolOK := sType{t: sqldata.TypeBool, known: true, safe: true}
	switch t := e.(type) {
	case *bLit:
		if t.v.Null {
			return sType{safe: true, null: true}
		}
		return sType{t: t.v.T, known: true, safe: true}

	case *bCol:
		return sType{t: t.typ, known: true, safe: true}

	case *bBinary:
		l, r := safeType(t.l), safeType(t.r)
		if !l.safe || !r.safe {
			return unsafe()
		}
		switch t.op {
		case "AND", "OR":
			if boolish(l) && boolish(r) {
				return boolOK
			}
		case "=", "!=", "<", "<=", ">", ">=":
			if comparablePair(l, r) {
				return boolOK
			}
		case "+", "-", "*", "/":
			if l.null || r.null {
				return sType{safe: true, null: true}
			}
			if l.known && r.known && l.t.Numeric() && r.t.Numeric() {
				if t.op != "/" && l.t == sqldata.TypeInt && r.t == sqldata.TypeInt {
					return sType{t: sqldata.TypeInt, known: true, safe: true}
				}
				return sType{t: sqldata.TypeFloat, known: true, safe: true}
			}
		}
		return unsafe()

	case *bUnary:
		x := safeType(t.x)
		if !x.safe {
			return unsafe()
		}
		switch t.op {
		case "NOT":
			if boolish(x) {
				return boolOK
			}
		case "-":
			if x.null {
				return sType{safe: true, null: true}
			}
			if x.known && x.t.Numeric() {
				return sType{t: x.t, known: true, safe: true}
			}
		}
		return unsafe()

	case *bFunc:
		if len(t.args) != 1 {
			return unsafe()
		}
		x := safeType(t.args[0])
		if !x.safe {
			return unsafe()
		}
		if x.null {
			return sType{safe: true, null: true}
		}
		if !x.known {
			return unsafe()
		}
		switch t.name {
		case "LOWER", "UPPER":
			if x.t == sqldata.TypeText {
				return sType{t: sqldata.TypeText, known: true, safe: true}
			}
		case "ABS":
			if x.t.Numeric() {
				return sType{t: x.t, known: true, safe: true}
			}
		case "YEAR":
			if x.t == sqldata.TypeDate {
				return sType{t: sqldata.TypeInt, known: true, safe: true}
			}
		}
		return unsafe()

	case *bIn:
		if t.sub != nil {
			return unsafe()
		}
		x := safeType(t.x)
		if !x.safe {
			return unsafe()
		}
		for _, el := range t.list {
			e := safeType(el)
			if !e.safe || !comparablePair(x, e) {
				return unsafe()
			}
		}
		return boolOK

	case *bBetween:
		x, lo, hi := safeType(t.x), safeType(t.lo), safeType(t.hi)
		if x.safe && lo.safe && hi.safe && comparablePair(x, lo) && comparablePair(x, hi) {
			return boolOK
		}
		return unsafe()

	case *bLike:
		x := safeType(t.x)
		if x.safe && (x.null || (x.known && x.t == sqldata.TypeText)) {
			return boolOK
		}
		return unsafe()

	case *bIsNull:
		x := safeType(t.x)
		if x.safe {
			return boolOK
		}
		return unsafe()
	}
	// bAgg, bExists, bScalarSub, bAlias: never safe to reorder.
	return unsafe()
}

// predSafe reports whether e can serve as a pushed-down or hash-join
// predicate: evaluation can never error and the result is BOOL or NULL.
func predSafe(e bexpr) bool {
	s := safeType(e)
	return s.safe && boolish(s)
}

// rebase rewrites level-0 column offsets by delta, producing a copy. Only
// called on safe expressions, which by construction contain no aliases,
// aggregates, or sub-queries.
func rebase(e bexpr, delta int) bexpr {
	if delta == 0 {
		return e
	}
	switch t := e.(type) {
	case *bLit:
		return t
	case *bCol:
		if t.level != 0 {
			return t
		}
		return &bCol{level: 0, off: t.off + delta, typ: t.typ}
	case *bBinary:
		return &bBinary{op: t.op, l: rebase(t.l, delta), r: rebase(t.r, delta)}
	case *bUnary:
		return &bUnary{op: t.op, x: rebase(t.x, delta)}
	case *bFunc:
		args := make([]bexpr, len(t.args))
		for i, a := range t.args {
			args[i] = rebase(a, delta)
		}
		return &bFunc{name: t.name, args: args}
	case *bIn:
		list := make([]bexpr, len(t.list))
		for i, el := range t.list {
			list[i] = rebase(el, delta)
		}
		return &bIn{x: rebase(t.x, delta), not: t.not, list: list}
	case *bBetween:
		return &bBetween{x: rebase(t.x, delta), lo: rebase(t.lo, delta), hi: rebase(t.hi, delta), not: t.not}
	case *bLike:
		return &bLike{x: rebase(t.x, delta), pattern: t.pattern, not: t.not}
	case *bIsNull:
		return &bIsNull{x: rebase(t.x, delta), not: t.not}
	}
	return e
}
