package plan

import (
	"fmt"
	"strings"

	"nlidb/internal/sqldata"
	"nlidb/internal/sqlparse"
)

// The binder is the first pipeline layer: it resolves every table
// reference, column reference, and select alias of a statement exactly
// once, producing offset-addressed bound expressions (bexpr) the executor
// evaluates without any per-row name lookups. Structural errors — unknown
// tables or columns, duplicate FROM names, an empty select list — surface
// here, before any row is touched.

// boundTable is one table visible in a query scope.
type boundTable struct {
	name   string // effective name (alias or table name), lower-cased
	schema *sqldata.Schema
	off    int // offset of the table's first column in the joined tuple
}

// scope is the set of tables a statement's expressions can reference.
type scope struct {
	tables []boundTable
	width  int
}

func (s *scope) add(name string, schema *sqldata.Schema) error {
	lname := strings.ToLower(name)
	for _, t := range s.tables {
		if t.name == lname {
			return fmt.Errorf("sqlexec: duplicate table name %q in FROM; use aliases", name)
		}
	}
	s.tables = append(s.tables, boundTable{name: lname, schema: schema, off: s.width})
	s.width += len(schema.Columns)
	return nil
}

// resolve finds the tuple offset and declared type of table.col among the
// first n tables (an ON clause sees only the tables joined so far). An
// empty qualifier searches all of them and fails on ambiguity.
//
// Qualifier folding is uniformly ToLower — the same rule duplicate
// detection uses. Effective names (alias or table name) win: the
// underlying schema name of an aliased table is consulted only when no
// effective name matches the qualifier, so an alias that happens to equal
// another table's schema name shadows it instead of turning every
// reference ambiguous.
func (s *scope) resolve(table, col string, n int) (off int, typ sqldata.Type, err error) {
	ltable, lcol := strings.ToLower(table), strings.ToLower(col)
	tables := s.tables[:n]
	found := -1
	var ft sqldata.Type
	match := func(pred func(boundTable) bool) error {
		for _, t := range tables {
			if !pred(t) {
				continue
			}
			if i := t.schema.ColumnIndex(lcol); i >= 0 {
				if found >= 0 {
					return fmt.Errorf("sqlexec: ambiguous column %q", col)
				}
				found = t.off + i
				ft = t.schema.Columns[i].Type
			}
		}
		return nil
	}
	switch {
	case ltable == "":
		err = match(func(boundTable) bool { return true })
	default:
		byEff := false
		for _, t := range tables {
			if t.name == ltable {
				byEff = true
				break
			}
		}
		if byEff {
			err = match(func(t boundTable) bool { return t.name == ltable })
		} else {
			err = match(func(t boundTable) bool { return strings.ToLower(t.schema.Name) == ltable })
		}
	}
	if err != nil {
		return 0, 0, err
	}
	if found < 0 {
		return 0, 0, fmt.Errorf("sqlexec: unknown column %s.%s", table, col)
	}
	return found, ft, nil
}

// bindEnv is one statement's name-resolution environment: its scope, how
// many of the scope's tables are visible (ON clauses see a prefix), the
// select-alias slots visible at the current site (nil outside projection
// and ORDER BY), and the enclosing statement's environment for correlated
// sub-queries.
type bindEnv struct {
	sc      *scope
	n       int            // visible prefix of sc.tables
	aliases map[string]int // lower-cased alias -> projection slot; nil = not in scope
	parent  *bindEnv
}

// noAlias returns env with level-0 aliases hidden: aggregate arguments are
// evaluated per group row, where alias values do not exist yet.
func (env *bindEnv) noAlias() *bindEnv {
	if env.aliases == nil {
		return env
	}
	return &bindEnv{sc: env.sc, n: env.n, parent: env.parent}
}

// binder compiles statements to Plans. subs collects the current
// statement's directly nested sub-plans in bind order.
type binder struct {
	db   *sqldata.Database
	opts Options
	subs []*Plan
	nid  int // next per-operator stats slot, shared across sub-plans
}

// newNid allocates one per-operator row-count slot for EXPLAIN ANALYZE.
func (b *binder) newNid() int {
	n := b.nid
	b.nid++
	return n
}

// bindColumn resolves a column reference against the current scope, then
// select-item aliases, then enclosing scopes (correlated sub-queries) —
// the same precedence the tree-walking evaluator applied per row. Any
// resolution failure in an inner scope (including ambiguity) falls
// through to the enclosing one.
func (b *binder) bindColumn(env *bindEnv, c *sqlparse.ColumnRef) (bexpr, error) {
	level := 0
	for cur := env; cur != nil; cur = cur.parent {
		if off, typ, err := cur.sc.resolve(c.Table, c.Column, cur.n); err == nil {
			return &bCol{level: level, off: off, typ: typ}, nil
		}
		if c.Table == "" && cur.aliases != nil {
			if slot, ok := cur.aliases[strings.ToLower(c.Column)]; ok {
				return &bAlias{level: level, slot: slot}, nil
			}
		}
		level++
	}
	return nil, fmt.Errorf("sqlexec: cannot resolve column %s", c)
}

func (b *binder) bindExpr(env *bindEnv, e sqlparse.Expr) (bexpr, error) {
	switch t := e.(type) {
	case *sqlparse.Literal:
		return &bLit{v: t.Val}, nil

	case *sqlparse.ColumnRef:
		return b.bindColumn(env, t)

	case *sqlparse.BinaryExpr:
		l, err := b.bindExpr(env, t.L)
		if err != nil {
			return nil, err
		}
		r, err := b.bindExpr(env, t.R)
		if err != nil {
			return nil, err
		}
		return &bBinary{op: t.Op, l: l, r: r}, nil

	case *sqlparse.UnaryExpr:
		x, err := b.bindExpr(env, t.X)
		if err != nil {
			return nil, err
		}
		return &bUnary{op: t.Op, x: x}, nil

	case *sqlparse.FuncCall:
		if t.IsAggregate() {
			agg := &bAgg{name: t.Name, distinct: t.Distinct, star: t.Star}
			if !t.Star && len(t.Args) == 1 {
				// Wrong arity stays a runtime error (arg nil); see
				// evalAggregate. The argument sees no level-0 aliases.
				arg, err := b.bindExpr(env.noAlias(), t.Args[0])
				if err != nil {
					return nil, err
				}
				agg.arg = arg
			}
			return agg, nil
		}
		f := &bFunc{name: t.Name}
		if len(t.Args) == 1 {
			// As with aggregates, wrong arity is reported at evaluation
			// time (args nil), so the arguments are never inspected.
			arg, err := b.bindExpr(env, t.Args[0])
			if err != nil {
				return nil, err
			}
			f.args = []bexpr{arg}
		}
		return f, nil

	case *sqlparse.InExpr:
		x, err := b.bindExpr(env, t.X)
		if err != nil {
			return nil, err
		}
		in := &bIn{x: x, not: t.Not}
		if t.Sub != nil {
			sub, err := b.bindSub(env, t.Sub)
			if err != nil {
				return nil, err
			}
			in.sub = sub
			return in, nil
		}
		for _, el := range t.List {
			be, err := b.bindExpr(env, el)
			if err != nil {
				return nil, err
			}
			in.list = append(in.list, be)
		}
		return in, nil

	case *sqlparse.ExistsExpr:
		sub, err := b.bindSub(env, t.Sub)
		if err != nil {
			return nil, err
		}
		return &bExists{not: t.Not, sub: sub}, nil

	case *sqlparse.SubqueryExpr:
		sub, err := b.bindSub(env, t.Sub)
		if err != nil {
			return nil, err
		}
		return &bScalarSub{sub: sub}, nil

	case *sqlparse.BetweenExpr:
		x, err := b.bindExpr(env, t.X)
		if err != nil {
			return nil, err
		}
		lo, err := b.bindExpr(env, t.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := b.bindExpr(env, t.Hi)
		if err != nil {
			return nil, err
		}
		return &bBetween{x: x, lo: lo, hi: hi, not: t.Not}, nil

	case *sqlparse.LikeExpr:
		x, err := b.bindExpr(env, t.X)
		if err != nil {
			return nil, err
		}
		return &bLike{x: x, pattern: t.Pattern, not: t.Not}, nil

	case *sqlparse.IsNullExpr:
		x, err := b.bindExpr(env, t.X)
		if err != nil {
			return nil, err
		}
		return &bIsNull{x: x, not: t.Not}, nil
	}
	return nil, fmt.Errorf("sqlexec: unsupported expression %T", e)
}

// bindSub compiles a nested sub-query. Its parent environment is the
// binding site's, so correlated references resolve one level up.
func (b *binder) bindSub(env *bindEnv, stmt *sqlparse.SelectStmt) (*Plan, error) {
	sub, err := b.bindStmt(stmt, env)
	if err != nil {
		return nil, err
	}
	b.subs = append(b.subs, sub)
	return sub, nil
}

// boundItem is one select item after binding: either a star (offs lists
// the projected tuple offsets) or a single bound expression.
type boundItem struct {
	star      bool
	offs      []int
	starTable string // original qualifier, for the runtime no-match error
	expr      bexpr
}

// boundOrder is one bound ORDER BY key.
type boundOrder struct {
	key  bexpr
	desc bool
}

// conjunct is one top-level AND term of a WHERE or ON clause, kept with
// its AST form for display and push-down analysis.
type conjunct struct {
	b    bexpr
	ast  sqlparse.Expr
	safe bool // statically cannot error and yields BOOL or NULL
	info exprInfo
}

// splitAnd flattens a top-level AND chain into its terms.
func splitAnd(e sqlparse.Expr) []sqlparse.Expr {
	if be, ok := e.(*sqlparse.BinaryExpr); ok && be.Op == "AND" {
		return append(splitAnd(be.L), splitAnd(be.R)...)
	}
	return []sqlparse.Expr{e}
}

// bindConjuncts binds each top-level AND term of e separately, analyzing
// each for safety.
func (b *binder) bindConjuncts(env *bindEnv, e sqlparse.Expr) ([]conjunct, error) {
	if e == nil {
		return nil, nil
	}
	terms := splitAnd(e)
	out := make([]conjunct, 0, len(terms))
	for _, t := range terms {
		be, err := b.bindExpr(env, t)
		if err != nil {
			return nil, err
		}
		c := conjunct{b: be, ast: t, safe: predSafe(be)}
		inspect(be, &c.info)
		out = append(out, c)
	}
	return out, nil
}

// bindStmt compiles one statement (and, recursively, its sub-queries)
// into a Plan: binding, then physical planning via planFrom.
func (b *binder) bindStmt(stmt *sqlparse.SelectStmt, parent *bindEnv) (*Plan, error) {
	if len(stmt.Items) == 0 {
		return nil, fmt.Errorf("sqlexec: empty select list")
	}
	if stmt.From == nil {
		return nil, fmt.Errorf("sqlexec: missing FROM clause")
	}

	// Nested sub-plans collect per statement; restore the enclosing list
	// on the way out.
	outerSubs := b.subs
	b.subs = nil
	defer func() { b.subs = outerSubs }()

	// Resolve FROM tables into the scope.
	sc := &scope{}
	refs := stmt.From.Tables()
	tabs := make([]*sqldata.Table, len(refs))
	for i, ref := range refs {
		t := b.db.Table(ref.Name)
		if t == nil {
			return nil, fmt.Errorf("sqlexec: unknown table %q", ref.Name)
		}
		if err := sc.add(ref.EffName(), t.Schema); err != nil {
			return nil, err
		}
		tabs[i] = t
	}

	p := &Plan{
		width:    sc.width,
		distinct: stmt.Distinct,
		limit:    stmt.Limit,
		grouped:  len(stmt.GroupBy) > 0 || stmt.HasAggregate(),
		tabs:     tabs,
	}
	p.toffs = make([]int, len(sc.tables))
	for i := range sc.tables {
		p.toffs[i] = sc.tables[i].off
	}

	env := &bindEnv{sc: sc, n: len(sc.tables), parent: parent}

	// ON clauses: join k sees tables 0..k+1 only, like the incremental
	// scope the tree-walker built.
	ons := make([][]conjunct, len(stmt.From.Joins))
	for k, j := range stmt.From.Joins {
		onEnv := &bindEnv{sc: sc, n: k + 2, parent: parent}
		cs, err := b.bindConjuncts(onEnv, j.On)
		if err != nil {
			return nil, err
		}
		ons[k] = cs
	}

	where, err := b.bindConjuncts(env, stmt.Where)
	if err != nil {
		return nil, err
	}

	if stmt.Having != nil && !p.grouped {
		return nil, fmt.Errorf("sqlexec: HAVING without GROUP BY or aggregates")
	}
	for _, g := range stmt.GroupBy {
		k, err := b.bindExpr(env, g)
		if err != nil {
			return nil, err
		}
		p.groupKeys = append(p.groupKeys, k)
		p.groupDisp = append(p.groupDisp, g.String())
	}
	if stmt.Having != nil {
		h, err := b.bindExpr(env, stmt.Having)
		if err != nil {
			return nil, err
		}
		p.having = h
		p.havingDisp = stmt.Having.String()
	}

	// Select items. Aliases become visible to later items and to ORDER BY,
	// mapping to the projection slot filled before the reference site.
	itemEnv := &bindEnv{sc: sc, n: len(sc.tables), aliases: map[string]int{}, parent: parent}
	slot := 0
	for _, it := range stmt.Items {
		p.itemsDisp = append(p.itemsDisp, it.String())
		if it.Star {
			bi := boundItem{star: true, starTable: it.StarTable}
			lstar := strings.ToLower(it.StarTable)
			for _, t := range sc.tables {
				if it.StarTable != "" && t.name != lstar {
					continue
				}
				for i, c := range t.schema.Columns {
					bi.offs = append(bi.offs, t.off+i)
					p.cols = append(p.cols, c.Name)
				}
			}
			slot += len(bi.offs)
			p.items = append(p.items, bi)
			continue
		}
		ex, err := b.bindExpr(itemEnv, it.Expr)
		if err != nil {
			return nil, err
		}
		if it.Alias != "" {
			itemEnv.aliases[strings.ToLower(it.Alias)] = slot
			p.cols = append(p.cols, it.Alias)
		} else {
			p.cols = append(p.cols, it.Expr.String())
		}
		p.items = append(p.items, boundItem{expr: ex})
		slot++
	}
	if len(p.cols) == 0 {
		return nil, fmt.Errorf("sqlexec: star matched no tables")
	}

	for _, o := range stmt.OrderBy {
		k, err := b.bindExpr(itemEnv, o.Expr)
		if err != nil {
			return nil, err
		}
		p.orderBy = append(p.orderBy, boundOrder{key: k, desc: o.Desc})
		p.orderDisp = append(p.orderDisp, o.String())
	}

	if err := b.planFrom(p, stmt, sc, tabs, ons, where); err != nil {
		return nil, err
	}
	p.subplans = b.subs
	return p, nil
}
