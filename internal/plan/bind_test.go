package plan

import (
	"context"
	"strings"
	"testing"

	"nlidb/internal/sqlparse"
)

// mustRows prepares and runs sql against fuzzDB and returns the result
// rows rendered as strings.
func mustRows(t *testing.T, sql string) [][]string {
	t.Helper()
	p, err := Prepare(fuzzDB(), sqlparse.MustParse(sql))
	if err != nil {
		t.Fatalf("prepare %q: %v", sql, err)
	}
	res, _, err := p.Run(context.Background(), DefaultBudget())
	if err != nil {
		t.Fatalf("run %q: %v", sql, err)
	}
	out := make([][]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = make([]string, len(r))
		for j, v := range r {
			out[i][j] = v.String()
		}
	}
	return out
}

// The binder folds table qualifiers with one rule (lower-casing) for both
// duplicate detection and resolution; these are the regression tests for
// the old mixed ToLower/EqualFold behavior.
func TestScopeCaseFolding(t *testing.T) {
	t.Run("duplicate aliases differing only by case are rejected", func(t *testing.T) {
		_, err := Prepare(fuzzDB(), sqlparse.MustParse(
			"SELECT X.id FROM customer AS X JOIN orders AS x ON X.id = x.customer_id"))
		if err == nil || !strings.Contains(err.Error(), "duplicate table") {
			t.Fatalf("want duplicate-table error, got %v", err)
		}
	})
	t.Run("alias and schema name differing only by case are rejected", func(t *testing.T) {
		_, err := Prepare(fuzzDB(), sqlparse.MustParse(
			"SELECT Orders.id FROM orders JOIN customer AS ORDERS ON orders.customer_id = ORDERS.id"))
		if err == nil || !strings.Contains(err.Error(), "duplicate table") {
			t.Fatalf("want duplicate-table error, got %v", err)
		}
	})
	t.Run("qualifier matches alias case-insensitively", func(t *testing.T) {
		rows := mustRows(t, "SELECT C.name FROM customer AS c WHERE c.id = 1")
		if len(rows) != 1 || rows[0][0] != "alice" {
			t.Fatalf("got %v", rows)
		}
	})
	t.Run("qualifier falls back to schema name case-insensitively", func(t *testing.T) {
		rows := mustRows(t, "SELECT Customer.name FROM customer AS cust WHERE CUSTOMER.id = 2")
		if len(rows) != 1 || rows[0][0] != "bob" {
			t.Fatalf("got %v", rows)
		}
	})
	t.Run("effective name wins over another table's schema name", func(t *testing.T) {
		// "orders" qualifies the alias of customer, not the orders table's
		// schema name — the orders schema has no "name" column, so only
		// effective-name-wins resolution makes this query valid.
		rows := mustRows(t,
			"SELECT Orders.name FROM customer AS orders JOIN orders AS o ON orders.id = o.customer_id WHERE o.id = 12")
		if len(rows) != 1 || rows[0][0] != "bob" {
			t.Fatalf("got %v", rows)
		}
	})
}

// The binder reports schema errors before any rows are touched.
func TestBindTimeErrors(t *testing.T) {
	db := fuzzDB()
	for _, tc := range []struct{ sql, frag string }{
		{"SELECT name FROM nope", "unknown table"},
		{"SELECT nope FROM customer", "cannot resolve column"},
		{"SELECT customer.nope FROM customer", "cannot resolve column"},
		{"SELECT name FROM customer HAVING COUNT(*) > 1", ""}, // grouped via aggregate is fine
		{"SELECT name FROM customer JOIN customer ON customer.id = customer.id", "duplicate table"},
	} {
		_, err := Prepare(db, sqlparse.MustParse(tc.sql))
		if tc.frag == "" {
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%q: want error containing %q, got %v", tc.sql, tc.frag, err)
		}
	}
}

// A prepared plan is immutable and reusable: two runs see identical
// results, and preparation happens once.
func TestPlanReuse(t *testing.T) {
	p, err := Prepare(fuzzDB(), sqlparse.MustParse(
		"SELECT city, COUNT(*) FROM customer GROUP BY city ORDER BY city"))
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := p.Run(context.Background(), DefaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := p.Run(context.Background(), DefaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("reuse changed row count: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		if a.Rows[i].Key() != b.Rows[i].Key() {
			t.Fatalf("reuse changed row %d", i)
		}
	}
}
