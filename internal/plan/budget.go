package plan

import (
	"context"
	"errors"
	"fmt"

	"nlidb/internal/obs"
)

// Budget bounds the resources one statement execution may consume, so an
// adversarial or badly translated query (a correlated sub-query over a
// cross join, say) terminates with a typed error instead of running
// unbounded. A field <= 0 means that resource is unlimited; the zero
// Budget imposes no limits at all.
type Budget struct {
	// MaxRows caps rows materialized by base-table scans and projected
	// output rows, summed over the statement and its sub-queries.
	MaxRows int
	// MaxJoinRows caps intermediate rows produced by join evaluation.
	MaxJoinRows int
	// MaxSubqueries caps sub-query evaluations; a correlated sub-query
	// counts once per outer row it is evaluated for.
	MaxSubqueries int
}

// DefaultBudget is a generous bound suitable for interactive serving and
// the experiment harness: far above anything the demo workloads need, low
// enough that a pathological nested query stops in tens of milliseconds.
func DefaultBudget() Budget {
	return Budget{MaxRows: 1_000_000, MaxJoinRows: 4_000_000, MaxSubqueries: 200_000}
}

// ErrBudgetExceeded marks executions stopped by a Budget limit. Callers
// use errors.Is; the concrete error is a *BudgetError naming the resource.
// The message keeps the historical "sqlexec:" prefix: sqlexec re-exports
// this sentinel and is the package callers actually see.
var ErrBudgetExceeded = errors.New("sqlexec: budget exceeded")

// ErrCanceled marks executions stopped by context cancellation or
// deadline expiry. The returned error also wraps the context's own error,
// so errors.Is(err, context.DeadlineExceeded) works too.
var ErrCanceled = errors.New("sqlexec: canceled")

// BudgetError reports which resource limit an execution hit.
type BudgetError struct {
	// Resource is "rows", "join rows", or "subqueries".
	Resource string
	// Limit is the configured cap that was exceeded.
	Limit int
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("sqlexec: budget exceeded: %s limit %d", e.Resource, e.Limit)
}

// Unwrap lets errors.Is(err, ErrBudgetExceeded) match.
func (e *BudgetError) Unwrap() error { return ErrBudgetExceeded }

// Usage is the resource consumption of one execution, reported alongside
// the result so serving layers can meter queries against their budgets.
type Usage struct {
	// Rows counts base-table and projected rows (the MaxRows meter).
	Rows int
	// JoinRows counts intermediate join rows (the MaxJoinRows meter).
	JoinRows int
	// Subqueries counts sub-query evaluations (the MaxSubqueries meter).
	Subqueries int
}

// String renders raw consumption.
func (u Usage) String() string {
	return fmt.Sprintf("rows %d, join %d, sub %d", u.Rows, u.JoinRows, u.Subqueries)
}

// Against renders consumption as used/limit triples ("-" = unlimited).
func (u Usage) Against(b Budget) string {
	part := func(used, limit int) string {
		if limit <= 0 {
			return fmt.Sprintf("%d/-", used)
		}
		return fmt.Sprintf("%d/%d", used, limit)
	}
	return fmt.Sprintf("rows %s, join %s, sub %s",
		part(u.Rows, b.MaxRows), part(u.JoinRows, b.MaxJoinRows), part(u.Subqueries, b.MaxSubqueries))
}

// execState tracks one top-level execution's consumption against its
// budget and context. Sub-plans share the enclosing statement's state, so
// limits are global per Run call.
type execState struct {
	ctx        context.Context
	budget     Budget
	span       *obs.Span // execute-stage span from ctx; nil disables tracing
	rows       int
	joinRows   int
	subqueries int
	ticks      int
}

// tickInterval amortizes ctx.Err checks over row-granularity call sites.
const tickInterval = 64

// tick is called once per row processed at operator boundaries; it polls
// the context every tickInterval calls so cancellation is observed
// promptly without a per-row atomic load.
func (st *execState) tick() error {
	st.ticks++
	if st.ticks%tickInterval != 0 {
		return nil
	}
	return st.checkCtx()
}

func (st *execState) checkCtx() error {
	if st.ctx == nil {
		return nil
	}
	if err := st.ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	return nil
}

func (st *execState) addRows(n int) error {
	st.rows += n
	if st.budget.MaxRows > 0 && st.rows > st.budget.MaxRows {
		return &BudgetError{Resource: "rows", Limit: st.budget.MaxRows}
	}
	return nil
}

func (st *execState) addJoinRows(n int) error {
	st.joinRows += n
	if st.budget.MaxJoinRows > 0 && st.joinRows > st.budget.MaxJoinRows {
		return &BudgetError{Resource: "join rows", Limit: st.budget.MaxJoinRows}
	}
	return nil
}

func (st *execState) addSubquery() error {
	st.subqueries++
	if st.budget.MaxSubqueries > 0 && st.subqueries > st.budget.MaxSubqueries {
		return &BudgetError{Resource: "subqueries", Limit: st.budget.MaxSubqueries}
	}
	return nil
}
