package plan

import (
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlparse"
)

// The cost model estimates per-operator output cardinalities from the
// per-column statistics sqldata maintains alongside the columnar cache
// (row counts, null fractions, NDV, min/max, equi-width histograms).
// Estimates drive three planner decisions — the order pushed-down scan
// predicates are applied in, the build/probe side of each vectorized
// hash join, and the join execution order for reorderable aggregate
// queries — and are surfaced next to actual row counts by EXPLAIN
// ANALYZE. They never change result semantics: every consumer is gated
// on a static proof that the reordering it enables is observationally
// equivalent.

// defaultSel is the selectivity assumed for predicates the model cannot
// analyze (LIKE over arbitrary text, correlated terms, ...).
const defaultSel = 1.0 / 3

// annotatePlan fills p.est with estimated output rows for every stat slot
// of the plan and its sub-plans.
func annotatePlan(p *Plan) {
	est := make([]int64, p.nstats)
	p.annotateInto(est)
	p.est = est
}

func (p *Plan) annotateInto(est []int64) {
	cc := &costCtx{tabs: p.tabs, toffs: p.toffs}
	in := cc.annotateNode(p.src, est)

	rows := in
	if p.grouped {
		if len(p.groupKeys) == 0 {
			rows = 1
		} else {
			g := 1.0
			for _, k := range p.groupKeys {
				g *= float64(cc.ndvOf(k, -1))
				if g > in {
					g = in
					break
				}
			}
			rows = clampEst(g, in)
		}
		est[p.nidGroup] = int64(rows)
	}
	if p.having != nil {
		rows = clampEst(rows*defaultSel, rows)
	}
	est[p.nidProject] = int64(rows)
	if p.limit >= 0 && float64(p.limit) < rows {
		rows = float64(p.limit)
	}
	est[p.nidResult] = int64(rows)

	for _, sub := range p.subplans {
		sub.annotateInto(est)
		sub.est = est
	}
}

// costCtx resolves column references of one statement against its tables'
// statistics. local >= 0 means expression offsets are local to that table
// (pushed-down scan filters, right-side join keys); -1 means offsets
// address the joined statement tuple.
type costCtx struct {
	tabs  []*sqldata.Table
	toffs []int
	stats [][]*sqldata.ColStats // lazily built, indexed by table
}

func (cc *costCtx) colStats(c *bCol, local int) *sqldata.ColStats {
	if c.level != 0 {
		return nil // correlated: no statistics for the outer row
	}
	k, off := local, c.off
	if local < 0 {
		k = 0
		for i := len(cc.toffs) - 1; i >= 0; i-- {
			if c.off >= cc.toffs[i] {
				k = i
				break
			}
		}
		off = c.off - cc.toffs[k]
	}
	if k >= len(cc.tabs) {
		return nil
	}
	if cc.stats == nil {
		cc.stats = make([][]*sqldata.ColStats, len(cc.tabs))
	}
	if cc.stats[k] == nil {
		cc.stats[k] = cc.tabs[k].Stats()
	}
	if off < 0 || off >= len(cc.stats[k]) {
		return nil
	}
	return cc.stats[k][off]
}

// ndvOf estimates the number of distinct values an expression takes: the
// column's NDV statistic for a bare column reference, a coarse default
// otherwise.
func (cc *costCtx) ndvOf(e bexpr, local int) int {
	if c, ok := e.(*bCol); ok {
		if s := cc.colStats(c, local); s != nil && s.NDV > 0 {
			return s.NDV
		}
	}
	return 100
}

func (cc *costCtx) annotateNode(n node, est []int64) float64 {
	switch t := n.(type) {
	case *scanNode:
		rows := float64(len(t.tab.Rows))
		for _, f := range t.filter {
			rows *= cc.sel(f, localTableOf(cc, t.tab))
		}
		est[t.nid] = int64(rows)
		return rows

	case *filterNode:
		rows := cc.annotateNode(t.child, est)
		for _, c := range t.conj {
			rows *= cc.sel(c, -1)
		}
		est[t.nid] = int64(rows)
		return rows

	case *joinNode:
		l := cc.annotateNode(t.left, est)
		r := cc.annotateNode(t.right, est)
		var rows float64
		if t.algo == "hash" {
			rows = l * r
			rtab := localTableOf(cc, t.right.tab)
			for i := range t.lKeys {
				ndv := cc.ndvOf(t.lKeys[i], -1)
				if rn := cc.ndvOf(t.rKeys[i], rtab); rn > ndv {
					ndv = rn
				}
				rows /= float64(ndv)
			}
			for _, c := range t.residual {
				rows *= cc.sel(c, -1)
			}
		} else {
			rows = l * r
			for _, c := range t.on {
				rows *= cc.sel(c, -1)
			}
		}
		if t.typ == sqlparse.JoinLeft && rows < l {
			rows = l // LEFT JOIN emits at least one row per left tuple
		}
		est[t.nid] = int64(rows)
		return rows
	}
	return 0
}

// localTableOf maps a table pointer back to its FROM index, so scans can
// resolve their table-local filter offsets. Self-joined tables share
// statistics, so matching the first occurrence is fine.
func localTableOf(cc *costCtx, tab *sqldata.Table) int {
	for i, t := range cc.tabs {
		if t == tab {
			return i
		}
	}
	return -1
}

// sel estimates the fraction of rows a predicate keeps.
func (cc *costCtx) sel(e bexpr, local int) float64 {
	s := cc.selRaw(e, local)
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

func (cc *costCtx) selRaw(e bexpr, local int) float64 {
	switch t := e.(type) {
	case *bLit:
		if b, ok := t.v.BoolOK(); ok {
			if b {
				return 1
			}
			return 0
		}
		return defaultSel

	case *bUnary:
		if t.op == "NOT" {
			return 1 - cc.sel(t.x, local)
		}
		return defaultSel

	case *bIsNull:
		if c, ok := t.x.(*bCol); ok {
			if s := cc.colStats(c, local); s != nil {
				if t.not {
					return 1 - s.NullFrac()
				}
				return s.NullFrac()
			}
		}
		if t.not {
			return 1 - defaultSel
		}
		return defaultSel

	case *bBetween:
		sel := cc.rangeSel(t.x, t.lo, t.hi, local)
		if t.not {
			return 1 - sel
		}
		return sel

	case *bIn:
		if c, ok := t.x.(*bCol); ok && len(t.list) > 0 {
			if s := cc.colStats(c, local); s != nil {
				sel := float64(len(t.list)) * s.EqSelectivity()
				if sel > 1 {
					sel = 1
				}
				if t.not {
					return 1 - sel
				}
				return sel
			}
		}
		if t.not {
			return 1 - defaultSel
		}
		return defaultSel

	case *bLike:
		if t.not {
			return 0.75
		}
		return 0.25

	case *bBinary:
		return cc.binarySel(t, local)
	}
	return defaultSel
}

func (cc *costCtx) binarySel(b *bBinary, local int) float64 {
	switch b.op {
	case "AND":
		return cc.sel(b.l, local) * cc.sel(b.r, local)
	case "OR":
		l, r := cc.sel(b.l, local), cc.sel(b.r, local)
		return l + r - l*r
	case "=", "!=":
		var eq float64 = defaultSel
		lc, lIsCol := b.l.(*bCol)
		rc, rIsCol := b.r.(*bCol)
		switch {
		case lIsCol && rIsCol:
			ndv := cc.ndvOf(lc, local)
			if rn := cc.ndvOf(rc, local); rn > ndv {
				ndv = rn
			}
			eq = 1 / float64(ndv)
		case lIsCol:
			if s := cc.colStats(lc, local); s != nil {
				eq = s.EqSelectivity()
			}
		case rIsCol:
			if s := cc.colStats(rc, local); s != nil {
				eq = s.EqSelectivity()
			}
		}
		if b.op == "!=" {
			return 1 - eq
		}
		return eq
	case "<", "<=", ">", ">=":
		if col, ok := b.l.(*bCol); ok {
			if x, lok := litFloat(b.r); lok {
				return cc.ineqSel(col, b.op, x, local)
			}
		}
		if col, ok := b.r.(*bCol); ok {
			if x, lok := litFloat(b.l); lok {
				return cc.ineqSel(col, flipOp(b.op), x, local)
			}
		}
		return defaultSel
	}
	return defaultSel
}

// ineqSel estimates `col op x` from the column's histogram.
func (cc *costCtx) ineqSel(col *bCol, op string, x float64, local int) float64 {
	s := cc.colStats(col, local)
	if s == nil || !s.HasMinMax {
		return defaultSel
	}
	nonNull := 1 - s.NullFrac()
	switch op {
	case "<":
		return s.FracBelow(x, false)
	case "<=":
		return s.FracBelow(x, true)
	case ">":
		return nonNull - s.FracBelow(x, true)
	default: // ">="
		return nonNull - s.FracBelow(x, false)
	}
}

// rangeSel estimates `x BETWEEN lo AND hi` for a column with literal
// bounds.
func (cc *costCtx) rangeSel(x, lo, hi bexpr, local int) float64 {
	col, ok := x.(*bCol)
	if !ok {
		return defaultSel
	}
	lv, lok := litFloat(lo)
	hv, hok := litFloat(hi)
	s := cc.colStats(col, local)
	if !lok || !hok || s == nil || !s.HasMinMax {
		return defaultSel
	}
	sel := s.FracBelow(hv, true) - s.FracBelow(lv, false)
	if sel < 0 {
		return 0
	}
	return sel
}

func litFloat(e bexpr) (float64, bool) {
	l, ok := e.(*bLit)
	if !ok {
		return 0, false
	}
	return l.v.FloatOK()
}

// flipOp mirrors an inequality so `lit op col` reads as `col op' lit`.
func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	default:
		return "<="
	}
}

func clampEst(v, hi float64) float64 {
	if v > hi {
		return hi
	}
	if v < 0 {
		return 0
	}
	return v
}
