package plan

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"nlidb/internal/obs"
	"nlidb/internal/sqldata"
	"nlidb/internal/sqlparse"
)

// The executor runs a prepared Plan: each operator materializes its output
// with the Budget/ctx checks of the old tree-walker at the same row
// boundaries, so budget errors and cancellations fire at identical points.

// execEnv carries one plan run's execution state: the shared budget/ctx
// meter, the enclosing statement frame (for correlated sub-plans), the span
// operator child-spans hang off (nil for sub-plans — a correlated sub-query
// re-runs per outer row, and a span per run would bloat the trace), and the
// per-operator row-count slots (nil outside RunStats).
type execEnv struct {
	st     *execState
	parent *frame
	span   *obs.Span
	stats  []int64
}

// Stats holds per-operator output row counts from one RunStats execution,
// indexed by the node ids assigned at plan time.
type Stats struct {
	rows []int64
}

// Run executes the plan under ctx and budget b. Usage is reported for
// failed executions too — a budget-killed query still says how far it got.
// When ctx carries an obs span, the executor annotates it with rows
// scanned/returned, join rows, sub-query count, and budget consumption, and
// hangs per-operator scan/join/group child spans off it.
func (p *Plan) Run(ctx context.Context, b Budget) (*sqldata.Result, Usage, error) {
	res, u, _, err := p.exec(ctx, b, nil)
	return res, u, err
}

// RunStats is Run plus per-operator row counts for EXPLAIN ANALYZE.
func (p *Plan) RunStats(ctx context.Context, b Budget) (*sqldata.Result, Usage, *Stats, error) {
	return p.exec(ctx, b, make([]int64, p.nstats))
}

func (p *Plan) exec(ctx context.Context, b Budget, stats []int64) (*sqldata.Result, Usage, *Stats, error) {
	st := &execState{ctx: ctx, budget: b, span: obs.FromContext(ctx)}
	if err := st.checkCtx(); err != nil {
		return nil, Usage{}, nil, err
	}
	res, err := p.run(&execEnv{st: st, span: st.span, stats: stats})
	u := Usage{Rows: st.rows, JoinRows: st.joinRows, Subqueries: st.subqueries}
	if st.span != nil {
		st.span.Add("rows_scanned", int64(u.Rows))
		st.span.Add("join_rows", int64(u.JoinRows))
		st.span.Add("subqueries", int64(u.Subqueries))
		if res != nil {
			st.span.Add("rows_returned", int64(len(res.Rows)))
		}
		st.span.SetAttr("budget", u.Against(b))
	}
	var sp *Stats
	if stats != nil {
		sp = &Stats{rows: stats}
	}
	return res, u, sp, err
}

// runSub evaluates a sub-plan against the enclosing statement's execution
// state, charging one sub-query evaluation. fr becomes the parent frame for
// the sub-plan's correlated references.
func (p *Plan) runSub(st *execState, fr *frame) (*sqldata.Result, error) {
	if err := st.addSubquery(); err != nil {
		return nil, err
	}
	return p.run(&execEnv{st: st, parent: fr})
}

// outRow is one projected output row plus its ORDER BY keys.
type outRow struct {
	proj sqldata.Row
	keys []sqldata.Value
}

// projectFrame fills fr.proj slot by slot, so a select alias bound to an
// earlier slot is readable by later items (and by ORDER BY).
func (p *Plan) projectFrame(st *execState, fr *frame) error {
	fr.proj = make(sqldata.Row, 0, len(p.cols))
	for _, it := range p.items {
		if it.star {
			if len(it.offs) == 0 {
				return fmt.Errorf("sqlexec: %s.* matched no table", it.starTable)
			}
			for _, off := range it.offs {
				fr.proj = append(fr.proj, fr.row[off])
			}
			continue
		}
		v, err := evalExpr(st, fr, it.expr)
		if err != nil {
			return err
		}
		fr.proj = append(fr.proj, v)
	}
	return nil
}

// orderKeysFrame evaluates the ORDER BY keys against a projected frame.
func (p *Plan) orderKeysFrame(st *execState, fr *frame) ([]sqldata.Value, error) {
	if len(p.orderBy) == 0 {
		return nil, nil
	}
	keys := make([]sqldata.Value, len(p.orderBy))
	for i, o := range p.orderBy {
		v, err := evalExpr(st, fr, o.key)
		if err != nil {
			return nil, err
		}
		keys[i] = v
	}
	return keys, nil
}

// emitFrame projects one frame, evaluates its sort keys, charges the row,
// and appends it to out.
func (p *Plan) emitFrame(st *execState, fr *frame, out *[]outRow) error {
	if err := p.projectFrame(st, fr); err != nil {
		return err
	}
	keys, err := p.orderKeysFrame(st, fr)
	if err != nil {
		return err
	}
	if err := st.addRows(1); err != nil {
		return err
	}
	*out = append(*out, outRow{proj: fr.proj, keys: keys})
	return nil
}

// run executes the operator tree and the group/sort/project/limit tail.
func (p *Plan) run(env *execEnv) (*sqldata.Result, error) {
	if p.vec != nil {
		return p.runVec(env)
	}
	st := env.st
	rows, err := p.src.rows(env)
	if err != nil {
		return nil, err
	}

	var out []outRow
	emit := func(fr *frame) error { return p.emitFrame(st, fr, &out) }

	if p.grouped {
		groups, order, err := p.groupRows(env, rows)
		if err != nil {
			return nil, err
		}
		for _, key := range order {
			g := groups[key]
			var rep sqldata.Row
			if len(g) > 0 {
				rep = g[0]
			} else {
				rep = nullRow(p.width) // all-NULL representative for empty global group
			}
			fr := &frame{row: rep, group: g, parent: env.parent}
			if p.having != nil {
				ok, err := evalPredicate(st, fr, p.having)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			if err := emit(fr); err != nil {
				return nil, err
			}
		}
	} else {
		for _, r := range rows {
			if err := st.tick(); err != nil {
				return nil, err
			}
			if err := emit(&frame{row: r, parent: env.parent}); err != nil {
				return nil, err
			}
		}
	}

	return p.finishRows(env, out)
}

// finishRows applies the shared ORDER BY / DISTINCT / LIMIT tail to the
// emitted rows and fills the projection/result stat slots. Both executors
// (row-at-a-time and vectorized) funnel through it, so the output ordering
// and dedup semantics cannot drift between them.
func (p *Plan) finishRows(env *execEnv, out []outRow) (*sqldata.Result, error) {
	// ORDER BY (stable, so ties keep input order).
	if len(p.orderBy) > 0 {
		var sortErr error
		sort.SliceStable(out, func(i, j int) bool {
			for k, o := range p.orderBy {
				a, b := out[i].keys[k], out[j].keys[k]
				// NULLs sort first ascending, last descending.
				if a.Null || b.Null {
					if a.Null && b.Null {
						continue
					}
					return a.Null != o.desc
				}
				c, err := sqldata.Compare(a, b)
				if err != nil {
					sortErr = err
					return false
				}
				if c != 0 {
					if o.desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
		if sortErr != nil {
			return nil, sortErr
		}
	}

	result := &sqldata.Result{Columns: p.cols}
	seen := map[string]bool{}
	for _, o := range out {
		if p.distinct {
			k := o.proj.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		result.Rows = append(result.Rows, o.proj)
		if p.limit >= 0 && len(result.Rows) >= p.limit {
			break
		}
	}
	if p.limit == 0 {
		result.Rows = nil
	}
	if env.stats != nil {
		env.stats[p.nidProject] = int64(len(out))
		env.stats[p.nidResult] = int64(len(result.Rows))
	}
	return result, nil
}

// groupRows hash-partitions rows by the GROUP BY key expressions,
// returning the groups plus key order of first appearance (deterministic
// output). With no GROUP BY (global aggregate) it returns one group, which
// may be empty.
func (p *Plan) groupRows(env *execEnv, rows []sqldata.Row) (map[string][]sqldata.Row, []string, error) {
	st := env.st
	groups := map[string][]sqldata.Row{}
	var order []string
	if len(p.groupKeys) == 0 {
		groups[""] = rows
		if env.stats != nil {
			env.stats[p.nidGroup] = 1
		}
		return groups, []string{""}, nil
	}
	gsp := env.span.Child("group")
	defer func() {
		gsp.Add("in_rows", int64(len(rows)))
		gsp.Add("groups", int64(len(order)))
		gsp.End()
	}()
	for _, r := range rows {
		if err := st.tick(); err != nil {
			return nil, nil, err
		}
		fr := &frame{row: r, parent: env.parent}
		var sb strings.Builder
		for _, k := range p.groupKeys {
			v, err := evalExpr(st, fr, k)
			if err != nil {
				// Group-key evaluation errors surface later during
				// projection; bucket such rows together.
				sb.WriteString("\x00ERR")
				continue
			}
			sb.WriteString(v.Key())
			sb.WriteByte(0x1f)
		}
		k := sb.String()
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}
	if env.stats != nil {
		env.stats[p.nidGroup] = int64(len(order))
	}
	return groups, order, nil
}

// rows scans the base table, charges the budget when this is the
// statement's first table, and applies pushed-down predicates. The
// returned slice aliases the table storage when no filter applies; nothing
// downstream mutates rows, and fresh slices are allocated wherever rows
// are dropped.
func (s *scanNode) rows(env *execEnv) ([]sqldata.Row, error) {
	st := env.st
	var sp *obs.Span
	if s.span != "" {
		sp = env.span.Child(s.span)
	}
	if s.charge {
		if err := st.addRows(len(s.tab.Rows)); err != nil {
			sp.End()
			return nil, err
		}
	}
	sp.Add("rows", int64(len(s.tab.Rows)))
	sp.End()

	rows := s.tab.Rows
	if len(s.filter) > 0 {
		kept := make([]sqldata.Row, 0, len(rows))
		for _, r := range rows {
			if err := st.tick(); err != nil {
				return nil, err
			}
			fr := &frame{row: r, parent: env.parent}
			keep := true
			for _, c := range s.filter {
				ok, err := evalPredicate(st, fr, c)
				if err != nil {
					return nil, err // unreachable: pushed conjuncts are statically safe
				}
				if !ok {
					keep = false
					break
				}
			}
			if keep {
				kept = append(kept, r)
			}
		}
		rows = kept
	} else if rows == nil {
		rows = []sqldata.Row{}
	}
	if env.stats != nil {
		env.stats[s.nid] = int64(len(rows))
	}
	return rows, nil
}

// rows applies the residual WHERE conjuncts. Every conjunct is evaluated
// for every row — AND under three-valued logic evaluates both sides, so a
// short-circuit would skip conjuncts whose evaluation errors.
func (f *filterNode) rows(env *execEnv) ([]sqldata.Row, error) {
	st := env.st
	rows, err := f.child.rows(env)
	if err != nil {
		return nil, err
	}
	kept := make([]sqldata.Row, 0, len(rows))
	for _, r := range rows {
		if err := st.tick(); err != nil {
			return nil, err
		}
		fr := &frame{row: r, parent: env.parent}
		keep := true
		for _, c := range f.conj {
			ok, err := evalPredicate(st, fr, c)
			if err != nil {
				return nil, err
			}
			keep = keep && ok
		}
		if keep {
			kept = append(kept, r)
		}
	}
	if env.stats != nil {
		env.stats[f.nid] = int64(len(kept))
	}
	return kept, nil
}

func (j *joinNode) rows(env *execEnv) ([]sqldata.Row, error) {
	left, err := j.left.rows(env)
	if err != nil {
		return nil, err
	}
	right, err := j.right.rows(env)
	if err != nil {
		return nil, err
	}
	sp := env.span.Child(j.span)
	sp.Add("left_rows", int64(len(left)))
	sp.Add("right_rows", int64(len(right)))
	sp.SetAttr("algo", j.algo)
	var joined []sqldata.Row
	if j.algo == "hash" {
		joined, err = j.hashJoin(env, left, right)
	} else {
		joined, err = j.nlJoin(env, left, right)
	}
	sp.Add("out_rows", int64(len(joined)))
	sp.End()
	if err != nil {
		return nil, err
	}
	if env.stats != nil {
		env.stats[j.nid] = int64(len(joined))
	}
	return joined, nil
}

func (j *joinNode) nlJoin(env *execEnv, left, right []sqldata.Row) ([]sqldata.Row, error) {
	st := env.st
	// Non-nil even when no pair matches: a zero-output join must still
	// form a (non-nil, empty) global aggregate group so COUNT returns 0.
	joined := []sqldata.Row{}
	for _, l := range left {
		matched := false
		for _, r := range right {
			if err := st.tick(); err != nil {
				return nil, err
			}
			combined := append(append(sqldata.Row{}, l...), r...)
			fr := &frame{row: combined, parent: env.parent}
			ok := true
			for _, c := range j.on {
				v, err := evalPredicate(st, fr, c)
				if err != nil {
					return nil, err
				}
				ok = ok && v
			}
			if ok {
				matched = true
				if err := st.addJoinRows(1); err != nil {
					return nil, err
				}
				joined = append(joined, combined)
			}
		}
		if !matched && j.typ == sqlparse.JoinLeft {
			if err := st.addJoinRows(1); err != nil {
				return nil, err
			}
			joined = append(joined, append(append(sqldata.Row{}, l...), nullRow(j.rwidth)...))
		}
	}
	return joined, nil
}

// hashJoin builds buckets of right-row indices keyed by the canonical
// encodings of the equi-key values, then probes in left order. Buckets
// keep ascending right-row order, so per left row the matches emit in the
// same order the nested loop would — identical output order and identical
// budget-error points. A NULL key on either side never matches, exactly
// like `=` returning UNKNOWN.
func (j *joinNode) hashJoin(env *execEnv, left, right []sqldata.Row) ([]sqldata.Row, error) {
	st := env.st
	buckets := make(map[string][]int, len(right))
	for ri, r := range right {
		if err := st.tick(); err != nil {
			return nil, err
		}
		key, ok, err := j.hashOf(st, &frame{row: r, parent: env.parent}, j.rKeys)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		buckets[key] = append(buckets[key], ri)
	}

	joined := []sqldata.Row{} // non-nil: see nlJoin
	for _, l := range left {
		if err := st.tick(); err != nil {
			return nil, err
		}
		matched := false
		key, ok, err := j.hashOf(st, &frame{row: l, parent: env.parent}, j.lKeys)
		if err != nil {
			return nil, err
		}
		if ok {
			for _, ri := range buckets[key] {
				combined := append(append(sqldata.Row{}, l...), right[ri]...)
				keep := true
				if len(j.residual) > 0 {
					fr := &frame{row: combined, parent: env.parent}
					for _, c := range j.residual {
						v, err := evalPredicate(st, fr, c)
						if err != nil {
							return nil, err // unreachable: residuals are statically safe
						}
						if !v {
							keep = false
							break
						}
					}
				}
				if keep {
					matched = true
					if err := st.addJoinRows(1); err != nil {
						return nil, err
					}
					joined = append(joined, combined)
				}
			}
		}
		if !matched && j.typ == sqlparse.JoinLeft {
			if err := st.addJoinRows(1); err != nil {
				return nil, err
			}
			joined = append(joined, append(append(sqldata.Row{}, l...), nullRow(j.rwidth)...))
		}
	}
	return joined, nil
}

// hashOf renders the composite key of one side; ok=false means a NULL key
// component (the row cannot match).
func (j *joinNode) hashOf(st *execState, fr *frame, keys []bexpr) (string, bool, error) {
	var sb strings.Builder
	for i, k := range keys {
		v, err := evalExpr(st, fr, k)
		if err != nil {
			return "", false, err // unreachable: keys are statically safe
		}
		if v.Null {
			return "", false, nil
		}
		s, ok := hashKey(v, j.kinds[i])
		if !ok {
			s = v.Key() // defensive: static typing should make this unreachable
		}
		sb.WriteString(s)
		sb.WriteByte(0x1f)
	}
	return sb.String(), true, nil
}

// hashKey canonically encodes one key value under the pair's keyKind so
// that equal-under-Compare values get equal strings. Mixed numeric pairs
// use the canonical Value.Key encoding, which is exact: hashing by
// widened float64 (the previous encoding) collapsed distinct int64s
// beyond 2^53 into one bucket, and since the hash path never re-checks
// equality on bucket hits, that silently joined unequal keys. -0 folds
// into +0 and all NaNs share one slot (Compare treats NaN == NaN).
func hashKey(v sqldata.Value, kind keyKind) (string, bool) {
	switch kind {
	case kInt:
		n, ok := v.IntOK()
		if !ok {
			return "", false
		}
		return strconv.FormatInt(n, 10), true
	case kFloat:
		if _, ok := v.FloatOK(); !ok {
			return "", false
		}
		return v.Key(), true
	case kText:
		s, ok := v.TextOK()
		return s, ok
	case kBool:
		b, ok := v.BoolOK()
		if !ok {
			return "", false
		}
		if b {
			return "1", true
		}
		return "0", true
	case kDate:
		d, ok := v.DateDaysOK()
		if !ok {
			return "", false
		}
		return strconv.FormatInt(d, 10), true
	}
	return "", false
}

// nullRow returns a row of n SQL NULLs (LEFT JOIN padding and empty global
// aggregate groups).
func nullRow(n int) sqldata.Row {
	r := make(sqldata.Row, n)
	for i := range r {
		r[i] = sqldata.NullValue()
	}
	return r
}
