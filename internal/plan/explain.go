package plan

import (
	"fmt"
	"strings"

	"nlidb/internal/sqlparse"
)

// EXPLAIN renders the physical operator tree — what will actually run —
// rather than the statement's syntactic shape: push-down shows up as
// [filter: ...] annotations on scans, and each join names its algorithm.

// Explain renders the plan as an indented operator tree.
func (p *Plan) Explain() string {
	return p.render(nil)
}

// ExplainStats is Explain with per-operator output row counts from a
// RunStats execution appended as rows=N.
func (p *Plan) ExplainStats(s *Stats) string {
	return p.render(s)
}

type renderer struct {
	sb    strings.Builder
	stats *Stats
	est   []int64
}

func (r *renderer) line(depth int, format string, args ...any) {
	r.sb.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(&r.sb, format, args...)
	r.sb.WriteByte('\n')
}

// statLine is line plus a rows=N suffix when stats are present, and an
// est=N suffix when the cost model annotated the operator — EXPLAIN
// ANALYZE shows estimated vs actual rows side by side.
func (r *renderer) statLine(depth, nid int, format string, args ...any) {
	if r.stats != nil && nid < len(r.stats.rows) {
		format += fmt.Sprintf(" rows=%d", r.stats.rows[nid])
		if r.est != nil && nid < len(r.est) {
			format += fmt.Sprintf(" est=%d", r.est[nid])
		}
	}
	r.line(depth, format, args...)
}

func (p *Plan) render(s *Stats) string {
	r := &renderer{stats: s, est: p.est}
	p.renderTo(r, 0)
	return strings.TrimRight(r.sb.String(), "\n")
}

func (p *Plan) renderTo(r *renderer, depth int) {
	if p.limit >= 0 {
		r.statLine(depth, p.nidResult, "Limit %d", p.limit)
		depth++
	}
	if p.distinct {
		r.line(depth, "Distinct")
		depth++
	}
	if len(p.orderBy) > 0 {
		r.line(depth, "Sort [%s]", strings.Join(p.orderDisp, ", "))
		depth++
	}
	r.statLine(depth, p.nidProject, "Project [%s]", strings.Join(p.itemsDisp, ", "))
	depth++
	if p.having != nil {
		r.line(depth, "Having (%s)", p.havingDisp)
		depth++
	}
	if p.grouped {
		if len(p.groupKeys) > 0 {
			r.statLine(depth, p.nidGroup, "HashGroupBy [%s]", strings.Join(p.groupDisp, ", "))
		} else {
			r.line(depth, "Aggregate (global)")
		}
		depth++
	}
	renderNode(r, p.src, depth)

	for i, sub := range p.subplans {
		r.line(0, "Subquery %d:", i+1)
		sub.renderTo(r, 1)
	}
}

func renderNode(r *renderer, n node, depth int) {
	switch t := n.(type) {
	case *scanNode:
		suffix := ""
		if len(t.filterDisp) > 0 {
			suffix = fmt.Sprintf(" [filter: %s]", strings.Join(t.filterDisp, " AND "))
		}
		r.statLine(depth, t.nid, "Scan %s (%d rows)%s", t.disp, len(t.tab.Rows), suffix)

	case *filterNode:
		r.statLine(depth, t.nid, "Filter (%s)", strings.Join(t.disp, " AND "))
		renderNode(r, t.child, depth+1)

	case *joinNode:
		r.statLine(depth, t.nid, "%s (%s)", joinName(t), t.onDisp)
		renderNode(r, t.left, depth+1)
		renderNode(r, t.right, depth+1)
	}
}

func joinName(j *joinNode) string {
	hash := j.algo == "hash"
	left := j.typ == sqlparse.JoinLeft
	switch {
	case hash && left:
		return "HashLeftJoin"
	case hash:
		return "HashJoin"
	case left:
		return "NestedLoopLeftJoin"
	default:
		return "NestedLoopJoin"
	}
}

// Shape is a compact one-line plan fingerprint for trace attributes, e.g.
// "project(group(hashjoin(scan,scan)))".
func (p *Plan) Shape() string {
	s := nodeShape(p.src)
	if p.grouped {
		if len(p.groupKeys) > 0 {
			s = "group(" + s + ")"
		} else {
			s = "agg(" + s + ")"
		}
	}
	s = "project(" + s + ")"
	if len(p.orderBy) > 0 {
		s = "sort(" + s + ")"
	}
	if p.distinct {
		s = "distinct(" + s + ")"
	}
	if p.limit >= 0 {
		s = "limit(" + s + ")"
	}
	return s
}

func nodeShape(n node) string {
	switch t := n.(type) {
	case *scanNode:
		if len(t.filter) > 0 {
			return "scan+filter"
		}
		return "scan"
	case *filterNode:
		return "filter(" + nodeShape(t.child) + ")"
	case *joinNode:
		name := "nljoin"
		if t.algo == "hash" {
			name = "hashjoin"
		}
		if t.typ == sqlparse.JoinLeft {
			name += "-left"
		}
		return name + "(" + nodeShape(t.left) + "," + nodeShape(t.right) + ")"
	}
	return "?"
}
