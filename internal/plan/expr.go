package plan

import (
	"fmt"
	"math"
	"math/bits"
	"strings"

	"nlidb/internal/sqldata"
)

// frame is one statement's runtime evaluation context: the current tuple,
// the retained rows of the current group (nil outside grouped contexts —
// aggregates error there, matching the tree-walker's semantics), the
// partially built projection row (the source for select-alias references),
// and the enclosing statement's frame for correlated sub-queries.
type frame struct {
	row    sqldata.Row
	group  []sqldata.Row
	proj   sqldata.Row
	parent *frame
	// aggVals, when non-nil, short-circuits aggregate evaluation with
	// values the vectorized executor precomputed per group; the boxed
	// group tail (HAVING, projection, ORDER BY) then reuses the ordinary
	// expression evaluator without re-walking the group's rows.
	aggVals map[*bAgg]sqldata.Value
}

// at walks up level parent links. Levels are fixed at bind time, so the
// chain depth always suffices.
func (f *frame) at(level int) *frame {
	for ; level > 0; level-- {
		f = f.parent
	}
	return f
}

// bexpr is a bound expression: column references are tuple offsets, alias
// references are projection slots, sub-queries are compiled sub-plans.
// Bound expressions are immutable after binding — a cached Plan may be
// evaluated concurrently — so all evaluation state lives in frames and the
// execState.
type bexpr interface{ bnode() }

type bLit struct{ v sqldata.Value }

// bCol reads column off of the statement frame level levels up. typ is the
// schema-declared column type, used for static safety analysis (pushdown
// and hash-key eligibility), never for evaluation.
type bCol struct {
	level, off int
	typ        sqldata.Type
}

// bAlias reads projection slot slot of the frame level levels up. Alias
// slots are filled left-to-right during projection, so a bound alias always
// reads an already-computed value (the binder only resolves aliases
// registered before the reference site, mirroring the evaluation order).
type bAlias struct{ level, slot int }

type bBinary struct {
	op   string
	l, r bexpr
}

type bUnary struct {
	op string
	x  bexpr
}

type bFunc struct {
	name string
	args []bexpr
}

type bAgg struct {
	name     string
	distinct bool
	star     bool
	arg      bexpr // nil for COUNT(*)
}

type bIn struct {
	x    bexpr
	not  bool
	list []bexpr // nil when sub is set
	sub  *Plan   // nil when list is set
}

type bExists struct {
	not bool
	sub *Plan
}

type bScalarSub struct{ sub *Plan }

type bBetween struct {
	x, lo, hi bexpr
	not       bool
}

type bLike struct {
	x       bexpr
	pattern string
	not     bool
}

type bIsNull struct {
	x   bexpr
	not bool
}

func (*bLit) bnode()       {}
func (*bCol) bnode()       {}
func (*bAlias) bnode()     {}
func (*bBinary) bnode()    {}
func (*bUnary) bnode()     {}
func (*bFunc) bnode()      {}
func (*bAgg) bnode()       {}
func (*bIn) bnode()        {}
func (*bExists) bnode()    {}
func (*bScalarSub) bnode() {}
func (*bBetween) bnode()   {}
func (*bLike) bnode()      {}
func (*bIsNull) bnode()    {}

// evalPredicate evaluates a boolean expression under SQL three-valued
// logic and reports whether it is definitely TRUE (NULL counts as false,
// matching WHERE/HAVING/ON semantics).
func evalPredicate(st *execState, fr *frame, e bexpr) (bool, error) {
	v, err := evalExpr(st, fr, e)
	if err != nil {
		return false, err
	}
	if v.Null {
		return false, nil
	}
	b, ok := v.BoolOK()
	if !ok {
		return false, fmt.Errorf("sqlexec: predicate evaluated to %s, want BOOL", v.T)
	}
	return b, nil
}

// evalExpr evaluates a bound expression against fr. Boolean results use
// NULL for SQL UNKNOWN.
func evalExpr(st *execState, fr *frame, e bexpr) (sqldata.Value, error) {
	switch t := e.(type) {
	case *bLit:
		return t.v, nil

	case *bCol:
		return fr.at(t.level).row[t.off], nil

	case *bAlias:
		return fr.at(t.level).proj[t.slot], nil

	case *bBinary:
		return evalBinary(st, fr, t)

	case *bUnary:
		x, err := evalExpr(st, fr, t.x)
		if err != nil {
			return sqldata.Value{}, err
		}
		switch t.op {
		case "NOT":
			if x.Null {
				return sqldata.NullValue(), nil
			}
			b, ok := x.BoolOK()
			if !ok {
				return sqldata.Value{}, fmt.Errorf("sqlexec: NOT on %s", x.T)
			}
			return sqldata.NewBool(!b), nil
		case "-":
			if x.Null {
				return sqldata.NullValue(), nil
			}
			if n, ok := x.IntOK(); ok {
				return sqldata.NewInt(-n), nil
			}
			if f, ok := x.FloatOK(); ok {
				return sqldata.NewFloat(-f), nil
			}
			return sqldata.Value{}, fmt.Errorf("sqlexec: unary minus on %s", x.T)
		}
		return sqldata.Value{}, fmt.Errorf("sqlexec: unknown unary op %q", t.op)

	case *bFunc:
		return evalScalarFunc(st, fr, t)

	case *bAgg:
		if fr.aggVals != nil {
			if v, ok := fr.aggVals[t]; ok {
				return v, nil
			}
		}
		return evalAggregate(st, fr, t)

	case *bIn:
		return evalIn(st, fr, t)

	case *bExists:
		res, err := t.sub.runSub(st, fr)
		if err != nil {
			return sqldata.Value{}, err
		}
		return sqldata.NewBool((len(res.Rows) > 0) != t.not), nil

	case *bScalarSub:
		res, err := t.sub.runSub(st, fr)
		if err != nil {
			return sqldata.Value{}, err
		}
		if len(res.Columns) != 1 {
			return sqldata.Value{}, fmt.Errorf("sqlexec: scalar sub-query must return one column, got %d", len(res.Columns))
		}
		switch len(res.Rows) {
		case 0:
			return sqldata.NullValue(), nil
		case 1:
			return res.Rows[0][0], nil
		default:
			return sqldata.Value{}, fmt.Errorf("sqlexec: scalar sub-query returned %d rows", len(res.Rows))
		}

	case *bBetween:
		x, err := evalExpr(st, fr, t.x)
		if err != nil {
			return sqldata.Value{}, err
		}
		lo, err := evalExpr(st, fr, t.lo)
		if err != nil {
			return sqldata.Value{}, err
		}
		hi, err := evalExpr(st, fr, t.hi)
		if err != nil {
			return sqldata.Value{}, err
		}
		if x.Null || lo.Null || hi.Null {
			return sqldata.NullValue(), nil
		}
		x, lo = coerceDatePair(x, lo)
		x, hi = coerceDatePair(x, hi)
		cl, err := sqldata.Compare(x, lo)
		if err != nil {
			return sqldata.Value{}, err
		}
		ch, err := sqldata.Compare(x, hi)
		if err != nil {
			return sqldata.Value{}, err
		}
		return sqldata.NewBool((cl >= 0 && ch <= 0) != t.not), nil

	case *bLike:
		x, err := evalExpr(st, fr, t.x)
		if err != nil {
			return sqldata.Value{}, err
		}
		if x.Null {
			return sqldata.NullValue(), nil
		}
		s, ok := x.TextOK()
		if !ok {
			return sqldata.Value{}, fmt.Errorf("sqlexec: LIKE on %s", x.T)
		}
		return sqldata.NewBool(likeMatch(t.pattern, s) != t.not), nil

	case *bIsNull:
		x, err := evalExpr(st, fr, t.x)
		if err != nil {
			return sqldata.Value{}, err
		}
		return sqldata.NewBool(x.Null != t.not), nil
	}
	return sqldata.Value{}, fmt.Errorf("sqlexec: unsupported bound expression %T", e)
}

func evalBinary(st *execState, fr *frame, b *bBinary) (sqldata.Value, error) {
	// AND/OR get three-valued logic; both sides are always evaluated (no
	// short-circuit), so operand errors surface regardless of the verdict.
	if b.op == "AND" || b.op == "OR" {
		l, err := evalExpr(st, fr, b.l)
		if err != nil {
			return sqldata.Value{}, err
		}
		r, err := evalExpr(st, fr, b.r)
		if err != nil {
			return sqldata.Value{}, err
		}
		lb, lNull, err := boolOrNull(l)
		if err != nil {
			return sqldata.Value{}, err
		}
		rb, rNull, err := boolOrNull(r)
		if err != nil {
			return sqldata.Value{}, err
		}
		if b.op == "AND" {
			switch {
			case !lNull && !lb, !rNull && !rb:
				return sqldata.NewBool(false), nil
			case lNull || rNull:
				return sqldata.NullValue(), nil
			default:
				return sqldata.NewBool(true), nil
			}
		}
		switch {
		case !lNull && lb, !rNull && rb:
			return sqldata.NewBool(true), nil
		case lNull || rNull:
			return sqldata.NullValue(), nil
		default:
			return sqldata.NewBool(false), nil
		}
	}

	l, err := evalExpr(st, fr, b.l)
	if err != nil {
		return sqldata.Value{}, err
	}
	r, err := evalExpr(st, fr, b.r)
	if err != nil {
		return sqldata.Value{}, err
	}
	return applyBinary(b.op, l, r)
}

// applyBinary applies a comparison or arithmetic operator to two evaluated
// operands.
func applyBinary(op string, l, r sqldata.Value) (sqldata.Value, error) {
	switch op {
	case "=", "!=", "<", "<=", ">", ">=":
		if l.Null || r.Null {
			return sqldata.NullValue(), nil
		}
		l, r = coerceDatePair(l, r)
		c, err := sqldata.Compare(l, r)
		if err != nil {
			return sqldata.Value{}, fmt.Errorf("sqlexec: %s %s %s: %w", l.SQLLiteral(), op, r.SQLLiteral(), err)
		}
		var ok bool
		switch op {
		case "=":
			ok = c == 0
		case "!=":
			ok = c != 0
		case "<":
			ok = c < 0
		case "<=":
			ok = c <= 0
		case ">":
			ok = c > 0
		case ">=":
			ok = c >= 0
		}
		return sqldata.NewBool(ok), nil

	case "+", "-", "*", "/":
		if l.Null || r.Null {
			return sqldata.NullValue(), nil
		}
		if !l.T.Numeric() || !r.T.Numeric() {
			return sqldata.Value{}, fmt.Errorf("sqlexec: arithmetic %s on %s and %s", op, l.T, r.T)
		}
		if op != "/" {
			li, lok := l.IntOK()
			ri, rok := r.IntOK()
			if lok && rok {
				switch op {
				case "+":
					return sqldata.NewInt(li + ri), nil
				case "-":
					return sqldata.NewInt(li - ri), nil
				case "*":
					return sqldata.NewInt(li * ri), nil
				}
			}
		}
		a, aok := l.FloatOK()
		bb, bok := r.FloatOK()
		if !aok || !bok {
			return sqldata.Value{}, fmt.Errorf("sqlexec: arithmetic %s on %s and %s", op, l.T, r.T)
		}
		switch op {
		case "+":
			return sqldata.NewFloat(a + bb), nil
		case "-":
			return sqldata.NewFloat(a - bb), nil
		case "*":
			return sqldata.NewFloat(a * bb), nil
		default:
			if bb == 0 {
				return sqldata.NullValue(), nil // SQL engines raise; NULL keeps workloads total
			}
			return sqldata.NewFloat(a / bb), nil
		}
	}
	return sqldata.Value{}, fmt.Errorf("sqlexec: unknown operator %q", op)
}

func boolOrNull(v sqldata.Value) (b, isNull bool, err error) {
	if v.Null {
		return false, true, nil
	}
	bv, ok := v.BoolOK()
	if !ok {
		return false, false, fmt.Errorf("sqlexec: expected BOOL, got %s", v.T)
	}
	return bv, false, nil
}

// evalAggregate computes COUNT/SUM/AVG/MIN/MAX over the current group. The
// group check stays a runtime error (not a bind rejection): an aggregate in
// WHERE only fails on rows that are actually evaluated, so an empty input
// silently succeeds — exactly like the tree-walker did.
func evalAggregate(st *execState, fr *frame, f *bAgg) (sqldata.Value, error) {
	if fr.group == nil {
		return sqldata.Value{}, fmt.Errorf("sqlexec: aggregate %s outside grouped context", f.name)
	}
	if f.star {
		if f.name != "COUNT" {
			return sqldata.Value{}, fmt.Errorf("sqlexec: %s(*) is not valid", f.name)
		}
		return sqldata.NewInt(int64(len(fr.group))), nil
	}
	if f.arg == nil {
		// The binder leaves the argument nil on wrong arity, so the error
		// stays a runtime one — an empty input never reaches it.
		return sqldata.Value{}, fmt.Errorf("sqlexec: %s expects one argument", f.name)
	}

	var vals []sqldata.Value
	seen := map[string]bool{}
	for _, r := range fr.group {
		if err := st.tick(); err != nil {
			return sqldata.Value{}, err
		}
		// The per-row frame drops the group (nested aggregates error) and
		// the aliases, and chains to the statement's parent.
		rowFr := &frame{row: r, parent: fr.parent}
		v, err := evalExpr(st, rowFr, f.arg)
		if err != nil {
			return sqldata.Value{}, err
		}
		if v.Null {
			continue // aggregates skip NULLs
		}
		if f.distinct {
			k := v.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}

	switch f.name {
	case "COUNT":
		return sqldata.NewInt(int64(len(vals))), nil
	case "SUM", "AVG":
		if len(vals) == 0 {
			return sqldata.NullValue(), nil
		}
		allInt := true
		sum := 0.0
		var ihi, ilo uint64 // 128-bit two's-complement integer SUM accumulator
		for _, v := range vals {
			fv, ok := v.FloatOK()
			if !ok {
				return sqldata.Value{}, fmt.Errorf("sqlexec: %s over %s", f.name, v.T)
			}
			if iv, isInt := v.IntOK(); isInt {
				ihi, ilo = add128(ihi, ilo, iv)
			} else {
				allInt = false
			}
			sum += fv
		}
		if f.name == "SUM" {
			if allInt {
				// The 128-bit accumulator cannot wrap (that would take
				// 2^64 addends), so an out-of-int64-range total is
				// detected exactly and promoted to float instead of
				// silently wrapping.
				return int128Value(ihi, ilo), nil
			}
			return sqldata.NewFloat(sum), nil
		}
		return sqldata.NewFloat(sum / float64(len(vals))), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return sqldata.NullValue(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c, err := sqldata.Compare(v, best)
			if err != nil {
				return sqldata.Value{}, err
			}
			if (f.name == "MIN" && c < 0) || (f.name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	}
	return sqldata.Value{}, fmt.Errorf("sqlexec: unknown aggregate %q", f.name)
}

// add128 adds a sign-extended int64 into a 128-bit two's-complement
// accumulator. SUM over int64 columns uses it so overflow of the int64
// range is detected exactly rather than wrapping silently — and since
// 128-bit integer addition is associative, the total is independent of
// accumulation order, which the vectorized executor's join reordering
// depends on.
func add128(hi, lo uint64, v int64) (uint64, uint64) {
	vhi := uint64(v >> 63) // arithmetic shift: sign extension
	nlo, carry := bits.Add64(lo, uint64(v), 0)
	nhi, _ := bits.Add64(hi, vhi, carry)
	return nhi, nlo
}

// int128Value renders a 128-bit two's-complement total as an INT when it
// fits int64, else as the nearest FLOAT (the overflow-promotion case).
func int128Value(hi, lo uint64) sqldata.Value {
	if (hi == 0 && lo < 1<<63) || (hi == ^uint64(0) && lo >= 1<<63) {
		return sqldata.NewInt(int64(lo))
	}
	// value = int64(hi)·2^64 + lo; hi is small (bounded by the addend
	// count), so the first term is exact and the result deterministic.
	return sqldata.NewFloat(math.Ldexp(float64(int64(hi)), 64) + float64(lo))
}

// evalScalarFunc evaluates the small set of supported scalar functions.
func evalScalarFunc(st *execState, fr *frame, f *bFunc) (sqldata.Value, error) {
	if len(f.args) != 1 {
		return sqldata.Value{}, fmt.Errorf("sqlexec: function %s expects one argument", f.name)
	}
	x, err := evalExpr(st, fr, f.args[0])
	if err != nil {
		return sqldata.Value{}, err
	}
	if x.Null {
		return sqldata.NullValue(), nil
	}
	switch f.name {
	case "LOWER":
		s, ok := x.TextOK()
		if !ok {
			return sqldata.Value{}, fmt.Errorf("sqlexec: LOWER on %s", x.T)
		}
		return sqldata.NewText(strings.ToLower(s)), nil
	case "UPPER":
		s, ok := x.TextOK()
		if !ok {
			return sqldata.Value{}, fmt.Errorf("sqlexec: UPPER on %s", x.T)
		}
		return sqldata.NewText(strings.ToUpper(s)), nil
	case "ABS":
		if v, ok := x.IntOK(); ok {
			if v < 0 {
				v = -v
			}
			return sqldata.NewInt(v), nil
		}
		if v, ok := x.FloatOK(); ok && x.T == sqldata.TypeFloat {
			if v < 0 {
				v = -v
			}
			return sqldata.NewFloat(v), nil
		}
		return sqldata.Value{}, fmt.Errorf("sqlexec: ABS on %s", x.T)
	case "YEAR":
		tm, ok := x.TimeOK()
		if !ok {
			return sqldata.Value{}, fmt.Errorf("sqlexec: YEAR on %s", x.T)
		}
		return sqldata.NewInt(int64(tm.Year())), nil
	}
	return sqldata.Value{}, fmt.Errorf("sqlexec: unknown function %q", f.name)
}

// evalIn evaluates list and sub-query IN with SQL NULL semantics: if no
// element matches but some element (or the probe) is NULL, the result is
// UNKNOWN rather than FALSE.
func evalIn(st *execState, fr *frame, in *bIn) (sqldata.Value, error) {
	x, err := evalExpr(st, fr, in.x)
	if err != nil {
		return sqldata.Value{}, err
	}

	var elems []sqldata.Value
	if in.sub != nil {
		res, err := in.sub.runSub(st, fr)
		if err != nil {
			return sqldata.Value{}, err
		}
		if len(res.Columns) != 1 {
			return sqldata.Value{}, fmt.Errorf("sqlexec: IN sub-query must return one column, got %d", len(res.Columns))
		}
		for _, r := range res.Rows {
			elems = append(elems, r[0])
		}
	} else {
		for _, e := range in.list {
			v, err := evalExpr(st, fr, e)
			if err != nil {
				return sqldata.Value{}, err
			}
			elems = append(elems, v)
		}
	}

	if x.Null {
		if len(elems) == 0 {
			return sqldata.NewBool(in.not), nil // x IN () is FALSE even for NULL probe
		}
		return sqldata.NullValue(), nil
	}
	sawNull := false
	for _, e := range elems {
		if e.Null {
			sawNull = true
			continue
		}
		x2, e2 := coerceDatePair(x, e)
		c, err := sqldata.Compare(x2, e2)
		if err != nil {
			return sqldata.Value{}, err
		}
		if c == 0 {
			return sqldata.NewBool(!in.not), nil
		}
	}
	if sawNull {
		return sqldata.NullValue(), nil
	}
	return sqldata.NewBool(in.not), nil
}

// coerceDatePair upgrades an ISO-formatted TEXT operand to DATE when the
// other operand is a DATE, so NL-generated SQL like hired > '2018-01-01'
// compares chronologically. Non-date-shaped text is left alone (Compare
// will then report the type error).
func coerceDatePair(a, b sqldata.Value) (sqldata.Value, sqldata.Value) {
	if a.T == sqldata.TypeDate && b.T == sqldata.TypeText {
		if d, err := sqldata.ParseDate(b.Text()); err == nil {
			return a, d
		}
	}
	if a.T == sqldata.TypeText && b.T == sqldata.TypeDate {
		if d, err := sqldata.ParseDate(a.Text()); err == nil {
			return d, b
		}
	}
	return a, b
}

// likeMatch implements SQL LIKE with % (any run) and _ (any single rune),
// case-insensitively (the common NLIDB-friendly collation). Classic
// two-pointer wildcard matching, linear in practice.
func likeMatch(pattern, s string) bool {
	p := []rune(strings.ToLower(pattern))
	t := []rune(strings.ToLower(s))
	pi, ti := 0, 0
	star, starTi := -1, 0
	for ti < len(t) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == t[ti]):
			pi++
			ti++
		case pi < len(p) && p[pi] == '%':
			star = pi
			starTi = ti
			pi++
		case star >= 0:
			pi = star + 1
			starTi++
			ti = starTi
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}
