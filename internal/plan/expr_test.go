package plan

import "testing"

func TestLikeMatcher(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"%", "", true},
		{"%", "anything", true},
		{"a%", "alice", true},
		{"a%", "bob", false},
		{"%ce", "alice", true},
		{"%li%", "alice", true},
		{"_ob", "bob", true},
		{"_ob", "blob", false},
		{"a_c%", "abcdef", true},
		{"", "", true},
		{"", "x", false},
		{"ALICE", "alice", true}, // case-insensitive
		{"%x%y%", "axbyc", true},
		{"%x%y%", "aybxc", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.pat, c.s); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.pat, c.s, got, c.want)
		}
	}
}
