package plan

import (
	"context"
	"testing"

	"nlidb/internal/sqldata"
	"nlidb/internal/sqlparse"
)

// fuzzDB builds the small fixed database FuzzPlanExec executes against.
// Tables and columns mirror the sqlparse fuzz seed vocabulary (customer,
// orders, product, category; name/city/total/status/placed/credit/...),
// so mutated seeds keep resolving. "name" appears in three tables to
// exercise ambiguity handling, and NULLs are sprinkled through nullable
// columns to exercise three-valued logic and join padding.
func fuzzDB() *sqldata.Database {
	db := sqldata.NewDatabase("fuzz")
	null := sqldata.NullValue()
	customer, err := db.CreateTable(&sqldata.Schema{
		Name: "customer",
		Columns: []sqldata.Column{
			{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
			{Name: "name", Type: sqldata.TypeText},
			{Name: "city", Type: sqldata.TypeText},
			{Name: "credit", Type: sqldata.TypeFloat},
		},
	})
	if err != nil {
		panic(err)
	}
	customer.MustInsert(sqldata.NewInt(1), sqldata.NewText("alice"), sqldata.NewText("Berlin"), sqldata.NewFloat(1200))
	customer.MustInsert(sqldata.NewInt(2), sqldata.NewText("bob"), sqldata.NewText("Paris"), sqldata.NewFloat(80.5))
	customer.MustInsert(sqldata.NewInt(3), sqldata.NewText("carol"), null, sqldata.NewFloat(0))
	customer.MustInsert(sqldata.NewInt(4), sqldata.NewText("dave"), sqldata.NewText("Berlin"), null)
	customer.MustInsert(sqldata.NewInt(5), null, sqldata.NewText("Oslo"), sqldata.NewFloat(-3))

	orders, err := db.CreateTable(&sqldata.Schema{
		Name: "orders",
		Columns: []sqldata.Column{
			{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
			{Name: "customer_id", Type: sqldata.TypeInt},
			{Name: "total", Type: sqldata.TypeFloat},
			{Name: "status", Type: sqldata.TypeText},
			{Name: "placed", Type: sqldata.TypeDate},
		},
	})
	if err != nil {
		panic(err)
	}
	orders.MustInsert(sqldata.NewInt(10), sqldata.NewInt(1), sqldata.NewFloat(250), sqldata.NewText("done"), sqldata.NewDate(2018, 3, 14))
	orders.MustInsert(sqldata.NewInt(11), sqldata.NewInt(1), sqldata.NewFloat(99.5), sqldata.NewText("open"), sqldata.NewDate(2019, 7, 2))
	orders.MustInsert(sqldata.NewInt(12), sqldata.NewInt(2), sqldata.NewFloat(600), sqldata.NewText("done"), sqldata.NewDate(2020, 1, 1))
	orders.MustInsert(sqldata.NewInt(13), sqldata.NewInt(3), null, sqldata.NewText("open"), null)
	orders.MustInsert(sqldata.NewInt(14), sqldata.NewInt(99), sqldata.NewFloat(5), null, sqldata.NewDate(2018, 12, 31))

	product, err := db.CreateTable(&sqldata.Schema{
		Name: "product",
		Columns: []sqldata.Column{
			{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
			{Name: "name", Type: sqldata.TypeText},
			{Name: "category_id", Type: sqldata.TypeInt},
		},
	})
	if err != nil {
		panic(err)
	}
	product.MustInsert(sqldata.NewInt(100), sqldata.NewText("anvil"), sqldata.NewInt(1))
	product.MustInsert(sqldata.NewInt(101), sqldata.NewText("rocket"), sqldata.NewInt(2))
	product.MustInsert(sqldata.NewInt(102), sqldata.NewText("spring"), null)

	category, err := db.CreateTable(&sqldata.Schema{
		Name: "category",
		Columns: []sqldata.Column{
			{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
			{Name: "name", Type: sqldata.TypeText},
		},
	})
	if err != nil {
		panic(err)
	}
	category.MustInsert(sqldata.NewInt(1), sqldata.NewText("tools"))
	category.MustInsert(sqldata.NewInt(2), sqldata.NewText("toys"))
	return db
}

// fuzzBudget bounds the planned side so mutated join/sub-query towers
// terminate quickly; the naive side runs unbounded only after the planned
// side succeeded within these limits, which caps its cost too (the tables
// are a handful of rows).
func fuzzBudget() Budget {
	return Budget{MaxRows: 50_000, MaxJoinRows: 200_000, MaxSubqueries: 2_000}
}

// sameResult reports whether two results agree on columns and on rows
// (ordered — both evaluators produce deterministic first-appearance
// order, and the planner is required to preserve it).
func sameResult(a, b *sqldata.Result) bool {
	if len(a.Columns) != len(b.Columns) || len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Columns {
		if a.Columns[i] != b.Columns[i] {
			return false
		}
	}
	for i := range a.Rows {
		if a.Rows[i].Key() != b.Rows[i].Key() {
			return false
		}
	}
	return true
}

// FuzzPlanExec differentially fuzzes the bind/plan/execute pipeline
// against the retained naive tree-walking evaluator (naive_test.go): any
// statement the parser accepts is run through both, and when both
// succeed their results must agree exactly. Divergent errors are allowed
// — the planner reports unknown tables/columns at bind time and fixed
// the naive zero-output-join aggregate bug — but a success/success
// mismatch is a planner defect.
// Run with: go test -run=^$ -fuzz=FuzzPlanExec ./internal/plan
func FuzzPlanExec(f *testing.F) {
	seeds := []string{
		// The sqlparse fuzz seed corpus: benchdata gold shapes over the
		// same table vocabulary fuzzDB serves.
		"SELECT name FROM customer WHERE city = 'Berlin'",
		"SELECT * FROM orders WHERE total > 100.5 AND status != 'done'",
		"SELECT city, COUNT(*) FROM customer GROUP BY city ORDER BY COUNT(*) DESC LIMIT 3",
		"SELECT AVG(total) FROM orders WHERE placed BETWEEN '2018-01-01' AND '2019-12-31'",
		"SELECT customer.name, SUM(orders.total) FROM customer JOIN orders ON customer.id = orders.customer_id GROUP BY customer.name",
		"SELECT p.name FROM product AS p LEFT JOIN category AS c ON p.category_id = c.id WHERE c.name IS NOT NULL",
		"SELECT name FROM customer WHERE id IN (SELECT customer_id FROM orders WHERE total > 500)",
		"SELECT name FROM customer WHERE NOT EXISTS (SELECT id FROM orders WHERE orders.customer_id = customer.id)",
		"SELECT city FROM customer GROUP BY city HAVING COUNT(*) > (SELECT COUNT(*) FROM orders) ORDER BY city",
		"SELECT DISTINCT LOWER(name) FROM customer WHERE name LIKE 'a%' OR credit BETWEEN 1 AND 2;",
		// Plan-shape stressors: non-equi joins, pushdown candidates,
		// NULL-key joins, aliases, empty-join aggregates.
		"SELECT c.name, o.total FROM customer AS c JOIN orders AS o ON c.id = o.customer_id WHERE c.city = 'Berlin' AND o.total > 100",
		"SELECT c.name FROM customer AS c JOIN orders AS o ON c.credit > o.total",
		"SELECT c.name FROM customer AS c LEFT JOIN orders AS o ON c.id = o.customer_id AND o.status = 'done'",
		"SELECT MAX(total) FROM orders JOIN customer ON orders.customer_id = customer.id WHERE customer.city = 'Atlantis'",
		"SELECT status, COUNT(DISTINCT customer_id) FROM orders GROUP BY status ORDER BY status",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	db := fuzzDB()
	ctx := context.Background()
	f.Fuzz(func(t *testing.T, sql string) {
		if len(sql) > 2000 {
			return // bound bind/recursion depth
		}
		stmt, err := sqlparse.Parse(sql)
		if err != nil {
			return
		}
		p, err := Prepare(db, stmt)
		if err != nil {
			return // bind-time rejection; naive may or may not agree
		}
		pRes, pu, pErr := p.Run(ctx, fuzzBudget())
		if pErr != nil {
			return // runtime/budget error; message parity is not required
		}
		if p.Vectorized() {
			// Second differential axis: the vectorized executor against
			// the row executor on the identical statement. When the
			// optimizer kept the syntactic join order, results AND
			// budget metering must agree exactly; a reordered join tree
			// legitimately changes intermediate join cardinalities, so
			// there only the (order-preserving) results are compared.
			reordered := false
			for i, k := range p.vec.order {
				if k != i {
					reordered = true
				}
			}
			rp, rpErr := PrepareOpts(db, stmt, Options{NoVector: true})
			if rpErr != nil {
				t.Fatalf("NoVector prepare diverged for %q: %v", sql, rpErr)
			}
			rRes, ru, rErr := rp.Run(ctx, fuzzBudget())
			if rErr != nil {
				if reordered {
					return // e.g. the syntactic order tripped a budget the chosen order avoids
				}
				t.Fatalf("row executor failed where vectorized succeeded for %q: %v", sql, rErr)
			}
			if !sameResult(rRes, pRes) {
				t.Fatalf("vectorized mismatch for %q:\nrow: cols=%v rows=%v\nvec: cols=%v rows=%v",
					sql, rRes.Columns, rRes.Rows, pRes.Columns, pRes.Rows)
			}
			if !reordered && ru != pu {
				t.Fatalf("usage mismatch for %q: row %+v vec %+v", sql, ru, pu)
			}
		}
		nRes, nErr := naiveRun(db, stmt, nil)
		if nErr != nil {
			// Known one-sided divergence: the planner fixed the naive
			// zero-output-join aggregate error, so naive may fail where
			// the plan succeeds. Never the gate for a mismatch report.
			return
		}
		if !sameResult(nRes, pRes) {
			t.Fatalf("differential mismatch for %q:\nnaive: cols=%v rows=%v\nplan:  cols=%v rows=%v",
				sql, nRes.Columns, nRes.Rows, pRes.Columns, pRes.Rows)
		}
	})
}
