package plan

// This file retains, verbatim in structure, the pre-planner tree-walking
// evaluator that package sqlexec used before the bind/plan/execute split
// (budget and tracing hooks stripped). It exists only as the reference
// oracle for FuzzPlanExec: the planned pipeline must agree with this
// naive evaluator on every statement both can execute. Do not "improve"
// it — its value is that it stays dumb.
//
// One known, deliberate divergence: this copy preserves the old nil-rows
// behavior where a zero-output join feeds a nil global aggregate group
// and errors with "aggregate outside grouped context"; the planner fixed
// that (COUNT over an empty join is 0). The fuzz oracle therefore only
// compares runs where both sides succeed.

import (
	"fmt"
	"sort"
	"strings"

	"nlidb/internal/sqldata"
	"nlidb/internal/sqlparse"
)

// nBoundTable is one table visible in a naive query scope.
type nBoundTable struct {
	name   string // effective name (alias or table name), lower-case
	schema *sqldata.Schema
	off    int
}

// nScope is the set of tables a naive statement's expressions reference.
type nScope struct {
	tables []nBoundTable
	width  int
}

func (s *nScope) add(name string, schema *sqldata.Schema) error {
	lname := strings.ToLower(name)
	for _, t := range s.tables {
		if t.name == lname {
			return fmt.Errorf("sqlexec: duplicate table name %q in FROM; use aliases", name)
		}
	}
	s.tables = append(s.tables, nBoundTable{name: lname, schema: schema, off: s.width})
	s.width += len(schema.Columns)
	return nil
}

func (s *nScope) resolve(table, col string) (int, error) {
	ltable, lcol := strings.ToLower(table), strings.ToLower(col)
	found := -1
	for _, t := range s.tables {
		if ltable != "" && t.name != ltable && !strings.EqualFold(t.schema.Name, table) {
			continue
		}
		if i := t.schema.ColumnIndex(lcol); i >= 0 {
			if found >= 0 {
				return 0, fmt.Errorf("sqlexec: ambiguous column %q", col)
			}
			found = t.off + i
		}
	}
	if found < 0 {
		return 0, fmt.Errorf("sqlexec: unknown column %s.%s", table, col)
	}
	return found, nil
}

// nCtx carries naive evaluation state: the database (for sub-queries),
// scope, current tuple, current group, select-item aliases, and the
// enclosing context for correlated sub-queries.
type nCtx struct {
	db        *sqldata.Database
	scope     *nScope
	row       sqldata.Row
	groupRows []sqldata.Row
	aliases   map[string]sqldata.Value
	parent    *nCtx
}

func naiveRun(db *sqldata.Database, stmt *sqlparse.SelectStmt, parent *nCtx) (*sqldata.Result, error) {
	if len(stmt.Items) == 0 {
		return nil, fmt.Errorf("sqlexec: empty select list")
	}
	if stmt.From == nil {
		return nil, fmt.Errorf("sqlexec: missing FROM clause")
	}

	sc := &nScope{}
	rows, err := naiveFrom(db, stmt.From, sc, parent)
	if err != nil {
		return nil, err
	}

	if stmt.Where != nil {
		kept := rows[:0]
		for _, r := range rows {
			ctx := &nCtx{db: db, scope: sc, row: r, parent: parent}
			ok, err := naivePredicate(ctx, stmt.Where)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, r)
			}
		}
		rows = kept
	}

	grouped := len(stmt.GroupBy) > 0 || stmt.HasAggregate()

	type outRow struct {
		proj sqldata.Row
		keys []sqldata.Value
	}
	var out []outRow
	headers, err := naiveHeaders(stmt, sc)
	if err != nil {
		return nil, err
	}

	project := func(ctx *nCtx) (sqldata.Row, error) {
		var proj sqldata.Row
		ctx.aliases = map[string]sqldata.Value{}
		for _, it := range stmt.Items {
			if it.Star {
				vals, err := naiveExpandStar(ctx, it.StarTable)
				if err != nil {
					return nil, err
				}
				proj = append(proj, vals...)
				continue
			}
			v, err := naiveExpr(ctx, it.Expr)
			if err != nil {
				return nil, err
			}
			if it.Alias != "" {
				ctx.aliases[strings.ToLower(it.Alias)] = v
			}
			proj = append(proj, v)
		}
		return proj, nil
	}

	orderKeys := func(ctx *nCtx) ([]sqldata.Value, error) {
		keys := make([]sqldata.Value, len(stmt.OrderBy))
		for i, o := range stmt.OrderBy {
			v, err := naiveExpr(ctx, o.Expr)
			if err != nil {
				return nil, err
			}
			keys[i] = v
		}
		return keys, nil
	}

	if grouped {
		groups, order, err := naiveGroupRows(db, rows, stmt.GroupBy, sc, parent)
		if err != nil {
			return nil, err
		}
		for _, key := range order {
			g := groups[key]
			var rep sqldata.Row
			if len(g) > 0 {
				rep = g[0]
			} else {
				rep = nullRow(sc.width)
			}
			ctx := &nCtx{db: db, scope: sc, row: rep, groupRows: g, parent: parent}
			if stmt.Having != nil {
				ok, err := naivePredicate(ctx, stmt.Having)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			proj, err := project(ctx)
			if err != nil {
				return nil, err
			}
			keys, err := orderKeys(ctx)
			if err != nil {
				return nil, err
			}
			out = append(out, outRow{proj: proj, keys: keys})
		}
	} else {
		if stmt.Having != nil {
			return nil, fmt.Errorf("sqlexec: HAVING without GROUP BY or aggregates")
		}
		for _, r := range rows {
			ctx := &nCtx{db: db, scope: sc, row: r, parent: parent}
			proj, err := project(ctx)
			if err != nil {
				return nil, err
			}
			keys, err := orderKeys(ctx)
			if err != nil {
				return nil, err
			}
			out = append(out, outRow{proj: proj, keys: keys})
		}
	}

	if len(stmt.OrderBy) > 0 {
		var sortErr error
		sort.SliceStable(out, func(i, j int) bool {
			for k, o := range stmt.OrderBy {
				a, b := out[i].keys[k], out[j].keys[k]
				if a.Null || b.Null {
					if a.Null && b.Null {
						continue
					}
					return a.Null != o.Desc
				}
				c, err := sqldata.Compare(a, b)
				if err != nil {
					sortErr = err
					return false
				}
				if c != 0 {
					if o.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
		if sortErr != nil {
			return nil, sortErr
		}
	}

	result := &sqldata.Result{Columns: headers}
	seen := map[string]bool{}
	for _, o := range out {
		if stmt.Distinct {
			k := o.proj.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		result.Rows = append(result.Rows, o.proj)
		if stmt.Limit >= 0 && len(result.Rows) >= stmt.Limit {
			break
		}
	}
	if stmt.Limit == 0 {
		result.Rows = nil
	}
	return result, nil
}

func naiveFrom(db *sqldata.Database, from *sqlparse.FromClause, sc *nScope, parent *nCtx) ([]sqldata.Row, error) {
	baseRows := func(ref sqlparse.TableRef) (*sqldata.Table, error) {
		t := db.Table(ref.Name)
		if t == nil {
			return nil, fmt.Errorf("sqlexec: unknown table %q", ref.Name)
		}
		return t, nil
	}

	first, err := baseRows(from.First)
	if err != nil {
		return nil, err
	}
	if err := sc.add(from.First.EffName(), first.Schema); err != nil {
		return nil, err
	}
	rows := make([]sqldata.Row, len(first.Rows))
	for i, r := range first.Rows {
		rows[i] = r.Clone()
	}

	for _, j := range from.Joins {
		right, err := baseRows(j.Table)
		if err != nil {
			return nil, err
		}
		if err := sc.add(j.Table.EffName(), right.Schema); err != nil {
			return nil, err
		}
		rwidth := len(right.Schema.Columns)
		var joined []sqldata.Row
		for _, l := range rows {
			matched := false
			for _, r := range right.Rows {
				combined := append(append(sqldata.Row{}, l...), r...)
				ctx := &nCtx{db: db, scope: sc, row: combined, parent: parent}
				ok, err := naivePredicate(ctx, j.On)
				if err != nil {
					return nil, err
				}
				if ok {
					matched = true
					joined = append(joined, combined)
				}
			}
			if !matched && j.Type == sqlparse.JoinLeft {
				joined = append(joined, append(append(sqldata.Row{}, l...), nullRow(rwidth)...))
			}
		}
		rows = joined
	}
	return rows, nil
}

func naiveHeaders(stmt *sqlparse.SelectStmt, sc *nScope) ([]string, error) {
	var h []string
	for _, it := range stmt.Items {
		if it.Star {
			for _, t := range sc.tables {
				if it.StarTable != "" && t.name != strings.ToLower(it.StarTable) {
					continue
				}
				for _, c := range t.schema.Columns {
					h = append(h, c.Name)
				}
			}
			continue
		}
		switch {
		case it.Alias != "":
			h = append(h, it.Alias)
		default:
			h = append(h, it.Expr.String())
		}
	}
	if len(h) == 0 {
		return nil, fmt.Errorf("sqlexec: star matched no tables")
	}
	return h, nil
}

func naiveExpandStar(ctx *nCtx, starTable string) ([]sqldata.Value, error) {
	var vals []sqldata.Value
	for _, t := range ctx.scope.tables {
		if starTable != "" && t.name != strings.ToLower(starTable) {
			continue
		}
		for i := range t.schema.Columns {
			vals = append(vals, ctx.row[t.off+i])
		}
	}
	if len(vals) == 0 {
		return nil, fmt.Errorf("sqlexec: %s.* matched no table", starTable)
	}
	return vals, nil
}

func naiveGroupRows(db *sqldata.Database, rows []sqldata.Row, keys []sqlparse.Expr, sc *nScope, parent *nCtx) (map[string][]sqldata.Row, []string, error) {
	groups := map[string][]sqldata.Row{}
	var order []string
	if len(keys) == 0 {
		groups[""] = rows
		return groups, []string{""}, nil
	}
	for _, r := range rows {
		ctx := &nCtx{db: db, scope: sc, row: r, parent: parent}
		var sb strings.Builder
		for _, k := range keys {
			v, err := naiveExpr(ctx, k)
			if err != nil {
				sb.WriteString("\x00ERR")
				continue
			}
			sb.WriteString(v.Key())
			sb.WriteByte(0x1f)
		}
		k := sb.String()
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}
	return groups, order, nil
}

func naivePredicate(ctx *nCtx, e sqlparse.Expr) (bool, error) {
	v, err := naiveExpr(ctx, e)
	if err != nil {
		return false, err
	}
	if v.Null {
		return false, nil
	}
	b, ok := v.BoolOK()
	if !ok {
		return false, fmt.Errorf("sqlexec: predicate evaluated to %s, want BOOL", v.T)
	}
	return b, nil
}

func naiveExpr(ctx *nCtx, e sqlparse.Expr) (sqldata.Value, error) {
	switch t := e.(type) {
	case *sqlparse.Literal:
		return t.Val, nil

	case *sqlparse.ColumnRef:
		return naiveColumn(ctx, t)

	case *sqlparse.BinaryExpr:
		return naiveBinary(ctx, t)

	case *sqlparse.UnaryExpr:
		x, err := naiveExpr(ctx, t.X)
		if err != nil {
			return sqldata.Value{}, err
		}
		switch t.Op {
		case "NOT":
			if x.Null {
				return sqldata.NullValue(), nil
			}
			b, ok := x.BoolOK()
			if !ok {
				return sqldata.Value{}, fmt.Errorf("sqlexec: NOT on %s", x.T)
			}
			return sqldata.NewBool(!b), nil
		case "-":
			if x.Null {
				return sqldata.NullValue(), nil
			}
			if n, ok := x.IntOK(); ok {
				return sqldata.NewInt(-n), nil
			}
			if f, ok := x.FloatOK(); ok {
				return sqldata.NewFloat(-f), nil
			}
			return sqldata.Value{}, fmt.Errorf("sqlexec: unary minus on %s", x.T)
		}
		return sqldata.Value{}, fmt.Errorf("sqlexec: unknown unary op %q", t.Op)

	case *sqlparse.FuncCall:
		if t.IsAggregate() {
			return naiveAggregate(ctx, t)
		}
		return naiveScalarFunc(ctx, t)

	case *sqlparse.InExpr:
		return naiveIn(ctx, t)

	case *sqlparse.ExistsExpr:
		res, err := naiveRun(ctx.db, t.Sub, ctx)
		if err != nil {
			return sqldata.Value{}, err
		}
		return sqldata.NewBool((len(res.Rows) > 0) != t.Not), nil

	case *sqlparse.SubqueryExpr:
		return naiveScalarSub(ctx, t.Sub)

	case *sqlparse.BetweenExpr:
		x, err := naiveExpr(ctx, t.X)
		if err != nil {
			return sqldata.Value{}, err
		}
		lo, err := naiveExpr(ctx, t.Lo)
		if err != nil {
			return sqldata.Value{}, err
		}
		hi, err := naiveExpr(ctx, t.Hi)
		if err != nil {
			return sqldata.Value{}, err
		}
		if x.Null || lo.Null || hi.Null {
			return sqldata.NullValue(), nil
		}
		x, lo = coerceDatePair(x, lo)
		x, hi = coerceDatePair(x, hi)
		cl, err := sqldata.Compare(x, lo)
		if err != nil {
			return sqldata.Value{}, err
		}
		ch, err := sqldata.Compare(x, hi)
		if err != nil {
			return sqldata.Value{}, err
		}
		return sqldata.NewBool((cl >= 0 && ch <= 0) != t.Not), nil

	case *sqlparse.LikeExpr:
		x, err := naiveExpr(ctx, t.X)
		if err != nil {
			return sqldata.Value{}, err
		}
		if x.Null {
			return sqldata.NullValue(), nil
		}
		s, ok := x.TextOK()
		if !ok {
			return sqldata.Value{}, fmt.Errorf("sqlexec: LIKE on %s", x.T)
		}
		return sqldata.NewBool(likeMatch(t.Pattern, s) != t.Not), nil

	case *sqlparse.IsNullExpr:
		x, err := naiveExpr(ctx, t.X)
		if err != nil {
			return sqldata.Value{}, err
		}
		return sqldata.NewBool(x.Null != t.Not), nil
	}
	return sqldata.Value{}, fmt.Errorf("sqlexec: unsupported expression %T", e)
}

func naiveColumn(ctx *nCtx, c *sqlparse.ColumnRef) (sqldata.Value, error) {
	for cur := ctx; cur != nil; cur = cur.parent {
		if off, err := cur.scope.resolve(c.Table, c.Column); err == nil {
			return cur.row[off], nil
		}
		if c.Table == "" && cur.aliases != nil {
			if v, ok := cur.aliases[strings.ToLower(c.Column)]; ok {
				return v, nil
			}
		}
	}
	return sqldata.Value{}, fmt.Errorf("sqlexec: cannot resolve column %s", c)
}

func naiveBinary(ctx *nCtx, b *sqlparse.BinaryExpr) (sqldata.Value, error) {
	if b.Op == "AND" || b.Op == "OR" {
		l, err := naiveExpr(ctx, b.L)
		if err != nil {
			return sqldata.Value{}, err
		}
		r, err := naiveExpr(ctx, b.R)
		if err != nil {
			return sqldata.Value{}, err
		}
		lb, lNull, err := naiveBoolOrNull(l)
		if err != nil {
			return sqldata.Value{}, err
		}
		rb, rNull, err := naiveBoolOrNull(r)
		if err != nil {
			return sqldata.Value{}, err
		}
		if b.Op == "AND" {
			switch {
			case !lNull && !lb, !rNull && !rb:
				return sqldata.NewBool(false), nil
			case lNull || rNull:
				return sqldata.NullValue(), nil
			default:
				return sqldata.NewBool(true), nil
			}
		}
		switch {
		case !lNull && lb, !rNull && rb:
			return sqldata.NewBool(true), nil
		case lNull || rNull:
			return sqldata.NullValue(), nil
		default:
			return sqldata.NewBool(false), nil
		}
	}

	l, err := naiveExpr(ctx, b.L)
	if err != nil {
		return sqldata.Value{}, err
	}
	r, err := naiveExpr(ctx, b.R)
	if err != nil {
		return sqldata.Value{}, err
	}

	switch b.Op {
	case "=", "!=", "<", "<=", ">", ">=":
		if l.Null || r.Null {
			return sqldata.NullValue(), nil
		}
		l, r = coerceDatePair(l, r)
		c, err := sqldata.Compare(l, r)
		if err != nil {
			return sqldata.Value{}, fmt.Errorf("sqlexec: %s: %w", b, err)
		}
		var ok bool
		switch b.Op {
		case "=":
			ok = c == 0
		case "!=":
			ok = c != 0
		case "<":
			ok = c < 0
		case "<=":
			ok = c <= 0
		case ">":
			ok = c > 0
		case ">=":
			ok = c >= 0
		}
		return sqldata.NewBool(ok), nil

	case "+", "-", "*", "/":
		if l.Null || r.Null {
			return sqldata.NullValue(), nil
		}
		if !l.T.Numeric() || !r.T.Numeric() {
			return sqldata.Value{}, fmt.Errorf("sqlexec: arithmetic %s on %s and %s", b.Op, l.T, r.T)
		}
		if b.Op != "/" {
			li, lok := l.IntOK()
			ri, rok := r.IntOK()
			if lok && rok {
				switch b.Op {
				case "+":
					return sqldata.NewInt(li + ri), nil
				case "-":
					return sqldata.NewInt(li - ri), nil
				case "*":
					return sqldata.NewInt(li * ri), nil
				}
			}
		}
		a, aok := l.FloatOK()
		bb, bok := r.FloatOK()
		if !aok || !bok {
			return sqldata.Value{}, fmt.Errorf("sqlexec: arithmetic %s on %s and %s", b.Op, l.T, r.T)
		}
		switch b.Op {
		case "+":
			return sqldata.NewFloat(a + bb), nil
		case "-":
			return sqldata.NewFloat(a - bb), nil
		case "*":
			return sqldata.NewFloat(a * bb), nil
		default:
			if bb == 0 {
				return sqldata.NullValue(), nil
			}
			return sqldata.NewFloat(a / bb), nil
		}
	}
	return sqldata.Value{}, fmt.Errorf("sqlexec: unknown operator %q", b.Op)
}

func naiveBoolOrNull(v sqldata.Value) (b, isNull bool, err error) {
	if v.Null {
		return false, true, nil
	}
	bv, ok := v.BoolOK()
	if !ok {
		return false, false, fmt.Errorf("sqlexec: expected BOOL, got %s", v.T)
	}
	return bv, false, nil
}

func naiveAggregate(ctx *nCtx, f *sqlparse.FuncCall) (sqldata.Value, error) {
	if ctx.groupRows == nil {
		return sqldata.Value{}, fmt.Errorf("sqlexec: aggregate %s outside grouped context", f.Name)
	}
	if f.Star {
		if f.Name != "COUNT" {
			return sqldata.Value{}, fmt.Errorf("sqlexec: %s(*) is not valid", f.Name)
		}
		return sqldata.NewInt(int64(len(ctx.groupRows))), nil
	}
	if len(f.Args) != 1 {
		return sqldata.Value{}, fmt.Errorf("sqlexec: %s expects one argument", f.Name)
	}

	var vals []sqldata.Value
	seen := map[string]bool{}
	for _, r := range ctx.groupRows {
		rowCtx := &nCtx{db: ctx.db, scope: ctx.scope, row: r, parent: ctx.parent}
		v, err := naiveExpr(rowCtx, f.Args[0])
		if err != nil {
			return sqldata.Value{}, err
		}
		if v.Null {
			continue
		}
		if f.Distinct {
			k := v.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}

	switch f.Name {
	case "COUNT":
		return sqldata.NewInt(int64(len(vals))), nil
	case "SUM", "AVG":
		if len(vals) == 0 {
			return sqldata.NullValue(), nil
		}
		allInt := true
		sum := 0.0
		var ihi, ilo uint64 // 128-bit accumulator, mirroring evalAggregate
		for _, v := range vals {
			fv, ok := v.FloatOK()
			if !ok {
				return sqldata.Value{}, fmt.Errorf("sqlexec: %s over %s", f.Name, v.T)
			}
			if iv, isInt := v.IntOK(); isInt {
				ihi, ilo = add128(ihi, ilo, iv)
			} else {
				allInt = false
			}
			sum += fv
		}
		if f.Name == "SUM" {
			if allInt {
				return int128Value(ihi, ilo), nil
			}
			return sqldata.NewFloat(sum), nil
		}
		return sqldata.NewFloat(sum / float64(len(vals))), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return sqldata.NullValue(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c, err := sqldata.Compare(v, best)
			if err != nil {
				return sqldata.Value{}, err
			}
			if (f.Name == "MIN" && c < 0) || (f.Name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	}
	return sqldata.Value{}, fmt.Errorf("sqlexec: unknown aggregate %q", f.Name)
}

func naiveScalarFunc(ctx *nCtx, f *sqlparse.FuncCall) (sqldata.Value, error) {
	if len(f.Args) != 1 {
		return sqldata.Value{}, fmt.Errorf("sqlexec: function %s expects one argument", f.Name)
	}
	x, err := naiveExpr(ctx, f.Args[0])
	if err != nil {
		return sqldata.Value{}, err
	}
	if x.Null {
		return sqldata.NullValue(), nil
	}
	switch f.Name {
	case "LOWER":
		s, ok := x.TextOK()
		if !ok {
			return sqldata.Value{}, fmt.Errorf("sqlexec: LOWER on %s", x.T)
		}
		return sqldata.NewText(strings.ToLower(s)), nil
	case "UPPER":
		s, ok := x.TextOK()
		if !ok {
			return sqldata.Value{}, fmt.Errorf("sqlexec: UPPER on %s", x.T)
		}
		return sqldata.NewText(strings.ToUpper(s)), nil
	case "ABS":
		if v, ok := x.IntOK(); ok {
			if v < 0 {
				v = -v
			}
			return sqldata.NewInt(v), nil
		}
		if v, ok := x.FloatOK(); ok && x.T == sqldata.TypeFloat {
			if v < 0 {
				v = -v
			}
			return sqldata.NewFloat(v), nil
		}
		return sqldata.Value{}, fmt.Errorf("sqlexec: ABS on %s", x.T)
	case "YEAR":
		tm, ok := x.TimeOK()
		if !ok {
			return sqldata.Value{}, fmt.Errorf("sqlexec: YEAR on %s", x.T)
		}
		return sqldata.NewInt(int64(tm.Year())), nil
	}
	return sqldata.Value{}, fmt.Errorf("sqlexec: unknown function %q", f.Name)
}

func naiveIn(ctx *nCtx, in *sqlparse.InExpr) (sqldata.Value, error) {
	x, err := naiveExpr(ctx, in.X)
	if err != nil {
		return sqldata.Value{}, err
	}

	var elems []sqldata.Value
	if in.Sub != nil {
		res, err := naiveRun(ctx.db, in.Sub, ctx)
		if err != nil {
			return sqldata.Value{}, err
		}
		if len(res.Columns) != 1 {
			return sqldata.Value{}, fmt.Errorf("sqlexec: IN sub-query must return one column, got %d", len(res.Columns))
		}
		for _, r := range res.Rows {
			elems = append(elems, r[0])
		}
	} else {
		for _, e := range in.List {
			v, err := naiveExpr(ctx, e)
			if err != nil {
				return sqldata.Value{}, err
			}
			elems = append(elems, v)
		}
	}

	if x.Null {
		if len(elems) == 0 {
			return sqldata.NewBool(in.Not), nil
		}
		return sqldata.NullValue(), nil
	}
	sawNull := false
	for _, e := range elems {
		if e.Null {
			sawNull = true
			continue
		}
		x2, e2 := coerceDatePair(x, e)
		c, err := sqldata.Compare(x2, e2)
		if err != nil {
			return sqldata.Value{}, err
		}
		if c == 0 {
			return sqldata.NewBool(!in.Not), nil
		}
	}
	if sawNull {
		return sqldata.NullValue(), nil
	}
	return sqldata.NewBool(in.Not), nil
}

func naiveScalarSub(ctx *nCtx, sub *sqlparse.SelectStmt) (sqldata.Value, error) {
	res, err := naiveRun(ctx.db, sub, ctx)
	if err != nil {
		return sqldata.Value{}, err
	}
	if len(res.Columns) != 1 {
		return sqldata.Value{}, fmt.Errorf("sqlexec: scalar sub-query must return one column, got %d", len(res.Columns))
	}
	switch len(res.Rows) {
	case 0:
		return sqldata.NullValue(), nil
	case 1:
		return res.Rows[0][0], nil
	default:
		return sqldata.Value{}, fmt.Errorf("sqlexec: scalar sub-query returned %d rows", len(res.Rows))
	}
}
