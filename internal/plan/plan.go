package plan

import (
	"fmt"
	"strings"

	"nlidb/internal/sqldata"
	"nlidb/internal/sqlparse"
)

// Package plan is the middle layer of the bind/plan/execute pipeline: it
// lowers a bound SELECT into a physical operator tree (scan → filter →
// hash-join or nested-loop fallback → hash-aggregate → sort → project →
// limit). Planning applies two optimizations the tree-walking interpreter
// could not: predicate push-down into base-table scans, and hash joins for
// equi-join conditions. Both are gated on static safety analysis
// (analyze.go) so they never add, remove, or reorder the runtime errors
// the naive evaluation order would produce.

// Options disables individual optimizations, mainly so benchmarks can
// measure the naive strategies through the same pipeline.
type Options struct {
	// NoHashJoin forces nested-loop evaluation for every join.
	NoHashJoin bool
	// NoPushdown keeps all WHERE conjuncts in a filter above the joins.
	NoPushdown bool
	// NoVector forces the row-at-a-time executor even for plans the
	// vectorized engine could run.
	NoVector bool
}

// Plan is a fully bound and planned statement, ready to execute. Plans are
// immutable after Prepare, so a cached Plan may run concurrently.
type Plan struct {
	src   node // scan/filter/join tree producing the working tuples
	width int  // columns in the working tuple (sum of FROM table widths)

	grouped    bool
	groupKeys  []bexpr
	groupDisp  []string
	having     bexpr
	havingDisp string

	items     []boundItem
	itemsDisp []string
	cols      []string // output column names

	orderBy   []boundOrder
	orderDisp []string
	distinct  bool
	limit     int // negative = no LIMIT

	subplans []*Plan // directly nested sub-queries, in bind order

	nstats     int // stat slots across this plan and all sub-plans
	nidGroup   int
	nidProject int
	nidResult  int

	// tabs/toffs record the FROM tables and their tuple offsets, for the
	// cost model and the vectorized compiler.
	tabs  []*sqldata.Table
	toffs []int
	// est holds per-operator estimated output rows (indexed by nid, shared
	// with sub-plans), filled by annotatePlan from column statistics.
	est []int64
	// vec is the compiled vectorized form of the plan, or nil when any
	// part of the statement requires the row-at-a-time executor.
	vec *vplan
}

// Columns returns the output column names.
func (p *Plan) Columns() []string { return p.cols }

// Vectorized reports whether the plan will run on the vectorized
// columnar executor rather than the row-at-a-time interpreter.
func (p *Plan) Vectorized() bool { return p.vec != nil }

// node is one physical operator: it materializes its full output. The
// paper's workloads are interactive-scale, so materialization keeps the
// error and budget semantics of the tree-walker trivially identical while
// still removing the per-row name resolution and quadratic joins.
type node interface {
	rows(env *execEnv) ([]sqldata.Row, error)
}

// scanNode reads one base table, optionally applying pushed-down
// predicates. filter offsets are table-local (rebased by the table's
// offset in the statement tuple).
type scanNode struct {
	nid        int
	tab        *sqldata.Table
	disp       string // table reference as written (name, or "name AS alias")
	span       string // obs span name; "" = no span (right side of a join)
	charge     bool   // meter addRows(table length); first table only
	filter     []bexpr
	filterDisp []string
}

// filterNode applies the WHERE conjuncts that could not be pushed down.
// Every conjunct is evaluated for every row — no short-circuit — because
// AND under three-valued logic evaluates both sides, and a skipped
// conjunct could be one that raises an error.
type filterNode struct {
	nid   int
	child node
	conj  []bexpr
	disp  []string
}

// keyKind selects the canonical encoding for one hash-join key pair, from
// the statically known types of its two sides.
type keyKind int

const (
	kInt keyKind = iota
	kFloat
	kText
	kBool
	kDate
)

// joinNode joins child output with one base table, by hash on equi-key
// pairs when the ON condition statically allows it, else by nested loop.
type joinNode struct {
	nid    int
	left   node
	right  *scanNode
	typ    sqlparse.JoinType
	span   string // "join <table>"
	algo   string // "hash" | "nested-loop"
	rwidth int

	// Nested-loop mode: every ON conjunct, statement offsets, all
	// evaluated per pair (no short-circuit — conjuncts may error).
	on []bexpr

	// Hash mode: key pairs (rKeys are right-table-local) plus safe
	// non-equi residual conjuncts over the combined row.
	lKeys, rKeys []bexpr
	kinds        []keyKind
	residual     []bexpr

	onDisp string
}

// Prepare binds and plans stmt against db.
func Prepare(db *sqldata.Database, stmt *sqlparse.SelectStmt) (*Plan, error) {
	return PrepareOpts(db, stmt, Options{})
}

// PrepareOpts is Prepare with optimizations selectively disabled.
func PrepareOpts(db *sqldata.Database, stmt *sqlparse.SelectStmt, opts Options) (*Plan, error) {
	if stmt == nil {
		return nil, fmt.Errorf("sqlexec: nil statement")
	}
	b := &binder{db: db, opts: opts}
	p, err := b.bindStmt(stmt, nil)
	if err != nil {
		return nil, err
	}
	p.nstats = b.nid
	annotatePlan(p)
	if !opts.NoVector {
		p.vec = compileVec(p)
	}
	return p, nil
}

// planFrom lowers the FROM chain plus the WHERE conjuncts into the
// physical tree, deciding predicate push-down per conjunct and join
// algorithm per join.
func (b *binder) planFrom(p *Plan, stmt *sqlparse.SelectStmt, sc *scope, tabs []*sqldata.Table, ons [][]conjunct, where []conjunct) error {
	// Push-down: a WHERE conjunct may move into table k's scan when it is
	// statically safe (so filtering early cannot skip an error), reads
	// columns of table k only, and table k is not the right side of a LEFT
	// join (filtering before the pad would change which rows get padded).
	// Conjuncts reading no columns at all anchor to table 0.
	pushed := make([][]conjunct, len(tabs))
	var residual []conjunct
	for _, c := range where {
		k, ok := b.pushTarget(c, sc, stmt)
		if ok {
			pushed[k] = append(pushed[k], c)
		} else {
			residual = append(residual, c)
		}
	}

	refs := stmt.From.Tables()
	mkScan := func(k int, span string, charge bool) *scanNode {
		s := &scanNode{nid: b.newNid(), tab: tabs[k], disp: refs[k].String(), span: span, charge: charge}
		for _, c := range pushed[k] {
			s.filter = append(s.filter, rebase(c.b, -sc.tables[k].off))
			s.filterDisp = append(s.filterDisp, c.ast.String())
		}
		return s
	}

	var src node = mkScan(0, "scan "+strings.ToLower(stmt.From.First.Name), true)

	for k, j := range stmt.From.Joins {
		right := mkScan(k+1, "", false)
		jn := &joinNode{
			nid:    b.newNid(),
			left:   src,
			right:  right,
			typ:    j.Type,
			span:   "join " + strings.ToLower(j.Table.Name),
			rwidth: len(tabs[k+1].Schema.Columns),
		}
		var disp []string
		for _, c := range ons[k] {
			disp = append(disp, c.ast.String())
		}
		jn.onDisp = strings.Join(disp, " AND ")

		if b.planHashJoin(jn, ons[k], sc.tables[k+1].off) {
			jn.algo = "hash"
		} else {
			jn.algo = "nested-loop"
			jn.lKeys, jn.rKeys, jn.kinds, jn.residual = nil, nil, nil, nil
			for _, c := range ons[k] {
				jn.on = append(jn.on, c.b)
			}
		}
		src = jn
	}

	if len(residual) > 0 {
		fn := &filterNode{nid: b.newNid(), child: src}
		for _, c := range residual {
			fn.conj = append(fn.conj, c.b)
			fn.disp = append(fn.disp, c.ast.String())
		}
		src = fn
	}

	p.src = src
	p.nidGroup = b.newNid()
	p.nidProject = b.newNid()
	p.nidResult = b.newNid()
	return nil
}

// pushTarget returns the table a WHERE conjunct can be pushed into, if any.
func (b *binder) pushTarget(c conjunct, sc *scope, stmt *sqlparse.SelectStmt) (int, bool) {
	if b.opts.NoPushdown || !c.safe {
		return 0, false
	}
	if len(c.info.offs) == 0 {
		return 0, true // constant (or purely correlated) predicate: table 0
	}
	k := -1
	for _, off := range c.info.offs {
		t := sc.tableAt(off)
		if k < 0 {
			k = t
		} else if t != k {
			return 0, false // spans tables: stays above the joins
		}
	}
	if k > 0 && stmt.From.Joins[k-1].Type != sqlparse.JoinInner {
		return 0, false // right side of a LEFT join: must filter after padding
	}
	return k, true
}

// tableAt maps a statement tuple offset to its table index.
func (s *scope) tableAt(off int) int {
	for i := len(s.tables) - 1; i >= 0; i-- {
		if off >= s.tables[i].off {
			return i
		}
	}
	return 0
}

// planHashJoin inspects the ON conjuncts of jn for hash-joinability:
// at least one statically safe equi-pair whose sides split cleanly into a
// left-tuple key and a right-table key of hash-compatible types, with every
// remaining conjunct statically safe (the hash path skips non-matching
// pairs entirely, so no skipped conjunct may be one that could error).
// On success it fills lKeys/rKeys/kinds/residual and returns true.
func (b *binder) planHashJoin(jn *joinNode, ons []conjunct, rightOff int) bool {
	if b.opts.NoHashJoin {
		return false
	}
	for _, c := range ons {
		if !c.safe {
			return false
		}
	}
	for _, c := range ons {
		if l, r, kind, ok := equiPair(c.b, rightOff, rightOff+jn.rwidth); ok {
			jn.lKeys = append(jn.lKeys, l)
			jn.rKeys = append(jn.rKeys, rebase(r, -rightOff))
			jn.kinds = append(jn.kinds, kind)
		} else {
			jn.residual = append(jn.residual, c.b)
		}
	}
	return len(jn.lKeys) > 0
}

// equiPair decides whether e is `left = right` with one side reading only
// columns below rightOff (the left tuple) and the other reading only
// columns of the right table, with hash-compatible static types. Either
// side may read no level-0 columns at all (a constant or correlated key),
// but the right side must actually touch the right table — otherwise the
// conjunct is just a filter and stays residual.
func equiPair(e bexpr, rightOff, rightEnd int) (l, r bexpr, kind keyKind, ok bool) {
	be, isBin := e.(*bBinary)
	if !isBin || be.op != "=" {
		return nil, nil, 0, false
	}
	side := func(x bexpr) (leftOK, rightOK bool) {
		var info exprInfo
		inspect(x, &info)
		leftOK, rightOK = true, len(info.offs) > 0
		for _, off := range info.offs {
			if off >= rightOff {
				leftOK = false
			}
			if off < rightOff || off >= rightEnd {
				rightOK = false
			}
		}
		return leftOK, rightOK
	}
	lt, rt := safeType(be.l), safeType(be.r)
	kind, compat := hashKind(lt, rt)
	if !compat || !lt.safe || !rt.safe {
		return nil, nil, 0, false
	}
	lLeft, lRight := side(be.l)
	rLeft, rRight := side(be.r)
	switch {
	case lLeft && rRight:
		return be.l, be.r, kind, true
	case rLeft && lRight:
		return be.r, be.l, kind, true
	}
	return nil, nil, 0, false
}

// hashKind picks the canonical key encoding for a statically typed pair.
// Pairs needing runtime coercion (TEXT vs DATE) or of unknown type are not
// hashable; mixed INT/FLOAT pairs hash by float value, matching Compare's
// cross-numeric equality.
func hashKind(l, r sType) (keyKind, bool) {
	if !l.known || !r.known || l.null || r.null {
		return 0, false
	}
	switch {
	case l.t == sqldata.TypeInt && r.t == sqldata.TypeInt:
		return kInt, true
	case l.t.Numeric() && r.t.Numeric():
		return kFloat, true
	case l.t != r.t:
		return 0, false
	case l.t == sqldata.TypeText:
		return kText, true
	case l.t == sqldata.TypeBool:
		return kBool, true
	case l.t == sqldata.TypeDate:
		return kDate, true
	}
	return 0, false
}
