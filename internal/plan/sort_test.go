package plan

import (
	"context"
	"testing"

	"nlidb/internal/sqldata"
	"nlidb/internal/sqlparse"
)

// sortDB is the ORDER BY fixture: NULLs in both sort columns and
// duplicate ranks so ties and NULL placement are both exercised. Row
// insert order is the tie-breaker the stable sort must preserve.
func sortDB() *sqldata.Database {
	db := sqldata.NewDatabase("sortdb")
	tbl, err := db.CreateTable(&sqldata.Schema{
		Name: "entry",
		Columns: []sqldata.Column{
			{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
			{Name: "rank", Type: sqldata.TypeInt},
			{Name: "label", Type: sqldata.TypeText},
		},
	})
	if err != nil {
		panic(err)
	}
	null := sqldata.NullValue()
	for _, r := range []struct {
		id    int64
		rank  sqldata.Value
		label sqldata.Value
	}{
		{1, sqldata.NewInt(2), sqldata.NewText("b")},
		{2, null, sqldata.NewText("n1")},
		{3, sqldata.NewInt(1), sqldata.NewText("a")},
		{4, sqldata.NewInt(2), sqldata.NewText("b2")}, // ties rank=2 with id 1
		{5, null, sqldata.NewText("n2")},              // second NULL, after id 2
		{6, sqldata.NewInt(3), null},                  // NULL label
		{7, sqldata.NewInt(1), sqldata.NewText("a")},  // ties (1,"a") with id 3
	} {
		tbl.MustInsert(sqldata.NewInt(r.id), r.rank, r.label)
	}
	return db
}

func TestOrderByLimit(t *testing.T) {
	db := sortDB()
	cases := []struct {
		name string
		sql  string
		ids  []string // expected first column, in order
	}{
		{
			name: "asc nulls first, ties keep insert order",
			sql:  "SELECT id FROM entry ORDER BY rank ASC",
			ids:  []string{"2", "5", "3", "7", "1", "4", "6"},
		},
		{
			name: "desc nulls last, ties keep insert order",
			sql:  "SELECT id FROM entry ORDER BY rank DESC",
			ids:  []string{"6", "1", "4", "3", "7", "2", "5"},
		},
		{
			name: "secondary key breaks primary ties",
			sql:  "SELECT id FROM entry ORDER BY rank ASC, id DESC",
			ids:  []string{"5", "2", "7", "3", "4", "1", "6"},
		},
		{
			name: "null label sorts last descending",
			sql:  "SELECT id FROM entry ORDER BY label DESC",
			ids:  []string{"5", "2", "4", "1", "3", "7", "6"},
		},
		{
			name: "limit truncates after sort",
			sql:  "SELECT id FROM entry ORDER BY rank DESC LIMIT 3",
			ids:  []string{"6", "1", "4"},
		},
		{
			name: "limit zero yields no rows",
			sql:  "SELECT id FROM entry ORDER BY rank ASC LIMIT 0",
			ids:  nil,
		},
		{
			name: "limit larger than input is a no-op",
			sql:  "SELECT id FROM entry ORDER BY id ASC LIMIT 99",
			ids:  []string{"1", "2", "3", "4", "5", "6", "7"},
		},
		{
			name: "limit without order keeps scan order",
			sql:  "SELECT id FROM entry LIMIT 2",
			ids:  []string{"1", "2"},
		},
		{
			name: "order by select alias",
			sql:  "SELECT id AS n FROM entry WHERE rank IS NOT NULL ORDER BY n DESC LIMIT 2",
			ids:  []string{"7", "6"},
		},
		{
			name: "order by aggregate with limit",
			// Counts tie at 2 for ranks NULL, 1, and 2; rank ASC puts the
			// NULL group first.
			sql:  "SELECT rank, COUNT(*) FROM entry GROUP BY rank ORDER BY COUNT(*) DESC, rank ASC LIMIT 2",
			ids:  []string{"NULL", "1"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := Prepare(db, sqlparse.MustParse(tc.sql))
			if err != nil {
				t.Fatalf("prepare: %v", err)
			}
			res, _, err := p.Run(context.Background(), DefaultBudget())
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			var got []string
			for _, r := range res.Rows {
				got = append(got, r[0].String())
			}
			if len(got) != len(tc.ids) {
				t.Fatalf("got %v, want %v", got, tc.ids)
			}
			for i := range got {
				if got[i] != tc.ids[i] {
					t.Fatalf("row %d: got %v, want %v", i, got, tc.ids)
				}
			}
		})
	}
}
