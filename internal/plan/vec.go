package plan

import (
	"sort"

	"nlidb/internal/sqldata"
	"nlidb/internal/sqlparse"
)

// The vectorized compiler lowers an eligible Plan into a vplan: a linear
// sequence of columnar operators (filtered scan, batched hash join,
// vectorized filter, hash aggregate) over the tables' typed column
// vectors. Eligibility is deliberately conservative — whole-plan fallback
// to the row-at-a-time executor whenever any fragment could observe a
// difference — so the two engines are differentially testable against
// each other (see FuzzPlanExec and vec_test.go):
//
//   - no sub-queries anywhere in the statement (correlated frames are a
//     row-at-a-time concept);
//   - every join is a hash join (nested-loop ON conjuncts may error
//     mid-loop, which batching would reorder);
//   - every scanned/joined/filtered predicate is statically safe
//     (provably error-free), so batch evaluation cannot move an error;
//   - grouped plans precompute aggregates per group from the vectors,
//     feeding the ordinary boxed evaluator for HAVING/projection via
//     frame.aggVals — any unsupported aggregate shape falls back.
//
// Projection and ORDER BY keys run vectorized when every item is
// statically safe (vecEmit); otherwise the scan/join/filter pipeline
// still runs on vectors and only the final emit loop is boxed.
type vplan struct {
	scan0 vscanStep
	joins []vjoinStep
	// resid holds the residual WHERE conjuncts (the filterNode above the
	// joins); residNid < 0 when there is none.
	resid    []bexpr
	residNid int

	// order is the execution order of joins (indices into joins). It
	// differs from 0..n-1 only for reorderable aggregate queries, where
	// the cost model greedily picks the cheapest executable join first.
	order []int

	// vecEmit marks plans whose projection and sort keys all compile to
	// vector kernels; otherwise the emit loop boxes one frame per tuple.
	vecEmit bool

	// aggs lists every aggregate node reachable from the select items,
	// HAVING, and ORDER BY of a grouped plan, in collection order.
	aggs []*bAgg
}

// vscanStep scans one FROM table, applying its pushed-down predicates as
// successive selection-vector filters, most selective first.
type vscanStep struct {
	nid     int
	tabIdx  int
	span    string
	charge  bool
	filters []bexpr // table-local offsets
}

// vjoinStep hash-joins the accumulated working set with one base table.
type vjoinStep struct {
	nid      int
	right    vscanStep
	leftJoin bool
	span     string
	// buildLeft builds the hash table on the (estimated smaller) left
	// working set and probes with right rows, buffering matches per left
	// tuple so output order stays left-major — identical to probing left.
	buildLeft  bool
	lKeys      []bexpr // statement-tuple offsets
	rKeys      []bexpr // right-table-local offsets
	kinds      []keyKind
	residual   []bexpr // statement-tuple offsets over the combined row
	leftEstIdx int     // nid of the left input, for explain/debugging
}

// vecExpr reports whether the vector kernels can evaluate e with
// bit-identical results and error behavior: exactly the statically safe
// expressions (no aggregates, aliases, sub-queries, or coercing
// comparisons — safeType already excludes all of them).
func vecExpr(e bexpr) bool { return safeType(e).safe }

// vecPred is vecExpr restricted to statically boolean (or statically
// NULL) expressions. Conjuncts of any other type make evalPredicate
// error at runtime, so such plans stay on the row executor.
func vecPred(e bexpr) bool {
	s := safeType(e)
	return s.safe && (s.null || (s.known && s.t == sqldata.TypeBool))
}

// vecEmitExpr is vecExpr plus top-level select-alias references, which
// the emit stage resolves against already-computed item vectors.
func vecEmitExpr(e bexpr) bool {
	if a, ok := e.(*bAlias); ok {
		return a.level == 0
	}
	return vecExpr(e)
}

// compileVec lowers p to its vectorized form, or returns nil when any
// part requires row-at-a-time execution.
func compileVec(p *Plan) *vplan {
	if len(p.subplans) > 0 {
		return nil
	}
	v := &vplan{residNid: -1}

	n := p.src
	if f, ok := n.(*filterNode); ok {
		for _, c := range f.conj {
			if !vecPred(c) {
				return nil
			}
		}
		v.resid, v.residNid = f.conj, f.nid
		n = f.child
	}
	var chain []*joinNode
	for {
		j, ok := n.(*joinNode)
		if !ok {
			break
		}
		chain = append([]*joinNode{j}, chain...)
		n = j.left
	}
	s, ok := n.(*scanNode)
	if !ok {
		return nil
	}

	cc := &costCtx{tabs: p.tabs, toffs: p.toffs}
	scan, ok := compileScan(cc, s, 0)
	if !ok {
		return nil
	}
	v.scan0 = scan

	leftNid := s.nid
	for k, j := range chain {
		if j.algo != "hash" {
			return nil
		}
		for _, e := range j.lKeys {
			if !vecExpr(e) {
				return nil
			}
		}
		for _, e := range j.rKeys {
			if !vecExpr(e) {
				return nil
			}
		}
		for _, e := range j.residual {
			if !vecPred(e) {
				return nil
			}
		}
		right, ok := compileScan(cc, j.right, k+1)
		if !ok {
			return nil
		}
		step := vjoinStep{
			nid:        j.nid,
			right:      right,
			leftJoin:   j.typ == sqlparse.JoinLeft,
			span:       j.span,
			lKeys:      j.lKeys,
			rKeys:      j.rKeys,
			kinds:      j.kinds,
			residual:   j.residual,
			leftEstIdx: leftNid,
		}
		if p.est != nil {
			// Build on the smaller estimated side; the 2x margin keeps
			// the default (build right, probe left — the row executor's
			// shape) unless the left side is clearly smaller.
			el, er := p.est[leftNid], p.est[right.nid]
			step.buildLeft = el >= 0 && er >= 0 && el*2 < er
		}
		v.joins = append(v.joins, step)
		leftNid = j.nid
	}

	if p.grouped {
		for _, k := range p.groupKeys {
			if !vecExpr(k) {
				return nil
			}
		}
		var aggs []*bAgg
		collect := func(e bexpr) {
			aggs = append(aggs, collectAggs(e, aggs)...)
		}
		for _, it := range p.items {
			if !it.star {
				collect(it.expr)
			}
		}
		if p.having != nil {
			collect(p.having)
		}
		for _, o := range p.orderBy {
			collect(o.key)
		}
		for _, a := range aggs {
			if !vecAggOK(a) {
				return nil
			}
		}
		v.aggs = aggs
	} else {
		v.vecEmit = true
		for _, it := range p.items {
			if !it.star && !vecEmitExpr(it.expr) {
				v.vecEmit = false
				break
			}
		}
		if v.vecEmit {
			for _, o := range p.orderBy {
				if !vecEmitExpr(o.key) {
					v.vecEmit = false
					break
				}
			}
		}
	}

	v.order = make([]int, len(v.joins))
	for i := range v.order {
		v.order[i] = i
	}
	if len(v.joins) >= 2 && reorderable(p, v) {
		v.order = greedyJoinOrder(p, v)
	}
	return v
}

// compileScan lowers one scanNode, ordering its pushed-down filters most
// selective first (a pure reordering: pushed conjuncts are statically
// safe and the row executor's short-circuit makes their order
// unobservable). The scanNode itself — and so EXPLAIN — is not mutated.
func compileScan(cc *costCtx, s *scanNode, tabIdx int) (vscanStep, bool) {
	for _, f := range s.filter {
		if !vecPred(f) {
			return vscanStep{}, false
		}
	}
	step := vscanStep{nid: s.nid, tabIdx: tabIdx, span: s.span, charge: s.charge}
	if len(s.filter) > 0 {
		step.filters = append([]bexpr(nil), s.filter...)
		sel := make([]float64, len(step.filters))
		for i, f := range step.filters {
			sel[i] = cc.sel(f, tabIdx)
		}
		sort.SliceStable(step.filters, func(i, j int) bool { return sel[i] < sel[j] })
	}
	return step, true
}

// collectAggs returns the aggregate nodes in e not already in seen.
func collectAggs(e bexpr, seen []*bAgg) []*bAgg {
	var out []*bAgg
	var walk func(e bexpr)
	have := func(a *bAgg) bool {
		for _, s := range seen {
			if s == a {
				return true
			}
		}
		for _, s := range out {
			if s == a {
				return true
			}
		}
		return false
	}
	walk = func(e bexpr) {
		switch t := e.(type) {
		case *bAgg:
			if !have(t) {
				out = append(out, t)
			}
			// nested aggregates inside the argument error at runtime;
			// vecAggOK rejects unsafe arguments, forcing fallback.
		case *bBinary:
			walk(t.l)
			walk(t.r)
		case *bUnary:
			walk(t.x)
		case *bFunc:
			for _, a := range t.args {
				walk(a)
			}
		case *bIn:
			walk(t.x)
			for _, el := range t.list {
				walk(el)
			}
		case *bBetween:
			walk(t.x)
			walk(t.lo)
			walk(t.hi)
		case *bLike:
			walk(t.x)
		case *bIsNull:
			walk(t.x)
		}
	}
	walk(e)
	return out
}

// vecAggOK reports whether the vectorized aggregator reproduces this
// aggregate exactly: known name, valid arity, statically safe argument,
// and a numeric (or statically NULL) argument for SUM/AVG. Everything
// else — including shapes whose row-path evaluation errors, like SUM
// over TEXT or a wrong-arity call — falls back so the error surfaces
// identically.
func vecAggOK(a *bAgg) bool {
	switch a.name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
	default:
		return false
	}
	if a.star {
		return a.name == "COUNT"
	}
	if a.arg == nil {
		return false // arity error: keep the row path's runtime message
	}
	st := safeType(a.arg)
	if !st.safe || (!st.known && !st.null) {
		return false
	}
	if (a.name == "SUM" || a.name == "AVG") && !st.null && !st.t.Numeric() {
		return false
	}
	return true
}

// reorderable gates join reordering on observational equivalence: the
// statement must reduce to a single global group whose every output is
// order-insensitive — exact aggregates (COUNT, MIN/MAX over non-float,
// 128-bit integer SUM) combined by pure scalar operators — with no bare
// column references, stars, or LEFT joins. Floating-point SUM/AVG
// accumulate in tuple order and MIN/MAX over floats can surface -0 vs 0,
// so they block reordering.
func reorderable(p *Plan, v *vplan) bool {
	if !p.grouped || len(p.groupKeys) != 0 {
		return false
	}
	for _, j := range v.joins {
		if j.leftJoin {
			return false
		}
	}
	for _, it := range p.items {
		if it.star || !orderFree(it.expr) {
			return false
		}
	}
	if p.having != nil && !orderFree(p.having) {
		return false
	}
	for _, o := range p.orderBy {
		if !orderFree(o.key) {
			return false
		}
	}
	return true
}

// orderFree reports whether e's value is independent of the working
// set's tuple order.
func orderFree(e bexpr) bool {
	switch t := e.(type) {
	case *bLit:
		return true
	case *bAlias:
		return true // aliases an item that is itself checked
	case *bAgg:
		return exactAgg(t)
	case *bBinary:
		return orderFree(t.l) && orderFree(t.r)
	case *bUnary:
		return orderFree(t.x)
	case *bFunc:
		for _, a := range t.args {
			if !orderFree(a) {
				return false
			}
		}
		return true
	case *bIn:
		if t.sub != nil {
			return false
		}
		if !orderFree(t.x) {
			return false
		}
		for _, el := range t.list {
			if !orderFree(el) {
				return false
			}
		}
		return true
	case *bBetween:
		return orderFree(t.x) && orderFree(t.lo) && orderFree(t.hi)
	case *bLike:
		return orderFree(t.x)
	case *bIsNull:
		return orderFree(t.x)
	}
	return false
}

// exactAgg reports whether the aggregate's result is independent of
// accumulation order.
func exactAgg(a *bAgg) bool {
	switch a.name {
	case "COUNT":
		return true
	case "MIN", "MAX":
		st := safeType(a.arg)
		return st.safe && st.known && st.t != sqldata.TypeFloat
	case "SUM":
		st := safeType(a.arg)
		// 128-bit integer accumulation is associative; float SUM is not.
		return st.safe && (st.null || (st.known && st.t == sqldata.TypeInt))
	}
	return false
}

// greedyJoinOrder picks, at each step, the executable join minimizing the
// estimated size of the accumulated working set. A join is executable
// once every table its keys and residual reference has been placed. The
// original order is always a valid completion (join k references tables
// 0..k+1 only), so the greedy loop cannot strand a join.
func greedyJoinOrder(p *Plan, v *vplan) []int {
	m := len(v.joins)
	req := make([][]int, m)
	for k := range v.joins {
		j := &v.joins[k]
		var info exprInfo
		for _, e := range j.lKeys {
			inspect(e, &info)
		}
		for _, e := range j.residual {
			inspect(e, &info)
		}
		seen := map[int]bool{}
		for _, off := range info.offs {
			seen[p.tableAtOff(off)] = true
		}
		for t := range seen {
			req[k] = append(req[k], t)
		}
	}

	sel := make([]float64, m) // per-join selectivity from the static estimates
	for k := range v.joins {
		j := &v.joins[k]
		l, r, out := float64(p.est[j.leftEstIdx]), float64(p.est[j.right.nid]), float64(p.est[j.nid])
		if l > 0 && r > 0 {
			sel[k] = out / (l * r)
		} else {
			sel[k] = 1
		}
	}

	placed := make([]bool, len(p.tabs))
	placed[0] = true
	used := make([]bool, m)
	cur := float64(p.est[v.scan0.nid])
	order := make([]int, 0, m)
	for len(order) < m {
		best, bestCost := -1, 0.0
		for k := 0; k < m; k++ {
			if used[k] {
				continue
			}
			ok := true
			for _, t := range req[k] {
				if t != k+1 && !placed[t] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			cost := cur * float64(p.est[v.joins[k].right.nid]) * sel[k]
			if best < 0 || cost < bestCost {
				best, bestCost = k, cost
			}
		}
		if best < 0 {
			// Defensive: fall back to source order.
			for i := range v.order {
				v.order[i] = i
			}
			return v.order
		}
		order = append(order, best)
		used[best] = true
		placed[best+1] = true
		cur = bestCost
	}
	return order
}

// tableAtOff maps a statement tuple offset to its FROM table index.
func (p *Plan) tableAtOff(off int) int {
	for i := len(p.toffs) - 1; i >= 0; i-- {
		if off >= p.toffs[i] {
			return i
		}
	}
	return 0
}
