package plan

import (
	"context"
	"math"
	"strings"
	"testing"

	"nlidb/internal/sqldata"
	"nlidb/internal/sqlparse"
)

func mustPrepare(t *testing.T, db *sqldata.Database, sql string, opts Options) *Plan {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	p, err := PrepareOpts(db, stmt, opts)
	if err != nil {
		t.Fatalf("prepare %q: %v", sql, err)
	}
	return p
}

// TestVectorizedEligibility pins which plan shapes compile to the
// vectorized engine and which fall back to the row executor.
func TestVectorizedEligibility(t *testing.T) {
	db := fuzzDB()
	vectorized := []string{
		"SELECT name FROM customer WHERE city = 'Berlin'",
		"SELECT * FROM orders WHERE total > 100.5 AND status != 'done'",
		"SELECT city, COUNT(*) FROM customer GROUP BY city ORDER BY COUNT(*) DESC LIMIT 3",
		"SELECT AVG(total) FROM orders",
		"SELECT customer.name, SUM(orders.total) FROM customer JOIN orders ON customer.id = orders.customer_id GROUP BY customer.name",
		"SELECT p.name FROM product AS p LEFT JOIN category AS c ON p.category_id = c.id WHERE c.name IS NOT NULL",
		"SELECT DISTINCT LOWER(name) FROM customer WHERE name LIKE 'a%' OR credit BETWEEN 1 AND 2",
		"SELECT status, COUNT(DISTINCT customer_id) FROM orders GROUP BY status ORDER BY status",
	}
	for _, sql := range vectorized {
		if p := mustPrepare(t, db, sql, Options{}); !p.Vectorized() {
			t.Errorf("expected vectorized plan for %q", sql)
		}
		if p := mustPrepare(t, db, sql, Options{NoVector: true}); p.Vectorized() {
			t.Errorf("NoVector must disable vectorization for %q", sql)
		}
	}
	fallback := []string{
		// Subqueries always run on the row executor.
		"SELECT name FROM customer WHERE id IN (SELECT customer_id FROM orders)",
		"SELECT name FROM customer WHERE EXISTS (SELECT id FROM orders WHERE orders.customer_id = customer.id)",
		// Non-equi join: nested loop, not vectorizable.
		"SELECT c.name FROM customer AS c JOIN orders AS o ON c.credit > o.total",
	}
	for _, sql := range fallback {
		if p := mustPrepare(t, db, sql, Options{}); p.Vectorized() {
			t.Errorf("expected row-executor fallback for %q", sql)
		}
	}
}

// TestVectorizedDifferential runs representative statements through both
// executors and requires identical results, usage metering, and operator
// statistics.
func TestVectorizedDifferential(t *testing.T) {
	db := fuzzDB()
	ctx := context.Background()
	queries := []string{
		"SELECT name, credit FROM customer",
		"SELECT name FROM customer WHERE city = 'Berlin' AND credit > 100",
		"SELECT name, credit * 2 FROM customer WHERE credit BETWEEN 0 AND 1000 ORDER BY credit DESC",
		"SELECT UPPER(city) FROM customer WHERE city IS NOT NULL ORDER BY city",
		"SELECT name FROM customer WHERE city IN ('Berlin', 'Oslo') OR credit < 0",
		"SELECT COUNT(*), SUM(credit), MIN(credit), MAX(credit), AVG(credit) FROM customer",
		"SELECT city, COUNT(*), AVG(credit) FROM customer GROUP BY city ORDER BY city",
		"SELECT c.name, o.total FROM customer AS c JOIN orders AS o ON c.id = o.customer_id WHERE o.total > 50 ORDER BY o.total",
		"SELECT c.name, o.total FROM customer AS c LEFT JOIN orders AS o ON c.id = o.customer_id ORDER BY c.name",
		"SELECT c.city, SUM(o.total) FROM customer AS c JOIN orders AS o ON c.id = o.customer_id GROUP BY c.city HAVING SUM(o.total) > 10 ORDER BY c.city",
		"SELECT COUNT(*) FROM customer AS c JOIN orders AS o ON c.id = o.customer_id JOIN product AS p ON o.id = p.id",
		"SELECT status, COUNT(DISTINCT customer_id) FROM orders GROUP BY status ORDER BY status",
		"SELECT DISTINCT city FROM customer ORDER BY city LIMIT 2",
		"SELECT name FROM customer WHERE name LIKE '%a%' ORDER BY name",
	}
	for _, sql := range queries {
		vp := mustPrepare(t, db, sql, Options{})
		rp := mustPrepare(t, db, sql, Options{NoVector: true})
		if !vp.Vectorized() {
			t.Errorf("expected vectorized plan for %q", sql)
			continue
		}
		vRes, vu, vStats, vErr := vp.RunStats(ctx, DefaultBudget())
		rRes, ru, _, rErr := rp.RunStats(ctx, DefaultBudget())
		if vErr != nil || rErr != nil {
			t.Errorf("%q: vec err=%v row err=%v", sql, vErr, rErr)
			continue
		}
		if !sameResult(vRes, rRes) {
			t.Errorf("result mismatch for %q:\nrow: %v\nvec: %v", sql, rRes.Rows, vRes.Rows)
		}
		if vu != ru {
			t.Errorf("usage mismatch for %q: row %+v vec %+v", sql, ru, vu)
		}
		if vStats == nil {
			t.Errorf("%q: RunStats returned nil stats", sql)
		}
	}
}

// TestVecSumOverflowPromotes exercises the integer-SUM overflow
// promotion (satellite fix) on the vectorized aggregate path: sums that
// exceed int64 range must promote to float instead of wrapping, while
// sums that land exactly on the boundary stay exact integers.
func TestVecSumOverflowPromotes(t *testing.T) {
	db := sqldata.NewDatabase("ovf")
	tab, err := db.CreateTable(&sqldata.Schema{
		Name: "t",
		Columns: []sqldata.Column{
			{Name: "g", Type: sqldata.TypeInt},
			{Name: "x", Type: sqldata.TypeInt},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Group 1 overflows (MaxInt64 + 10); group 2 lands exactly on
	// MaxInt64; group 3 cancels back into range after an intermediate
	// overflow.
	tab.MustInsert(sqldata.NewInt(1), sqldata.NewInt(math.MaxInt64))
	tab.MustInsert(sqldata.NewInt(1), sqldata.NewInt(10))
	tab.MustInsert(sqldata.NewInt(2), sqldata.NewInt(math.MaxInt64-5))
	tab.MustInsert(sqldata.NewInt(2), sqldata.NewInt(5))
	tab.MustInsert(sqldata.NewInt(3), sqldata.NewInt(math.MaxInt64))
	tab.MustInsert(sqldata.NewInt(3), sqldata.NewInt(math.MaxInt64))
	tab.MustInsert(sqldata.NewInt(3), sqldata.NewInt(math.MinInt64))

	ctx := context.Background()
	sql := "SELECT g, SUM(x) FROM t GROUP BY g ORDER BY g"
	vp := mustPrepare(t, db, sql, Options{})
	if !vp.Vectorized() {
		t.Fatalf("expected vectorized plan for %q", sql)
	}
	vRes, _, vErr := vp.Run(ctx, DefaultBudget())
	if vErr != nil {
		t.Fatal(vErr)
	}
	rp := mustPrepare(t, db, sql, Options{NoVector: true})
	rRes, _, rErr := rp.Run(ctx, DefaultBudget())
	if rErr != nil {
		t.Fatal(rErr)
	}
	if !sameResult(vRes, rRes) {
		t.Fatalf("overflow semantics diverge:\nrow: %v\nvec: %v", rRes.Rows, vRes.Rows)
	}

	want := []sqldata.Value{
		sqldata.NewFloat(float64(math.MaxInt64) + 10), // promoted
		sqldata.NewInt(math.MaxInt64),                 // exact boundary stays int
		sqldata.NewInt(math.MaxInt64 - 1),             // intermediate overflow cancels
	}
	if len(vRes.Rows) != len(want) {
		t.Fatalf("got %d groups, want %d: %v", len(vRes.Rows), len(want), vRes.Rows)
	}
	for i, w := range want {
		got := vRes.Rows[i][1]
		if got.Null || got.T != w.T || got.Key() != w.Key() {
			t.Errorf("group %d: SUM = %v (type %v), want %v", i+1, got, got.T, w)
		}
	}
}

// TestVecExplainAnalyze checks that EXPLAIN ANALYZE output pairs actual
// row counts with the cost model's estimates.
func TestVecExplainAnalyze(t *testing.T) {
	db := fuzzDB()
	sql := "SELECT city, COUNT(*) FROM customer WHERE credit > 0 GROUP BY city"
	p := mustPrepare(t, db, sql, Options{})
	_, _, stats, err := p.RunStats(context.Background(), DefaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	out := p.ExplainStats(stats)
	if !strings.Contains(out, "rows=") {
		t.Fatalf("ExplainStats missing actual row counts:\n%s", out)
	}
	if !strings.Contains(out, "est=") {
		t.Fatalf("ExplainStats missing cost estimates:\n%s", out)
	}
	// Plain EXPLAIN must not grow est=/rows= annotations.
	plain := p.Explain()
	if strings.Contains(plain, "est=") || strings.Contains(plain, "rows=") {
		t.Fatalf("Explain must not carry runtime annotations:\n%s", plain)
	}
}

// TestVecBudgetParity requires the vectorized executor to trip the same
// budgets the row executor does.
func TestVecBudgetParity(t *testing.T) {
	db := fuzzDB()
	ctx := context.Background()
	cases := []struct {
		sql string
		b   Budget
	}{
		{"SELECT name FROM customer", Budget{MaxRows: 3}},
		{"SELECT c.name, o.total FROM customer AS c JOIN orders AS o ON c.id = o.customer_id", Budget{MaxRows: 1 << 20, MaxJoinRows: 2}},
	}
	for _, tc := range cases {
		vp := mustPrepare(t, db, tc.sql, Options{})
		if !vp.Vectorized() {
			t.Fatalf("expected vectorized plan for %q", tc.sql)
		}
		_, _, vErr := vp.Run(ctx, tc.b)
		rp := mustPrepare(t, db, tc.sql, Options{NoVector: true})
		_, _, rErr := rp.Run(ctx, tc.b)
		vb, vOK := vErr.(*BudgetError)
		rb, rOK := rErr.(*BudgetError)
		if !vOK || !rOK {
			t.Fatalf("%q: expected budget errors, got vec=%v row=%v", tc.sql, vErr, rErr)
		}
		if vb.Resource != rb.Resource {
			t.Errorf("%q: budget resource mismatch vec=%s row=%s", tc.sql, vb.Resource, rb.Resource)
		}
	}
}

// TestVecStatsDrivenChoices sanity-checks the cost model's planner
// outputs on a skewed dataset: estimates exist for every operator and
// the hash-join build side lands on the smaller input.
func TestVecStatsDrivenChoices(t *testing.T) {
	db := sqldata.NewDatabase("skew")
	big, err := db.CreateTable(&sqldata.Schema{
		Name: "fact",
		Columns: []sqldata.Column{
			{Name: "k", Type: sqldata.TypeInt},
			{Name: "v", Type: sqldata.TypeInt},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		big.MustInsert(sqldata.NewInt(int64(i%10)), sqldata.NewInt(int64(i)))
	}
	small, err := db.CreateTable(&sqldata.Schema{
		Name: "dim",
		Columns: []sqldata.Column{
			{Name: "k", Type: sqldata.TypeInt},
			{Name: "label", Type: sqldata.TypeText},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		small.MustInsert(sqldata.NewInt(int64(i)), sqldata.NewText(strings.Repeat("x", i+1)))
	}

	// fact is on the left: with the dim side tiny, the planner should
	// keep building on the right (the default), not on the 1000-row
	// probe side.
	p := mustPrepare(t, db, "SELECT SUM(fact.v) FROM fact JOIN dim ON fact.k = dim.k", Options{})
	if !p.Vectorized() {
		t.Fatal("expected vectorized plan")
	}
	if p.vec.joins[0].buildLeft {
		t.Error("build side should stay on the small right table")
	}
	// dim on the left: now the left side is the cheap build side.
	p2 := mustPrepare(t, db, "SELECT SUM(fact.v) FROM dim JOIN fact ON dim.k = fact.k", Options{})
	if !p2.Vectorized() {
		t.Fatal("expected vectorized plan")
	}
	if !p2.vec.joins[0].buildLeft {
		t.Error("build side should move to the small left table")
	}
	// Estimates populated for the scan under both plans.
	if p.est == nil || p.est[p.vec.scan0.nid] != 1000 {
		t.Errorf("scan estimate = %v, want 1000", p.est)
	}

	// And the estimates agree with reality on an unfiltered scan.
	_, _, stats, err := p.RunStats(context.Background(), DefaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	out := p.ExplainStats(stats)
	if !strings.Contains(out, "rows=1000 est=1000") {
		t.Errorf("expected exact scan estimate in:\n%s", out)
	}
}
