package plan

import (
	"strings"
	"time"

	"nlidb/internal/sqldata"
)

// The vectorized executor runs a compiled vplan batch-at-a-time over the
// tables' typed column vectors (sqldata.Columnar). The working set is a
// set of selection vectors — one row-index array per FROM table — so
// filters and joins only shuffle int32 indices until the final emit
// boxes result rows. Observable behavior is contractually identical to
// the row-at-a-time executor: same results in the same order, the same
// Usage totals and budget errors, the same operator spans and EXPLAIN
// ANALYZE row counts. Only cancellation granularity differs (per batch
// instead of every 64 rows).

// vcol is one evaluated expression over the working set: a typed payload
// slice plus an optional null mask. cnst marks a broadcast scalar whose
// slices have length 1.
type vcol struct {
	t    sqldata.Type
	cnst bool
	null []bool

	ints   []int64 // TypeInt, TypeDate
	floats []float64
	texts  []string
	bools  []bool
}

func (c *vcol) ix(i int) int {
	if c.cnst {
		return 0
	}
	return i
}

func (c *vcol) nullAt(i int) bool {
	return c.null != nil && c.null[c.ix(i)]
}

// boolAt reads a three-valued boolean lane.
func (c *vcol) boolAt(i int) (b, isNull bool) {
	i = c.ix(i)
	if c.null != nil && c.null[i] {
		return false, true
	}
	return c.bools[i], false
}

// asFloat widens an int lane to float64, matching Value.Float.
func (c *vcol) asFloat(i int) float64 {
	if c.t == sqldata.TypeFloat {
		return c.floats[i]
	}
	return float64(c.ints[i])
}

// value boxes one lane back into a Value.
func (c *vcol) value(i int) sqldata.Value {
	i = c.ix(i)
	if c.null != nil && c.null[i] {
		return sqldata.NullValue()
	}
	switch c.t {
	case sqldata.TypeInt:
		return sqldata.NewInt(c.ints[i])
	case sqldata.TypeFloat:
		return sqldata.NewFloat(c.floats[i])
	case sqldata.TypeText:
		return sqldata.NewText(c.texts[i])
	case sqldata.TypeBool:
		return sqldata.NewBool(c.bools[i])
	case sqldata.TypeDate:
		return sqldata.NewDateDays(c.ints[i])
	}
	return sqldata.NullValue()
}

// vconst broadcasts one scalar.
func vconst(v sqldata.Value) vcol {
	c := vcol{cnst: true}
	if v.Null {
		c.null = []bool{true}
		return c
	}
	c.t = v.T
	switch v.T {
	case sqldata.TypeInt:
		c.ints = []int64{v.Int()}
	case sqldata.TypeFloat:
		c.floats = []float64{v.Float()}
	case sqldata.TypeText:
		c.texts = []string{v.Text()}
	case sqldata.TypeBool:
		c.bools = []bool{v.Bool()}
	case sqldata.TypeDate:
		c.ints = []int64{v.DateDays()}
	}
	return c
}

// cmpVC compares lane i of a with lane j of b, mirroring sqldata.Compare
// exactly (int-vs-float without lossy widening, NaN == NaN and below all
// numbers). Only called on lanes whose static types are comparable.
func cmpVC(a *vcol, i int, b *vcol, j int) int {
	switch {
	case a.t == sqldata.TypeInt && b.t == sqldata.TypeInt,
		a.t == sqldata.TypeDate && b.t == sqldata.TypeDate:
		return cmpI64(a.ints[i], b.ints[j])
	case a.t == sqldata.TypeInt && b.t == sqldata.TypeFloat:
		return sqldata.CompareIntFloat(a.ints[i], b.floats[j])
	case a.t == sqldata.TypeFloat && b.t == sqldata.TypeInt:
		return -sqldata.CompareIntFloat(b.ints[j], a.floats[i])
	case a.t == sqldata.TypeFloat && b.t == sqldata.TypeFloat:
		return cmpF64(a.floats[i], b.floats[j])
	case a.t == sqldata.TypeText && b.t == sqldata.TypeText:
		return strings.Compare(a.texts[i], b.texts[j])
	case a.t == sqldata.TypeBool && b.t == sqldata.TypeBool:
		switch {
		case !a.bools[i] && b.bools[j]:
			return -1
		case a.bools[i] && !b.bools[j]:
			return 1
		}
		return 0
	}
	return 0 // unreachable: static typing gates comparable pairs
}

func cmpI64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpF64(a, b float64) int {
	switch {
	case a < b || (a != a && b == b): // NaN sorts below numbers
		return -1
	case a > b || (a == a && b != b):
		return 1
	}
	return 0
}

// gather materializes one column of the working set. idx == nil means
// identity (the vector itself, zero-copy); a negative index is a LEFT
// JOIN null pad.
func gather(cv *sqldata.ColumnVector, idx []int32, n int) vcol {
	out := vcol{t: cv.Type}
	if idx == nil {
		if cv.Nulls != nil {
			out.null = make([]bool, n)
			for i := 0; i < n; i++ {
				out.null[i] = cv.Nulls.Get(i)
			}
		}
		out.ints, out.floats, out.texts, out.bools = cv.Ints, cv.Floats, cv.Texts, cv.Bools
		return out
	}
	switch cv.Type {
	case sqldata.TypeInt, sqldata.TypeDate:
		out.ints = make([]int64, n)
	case sqldata.TypeFloat:
		out.floats = make([]float64, n)
	case sqldata.TypeText:
		out.texts = make([]string, n)
	case sqldata.TypeBool:
		out.bools = make([]bool, n)
	}
	for i, ix := range idx {
		if ix < 0 || cv.Null(int(ix)) {
			if out.null == nil {
				out.null = make([]bool, n)
			}
			out.null[i] = true
			continue
		}
		switch cv.Type {
		case sqldata.TypeInt, sqldata.TypeDate:
			out.ints[i] = cv.Ints[ix]
		case sqldata.TypeFloat:
			out.floats[i] = cv.Floats[ix]
		case sqldata.TypeText:
			out.texts[i] = cv.Texts[ix]
		case sqldata.TypeBool:
			out.bools[i] = cv.Bools[ix]
		}
	}
	return out
}

// vctx supplies column vectors (with per-batch caching) and alias slots
// to the vector evaluator.
type vctx struct {
	n     int
	get   func(off int) vcol
	slots []vcol
}

func cachedCtx(n int, raw func(off int) vcol) *vctx {
	cache := map[int]vcol{}
	return &vctx{n: n, get: func(off int) vcol {
		if c, ok := cache[off]; ok {
			return c
		}
		c := raw(off)
		cache[off] = c
		return c
	}}
}

// evalVec evaluates a statically safe bound expression over the working
// set. Kernel dispatch follows the static types established by safeType,
// so no lane can raise an error the row evaluator would have raised.
func evalVec(ctx *vctx, e bexpr) vcol {
	n := ctx.n
	switch t := e.(type) {
	case *bLit:
		return vconst(t.v)

	case *bCol:
		return ctx.get(t.off)

	case *bAlias:
		return ctx.slots[t.slot]

	case *bBinary:
		if t.op == "AND" || t.op == "OR" {
			l, r := evalVec(ctx, t.l), evalVec(ctx, t.r)
			return evalBool3(t.op, &l, &r, n)
		}
		l, r := evalVec(ctx, t.l), evalVec(ctx, t.r)
		switch t.op {
		case "=", "!=", "<", "<=", ">", ">=":
			return evalCmp(t.op, &l, &r, n)
		default:
			return evalArith(t.op, &l, &r, n)
		}

	case *bUnary:
		x := evalVec(ctx, t.x)
		return evalUnary(t.op, &x, n)

	case *bFunc:
		x := evalVec(ctx, t.args[0])
		return evalFuncVec(t.name, &x, n)

	case *bIsNull:
		x := evalVec(ctx, t.x)
		m := laneCount(n, x.cnst)
		out := vcol{t: sqldata.TypeBool, cnst: x.cnst, bools: make([]bool, m)}
		for i := 0; i < m; i++ {
			out.bools[i] = x.nullAt(i) != t.not
		}
		return out

	case *bBetween:
		x := evalVec(ctx, t.x)
		lo := evalVec(ctx, t.lo)
		hi := evalVec(ctx, t.hi)
		cnst := x.cnst && lo.cnst && hi.cnst
		m := laneCount(n, cnst)
		out := vcol{t: sqldata.TypeBool, cnst: cnst, bools: make([]bool, m)}
		for i := 0; i < m; i++ {
			if x.nullAt(i) || lo.nullAt(i) || hi.nullAt(i) {
				out.setNull(i, m)
				continue
			}
			cl := cmpVC(&x, x.ix(i), &lo, lo.ix(i))
			ch := cmpVC(&x, x.ix(i), &hi, hi.ix(i))
			out.bools[i] = (cl >= 0 && ch <= 0) != t.not
		}
		return out

	case *bIn:
		x := evalVec(ctx, t.x)
		elems := make([]vcol, len(t.list))
		cnst := x.cnst
		for i, el := range t.list {
			elems[i] = evalVec(ctx, el)
			cnst = cnst && elems[i].cnst
		}
		m := laneCount(n, cnst)
		out := vcol{t: sqldata.TypeBool, cnst: cnst, bools: make([]bool, m)}
		for i := 0; i < m; i++ {
			if x.nullAt(i) {
				if len(elems) == 0 {
					out.bools[i] = t.not // x IN () is FALSE even for NULL probe
				} else {
					out.setNull(i, m)
				}
				continue
			}
			matched, sawNull := false, false
			for ei := range elems {
				el := &elems[ei]
				if el.nullAt(i) {
					sawNull = true
					continue
				}
				if cmpVC(&x, x.ix(i), el, el.ix(i)) == 0 {
					matched = true
					break
				}
			}
			switch {
			case matched:
				out.bools[i] = !t.not
			case sawNull:
				out.setNull(i, m)
			default:
				out.bools[i] = t.not
			}
		}
		return out

	case *bLike:
		x := evalVec(ctx, t.x)
		m := laneCount(n, x.cnst)
		out := vcol{t: sqldata.TypeBool, cnst: x.cnst, bools: make([]bool, m)}
		for i := 0; i < m; i++ {
			if x.nullAt(i) {
				out.setNull(i, m)
				continue
			}
			out.bools[i] = likeMatch(t.pattern, x.texts[x.ix(i)]) != t.not
		}
		return out
	}
	// Unreachable: compileVec only admits the expression forms above.
	out := vcol{cnst: true, null: []bool{true}}
	return out
}

func laneCount(n int, cnst bool) int {
	if cnst {
		return 1
	}
	return n
}

func (c *vcol) setNull(i, m int) {
	if c.null == nil {
		c.null = make([]bool, m)
	}
	c.null[i] = true
}

func evalBool3(op string, l, r *vcol, n int) vcol {
	cnst := l.cnst && r.cnst
	m := laneCount(n, cnst)
	out := vcol{t: sqldata.TypeBool, cnst: cnst, bools: make([]bool, m)}
	and := op == "AND"
	for i := 0; i < m; i++ {
		lb, ln := l.boolAt(i)
		rb, rn := r.boolAt(i)
		if and {
			switch {
			case (!ln && !lb) || (!rn && !rb):
				// false dominates
			case ln || rn:
				out.setNull(i, m)
			default:
				out.bools[i] = true
			}
		} else {
			switch {
			case (!ln && lb) || (!rn && rb):
				out.bools[i] = true
			case ln || rn:
				out.setNull(i, m)
			}
		}
	}
	return out
}

func evalCmp(op string, l, r *vcol, n int) vcol {
	cnst := l.cnst && r.cnst
	m := laneCount(n, cnst)
	out := vcol{t: sqldata.TypeBool, cnst: cnst, bools: make([]bool, m)}
	for i := 0; i < m; i++ {
		if l.nullAt(i) || r.nullAt(i) {
			out.setNull(i, m)
			continue
		}
		c := cmpVC(l, l.ix(i), r, r.ix(i))
		var ok bool
		switch op {
		case "=":
			ok = c == 0
		case "!=":
			ok = c != 0
		case "<":
			ok = c < 0
		case "<=":
			ok = c <= 0
		case ">":
			ok = c > 0
		default:
			ok = c >= 0
		}
		out.bools[i] = ok
	}
	return out
}

func evalArith(op string, l, r *vcol, n int) vcol {
	cnst := l.cnst && r.cnst
	m := laneCount(n, cnst)
	if op != "/" && l.t == sqldata.TypeInt && r.t == sqldata.TypeInt {
		out := vcol{t: sqldata.TypeInt, cnst: cnst, ints: make([]int64, m)}
		for i := 0; i < m; i++ {
			if l.nullAt(i) || r.nullAt(i) {
				out.setNull(i, m)
				continue
			}
			a, b := l.ints[l.ix(i)], r.ints[r.ix(i)]
			switch op {
			case "+":
				out.ints[i] = a + b
			case "-":
				out.ints[i] = a - b
			default:
				out.ints[i] = a * b
			}
		}
		return out
	}
	out := vcol{t: sqldata.TypeFloat, cnst: cnst, floats: make([]float64, m)}
	for i := 0; i < m; i++ {
		if l.nullAt(i) || r.nullAt(i) {
			out.setNull(i, m)
			continue
		}
		a, b := l.asFloat(l.ix(i)), r.asFloat(r.ix(i))
		switch op {
		case "+":
			out.floats[i] = a + b
		case "-":
			out.floats[i] = a - b
		case "*":
			out.floats[i] = a * b
		default:
			if b == 0 {
				out.setNull(i, m) // division by zero yields NULL, like the row path
				continue
			}
			out.floats[i] = a / b
		}
	}
	return out
}

func evalUnary(op string, x *vcol, n int) vcol {
	m := laneCount(n, x.cnst)
	if op == "NOT" {
		out := vcol{t: sqldata.TypeBool, cnst: x.cnst, bools: make([]bool, m)}
		for i := 0; i < m; i++ {
			b, isNull := x.boolAt(i)
			if isNull {
				out.setNull(i, m)
				continue
			}
			out.bools[i] = !b
		}
		return out
	}
	// unary minus over a statically numeric column
	out := vcol{t: x.t, cnst: x.cnst}
	if x.t == sqldata.TypeFloat {
		out.floats = make([]float64, m)
	} else {
		out.ints = make([]int64, m)
	}
	for i := 0; i < m; i++ {
		if x.nullAt(i) {
			out.setNull(i, m)
			continue
		}
		if x.t == sqldata.TypeFloat {
			out.floats[i] = -x.floats[x.ix(i)]
		} else {
			out.ints[i] = -x.ints[x.ix(i)]
		}
	}
	return out
}

func evalFuncVec(name string, x *vcol, n int) vcol {
	m := laneCount(n, x.cnst)
	var out vcol
	switch name {
	case "LOWER", "UPPER":
		out = vcol{t: sqldata.TypeText, cnst: x.cnst, texts: make([]string, m)}
	case "ABS":
		out = vcol{t: x.t, cnst: x.cnst}
		if x.t == sqldata.TypeFloat {
			out.floats = make([]float64, m)
		} else {
			out.ints = make([]int64, m)
		}
	case "YEAR":
		out = vcol{t: sqldata.TypeInt, cnst: x.cnst, ints: make([]int64, m)}
	default:
		return vcol{cnst: true, null: []bool{true}} // unreachable: gated by safeType
	}
	for i := 0; i < m; i++ {
		if x.nullAt(i) {
			out.setNull(i, m)
			continue
		}
		j := x.ix(i)
		switch name {
		case "LOWER":
			out.texts[i] = strings.ToLower(x.texts[j])
		case "UPPER":
			out.texts[i] = strings.ToUpper(x.texts[j])
		case "ABS":
			if x.t == sqldata.TypeFloat {
				v := x.floats[j]
				if v < 0 {
					v = -v
				}
				out.floats[i] = v
			} else {
				v := x.ints[j]
				if v < 0 {
					v = -v
				}
				out.ints[i] = v
			}
		case "YEAR":
			out.ints[i] = int64(time.Unix(x.ints[j]*86400, 0).UTC().Year())
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Plan execution over the working set.

// wset is the vectorized working set: one selection vector per FROM
// table (nil = identity over the whole table), all of length n. A
// negative index marks a LEFT JOIN null pad.
type wset struct {
	n   int
	idx [][]int32
}

type vrun struct {
	p      *Plan
	v      *vplan
	env    *execEnv
	st     *execState
	cols   [][]*sqldata.ColumnVector
	nrows  []int
	placed []bool
	ws     wset
}

func (e *execEnv) setStat(nid, n int) {
	if e.stats != nil {
		e.stats[nid] = int64(n)
	}
}

// runVec executes the compiled vectorized plan.
func (p *Plan) runVec(env *execEnv) (*sqldata.Result, error) {
	v := p.vec
	r := &vrun{
		p: p, v: v, env: env, st: env.st,
		cols:   make([][]*sqldata.ColumnVector, len(p.tabs)),
		nrows:  make([]int, len(p.tabs)),
		placed: make([]bool, len(p.tabs)),
	}
	for k, tab := range p.tabs {
		cc := tab.Columnar()
		r.cols[k] = cc
		if len(cc) > 0 {
			r.nrows[k] = cc[0].Len
		}
	}

	sel, n0, err := r.scanFiltered(&v.scan0)
	if err != nil {
		return nil, err
	}
	env.setStat(v.scan0.nid, n0)
	r.ws = wset{n: n0, idx: make([][]int32, len(p.tabs))}
	r.ws.idx[v.scan0.tabIdx] = sel
	r.placed[v.scan0.tabIdx] = true

	for _, k := range v.order {
		if err := r.joinStep(&v.joins[k]); err != nil {
			return nil, err
		}
	}

	if v.residNid >= 0 {
		ctx := r.wsCtx()
		keep := r.predMask(ctx, v.resid)
		r.compact(keep)
		env.setStat(v.residNid, r.ws.n)
		if err := r.st.checkCtx(); err != nil {
			return nil, err
		}
	}

	if p.grouped {
		return r.runGrouped()
	}
	return r.emitRows()
}

// wsCtx returns a fresh evaluation context over the current working set.
func (r *vrun) wsCtx() *vctx {
	ws := r.ws
	return cachedCtx(ws.n, func(off int) vcol {
		k := r.p.tableAtOff(off)
		return gather(r.cols[k][off-r.p.toffs[k]], ws.idx[k], ws.n)
	})
}

// predMask evaluates safe conjuncts over ctx and ANDs their definite
// truth — identical to evaluating every conjunct per row, since safe
// conjuncts cannot error.
func (r *vrun) predMask(ctx *vctx, conj []bexpr) []bool {
	keep := make([]bool, ctx.n)
	for i := range keep {
		keep[i] = true
	}
	for _, c := range conj {
		v := evalVec(ctx, c)
		for i := 0; i < ctx.n; i++ {
			if !keep[i] {
				continue
			}
			b, isNull := v.boolAt(i)
			keep[i] = !isNull && b
		}
	}
	return keep
}

// compact drops working-set tuples where keep is false.
func (r *vrun) compact(keep []bool) {
	kept := 0
	for _, k := range keep {
		if k {
			kept++
		}
	}
	out := make([][]int32, len(r.ws.idx))
	for t := range r.ws.idx {
		if !r.placed[t] {
			continue
		}
		idx := r.ws.idx[t]
		ni := make([]int32, 0, kept)
		for i := 0; i < r.ws.n; i++ {
			if !keep[i] {
				continue
			}
			if idx == nil {
				ni = append(ni, int32(i))
			} else {
				ni = append(ni, idx[i])
			}
		}
		out[t] = ni
	}
	r.ws = wset{n: kept, idx: out}
}

// scanFiltered applies a scan step's pushed-down filters as successive
// selection vectors, returning the surviving row indices (nil = whole
// table) and their count. It emits the scan span and charges the budget
// exactly like scanNode.rows.
func (r *vrun) scanFiltered(s *vscanStep) ([]int32, int, error) {
	cols := r.cols[s.tabIdx]
	n := r.nrows[s.tabIdx]
	if s.span != "" {
		sp := r.env.span.Child(s.span)
		if s.charge {
			if err := r.st.addRows(n); err != nil {
				sp.End()
				return nil, 0, err
			}
		}
		sp.Add("rows", int64(n))
		sp.End()
	}
	var sel []int32
	cur := n
	for _, f := range s.filters {
		ctx := cachedCtx(cur, func(off int) vcol { return gather(cols[off], sel, cur) })
		v := evalVec(ctx, f)
		next := make([]int32, 0, cur)
		for i := 0; i < cur; i++ {
			b, isNull := v.boolAt(i)
			if isNull || !b {
				continue
			}
			if sel == nil {
				next = append(next, int32(i))
			} else {
				next = append(next, sel[i])
			}
		}
		sel, cur = next, len(next)
		if err := r.st.checkCtx(); err != nil {
			return nil, 0, err
		}
	}
	return sel, cur, nil
}

// joinStep hash-joins the working set with one scanned table, preserving
// the row executor's left-major output order and per-row join metering.
func (r *vrun) joinStep(j *vjoinStep) error {
	leftN := r.ws.n
	rsel, rn, err := r.scanFiltered(&j.right)
	if err != nil {
		return err
	}
	r.env.setStat(j.right.nid, rn)
	rtab := j.right.tabIdx
	rcols := r.cols[rtab]

	sp := r.env.span.Child(j.span)
	sp.Add("left_rows", int64(leftN))
	sp.Add("right_rows", int64(rn))
	sp.SetAttr("algo", "hash")

	// Key vectors for both sides.
	lctx := r.wsCtx()
	lk := make([]vcol, len(j.lKeys))
	for i, e := range j.lKeys {
		lk[i] = evalVec(lctx, e)
	}
	rctx := cachedCtx(rn, func(off int) vcol { return gather(rcols[off], rsel, rn) })
	rk := make([]vcol, len(j.rKeys))
	for i, e := range j.rKeys {
		rk[i] = evalVec(rctx, e)
	}

	rowAt := func(pos int) int32 {
		if rsel == nil {
			return int32(pos)
		}
		return rsel[pos]
	}

	// Candidate pairs in left-major order (candL: working-set tuple,
	// candR: right-table row), with per-left-tuple boundaries for LEFT
	// JOIN padding.
	var candL, candR []int32
	starts := make([]int32, leftN+1)

	intKey := len(j.kinds) == 1 && (j.kinds[0] == kInt || j.kinds[0] == kDate)
	if j.buildLeft {
		matches := make([][]int32, leftN)
		if intKey {
			buckets := make(map[int64][]int32, leftN)
			for i := 0; i < leftN; i++ {
				if !lk[0].nullAt(i) {
					k := lk[0].ints[lk[0].ix(i)]
					buckets[k] = append(buckets[k], int32(i))
				}
			}
			for pos := 0; pos < rn; pos++ {
				if rk[0].nullAt(pos) {
					continue
				}
				for _, li := range buckets[rk[0].ints[rk[0].ix(pos)]] {
					matches[li] = append(matches[li], rowAt(pos))
				}
			}
		} else {
			buckets := make(map[string][]int32, leftN)
			for i := 0; i < leftN; i++ {
				if k, ok := vKeyString(lk, j.kinds, i); ok {
					buckets[k] = append(buckets[k], int32(i))
				}
			}
			for pos := 0; pos < rn; pos++ {
				k, ok := vKeyString(rk, j.kinds, pos)
				if !ok {
					continue
				}
				for _, li := range buckets[k] {
					matches[li] = append(matches[li], rowAt(pos))
				}
			}
		}
		for i := 0; i < leftN; i++ {
			starts[i] = int32(len(candL))
			for _, rr := range matches[i] {
				candL = append(candL, int32(i))
				candR = append(candR, rr)
			}
		}
		starts[leftN] = int32(len(candL))
	} else {
		// Build right, probe left in order — the row executor's shape.
		if intKey {
			buckets := make(map[int64][]int32, rn)
			for pos := 0; pos < rn; pos++ {
				if !rk[0].nullAt(pos) {
					k := rk[0].ints[rk[0].ix(pos)]
					buckets[k] = append(buckets[k], rowAt(pos))
				}
			}
			for i := 0; i < leftN; i++ {
				starts[i] = int32(len(candL))
				if lk[0].nullAt(i) {
					continue
				}
				for _, rr := range buckets[lk[0].ints[lk[0].ix(i)]] {
					candL = append(candL, int32(i))
					candR = append(candR, rr)
				}
			}
		} else {
			buckets := make(map[string][]int32, rn)
			for pos := 0; pos < rn; pos++ {
				if k, ok := vKeyString(rk, j.kinds, pos); ok {
					buckets[k] = append(buckets[k], rowAt(pos))
				}
			}
			for i := 0; i < leftN; i++ {
				starts[i] = int32(len(candL))
				k, ok := vKeyString(lk, j.kinds, i)
				if !ok {
					continue
				}
				for _, rr := range buckets[k] {
					candL = append(candL, int32(i))
					candR = append(candR, rr)
				}
			}
		}
		starts[leftN] = int32(len(candL))
	}

	// Residual conjuncts over the candidate pairs.
	var keep []bool
	if len(j.residual) > 0 && len(candL) > 0 {
		cand := wset{n: len(candL), idx: make([][]int32, len(r.p.tabs))}
		for t := range r.ws.idx {
			if !r.placed[t] {
				continue
			}
			idx := r.ws.idx[t]
			ci := make([]int32, len(candL))
			for c, li := range candL {
				if idx == nil {
					ci[c] = li
				} else {
					ci[c] = idx[li]
				}
			}
			cand.idx[t] = ci
		}
		cand.idx[rtab] = candR
		cctx := cachedCtx(cand.n, func(off int) vcol {
			k := r.p.tableAtOff(off)
			return gather(r.cols[k][off-r.p.toffs[k]], cand.idx[k], cand.n)
		})
		keep = r.predMask(cctx, j.residual)
	}

	// Emit in left-major order, padding unmatched left tuples on LEFT
	// JOIN.
	out := make([][]int32, len(r.p.tabs))
	for t := range out {
		if r.placed[t] {
			out[t] = make([]int32, 0, len(candL))
		}
	}
	var rout []int32
	emit := func(li int32, rr int32) {
		for t := range out {
			if !r.placed[t] {
				continue
			}
			idx := r.ws.idx[t]
			if idx == nil {
				out[t] = append(out[t], li)
			} else {
				out[t] = append(out[t], idx[li])
			}
		}
		rout = append(rout, rr)
	}
	for i := 0; i < leftN; i++ {
		matched := false
		for c := int(starts[i]); c < int(starts[i+1]); c++ {
			if keep != nil && !keep[c] {
				continue
			}
			matched = true
			emit(int32(i), candR[c])
		}
		if !matched && j.leftJoin {
			emit(int32(i), -1)
		}
	}
	outN := len(rout)

	sp.Add("out_rows", int64(outN))
	sp.End()
	if err := r.st.addJoinRows(outN); err != nil {
		return err
	}
	r.env.setStat(j.nid, outN)

	out[rtab] = rout
	r.placed[rtab] = true
	r.ws = wset{n: outN, idx: out}
	return r.st.checkCtx()
}

// vKeyString renders the composite hash key of lane i, using the same
// canonical per-kind encodings as the row executor's hashOf. ok=false
// marks a NULL key component (the lane cannot match).
func vKeyString(keys []vcol, kinds []keyKind, i int) (string, bool) {
	var sb strings.Builder
	for ki := range keys {
		v := keys[ki].value(i)
		if v.Null {
			return "", false
		}
		s, ok := hashKey(v, kinds[ki])
		if !ok {
			s = v.Key()
		}
		sb.WriteString(s)
		sb.WriteByte(0x1f)
	}
	return sb.String(), true
}

// boxTuple materializes working-set tuple i as a full statement row.
func (r *vrun) boxTuple(i int) sqldata.Row {
	row := make(sqldata.Row, 0, r.p.width)
	for t := range r.p.tabs {
		idx := r.ws.idx[t]
		ri := int32(i)
		if idx != nil {
			ri = idx[i]
		}
		for _, cv := range r.cols[t] {
			if ri < 0 {
				row = append(row, sqldata.NullValue())
			} else {
				row = append(row, cv.Value(int(ri)))
			}
		}
	}
	return row
}

// emitRows projects the non-grouped working set and runs the shared
// sort/distinct/limit tail.
func (r *vrun) emitRows() (*sqldata.Result, error) {
	p, st := r.p, r.st
	n := r.ws.n
	if !r.v.vecEmit {
		var out []outRow
		for i := 0; i < n; i++ {
			if err := st.tick(); err != nil {
				return nil, err
			}
			fr := &frame{row: r.boxTuple(i), parent: r.env.parent}
			if err := p.emitFrame(st, fr, &out); err != nil {
				return nil, err
			}
		}
		return p.finishRows(r.env, out)
	}

	ctx := r.wsCtx()
	var slots []vcol
	for _, it := range p.items {
		if it.star {
			for _, off := range it.offs {
				slots = append(slots, ctx.get(off))
			}
			continue
		}
		ctx.slots = slots
		slots = append(slots, evalVec(ctx, it.expr))
	}
	ctx.slots = slots
	keys := make([]vcol, len(p.orderBy))
	for i, o := range p.orderBy {
		keys[i] = evalVec(ctx, o.key)
	}

	if err := st.addRows(n); err != nil {
		return nil, err
	}
	out := make([]outRow, n)
	for i := 0; i < n; i++ {
		proj := make(sqldata.Row, len(slots))
		for s := range slots {
			proj[s] = slots[s].value(i)
		}
		var ks []sqldata.Value
		if len(keys) > 0 {
			ks = make([]sqldata.Value, len(keys))
			for k := range keys {
				ks[k] = keys[k].value(i)
			}
		}
		out[i] = outRow{proj: proj, keys: ks}
	}
	return p.finishRows(r.env, out)
}

// runGrouped hash-aggregates the working set: group ids in first-
// appearance order, vectorized per-group aggregate accumulation, then
// the ordinary boxed evaluator for HAVING/projection over one frame per
// group with the precomputed aggregates attached.
func (r *vrun) runGrouped() (*sqldata.Result, error) {
	p, st := r.p, r.st
	n := r.ws.n

	var gids []int32
	var repIdx []int32
	ngroups := 0
	if len(p.groupKeys) == 0 {
		ngroups = 1
		gids = make([]int32, n)
		if n > 0 {
			repIdx = []int32{0}
		}
		r.env.setStat(p.nidGroup, 1)
	} else {
		gsp := r.env.span.Child("group")
		ctx := r.wsCtx()
		kcols := make([]vcol, len(p.groupKeys))
		for i, k := range p.groupKeys {
			kcols[i] = evalVec(ctx, k)
		}
		gids = make([]int32, n)
		if len(kcols) == 1 && !kcols[0].cnst &&
			(kcols[0].t == sqldata.TypeInt || kcols[0].t == sqldata.TypeDate) && kcols[0].ints != nil {
			// Single integer-typed key: group on the raw int64.
			m := make(map[int64]int32, 64)
			nullGid := int32(-1)
			kc := &kcols[0]
			for i := 0; i < n; i++ {
				var gid int32
				if kc.nullAt(i) {
					if nullGid < 0 {
						nullGid = int32(ngroups)
						ngroups++
						repIdx = append(repIdx, int32(i))
					}
					gid = nullGid
				} else {
					k := kc.ints[i]
					g, ok := m[k]
					if !ok {
						g = int32(ngroups)
						ngroups++
						repIdx = append(repIdx, int32(i))
						m[k] = g
					}
					gid = g
				}
				gids[i] = gid
			}
		} else {
			// General path: the row executor's canonical string keys.
			m := make(map[string]int32, 64)
			var sb strings.Builder
			for i := 0; i < n; i++ {
				sb.Reset()
				for ki := range kcols {
					sb.WriteString(kcols[ki].value(i).Key())
					sb.WriteByte(0x1f)
				}
				k := sb.String()
				g, ok := m[k]
				if !ok {
					g = int32(ngroups)
					ngroups++
					repIdx = append(repIdx, int32(i))
					m[k] = g
				}
				gids[i] = g
			}
		}
		gsp.Add("in_rows", int64(n))
		gsp.Add("groups", int64(ngroups))
		gsp.End()
		r.env.setStat(p.nidGroup, ngroups)
		if err := st.checkCtx(); err != nil {
			return nil, err
		}
	}

	// Vectorized aggregate accumulation, in tuple order so order-
	// sensitive float sums accumulate exactly like the row path.
	aggVals := make([][]sqldata.Value, len(r.v.aggs))
	actx := r.wsCtx()
	for ai, a := range r.v.aggs {
		aggVals[ai] = r.aggregateVec(actx, a, gids, ngroups)
	}
	if err := st.checkCtx(); err != nil {
		return nil, err
	}

	var out []outRow
	for gid := 0; gid < ngroups; gid++ {
		var rep sqldata.Row
		if gid < len(repIdx) {
			rep = r.boxTuple(int(repIdx[gid]))
		} else {
			rep = nullRow(p.width) // empty global group
		}
		var am map[*bAgg]sqldata.Value
		if len(r.v.aggs) > 0 {
			am = make(map[*bAgg]sqldata.Value, len(r.v.aggs))
			for ai, a := range r.v.aggs {
				am[a] = aggVals[ai][gid]
			}
		}
		fr := &frame{row: rep, parent: r.env.parent, aggVals: am}
		if p.having != nil {
			ok, err := evalPredicate(st, fr, p.having)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		if err := p.emitFrame(st, fr, &out); err != nil {
			return nil, err
		}
	}
	return p.finishRows(r.env, out)
}

// aggregateVec computes one aggregate for every group. Accumulation
// visits tuples in working-set order; integer SUM uses the same 128-bit
// accumulator as the row path, so overflow promotes to float
// identically.
func (r *vrun) aggregateVec(ctx *vctx, a *bAgg, gids []int32, ngroups int) []sqldata.Value {
	n := len(gids)
	out := make([]sqldata.Value, ngroups)

	if a.star { // COUNT(*)
		counts := make([]int64, ngroups)
		for i := 0; i < n; i++ {
			counts[gids[i]]++
		}
		for g := range out {
			out[g] = sqldata.NewInt(counts[g])
		}
		return out
	}

	arg := evalVec(ctx, a.arg)
	var seen []map[string]bool
	if a.distinct {
		seen = make([]map[string]bool, ngroups)
	}
	dup := func(g int32, i int) bool {
		if seen == nil {
			return false
		}
		if seen[g] == nil {
			seen[g] = make(map[string]bool, 8)
		}
		k := arg.value(i).Key()
		if seen[g][k] {
			return true
		}
		seen[g][k] = true
		return false
	}

	switch a.name {
	case "COUNT":
		counts := make([]int64, ngroups)
		for i := 0; i < n; i++ {
			if arg.nullAt(i) || dup(gids[i], i) {
				continue
			}
			counts[gids[i]]++
		}
		for g := range out {
			out[g] = sqldata.NewInt(counts[g])
		}

	case "SUM", "AVG":
		type acc struct {
			hi, lo uint64 // 128-bit integer accumulator
			fsum   float64
			cnt    int64
		}
		accs := make([]acc, ngroups)
		allInt := arg.t == sqldata.TypeInt // vectors are single-typed
		for i := 0; i < n; i++ {
			if arg.nullAt(i) || dup(gids[i], i) {
				continue
			}
			ac := &accs[gids[i]]
			if allInt {
				v := arg.ints[arg.ix(i)]
				ac.hi, ac.lo = add128(ac.hi, ac.lo, v)
				ac.fsum += float64(v)
			} else {
				ac.fsum += arg.asFloat(arg.ix(i))
			}
			ac.cnt++
		}
		for g := range out {
			ac := &accs[g]
			switch {
			case ac.cnt == 0:
				out[g] = sqldata.NullValue()
			case a.name == "AVG":
				out[g] = sqldata.NewFloat(ac.fsum / float64(ac.cnt))
			case allInt:
				out[g] = int128Value(ac.hi, ac.lo)
			default:
				out[g] = sqldata.NewFloat(ac.fsum)
			}
		}

	default: // MIN, MAX
		best := make([]sqldata.Value, ngroups)
		has := make([]bool, ngroups)
		max := a.name == "MAX"
		for i := 0; i < n; i++ {
			if arg.nullAt(i) || dup(gids[i], i) {
				continue
			}
			g := gids[i]
			v := arg.value(i)
			if !has[g] {
				best[g], has[g] = v, true
				continue
			}
			// Same static type on both sides: Compare cannot error.
			if c, err := sqldata.Compare(v, best[g]); err == nil && ((max && c > 0) || (!max && c < 0)) {
				best[g] = v
			}
		}
		for g := range out {
			if has[g] {
				out[g] = best[g]
			} else {
				out[g] = sqldata.NullValue()
			}
		}
	}
	return out
}
