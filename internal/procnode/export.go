package procnode

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"nlidb/internal/shard"
	"nlidb/internal/sqldata"
)

// exportPartitions splits db into n FK-co-located partitions and writes
// each partition's tables as CSV files under dir/shard<i>/<table>.csv —
// the same CSV vocabulary cmd/nlidb's -csv flag loads, so a shard node
// child needs no bespoke bootstrap path. Returns the per-shard file
// lists (join with "," for the child's -csv flag) and the row-placement
// map the coordinator routes with.
func exportPartitions(db *sqldata.Database, dir string, n int) ([][]string, *shard.Partitioning, error) {
	dbs, part, err := shard.Split(db, n)
	if err != nil {
		return nil, nil, fmt.Errorf("procnode: %w", err)
	}
	files := make([][]string, n)
	for s, pdb := range dbs {
		sdir := filepath.Join(dir, fmt.Sprintf("shard%d", s))
		if err := os.MkdirAll(sdir, 0o755); err != nil {
			return nil, nil, fmt.Errorf("procnode: %w", err)
		}
		for _, t := range pdb.Tables() {
			path := filepath.Join(sdir, strings.ToLower(t.Schema.Name)+".csv")
			if err := writeTableCSV(path, t); err != nil {
				return nil, nil, err
			}
			files[s] = append(files[s], path)
		}
	}
	return files, part, nil
}

// writeTableCSV renders one table in the LoadCSV vocabulary (WriteCSV
// over the table's rows, schema names as the header).
//
// Known type-fidelity caveat: LoadCSV re-infers column types from the
// text, and the canonical rendering of an integral float ("12000") is
// indistinguishable from an int — so a FLOAT column whose exported
// partition happens to hold only integral values comes back as INT on
// the child. This cannot silently corrupt a merge: the coordinator's
// aggregate accumulators widen int/float, and the typed wire form
// preserves whatever type the child computed. Mixed columns (any cell
// with a fractional part) re-infer FLOAT correctly.
func writeTableCSV(path string, t *sqldata.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("procnode: %w", err)
	}
	header := make([]string, len(t.Schema.Columns))
	for i, c := range t.Schema.Columns {
		header[i] = c.Name
	}
	werr := sqldata.WriteCSV(f, &sqldata.Result{Columns: header, Rows: t.Rows})
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("procnode: %s: %w", path, werr)
	}
	if cerr != nil {
		return fmt.Errorf("procnode: %s: %w", path, cerr)
	}
	return nil
}
