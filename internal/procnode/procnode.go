// Package procnode supervises real shard node processes: it exports each
// shard's partition through the CSV path, launches one cmd/nlidb -serve
// child per replica, waits for /healthz readiness, restarts crashed
// children with jittered backoff, and exposes Kill/Restore with real
// SIGKILL — so the chaos story the in-process harness tells with an
// atomic flag runs against live operating-system processes. A Supervisor
// plus shard.NewRemote is the out-of-process deployment of the fleet:
// same routing, breakers, hedging, and honest partial answers, with a
// socket and a process boundary where a function call used to be.
package procnode

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nlidb/internal/shard"
	"nlidb/internal/sqldata"
)

// Config tunes a Supervisor.
type Config struct {
	// Binary is the nlidb executable to launch (required unless Command
	// is overridden). A coordinator self-supervising passes
	// os.Executable().
	Binary string
	// Dir is the scratch directory for partition CSVs ("" = a fresh
	// temp dir, removed on Close).
	Dir string
	// Shards and Replicas size the fleet (defaults 1 and 1).
	Shards   int
	Replicas int
	// Epoch is the shard map version children are configured under;
	// every child refuses requests stamped with a different epoch
	// (default 1).
	Epoch int64
	// ExtraArgs are appended to every child's command line (e.g.
	// "-engine", "parse" to keep child startup light).
	ExtraArgs []string
	// ReadyTimeout bounds the wait for a launched child to print its
	// address and pass /healthz (default 15s).
	ReadyTimeout time.Duration
	// RestartBackoff is the base delay before relaunching a crashed
	// child, doubled per consecutive crash with up to 50% jitter, capped
	// at RestartBackoffMax (defaults 100ms and 3s).
	RestartBackoff    time.Duration
	RestartBackoffMax time.Duration
	// Seed makes restart jitter replayable (default 1).
	Seed int64
	// Stdout/Stderr receive the children's output (default: discarded).
	// Stdout sees each line after the supervisor has scanned it.
	Stdout, Stderr io.Writer
	// Command builds the child process — the test seam. Default
	// exec.Command.
	Command func(name string, args ...string) *exec.Cmd
	// HealthClient polls readiness (default: a client with a 1s
	// per-probe timeout).
	HealthClient *http.Client
	// OnEvent, when non-nil, receives supervisor lifecycle lines
	// ("shard 1 replica 0: exited (...), restarting in 200ms").
	OnEvent func(string)
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.Epoch == 0 {
		c.Epoch = 1
	}
	if c.ReadyTimeout <= 0 {
		c.ReadyTimeout = 15 * time.Second
	}
	if c.RestartBackoff <= 0 {
		c.RestartBackoff = 100 * time.Millisecond
	}
	if c.RestartBackoffMax <= 0 {
		c.RestartBackoffMax = 3 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Command == nil {
		c.Command = exec.Command
	}
	if c.HealthClient == nil {
		c.HealthClient = &http.Client{Timeout: time.Second}
	}
	return c
}

// Supervisor owns a fleet of shard node processes. Safe for concurrent
// use once Start returns.
type Supervisor struct {
	cfg    Config
	dir    string
	ownDir bool
	part   *shard.Partitioning
	procs  [][]*Proc
}

// Start exports db's partitions as CSVs under the scratch dir, launches
// Shards×Replicas children (each replica of a shard loads the same
// partition files), and waits until every child passes /healthz.
// On any launch failure the already-started children are killed.
func Start(db *sqldata.Database, cfg Config) (*Supervisor, error) {
	cfg = cfg.withDefaults()
	dir, ownDir := cfg.Dir, false
	if dir == "" {
		d, err := os.MkdirTemp("", "nlidb-procnode-")
		if err != nil {
			return nil, fmt.Errorf("procnode: %w", err)
		}
		dir, ownDir = d, true
	}
	sup := &Supervisor{cfg: cfg, dir: dir, ownDir: ownDir}
	files, part, err := exportPartitions(db, dir, cfg.Shards)
	if err != nil {
		sup.cleanupDir()
		return nil, err
	}
	sup.part = part
	sup.procs = make([][]*Proc, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		sup.procs[s] = make([]*Proc, cfg.Replicas)
		for r := 0; r < cfg.Replicas; r++ {
			sup.procs[s][r] = &Proc{
				sup:     sup,
				shard:   s,
				replica: r,
				files:   files[s],
				rng:     rand.New(rand.NewSource(cfg.Seed + int64(s*cfg.Replicas+r))),
			}
		}
	}
	for s := range sup.procs {
		for _, p := range sup.procs[s] {
			if err := p.launch(); err != nil {
				sup.Close()
				return nil, err
			}
		}
	}
	return sup, nil
}

// Partitioning exposes the fleet's row-placement map.
func (sup *Supervisor) Partitioning() *shard.Partitioning { return sup.part }

// Proc returns the managed process serving shard s, replica r.
func (sup *Supervisor) Proc(s, r int) *Proc { return sup.procs[s][r] }

// AddrFuncs returns the live address providers shard.RemoteFleet wants:
// [shard][replica] funcs that follow restarts (and return "" while a
// replica is down).
func (sup *Supervisor) AddrFuncs() [][]func() string {
	out := make([][]func() string, len(sup.procs))
	for s := range sup.procs {
		out[s] = make([]func() string, len(sup.procs[s]))
		for r, p := range sup.procs[s] {
			out[s][r] = p.Addr
		}
	}
	return out
}

// Map snapshots the current shard map: the fleet's epoch plus every
// replica's address as of now.
func (sup *Supervisor) Map() shard.Map {
	m := shard.Map{Epoch: sup.cfg.Epoch, Shards: make([][]string, len(sup.procs))}
	for s := range sup.procs {
		m.Shards[s] = make([]string, len(sup.procs[s]))
		for r, p := range sup.procs[s] {
			m.Shards[s][r] = p.Addr()
		}
	}
	return m
}

// Close kills every child (SIGKILL — drains are the coordinator's job,
// the supervisor's is making processes be gone), waits for the monitors
// to finish, and removes the scratch dir when the supervisor created it.
func (sup *Supervisor) Close() {
	for s := range sup.procs {
		for _, p := range sup.procs[s] {
			p.shutdown()
		}
	}
	for s := range sup.procs {
		for _, p := range sup.procs[s] {
			p.wg.Wait()
		}
	}
	sup.cleanupDir()
}

func (sup *Supervisor) cleanupDir() {
	if sup.ownDir {
		os.RemoveAll(sup.dir)
	}
}

func (sup *Supervisor) event(format string, args ...any) {
	if sup.cfg.OnEvent != nil {
		sup.cfg.OnEvent(fmt.Sprintf(format, args...))
	}
}

// Proc is one supervised replica process.
type Proc struct {
	sup     *Supervisor
	shard   int
	replica int
	files   []string

	addr atomic.Value // string: current base URL, "" while down
	wg   sync.WaitGroup

	mu      sync.Mutex
	cmd     *exec.Cmd
	killed  bool // down on purpose (Kill); no auto-restart
	closed  bool // supervisor shut down
	crashes int
	started time.Time
	rng     *rand.Rand
}

// Addr returns the replica's current base URL ("http://127.0.0.1:port"),
// or "" while the process is down. This is the shard.RemoteFleet address
// provider: restarts rebind anonymous ports, and routing follows.
func (p *Proc) Addr() string {
	a, _ := p.addr.Load().(string)
	return a
}

// Kill SIGKILLs the child — no drain, no goodbye, exactly what a machine
// losing power does — and suppresses the automatic restart so the chaos
// window stays open until Restore.
func (p *Proc) Kill() {
	p.mu.Lock()
	p.killed = true
	cmd := p.cmd
	p.mu.Unlock()
	p.addr.Store("")
	if cmd != nil && cmd.Process != nil {
		cmd.Process.Kill()
	}
}

// Restore relaunches a Kill'd replica and blocks until it answers
// /healthz (or errors). No-op when the replica was not killed.
func (p *Proc) Restore() error {
	p.mu.Lock()
	if !p.killed {
		p.mu.Unlock()
		return nil
	}
	p.killed = false
	p.mu.Unlock()
	return p.launch()
}

// Down reports whether the replica is deliberately killed right now.
func (p *Proc) Down() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.killed
}

// shutdown is Close's half of Kill: stop for good.
func (p *Proc) shutdown() {
	p.mu.Lock()
	p.closed = true
	cmd := p.cmd
	p.mu.Unlock()
	p.addr.Store("")
	if cmd != nil && cmd.Process != nil {
		cmd.Process.Kill()
	}
}

// launch starts one child and blocks until it is ready: the "serving
// http://..." line parsed off stdout, then /healthz answering 200.
func (p *Proc) launch() error {
	cfg := p.sup.cfg
	args := []string{
		"-serve", "127.0.0.1:0",
		"-csv", strings.Join(p.files, ","),
		"-join", fmt.Sprintf("%d@%d", p.shard, cfg.Epoch),
		"-cache", "0", // the coordinator caches fleet-wide
	}
	args = append(args, cfg.ExtraArgs...)
	cmd := cfg.Command(cfg.Binary, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return fmt.Errorf("procnode: shard %d replica %d: %w", p.shard, p.replica, err)
	}
	if cfg.Stderr != nil {
		cmd.Stderr = cfg.Stderr
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("procnode: shard %d replica %d: start: %w", p.shard, p.replica, err)
	}
	p.mu.Lock()
	p.cmd = cmd
	p.started = time.Now()
	p.mu.Unlock()

	addrCh := make(chan string, 1)
	p.wg.Add(1)
	go p.scanStdout(stdout, addrCh)
	p.wg.Add(1)
	go p.monitor(cmd)

	deadline := time.Now().Add(cfg.ReadyTimeout)
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(cfg.ReadyTimeout):
		cmd.Process.Kill()
		return fmt.Errorf("procnode: shard %d replica %d: never printed its address within %s", p.shard, p.replica, cfg.ReadyTimeout)
	}
	for {
		resp, err := cfg.HealthClient.Get(addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			return fmt.Errorf("procnode: shard %d replica %d: %s never passed /healthz within %s", p.shard, p.replica, addr, cfg.ReadyTimeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
	p.addr.Store(addr)
	p.sup.event("shard %d replica %d: ready at %s", p.shard, p.replica, addr)
	return nil
}

// scanStdout watches a child's stdout for the serve banner and tees the
// stream to the configured sink.
func (p *Proc) scanStdout(r io.Reader, addrCh chan<- string) {
	defer p.wg.Done()
	sc := bufio.NewScanner(r)
	sent := false
	for sc.Scan() {
		line := sc.Text()
		if !sent {
			if i := strings.Index(line, "serving http://"); i >= 0 {
				addr := strings.TrimPrefix(line[i:], "serving ")
				if j := strings.IndexAny(addr, " \t"); j >= 0 {
					addr = addr[:j]
				}
				addrCh <- addr
				sent = true
			}
		}
		if p.sup.cfg.Stdout != nil {
			fmt.Fprintf(p.sup.cfg.Stdout, "[s%dr%d] %s\n", p.shard, p.replica, line)
		}
	}
}

// monitor waits for the child to exit and — unless the exit was asked
// for — relaunches it after a jittered, exponentially growing backoff.
func (p *Proc) monitor(cmd *exec.Cmd) {
	defer p.wg.Done()
	err := cmd.Wait()
	p.mu.Lock()
	if p.cmd != cmd {
		// A newer generation is already running; this monitor is stale.
		p.mu.Unlock()
		return
	}
	p.cmd = nil
	alive := time.Since(p.started)
	if alive > 5*time.Second {
		p.crashes = 0 // a healthy run resets the crash streak
	}
	p.crashes++
	stop := p.killed || p.closed
	var delay time.Duration
	if !stop {
		cfg := p.sup.cfg
		delay = cfg.RestartBackoff << uint(min(p.crashes-1, 10))
		if delay > cfg.RestartBackoffMax {
			delay = cfg.RestartBackoffMax
		}
		delay += time.Duration(p.rng.Int63n(int64(delay)/2 + 1))
	}
	p.mu.Unlock()
	p.addr.Store("")
	if stop {
		return
	}
	p.sup.event("shard %d replica %d: exited (%v) after %s, restarting in %s", p.shard, p.replica, err, alive.Round(time.Millisecond), delay.Round(time.Millisecond))
	time.Sleep(delay)
	p.mu.Lock()
	stop = p.killed || p.closed || p.cmd != nil
	p.mu.Unlock()
	if stop {
		return
	}
	if lerr := p.launch(); lerr != nil {
		p.sup.event("procnode: restart failed: %v", lerr)
	}
}
