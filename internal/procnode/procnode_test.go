package procnode

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"nlidb/internal/sqldata"
)

func procDB(t *testing.T) *sqldata.Database {
	t.Helper()
	db := sqldata.NewDatabase("proc")
	tbl, err := db.CreateTable(&sqldata.Schema{Name: "customers", Columns: []sqldata.Column{
		{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
		{Name: "name", Type: sqldata.TypeText},
		{Name: "credit", Type: sqldata.TypeFloat},
		{Name: "joined", Type: sqldata.TypeDate},
	}})
	if err != nil {
		t.Fatal(err)
	}
	day, err := sqldata.ParseDate("2024-03-01")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		// Fractional credits: a float column with any non-integral cell
		// re-infers FLOAT on a CSV round trip (see writeTableCSV's caveat).
		credit := sqldata.NewFloat(float64((i+1)*1000) + 0.5)
		if i == 3 {
			credit = sqldata.NullValue()
		}
		tbl.MustInsert(sqldata.NewInt(int64(i+1)), sqldata.NewText(fmt.Sprintf("c%02d", i)), credit, day)
	}
	return db
}

// fakeChild builds a Command seam whose "children" print the serve
// banner for a stub /healthz endpoint and then run the given script.
func fakeChild(t *testing.T, tail string) (func(name string, args ...string) *exec.Cmd, *httptest.Server, func() [][]string) {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			w.Write([]byte(`{"status":"ok"}`))
			return
		}
		http.NotFound(w, r)
	}))
	t.Cleanup(ts.Close)
	var mu sync.Mutex
	var seen [][]string
	cmd := func(name string, args ...string) *exec.Cmd {
		mu.Lock()
		seen = append(seen, append([]string{name}, args...))
		mu.Unlock()
		script := fmt.Sprintf("echo 'serving %s  (POST /query, POST /batch)'; %s", ts.URL, tail)
		return exec.Command("/bin/sh", "-c", script)
	}
	calls := func() [][]string {
		mu.Lock()
		defer mu.Unlock()
		out := make([][]string, len(seen))
		copy(out, seen)
		return out
	}
	return cmd, ts, calls
}

// TestSupervisorLifecycle: start a 2×2 fleet of (fake) processes, check
// the child command lines, the shard map, Kill/Restore, and Close.
func TestSupervisorLifecycle(t *testing.T) {
	cmd, ts, calls := fakeChild(t, "exec sleep 60")
	dir := t.TempDir()
	sup, err := Start(procDB(t), Config{
		Binary:   "nlidb-under-test",
		Dir:      dir,
		Shards:   2,
		Replicas: 2,
		Epoch:    7,
		Command:  cmd,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()

	m := sup.Map()
	if m.Epoch != 7 || len(m.Shards) != 2 || len(m.Shards[0]) != 2 {
		t.Fatalf("map = %+v, want epoch 7, 2x2", m)
	}
	for s := range m.Shards {
		for r, addr := range m.Shards[s] {
			if addr != ts.URL {
				t.Fatalf("shard %d replica %d addr = %q, want %q", s, r, addr, ts.URL)
			}
		}
	}
	fns := sup.AddrFuncs()
	if len(fns) != 2 || len(fns[0]) != 2 || fns[1][1]() != ts.URL {
		t.Fatalf("AddrFuncs shape wrong")
	}
	if sup.Partitioning() == nil || sup.Partitioning().N != 2 {
		t.Fatal("no partitioning map")
	}

	// Each child was told its partition files, shard assignment, and to
	// serve with its cache off (the coordinator caches fleet-wide).
	launches := calls()
	if len(launches) != 4 {
		t.Fatalf("%d children launched, want 4", len(launches))
	}
	line := strings.Join(launches[0], " ")
	for _, want := range []string{"nlidb-under-test", "-serve 127.0.0.1:0", "-csv " + filepath.Join(dir, "shard0"), "-join 0@7", "-cache 0"} {
		if !strings.Contains(line, want) {
			t.Errorf("child command %q missing %q", line, want)
		}
	}

	// Kill takes the replica's address away and suppresses restart.
	p := sup.Proc(0, 1)
	p.Kill()
	if !p.Down() || p.Addr() != "" {
		t.Fatalf("after Kill: down=%v addr=%q", p.Down(), p.Addr())
	}
	time.Sleep(150 * time.Millisecond) // would-be restart window
	if p.Addr() != "" {
		t.Fatal("killed replica restarted itself")
	}
	if n := len(calls()); n != 4 {
		t.Fatalf("killed replica relaunched: %d launches", n)
	}
	// Restore brings it back, ready.
	if err := p.Restore(); err != nil {
		t.Fatal(err)
	}
	if p.Down() || p.Addr() != ts.URL {
		t.Fatalf("after Restore: down=%v addr=%q", p.Down(), p.Addr())
	}
}

// TestSupervisorRestartsCrashedChild: a child that exits on its own is
// relaunched after backoff; one that was Kill'd is not (covered above).
func TestSupervisorRestartsCrashedChild(t *testing.T) {
	cmd, ts, calls := fakeChild(t, "sleep 0.05") // banner, then crash
	var mu sync.Mutex
	var events []string
	sup, err := Start(procDB(t), Config{
		Binary:         "x",
		Shards:         1,
		Replicas:       1,
		Command:        cmd,
		RestartBackoff: 10 * time.Millisecond,
		OnEvent: func(e string) {
			mu.Lock()
			events = append(events, e)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()

	deadline := time.Now().Add(10 * time.Second)
	for len(calls()) < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("child relaunched %d times, want >= 3 (events: %v)", len(calls()), events)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The replica is addressable between crashes.
	if addr := sup.Proc(0, 0).Addr(); addr != "" && addr != ts.URL {
		t.Fatalf("addr = %q", addr)
	}
	mu.Lock()
	defer mu.Unlock()
	restarts := 0
	for _, e := range events {
		if strings.Contains(e, "restarting in") {
			restarts++
		}
	}
	if restarts == 0 {
		t.Fatalf("no restart events emitted: %v", events)
	}
}

// TestExportPartitionsRoundTrip: the partition CSVs re-load with the
// parent's column types — the float fix-up keeps integral FLOAT columns
// FLOAT, dates survive the ISO form, NULLs stay NULL — and every row
// lands on exactly one shard.
func TestExportPartitionsRoundTrip(t *testing.T) {
	db := procDB(t)
	dir := t.TempDir()
	files, part, err := exportPartitions(db, dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if part.N != 3 || len(files) != 3 {
		t.Fatalf("split shape wrong: %d files lists, N=%d", len(files), part.N)
	}
	parent := db.Table("customers")
	totalRows := 0
	for s, list := range files {
		for _, path := range list {
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			name := strings.TrimSuffix(filepath.Base(path), ".csv")
			tbl, err := sqldata.LoadCSV(name, f)
			f.Close()
			if err != nil {
				t.Fatalf("shard %d %s: %v", s, path, err)
			}
			if !strings.EqualFold(tbl.Schema.Name, "customers") {
				continue
			}
			totalRows += tbl.Len()
			for i, col := range tbl.Schema.Columns {
				nonNull := false
				for _, row := range tbl.Rows {
					if !row[i].Null {
						nonNull = true
						break
					}
				}
				want := parent.Schema.Columns[i].Type
				if nonNull && col.Type != want {
					t.Errorf("shard %d column %s re-inferred as %v, want %v", s, col.Name, col.Type, want)
				}
			}
			for _, row := range tbl.Rows {
				id := row[0].Int()
				if owner, ok := part.Owner("customers", sqldata.NewInt(id)); !ok || owner != s {
					t.Errorf("row id=%d on shard %d, owner says %d", id, s, owner)
				}
				if id == 4 && !row[2].Null {
					t.Errorf("NULL credit of id=4 came back as %v", row[2])
				}
				if !row[3].Null && row[3].T != sqldata.TypeDate {
					t.Errorf("joined column cell type %v, want DATE", row[3].T)
				}
			}
		}
	}
	if totalRows != parent.Len() {
		t.Fatalf("partitions hold %d customer rows, want %d", totalRows, parent.Len())
	}
}

// TestExportIntegralFloatCaveat pins the documented type-fidelity caveat:
// a FLOAT column whose exported cells are all integral re-infers as INT
// on the child — values numerically intact, merge widening covers it.
func TestExportIntegralFloatCaveat(t *testing.T) {
	db := sqldata.NewDatabase("caveat")
	tbl, err := db.CreateTable(&sqldata.Schema{Name: "t", Columns: []sqldata.Column{
		{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
		{Name: "v", Type: sqldata.TypeFloat},
	}})
	if err != nil {
		t.Fatal(err)
	}
	tbl.MustInsert(sqldata.NewInt(1), sqldata.NewFloat(12000))
	tbl.MustInsert(sqldata.NewInt(2), sqldata.NewFloat(7))
	files, _, err := exportPartitions(db, t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(files[0][0])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	back, err := sqldata.LoadCSV("t", f)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Schema.Columns[1].Type; got != sqldata.TypeInt {
		t.Fatalf("integral float column re-inferred as %v; the documented caveat says INT", got)
	}
	if back.Rows[0][1].Int() != 12000 || back.Rows[1][1].Int() != 7 {
		t.Fatal("values changed on the round trip")
	}
}
