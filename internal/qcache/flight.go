package qcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrLeaderPanic wraps the error shared when a flight leader's fn
// panicked. Followers never see it: they re-drive the miss instead.
var ErrLeaderPanic = errors.New("qcache: flight leader panicked")

// flightCall is one in-progress leader execution plus its shared result.
type flightCall struct {
	done      chan struct{}
	val       any
	err       error
	followers int // callers collapsed onto this execution (under Flight.mu)
}

// Flight collapses concurrent duplicate cache misses: while one caller
// (the leader) computes the value for a key, every other caller of the
// same key waits for the leader's result instead of recomputing it. This
// is the stampede defence the cache alone cannot provide — a cold hot key
// hit by N concurrent requests would otherwise run the full pipeline N
// times before the first Put lands.
//
// The zero Flight is ready to use. Safe for concurrent use.
type Flight struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

// Do executes fn under key, collapsing concurrent duplicates: exactly one
// caller per key runs fn at a time; the rest block until it finishes and
// receive the same value and error with shared=true. The leader's fn runs
// on the caller's goroutine. A follower whose ctx ends before the leader
// finishes unblocks with the context's error (the leader is unaffected).
//
// A leader that dies without producing a verdict on the question — its fn
// panicked, or it was cancelled out from under its followers — does not
// doom them: each follower whose own ctx is still alive re-drives the
// miss, becoming (or following) a new leader, so one impatient or crashed
// caller cannot wedge everyone who collapsed behind it. Real errors from
// fn are still shared as-is: they are verdicts, and retrying them for
// every follower would defeat the collapsing.
//
// Results are not memoized across completions — once the leader returns
// and its followers are served, the next Do on the key runs fn again.
// Pair Do with a Cache: the leader fills the cache, so later misses are
// hits, and Do only ever collapses the misses that race the first fill.
func (f *Flight) Do(ctx context.Context, key string, fn func() (any, error)) (val any, err error, shared bool) {
	for {
		val, err, shared, redo := f.do(ctx, key, fn)
		if !redo {
			return val, err, shared
		}
	}
}

// leaderAborted reports whether a leader's error is a non-verdict: the
// leader panicked or was cancelled, saying nothing about the question
// itself, so a healthy follower should re-drive rather than inherit it.
func leaderAborted(err error) bool {
	return errors.Is(err, ErrLeaderPanic) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func (f *Flight) do(ctx context.Context, key string, fn func() (any, error)) (val any, err error, shared, redo bool) {
	f.mu.Lock()
	if f.calls == nil {
		f.calls = map[string]*flightCall{}
	}
	if c, ok := f.calls[key]; ok {
		c.followers++
		f.mu.Unlock()
		select {
		case <-c.done:
			if c.err != nil && leaderAborted(c.err) && ctx.Err() == nil {
				return nil, nil, false, true
			}
			return c.val, c.err, true, false
		case <-ctx.Done():
			return nil, ctx.Err(), false, false
		}
	}
	c := &flightCall{done: make(chan struct{})}
	f.calls[key] = c
	f.mu.Unlock()

	defer func() {
		// Publish the result and retire the call even when fn panics, so
		// followers never hang; the panic is converted to an error for the
		// leader while followers re-drive.
		if r := recover(); r != nil {
			c.err = fmt.Errorf("%w: %v", ErrLeaderPanic, r)
			err = c.err
		}
		f.mu.Lock()
		delete(f.calls, key)
		f.mu.Unlock()
		close(c.done)
	}()
	c.val, c.err = fn()
	return c.val, c.err, false, false
}

// Followers reports how many callers are currently collapsed onto key's
// in-progress call (0 when no call is in progress) — a test and
// telemetry convenience.
func (f *Flight) Followers(key string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.calls[key]; ok {
		return c.followers
	}
	return 0
}
