package qcache

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlightCollapsesConcurrentCallers is the stampede property: N
// concurrent Do calls on one key run fn exactly once and share its value.
func TestFlightCollapsesConcurrentCallers(t *testing.T) {
	var f Flight
	var execs atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})

	const followers = 8
	var wg sync.WaitGroup
	results := make([]any, followers+1)
	sharedCount := atomic.Int64{}
	run := func(i int) {
		defer wg.Done()
		v, err, shared := f.Do(context.Background(), "k", func() (any, error) {
			execs.Add(1)
			close(started)
			<-release
			return "answer", nil
		})
		if err != nil {
			t.Errorf("caller %d: %v", i, err)
		}
		if shared {
			sharedCount.Add(1)
		}
		results[i] = v
	}

	wg.Add(1)
	go run(0)
	<-started // the leader is inside fn; everyone else must collapse
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go run(i)
	}
	// Only finish the leader once every follower has provably joined the
	// flight (a joined follower always receives the broadcast result,
	// even if it reaches its select after the close).
	waitForFollowers(t, &f, "k", followers)
	close(release)
	wg.Wait()

	if n := execs.Load(); n != 1 {
		t.Fatalf("fn executed %d times, want exactly 1", n)
	}
	if n := sharedCount.Load(); n != followers {
		t.Fatalf("%d callers saw shared=true, want %d", n, followers)
	}
	for i, v := range results {
		if v != "answer" {
			t.Fatalf("caller %d got %v, want %q", i, v, "answer")
		}
	}
}

func TestFlightDistinctKeysRunIndependently(t *testing.T) {
	var f Flight
	var execs atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		key := string(rune('a' + i))
		go func() {
			defer wg.Done()
			f.Do(context.Background(), key, func() (any, error) {
				execs.Add(1)
				return key, nil
			})
		}()
	}
	wg.Wait()
	if n := execs.Load(); n != 4 {
		t.Fatalf("fn executed %d times for 4 distinct keys, want 4", n)
	}
}

func TestFlightSequentialCallsRunEachTime(t *testing.T) {
	var f Flight
	var execs atomic.Int64
	for i := 0; i < 3; i++ {
		_, _, shared := f.Do(context.Background(), "k", func() (any, error) {
			execs.Add(1)
			return nil, nil
		})
		if shared {
			t.Fatalf("sequential call %d reported shared", i)
		}
	}
	if n := execs.Load(); n != 3 {
		t.Fatalf("fn executed %d times sequentially, want 3 (no memoization)", n)
	}
}

func TestFlightSharesErrors(t *testing.T) {
	var f Flight
	boom := errors.New("boom")
	started := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	var followerErr error
	var followerShared bool
	go func() {
		defer wg.Done()
		<-started // the leader is inside fn, so this Do must collapse
		_, followerErr, followerShared = f.Do(context.Background(), "k", func() (any, error) {
			t.Error("follower executed fn")
			return nil, nil
		})
	}()

	go func() {
		<-started
		waitForFollowers(t, &f, "k", 1)
		close(release)
	}()
	_, err, _ := f.Do(context.Background(), "k", func() (any, error) {
		close(started)
		<-release
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("leader err %v, want boom", err)
	}
	wg.Wait()
	if !followerShared || !errors.Is(followerErr, boom) {
		t.Fatalf("follower got err=%v shared=%v, want shared boom", followerErr, followerShared)
	}
}

func TestFlightFollowerHonorsContext(t *testing.T) {
	var f Flight
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go f.Do(context.Background(), "k", func() (any, error) {
		close(started)
		<-release
		return nil, nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err, shared := f.Do(ctx, "k", func() (any, error) {
		t.Error("canceled follower executed fn")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) || shared {
		t.Fatalf("got err=%v shared=%v, want context.Canceled, false", err, shared)
	}
}

// waitForFollowers polls until n callers have joined key's in-progress
// call (bounded by a real-time cap).
func waitForFollowers(t *testing.T, f *Flight, key string, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for f.Followers(key) < n {
		if time.Now().After(deadline) {
			t.Errorf("only %d followers joined %q, want %d", f.Followers(key), key, n)
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestFlightLeaderPanicBecomesError(t *testing.T) {
	var f Flight
	_, err, _ := f.Do(context.Background(), "k", func() (any, error) {
		panic("kaboom")
	})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err %v, want panic converted to error", err)
	}
	// The key must be free again.
	v, err, _ := f.Do(context.Background(), "k", func() (any, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("post-panic Do = %v, %v; want 7, nil", v, err)
	}
}

// TestFlightFollowerRedrivesAfterLeaderPanic: a crashed leader must not
// doom its followers — they re-drive the miss and get a real answer.
func TestFlightFollowerRedrivesAfterLeaderPanic(t *testing.T) {
	var f Flight
	started := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	var followerVal any
	var followerErr error
	go func() {
		defer wg.Done()
		<-started
		followerVal, followerErr, _ = f.Do(context.Background(), "k", func() (any, error) {
			return 42, nil
		})
	}()
	go func() {
		<-started
		waitForFollowers(t, &f, "k", 1)
		close(release)
	}()

	_, err, _ := f.Do(context.Background(), "k", func() (any, error) {
		close(started)
		<-release
		panic("kaboom")
	})
	if !errors.Is(err, ErrLeaderPanic) || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("leader err %v, want wrapped ErrLeaderPanic", err)
	}
	wg.Wait()
	if followerErr != nil || followerVal != 42 {
		t.Fatalf("follower got %v, %v; want 42 from its own re-driven call", followerVal, followerErr)
	}
}

// TestFlightFollowerRedrivesAfterLeaderCancelled: a leader cancelled out
// from under its followers shares no verdict; followers whose contexts
// are alive must re-drive instead of inheriting the cancellation.
func TestFlightFollowerRedrivesAfterLeaderCancelled(t *testing.T) {
	var f Flight
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	started := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	var followerVal any
	var followerErr error
	go func() {
		defer wg.Done()
		<-started
		followerVal, followerErr, _ = f.Do(context.Background(), "k", func() (any, error) {
			return 9, nil
		})
	}()
	go func() {
		<-started
		waitForFollowers(t, &f, "k", 1)
		cancelLeader()
	}()

	_, err, _ := f.Do(leaderCtx, "k", func() (any, error) {
		close(started)
		<-leaderCtx.Done()
		return nil, leaderCtx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err %v, want context.Canceled", err)
	}
	wg.Wait()
	if followerErr != nil || followerVal != 9 {
		t.Fatalf("follower got %v, %v; want 9 from its own re-driven call", followerVal, followerErr)
	}
}

// TestFlightCancelledFollowerDoesNotRedrive: re-driving is only for
// healthy followers — one whose own ctx died inherits its cancellation.
func TestFlightCancelledFollowerDoesNotRedrive(t *testing.T) {
	var f Flight
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	started := make(chan struct{})
	go f.Do(leaderCtx, "k", func() (any, error) {
		close(started)
		<-leaderCtx.Done()
		return nil, leaderCtx.Err()
	})
	<-started

	followerCtx, cancelFollower := context.WithCancel(context.Background())
	done := make(chan struct{})
	var err error
	go func() {
		defer close(done)
		_, err, _ = f.Do(followerCtx, "k", func() (any, error) {
			t.Error("cancelled follower executed fn")
			return nil, nil
		})
	}()
	cancelFollower()
	<-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled follower err %v, want context.Canceled", err)
	}
	cancelLeader()
}
