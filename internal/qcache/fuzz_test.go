package qcache_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"nlidb/internal/lexicon"
	"nlidb/internal/nlq"
	"nlidb/internal/qcache"
	"nlidb/internal/resilient"
	"nlidb/internal/sqldata"
)

// fuzzDB is a tiny two-table database the real interpreters run over, so
// the fuzz property below exercises genuine interpretation, not stubs.
func fuzzDB() *sqldata.Database {
	db := sqldata.NewDatabase("shop")
	cust, err := db.CreateTable(&sqldata.Schema{Name: "customer", Columns: []sqldata.Column{
		{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
		{Name: "name", Type: sqldata.TypeText},
		{Name: "city", Type: sqldata.TypeText},
	}})
	if err != nil {
		panic(err)
	}
	for i, r := range [][2]string{{"Ann", "Berlin"}, {"Bob", "Munich"}, {"Carol", "Berlin"}} {
		cust.MustInsert(sqldata.NewInt(int64(i+1)), sqldata.NewText(r[0]), sqldata.NewText(r[1]))
	}
	sale, err := db.CreateTable(&sqldata.Schema{
		Name: "sale",
		Columns: []sqldata.Column{
			{Name: "id", Type: sqldata.TypeInt, PrimaryKey: true},
			{Name: "customer_id", Type: sqldata.TypeInt},
			{Name: "amount", Type: sqldata.TypeFloat},
		},
		ForeignKeys: []sqldata.ForeignKey{{Column: "customer_id", RefTable: "customer", RefColumn: "id"}},
	})
	if err != nil {
		panic(err)
	}
	for i, amt := range []float64{10, 250.5, 99, 1200} {
		sale.MustInsert(sqldata.NewInt(int64(i+1)), sqldata.NewInt(int64(i%3+1)), sqldata.NewFloat(amt))
	}
	return db
}

// interpretAll summarizes how every engine in the default chain reads a
// question: per engine, the best candidate's SQL and score, or the error
// class. Question text itself is deliberately excluded (error messages
// embed it, and key-equal questions may differ in surface case).
func interpretAll(chain []nlq.Interpreter, q string) string {
	var sb strings.Builder
	for _, eng := range chain {
		sb.WriteString(eng.Name())
		sb.WriteByte('=')
		sb.WriteString(interpretOne(eng, q))
		sb.WriteByte(';')
	}
	return sb.String()
}

func interpretOne(eng nlq.Interpreter, q string) (out string) {
	defer func() {
		if r := recover(); r != nil {
			out = fmt.Sprintf("panic:%v", r)
		}
	}()
	ins, err := eng.Interpret(q)
	best, berr := nlq.Best(ins)
	if err != nil || berr != nil {
		if errors.Is(err, nlq.ErrNoInterpretation) || errors.Is(berr, nlq.ErrNoInterpretation) {
			return "nointerp"
		}
		return "error"
	}
	if best.SQL == nil {
		return "nosql"
	}
	return fmt.Sprintf("ok:%s|%.4f", best.SQL.String(), best.Score)
}

// FuzzCacheKey asserts the cache-key soundness property the answer cache
// depends on: two questions that normalize to the same key must be
// interpreted identically by every engine — otherwise a cache hit could
// serve the answer to a different question. It also pins the Canonical
// round trip (Key(Canonical(q)) == Key(q)), which is how key-equal
// variants are generated from arbitrary fuzz inputs.
func FuzzCacheKey(f *testing.F) {
	seeds := []string{
		"show customers in Berlin",
		"Top 5 customers by amount",
		"top five sales",
		`customers named "Ann"`,
		"sales over 1,000",
		"amount above 250.5",
		"COUNT of sales per city",
		"o'brien's year-to-date",
		"' lone quote then words",
		`mixed 'single "double' quotes`,
		"İstanbul customers",
		"007 customers",
		"",
		"   ",
		"customer; DROP TABLE customer",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	db := fuzzDB()
	chain, err := resilient.ChainByNames(db, lexicon.New(), resilient.DefaultChainNames)
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, q string) {
		if len(q) > 200 {
			t.Skip("bound interpretation cost")
		}
		key := qcache.Key(q)

		canon := qcache.Canonical(q)
		if got := qcache.Key(canon); got != key {
			t.Fatalf("Key(Canonical(q)) diverged\n     q %q\n canon %q\n   got %q\n  want %q", q, canon, got, key)
		}

		variants := []string{canon, " " + q + "\t ", strings.ToLower(q), strings.ToUpper(q)}
		base := ""
		for _, v := range variants {
			if v == q || qcache.Key(v) != key {
				// A variant is only obligated to interpret identically when
				// it actually normalizes to the same key (e.g. ToUpper can
				// legitimately change tokenization for some Unicode).
				continue
			}
			if base == "" {
				base = interpretAll(chain, q)
			}
			if got := interpretAll(chain, v); got != base {
				t.Fatalf("key-equal questions interpret differently\n   q %q -> %s\n   v %q -> %s\n key %q", q, base, v, got, key)
			}
		}
	})
}
