package qcache

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"nlidb/internal/nlp"
)

// Key normalizes a question into a cache key. Two questions get the same
// key exactly when the serving pipeline sees them identically:
//
//   - words are case-folded ("Top" ≡ "top" — interpreters consume
//     Token.Lower/Stem, never word case),
//   - small integral numbers are keyed by value ("5" ≡ "five" ≡ "005");
//     other numerics (decimals, huge literals) are keyed by their exact
//     surface form, where float round-tripping would be lossy,
//   - quoted phrases keep their case (a quoted literal may be matched
//     against data values, where case can be significant),
//   - whitespace between tokens is irrelevant.
//
// The encoding is prefix-free (kind tag + payload length + payload), so
// distinct token sequences can never collide — the FuzzCacheKey target
// asserts the companion property that key-equal questions interpret
// identically.
func Key(question string) string {
	toks := nlp.Tokenize(question)
	var b strings.Builder
	b.Grow(len(question) + 8*len(toks))
	for _, t := range toks {
		var tag byte
		var payload string
		switch t.Kind {
		case nlp.KindWord:
			tag, payload = 'w', t.Lower
		case nlp.KindNumber:
			tag, payload = 'n', numPayload(t)
		case nlp.KindQuoted:
			tag, payload = 'q', t.Text
		default:
			tag, payload = 'p', t.Text
		}
		b.WriteByte(tag)
		b.WriteString(strconv.Itoa(len(payload)))
		b.WriteByte(':')
		b.WriteString(payload)
	}
	return b.String()
}

// WithFingerprint prefixes a question key with a database fingerprint so
// entries cached against one database state never serve another: any
// mutation changes the fingerprint, orphaning (not flushing) old entries.
func WithFingerprint(fp uint64, key string) string {
	return fmt.Sprintf("%016x|%s", fp, key)
}

// WithContext prefixes a key with a dialogue-context fingerprint so the
// same utterance under different conversational context is never
// conflated ("how many are there" counts whatever the session was just
// looking at). A zero fingerprint means "no context" and returns the key
// unchanged, so context-free questions share cache entries with the
// stateless path. The "c" tag keeps the space prefix-free against
// WithFingerprint keys: a context key's first '|' sits at offset 17,
// a database-fingerprint key's at offset 16.
func WithContext(ctxFP uint64, key string) string {
	if ctxFP == 0 {
		return key
	}
	return fmt.Sprintf("c%016x|%s", ctxFP, key)
}

// Canonical rebuilds a question from its normalized tokens. It is the
// key's inverse in the sense that Key(Canonical(q)) == Key(q) for every
// q — the property the fuzz target leans on to generate key-equal
// variants of arbitrary inputs.
//
// For pathological quote interplay — a lone quote character followed by
// a quoted phrase rendered with that same character can merge into one
// token on re-tokenization — Canonical returns the question unchanged
// rather than a rendering with a different key.
func Canonical(question string) string {
	toks := nlp.Tokenize(question)
	parts := make([]string, 0, len(toks))
	for _, t := range toks {
		switch t.Kind {
		case nlp.KindWord:
			parts = append(parts, canonicalWord(t))
		case nlp.KindNumber:
			parts = append(parts, numPayload(t))
		case nlp.KindQuoted:
			// The tokenizer guarantees the text never contains its own
			// delimiter, so one of the two quote styles always works.
			if strings.ContainsRune(t.Text, '"') {
				parts = append(parts, "'"+t.Text+"'")
			} else {
				parts = append(parts, `"`+t.Text+`"`)
			}
		default:
			parts = append(parts, t.Text)
		}
	}
	c := strings.Join(parts, " ")
	if Key(c) != Key(question) {
		return question
	}
	return c
}

// canonicalWord renders a word token in its case-folded form — unless
// lowercasing is not tokenization-stable (e.g. "İ" lowers to "i" plus a
// combining mark, which splits the word), in which case the original
// surface is kept so the rendering re-tokenizes to the same token.
func canonicalWord(t nlp.Token) string {
	rt := nlp.Tokenize(t.Lower)
	if len(rt) == 1 && rt[0].Kind == nlp.KindWord && rt[0].Lower == t.Lower {
		return t.Lower
	}
	return t.Text
}

// numPayload is the canonical form of a numeric token. Small integral
// values use the value itself, so "five", "5", and "005" unify; both the
// tokenizer's digit accumulation and decimal formatting are exact below
// 1e15, so the form survives a re-tokenize round trip. Everything else
// (decimals, >15-digit literals) keeps the lowercased surface form —
// already comma-stripped by the tokenizer and made only of digits and
// dots, so it too re-tokenizes to itself.
func numPayload(t nlp.Token) string {
	if t.Num == math.Trunc(t.Num) && t.Num >= 0 && t.Num < 1e15 {
		return strconv.FormatInt(int64(t.Num), 10)
	}
	return t.Lower
}
