package qcache

import "testing"

func TestKeyEquivalences(t *testing.T) {
	same := [][2]string{
		{"show customers in berlin", "Show Customers In BERLIN"},
		{"top 5 customers", "Top Five Customers"},
		{"top 5 customers", "top  5   customers"},
		{"top 5 customers", "top 005 customers"},
		{"a , b", "a,b"},
		{`name is "Ann"`, `name is  "Ann"`},
		{"one million rows", "1 1000000 rows"},
	}
	for _, p := range same {
		if Key(p[0]) != Key(p[1]) {
			t.Errorf("Key(%q) != Key(%q)\n  %q\n  %q", p[0], p[1], Key(p[0]), Key(p[1]))
		}
	}
}

func TestKeyDistinctions(t *testing.T) {
	diff := [][2]string{
		{`name is "Ann"`, `name is "ann"`},      // quoted case is semantic
		{"berlin", `"berlin"`},                  // word vs quoted literal
		{"ab c", "a bc"},                        // token boundaries matter
		{"price above 2.5", "price above 2.50"}, // decimals keep surface form
		{"top 5", "top 6"},
		{"", "x"},
	}
	for _, p := range diff {
		if Key(p[0]) == Key(p[1]) {
			t.Errorf("Key(%q) == Key(%q) = %q, want distinct", p[0], p[1], Key(p[0]))
		}
	}
}

func TestWithFingerprint(t *testing.T) {
	k := Key("customers")
	a, b := WithFingerprint(1, k), WithFingerprint(2, k)
	if a == b {
		t.Fatal("different fingerprints must give different keys")
	}
	if WithFingerprint(1, k) != a {
		t.Fatal("WithFingerprint must be deterministic")
	}
}

func TestCanonicalForms(t *testing.T) {
	cases := [][2]string{
		{"Show  me TOP Five customers", "show me top 5 customers"},
		{`Named "Ann" please`, `named "Ann" please`},
		{"sales over 1,000", "sales over 1000"},
		{"a,b", "a , b"},
	}
	for _, c := range cases {
		if got := Canonical(c[0]); got != c[1] {
			t.Errorf("Canonical(%q) = %q, want %q", c[0], got, c[1])
		}
	}
}

func TestCanonicalIsKeyStable(t *testing.T) {
	qs := []string{
		"Show customers in Berlin",
		"top five MOVIES by rating",
		`director is "Nolan"`,
		"price above 2.675 euros",
		"sales over 1,000,000",
		"o'brien's year-to-date",
		"' lone quote then words",
		`mixed 'single "double' quotes`,
		"İstanbul customers", // lowercasing splits the word; Canonical must cope
		"",
		"007",
	}
	for _, q := range qs {
		c := Canonical(q)
		if Key(c) != Key(q) {
			t.Errorf("Key(Canonical(%q)) diverged:\n canon %q\n  key %q\n want %q", q, c, Key(c), Key(q))
		}
	}
}

func TestWithContext(t *testing.T) {
	k := WithFingerprint(7, Key("how many are there"))
	if WithContext(0, k) != k {
		t.Fatal("zero context fingerprint must leave the key unchanged")
	}
	a, b := WithContext(1, k), WithContext(2, k)
	if a == b {
		t.Fatal("different context fingerprints must give different keys")
	}
	if WithContext(1, k) != a {
		t.Fatal("WithContext must be deterministic")
	}
	if a == k {
		t.Fatal("nonzero context fingerprint must change the key")
	}
}

// TestWithContextPrefixFree pins the framing: a context-keyed key can
// never collide with a fingerprint-keyed one, whatever the embedded
// question text is — the two prefixes put their first '|' at different
// offsets and WithContext's leading 'c' is not a hex digit.
func TestWithContextPrefixFree(t *testing.T) {
	seen := map[string]string{}
	for _, q := range []string{"x", "c deadbeef", "0123456789abcdef|x"} {
		base := WithFingerprint(0xfeed, Key(q))
		for name, k := range map[string]string{
			"plain":   base,
			"context": WithContext(0xbeef, base),
		} {
			if prev, ok := seen[k]; ok {
				t.Fatalf("key %q produced by both %s and %s", k, prev, name+" "+q)
			}
			seen[k] = name + " " + q
		}
	}
}
