// Package qcache is the answer cache in front of the query-serving
// pipeline. The source paper frames NLIDBs as interactive systems — the
// user expects an answer in seconds — and on a production gateway the
// same questions arrive again and again; re-running the full
// interpret→parse→plan→execute pipeline for each repeat wastes the
// latency budget the paper cares about. The cache is a sharded LRU with
// TTL, keyed by the normalized question (see Key) combined with a
// database fingerprint, so schema or data mutations invalidate entries
// implicitly — no flush call, stale keys simply stop being looked up.
//
// All methods are safe for concurrent use; each shard has its own lock,
// so parallel workers serving disjoint questions rarely contend.
package qcache

import (
	"container/list"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"nlidb/internal/obs"
)

// Metric family names the cache publishes when Config.Metrics is set.
const (
	// MetricHits counts cache hits.
	MetricHits = "nlidb_cache_hits_total"
	// MetricMisses counts cache misses (including TTL-expired lookups).
	MetricMisses = "nlidb_cache_misses_total"
	// MetricEvictions counts entries evicted by capacity pressure.
	MetricEvictions = "nlidb_cache_evictions_total"
	// MetricEntries gauges the current number of live entries.
	MetricEntries = "nlidb_cache_entries"
)

// Config tunes a Cache. The zero value is serviceable: 4096 entries,
// 16 shards, no TTL, no metrics.
type Config struct {
	// MaxEntries bounds the total entry count across all shards
	// (default 4096). Each shard holds MaxEntries/Shards entries, so the
	// effective capacity is rounded down to a multiple of Shards.
	MaxEntries int
	// TTL is how long an entry stays servable (0 = forever). Expired
	// entries count as misses and are dropped on lookup.
	TTL time.Duration
	// Shards is the lock-striping factor (default 16, minimum 1).
	Shards int
	// Now is the clock, injectable for TTL tests (default time.Now).
	Now func() time.Time
	// Metrics, when non-nil, receives hit/miss/eviction counters and the
	// live-entry gauge. Families are pre-registered at New so scrapes see
	// them before the first lookup.
	Metrics *obs.Registry
}

// Stats is a point-in-time view of the cache's counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
}

// entry is one cached answer with its expiry.
type entry struct {
	key     string
	val     any
	expires time.Time // zero = never
}

// shard is one lock-striped slice of the cache: a map for lookup and an
// LRU list for eviction order (front = most recently used).
type shard struct {
	mu  sync.Mutex
	ent map[string]*list.Element
	lru *list.List
}

// Cache is a sharded LRU answer cache with TTL. Build one per database
// (the key fingerprint ties entries to one database's state anyway).
type Cache struct {
	cfg      Config
	shards   []*shard
	perShard int

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	entries   atomic.Int64
}

// New builds a cache. Config zero values are filled with defaults.
func New(cfg Config) *Cache {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 4096
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	if cfg.Shards > cfg.MaxEntries {
		cfg.Shards = cfg.MaxEntries
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	c := &Cache{
		cfg:      cfg,
		shards:   make([]*shard, cfg.Shards),
		perShard: cfg.MaxEntries / cfg.Shards,
	}
	if c.perShard < 1 {
		c.perShard = 1
	}
	for i := range c.shards {
		c.shards[i] = &shard{ent: map[string]*list.Element{}, lru: list.New()}
	}
	if m := cfg.Metrics; m != nil {
		m.Counter(MetricHits)
		m.Counter(MetricMisses)
		m.Counter(MetricEvictions)
		m.Gauge(MetricEntries).Set(0)
	}
	return c
}

// shardFor picks the shard for a key by FNV-1a hash.
func (c *Cache) shardFor(key string) *shard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return c.shards[h.Sum32()%uint32(len(c.shards))]
}

// Get returns the cached value for key, or (nil, false) on a miss. An
// entry past its TTL is removed and reported as a miss. A hit moves the
// entry to the front of its shard's LRU order.
func (c *Cache) Get(key string) (any, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	el, ok := s.ent[key]
	if !ok {
		s.mu.Unlock()
		c.miss()
		return nil, false
	}
	e := el.Value.(*entry)
	if !e.expires.IsZero() && !c.cfg.Now().Before(e.expires) {
		s.lru.Remove(el)
		delete(s.ent, key)
		s.mu.Unlock()
		c.entries.Add(-1)
		c.miss()
		c.gauge()
		return nil, false
	}
	s.lru.MoveToFront(el)
	val := e.val // copy under the lock: Put may replace e.val in place
	s.mu.Unlock()
	c.hits.Add(1)
	if m := c.cfg.Metrics; m != nil {
		m.Counter(MetricHits).Inc()
	}
	return val, true
}

// Put stores val under key, replacing any existing entry and evicting the
// shard's least-recently-used entry when the shard is full.
func (c *Cache) Put(key string, val any) {
	var expires time.Time
	if c.cfg.TTL > 0 {
		expires = c.cfg.Now().Add(c.cfg.TTL)
	}
	s := c.shardFor(key)
	s.mu.Lock()
	if el, ok := s.ent[key]; ok {
		e := el.Value.(*entry)
		e.val = val
		e.expires = expires
		s.lru.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	evicted := 0
	for s.lru.Len() >= c.perShard {
		back := s.lru.Back()
		s.lru.Remove(back)
		delete(s.ent, back.Value.(*entry).key)
		evicted++
	}
	s.ent[key] = s.lru.PushFront(&entry{key: key, val: val, expires: expires})
	s.mu.Unlock()
	c.entries.Add(int64(1 - evicted))
	if evicted > 0 {
		c.evictions.Add(int64(evicted))
		if m := c.cfg.Metrics; m != nil {
			m.Counter(MetricEvictions).Add(int64(evicted))
		}
	}
	c.gauge()
}

// Len returns the live entry count.
func (c *Cache) Len() int { return int(c.entries.Load()) }

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   int(c.entries.Load()),
	}
}

func (c *Cache) miss() {
	c.misses.Add(1)
	if m := c.cfg.Metrics; m != nil {
		m.Counter(MetricMisses).Inc()
	}
}

func (c *Cache) gauge() {
	if m := c.cfg.Metrics; m != nil {
		m.Gauge(MetricEntries).Set(c.entries.Load())
	}
}
