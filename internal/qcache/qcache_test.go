package qcache

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"nlidb/internal/obs"
)

func TestGetPutHitMiss(t *testing.T) {
	c := New(Config{MaxEntries: 8, Shards: 2})
	if _, ok := c.Get("k"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("k", "v")
	v, ok := c.Get("k")
	if !ok || v.(string) != "v" {
		t.Fatalf("Get = %v, %v, want v, true", v, ok)
	}
	c.Put("k", "v2")
	if v, _ := c.Get("k"); v.(string) != "v2" {
		t.Fatalf("overwrite lost: got %v", v)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 2 hits, 1 miss, 1 entry", st)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// One shard makes the LRU order global and the test deterministic.
	c := New(Config{MaxEntries: 3, Shards: 1})
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	// Touch "a" so "b" is now least recently used.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	c.Put("d", 4)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as LRU")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s should have survived", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 3 {
		t.Fatalf("stats = %+v, want 1 eviction, 3 entries", st)
	}
}

func TestEvictionUnderPressure(t *testing.T) {
	c := New(Config{MaxEntries: 16, Shards: 4})
	for i := 0; i < 1000; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	if c.Len() > 16 {
		t.Fatalf("Len = %d, want ≤ 16", c.Len())
	}
	st := c.Stats()
	if st.Evictions < 1000-16 {
		t.Fatalf("evictions = %d, want ≥ %d", st.Evictions, 1000-16)
	}
}

func TestTTLExpiry(t *testing.T) {
	now := time.Unix(0, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	c := New(Config{MaxEntries: 8, TTL: time.Minute, Now: clock})
	c.Put("k", "v")
	advance(59 * time.Second)
	if _, ok := c.Get("k"); !ok {
		t.Fatal("entry expired before TTL")
	}
	advance(time.Second)
	if _, ok := c.Get("k"); ok {
		t.Fatal("entry survived past TTL")
	}
	if c.Len() != 0 {
		t.Fatalf("expired entry still counted: Len = %d", c.Len())
	}
	// Re-Put restarts the clock.
	c.Put("k", "v2")
	advance(30 * time.Second)
	if v, ok := c.Get("k"); !ok || v.(string) != "v2" {
		t.Fatal("re-put entry should be fresh")
	}
}

func TestMetricsWiring(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(Config{MaxEntries: 2, Shards: 1, Metrics: reg})

	// Families exist before any traffic.
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	for _, fam := range []string{MetricHits, MetricMisses, MetricEvictions, MetricEntries} {
		if !strings.Contains(sb.String(), fam) {
			t.Fatalf("family %s not pre-registered:\n%s", fam, sb.String())
		}
	}

	c.Get("a")    // miss
	c.Put("a", 1) // fill
	c.Get("a")    // hit
	c.Put("b", 2)
	c.Put("c", 3) // evicts a

	if n := reg.Counter(MetricHits).Value(); n != 1 {
		t.Fatalf("hits = %d, want 1", n)
	}
	if n := reg.Counter(MetricMisses).Value(); n != 1 {
		t.Fatalf("misses = %d, want 1", n)
	}
	if n := reg.Counter(MetricEvictions).Value(); n != 1 {
		t.Fatalf("evictions = %d, want 1", n)
	}
}

func TestConcurrentMixedLoad(t *testing.T) {
	c := New(Config{MaxEntries: 64, TTL: time.Hour})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (w*31+i)%100)
				if i%3 == 0 {
					c.Put(k, i)
				} else {
					c.Get(k)
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("Len = %d, want ≤ 64", c.Len())
	}
	st := c.Stats()
	if st.Hits+st.Misses == 0 {
		t.Fatal("no lookups recorded")
	}
}

func TestShardDefaulting(t *testing.T) {
	// Shards exceeding MaxEntries collapse so per-shard capacity stays ≥ 1.
	c := New(Config{MaxEntries: 4, Shards: 64})
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	if c.Len() > 4 {
		t.Fatalf("Len = %d, want ≤ 4", c.Len())
	}
}
