package resilient

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrShed marks a batch question that was never started: the batch's
// context ended (cancellation, deadline, load shedding) before a worker
// picked it up. The pipeline did zero work on it, so retrying it is
// always safe and never duplicates effort — callers can resubmit exactly
// the ErrShed tail of a cut-short batch. Test with
// errors.Is(r.Err, resilient.ErrShed); the underlying context error
// (context.Canceled or context.DeadlineExceeded) also matches errors.Is.
var ErrShed = errors.New("resilient: shed before start")

// BatchResult pairs one batch question with its outcome; exactly one of
// Answer and Err is non-nil.
type BatchResult struct {
	// Index is the question's position in the input slice.
	Index int
	// Question is the question as submitted.
	Question string
	// Answer is the successful answer, nil on failure.
	Answer *Answer
	// Err is the failure, nil on success.
	Err error
}

// ServeBatch answers every question using a bounded worker pool and
// returns the results in input order. The pool size is Config.Workers,
// defaulting to runtime.GOMAXPROCS(0) and never exceeding the batch
// size. Each question gets the same treatment as an individual Ask —
// its own deadline (Config.Timeout), budget, fallback chain, trace, and
// cache lookup — so per-query semantics are unchanged; only scheduling
// differs.
//
// Cancelling ctx stops the batch early: questions not yet started fail
// with ErrShed (wrapping the context's error), so callers can retry
// exactly the unserved tail. Questions already in flight run to their own
// deadline as usual. ServeBatch is safe for concurrent use, including
// overlapping batches on one Gateway.
func (g *Gateway) ServeBatch(ctx context.Context, questions []string) []BatchResult {
	out := make([]BatchResult, len(questions))
	if len(questions) == 0 {
		return out
	}
	workers := g.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(questions) {
		workers = len(questions)
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(questions) {
					return
				}
				q := questions[i]
				if err := ctx.Err(); err != nil {
					out[i] = BatchResult{Index: i, Question: q, Err: fmt.Errorf("%w: %w", ErrShed, err)}
					continue
				}
				ans, err := g.Ask(ctx, q)
				out[i] = BatchResult{Index: i, Question: q, Answer: ans, Err: err}
			}
		}()
	}
	wg.Wait()
	return out
}
