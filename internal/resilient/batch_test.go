package resilient

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"nlidb/internal/nlq"
	"nlidb/internal/qcache"
	"nlidb/internal/sqlparse"
)

func TestServeBatchOrderAndCompleteness(t *testing.T) {
	db := testDB(t)
	gw := New(db, []nlq.Interpreter{answering("a", "SELECT name FROM customer")},
		Config{Workers: 4})
	questions := make([]string, 40)
	for i := range questions {
		questions[i] = fmt.Sprintf("customers batch %d", i)
	}
	res := gw.ServeBatch(context.Background(), questions)
	if len(res) != len(questions) {
		t.Fatalf("got %d results, want %d", len(res), len(questions))
	}
	for i, r := range res {
		if r.Index != i || r.Question != questions[i] {
			t.Fatalf("result %d out of order: %+v", i, r)
		}
		if r.Err != nil || r.Answer == nil {
			t.Fatalf("result %d failed: %v", i, r.Err)
		}
	}
}

func TestServeBatchEmpty(t *testing.T) {
	db := testDB(t)
	gw := New(db, []nlq.Interpreter{answering("a", "SELECT name FROM customer")}, Config{})
	if res := gw.ServeBatch(context.Background(), nil); len(res) != 0 {
		t.Fatalf("empty batch returned %d results", len(res))
	}
}

func TestServeBatchBoundsConcurrency(t *testing.T) {
	db := testDB(t)
	var inFlight, peak atomic.Int64
	eng := &fakeInterp{name: "a", fn: func(q string) ([]nlq.Interpretation, error) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		defer inFlight.Add(-1)
		return []nlq.Interpretation{{SQL: sqlparse.MustParse("SELECT name FROM customer"), Score: 0.9}}, nil
	}}
	gw := New(db, []nlq.Interpreter{eng}, Config{Workers: 2})
	questions := make([]string, 20)
	for i := range questions {
		questions[i] = fmt.Sprintf("q %d", i)
	}
	gw.ServeBatch(context.Background(), questions)
	if p := peak.Load(); p > 2 {
		t.Fatalf("peak concurrency %d exceeds Workers=2", p)
	}
}

func TestServeBatchCancellation(t *testing.T) {
	db := testDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	eng := &fakeInterp{name: "a", fn: func(q string) ([]nlq.Interpretation, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-ctx.Done() // park until the batch is cancelled
		return nil, nlq.ErrNoInterpretation
	}}
	gw := New(db, []nlq.Interpreter{eng}, Config{Workers: 1, NoRetry: true})
	go func() {
		<-started
		cancel()
	}()
	res := gw.ServeBatch(ctx, make([]string, 10))
	canceled := 0
	for _, r := range res {
		if r.Err == nil {
			t.Fatalf("result %d unexpectedly succeeded", r.Index)
		}
		if errors.Is(r.Err, context.Canceled) {
			canceled++
		}
	}
	if canceled == 0 {
		t.Fatal("cancellation should fail not-yet-started questions with context.Canceled")
	}
}

func TestServeBatchSharedCacheConcurrent(t *testing.T) {
	db := testDB(t)
	eng, calls := counting("a", "SELECT name FROM customer")
	gw := New(db, []nlq.Interpreter{eng},
		Config{Workers: 8, Cache: qcache.New(qcache.Config{})})

	// 200 asks of 5 distinct questions across 8 workers: the pipeline runs
	// at most once per distinct question per worker overlap window — and
	// at least 195 of the asks must be answered, cached or not.
	questions := make([]string, 200)
	for i := range questions {
		questions[i] = fmt.Sprintf("customers group %d", i%5)
	}
	res := gw.ServeBatch(context.Background(), questions)
	hits := 0
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("batch question %d failed: %v", r.Index, r.Err)
		}
		if r.Answer.Cached {
			hits++
		}
	}
	// Concurrent misses on the same key can race to fill (both run the
	// pipeline; last Put wins) — that is allowed, but the pipeline must
	// run far fewer times than there are asks.
	if c := calls.Load(); c < 5 || c > 40 {
		t.Fatalf("pipeline ran %d times for 5 distinct questions × 200 asks", c)
	}
	if hits < 160 {
		t.Fatalf("only %d/200 served from cache", hits)
	}
}

func TestServeBatchOverlappingBatches(t *testing.T) {
	db := testDB(t)
	gw := New(db, []nlq.Interpreter{answering("a", "SELECT name FROM customer")},
		Config{Workers: 3, Cache: qcache.New(qcache.Config{})})
	questions := make([]string, 30)
	for i := range questions {
		questions[i] = fmt.Sprintf("overlap %d", i%7)
	}
	var wg sync.WaitGroup
	for b := 0; b < 4; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, r := range gw.ServeBatch(context.Background(), questions) {
				if r.Err != nil {
					t.Errorf("overlapping batch failed at %d: %v", r.Index, r.Err)
				}
			}
		}()
	}
	wg.Wait()
}

// TestServeBatchShedsUnstartedWithErrShed pins the retry contract: every
// question the cancelled batch never started carries ErrShed (and the
// underlying context error), while questions that did start do not — so a
// caller can resubmit exactly the unserved tail.
func TestServeBatchShedsUnstartedWithErrShed(t *testing.T) {
	db := testDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	eng := &fakeInterp{name: "a", fn: func(q string) ([]nlq.Interpretation, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-ctx.Done() // park until the batch is cancelled
		return nil, nlq.ErrNoInterpretation
	}}
	gw := New(db, []nlq.Interpreter{eng}, Config{Workers: 1, NoRetry: true})
	go func() {
		<-started
		cancel()
	}()
	res := gw.ServeBatch(ctx, make([]string, 10))

	shed := 0
	for _, r := range res {
		if errors.Is(r.Err, ErrShed) {
			shed++
			// The concrete context error must still be reachable.
			if !errors.Is(r.Err, context.Canceled) {
				t.Fatalf("result %d: ErrShed without context.Canceled underneath: %v", r.Index, r.Err)
			}
		}
	}
	if shed == 0 {
		t.Fatal("cancellation left no ErrShed results; unstarted questions must be marked shed")
	}
	// With one worker parked on question 0 until cancel, question 0 started:
	// its failure is a real pipeline error, not a shed.
	if errors.Is(res[0].Err, ErrShed) {
		t.Fatalf("question 0 ran but is marked shed: %v", res[0].Err)
	}
}
