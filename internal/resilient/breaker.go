package resilient

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit-breaker automaton.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "?"
	}
}

// breaker trips an engine out of the fallback chain after a run of
// consecutive infrastructure failures, and lets a single probe back
// through after the cooldown (half-open). Semantic misses — "I cannot
// interpret this question" — never count as failures; see countable.
type breaker struct {
	mu        sync.Mutex
	threshold int           // consecutive failures that open the breaker
	cooldown  time.Duration // open → half-open delay
	now       func() time.Time

	state    breakerState
	fails    int
	openedAt time.Time
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// allow reports whether a call may proceed. An open breaker whose cooldown
// has elapsed transitions to half-open and admits one probe.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			return true
		}
		return false
	default: // closed or half-open (probe in flight)
		return true
	}
}

// success closes the breaker and clears the failure run.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.fails = 0
}

// failure records one countable failure; a failed half-open probe or a
// full run of consecutive failures (re)opens the breaker.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.state == breakerHalfOpen || b.fails >= b.threshold {
		b.state = breakerOpen
		b.openedAt = b.now()
		b.fails = 0
	}
}

// snapshot returns the state for introspection (Gateway.BreakerStates).
func (b *breaker) snapshot() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
