package resilient

import (
	"math/rand"
	"sync"
	"time"
)

// breakerState is the classic three-state circuit-breaker automaton.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "?"
	}
}

// StateValue maps a breaker state name to its metric gauge value
// (closed=0, open=1, half-open=2); unknown names map to -1.
func StateValue(state string) int64 {
	switch state {
	case "closed":
		return 0
	case "open":
		return 1
	case "half-open":
		return 2
	default:
		return -1
	}
}

// Breaker trips an engine out of the fallback chain after a run of
// consecutive infrastructure failures, and lets a single probe back
// through after the cooldown (half-open). Semantic misses — "I cannot
// interpret this question" — never count as failures; see countable.
//
// Every state transition (closed→open, open→half-open, half-open→closed,
// half-open→open) is observable through the OnTransition hook, and the
// current state through State().
type Breaker struct {
	mu        sync.Mutex
	threshold int           // consecutive failures that open the breaker
	cooldown  time.Duration // open → half-open delay
	jitterMax time.Duration // extra randomized delay on top of cooldown
	rnd       *rand.Rand    // jitter source (nil until SetJitter)
	now       func() time.Time
	hook      func(from, to string)

	state    breakerState
	fails    int
	openedAt time.Time
	wait     time.Duration // this opening's effective cooldown (incl. jitter draw)
}

// DefaultBreakerJitter returns the production default for
// Config.BreakerJitter given a cooldown: one eighth of it, so probes from
// breakers that tripped together spread across a window wide enough to
// avoid lockstep but short enough not to delay recovery noticeably.
// cooldown <= 0 uses the Config default of 30 seconds.
func DefaultBreakerJitter(cooldown time.Duration) time.Duration {
	if cooldown <= 0 {
		cooldown = 30 * time.Second
	}
	return cooldown / 8
}

// NewBreaker returns a closed breaker that opens after threshold
// consecutive failures and cools down for cooldown before admitting a
// half-open probe. now is the clock (nil = time.Now).
func NewBreaker(threshold int, cooldown time.Duration, now func() time.Time) *Breaker {
	if now == nil {
		now = time.Now
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, wait: cooldown, now: now}
}

// SetJitter adds a randomized delay in [0, max) on top of the cooldown,
// drawn fresh each time the breaker opens. Without it, every breaker
// guarding the same engine — across goroutines here, across replicas in
// a fleet — finishes its cooldown at the same instant and probes the
// recovering engine in lockstep, re-tripping it with a synchronized
// thundering herd. seed makes the draw sequence replayable in tests.
// Call before the breaker is shared; max <= 0 disables jitter.
func (b *Breaker) SetJitter(max time.Duration, seed int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if max <= 0 {
		b.jitterMax, b.rnd = 0, nil
		return
	}
	b.jitterMax = max
	b.rnd = rand.New(rand.NewSource(seed))
}

// OnTransition registers fn to be called (outside the breaker's lock,
// with the state names "closed", "open", "half-open") after every state
// change. At most one hook; later calls replace earlier ones.
func (b *Breaker) OnTransition(fn func(from, to string)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.hook = fn
}

// State reports the current state: "closed", "open", or "half-open".
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String()
}

// transition moves to state to while holding mu and returns the hook
// invocation to run after unlock (nil when nothing changed).
func (b *Breaker) transition(to breakerState) func() {
	from := b.state
	if from == to {
		return nil
	}
	b.state = to
	hook := b.hook
	if hook == nil {
		return nil
	}
	return func() { hook(from.String(), to.String()) }
}

// Allow reports whether a call may proceed. An open breaker whose
// cooldown has elapsed transitions to half-open and admits one probe.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	var fire func()
	ok := true
	if b.state == breakerOpen {
		if b.now().Sub(b.openedAt) >= b.wait {
			fire = b.transition(breakerHalfOpen)
		} else {
			ok = false
		}
	}
	b.mu.Unlock()
	if fire != nil {
		fire()
	}
	return ok
}

// Success closes the breaker and clears the failure run.
func (b *Breaker) Success() {
	b.mu.Lock()
	fire := b.transition(breakerClosed)
	b.fails = 0
	b.mu.Unlock()
	if fire != nil {
		fire()
	}
}

// Failure records one countable failure; a failed half-open probe or a
// full run of consecutive failures (re)opens the breaker.
func (b *Breaker) Failure() {
	b.mu.Lock()
	var fire func()
	b.fails++
	if b.state == breakerHalfOpen || b.fails >= b.threshold {
		fire = b.transition(breakerOpen)
		b.openedAt = b.now()
		b.wait = b.cooldown
		if b.rnd != nil && b.jitterMax > 0 {
			b.wait += time.Duration(b.rnd.Int63n(int64(b.jitterMax)))
		}
		b.fails = 0
	}
	b.mu.Unlock()
	if fire != nil {
		fire()
	}
}
