package resilient

import (
	"fmt"
	"testing"
	"time"
)

// TestBreakerFullCycleWithHook drives one breaker through the complete
// closed → open → half-open → closed automaton and checks both the
// State() accessor and the transition-hook callback at every step.
func TestBreakerFullCycleWithHook(t *testing.T) {
	clock := time.Unix(0, 0)
	b := NewBreaker(2, time.Minute, func() time.Time { return clock })
	var transitions []string
	b.OnTransition(func(from, to string) {
		transitions = append(transitions, from+"→"+to)
	})

	if got := b.State(); got != "closed" {
		t.Fatalf("initial state %q, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker must allow calls")
	}

	// One failure below threshold: still closed, no transition.
	b.Failure()
	if got := b.State(); got != "closed" {
		t.Fatalf("state after 1/2 failures %q, want closed", got)
	}
	if len(transitions) != 0 {
		t.Fatalf("no transition expected yet, got %v", transitions)
	}

	// Second failure reaches the threshold: closed → open, calls blocked.
	b.Failure()
	if got := b.State(); got != "open" {
		t.Fatalf("state after threshold %q, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker must block calls during cooldown")
	}

	// Cooldown elapses: the next Allow admits one probe, open → half-open.
	clock = clock.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("breaker past cooldown must admit a half-open probe")
	}
	if got := b.State(); got != "half-open" {
		t.Fatalf("state during probe %q, want half-open", got)
	}

	// The probe succeeds: half-open → closed, cycle complete.
	b.Success()
	if got := b.State(); got != "closed" {
		t.Fatalf("state after successful probe %q, want closed", got)
	}

	want := []string{"closed→open", "open→half-open", "half-open→closed"}
	if fmt.Sprint(transitions) != fmt.Sprint(want) {
		t.Fatalf("transitions %v, want %v", transitions, want)
	}
}

// TestBreakerFailedProbeReopens checks the other half-open edge: a failed
// probe goes straight back to open and restarts the cooldown.
func TestBreakerFailedProbeReopens(t *testing.T) {
	clock := time.Unix(0, 0)
	b := NewBreaker(1, time.Minute, func() time.Time { return clock })
	var transitions []string
	b.OnTransition(func(from, to string) { transitions = append(transitions, from+"→"+to) })

	b.Failure() // threshold 1: closed → open
	clock = clock.Add(time.Minute)
	if !b.Allow() { // open → half-open
		t.Fatal("probe should be admitted after cooldown")
	}
	b.Failure() // half-open → open
	if got := b.State(); got != "open" {
		t.Fatalf("state after failed probe %q, want open", got)
	}
	if b.Allow() {
		t.Fatal("freshly reopened breaker must block until the next cooldown")
	}
	want := []string{"closed→open", "open→half-open", "half-open→open"}
	if fmt.Sprint(transitions) != fmt.Sprint(want) {
		t.Fatalf("transitions %v, want %v", transitions, want)
	}
}

func TestStateValue(t *testing.T) {
	for state, want := range map[string]int64{"closed": 0, "open": 1, "half-open": 2, "bogus": -1} {
		if got := StateValue(state); got != want {
			t.Errorf("StateValue(%q) = %d, want %d", state, got, want)
		}
	}
}

// TestBreakerSuccessWhileClosedIsQuiet guards against hook spam: Success
// on an already-closed breaker is not a transition.
func TestBreakerSuccessWhileClosedIsQuiet(t *testing.T) {
	b := NewBreaker(3, time.Minute, nil)
	calls := 0
	b.OnTransition(func(_, _ string) { calls++ })
	b.Success()
	b.Success()
	if calls != 0 {
		t.Fatalf("no-op successes fired %d transitions, want 0", calls)
	}
}
